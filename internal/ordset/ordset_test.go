package ordset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// model-check Insert/Contains/iteration/Floor against a plain sorted slice.
func TestSetAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var s Set
		model := map[int]bool{}
		n := rng.Intn(2000)
		for i := 0; i < n; i++ {
			v := rng.Intn(1000)
			ins := s.Insert(v)
			if ins == model[v] {
				t.Fatalf("Insert(%d) reported %v, model has %v", v, ins, model[v])
			}
			model[v] = true
		}
		want := make([]int, 0, len(model))
		for v := range model {
			want = append(want, v)
		}
		sort.Ints(want)
		got := s.AppendTo(nil)
		if len(got) != len(want) || s.Len() != len(want) {
			t.Fatalf("trial %d: %d elements, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: element %d = %d, want %d", trial, i, got[i], want[i])
			}
		}
		// Iteration matches AppendTo.
		i := 0
		for it := s.Begin(); it.Valid(); it.Next() {
			if it.Value() != want[i] {
				t.Fatalf("iter element %d = %d, want %d", i, it.Value(), want[i])
			}
			i++
		}
		if i != len(want) {
			t.Fatalf("iterator visited %d elements, want %d", i, len(want))
		}
		// Contains.
		for v := 0; v < 1000; v += 7 {
			if s.Contains(v) != model[v] {
				t.Fatalf("Contains(%d) = %v", v, s.Contains(v))
			}
		}
	}
}

func TestFloor(t *testing.T) {
	var s Set
	for _, v := range []int{2, 5, 9, 14, 20} {
		s.Insert(v)
	}
	cases := []struct {
		bound int
		want  int
		ok    bool
	}{
		{1, 0, false}, {2, 2, true}, {3, 2, true}, {5, 5, true},
		{13, 9, true}, {14, 14, true}, {100, 20, true},
	}
	for _, tc := range cases {
		it, ok := s.Floor(func(v int) bool { return v <= tc.bound })
		if ok != tc.ok {
			t.Errorf("Floor(<=%d) ok=%v, want %v", tc.bound, ok, tc.ok)
			continue
		}
		if ok && it.Value() != tc.want {
			t.Errorf("Floor(<=%d) = %d, want %d", tc.bound, it.Value(), tc.want)
		}
	}
	if _, ok := (&Set{}).Floor(func(int) bool { return true }); ok {
		t.Error("Floor on empty set reported ok")
	}
}

func TestFloorQuick(t *testing.T) {
	f := func(raw []uint16, bound uint16) bool {
		var s Set
		for _, v := range raw {
			s.Insert(int(v))
		}
		it, ok := s.Floor(func(v int) bool { return v <= int(bound) })
		// Reference: largest inserted value <= bound.
		best, found := 0, false
		for _, v := range raw {
			if int(v) <= int(bound) && (!found || int(v) > best) {
				best, found = int(v), true
			}
		}
		if ok != found {
			return false
		}
		return !ok || it.Value() == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFloorKeyMatchesFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const dom = 500
	keys := make([]uint64, dom)
	v := uint64(0)
	for i := range keys {
		v += uint64(rng.Intn(5)) // ascending, with repeats
		keys[i] = v
	}
	for trial := 0; trial < 40; trial++ {
		var s Set
		for i := 0; i < rng.Intn(300); i++ {
			s.Insert(rng.Intn(dom))
		}
		for probe := 0; probe < 50; probe++ {
			bound := uint64(rng.Intn(int(v) + 2))
			want, wantOK := s.Floor(func(e int) bool { return keys[e] <= bound })
			got, gotOK := s.FloorKey(keys, 0, bound)
			if gotOK != wantOK {
				t.Fatalf("FloorKey(%d) ok=%v, Floor ok=%v", bound, gotOK, wantOK)
			}
			if gotOK && got.Value() != want.Value() {
				t.Fatalf("FloorKey(%d) = %d, Floor = %d", bound, got.Value(), want.Value())
			}
		}
	}
}

func TestFloorLookahead(t *testing.T) {
	var s Set
	for v := 0; v < 300; v += 3 {
		s.Insert(v)
	}
	it, ok := s.Floor(func(v int) bool { return v <= 150 })
	if !ok || it.Value() != 150 {
		t.Fatalf("floor = %v, %v", it, ok)
	}
	// A copied iterator advances independently (lookahead).
	peek := it
	peek.Next()
	if !peek.Valid() || peek.Value() != 153 {
		t.Fatalf("peek = %d", peek.Value())
	}
	if it.Value() != 150 {
		t.Fatal("advancing the copy moved the original")
	}
}

func TestResetReusesStorage(t *testing.T) {
	var s Set
	for i := 0; i < 1000; i++ {
		s.Insert(i * 2)
	}
	s.Reset()
	if s.Len() != 0 || s.AppendTo(nil) != nil {
		t.Fatal("Reset left elements behind")
	}
	// After a warm-up cycle, re-filling must not allocate.
	s.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		s.Reset()
		for i := 0; i < 1000; i++ {
			s.Insert(i * 2)
		}
	})
	if allocs > 0 {
		t.Errorf("steady-state refill allocated %.1f times per run", allocs)
	}
}

func TestSplitOrderPreserved(t *testing.T) {
	// Descending inserts exercise the front-bucket split path.
	var s Set
	for i := 5000; i >= 0; i-- {
		s.Insert(i)
	}
	got := s.AppendTo(nil)
	for i, v := range got {
		if v != i {
			t.Fatalf("element %d = %d after descending inserts", i, v)
		}
	}
}

// BenchmarkInsert compares the bucketed set against the naive sorted
// slice with insert-by-copy it replaces, at the knowledge-base scale of
// the paper's evaluation (10k frames per segment).
func BenchmarkInsert(b *testing.B) {
	const n = 10000
	perm := rand.New(rand.NewSource(3)).Perm(n)
	b.Run("ordset", func(b *testing.B) {
		var s Set
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Reset()
			for _, v := range perm {
				s.Insert(v)
			}
		}
	})
	b.Run("sortedslice", func(b *testing.B) {
		buf := make([]int, 0, n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			kl := buf[:0]
			for _, v := range perm {
				at := sort.SearchInts(kl, v)
				kl = append(kl, 0)
				copy(kl[at+1:], kl[at:])
				kl[at] = v
			}
		}
	})
}

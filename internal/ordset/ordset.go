// Package ordset provides an ordered set of small non-negative ints
// with amortized-cheap ordered insert, in-order iteration, and a
// predicate floor search.
//
// It replaces the sorted-slice-with-copy idiom (binary search plus
// O(n) element shift per insert) on the DSI client's hot path: the
// client records every frame it learns about in per-segment ordered
// lists, and under large segments those lists grow to thousands of
// entries. The set keeps its elements in a sequence of small sorted
// buckets, so an insert shifts at most one bucket (a few cache lines)
// instead of the whole list, while iteration and binary search stay
// cheap.
//
// A Set retains its bucket storage across Reset, so a long-lived query
// session re-running queries reaches a steady state with zero
// allocations.
package ordset

import "sort"

// bucketMax is the split threshold: a bucket that grows past this many
// elements is cut in half. Inserts shift at most bucketMax elements
// (two cache lines' worth of ints), and splits copy half of that.
const bucketMax = 128

// Set is an ordered set of ints. The zero value is an empty set ready
// for use. Sets are not safe for concurrent mutation.
type Set struct {
	// buckets hold the elements in ascending order: every bucket is
	// sorted, non-empty, and all elements of bucket i precede those of
	// bucket i+1.
	buckets [][]int
	// free recycles bucket storage released by Reset.
	free [][]int
	n    int
}

// Len returns the number of elements.
func (s *Set) Len() int { return s.n }

// Reset empties the set, retaining bucket storage for reuse.
func (s *Set) Reset() {
	for i, b := range s.buckets {
		s.free = append(s.free, b[:0])
		s.buckets[i] = nil
	}
	s.buckets = s.buckets[:0]
	s.n = 0
}

// newBucket returns an empty bucket, recycling freed storage.
func (s *Set) newBucket() []int {
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return b
	}
	return make([]int, 0, bucketMax+1)
}

// Insert adds v to the set and reports whether it was absent.
func (s *Set) Insert(v int) bool {
	if len(s.buckets) == 0 {
		b := s.newBucket()
		s.buckets = append(s.buckets, append(b, v))
		s.n = 1
		return true
	}
	// The last bucket whose first element is <= v; v below every
	// bucket goes into bucket 0.
	bi := sort.Search(len(s.buckets), func(i int) bool { return s.buckets[i][0] > v }) - 1
	if bi < 0 {
		bi = 0
	}
	b := s.buckets[bi]
	at := sort.SearchInts(b, v)
	if at < len(b) && b[at] == v {
		return false
	}
	b = append(b, 0)
	copy(b[at+1:], b[at:])
	b[at] = v
	if len(b) > bucketMax {
		h := len(b) / 2
		right := append(s.newBucket(), b[h:]...)
		b = b[:h]
		s.buckets = append(s.buckets, nil)
		copy(s.buckets[bi+2:], s.buckets[bi+1:])
		s.buckets[bi+1] = right
	}
	s.buckets[bi] = b
	s.n++
	return true
}

// Contains reports whether v is in the set.
func (s *Set) Contains(v int) bool {
	bi := sort.Search(len(s.buckets), func(i int) bool { return s.buckets[i][0] > v }) - 1
	if bi < 0 {
		return false
	}
	b := s.buckets[bi]
	at := sort.SearchInts(b, v)
	return at < len(b) && b[at] == v
}

// Iter is a forward iterator over a Set. Copying an Iter yields an
// independent cursor (useful for one-element lookahead). Mutating the
// set invalidates its iterators.
type Iter struct {
	s      *Set
	bi, si int
}

// Begin returns an iterator at the smallest element.
func (s *Set) Begin() Iter { return Iter{s: s} }

// Valid reports whether the iterator points at an element.
func (it Iter) Valid() bool { return it.bi < len(it.s.buckets) }

// Value returns the current element. The iterator must be Valid.
func (it Iter) Value() int { return it.s.buckets[it.bi][it.si] }

// Next advances to the next element in ascending order.
func (it *Iter) Next() {
	it.si++
	if it.si >= len(it.s.buckets[it.bi]) {
		it.bi++
		it.si = 0
	}
}

// Floor returns an iterator at the largest element for which pred
// holds, assuming pred is monotone over the elements in ascending
// order (true on a prefix, false on the rest). ok is false when pred
// holds for no element (or the set is empty).
func (s *Set) Floor(pred func(v int) bool) (it Iter, ok bool) {
	if len(s.buckets) == 0 || !pred(s.buckets[0][0]) {
		return Iter{s: s}, false
	}
	// Last bucket whose first element satisfies pred; its predecessor
	// buckets are entirely within the prefix.
	bi := sort.Search(len(s.buckets), func(i int) bool { return !pred(s.buckets[i][0]) }) - 1
	b := s.buckets[bi]
	si := sort.Search(len(b), func(i int) bool { return !pred(b[i]) }) - 1
	return Iter{s: s, bi: bi, si: si}, true
}

// FloorKey returns an iterator at the largest element v with
// keys[base+v] <= bound, assuming keys[base+v] is ascending over the
// elements in ascending order. It is the closure-free specialization of
// Floor for key-array lookups on hot paths (the DSI client floors by
// frame HC value on every navigation step). ok is false when no element
// qualifies (or the set is empty).
func (s *Set) FloorKey(keys []uint64, base int, bound uint64) (it Iter, ok bool) {
	nb := len(s.buckets)
	if nb == 0 || keys[base+s.buckets[0][0]] > bound {
		return Iter{s: s}, false
	}
	// Last bucket whose first element's key is <= bound.
	lo, hi := 0, nb // invariant: bucket lo qualifies, bucket hi does not
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if keys[base+s.buckets[mid][0]] <= bound {
			lo = mid
		} else {
			hi = mid
		}
	}
	b := s.buckets[lo]
	si, se := 0, len(b) // invariant: element si qualifies, element se does not
	for si+1 < se {
		mid := int(uint(si+se) >> 1)
		if keys[base+b[mid]] <= bound {
			si = mid
		} else {
			se = mid
		}
	}
	return Iter{s: s, bi: lo, si: si}, true
}

// AppendTo appends the elements in ascending order to dst.
func (s *Set) AppendTo(dst []int) []int {
	for _, b := range s.buckets {
		dst = append(dst, b...)
	}
	return dst
}

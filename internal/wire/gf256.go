// GF(256) arithmetic and the Vandermonde erasure code the FEC layer
// rests on. The field is GF(2^8) with the usual primitive polynomial
// x^8+x^4+x^3+x^2+1 (0x11d) and generator alpha = 2; addition is XOR,
// so a rate-(k/(k+1)) code with one parity row degenerates to the plain
// XOR parity group and the same machinery serves both code families the
// FEC design names (XOR groups first, Reed-Solomon-style for
// multi-loss bursts).
//
// Parity row j of a group is Sum_i alpha^(i*j) * data_i: row 0 is the
// all-ones XOR row, rows 1..r-1 extend it to a Vandermonde system in
// the distinct nodes alpha^i. Decoding solves the erased columns from
// whichever parity rows arrived, by Gaussian elimination over all
// received rows — recovery succeeds exactly when the received equations
// determine the erasures, with no reliance on submatrix-regularity
// folklore (a rank-deficient system reports failure instead of
// producing garbage).

package wire

import "fmt"

// gfPoly is the primitive polynomial of the field (0x11d without the
// x^8 term once reduced).
const gfPoly = 0x1d

// gfExp holds alpha^i for i in [0, 510) so products of two logs need no
// modular reduction; gfLog is its inverse on [1, 255].
var gfExp, gfLog = gfTables()

func gfTables() (exp [510]byte, log [256]byte) {
	x := 1
	for i := 0; i < 255; i++ {
		exp[i] = byte(x)
		exp[i+255] = byte(x)
		log[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x = (x ^ 0x100) ^ gfPoly
		}
	}
	return exp, log
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a non-zero element.
func gfInv(a byte) byte {
	if a == 0 {
		panic("wire: inverse of zero in GF(256)")
	}
	return gfExp[255-int(gfLog[a])]
}

// gfCoef returns the Vandermonde coefficient alpha^(i*j) of data
// column i in parity row j.
func gfCoef(i, j int) byte {
	return gfExp[(i*j)%255]
}

// mulAddInto accumulates dst ^= c * src over whole symbols.
func mulAddInto(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for b, v := range src {
			dst[b] ^= v
		}
		return
	}
	lc := int(gfLog[c])
	for b, v := range src {
		if v != 0 {
			dst[b] ^= gfExp[lc+int(gfLog[v])]
		}
	}
}

// RSParity computes the r parity symbols of one code group. Every data
// symbol must have the same length; the returned parity symbols share
// it. Row 0 is the XOR of the group, so r = 1 is the plain XOR code.
func RSParity(data [][]byte, r int) [][]byte {
	if len(data) == 0 || r <= 0 {
		return nil
	}
	if len(data)+r > 255 {
		panic(fmt.Sprintf("wire: code group of %d data + %d parity exceeds GF(256)", len(data), r))
	}
	symLen := len(data[0])
	out := make([][]byte, r)
	for j := range out {
		p := make([]byte, symLen)
		for i, d := range data {
			if len(d) != symLen {
				panic(fmt.Sprintf("wire: symbol %d is %dB, group uses %dB", i, len(d), symLen))
			}
			mulAddInto(p, d, gfCoef(i, j))
		}
		out[j] = p
	}
	return out
}

// RSRecover reconstructs the erased data symbols of one code group in
// place. data[i] == nil marks an erasure; parity[j] == nil marks a
// parity symbol that was itself lost. It reports whether every erasure
// was recovered: recovery solves the received parity equations for the
// erased columns and fails (leaving data untouched) when they do not
// determine all of them — more erasures than surviving parity rows, or
// a rank-deficient system.
func RSRecover(data [][]byte, parity [][]byte) bool {
	var erased []int
	symLen := -1
	for i, d := range data {
		if d == nil {
			erased = append(erased, i)
		} else if symLen < 0 {
			symLen = len(d)
		}
	}
	if len(erased) == 0 {
		return true
	}
	if symLen < 0 {
		for _, p := range parity {
			if p != nil {
				symLen = len(p)
				break
			}
		}
	}
	if symLen < 0 {
		return false // nothing received at all
	}

	// One equation per received parity row: the erased columns on the
	// left, the parity minus the known columns on the right.
	var rows [][]byte // coefficient vector (len(erased)) followed by rhs
	for j, p := range parity {
		if p == nil {
			continue
		}
		row := make([]byte, len(erased)+symLen)
		for m, i := range erased {
			row[m] = gfCoef(i, j)
		}
		rhs := row[len(erased):]
		copy(rhs, p)
		for i, d := range data {
			if d != nil {
				mulAddInto(rhs, d, gfCoef(i, j))
			}
		}
		rows = append(rows, row)
	}
	if len(rows) < len(erased) {
		return false
	}

	// Gauss-Jordan over the received rows.
	for col := 0; col < len(erased); col++ {
		pivot := -1
		for r := col; r < len(rows); r++ {
			if rows[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return false // rank-deficient: the erasures are undetermined
		}
		rows[col], rows[pivot] = rows[pivot], rows[col]
		if c := rows[col][col]; c != 1 {
			inv := gfInv(c)
			row := rows[col]
			for b := col; b < len(row); b++ {
				row[b] = gfMul(row[b], inv)
			}
		}
		for r := range rows {
			if r != col && rows[r][col] != 0 {
				mulAddInto(rows[r][col:], rows[col][col:], rows[r][col])
			}
		}
	}
	for m, i := range erased {
		sym := make([]byte, symLen)
		copy(sym, rows[m][len(erased):])
		data[i] = sym
	}
	return true
}

// Versioned shard directory: the on-air envelope that makes the shard
// directory swappable. A static broadcast ships the bare directory
// (EncodeShardDir); a transmitter that re-plans online ships it wrapped
// in a small header carrying a magic tag, a monotonically increasing
// version, the channel count, and the absolute seam slot at which this
// directory took (or takes) effect. Receivers compare the version
// against the one they seeded from; a bump tells a mid-query client to
// re-seed its shard spans from the new entries, and the seam slot tells
// it when each channel's old cycle gives way to the new schedule
// (channel ch switches at its first old-cycle boundary at or after the
// seam, so old-version frames keep streaming across the transition
// window).

package wire

import (
	"encoding/binary"
	"fmt"

	"dsi/internal/dsi"
)

// DirMagic tags a versioned directory payload.
const DirMagic = 0xD51D

// DirVHeaderSize is the encoded size of the versioned-directory header:
// magic (2), version (4), channel count (2), seam slot (8).
const DirVHeaderSize = 2 + 4 + 2 + 8

// DirVSize returns the encoded size of a versioned directory over n
// channels.
func DirVSize(n int) int { return DirVHeaderSize + DirSize(n) }

// EncodeDirV serializes the versioned channel directory of a layout:
// the header followed by the bare directory entries EncodeShardDir
// produces. seam is the absolute slot at which the directory took
// effect (0 for the initial directory of a broadcast).
func EncodeDirV(lay *dsi.Layout, version uint32, seam int64) ([]byte, error) {
	body, err := EncodeShardDir(lay)
	if err != nil {
		return nil, err
	}
	if seam < 0 {
		return nil, fmt.Errorf("wire: negative directory seam %d", seam)
	}
	n := lay.Channels()
	buf := make([]byte, DirVHeaderSize+len(body))
	binary.BigEndian.PutUint16(buf[0:], DirMagic)
	binary.BigEndian.PutUint32(buf[2:], version)
	binary.BigEndian.PutUint16(buf[6:], uint16(n))
	binary.BigEndian.PutUint64(buf[8:], uint64(seam))
	copy(buf[DirVHeaderSize:], body)
	return buf, nil
}

// DecodeDirV parses a versioned channel directory: header validation
// (magic, channel count against the body length) followed by the bare
// directory's own consistency checks. It returns the version, the seam
// slot at which the directory took effect, and the per-channel entries.
func DecodeDirV(buf []byte) (version uint32, seam int64, dir []DirEntry, err error) {
	if len(buf) < DirVHeaderSize {
		return 0, 0, nil, fmt.Errorf("wire: versioned directory of %d bytes is truncated (header is %d)",
			len(buf), DirVHeaderSize)
	}
	if m := binary.BigEndian.Uint16(buf[0:]); m != DirMagic {
		return 0, 0, nil, fmt.Errorf("wire: directory magic %#04x, want %#04x", m, DirMagic)
	}
	version = binary.BigEndian.Uint32(buf[2:])
	n := int(binary.BigEndian.Uint16(buf[6:]))
	rawSeam := binary.BigEndian.Uint64(buf[8:])
	if rawSeam > 1<<62 {
		return 0, 0, nil, fmt.Errorf("wire: directory seam %d out of range", rawSeam)
	}
	seam = int64(rawSeam)
	body := buf[DirVHeaderSize:]
	if len(body) != DirSize(n) {
		return 0, 0, nil, fmt.Errorf("wire: directory body of %d bytes for %d channels, want %d",
			len(body), n, DirSize(n))
	}
	dir, err = DecodeShardDir(body)
	if err != nil {
		return 0, 0, nil, err
	}
	return version, seam, dir, nil
}

package wire

import (
	"strings"
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
)

func shardLayout(t *testing.T, n int, seed int64, bounds func(nf int) []int) *dsi.Layout {
	t.Helper()
	ds := dataset.Uniform(n, 7, seed)
	x, err := dsi.Build(ds, dsi.Config{ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	b := bounds(x.NF)
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: len(b), Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: b})
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

// TestDirVRoundTrip: encode/decode preserves version, seam, and the
// entries of the bare directory.
func TestDirVRoundTrip(t *testing.T) {
	lay := shardLayout(t, 300, 21, func(nf int) []int { return []int{0, 40, 120, nf} })
	buf, err := EncodeDirV(lay, 7, 12345)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != DirVSize(lay.Channels()) {
		t.Fatalf("encoded %d bytes, want %d", len(buf), DirVSize(lay.Channels()))
	}
	version, seam, dir, err := DecodeDirV(buf)
	if err != nil {
		t.Fatal(err)
	}
	if version != 7 || seam != 12345 {
		t.Fatalf("decoded version %d seam %d", version, seam)
	}
	bare, err := EncodeShardDir(lay)
	if err != nil {
		t.Fatal(err)
	}
	bareDir, err := DecodeShardDir(bare)
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != len(bareDir) {
		t.Fatalf("%d entries, want %d", len(dir), len(bareDir))
	}
	for ch := range dir {
		if dir[ch] != bareDir[ch] {
			t.Fatalf("channel %d entry %+v != bare %+v", ch, dir[ch], bareDir[ch])
		}
	}
}

// TestDirVErrors covers the malformed-payload paths a receiver must
// reject: truncation at every interesting boundary, a wrong magic, a
// channel count contradicting the body, and a corrupted body.
func TestDirVErrors(t *testing.T) {
	lay := shardLayout(t, 200, 23, func(nf int) []int { return []int{0, 30, nf} })
	buf, err := EncodeDirV(lay, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want string
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated"},
		{"header cut", func(b []byte) []byte { return b[:DirVHeaderSize-1] }, "truncated"},
		{"body cut", func(b []byte) []byte { return b[:len(b)-3] }, "body"},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, "magic"},
		{"channel count lies", func(b []byte) []byte { b[7]++; return b }, "body"},
		{"overflow seam", func(b []byte) []byte { b[8] = 0xff; return b }, "seam"},
		{"corrupt entry kind", func(b []byte) []byte { b[DirVHeaderSize] = 9; return b }, "unknown kind"},
	}
	for _, tc := range cases {
		cp := append([]byte(nil), buf...)
		_, _, _, err := DecodeDirV(tc.mut(cp))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDirVVersionsDistinguishable: two directories of the same
// broadcast under different plans decode to different shard maps, and
// the version field orders them — the property the client re-sync
// protocol rests on.
func TestDirVVersionsDistinguishable(t *testing.T) {
	ds := dataset.Uniform(300, 7, 29)
	x, err := dsi.Build(ds, dsi.Config{ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(b []int) *dsi.Layout {
		lay, err := dsi.NewLayout(x, dsi.MultiConfig{
			Channels: len(b), Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: b})
		if err != nil {
			t.Fatal(err)
		}
		return lay
	}
	old := mk([]int{0, 100, 200, x.NF})
	new_ := mk([]int{0, 20, 60, x.NF})
	bufOld, err := EncodeDirV(old, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	bufNew, err := EncodeDirV(new_, 2, 7777)
	if err != nil {
		t.Fatal(err)
	}
	vOld, _, dirOld, err := DecodeDirV(bufOld)
	if err != nil {
		t.Fatal(err)
	}
	vNew, seamNew, dirNew, err := DecodeDirV(bufNew)
	if err != nil {
		t.Fatal(err)
	}
	if vNew <= vOld {
		t.Fatalf("version not bumped: %d -> %d", vOld, vNew)
	}
	if seamNew != 7777 {
		t.Fatalf("seam %d", seamNew)
	}
	same := true
	for ch := range dirOld {
		if dirOld[ch] != dirNew[ch] {
			same = false
		}
	}
	if same {
		t.Fatal("re-planned directory decodes identically to the old one")
	}
}

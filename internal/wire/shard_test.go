package wire

import (
	"strings"
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
)

func shardedLayout(t *testing.T, bounds []int) *dsi.Layout {
	t.Helper()
	ds := dataset.Uniform(200, 7, 19)
	x, err := dsi.Build(ds, dsi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if bounds == nil {
		bounds = []int{0, 13, 60, x.NF}
	}
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: len(bounds), Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

// TestShardDirRoundTrip: the directory carries exactly the per-channel
// geometry the layout defines, and the decoded frame counts validate
// the layout's own multi-channel tables.
func TestShardDirRoundTrip(t *testing.T) {
	lay := shardedLayout(t, nil)
	buf, err := EncodeShardDir(lay)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != DirSize(lay.Channels()) {
		t.Fatalf("directory is %dB, want %d", len(buf), DirSize(lay.Channels()))
	}
	dir, err := DecodeShardDir(buf)
	if err != nil {
		t.Fatal(err)
	}
	bounds := lay.ShardBounds()
	for ch, e := range dir {
		wantKind := uint8(DirData)
		wantStart := 0
		if ch == lay.StartCh {
			wantKind = DirIndex
		} else {
			wantStart = bounds[ch-1]
		}
		if e.Kind != wantKind || int(e.StartFrame) != wantStart ||
			int(e.Frames) != lay.FramesOn(ch) || int(e.CycleSlots) != lay.ChanLen(ch) {
			t.Fatalf("channel %d: entry %+v (want kind %d start %d frames %d cycle %d)",
				ch, e, wantKind, wantStart, lay.FramesOn(ch), lay.ChanLen(ch))
		}
	}
	// The decoded geometry validates the layout's own tables.
	framesOn := FramesOnDir(dir)
	tables, err := EncodeLayoutTables(lay)
	if err != nil {
		t.Fatal(err)
	}
	for pos, tab := range tables {
		if _, _, err := DecodeTableMC(tab[:MCTableSize(lay.X.E)], framesOn); err != nil {
			t.Fatalf("position %d: table rejected by directory geometry: %v", pos, err)
		}
	}
}

// TestShardDirSplitLayout: split layouts (balanced blocks) are
// directory-describable too — the degenerate uniform shard map.
func TestShardDirSplitLayout(t *testing.T) {
	ds := dataset.Uniform(150, 7, 23)
	x, err := dsi.Build(ds, dsi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{Channels: 3, Scheduler: dsi.SchedSplit})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := EncodeShardDir(lay)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := DecodeShardDir(buf)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for ch, e := range dir {
		if ch == lay.StartCh {
			continue
		}
		total += int(e.Frames)
	}
	if total != x.NF {
		t.Fatalf("data shards cover %d frames, want %d", total, x.NF)
	}
}

// TestShardDirErrors covers the decoder's validation and the encoder's
// scheduler guard.
func TestShardDirErrors(t *testing.T) {
	lay := shardedLayout(t, nil)
	buf, err := EncodeShardDir(lay)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DecodeShardDir(buf[:len(buf)-3]); err == nil {
		t.Error("truncated directory accepted")
	}
	if _, err := DecodeShardDir(nil); err == nil {
		t.Error("empty directory accepted")
	}

	bad := append([]byte(nil), buf...)
	bad[0] = 7 // unknown kind
	if _, err := DecodeShardDir(bad); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("unknown kind accepted: %v", err)
	}

	bad = append([]byte(nil), buf...)
	bad[DirEntrySize+2]++ // second channel's shard start off by one
	if _, err := DecodeShardDir(bad); err == nil || !strings.Contains(err.Error(), "starts at") {
		t.Errorf("non-contiguous shards accepted: %v", err)
	}

	bad = append([]byte(nil), buf...)
	bad[0] = DirData      // no index channel left
	bad[1], bad[2] = 0, 0 // make it a data shard starting at 0
	if _, err := DecodeShardDir(bad); err == nil {
		t.Error("directory without an index channel accepted")
	}

	// Stripe layouts have no index channel to describe.
	ds := dataset.Uniform(100, 7, 29)
	x, err := dsi.Build(ds, dsi.Config{})
	if err != nil {
		t.Fatal(err)
	}
	stripe, err := dsi.NewLayout(x, dsi.MultiConfig{Channels: 2, Scheduler: dsi.SchedStripe})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeShardDir(stripe); err == nil {
		t.Error("stripe layout accepted by EncodeShardDir")
	}
}

// TestReserveMCPtrLiftsTightBudget is the wire-side contract of the
// dsi.Config.ReserveMCPtr build option: an index whose tables fill
// their packet budget to within E bytes is rejected by
// EncodeLayoutTables (the wider multi-channel pointers would overflow),
// and rebuilding with the reservation lifts the layout without touching
// the narrow single-channel encoding.
func TestReserveMCPtrLiftsTightBudget(t *testing.T) {
	ds := dataset.Uniform(256, 7, 37)
	tight := dsi.Config{Capacity: 32, Sizing: dsi.SizingUnitFactor}
	x, err := dsi.Build(ds, tight)
	if err != nil {
		t.Fatal(err)
	}
	// The plain build's own (narrow) tables fit...
	if _, err := EncodeFrameTables(x); err != nil {
		t.Fatalf("narrow tables rejected: %v", err)
	}
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{Channels: 2, Scheduler: dsi.SchedSplit})
	if err != nil {
		t.Fatal(err)
	}
	// ...but the multi-channel format overflows the budget.
	if _, err := EncodeLayoutTables(lay); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("tight budget accepted for multi-channel tables: %v", err)
	}

	reserved := tight
	reserved.ReserveMCPtr = true
	xr, err := dsi.Build(ds, reserved)
	if err != nil {
		t.Fatal(err)
	}
	layr, err := dsi.NewLayout(xr, dsi.MultiConfig{Channels: 2, Scheduler: dsi.SchedSplit})
	if err != nil {
		t.Fatal(err)
	}
	tabs, err := EncodeLayoutTables(layr)
	if err != nil {
		t.Fatalf("reserved build still rejected: %v", err)
	}
	if len(tabs) != xr.NF {
		t.Fatalf("%d tables, want %d", len(tabs), xr.NF)
	}
	// The reservation also keeps the narrow format valid (it only adds
	// headroom).
	if _, err := EncodeFrameTables(xr); err != nil {
		t.Fatalf("narrow tables rejected after reservation: %v", err)
	}
	// Sharded layouts go through the same budget check.
	shardLay, err := dsi.NewLayout(xr, dsi.MultiConfig{
		Channels: 3, Scheduler: dsi.SchedShard, ShardBounds: []int{0, 50, xr.NF}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EncodeLayoutTables(shardLay); err != nil {
		t.Fatalf("sharded layout rejected after reservation: %v", err)
	}
}

// TestBoundsFromDirRoundTrip: the shard boundaries a layout was built
// with survive the encode/decode/extract round trip — the path a
// receiver rebuilds its layout through after a directory version bump.
func TestBoundsFromDirRoundTrip(t *testing.T) {
	want := []int{0, 13, 60, 200}
	lay := shardedLayout(t, want)
	buf, err := EncodeShardDir(lay)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := DecodeShardDir(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := BoundsFromDir(dir)
	if len(got) != len(want) {
		t.Fatalf("bounds %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bounds %v, want %v", got, want)
		}
	}
}

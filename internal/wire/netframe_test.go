package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestNetFrameRoundTrip(t *testing.T) {
	frames := []NetFrame{
		{Kind: NetData, Flags: 3, Ch: 2, Slot: 917, Ver: 4, Abs: 1 << 40, Payload: []byte("payload bytes")},
		{Kind: NetData, Ch: 0, Slot: 0, Ver: 1, Abs: 0, Payload: nil}, // padding slot: empty payload
		{Kind: NetDir, Ver: 7, Abs: 12345, Payload: bytes.Repeat([]byte{0xAB}, 90)},
		{Kind: NetFECDesc, Ver: 7, Abs: 12345, Payload: make([]byte, FECDescSize)},
	}
	var buf []byte
	for _, f := range frames {
		var err error
		buf, err = AppendNetFrame(buf, f)
		if err != nil {
			t.Fatalf("append %+v: %v", f, err)
		}
	}
	at := 0
	for i, want := range frames {
		got, n, err := DecodeNetFrame(buf[at:])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if n != NetFrameHeader+len(want.Payload) {
			t.Fatalf("frame %d: consumed %d", i, n)
		}
		if got.Kind != want.Kind || got.Flags != want.Flags || got.Ch != want.Ch ||
			got.Slot != want.Slot || got.Ver != want.Ver || got.Abs != want.Abs ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		at += n
	}
	if at != len(buf) {
		t.Fatalf("decoded %d of %d bytes", at, len(buf))
	}
}

// TestNetFrameShortVsMalformed pins the contract a stream reader
// depends on: every truncation of a valid frame yields ErrShortFrame
// (keep reading), while corrupt magic or kind is a hard error (the
// stream has desynced and must be torn down).
func TestNetFrameShortVsMalformed(t *testing.T) {
	full, err := AppendNetFrame(nil, NetFrame{Kind: NetData, Ch: 1, Slot: 9, Ver: 1, Abs: 77, Payload: []byte("abcdef")})
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(full); cut++ {
		_, n, err := DecodeNetFrame(full[:cut])
		if !errors.Is(err, ErrShortFrame) || n != 0 {
			t.Fatalf("cut %d: got n=%d err=%v, want ErrShortFrame", cut, n, err)
		}
	}

	bad := append([]byte(nil), full...)
	bad[0] = 0x00
	if _, _, err := DecodeNetFrame(bad); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("bad magic byte 0: err=%v", err)
	}
	if _, _, err := DecodeNetFrame(bad[:1]); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("bad magic, 1 byte: err=%v", err)
	}
	bad = append([]byte(nil), full...)
	bad[1] = 0x00
	if _, _, err := DecodeNetFrame(bad); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("bad magic byte 1: err=%v", err)
	}
	bad = append([]byte(nil), full...)
	bad[2] = 0 // kind below NetData
	if _, _, err := DecodeNetFrame(bad); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("kind 0: err=%v", err)
	}
	bad[2] = NetFECDesc + 1
	if _, _, err := DecodeNetFrame(bad); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("kind out of range: err=%v", err)
	}
	bad = append([]byte(nil), full...)
	bad[14] = 0xFF // absolute slot out of range
	if _, _, err := DecodeNetFrame(bad); err == nil || errors.Is(err, ErrShortFrame) {
		t.Fatalf("huge abs: err=%v", err)
	}
}

func TestNetFrameAppendRejects(t *testing.T) {
	if _, err := AppendNetFrame(nil, NetFrame{Kind: 0, Abs: 1}); err == nil {
		t.Fatal("kind 0 accepted")
	}
	if _, err := AppendNetFrame(nil, NetFrame{Kind: NetData, Abs: -1}); err == nil {
		t.Fatal("negative abs accepted")
	}
	if _, err := AppendNetFrame(nil, NetFrame{Kind: NetData, Abs: 0, Payload: make([]byte, MaxNetPayload+1)}); err == nil {
		t.Fatal("oversized payload accepted")
	}
}

// Network packet framing: the transport envelope a broadcast station
// wraps every on-air packet in before it leaves the process. The
// simulator and the in-process byte path address packets positionally —
// a receiver asks its PacketSource for "channel ch at absolute slot
// abs" and the source computes the answer. A network link inverts the
// flow: the station pushes packets and the receiver must reconstruct
// the position from what arrives (possibly late, reordered across
// channels, or not at all). The net frame therefore carries the full
// position of its payload — channel, per-channel cycle slot, absolute
// slot, and the directory version governing its encoding — so a
// client-side feed can slot it into a positional buffer and the
// existing WireReceiver/FECReceiver decode machinery runs unchanged.
//
// Three frame kinds share the envelope:
//
//   - NetData: one on-air packet (index table part, object part, or
//     parity frame), flags preserved from the station framing.
//   - NetDir: the versioned shard directory (wire.EncodeDirV bytes),
//     the in-band control stream that lets a stale or reconnecting
//     receiver learn a directory bump without a side channel.
//   - NetFECDesc: the versioned FEC descriptor (wire.EncodeFECDesc
//     bytes), shipped alongside the directory so coded receivers can
//     validate the code before decoding.
//
// One UDP datagram carries exactly one frame (loss granularity = one
// slot, the semantics the FEC layer is designed for); HTTP streams
// concatenate frames back to back, so DecodeNetFrame distinguishes "I
// need more bytes" (ErrShortFrame) from "this is not a frame"
// (malformed — a stream desync the reader must treat as fatal).

package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Net frame kinds.
const (
	NetData    byte = 1 // one on-air packet
	NetDir     byte = 2 // versioned shard directory (EncodeDirV payload)
	NetFECDesc byte = 3 // versioned FEC descriptor (EncodeFECDesc payload)
)

const (
	netMagic0 = 0xD5
	netMagic1 = 0x1E

	// NetFrameHeader is the fixed envelope size preceding the payload.
	NetFrameHeader = 24

	// MaxNetPayload is the largest payload a frame can carry (2-byte
	// length field).
	MaxNetPayload = 1<<16 - 1
)

// ErrShortFrame reports that the buffer ends before the frame does:
// a stream reader should keep the bytes and wait for more. Any other
// decode error means the bytes are not a valid frame at all.
var ErrShortFrame = errors.New("wire: incomplete net frame")

// NetFrame is one transport frame: the position-stamped envelope of an
// on-air packet or an in-band control payload.
type NetFrame struct {
	Kind    byte   // NetData, NetDir, or NetFECDesc
	Flags   byte   // station packet flags (NetData); 0 for control frames
	Ch      uint16 // broadcast channel (NetData); 0 for control frames
	Slot    uint32 // per-channel cycle slot (NetData); 0 for control frames
	Ver     uint32 // directory version governing the payload
	Abs     int64  // absolute slot of emission (the shared air clock)
	Payload []byte
}

// AppendNetFrame appends the encoded frame to dst and returns the
// extended slice. The payload is copied; the frame must have a valid
// kind, a non-negative absolute slot, and a payload within the 2-byte
// length field.
func AppendNetFrame(dst []byte, f NetFrame) ([]byte, error) {
	if f.Kind < NetData || f.Kind > NetFECDesc {
		return dst, fmt.Errorf("wire: net frame kind %d", f.Kind)
	}
	if f.Abs < 0 {
		return dst, fmt.Errorf("wire: net frame at negative slot %d", f.Abs)
	}
	if len(f.Payload) > MaxNetPayload {
		return dst, fmt.Errorf("wire: net frame payload %dB exceeds %dB", len(f.Payload), MaxNetPayload)
	}
	var hdr [NetFrameHeader]byte
	hdr[0] = netMagic0
	hdr[1] = netMagic1
	hdr[2] = f.Kind
	hdr[3] = f.Flags
	binary.BigEndian.PutUint16(hdr[4:], f.Ch)
	binary.BigEndian.PutUint32(hdr[6:], f.Slot)
	binary.BigEndian.PutUint32(hdr[10:], f.Ver)
	binary.BigEndian.PutUint64(hdr[14:], uint64(f.Abs))
	binary.BigEndian.PutUint16(hdr[22:], uint16(len(f.Payload)))
	dst = append(dst, hdr[:]...)
	return append(dst, f.Payload...), nil
}

// DecodeNetFrame decodes the frame at the head of buf, returning it and
// the bytes consumed. The returned payload aliases buf — callers that
// retain it beyond the buffer's lifetime must copy. ErrShortFrame means
// the buffer holds a valid prefix of a frame (wait for more bytes); any
// other error means buf does not start with a frame.
func DecodeNetFrame(buf []byte) (NetFrame, int, error) {
	var f NetFrame
	if len(buf) < 2 {
		if len(buf) >= 1 && buf[0] != netMagic0 {
			return f, 0, fmt.Errorf("wire: bad net frame magic %#02x", buf[0])
		}
		return f, 0, ErrShortFrame
	}
	if buf[0] != netMagic0 || buf[1] != netMagic1 {
		return f, 0, fmt.Errorf("wire: bad net frame magic %#02x%02x", buf[0], buf[1])
	}
	if len(buf) < NetFrameHeader {
		return f, 0, ErrShortFrame
	}
	f.Kind = buf[2]
	if f.Kind < NetData || f.Kind > NetFECDesc {
		return f, 0, fmt.Errorf("wire: net frame kind %d", f.Kind)
	}
	f.Flags = buf[3]
	f.Ch = binary.BigEndian.Uint16(buf[4:])
	f.Slot = binary.BigEndian.Uint32(buf[6:])
	f.Ver = binary.BigEndian.Uint32(buf[10:])
	abs := binary.BigEndian.Uint64(buf[14:])
	if abs > 1<<62 {
		return f, 0, fmt.Errorf("wire: net frame slot %d out of range", abs)
	}
	f.Abs = int64(abs)
	plen := int(binary.BigEndian.Uint16(buf[22:]))
	if len(buf) < NetFrameHeader+plen {
		return f, 0, ErrShortFrame
	}
	f.Payload = buf[NetFrameHeader : NetFrameHeader+plen]
	return f, NetFrameHeader + plen, nil
}

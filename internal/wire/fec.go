// Parity framing: the on-air formats that make a DSI broadcast
// erasure-coded. The protected unit is a semantic run the receiver
// already reads contiguously — one frame's index table, or one data
// object — and each unit is followed in-stream by a parity tail.
// Unit members interleave across Groups subgroups (member i joins
// group i mod Groups) so a loss burst shorter than the interleave
// spacing lands on distinct groups; each group carries Parity
// Vandermonde rows over GF(256) (row 0 is the XOR row, so
// Parity == 1 is the plain XOR code).
//
// A parity packet self-describes with a small header — the unit it
// protects, its group, the code dimensions, its row index, and the
// member bitmap — so a receiver that tuned in mid-stream, or one whose
// catalog disagrees with the air, rejects foreign parity instead of
// corrupting a reconstruction. Alongside the shard directory, a coded
// broadcast ships a versioned FEC descriptor announcing the code, so a
// directory version bump (an online re-plan) carries the code metadata
// across the seam with it.

package wire

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// FECCode describes the erasure code protecting one unit kind: the
// unit's members interleave across Groups subgroups, each extended by
// Parity rows. The zero value (and any Parity == 0) means uncoded.
type FECCode struct {
	Groups int
	Parity int
}

// Enabled reports whether the code adds parity at all.
func (c FECCode) Enabled() bool { return c.Parity > 0 }

// Tail returns the parity packets appended after each unit.
func (c FECCode) Tail() int {
	if !c.Enabled() {
		return 0
	}
	return c.Groups * c.Parity
}

// Validate checks the code against the packet count n of the unit it
// is to protect.
func (c FECCode) Validate(n int) error {
	if !c.Enabled() {
		return nil
	}
	if c.Parity > 0xff {
		return fmt.Errorf("wire: %d parity rows exceed the 1-byte row index", c.Parity)
	}
	if c.Groups < 1 || c.Groups > n {
		return fmt.Errorf("wire: %d groups cannot interleave a %d-packet unit", c.Groups, n)
	}
	if n > 64 {
		return fmt.Errorf("wire: %d-packet unit exceeds the 64-bit member bitmap", n)
	}
	// The largest group holds ceil(n/Groups) members.
	if k := (n + c.Groups - 1) / c.Groups; k+c.Parity > 255 {
		return fmt.Errorf("wire: group of %d data + %d parity exceeds GF(256)", k, c.Parity)
	}
	return nil
}

// GroupOf returns the subgroup member i of a unit belongs to.
func (c FECCode) GroupOf(i int) int { return i % c.Groups }

// GroupMembers returns the member bitmap and count of group g of an
// n-packet unit.
func (c FECCode) GroupMembers(n, g int) (members uint64, k int) {
	for i := g; i < n; i += c.Groups {
		members |= 1 << uint(i)
		k++
	}
	return members, k
}

// FECConfig is the full code of a broadcast: index-table units and
// data-object units may run different codes (tables are smaller and
// hotter; objects dominate the tail).
type FECConfig struct {
	Table  FECCode
	Object FECCode
}

// Enabled reports whether either unit kind carries parity.
func (c FECConfig) Enabled() bool { return c.Table.Enabled() || c.Object.Enabled() }

// Validate checks both codes against the broadcast geometry.
func (c FECConfig) Validate(tablePackets, objPackets int) error {
	if err := c.Table.Validate(tablePackets); err != nil {
		return fmt.Errorf("table code: %w", err)
	}
	if err := c.Object.Validate(objPackets); err != nil {
		return fmt.Errorf("object code: %w", err)
	}
	return nil
}

// ParityMagic tags a parity packet payload.
const ParityMagic = 0xFEC7

// ParityHeader identifies one parity packet: the protected unit (by
// the logical slot its first packet occupies on its channel), the
// subgroup, the code dimensions, this packet's parity row, and the
// bitmap of unit members the group covers.
type ParityHeader struct {
	Unit    uint32
	Group   uint8
	K       uint8 // data members in the group
	R       uint8 // parity rows per group
	Index   uint8 // this packet's row, in [0, R)
	Members uint64
}

// ParityHeaderSize is the encoded size of a parity packet header:
// magic (2), unit slot (4), group/k/r/row (4), member bitmap (8).
const ParityHeaderSize = 2 + 4 + 4 + 8

// EncodeParity serializes a parity packet: the header followed by the
// parity symbol (one capacity-sized payload worth of GF(256) output).
func EncodeParity(h ParityHeader, symbol []byte) []byte {
	buf := make([]byte, ParityHeaderSize+len(symbol))
	binary.BigEndian.PutUint16(buf[0:], ParityMagic)
	binary.BigEndian.PutUint32(buf[2:], h.Unit)
	buf[6] = h.Group
	buf[7] = h.K
	buf[8] = h.R
	buf[9] = h.Index
	binary.BigEndian.PutUint64(buf[10:], h.Members)
	copy(buf[ParityHeaderSize:], symbol)
	return buf
}

// DecodeParity parses a parity packet carrying a capacity-sized
// symbol, validating the header's internal consistency.
func DecodeParity(buf []byte, capacity int) (ParityHeader, []byte, error) {
	if len(buf) != ParityHeaderSize+capacity {
		return ParityHeader{}, nil, fmt.Errorf("wire: parity packet of %d bytes, want %d",
			len(buf), ParityHeaderSize+capacity)
	}
	if m := binary.BigEndian.Uint16(buf[0:]); m != ParityMagic {
		return ParityHeader{}, nil, fmt.Errorf("wire: parity magic %#04x, want %#04x", m, ParityMagic)
	}
	h := ParityHeader{
		Unit:    binary.BigEndian.Uint32(buf[2:]),
		Group:   buf[6],
		K:       buf[7],
		R:       buf[8],
		Index:   buf[9],
		Members: binary.BigEndian.Uint64(buf[10:]),
	}
	if h.R == 0 || h.Index >= h.R {
		return ParityHeader{}, nil, fmt.Errorf("wire: parity row %d outside %d rows", h.Index, h.R)
	}
	if h.K == 0 || bits.OnesCount64(h.Members) != int(h.K) {
		return ParityHeader{}, nil, fmt.Errorf("wire: parity bitmap %#x does not cover k=%d members",
			h.Members, h.K)
	}
	if int(h.K)+int(h.R) > 255 {
		return ParityHeader{}, nil, fmt.Errorf("wire: group of %d data + %d parity exceeds GF(256)", h.K, h.R)
	}
	return h, buf[ParityHeaderSize:], nil
}

// FECDescMagic tags a versioned FEC descriptor payload.
const FECDescMagic = 0xFECD

// FECDescSize is the encoded size of the FEC descriptor: magic (2),
// version (4), then (groups, parity) bytes for tables and objects.
const FECDescSize = 2 + 4 + 4

// EncodeFECDesc serializes the versioned FEC descriptor of a coded
// broadcast. The version mirrors the shard-directory version so a
// receiver can check that the code metadata it holds describes the
// schedule it is adopting.
func EncodeFECDesc(c FECConfig, version uint32) ([]byte, error) {
	for _, code := range []FECCode{c.Table, c.Object} {
		if code.Groups > 0xff || code.Parity > 0xff || code.Groups < 0 || code.Parity < 0 {
			return nil, fmt.Errorf("wire: code (%d,%d) exceeds the descriptor field widths",
				code.Groups, code.Parity)
		}
	}
	buf := make([]byte, FECDescSize)
	binary.BigEndian.PutUint16(buf[0:], FECDescMagic)
	binary.BigEndian.PutUint32(buf[2:], version)
	buf[6] = byte(c.Table.Groups)
	buf[7] = byte(c.Table.Parity)
	buf[8] = byte(c.Object.Groups)
	buf[9] = byte(c.Object.Parity)
	return buf, nil
}

// DecodeFECDesc parses a versioned FEC descriptor.
func DecodeFECDesc(buf []byte) (FECConfig, uint32, error) {
	if len(buf) != FECDescSize {
		return FECConfig{}, 0, fmt.Errorf("wire: FEC descriptor of %d bytes, want %d", len(buf), FECDescSize)
	}
	if m := binary.BigEndian.Uint16(buf[0:]); m != FECDescMagic {
		return FECConfig{}, 0, fmt.Errorf("wire: FEC descriptor magic %#04x, want %#04x", m, FECDescMagic)
	}
	version := binary.BigEndian.Uint32(buf[2:])
	c := FECConfig{
		Table:  FECCode{Groups: int(buf[6]), Parity: int(buf[7])},
		Object: FECCode{Groups: int(buf[8]), Parity: int(buf[9])},
	}
	for _, code := range []FECCode{c.Table, c.Object} {
		if code.Parity > 0 && code.Groups == 0 {
			return FECConfig{}, 0, fmt.Errorf("wire: descriptor code has %d parity rows over zero groups",
				code.Parity)
		}
	}
	return c, version, nil
}

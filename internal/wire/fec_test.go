package wire

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestGFFieldProperties(t *testing.T) {
	// alpha generates the multiplicative group: all 255 powers distinct.
	seen := map[byte]bool{}
	for i := 0; i < 255; i++ {
		if seen[gfExp[i]] {
			t.Fatalf("alpha^%d = %#x repeats", i, gfExp[i])
		}
		seen[gfExp[i]] = true
	}
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a * a^-1 = %d for a=%d", got, a)
		}
	}
	// Spot-check associativity and distributivity on a pseudo-random sample.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			t.Fatalf("associativity fails for %d,%d,%d", a, b, c)
		}
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("distributivity fails for %d,%d,%d", a, b, c)
		}
	}
}

func randSymbols(rng *rand.Rand, k, symLen int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, symLen)
		rng.Read(data[i])
	}
	return data
}

func TestRSRecoverAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []struct{ k, r int }{{1, 1}, {4, 1}, {5, 2}, {8, 3}, {8, 8}} {
		orig := randSymbols(rng, dim.k, 32)
		parity := RSParity(orig, dim.r)
		// Every erasure pattern with at most r erased data symbols must
		// recover exactly, for every subset of surviving parity rows
		// large enough to cover it.
		for mask := 0; mask < 1<<dim.k; mask++ {
			e := 0
			for i := 0; i < dim.k; i++ {
				if mask&(1<<i) != 0 {
					e++
				}
			}
			if e == 0 || e > dim.r {
				continue
			}
			data := make([][]byte, dim.k)
			for i := range data {
				if mask&(1<<i) == 0 {
					data[i] = orig[i]
				}
			}
			// Drop parity rows from the end until exactly e survive.
			par := make([][]byte, dim.r)
			copy(par, parity)
			for j := dim.r - 1; j >= e; j-- {
				par[j] = nil
			}
			if !RSRecover(data, par) {
				t.Fatalf("k=%d r=%d mask=%#x: recovery failed with %d rows", dim.k, dim.r, mask, e)
			}
			for i := range data {
				if !bytes.Equal(data[i], orig[i]) {
					t.Fatalf("k=%d r=%d mask=%#x: symbol %d mismatch", dim.k, dim.r, mask, i)
				}
			}
		}
	}
}

func TestRSRecoverScatteredParityLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	orig := randSymbols(rng, 6, 24)
	parity := RSParity(orig, 4)
	data := make([][]byte, 6)
	copy(data, orig)
	data[1], data[4] = nil, nil
	par := make([][]byte, 4)
	copy(par, parity)
	par[0], par[2] = nil, nil // only rows 1 and 3 survive — a non-prefix subset
	if !RSRecover(data, par) {
		t.Fatal("recovery failed with two scattered parity rows for two erasures")
	}
	for i := range data {
		if !bytes.Equal(data[i], orig[i]) {
			t.Fatalf("symbol %d mismatch", i)
		}
	}
}

func TestRSRecoverBeyondDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig := randSymbols(rng, 5, 16)
	parity := RSParity(orig, 2)
	data := make([][]byte, 5)
	copy(data, orig)
	data[0], data[2], data[3] = nil, nil, nil // 3 erasures > 2 rows
	if RSRecover(data, parity) {
		t.Fatal("recovery claimed success beyond the code distance")
	}
	if data[0] != nil || data[2] != nil || data[3] != nil {
		t.Fatal("failed recovery wrote into erased slots")
	}
	// Losing parity too: 2 erasures but only 1 surviving row.
	data = make([][]byte, 5)
	copy(data, orig)
	data[0], data[2] = nil, nil
	if RSRecover(data, [][]byte{parity[0], nil}) {
		t.Fatal("recovery claimed success with fewer rows than erasures")
	}
}

func TestRSParityRow0IsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := randSymbols(rng, 4, 16)
	parity := RSParity(data, 1)
	want := make([]byte, 16)
	for _, d := range data {
		for b := range want {
			want[b] ^= d[b]
		}
	}
	if !bytes.Equal(parity[0], want) {
		t.Fatal("parity row 0 is not the XOR of the group")
	}
}

func TestFECCodeValidate(t *testing.T) {
	ok := []struct {
		c FECCode
		n int
	}{
		{FECCode{}, 5}, {FECCode{Groups: 1, Parity: 1}, 5},
		{FECCode{Groups: 4, Parity: 2}, 16}, {FECCode{Groups: 1, Parity: 200}, 16},
	}
	for _, tc := range ok {
		if err := tc.c.Validate(tc.n); err != nil {
			t.Fatalf("%+v over %d packets: %v", tc.c, tc.n, err)
		}
	}
	bad := []struct {
		c FECCode
		n int
	}{
		{FECCode{Groups: 0, Parity: 1}, 5},  // parity with no groups
		{FECCode{Groups: 6, Parity: 1}, 5},  // more groups than members
		{FECCode{Groups: 1, Parity: 1}, 65}, // unit exceeds the bitmap
		{FECCode{Groups: 1, Parity: 250}, 16},
		{FECCode{Groups: 1, Parity: 300}, 16},
	}
	for _, tc := range bad {
		if err := tc.c.Validate(tc.n); err == nil {
			t.Fatalf("%+v over %d packets: want error", tc.c, tc.n)
		}
	}
}

func TestFECCodeGroupMembers(t *testing.T) {
	c := FECCode{Groups: 3, Parity: 1}
	n := 8 // members 0..7 interleave as groups {0,3,6}, {1,4,7}, {2,5}
	wantBits := []uint64{1<<0 | 1<<3 | 1<<6, 1<<1 | 1<<4 | 1<<7, 1<<2 | 1<<5}
	wantK := []int{3, 3, 2}
	total := uint64(0)
	for g := 0; g < c.Groups; g++ {
		members, k := c.GroupMembers(n, g)
		if members != wantBits[g] || k != wantK[g] {
			t.Fatalf("group %d: members %#x k=%d, want %#x k=%d", g, members, k, wantBits[g], wantK[g])
		}
		total |= members
	}
	if total != 1<<uint(n)-1 {
		t.Fatalf("groups cover %#x, want all %d members", total, n)
	}
}

func TestParityRoundtrip(t *testing.T) {
	h := ParityHeader{Unit: 1234, Group: 2, K: 3, R: 5, Index: 4, Members: 1<<2 | 1<<5 | 1<<8}
	sym := bytes.Repeat([]byte{0xAB}, 64)
	buf := EncodeParity(h, sym)
	got, gotSym, err := DecodeParity(buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	if got != h || !bytes.Equal(gotSym, sym) {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}
}

func TestDecodeParityRejects(t *testing.T) {
	h := ParityHeader{Unit: 7, Group: 0, K: 2, R: 1, Index: 0, Members: 0b11}
	good := EncodeParity(h, make([]byte, 32))
	cases := map[string][]byte{
		"truncated":  good[:len(good)-1],
		"wrong size": append(append([]byte{}, good...), 0),
		"bad magic": func() []byte {
			b := append([]byte{}, good...)
			b[0] ^= 0xff
			return b
		}(),
		"row outside R": func() []byte {
			b := append([]byte{}, good...)
			b[9] = 1 // Index == R
			return b
		}(),
		"zero rows": func() []byte {
			b := append([]byte{}, good...)
			b[8] = 0
			return b
		}(),
		"bitmap mismatch": func() []byte {
			b := append([]byte{}, good...)
			b[7] = 3 // K=3 but bitmap has 2 bits
			return b
		}(),
		"zero members": func() []byte {
			b := append([]byte{}, good...)
			b[7] = 0
			binary4zero(b[10:18])
			return b
		}(),
	}
	for name, buf := range cases {
		if _, _, err := DecodeParity(buf, 32); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}

func binary4zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

func TestFECDescRoundtrip(t *testing.T) {
	c := FECConfig{Table: FECCode{Groups: 1, Parity: 2}, Object: FECCode{Groups: 4, Parity: 6}}
	buf, err := EncodeFECDesc(c, 42)
	if err != nil {
		t.Fatal(err)
	}
	got, ver, err := DecodeFECDesc(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != c || ver != 42 {
		t.Fatalf("roundtrip mismatch: %+v version %d", got, ver)
	}
	if _, err := EncodeFECDesc(FECConfig{Table: FECCode{Groups: 256, Parity: 1}}, 1); err == nil {
		t.Fatal("want field-width error")
	}
}

func TestDecodeFECDescRejects(t *testing.T) {
	good, err := EncodeFECDesc(FECConfig{Object: FECCode{Groups: 2, Parity: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated": good[:FECDescSize-1],
		"oversized": append(append([]byte{}, good...), 0),
		"bad magic": func() []byte {
			b := append([]byte{}, good...)
			b[1] ^= 0xff
			return b
		}(),
		"parity without groups": func() []byte {
			b := append([]byte{}, good...)
			b[8] = 0 // object groups 0, parity still 1
			return b
		}(),
	}
	for name, buf := range cases {
		if _, _, err := DecodeFECDesc(buf); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}

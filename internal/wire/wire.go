// Package wire defines the on-air binary formats for DSI broadcast
// content: index tables and data-object headers. The simulator proper
// accounts costs by size without materializing bytes (packets carry
// structured metadata), but the encodings here prove that the sizes the
// accounting uses — 16-byte HC values and coordinates, 2-byte pointers
// (paper section 4) — actually carry the structures the algorithms
// need, and they are what a real broadcast server/receiver pair built
// on this library would put on air.
package wire

import (
	"encoding/binary"
	"fmt"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
)

// HC values and coordinates occupy 16 bytes on air (the paper sizes a
// two-dimensional coordinate as two 8-byte floats and gives the HC
// value "the same total size"). Our HC values fit in 8 bytes; the
// encoding zero-pads to the paper's width so byte accounting matches.
const (
	hcBytes  = broadcast.HCBytes
	ptrBytes = broadcast.PtrBytes
)

// putHC writes a Hilbert-curve value in the paper's 16-byte width.
func putHC(b []byte, v uint64) {
	binary.BigEndian.PutUint64(b[:8], 0)
	binary.BigEndian.PutUint64(b[8:16], v)
}

// getHC reads a 16-byte Hilbert-curve value.
func getHC(b []byte) uint64 { return binary.BigEndian.Uint64(b[8:16]) }

// EncodeTable serializes a DSI index table: the frame's own minimum HC
// value followed by one (HC value, pointer) entry per table entry. The
// pointer is the forward distance in frames, which fits the paper's
// 2 bytes for any cycle up to 65,536 frames.
func EncodeTable(t dsi.Table, nf int) ([]byte, error) {
	buf := make([]byte, hcBytes+len(t.Entries)*(hcBytes+ptrBytes))
	putHC(buf[0:], t.OwnHC)
	at := hcBytes
	for i, e := range t.Entries {
		dist := e.TargetPos - t.Pos
		if dist <= 0 {
			dist += nf
		}
		if dist > 0xffff {
			return nil, fmt.Errorf("wire: entry %d distance %d exceeds the 2-byte pointer", i, dist)
		}
		putHC(buf[at:], e.MinHC)
		binary.BigEndian.PutUint16(buf[at+hcBytes:], uint16(dist))
		at += hcBytes + ptrBytes
	}
	return buf, nil
}

// DecodeTable parses an index table received at cycle position pos.
func DecodeTable(buf []byte, pos, nf int) (dsi.Table, error) {
	return DecodeTableAppend(buf, pos, nf, nil)
}

// DecodeTableAppend is DecodeTable appending the decoded entries into
// dst (which may be nil or a recycled buffer), so a receiver decoding
// tables on its hot path can reuse one entry buffer instead of
// allocating per read.
func DecodeTableAppend(buf []byte, pos, nf int, dst []dsi.TableEntry) (dsi.Table, error) {
	if len(buf) < hcBytes || (len(buf)-hcBytes)%(hcBytes+ptrBytes) != 0 {
		return dsi.Table{}, fmt.Errorf("wire: table payload of %d bytes is malformed", len(buf))
	}
	t := dsi.Table{Pos: pos, OwnHC: getHC(buf), Entries: dst}
	for at := hcBytes; at < len(buf); at += hcBytes + ptrBytes {
		dist := int(binary.BigEndian.Uint16(buf[at+hcBytes:]))
		if dist == 0 || dist > nf {
			return dsi.Table{}, fmt.Errorf("wire: pointer distance %d outside (0,%d]", dist, nf)
		}
		t.Entries = append(t.Entries, dsi.TableEntry{
			TargetPos: (pos + dist) % nf,
			MinHC:     getHC(buf[at:]),
		})
	}
	return t, nil
}

// TableSize returns the encoded size of a table with e entries; it must
// agree with (*dsi.Index).TableBytes, which the frame sizing uses.
func TableSize(e int) int { return hcBytes + e*(hcBytes+ptrBytes) }

// ObjectHeader is the leading bytes of every data object on air: the
// object's coordinate (which doubles as its HC value under the 1-1
// mapping) so that a client scanning a frame can identify objects from
// their first packet — the basis of DSI's in-frame selectivity and its
// loss-recovery fallback.
type ObjectHeader struct {
	X, Y uint32
	HC   uint64
}

// HeaderSize is the encoded size of an object header: a 16-byte
// coordinate pair plus the 16-byte HC value.
const HeaderSize = broadcast.CoordBytes + broadcast.HCBytes

// EncodeHeader serializes an object header.
func EncodeHeader(h ObjectHeader) []byte {
	buf := make([]byte, HeaderSize)
	binary.BigEndian.PutUint64(buf[0:8], uint64(h.X))
	binary.BigEndian.PutUint64(buf[8:16], uint64(h.Y))
	putHC(buf[16:], h.HC)
	return buf
}

// DecodeHeader parses an object header.
func DecodeHeader(buf []byte) (ObjectHeader, error) {
	if len(buf) < HeaderSize {
		return ObjectHeader{}, fmt.Errorf("wire: header needs %d bytes, got %d", HeaderSize, len(buf))
	}
	return ObjectHeader{
		X:  uint32(binary.BigEndian.Uint64(buf[0:8])),
		Y:  uint32(binary.BigEndian.Uint64(buf[8:16])),
		HC: getHC(buf[16:]),
	}, nil
}

// Multi-channel pointers extend the 2-byte forward distance with a
// 1-byte channel id, so index entries can aim at frames carried on any
// channel of a multi-channel air (up to 256 channels, 65,536 frames per
// channel). The width is defined once in broadcast (dsi's frame sizing
// reserves it via Config.ReserveMCPtr) so the sizing and the encoding
// cannot drift apart.
const MCPtrBytes = broadcast.MCPtrBytes

// MCEntry is one multi-channel index-table entry as it appears on air:
// the described frame's minimum HC value plus a (channel, per-channel
// frame index) pointer.
type MCEntry struct {
	MinHC uint64
	Ch    uint8
	Frame uint16
}

// MCTableSize returns the encoded size of a multi-channel table with e
// entries.
func MCTableSize(e int) int { return hcBytes + e*(hcBytes+MCPtrBytes) }

// TableMC builds the on-air view of the index table at cycle position
// pos of a multi-channel layout: every entry's pointer is the (channel,
// frame index) at which the described frame's data is broadcast. It
// fails when the layout exceeds what the pointer width can address.
func TableMC(lay *dsi.Layout, pos int) (ownHC uint64, entries []MCEntry, err error) {
	t := lay.X.TableAt(pos)
	entries = make([]MCEntry, len(t.Entries))
	for i, e := range t.Entries {
		ch, idx := lay.DataFrameIndex(e.TargetPos)
		if ch > 0xff {
			return 0, nil, fmt.Errorf("wire: entry %d channel %d exceeds the 1-byte channel id", i, ch)
		}
		if idx > 0xffff {
			return 0, nil, fmt.Errorf("wire: entry %d frame index %d exceeds the 2-byte pointer", i, idx)
		}
		entries[i] = MCEntry{MinHC: e.MinHC, Ch: uint8(ch), Frame: uint16(idx)}
	}
	return t.OwnHC, entries, nil
}

// EncodeTableMC serializes a multi-channel index table: the frame's own
// minimum HC value followed by one (HC value, channel, frame index)
// entry per table entry.
func EncodeTableMC(ownHC uint64, entries []MCEntry) []byte {
	buf := make([]byte, MCTableSize(len(entries)))
	putHC(buf[0:], ownHC)
	at := hcBytes
	for _, e := range entries {
		putHC(buf[at:], e.MinHC)
		buf[at+hcBytes] = e.Ch
		binary.BigEndian.PutUint16(buf[at+hcBytes+1:], e.Frame)
		at += hcBytes + MCPtrBytes
	}
	return buf
}

// DecodeTableMC parses a multi-channel index table. framesOn[ch] is the
// per-cycle frame count of channel ch (the catalog geometry a receiver
// knows a priori); pointers outside it, or aimed at channels that do
// not exist, are rejected.
func DecodeTableMC(buf []byte, framesOn []int) (ownHC uint64, entries []MCEntry, err error) {
	if len(buf) < hcBytes || (len(buf)-hcBytes)%(hcBytes+MCPtrBytes) != 0 {
		return 0, nil, fmt.Errorf("wire: multi-channel table payload of %d bytes is malformed", len(buf))
	}
	ownHC = getHC(buf)
	for at := hcBytes; at < len(buf); at += hcBytes + MCPtrBytes {
		e := MCEntry{
			MinHC: getHC(buf[at:]),
			Ch:    buf[at+hcBytes],
			Frame: binary.BigEndian.Uint16(buf[at+hcBytes+1:]),
		}
		if int(e.Ch) >= len(framesOn) {
			return 0, nil, fmt.Errorf("wire: pointer channel %d outside %d channels", e.Ch, len(framesOn))
		}
		if int(e.Frame) >= framesOn[e.Ch] {
			return 0, nil, fmt.Errorf("wire: pointer frame %d outside channel %d's %d frames",
				e.Frame, e.Ch, framesOn[e.Ch])
		}
		entries = append(entries, e)
	}
	return ownHC, entries, nil
}

// EncodeLayoutTables materializes every multi-channel index table of a
// layout, verifying that each fits the frame sizing's packet budget
// (the wider pointers must still leave the table within its packets —
// checked here, exactly as EncodeFrameTables checks the single-channel
// format).
//
// dsi.Build sizes TablePackets for the single-channel entry width, so
// an index whose tables fill their packets to within E bytes of the
// budget cannot carry the 1-byte-wider multi-channel pointers; this
// function then fails rather than overflow. Re-sizing frames for wide
// pointers at Build would change the N=1 broadcast (which must stay
// bit-identical to the classic engine), so such layouts are rejected
// at transmission time instead — see ROADMAP for the sizing follow-up.
func EncodeLayoutTables(lay *dsi.Layout) ([][]byte, error) {
	x := lay.X
	out := make([][]byte, x.NF)
	budget := x.TablePackets * x.Cfg.Capacity
	for pos := 0; pos < x.NF; pos++ {
		own, entries, err := TableMC(lay, pos)
		if err != nil {
			return nil, fmt.Errorf("wire: position %d: %w", pos, err)
		}
		buf := EncodeTableMC(own, entries)
		if len(buf) > budget {
			return nil, fmt.Errorf("wire: position %d: multi-channel table %dB exceeds %d packet budget %dB",
				pos, len(buf), x.TablePackets, budget)
		}
		out[pos] = buf
	}
	return out, nil
}

// EncodeFrameTables materializes every index table of the broadcast,
// verifying that each fits the frame sizing's packet budget. It returns
// the per-position payloads (used by tests and by a real transmitter).
func EncodeFrameTables(x *dsi.Index) ([][]byte, error) {
	out := make([][]byte, x.NF)
	budget := x.TablePackets * x.Cfg.Capacity
	for pos := 0; pos < x.NF; pos++ {
		buf, err := EncodeTable(x.TableAt(pos), x.NF)
		if err != nil {
			return nil, fmt.Errorf("wire: position %d: %w", pos, err)
		}
		if len(buf) > budget {
			return nil, fmt.Errorf("wire: position %d: table %dB exceeds %d packet budget %dB",
				pos, len(buf), x.TablePackets, budget)
		}
		out[pos] = buf
	}
	return out, nil
}

// Package wire defines the on-air binary formats for DSI broadcast
// content: index tables and data-object headers. The simulator proper
// accounts costs by size without materializing bytes (packets carry
// structured metadata), but the encodings here prove that the sizes the
// accounting uses — 16-byte HC values and coordinates, 2-byte pointers
// (paper section 4) — actually carry the structures the algorithms
// need, and they are what a real broadcast server/receiver pair built
// on this library would put on air.
package wire

import (
	"encoding/binary"
	"fmt"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
)

// HC values and coordinates occupy 16 bytes on air (the paper sizes a
// two-dimensional coordinate as two 8-byte floats and gives the HC
// value "the same total size"). Our HC values fit in 8 bytes; the
// encoding zero-pads to the paper's width so byte accounting matches.
const (
	hcBytes  = broadcast.HCBytes
	ptrBytes = broadcast.PtrBytes
)

// putHC writes a Hilbert-curve value in the paper's 16-byte width.
func putHC(b []byte, v uint64) {
	binary.BigEndian.PutUint64(b[:8], 0)
	binary.BigEndian.PutUint64(b[8:16], v)
}

// getHC reads a 16-byte Hilbert-curve value.
func getHC(b []byte) uint64 { return binary.BigEndian.Uint64(b[8:16]) }

// EncodeTable serializes a DSI index table: the frame's own minimum HC
// value followed by one (HC value, pointer) entry per table entry. The
// pointer is the forward distance in frames, which fits the paper's
// 2 bytes for any cycle up to 65,536 frames.
func EncodeTable(t dsi.Table, nf int) ([]byte, error) {
	buf := make([]byte, hcBytes+len(t.Entries)*(hcBytes+ptrBytes))
	putHC(buf[0:], t.OwnHC)
	at := hcBytes
	for i, e := range t.Entries {
		dist := e.TargetPos - t.Pos
		if dist <= 0 {
			dist += nf
		}
		if dist > 0xffff {
			return nil, fmt.Errorf("wire: entry %d distance %d exceeds the 2-byte pointer", i, dist)
		}
		putHC(buf[at:], e.MinHC)
		binary.BigEndian.PutUint16(buf[at+hcBytes:], uint16(dist))
		at += hcBytes + ptrBytes
	}
	return buf, nil
}

// DecodeTable parses an index table received at cycle position pos.
func DecodeTable(buf []byte, pos, nf int) (dsi.Table, error) {
	if len(buf) < hcBytes || (len(buf)-hcBytes)%(hcBytes+ptrBytes) != 0 {
		return dsi.Table{}, fmt.Errorf("wire: table payload of %d bytes is malformed", len(buf))
	}
	t := dsi.Table{Pos: pos, OwnHC: getHC(buf)}
	for at := hcBytes; at < len(buf); at += hcBytes + ptrBytes {
		dist := int(binary.BigEndian.Uint16(buf[at+hcBytes:]))
		if dist == 0 || dist > nf {
			return dsi.Table{}, fmt.Errorf("wire: pointer distance %d outside (0,%d]", dist, nf)
		}
		t.Entries = append(t.Entries, dsi.TableEntry{
			TargetPos: (pos + dist) % nf,
			MinHC:     getHC(buf[at:]),
		})
	}
	return t, nil
}

// TableSize returns the encoded size of a table with e entries; it must
// agree with (*dsi.Index).TableBytes, which the frame sizing uses.
func TableSize(e int) int { return hcBytes + e*(hcBytes+ptrBytes) }

// ObjectHeader is the leading bytes of every data object on air: the
// object's coordinate (which doubles as its HC value under the 1-1
// mapping) so that a client scanning a frame can identify objects from
// their first packet — the basis of DSI's in-frame selectivity and its
// loss-recovery fallback.
type ObjectHeader struct {
	X, Y uint32
	HC   uint64
}

// HeaderSize is the encoded size of an object header: a 16-byte
// coordinate pair plus the 16-byte HC value.
const HeaderSize = broadcast.CoordBytes + broadcast.HCBytes

// EncodeHeader serializes an object header.
func EncodeHeader(h ObjectHeader) []byte {
	buf := make([]byte, HeaderSize)
	binary.BigEndian.PutUint64(buf[0:8], uint64(h.X))
	binary.BigEndian.PutUint64(buf[8:16], uint64(h.Y))
	putHC(buf[16:], h.HC)
	return buf
}

// DecodeHeader parses an object header.
func DecodeHeader(buf []byte) (ObjectHeader, error) {
	if len(buf) < HeaderSize {
		return ObjectHeader{}, fmt.Errorf("wire: header needs %d bytes, got %d", HeaderSize, len(buf))
	}
	return ObjectHeader{
		X:  uint32(binary.BigEndian.Uint64(buf[0:8])),
		Y:  uint32(binary.BigEndian.Uint64(buf[8:16])),
		HC: getHC(buf[16:]),
	}, nil
}

// EncodeFrameTables materializes every index table of the broadcast,
// verifying that each fits the frame sizing's packet budget. It returns
// the per-position payloads (used by tests and by a real transmitter).
func EncodeFrameTables(x *dsi.Index) ([][]byte, error) {
	out := make([][]byte, x.NF)
	budget := x.TablePackets * x.Cfg.Capacity
	for pos := 0; pos < x.NF; pos++ {
		buf, err := EncodeTable(x.TableAt(pos), x.NF)
		if err != nil {
			return nil, fmt.Errorf("wire: position %d: %w", pos, err)
		}
		if len(buf) > budget {
			return nil, fmt.Errorf("wire: position %d: table %dB exceeds %d packet budget %dB",
				pos, len(buf), x.TablePackets, budget)
		}
		out[pos] = buf
	}
	return out, nil
}

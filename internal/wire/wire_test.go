package wire

import (
	"testing"
	"testing/quick"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
)

func TestTableRoundTrip(t *testing.T) {
	ds := dataset.Uniform(200, 6, 1)
	for _, cfg := range []dsi.Config{{}, {Segments: 2}, {Sizing: dsi.SizingUnitFactor}, {Capacity: 512}} {
		x, err := dsi.Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for pos := 0; pos < x.NF; pos++ {
			want := x.TableAt(pos)
			buf, err := EncodeTable(want, x.NF)
			if err != nil {
				t.Fatalf("cfg %+v pos %d: %v", cfg, pos, err)
			}
			got, err := DecodeTable(buf, pos, x.NF)
			if err != nil {
				t.Fatalf("cfg %+v pos %d: %v", cfg, pos, err)
			}
			if got.OwnHC != want.OwnHC || len(got.Entries) != len(want.Entries) {
				t.Fatalf("cfg %+v pos %d: round trip mismatch", cfg, pos)
			}
			for i := range want.Entries {
				if got.Entries[i] != want.Entries[i] {
					t.Fatalf("cfg %+v pos %d entry %d: %+v != %+v",
						cfg, pos, i, got.Entries[i], want.Entries[i])
				}
			}
		}
	}
}

func TestTableSizeMatchesIndexAccounting(t *testing.T) {
	ds := dataset.Uniform(300, 6, 2)
	for _, cfg := range []dsi.Config{{}, {Capacity: 128}, {Capacity: 512}, {Sizing: dsi.SizingUnitFactor}} {
		x, err := dsi.Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if TableSize(x.E) != x.TableBytes() {
			t.Errorf("cfg %+v: wire size %d != index accounting %d",
				cfg, TableSize(x.E), x.TableBytes())
		}
		buf, err := EncodeTable(x.TableAt(0), x.NF)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != x.TableBytes() {
			t.Errorf("cfg %+v: encoded %dB, accounting says %dB", cfg, len(buf), x.TableBytes())
		}
	}
}

func TestEncodeFrameTablesFitBudget(t *testing.T) {
	ds := dataset.Uniform(500, 6, 3)
	for _, cfg := range []dsi.Config{{}, {Capacity: 32}, {Capacity: 512, Segments: 2},
		{Sizing: dsi.SizingPaperTable, Capacity: 64}} {
		x, err := dsi.Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := EncodeFrameTables(x)
		if err != nil {
			t.Fatalf("cfg %+v: %v", cfg, err)
		}
		if len(tables) != x.NF {
			t.Fatalf("cfg %+v: %d tables for %d frames", cfg, len(tables), x.NF)
		}
	}
}

func TestEncodeTableDistanceOverflow(t *testing.T) {
	// A pointer distance beyond 65,535 frames cannot be encoded in the
	// paper's 2 bytes.
	tab := dsi.Table{Pos: 0, Entries: []dsi.TableEntry{{TargetPos: 70000, MinHC: 1}}}
	if _, err := EncodeTable(tab, 100000); err == nil {
		t.Error("oversized distance accepted")
	}
}

func TestDecodeTableErrors(t *testing.T) {
	if _, err := DecodeTable(make([]byte, 10), 0, 100); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := DecodeTable(make([]byte, hcBytes+7), 0, 100); err == nil {
		t.Error("misaligned payload accepted")
	}
	// A zero pointer distance is invalid.
	tab := dsi.Table{Pos: 5, OwnHC: 9, Entries: []dsi.TableEntry{{TargetPos: 6, MinHC: 10}}}
	buf, err := EncodeTable(tab, 100)
	if err != nil {
		t.Fatal(err)
	}
	buf[hcBytes+hcBytes] = 0
	buf[hcBytes+hcBytes+1] = 0
	if _, err := DecodeTable(buf, 5, 100); err == nil {
		t.Error("zero distance accepted")
	}
}

func TestHeaderRoundTripQuick(t *testing.T) {
	f := func(x, y uint32, hc uint64) bool {
		h := ObjectHeader{X: x, Y: y, HC: hc}
		got, err := DecodeHeader(EncodeHeader(h))
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderSizeWithinObject(t *testing.T) {
	if HeaderSize != 32 {
		t.Errorf("HeaderSize = %d, want 32 (16B coordinate + 16B HC)", HeaderSize)
	}
	if _, err := DecodeHeader(make([]byte, HeaderSize-1)); err == nil {
		t.Error("short header accepted")
	}
}

func TestTableWrapAroundPointer(t *testing.T) {
	// A pointer from the cycle's last position wraps to the front.
	tab := dsi.Table{Pos: 99, OwnHC: 5, Entries: []dsi.TableEntry{{TargetPos: 0, MinHC: 7}}}
	buf, err := EncodeTable(tab, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTable(buf, 99, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries[0].TargetPos != 0 {
		t.Errorf("wrapped pointer decoded to %d, want 0", got.Entries[0].TargetPos)
	}
}

// The station metadata document: the JSON a network station serves at
// /v1/meta so a client can assemble its catalog — the locally built
// index and channel layout every receiver needs before it can decode
// the stream. The broadcast-disk model makes the schedule catalog
// knowledge, not payload: both ends derive identical indexes from the
// same dataset and build parameters, and the checksum lets a client
// prove its derivation matches the station's before it trusts a single
// decoded pointer.

package wire

// StationDataset identifies the dataset a station broadcasts precisely
// enough for a client to rebuild it: the generator kind with its
// parameters, or "csv" for file-loaded data the client must obtain out
// of band (the checksum still verifies the copies agree).
type StationDataset struct {
	Kind  string `json:"kind"` // "uniform", "real", or "csv"
	N     int    `json:"n"`
	Order uint   `json:"order"`
	Seed  int64  `json:"seed,omitempty"`
	// Sum is the FNV-1a checksum of the object cells in HC order
	// (dataset.Checksum): catalog agreement proof.
	Sum uint64 `json:"sum"`
}

// StationMeta is the catalog document of a network station: everything
// a client needs to rebuild the station's index and layout, plus the
// live state sampled when the document was served.
type StationMeta struct {
	Dataset StationDataset `json:"dataset"`

	// Index build parameters (dsi.Config).
	Capacity     int  `json:"capacity"`
	Segments     int  `json:"segments"`
	ObjectBytes  int  `json:"object_bytes"`
	ReserveMCPtr bool `json:"reserve_mc_ptr,omitempty"`

	// Channel layout (dsi.MultiConfig). Scheduler is "single",
	// "split", or "shard"; ShardBounds is set for shard layouts and
	// reflects the directory version below.
	Channels    int    `json:"channels"`
	Scheduler   string `json:"scheduler"`
	SwitchSlots int    `json:"switch_slots,omitempty"`
	ShardBounds []int  `json:"shard_bounds,omitempty"`

	// Live state, sampled at serving time: the directory version on
	// air, the FEC descriptor (EncodeFECDesc bytes, empty when
	// uncoded), the absolute slot clock, and the pacing rate.
	Version     uint32 `json:"version"`
	FECDesc     []byte `json:"fec_desc,omitempty"`
	Now         int64  `json:"now"`
	SlotsPerSec int    `json:"slots_per_sec"`
	CtrlEvery   int    `json:"ctrl_every"`

	// UDP is the station's datagram subscribe address, when the UDP
	// transport is up; Multicast is the base group address (channel c
	// streams on port+c), when multicast emission is up.
	UDP       string `json:"udp,omitempty"`
	Multicast string `json:"multicast,omitempty"`
}

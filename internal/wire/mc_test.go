package wire

import (
	"strings"
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
)

func buildLayout(t *testing.T, cfg dsi.Config, mc dsi.MultiConfig) *dsi.Layout {
	t.Helper()
	ds := dataset.Uniform(200, 6, 1)
	x, err := dsi.Build(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := dsi.NewLayout(x, mc)
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

// TestTableMCRoundTrip: multi-channel tables survive the wire for every
// scheduler, and decoded pointers identify exactly the channel and
// per-channel frame index the layout placed each target frame at.
func TestTableMCRoundTrip(t *testing.T) {
	for _, mc := range []dsi.MultiConfig{
		{Channels: 1},
		{Channels: 2, Scheduler: dsi.SchedStripe},
		{Channels: 3, Scheduler: dsi.SchedSplit},
		{Channels: 4, Scheduler: dsi.SchedSplit},
	} {
		lay := buildLayout(t, dsi.Config{Segments: 2}, mc)
		x := lay.X
		framesOn := make([]int, lay.Channels())
		for ch := range framesOn {
			framesOn[ch] = lay.FramesOn(ch)
		}
		for pos := 0; pos < x.NF; pos++ {
			own, entries, err := TableMC(lay, pos)
			if err != nil {
				t.Fatal(err)
			}
			gotOwn, got, err := DecodeTableMC(EncodeTableMC(own, entries), framesOn)
			if err != nil {
				t.Fatalf("%v x%d pos %d: %v", mc.Scheduler, mc.Channels, pos, err)
			}
			if gotOwn != x.TableAt(pos).OwnHC || len(got) != len(entries) {
				t.Fatalf("%v x%d pos %d: round trip mismatch", mc.Scheduler, mc.Channels, pos)
			}
			for i, e := range got {
				if e != entries[i] {
					t.Fatalf("entry %d: %+v != %+v", i, e, entries[i])
				}
				wantCh, wantIdx := lay.DataFrameIndex(x.TableAt(pos).Entries[i].TargetPos)
				if int(e.Ch) != wantCh || int(e.Frame) != wantIdx {
					t.Fatalf("entry %d points at (%d,%d), layout says (%d,%d)",
						i, e.Ch, e.Frame, wantCh, wantIdx)
				}
			}
		}
		if _, err := EncodeLayoutTables(lay); err != nil {
			t.Fatalf("%v x%d: %v", mc.Scheduler, mc.Channels, err)
		}
	}
}

// TestDecodeTableMCErrors covers the receiver-side validation paths:
// truncated and misaligned payloads, pointers at nonexistent channels,
// and pointers outside a channel's frame count.
func TestDecodeTableMCErrors(t *testing.T) {
	framesOn := []int{4, 8}
	good := EncodeTableMC(7, []MCEntry{{MinHC: 9, Ch: 1, Frame: 7}})

	cases := []struct {
		name string
		buf  []byte
		want string
	}{
		{"truncated below own HC", good[:10], "malformed"},
		{"misaligned entries", good[:len(good)-3], "malformed"},
		{"channel out of range", EncodeTableMC(7, []MCEntry{{Ch: 2, Frame: 0}}), "outside 2 channels"},
		{"frame out of range", EncodeTableMC(7, []MCEntry{{Ch: 1, Frame: 8}}), "outside channel 1"},
	}
	for _, c := range cases {
		if _, _, err := DecodeTableMC(c.buf, framesOn); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err %v, want mention of %q", c.name, err, c.want)
		}
	}
	if _, _, err := DecodeTableMC(good, framesOn); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
}

// TestDecodeTableDistanceOutOfRange: a pointer distance valid for one
// cycle length is rejected against a shorter catalog geometry.
func TestDecodeTableDistanceOutOfRange(t *testing.T) {
	tab := dsi.Table{Pos: 0, OwnHC: 3, Entries: []dsi.TableEntry{{TargetPos: 5, MinHC: 9}}}
	buf, err := EncodeTable(tab, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTable(buf, 0, 4); err == nil {
		t.Error("out-of-range distance accepted")
	}
}

// TestDecodeHeaderTruncated: an object header needs its full width.
func TestDecodeHeaderTruncated(t *testing.T) {
	buf := EncodeHeader(ObjectHeader{X: 1, Y: 2, HC: 3})
	if _, err := DecodeHeader(buf[:HeaderSize-1]); err == nil {
		t.Error("truncated header accepted")
	}
}

// Shard directory: the catalog extension a sharded (or split)
// multi-channel broadcast ships alongside its index tables. The
// multi-channel table format points at (channel, per-channel frame
// index) pairs; on a sharded layout the channels run unequal cycles, so
// a receiver additionally needs each channel's shard start, frame count
// and cycle length to turn a pointer into a tuning slot — exactly what
// the directory carries, one fixed-size entry per channel.

package wire

import (
	"encoding/binary"
	"fmt"

	"dsi/internal/dsi"
)

// Directory entry kinds.
const (
	// DirIndex marks the channel carrying index tables.
	DirIndex = 0
	// DirData marks a data channel (one shard).
	DirData = 1
)

// DirEntry describes one channel of a multi-channel layout as it
// appears in the shard directory.
type DirEntry struct {
	Kind       uint8  // DirIndex or DirData
	StartFrame uint16 // first frame id the channel carries
	Frames     uint16 // frames per cycle on this channel
	CycleSlots uint32 // per-channel cycle length in packet slots
}

// DirEntrySize is the encoded size of one directory entry.
const DirEntrySize = 1 + 2 + 2 + 4

// DirSize returns the encoded size of a directory over n channels.
func DirSize(n int) int { return n * DirEntrySize }

// EncodeShardDir serializes the channel directory of a layout with a
// dedicated index channel (SchedShard or SchedSplit): per channel, its
// kind, shard start, per-cycle frame count, and cycle length. It fails
// when the geometry exceeds the entry field widths.
func EncodeShardDir(lay *dsi.Layout) ([]byte, error) {
	x := lay.X
	n := lay.Channels()
	if (lay.Sched != dsi.SchedShard && lay.Sched != dsi.SchedSplit) || n == 1 {
		return nil, fmt.Errorf("wire: %v layout has no dedicated index channel to describe", lay.Sched)
	}
	buf := make([]byte, DirSize(n))
	for ch := 0; ch < n; ch++ {
		e := DirEntry{Kind: DirData, CycleSlots: uint32(lay.ChanLen(ch))}
		start, frames := 0, lay.FramesOn(ch)
		if ch == lay.StartCh {
			e.Kind = DirIndex
		} else if b := lay.ShardBounds(); b != nil {
			start = b[ch-1]
		} else {
			// Split layouts: contiguous balanced blocks; recover the
			// start from the first position the channel carries.
			pos, _, ok := lay.SlotData(ch, 0)
			if !ok {
				return nil, fmt.Errorf("wire: channel %d carries no data", ch)
			}
			start = pos
		}
		if start > 0xffff || frames > 0xffff {
			return nil, fmt.Errorf("wire: channel %d geometry (%d,%d) exceeds the directory field widths",
				ch, start, frames)
		}
		if x.NF > 0xffff {
			return nil, fmt.Errorf("wire: %d frames exceed the directory field widths", x.NF)
		}
		e.StartFrame = uint16(start)
		e.Frames = uint16(frames)
		at := ch * DirEntrySize
		buf[at] = e.Kind
		binary.BigEndian.PutUint16(buf[at+1:], e.StartFrame)
		binary.BigEndian.PutUint16(buf[at+3:], e.Frames)
		binary.BigEndian.PutUint32(buf[at+5:], e.CycleSlots)
	}
	return buf, nil
}

// DecodeShardDir parses a channel directory and validates its internal
// consistency: exactly one index channel, non-empty cycles, and data
// shards that tile the frame range contiguously.
func DecodeShardDir(buf []byte) ([]DirEntry, error) {
	if len(buf) == 0 || len(buf)%DirEntrySize != 0 {
		return nil, fmt.Errorf("wire: directory payload of %d bytes is malformed", len(buf))
	}
	n := len(buf) / DirEntrySize
	dir := make([]DirEntry, n)
	indexChans := 0
	nextStart := 0 // accumulated in int: a uint16 sum could wrap past contiguity checks
	for ch := 0; ch < n; ch++ {
		at := ch * DirEntrySize
		e := DirEntry{
			Kind:       buf[at],
			StartFrame: binary.BigEndian.Uint16(buf[at+1:]),
			Frames:     binary.BigEndian.Uint16(buf[at+3:]),
			CycleSlots: binary.BigEndian.Uint32(buf[at+5:]),
		}
		switch e.Kind {
		case DirIndex:
			indexChans++
		case DirData:
			if int(e.StartFrame) != nextStart {
				return nil, fmt.Errorf("wire: channel %d shard starts at frame %d, want %d",
					ch, e.StartFrame, nextStart)
			}
			nextStart += int(e.Frames)
			if nextStart > 0xffff {
				return nil, fmt.Errorf("wire: shards overflow the 2-byte frame space at channel %d", ch)
			}
		default:
			return nil, fmt.Errorf("wire: channel %d has unknown kind %d", ch, e.Kind)
		}
		if e.Frames == 0 || e.CycleSlots == 0 {
			return nil, fmt.Errorf("wire: channel %d is empty", ch)
		}
		if e.CycleSlots%uint32(e.Frames) != 0 {
			return nil, fmt.Errorf("wire: channel %d cycle %d not a multiple of its %d frames",
				ch, e.CycleSlots, e.Frames)
		}
		dir[ch] = e
	}
	if indexChans != 1 {
		return nil, fmt.Errorf("wire: directory has %d index channels, want 1", indexChans)
	}
	return dir, nil
}

// FramesOnDir extracts the per-channel frame counts of a decoded
// directory — the geometry DecodeTableMC validates pointers against.
func FramesOnDir(dir []DirEntry) []int {
	out := make([]int, len(dir))
	for ch, e := range dir {
		out[ch] = int(e.Frames)
	}
	return out
}

// BoundsFromDir reassembles the shard boundaries a decoded directory
// describes: ascending frame ids from 0 through the covered frame
// count, one data shard per data channel — the MultiConfig.ShardBounds
// a receiver rebuilds its layout from after a directory version bump.
// DecodeShardDir has already validated that the shards tile the frame
// range contiguously, so this is pure extraction.
func BoundsFromDir(dir []DirEntry) []int {
	bounds := make([]int, 1, len(dir)+1)
	for _, e := range dir {
		if e.Kind == DirData {
			bounds = append(bounds, bounds[len(bounds)-1]+int(e.Frames))
		}
	}
	return bounds
}

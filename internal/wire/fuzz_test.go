// Native fuzz targets for every wire decoder: whatever bytes arrive
// off the air, decoders must reject malformed input with an error —
// never panic. Seed corpora mirror the handcrafted error-path tests
// (valid encodings, truncations, bad magics, out-of-range fields).

package wire

import (
	"encoding/binary"
	"testing"

	"dsi/internal/dsi"
)

func FuzzDecodeTable(f *testing.F) {
	tab := dsi.Table{Pos: 3, OwnHC: 99, Entries: []dsi.TableEntry{
		{TargetPos: 5, MinHC: 10}, {TargetPos: 11, MinHC: 200},
	}}
	seed, err := EncodeTable(tab, 16)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(seed)
	f.Add(seed[:len(seed)-1])
	bad := append([]byte{}, seed...)
	binary.BigEndian.PutUint16(bad[len(bad)-2:], 0) // zero pointer distance
	f.Add(bad)
	f.Fuzz(func(t *testing.T, buf []byte) {
		tab, err := DecodeTable(buf, 3, 16)
		if err == nil {
			// A decoded table must re-encode within the same cycle.
			if _, err := EncodeTable(tab, 16); err != nil {
				t.Fatalf("decoded table does not re-encode: %v", err)
			}
		}
	})
}

func FuzzDecodeTableMC(f *testing.F) {
	framesOn := []int{4, 8, 8}
	seed := EncodeTableMC(7, []MCEntry{{MinHC: 1, Ch: 1, Frame: 3}, {MinHC: 9, Ch: 2, Frame: 7}})
	f.Add([]byte{})
	f.Add(seed)
	f.Add(seed[:len(seed)-1])
	bad := append([]byte{}, seed...)
	bad[len(bad)-3] = 9 // channel outside the air
	f.Add(bad)
	f.Fuzz(func(t *testing.T, buf []byte) {
		_, _, _ = DecodeTableMC(buf, framesOn)
	})
}

// fuzzDirBytes hand-assembles a shard directory over raw entries, so
// seeds can exercise invalid geometry EncodeShardDir refuses to emit.
func fuzzDirBytes(entries []DirEntry) []byte {
	buf := make([]byte, DirSize(len(entries)))
	for ch, e := range entries {
		at := ch * DirEntrySize
		buf[at] = e.Kind
		binary.BigEndian.PutUint16(buf[at+1:], e.StartFrame)
		binary.BigEndian.PutUint16(buf[at+3:], e.Frames)
		binary.BigEndian.PutUint32(buf[at+5:], e.CycleSlots)
	}
	return buf
}

func FuzzDecodeShardDir(f *testing.F) {
	good := fuzzDirBytes([]DirEntry{
		{Kind: DirIndex, Frames: 16, CycleSlots: 80},
		{Kind: DirData, StartFrame: 0, Frames: 10, CycleSlots: 210},
		{Kind: DirData, StartFrame: 10, Frames: 6, CycleSlots: 126},
	})
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:len(good)-1])
	f.Add(fuzzDirBytes([]DirEntry{ // gap in the shard tiling
		{Kind: DirIndex, Frames: 16, CycleSlots: 80},
		{Kind: DirData, StartFrame: 3, Frames: 10, CycleSlots: 210},
	}))
	f.Add(fuzzDirBytes([]DirEntry{ // two index channels
		{Kind: DirIndex, Frames: 16, CycleSlots: 80},
		{Kind: DirIndex, Frames: 16, CycleSlots: 80},
	}))
	f.Fuzz(func(t *testing.T, buf []byte) {
		dir, err := DecodeShardDir(buf)
		if err == nil {
			// Accepted directories must expose consistent geometry.
			if len(FramesOnDir(dir)) != len(dir) {
				t.Fatal("frame extraction lost channels")
			}
			b := BoundsFromDir(dir)
			for i := 1; i < len(b); i++ {
				if b[i] <= b[i-1] {
					t.Fatalf("non-ascending bounds %v", b)
				}
			}
		}
	})
}

func FuzzDecodeDirV(f *testing.F) {
	body := fuzzDirBytes([]DirEntry{
		{Kind: DirIndex, Frames: 16, CycleSlots: 80},
		{Kind: DirData, StartFrame: 0, Frames: 16, CycleSlots: 336},
	})
	good := make([]byte, DirVHeaderSize+len(body))
	binary.BigEndian.PutUint16(good[0:], DirMagic)
	binary.BigEndian.PutUint32(good[2:], 3)
	binary.BigEndian.PutUint16(good[6:], 2)
	binary.BigEndian.PutUint64(good[8:], 1234)
	copy(good[DirVHeaderSize:], body)
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:DirVHeaderSize-1])
	badMagic := append([]byte{}, good...)
	badMagic[0] ^= 0xff
	f.Add(badMagic)
	badSeam := append([]byte{}, good...)
	binary.BigEndian.PutUint64(badSeam[8:], 1<<63)
	f.Add(badSeam)
	f.Fuzz(func(t *testing.T, buf []byte) {
		_, seam, _, err := DecodeDirV(buf)
		if err == nil && seam < 0 {
			t.Fatalf("accepted negative seam %d", seam)
		}
	})
}

func FuzzDecodeHeader(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeHeader(ObjectHeader{X: 3, Y: 9, HC: 77}))
	f.Add(EncodeHeader(ObjectHeader{})[:HeaderSize-1])
	f.Fuzz(func(t *testing.T, buf []byte) {
		_, _ = DecodeHeader(buf)
	})
}

func FuzzDecodeParity(f *testing.F) {
	const capacity = 64
	good := EncodeParity(ParityHeader{Unit: 7, Group: 1, K: 2, R: 3, Index: 2, Members: 0b101}, make([]byte, capacity))
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:len(good)-1])
	badRow := append([]byte{}, good...)
	badRow[9] = 3 // Index == R
	f.Add(badRow)
	badBitmap := append([]byte{}, good...)
	badBitmap[7] = 5 // K disagrees with the bitmap
	f.Add(badBitmap)
	f.Fuzz(func(t *testing.T, buf []byte) {
		h, sym, err := DecodeParity(buf, capacity)
		if err == nil && len(sym) != capacity {
			t.Fatalf("accepted %d-byte symbol, want %d", len(sym), capacity)
		}
		if err == nil && h.Index >= h.R {
			t.Fatalf("accepted row %d of %d", h.Index, h.R)
		}
	})
}

func FuzzDecodeFECDesc(f *testing.F) {
	good, _ := EncodeFECDesc(FECConfig{Table: FECCode{Groups: 1, Parity: 1}, Object: FECCode{Groups: 4, Parity: 6}}, 9)
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:FECDescSize-1])
	badMagic := append([]byte{}, good...)
	badMagic[1] ^= 0xff
	f.Add(badMagic)
	orphan := append([]byte{}, good...)
	orphan[6] = 0 // table parity without groups
	f.Add(orphan)
	f.Fuzz(func(t *testing.T, buf []byte) {
		c, _, err := DecodeFECDesc(buf)
		if err == nil {
			if _, err := EncodeFECDesc(c, 1); err != nil {
				t.Fatalf("decoded descriptor does not re-encode: %v", err)
			}
		}
	})
}

func FuzzDecodeNetFrame(f *testing.F) {
	good, _ := AppendNetFrame(nil, NetFrame{Kind: NetData, Flags: 1, Ch: 2, Slot: 40, Ver: 3, Abs: 1234, Payload: []byte("net payload")})
	f.Add([]byte{})
	f.Add(good)
	f.Add(good[:NetFrameHeader-1])
	f.Add(good[:len(good)-1])
	badMagic := append([]byte{}, good...)
	badMagic[0] ^= 0xff
	f.Add(badMagic)
	badKind := append([]byte{}, good...)
	badKind[2] = 0
	f.Add(badKind)
	f.Fuzz(func(t *testing.T, buf []byte) {
		fr, n, err := DecodeNetFrame(buf)
		if err == nil {
			if n < NetFrameHeader || n > len(buf) {
				t.Fatalf("consumed %d of %d", n, len(buf))
			}
			// A decoded frame must re-encode to the bytes it came from.
			re, err := AppendNetFrame(nil, fr)
			if err != nil {
				t.Fatalf("decoded frame does not re-encode: %v", err)
			}
			if string(re) != string(buf[:n]) {
				t.Fatalf("re-encode mismatch")
			}
		}
	})
}

// The live metrics surface: /metrics in the Prometheus text exposition
// format plus the standard /debug/pprof profiling endpoints, served on
// an opt-in listener the commands open behind a flag. Scraping is
// read-only and safe at any time during a run — every metric read is
// atomic.

package obs

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in the Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// NewMux returns a mux with /metrics bound to the registry and the
// /debug/pprof endpoints mounted (explicitly, so nothing leaks onto
// http.DefaultServeMux).
func NewMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the metrics endpoint on addr (":0" picks a free port)
// and returns the bound address. The server runs until the process
// exits — the commands treat it as a diagnostic tap, not a managed
// component.
func Serve(addr string, r *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: NewMux(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

package obs_test

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"dsi/internal/obs"
)

// TestServeMetrics pins the live surface: Serve binds a free port, a
// GET /metrics returns the Prometheus text exposition with the right
// content type, and /debug/pprof answers.
func TestServeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("up_total", "probe counter").Add(3)
	addr, err := obs.Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(string(body), "up_total 3") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	resp, err = http.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
}

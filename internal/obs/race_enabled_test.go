//go:build race

package obs_test

// raceEnabled reports whether the race detector is on; it randomizes
// sync.Pool reuse, which breaks strict allocation accounting.
const raceEnabled = true

package obs_test

import (
	"strings"
	"testing"

	"dsi/internal/obs"
)

// TestNilRegistryIsInert pins the nil-tolerance contract end to end: a
// nil registry hands out nil metrics, and every method on them is a
// no-op rather than a panic. The instrumented seams rely on this to
// make "disabled" mean "bare".
func TestNilRegistryIsInert(t *testing.T) {
	var reg *obs.Registry
	c := reg.Counter("x_total", "")
	if c != nil {
		t.Fatal("nil registry returned a live counter")
	}
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := reg.Gauge("x", "")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	h := reg.Histogram("x_h", "", []float64{1, 2})
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram holds observations")
	}
	if obs.NewReceiverMetrics(nil, 4) != nil || obs.NewStationMetrics(nil, 4) != nil ||
		obs.NewFECMetrics(nil) != nil || obs.NewSchedMetrics(nil) != nil {
		t.Fatal("nil registry produced a live bundle")
	}
}

// TestCounterDedup pins handle identity: the same name+labels returns
// the same series, different labels different ones, and Sum totals the
// family across label sets.
func TestCounterDedup(t *testing.T) {
	reg := obs.NewRegistry()
	a := reg.Counter("req_total", "requests", obs.Label{Key: "ch", Value: "0"})
	b := reg.Counter("req_total", "requests", obs.Label{Key: "ch", Value: "0"})
	c := reg.Counter("req_total", "requests", obs.Label{Key: "ch", Value: "1"})
	if a != b {
		t.Fatal("same name+labels minted two handles")
	}
	if a == c {
		t.Fatal("different labels share a handle")
	}
	a.Add(3)
	c.Inc()
	if got := reg.Sum("req_total"); got != 4 {
		t.Fatalf("Sum = %v, want 4", got)
	}
	if got := reg.Sum("missing_total"); got != 0 {
		t.Fatalf("Sum of missing family = %v, want 0", got)
	}
}

// TestKindMismatchPanics pins that re-registering a name under another
// metric kind fails loudly instead of silently aliasing.
func TestKindMismatchPanics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	reg.Gauge("x_total", "")
}

// TestHistogram pins bucket assignment: cumulative counts, the +Inf
// bucket, and the sum.
func TestHistogram(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("lat", "latency", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 16 {
		t.Fatalf("sum = %v, want 16", h.Sum())
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`, // 0.5 and the boundary value 1
		`lat_bucket{le="2"} 3`,
		`lat_bucket{le="5"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 16`,
		`lat_count 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestWriteTextFormat pins the Prometheus text exposition surface: HELP
// and TYPE headers, sorted deterministic output, label escaping.
func TestWriteTextFormat(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("b_total", "bees", obs.Label{Key: "kind", Value: `qu"ote\back`}).Add(2)
	reg.Counter("a_total", "ayes").Inc()
	reg.Gauge("g", "a gauge").Set(1.5)

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# HELP a_total ayes\n# TYPE a_total counter\na_total 1\n",
		"# TYPE b_total counter",
		`b_total{kind="qu\"ote\\back"} 2`,
		"# TYPE g gauge\ng 1.5\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	// Families render in name order, deterministically.
	if strings.Index(text, "a_total") > strings.Index(text, "b_total") {
		t.Error("families not sorted by name")
	}
	var sb2 strings.Builder
	_ = reg.WriteText(&sb2)
	if sb2.String() != text {
		t.Error("exposition not deterministic across renders")
	}
}

// TestSnapshot pins the flat counter/gauge/histogram view the
// benchmarks fold into BENCH_<sha>.json.
func TestSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("c_total", "").Add(7)
	reg.Counter("l_total", "", obs.ChannelLabel(2)).Inc()
	reg.Gauge("g", "").Set(2.5)
	h := reg.Histogram("h", "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)

	snap := reg.Snapshot()
	want := map[string]float64{
		"c_total":              7,
		`l_total{channel="2"}`: 1,
		"g":                    2.5,
		"h_count":              2,
		"h_sum":                3.5,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("snapshot[%q] = %v, want %v", k, snap[k], v)
		}
	}
}

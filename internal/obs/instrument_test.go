package obs_test

import (
	"fmt"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/sched"
	"dsi/internal/spatial"
	"dsi/internal/station"
)

// mkIndex builds the shared testbed index of the instrumentation
// regressions.
func mkIndex(t testing.TB) (*dataset.Dataset, *dsi.Index) {
	t.Helper()
	ds := dataset.Uniform(1500, 8, 71)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	return ds, x
}

// outcome is one query's complete observable result.
type outcome struct {
	ids []int
	st  broadcast.Stats
}

// runSuite replays a deterministic window+kNN mix through sessions
// minted by mk, re-tuning between queries — the experiment harness's
// access pattern in miniature.
func runSuite(t testing.TB, x *dsi.Index, cycle int, mk func() dsi.Receiver, theta float64) []outcome {
	t.Helper()
	sess, err := dsi.Open(x, dsi.WithReceiver(mk()))
	if err != nil {
		t.Fatal(err)
	}
	side := x.DS.Curve.Side()
	var out []outcome
	for i := 0; i < 12; i++ {
		probe := int64((i * 7919) % cycle)
		var loss *broadcast.LossModel
		if theta > 0 {
			loss = broadcast.NewLossModel(theta, int64(i)+5)
		}
		sess.Tune(probe, loss)
		w := spatial.ClampedWindow(uint32((i*37)%int(side)), uint32((i*53)%int(side)), 30, side)
		ids, st := sess.Window(w)
		out = append(out, outcome{ids, st})

		sess.Tune((probe+101)%int64(cycle), loss)
		q := spatial.Point{X: uint32((i * 41) % int(side)), Y: uint32((i * 29) % int(side))}
		ids, st = sess.KNN(q, 5, dsi.Conservative)
		out = append(out, outcome{ids, st})
	}
	return out
}

func sameOutcomes(t *testing.T, label string, bare, inst []outcome) {
	t.Helper()
	if len(bare) != len(inst) {
		t.Fatalf("%s: %d vs %d outcomes", label, len(bare), len(inst))
	}
	for i := range bare {
		if fmt.Sprint(bare[i].ids) != fmt.Sprint(inst[i].ids) || bare[i].st != inst[i].st {
			t.Fatalf("%s: query %d diverges\nbare: %+v %v\ninst: %+v %v",
				label, i, bare[i].st, bare[i].ids, inst[i].st, inst[i].ids)
		}
	}
}

// TestInstrumentedBitIdentical is the decorator's core regression: the
// instrumented receiver returns byte-for-byte the outcomes of the bare
// one — same result sets, same latency/tuning/switch accounting —
// across the window and kNN suites on both the simulator fast path
// (classic layout) and the byte-level wire path (sharded multi-channel
// layout under loss).
func TestInstrumentedBitIdentical(t *testing.T) {
	_, x := mkIndex(t)

	// Classic single channel over SimReceiver, lossless and lossy.
	lay := x.SingleLayout()
	for _, theta := range []float64{0, 0.2} {
		reg := obs.NewRegistry()
		bare := runSuite(t, x, lay.ProbeCycle(), func() dsi.Receiver {
			return dsi.NewSimReceiver(lay, 0, nil)
		}, theta)
		inst := runSuite(t, x, lay.ProbeCycle(), func() dsi.Receiver {
			return obs.InstrumentReceiver(dsi.NewSimReceiver(lay, 0, nil),
				obs.NewReceiverMetrics(reg, lay.Channels()))
		}, theta)
		sameOutcomes(t, fmt.Sprintf("classic theta=%g", theta), bare, inst)
		if reg.Sum("dsi_receiver_tuneins_total") == 0 || reg.Sum("dsi_receiver_table_reads_total") == 0 {
			t.Fatalf("theta=%g: instrumented run counted nothing", theta)
		}
	}

	// Sharded multi-channel over the byte-level wire receiver with loss.
	plan, err := sched.Uniform(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	shardLay, err := plan.Layout(2)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := station.NewMultiTransmitter(shardLay)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	mkWire := func() dsi.Receiver {
		rx, err := station.NewWireReceiver(shardLay, 1, mt, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rx
	}
	bare := runSuite(t, x, shardLay.ProbeCycle(), mkWire, 0.25)
	inst := runSuite(t, x, shardLay.ProbeCycle(), func() dsi.Receiver {
		return obs.InstrumentReceiver(mkWire(), obs.NewReceiverMetrics(reg, shardLay.Channels()))
	}, 0.25)
	sameOutcomes(t, "shard wire theta=0.25", bare, inst)
	if reg.Sum("dsi_receiver_switches_total") == 0 {
		t.Fatal("sharded run counted no channel switches")
	}
	if reg.Sum("dsi_receiver_losses_total") == 0 {
		t.Fatal("lossy run counted no losses")
	}
}

// TestInstrumentedTraceTimeline pins the armed tracer: a traced query
// yields a non-empty slot timeline starting at the tune-in, and
// disarming stops the recording.
func TestInstrumentedTraceTimeline(t *testing.T) {
	_, x := mkIndex(t)
	lay := x.SingleLayout()
	reg := obs.NewRegistry()
	irx := obs.InstrumentReceiver(dsi.NewSimReceiver(lay, 0, nil),
		obs.NewReceiverMetrics(reg, lay.Channels()))
	sess, err := dsi.Open(x, dsi.WithReceiver(irx))
	if err != nil {
		t.Fatal(err)
	}
	side := x.DS.Curve.Side()
	w := spatial.ClampedWindow(40, 60, 25, side)

	rec := &obs.TraceRecord{Client: 1}
	irx.Begin(rec)
	sess.Tune(17, nil)
	sess.Window(w)
	got := irx.End()
	if got != rec || len(rec.Events) == 0 {
		t.Fatalf("armed trace recorded %d events", len(rec.Events))
	}
	if rec.Events[0].Op != obs.OpTuneIn {
		t.Fatalf("timeline starts with %q, want %q", rec.Events[0].Op, obs.OpTuneIn)
	}
	seen := map[string]bool{}
	for _, e := range rec.Events {
		seen[e.Op] = true
	}
	if !seen[obs.OpTable] {
		t.Fatalf("timeline has no table reads: %v", rec.Events)
	}

	// Disarmed: further queries leave the record untouched.
	n := len(rec.Events)
	sess.Tune(18, nil)
	sess.Window(w)
	if irx.End() != nil {
		t.Fatal("End returned a record while disarmed")
	}
	if len(rec.Events) != n {
		t.Fatalf("recording continued after End: %d -> %d events", n, len(rec.Events))
	}
}

// TestInstrumentedWarmAllocs is the overhead bar: a warm window loop
// through the bare receiver allocates nothing per query, and the
// counter-only instrumented loop adds nothing to it — the decorator's
// hot path is pure atomics.
func TestInstrumentedWarmAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; allocation budgets only hold in normal builds")
	}
	_, x := mkIndex(t)
	lay := x.SingleLayout()
	side := x.DS.Curve.Side()
	w := spatial.ClampedWindow(100, 140, 25, side)
	cycle := int64(lay.ProbeCycle())

	measure := func(rx dsi.Receiver) float64 {
		sess, err := dsi.Open(x, dsi.WithReceiver(rx))
		if err != nil {
			t.Fatal(err)
		}
		var buf []int
		for i := 0; i < 3; i++ {
			sess.Tune(int64(i*37), nil)
			buf, _ = sess.WindowAppend(buf[:0], w)
		}
		probe := int64(0)
		return testing.AllocsPerRun(20, func() {
			sess.Tune(probe, nil)
			buf, _ = sess.WindowAppend(buf[:0], w)
			probe = (probe + 61) % cycle
		})
	}

	if avg := measure(dsi.NewSimReceiver(lay, 0, nil)); avg != 0 {
		t.Errorf("bare warm window loop allocates %.1f/run, want 0", avg)
	}
	reg := obs.NewRegistry()
	irx := obs.InstrumentReceiver(dsi.NewSimReceiver(lay, 0, nil),
		obs.NewReceiverMetrics(reg, lay.Channels()))
	if avg := measure(irx); avg != 0 {
		t.Errorf("instrumented warm window loop allocates %.1f/run, want 0", avg)
	}
	if reg.Sum("dsi_receiver_table_reads_total") == 0 {
		t.Fatal("instrumented loop counted nothing")
	}
}

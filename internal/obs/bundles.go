// Metric bundles: the named counter sets each instrumented layer hooks
// into. Constructors are nil-tolerant (a nil registry yields a nil
// bundle) and idempotent (the registry dedups by name+labels, so many
// receivers or transmitters minted against the same registry share the
// same series). The names below are the stable vocabulary the README
// documents and CI greps for.

package obs

import "strconv"

// ChannelLabel renders the per-channel label of channel ch.
func ChannelLabel(ch int) Label { return Label{Key: "channel", Value: strconv.Itoa(ch)} }

// ReceiverMetrics counts a client radio's reception events; one bundle
// per channel count, shared by every receiver wrapped against the same
// registry.
type ReceiverMetrics struct {
	TuneIns     *Counter // Reset calls: queries tuning in
	DozeCalls   *Counter // DozeUntilPos calls
	DozeSlots   *Counter // slots slept across all dozes
	Switches    *Counter // channel switches (Tune to a different channel)
	ProbeMisses *Counter // probe (Next) reads lost to the channel
	TableReads  *Counter // Table calls
	HeaderReads *Counter // Header calls
	ObjectReads *Counter // Object calls
	Polls       *Counter // Poll calls
	Resyncs     *Counter // Poll calls that surfaced a directory bump
	Losses      []*Counter

	reg *Registry
}

// NewReceiverMetrics registers the receiver counter set with per-channel
// loss counters for channels [0, channels). Nil registry → nil bundle.
func NewReceiverMetrics(reg *Registry, channels int) *ReceiverMetrics {
	if reg == nil {
		return nil
	}
	m := &ReceiverMetrics{
		TuneIns:     reg.Counter("dsi_receiver_tuneins_total", "queries tuned in (receiver resets)"),
		DozeCalls:   reg.Counter("dsi_receiver_doze_calls_total", "doze-to-position calls"),
		DozeSlots:   reg.Counter("dsi_receiver_doze_slots_total", "slots slept across all dozes"),
		Switches:    reg.Counter("dsi_receiver_switches_total", "channel switches"),
		ProbeMisses: reg.Counter("dsi_receiver_probe_misses_total", "probe reads lost to the channel"),
		TableReads:  reg.Counter("dsi_receiver_table_reads_total", "index table reads"),
		HeaderReads: reg.Counter("dsi_receiver_header_reads_total", "object header reads"),
		ObjectReads: reg.Counter("dsi_receiver_object_reads_total", "object body reads"),
		Polls:       reg.Counter("dsi_receiver_polls_total", "directory poll checks"),
		Resyncs:     reg.Counter("dsi_receiver_resyncs_total", "mid-query directory resyncs adopted"),
		reg:         reg,
	}
	m.Losses = make([]*Counter, channels)
	for ch := range m.Losses {
		m.Losses[ch] = reg.Counter("dsi_receiver_losses_total",
			"content reads lost or undecodable, by channel", ChannelLabel(ch))
	}
	return m
}

// loss returns the per-channel loss counter (nil out of range, which
// Counter methods tolerate).
func (m *ReceiverMetrics) loss(ch int) *Counter {
	if ch < 0 || ch >= len(m.Losses) {
		return nil
	}
	return m.Losses[ch]
}

// resyncTo counts a resync against the adopted directory version. This
// is the rare path (one count per seam crossed), so the labeled lookup
// is affordable.
func (m *ReceiverMetrics) resyncTo(ver uint32) {
	m.reg.Counter("dsi_receiver_resyncs_by_version_total",
		"mid-query directory resyncs, by adopted version",
		Label{Key: "to_version", Value: strconv.FormatUint(uint64(ver), 10)}).Inc()
}

// StationMetrics counts transmitter-side events: seam swaps, version
// bumps, and per-channel packets emitted.
type StationMetrics struct {
	SwapsStaged     *Counter // directory swaps staged at a seam
	SwapsCommitted  *Counter // staged swaps committed past every seam
	CodeSwapsStaged *Counter // staged swaps that change the FEC code
	DirVersion      *Gauge   // directory version currently on air
	Packets         []*Counter

	reg *Registry
}

// NewStationMetrics registers the transmitter counter set with
// per-channel emission counters for channels [0, channels).
func NewStationMetrics(reg *Registry, channels int) *StationMetrics {
	if reg == nil {
		return nil
	}
	m := &StationMetrics{
		SwapsStaged:     reg.Counter("station_seam_swaps_staged_total", "directory swaps staged at a cycle seam"),
		SwapsCommitted:  reg.Counter("station_seam_swaps_committed_total", "staged swaps committed past every channel seam"),
		CodeSwapsStaged: reg.Counter("station_code_swaps_staged_total", "staged swaps that change the FEC code"),
		DirVersion:      reg.Gauge("station_directory_version", "shard-directory version on air"),
		reg:             reg,
	}
	m.Packets = make([]*Counter, channels)
	for ch := range m.Packets {
		m.Packets[ch] = reg.Counter("station_packets_emitted_total",
			"packets served to receivers, by channel", ChannelLabel(ch))
	}
	return m
}

// PacketEmitted counts one packet served on channel ch. Nil-safe and
// bounds-safe: transmitters call it unconditionally from PacketAt.
func (m *StationMetrics) PacketEmitted(ch int) {
	if m == nil || ch < 0 || ch >= len(m.Packets) {
		return
	}
	m.Packets[ch].Inc()
}

// FECMetrics counts the recovering receiver's coding events.
type FECMetrics struct {
	Recovered     *Counter // packets reconstructed from parity
	CacheHits     *Counter // table reads served from the recovered-unit cache
	GroupSolves   *Counter // unit recoveries that solved every needed group
	SolveFailures *Counter // recoveries abandoned (losses beyond the code distance)
	CodeSwaps     *Counter // FEC code changes adopted at a seam
}

// NewFECMetrics registers the FEC counter set.
func NewFECMetrics(reg *Registry) *FECMetrics {
	if reg == nil {
		return nil
	}
	return &FECMetrics{
		Recovered:     reg.Counter("station_fec_recovered_packets_total", "packets reconstructed from parity"),
		CacheHits:     reg.Counter("station_fec_cache_hits_total", "table reads served from the recovered-unit cache"),
		GroupSolves:   reg.Counter("station_fec_group_solves_total", "unit recoveries that solved every needed group"),
		SolveFailures: reg.Counter("station_fec_solve_failures_total", "unit recoveries beyond the code distance"),
		CodeSwaps:     reg.Counter("station_fec_code_swaps_total", "FEC code changes adopted at a seam"),
	}
}

// TransportLabel renders the transport label of a network series
// ("http", "udp", or "mcast").
func TransportLabel(t string) Label { return Label{Key: "transport", Value: t} }

// NetStationMetrics counts the network station's transport-side
// events: connections, bytes on the wire, and batches dropped on slow
// consumers. One bundle per (transport, channel count).
type NetStationMetrics struct {
	Conns      *Gauge   // live subscriber connections
	Frames     *Counter // net frames emitted across all channels
	CtrlFrames *Counter // in-band directory/FEC control frames emitted
	Drops      *Counter // batches dropped on lagging consumers
	SubsetSubs *Counter // subscriptions restricted to a channel subset (?ch=)
	Bytes      []*Counter

	reg *Registry
}

// NewNetStationMetrics registers the network emission counter set for
// one transport with per-channel byte counters for channels
// [0, channels). Nil registry → nil bundle.
func NewNetStationMetrics(reg *Registry, transport string, channels int) *NetStationMetrics {
	if reg == nil {
		return nil
	}
	m := &NetStationMetrics{
		Conns:      reg.Gauge("station_net_conns", "live subscriber connections, by transport", TransportLabel(transport)),
		Frames:     reg.Counter("station_net_frames_total", "net frames emitted, by transport", TransportLabel(transport)),
		CtrlFrames: reg.Counter("station_net_ctrl_frames_total", "in-band directory/FEC control frames emitted, by transport", TransportLabel(transport)),
		Drops:      reg.Counter("station_net_dropped_batches_total", "frame batches dropped on lagging consumers, by transport", TransportLabel(transport)),
		SubsetSubs: reg.Counter("station_net_subset_subscriptions_total", "subscriptions restricted to a channel subset, by transport", TransportLabel(transport)),
		reg:        reg,
	}
	m.Bytes = make([]*Counter, channels)
	for ch := range m.Bytes {
		m.Bytes[ch] = reg.Counter("station_net_bytes_total",
			"payload bytes emitted, by transport and channel", TransportLabel(transport), ChannelLabel(ch))
	}
	return m
}

// BytesEmitted counts n emitted bytes on channel ch. Nil-safe and
// bounds-safe: emitters call it unconditionally.
func (m *NetStationMetrics) BytesEmitted(ch int, n int) {
	if m == nil || ch < 0 || ch >= len(m.Bytes) {
		return
	}
	m.Bytes[ch].Add(int64(n))
}

// SubsetSubscribed counts one subscription that asked for a channel
// subset rather than the full fan-out. Nil-safe.
func (m *NetStationMetrics) SubsetSubscribed() {
	if m != nil {
		m.SubsetSubs.Add(1)
	}
}

// ConnOpened / ConnClosed move the live-connection gauge. Nil-safe.
func (m *NetStationMetrics) ConnOpened() {
	if m != nil {
		m.Conns.Add(1)
	}
}

// ConnClosed decrements the live-connection gauge. Nil-safe.
func (m *NetStationMetrics) ConnClosed() {
	if m != nil {
		m.Conns.Add(-1)
	}
}

// NetReceiverMetrics counts a network receiver's transport events —
// the client-side mirror of NetStationMetrics. Slot-level reception
// costs stay in ReceiverMetrics; these families cover what only the
// network path can do: lose datagrams, sever streams, reconnect.
type NetReceiverMetrics struct {
	Frames     *Counter // net frames received and slotted into the feed
	Reconnects *Counter // stream reconnects after a severed transport
	LostSlots  *Counter // slots declared lost (dropped, evicted, or timed out)
	Garbage    *Counter // malformed frames or datagrams discarded
}

// NewNetReceiverMetrics registers the network reception counter set
// for one transport. Nil registry → nil bundle.
func NewNetReceiverMetrics(reg *Registry, transport string) *NetReceiverMetrics {
	if reg == nil {
		return nil
	}
	return &NetReceiverMetrics{
		Frames:     reg.Counter("netrecv_frames_total", "net frames received, by transport", TransportLabel(transport)),
		Reconnects: reg.Counter("netrecv_reconnects_total", "stream reconnects, by transport", TransportLabel(transport)),
		LostSlots:  reg.Counter("netrecv_lost_slots_total", "slots declared lost at the feed, by transport", TransportLabel(transport)),
		Garbage:    reg.Counter("netrecv_garbage_frames_total", "malformed frames discarded, by transport", TransportLabel(transport)),
	}
}

// driftBuckets are the plan-drift histogram bounds: ratios >= 1, dense
// near the trigger thresholds the drift experiment sweeps.
var driftBuckets = []float64{1.02, 1.05, 1.1, 1.2, 1.5, 2, 2.5, 5, 10}

// SchedMetrics counts the online re-planning loop's decisions.
type SchedMetrics struct {
	Checks           *Counter   // planning passes run
	ReplansTriggered *Counter   // checks whose drift crossed the trigger ratio
	ReplansSkipped   *Counter   // checks that kept the live plan
	DriftRatio       *Gauge     // drift ratio measured at the last check
	Drift            *Histogram // drift ratios across all checks
}

// NewSchedMetrics registers the scheduler counter set.
func NewSchedMetrics(reg *Registry) *SchedMetrics {
	if reg == nil {
		return nil
	}
	return &SchedMetrics{
		Checks:           reg.Counter("sched_replan_checks_total", "online planning passes run"),
		ReplansTriggered: reg.Counter("sched_replans_triggered_total", "planning passes that triggered a swap"),
		ReplansSkipped:   reg.Counter("sched_replans_skipped_total", "planning passes that kept the live plan"),
		DriftRatio:       reg.Gauge("sched_plan_drift_ratio", "live/fresh plan cost ratio at the last check"),
		Drift:            reg.Histogram("sched_plan_drift", "live/fresh plan cost ratios across checks", driftBuckets),
	}
}

// Package obs is the operational observability layer: a
// zero-dependency, Prometheus-text-compatible metrics registry
// (counters, gauges, fixed-bucket histograms — atomic, alloc-free on
// the hot path) plus a sampled slot-level session tracer and a
// dsi.Receiver decorator that counts reception events without touching
// client code.
//
// Everything is opt-in and nil-tolerant end to end: a nil *Registry
// hands out nil metrics, every metric method on a nil pointer is a
// no-op, and the instrumented seams (station transmitters and
// receivers, the sched replanner, the experiment and massive harnesses)
// guard their hooks behind one nil check — so with instrumentation
// disabled the warm query path stays exactly the bare path,
// 0 extra allocs/op and bit-identical (regression-enforced).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension ("channel"="2", "arm"="fec").
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing atomic counter. The zero value
// is ready for use; all methods are safe on a nil receiver (no-ops
// reading zero), which is what lets hot paths increment unconditionally
// whether or not a registry was wired in.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 that can move both ways. Safe on a nil
// receiver like Counter.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add adds d (atomically, CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: upper bounds are set at
// registration, observations are atomic and allocation-free. Safe on a
// nil receiver.
type Histogram struct {
	uppers  []float64      // sorted inclusive upper bounds; +Inf implicit
	buckets []atomic.Int64 // len(uppers)+1, last is the overflow bucket
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v) // first upper >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return bitsFloat(h.sumBits.Load())
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// metric kinds, also the TYPE line vocabulary of the text format.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// child is one label combination of a family; exactly one of c/g/h is
// set, matching the family kind.
type child struct {
	labels string // rendered `key="value",...` (sorted), "" when none
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one metric name: its help, kind, bucket layout (histograms)
// and children keyed by rendered label set.
type family struct {
	name, help string
	kind       string
	uppers     []float64
	children   map[string]*child
}

// Registry hands out metrics and renders them in the Prometheus text
// exposition format. Registration (Counter/Gauge/Histogram) takes a
// lock and may allocate; the returned metric handles are lock-free.
// Registering the same name+labels again returns the same handle, so
// independent components can share a series without coordination. A nil
// *Registry hands out nil metrics — the disabled instrumentation path.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// Counter registers (or finds) a counter. Nil-safe: a nil registry
// returns a nil counter whose methods are no-ops.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.child(name, help, kindCounter, nil, labels).c
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.child(name, help, kindGauge, nil, labels).g
}

// Histogram registers (or finds) a histogram with the given inclusive
// bucket upper bounds (sorted ascending; the +Inf bucket is implicit).
// Re-registration must use the same bounds.
func (r *Registry) Histogram(name, help string, uppers []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(uppers); i++ {
		if uppers[i] <= uppers[i-1] {
			panic(fmt.Sprintf("obs: histogram %s bucket bounds not strictly increasing: %v", name, uppers))
		}
	}
	return r.child(name, help, kindHistogram, uppers, labels).h
}

func (r *Registry) child(name, help, kind string, uppers []float64, labels []Label) *child {
	if name == "" {
		panic("obs: empty metric name")
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, uppers: append([]float64(nil), uppers...), children: map[string]*child{}}
		r.fams[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.kind, kind))
	}
	ch := f.children[key]
	if ch == nil {
		ch = &child{labels: key}
		switch kind {
		case kindCounter:
			ch.c = &Counter{}
		case kindGauge:
			ch.g = &Gauge{}
		case kindHistogram:
			h := &Histogram{uppers: f.uppers}
			h.buckets = make([]atomic.Int64, len(f.uppers)+1)
			ch.h = h
		}
		f.children[key] = ch
	}
	return ch
}

// renderLabels renders a label set in sorted-key order, escaping values
// per the text exposition format.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// series renders one `name{labels} value` sample line.
func series(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (families and label sets in sorted order, so the
// output is deterministic and diffable).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		f := r.fams[name]
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ch := f.children[k]
			switch f.kind {
			case kindCounter:
				series(&b, f.name, ch.labels, "", strconv.FormatInt(ch.c.Value(), 10))
			case kindGauge:
				series(&b, f.name, ch.labels, "", fmtFloat(ch.g.Value()))
			case kindHistogram:
				var cum int64
				for i, up := range ch.h.uppers {
					cum += ch.h.buckets[i].Load()
					series(&b, f.name+"_bucket", ch.labels, `le="`+fmtFloat(up)+`"`, strconv.FormatInt(cum, 10))
				}
				cum += ch.h.buckets[len(ch.h.uppers)].Load()
				series(&b, f.name+"_bucket", ch.labels, `le="+Inf"`, strconv.FormatInt(cum, 10))
				series(&b, f.name+"_sum", ch.labels, "", fmtFloat(ch.h.Sum()))
				series(&b, f.name+"_count", ch.labels, "", strconv.FormatInt(ch.h.Count(), 10))
			}
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns every scalar sample as a flat map: counters and
// gauges under `name` or `name{labels}`, histograms contributing
// `name_count` and `name_sum`. This is what the experiment harness
// folds into benchmark artifacts.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	out := map[string]float64{}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.fams {
		for _, ch := range f.children {
			key := f.name
			if ch.labels != "" {
				key += "{" + ch.labels + "}"
			}
			switch f.kind {
			case kindCounter:
				out[key] = float64(ch.c.Value())
			case kindGauge:
				out[key] = ch.g.Value()
			case kindHistogram:
				suffix := ""
				if ch.labels != "" {
					suffix = "{" + ch.labels + "}"
				}
				out[f.name+"_count"+suffix] = float64(ch.h.Count())
				out[f.name+"_sum"+suffix] = ch.h.Sum()
			}
		}
	}
	return out
}

// Sum adds up every sample of the named counter family across its label
// sets — the one-call answer to "how many X happened, over all
// channels/arms". Returns 0 on a nil registry or an unknown name.
func (r *Registry) Sum(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.fams[name]
	if f == nil || f.kind != kindCounter {
		return 0
	}
	var total int64
	for _, ch := range f.children {
		total += ch.c.Value()
	}
	return total
}

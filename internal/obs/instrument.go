// InstrumentReceiver: the dsi.Receiver decorator. It forwards every
// call to the wrapped receiver unchanged — same reads, same dozes, same
// cost accounting — and counts what it sees on the way through:
// tune-ins, dozes, switches, probe misses, per-channel losses, polls
// and resyncs. Because it adds no behavior, an instrumented receiver is
// bit-identical to the bare one by construction; the regression tests
// pin that anyway, alongside an allocation guard proving the counter
// path adds zero allocs to a warm query loop.
//
// The same wrapper carries the slot tracer: Begin arms it with a
// TraceRecord, every operation appends a timeline event until End. With
// no record armed the trace path is one nil check.

package obs

import (
	"dsi/internal/broadcast"
	"dsi/internal/dsi"
)

// Trace event ops.
const (
	OpTuneIn = "tune-in"
	OpTune   = "tune"
	OpDoze   = "doze"
	OpProbe  = "probe"
	OpTable  = "table"
	OpHeader = "header"
	OpObject = "object"
	OpPoll   = "poll"
	OpResync = "resync"
	OpFollow = "follow"
)

// InstrumentedReceiver decorates a dsi.Receiver with counters and an
// optional armed trace. Use InstrumentReceiver to build one.
type InstrumentedReceiver struct {
	inner dsi.Receiver
	m     *ReceiverMetrics
	rec   *TraceRecord
}

// InstrumentReceiver wraps inner with the counter bundle (nil m counts
// nothing — wrap-for-tracing-only). The wrapper is itself a
// dsi.Receiver: pass it to dsi.Open via WithReceiver.
func InstrumentReceiver(inner dsi.Receiver, m *ReceiverMetrics) *InstrumentedReceiver {
	return &InstrumentedReceiver{inner: inner, m: m}
}

// Inner returns the wrapped receiver.
func (r *InstrumentedReceiver) Inner() dsi.Receiver { return r.inner }

// Begin arms the tracer: subsequent operations append to rec.Events
// until End. The caller emits the finished record.
func (r *InstrumentedReceiver) Begin(rec *TraceRecord) { r.rec = rec }

// End disarms the tracer and returns the armed record.
func (r *InstrumentedReceiver) End() *TraceRecord {
	rec := r.rec
	r.rec = nil
	return rec
}

func (r *InstrumentedReceiver) trace(op string, pos int, n int64, ok bool) {
	if r.rec == nil {
		return
	}
	r.rec.Events = append(r.rec.Events, TraceEvent{
		Op: op, Slot: r.inner.Now(), Ch: r.inner.Channel(), Pos: pos, N: n, OK: ok,
	})
}

// Layout returns the wrapped receiver's layout.
func (r *InstrumentedReceiver) Layout() *dsi.Layout { return r.inner.Layout() }

// Now returns the absolute packet clock.
func (r *InstrumentedReceiver) Now() int64 { return r.inner.Now() }

// Pos returns the current cycle position.
func (r *InstrumentedReceiver) Pos() int { return r.inner.Pos() }

// Channel returns the tuned channel.
func (r *InstrumentedReceiver) Channel() int { return r.inner.Channel() }

// PhaseOf returns channel ch's phase anchor.
func (r *InstrumentedReceiver) PhaseOf(ch int) int64 { return r.inner.PhaseOf(ch) }

// Stats returns the wrapped receiver's cost metrics.
func (r *InstrumentedReceiver) Stats() broadcast.Stats { return r.inner.Stats() }

// Tune retunes the radio, counting a switch when the channel changes.
func (r *InstrumentedReceiver) Tune(ch int) {
	if r.m != nil && ch != r.inner.Channel() {
		r.m.Switches.Inc()
	}
	r.inner.Tune(ch)
	r.trace(OpTune, 0, int64(ch), true)
}

// DozeUntilPos sleeps to the position, counting the call and the slots
// slept.
func (r *InstrumentedReceiver) DozeUntilPos(pos int) {
	before := r.inner.Now()
	r.inner.DozeUntilPos(pos)
	if r.m != nil {
		r.m.DozeCalls.Inc()
		r.m.DozeSlots.Add(r.inner.Now() - before)
	}
	r.trace(OpDoze, pos, r.inner.Now()-before, true)
}

// Next receives the probe packet, counting a miss on loss.
func (r *InstrumentedReceiver) Next() (broadcast.Slot, bool) {
	s, ok := r.inner.Next()
	if r.m != nil && !ok {
		r.m.ProbeMisses.Inc()
	}
	r.trace(OpProbe, 0, 0, ok)
	return s, ok
}

// Table receives an index table, counting the read and any loss on the
// channel it was read from.
func (r *InstrumentedReceiver) Table(pos int) (*dsi.Table, bool) {
	ch := r.inner.Channel()
	t, ok := r.inner.Table(pos)
	if r.m != nil {
		r.m.TableReads.Inc()
		if !ok {
			r.m.loss(ch).Inc()
		}
	}
	r.trace(OpTable, pos, 0, ok)
	return t, ok
}

// Header receives an object header, counting the read and any loss.
func (r *InstrumentedReceiver) Header(pos, o int) (uint64, bool) {
	ch := r.inner.Channel()
	hc, ok := r.inner.Header(pos, o)
	if r.m != nil {
		r.m.HeaderReads.Inc()
		if !ok {
			r.m.loss(ch).Inc()
		}
	}
	r.trace(OpHeader, pos, int64(o), ok)
	return hc, ok
}

// Object receives an object body, counting the read and any loss.
func (r *InstrumentedReceiver) Object(pos, o, skip int) bool {
	ch := r.inner.Channel()
	ok := r.inner.Object(pos, o, skip)
	if r.m != nil {
		r.m.ObjectReads.Inc()
		if !ok {
			r.m.loss(ch).Inc()
		}
	}
	r.trace(OpObject, pos, int64(o), ok)
	return ok
}

// Poll checks for a directory bump, counting the check and — when one
// surfaces — the resync, labeled with the adopted version when the
// wrapped receiver exposes one.
func (r *InstrumentedReceiver) Poll() (*dsi.Layout, bool) {
	lay, ok := r.inner.Poll()
	if r.m != nil {
		r.m.Polls.Inc()
		if ok {
			r.m.Resyncs.Inc()
			if v, has := r.inner.(interface{ Version() uint32 }); has {
				r.m.resyncTo(v.Version())
			}
		}
	}
	if ok {
		r.trace(OpResync, 0, 0, true)
	}
	return lay, ok
}

// Follow commits a re-seed onto the new layout.
func (r *InstrumentedReceiver) Follow(lay *dsi.Layout) {
	r.inner.Follow(lay)
	r.trace(OpFollow, 0, 0, true)
}

// Reset re-tunes at the probe slot, counting a tune-in.
func (r *InstrumentedReceiver) Reset(probeSlot int64, loss *broadcast.LossModel) {
	if r.m != nil {
		r.m.TuneIns.Inc()
	}
	r.inner.Reset(probeSlot, loss)
	r.trace(OpTuneIn, 0, probeSlot, true)
}

// SetChannelLoss installs a per-channel loss model.
func (r *InstrumentedReceiver) SetChannelLoss(ch int, loss *broadcast.LossModel) error {
	return r.inner.SetChannelLoss(ch, loss)
}

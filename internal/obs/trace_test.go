package obs_test

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"dsi/internal/obs"
)

// TestTracerSamplingDeterministic pins the sampling contract: the same
// (seed, every) settings select the same clients on every run, the rate
// lands near 1/every, and a nil tracer samples nobody.
func TestTracerSamplingDeterministic(t *testing.T) {
	var sb strings.Builder
	a := obs.NewTracer(&sb, 100, 42)
	b := obs.NewTracer(&sb, 100, 42)
	hits := 0
	for id := int64(0); id < 100_000; id++ {
		sa := a.Sampled(id)
		if sa != b.Sampled(id) {
			t.Fatalf("sampling of client %d differs across identical tracers", id)
		}
		if sa {
			hits++
		}
	}
	if hits < 700 || hits > 1300 {
		t.Fatalf("sampled %d of 100k at 1/100 — hash badly skewed", hits)
	}
	other := obs.NewTracer(&sb, 100, 43)
	same := 0
	for id := int64(0); id < 10_000; id++ {
		if a.Sampled(id) && other.Sampled(id) {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("seeds 42 and 43 share %d of the first 10k sampled clients — seed ignored", same)
	}
	var nilT *obs.Tracer
	if nilT.Sampled(0) {
		t.Fatal("nil tracer sampled a client")
	}
	nilT.Emit(&obs.TraceRecord{}) // must not panic
	if nilT.Emitted() != 0 {
		t.Fatal("nil tracer emitted")
	}
}

// TestTracerEmitJSONL pins the wire format: one JSON object per line,
// round-tripping the record and its event timeline.
func TestTracerEmitJSONL(t *testing.T) {
	var sb strings.Builder
	tr := obs.NewTracer(&sb, 1, 1)
	tr.Emit(&obs.TraceRecord{
		Client: 7, Arm: "shard", Kind: "window", Probe: 99,
		Latency: 1234, Tuning: 56, Switches: 3,
		Events: []obs.TraceEvent{
			{Op: obs.OpTuneIn, Slot: 99, Ch: 0, OK: true},
			{Op: obs.OpTable, Slot: 120, Ch: 1, Pos: 4, OK: false},
		},
	})
	tr.Emit(&obs.TraceRecord{Client: 8, Kind: "knn"})
	if tr.Emitted() != 2 {
		t.Fatalf("emitted = %d, want 2", tr.Emitted())
	}

	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var recs []obs.TraceRecord
	for sc.Scan() {
		var r obs.TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		recs = append(recs, r)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d JSONL lines, want 2", len(recs))
	}
	r := recs[0]
	if r.Client != 7 || r.Arm != "shard" || r.Kind != "window" || r.Probe != 99 ||
		r.Latency != 1234 || r.Tuning != 56 || r.Switches != 3 || len(r.Events) != 2 {
		t.Fatalf("record round-trip: %+v", r)
	}
	if r.Events[1].Op != obs.OpTable || r.Events[1].Slot != 120 || r.Events[1].Ch != 1 ||
		r.Events[1].Pos != 4 || r.Events[1].OK {
		t.Fatalf("event round-trip: %+v", r.Events[1])
	}
}

// The sampled session tracer: per-query slot timelines emitted as
// JSONL. Sampling is a deterministic seeded hash of the client id, so
// the same flag settings trace the same clients on every run —
// reproducible timelines, not a random peek. The per-event overhead
// exists only on sampled clients; everyone else runs the uninstrumented
// (or counter-only) path.

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// TraceEvent is one receiver operation on a sampled client's timeline.
type TraceEvent struct {
	// Op is the operation: tune-in, tune, doze, probe, table, header,
	// object, poll, resync, follow.
	Op string `json:"op"`
	// Slot is the absolute slot clock after the operation.
	Slot int64 `json:"slot"`
	// Ch is the channel the radio ended on.
	Ch int `json:"ch"`
	// Pos is the cycle-position argument of positioned operations.
	Pos int `json:"pos,omitempty"`
	// N carries the operation's secondary argument (object index,
	// adopted version, slots slept).
	N int64 `json:"n,omitempty"`
	// OK is false when the operation failed (loss, undecodable payload).
	OK bool `json:"ok"`
}

// TraceRecord is one sampled client query: identity, outcome metrics,
// and the slot timeline.
type TraceRecord struct {
	Client   int64        `json:"client"`
	Arm      string       `json:"arm,omitempty"`
	Kind     string       `json:"kind,omitempty"`
	Probe    int64        `json:"probe"`
	Latency  int64        `json:"latency_packets"`
	Tuning   int64        `json:"tuning_packets"`
	Switches int64        `json:"switches"`
	Events   []TraceEvent `json:"events"`
}

// Tracer writes sampled TraceRecords as JSONL, one line per query,
// under a mutex (workers trace concurrently; lines never interleave).
type Tracer struct {
	every uint64
	seed  uint64

	mu      sync.Mutex
	enc     *json.Encoder
	emitted atomic.Int64
}

// NewTracer traces roughly one in every `every` clients (minimum 1 =
// everyone) with the given sampling seed, writing JSONL to w. The
// caller owns w's buffering and closing.
func NewTracer(w io.Writer, every int, seed int64) *Tracer {
	if every < 1 {
		every = 1
	}
	return &Tracer{every: uint64(every), seed: uint64(seed), enc: json.NewEncoder(w)}
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap
// high-quality hash for the sampling decision.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Sampled reports whether client id is in the deterministic sample.
// Nil-safe: a nil tracer samples nobody.
func (t *Tracer) Sampled(id int64) bool {
	if t == nil {
		return false
	}
	return splitmix64(t.seed^uint64(id))%t.every == 0
}

// Emit writes one record as a JSONL line.
func (t *Tracer) Emit(rec *TraceRecord) {
	if t == nil || rec == nil {
		return
	}
	t.mu.Lock()
	err := t.enc.Encode(rec)
	t.mu.Unlock()
	if err == nil {
		t.emitted.Add(1)
	}
}

// Emitted returns the number of records written so far.
func (t *Tracer) Emitted() int64 {
	if t == nil {
		return 0
	}
	return t.emitted.Load()
}

// The datagram transports. Unicast subscribers speak a three-verb text
// protocol on the station's UDP port — "DSIJOIN <ch>" (ch -1 for every
// channel), "DSIPING" to refresh the lease, "DSILEAVE" — and then
// receive one net frame per datagram until their lease expires.
// Multicast needs no subscription at all: each broadcast channel
// streams to its own group (base address, port + channel), which is the
// closest a packet network gets to the paper's shared medium — any
// number of receivers, zero per-client state at the station.

package netsrv

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"strconv"
	"time"

	"dsi/internal/obs"
)

// udpLeaseTTL is how long a unicast subscription lives without a PING.
const udpLeaseTTL = 30 * time.Second

type udpSub struct {
	to  net.Addr
	ch  int // -1 = every channel
	exp time.Time
}

// udpEmitter owns the unicast socket, the subscriber table, and the
// optional per-channel multicast sockets.
type udpEmitter struct {
	srv  *Server
	pc   net.PacketConn
	addr string
	q    chan flushSet

	subs map[string]*udpSub // keyed by remote addr string

	mcast []net.Conn // per-channel group sockets, nil when disabled
}

// ServeUDP opens the station's datagram port and starts the subscriber
// and emission loops; they stop when ctx is cancelled. The bound
// address (useful with ":0") is returned.
func (s *Server) ServeUDP(ctx context.Context, addr string) (string, error) {
	pc, err := net.ListenPacket("udp", addr)
	if err != nil {
		return "", err
	}
	u := &udpEmitter{
		srv:  s,
		pc:   pc,
		addr: pc.LocalAddr().String(),
		q:    make(chan flushSet, streamQueueDepth),
		subs: make(map[string]*udpSub),
	}
	if s.udpMet == nil {
		s.udpMet = obs.NewNetStationMetrics(s.cfg.Registry, "udp", s.nch)
	}
	s.mu.Lock()
	s.udp = u
	s.mu.Unlock()
	go u.controlLoop()
	go u.sendLoop(ctx)
	go func() {
		<-ctx.Done()
		_ = pc.Close()
	}()
	return u.addr, nil
}

// EnableMulticast opens one emission socket per channel on the group
// base address: channel c streams to host:port+c. Works with any
// multicast group address (e.g. 239.0.0.0/8 for loopback-scope tests).
func (s *Server) EnableMulticast(base string) error {
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return fmt.Errorf("netsrv: multicast base %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return fmt.Errorf("netsrv: multicast base %q: %w", base, err)
	}
	conns := make([]net.Conn, s.nch)
	for ch := 0; ch < s.nch; ch++ {
		c, err := net.Dial("udp", net.JoinHostPort(host, strconv.Itoa(port+ch)))
		if err != nil {
			for _, done := range conns[:ch] {
				_ = done.Close()
			}
			return fmt.Errorf("netsrv: multicast channel %d: %w", ch, err)
		}
		conns[ch] = c
	}
	if s.udp == nil {
		return fmt.Errorf("netsrv: multicast emission needs ServeUDP first")
	}
	if s.mcastMet == nil {
		s.mcastMet = obs.NewNetStationMetrics(s.cfg.Registry, "mcast", s.nch)
	}
	s.udp.mcast = conns
	s.mcastAddrs = append(s.mcastAddrs, base)
	return nil
}

// publish enqueues a flush for datagram emission, dropping it if the
// send loop is behind (UDP promises nothing anyway).
func (u *udpEmitter) publish(fs flushSet) {
	select {
	case u.q <- fs:
	default:
		if m := u.srv.udpMet; m != nil {
			m.Drops.Inc()
		}
	}
}

// controlLoop serves the JOIN/PING/LEAVE verbs until the socket closes.
func (u *udpEmitter) controlLoop() {
	buf := make([]byte, 256)
	for {
		n, from, err := u.pc.ReadFrom(buf)
		if err != nil {
			return
		}
		msg := bytes.TrimSpace(buf[:n])
		switch {
		case bytes.HasPrefix(msg, []byte("DSIJOIN")):
			ch := -1
			if f := bytes.Fields(msg); len(f) == 2 {
				if v, err := strconv.Atoi(string(f[1])); err == nil && v >= -1 && v < u.srv.nch {
					ch = v
				}
			}
			u.join(from, ch)
		case bytes.Equal(msg, []byte("DSIPING")):
			u.refresh(from)
		case bytes.Equal(msg, []byte("DSILEAVE")):
			u.leave(from)
		}
	}
}

func (u *udpEmitter) join(from net.Addr, ch int) {
	s := u.srv
	s.mu.Lock()
	_, known := u.subs[from.String()]
	u.subs[from.String()] = &udpSub{to: from, ch: ch, exp: time.Now().Add(udpLeaseTTL)}
	s.mu.Unlock()
	if !known {
		if m := s.udpMet; m != nil {
			m.ConnOpened()
		}
	}
	// Greet the subscriber with the live control frames so it can
	// bootstrap without waiting out a control cadence period.
	snap := s.ctrlSnapshot()
	u.sendBounded(func(b []byte) { _, _ = u.pc.WriteTo(b, from) }, snap)
	if m := s.udpMet; m != nil {
		s.bookEmit(m, snap)
	}
}

func (u *udpEmitter) refresh(from net.Addr) {
	u.srv.mu.Lock()
	if sub, ok := u.subs[from.String()]; ok {
		sub.exp = time.Now().Add(udpLeaseTTL)
	}
	u.srv.mu.Unlock()
}

func (u *udpEmitter) leave(from net.Addr) {
	u.srv.mu.Lock()
	_, known := u.subs[from.String()]
	delete(u.subs, from.String())
	u.srv.mu.Unlock()
	if known {
		if m := u.srv.udpMet; m != nil {
			m.ConnClosed()
		}
	}
}

// sendBounded emits each frame of the batch as its own datagram.
func (u *udpEmitter) sendBounded(send func([]byte), b slotBatch) {
	at := 0
	for _, end := range b.bounds {
		send(b.buf[at:end])
		at = end
	}
}

// sendLoop drains published flushes to every live subscriber and every
// multicast group.
func (u *udpEmitter) sendLoop(ctx context.Context) {
	for {
		var fs flushSet
		select {
		case <-ctx.Done():
			return
		case fs = <-u.q:
		}
		s := u.srv
		now := time.Now()
		s.mu.Lock()
		subs := make([]*udpSub, 0, len(u.subs))
		expired := 0
		for k, sub := range u.subs {
			if now.After(sub.exp) {
				delete(u.subs, k)
				expired++
				continue
			}
			subs = append(subs, sub)
		}
		s.mu.Unlock()
		if m := s.udpMet; m != nil {
			for i := 0; i < expired; i++ {
				m.ConnClosed()
			}
		}
		for _, b := range fs.batches {
			for _, sub := range subs {
				if sub.ch >= 0 && b.ch >= 0 && b.ch != sub.ch {
					continue
				}
				u.sendBounded(func(p []byte) { _, _ = u.pc.WriteTo(p, sub.to) }, b)
				if m := s.udpMet; m != nil {
					s.bookEmit(m, b)
				}
			}
			if u.mcast != nil && b.ch >= 0 && b.ch < len(u.mcast) {
				u.sendBounded(func(p []byte) { _, _ = u.mcast[b.ch].Write(p) }, b)
				if m := s.mcastMet; m != nil {
					s.bookEmit(m, b)
				}
			}
		}
	}
}

package netsrv

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/station"
	"dsi/internal/wire"
)

// newTestStation assembles a 3-channel split station over an httptest
// server, its pacer running flat out.
func newTestStation(t *testing.T, reg *obs.Registry) (*Server, *httptest.Server) {
	t.Helper()
	ds := dataset.Uniform(200, 7, 3)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{Channels: 3, Scheduler: dsi.SchedSplit, SwitchSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	src, err := station.NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Source: src, Layout: lay, Registry: reg, CtrlEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go func() { _ = srv.Run(ctx) }()
	return srv, hs
}

// TestStreamChValidation: unknown or malformed channels in ?ch= are a
// 400, never a silent full fan-out.
func TestStreamChValidation(t *testing.T) {
	_, hs := newTestStation(t, nil)
	for _, q := range []string{
		"ch=3", "ch=-1", "ch=abc", "ch=1,3", "ch=1,,2", "ch=0&ch=9",
	} {
		for _, ep := range []string{"/v1/stream", "/v1/sse"} {
			resp, err := http.Get(hs.URL + ep + "?" + q)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s?%s: status %d, want 400", ep, q, resp.StatusCode)
			}
		}
	}
}

// readFrames reads from the stream until n data frames arrived (or the
// deadline), returning them.
func readFrames(t *testing.T, body io.Reader, n int) []wire.NetFrame {
	t.Helper()
	var frames []wire.NetFrame
	buf := make([]byte, 0, 1<<16)
	chunk := make([]byte, 4096)
	deadline := time.Now().Add(5 * time.Second)
	for len(frames) < n && time.Now().Before(deadline) {
		c, err := body.Read(chunk)
		if c > 0 {
			buf = append(buf, chunk[:c]...)
			for {
				f, used, err := wire.DecodeNetFrame(buf)
				if err != nil {
					break
				}
				buf = buf[used:]
				if f.Kind == wire.NetData {
					frames = append(frames, f)
				}
			}
		}
		if err != nil {
			break
		}
	}
	return frames
}

// TestStreamChSubset: a multi-channel ?ch= list delivers exactly the
// subscribed channels and books a subset subscription.
func TestStreamChSubset(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs := newTestStation(t, reg)

	resp, err := http.Get(hs.URL + "/v1/stream?ch=0,2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	frames := readFrames(t, resp.Body, 200)
	if len(frames) < 200 {
		t.Fatalf("stream delivered only %d data frames", len(frames))
	}
	seen := map[uint16]int{}
	for _, f := range frames {
		seen[f.Ch]++
	}
	if seen[1] != 0 {
		t.Fatalf("unsubscribed channel 1 leaked %d frames", seen[1])
	}
	if seen[0] == 0 || seen[2] == 0 {
		t.Fatalf("subscribed channels missing: %v", seen)
	}

	rec := httptest.NewRecorder()
	obs.NewMux(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(rec.Body.String(), `station_net_subset_subscriptions_total{transport="http"} 1`) {
		t.Fatal("subset subscription not booked in station_net_* metrics")
	}
}

// TestStreamChFullList: listing every channel is the full fan-out, not
// a subset.
func TestStreamChFullList(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs := newTestStation(t, reg)
	resp, err := http.Get(hs.URL + "/v1/stream?ch=0,1,2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	frames := readFrames(t, resp.Body, 200)
	seen := map[uint16]int{}
	for _, f := range frames {
		seen[f.Ch]++
	}
	for ch := uint16(0); ch < 3; ch++ {
		if seen[ch] == 0 {
			t.Fatalf("channel %d missing from the full list subscription: %v", ch, seen)
		}
	}
	rec := httptest.NewRecorder()
	obs.NewMux(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if strings.Contains(rec.Body.String(), `station_net_subset_subscriptions_total{transport="http"} 1`) {
		t.Fatal("full channel list booked as a subset subscription")
	}
}

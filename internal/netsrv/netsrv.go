// Package netsrv is the transmit side of the broadcast station as a
// network service: it walks a station.PacketSource on a paced absolute
// slot clock and emits every packet as a position-stamped net frame
// (wire.NetFrame) over real transports — HTTP chunked streams (and an
// SSE variant) for firewall-friendly reliable delivery, UDP unicast
// with a datagram subscribe protocol, and UDP multicast groups (one
// group per broadcast channel) for the true shared-medium metaphor.
//
// Invariants the receiving side (internal/netrecv) relies on:
//
//   - The absolute slot clock is global across channels and never goes
//     backwards: at slot abs, every channel's packet for abs is emitted
//     before any packet for abs+1. Receivers therefore treat the
//     stream's high-water mark as the live clock.
//   - One UDP datagram carries exactly one frame, so transport loss is
//     slot-granular — the loss model the FEC framing was built for.
//     HTTP streams concatenate frames; TCP makes them lossless but a
//     severed stream loses the gap between disconnect and reconnect.
//   - The versioned shard directory and FEC descriptor ride in-band:
//     at the head of every new subscription and every CtrlEvery slots
//     thereafter, each channel's stream carries NetDir/NetFECDesc
//     control frames sampled from the source at the emission slot.
//     A receiver that tunes in stale or reconnects across a seam swap
//     learns the bump from these frames alone.
//   - The emitted bytes are exactly what the in-process PacketSource
//     serves: a loss-free network link is bit-identical to reading the
//     source directly (regression-enforced in netrecv's tests).
//
// The server never blocks the slot clock on a slow consumer (except in
// the test-only Block mode): HTTP subscribers that cannot drain their
// batch queue lose whole batches (counted), exactly like a radio that
// drifted off frequency.
package netsrv

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/station"
	"dsi/internal/wire"
)

// Config assembles a network station over a packet source.
type Config struct {
	// Source is the broadcast being served; it may additionally
	// implement station.FECSource (coded stations) and expose
	// Layout()/Version() (the Rebroadcaster) for live meta sampling.
	Source station.PacketSource
	// Layout is the channel layout the source transmits (its initial
	// layout for a Rebroadcaster). It may be nil when Source exposes
	// Channels() int — a daemon serving an mmap'd wire-cycle image
	// (diskstore.ImageSource) has no in-memory layout at all.
	Layout *dsi.Layout
	// Meta is the catalog document served at /v1/meta; the live fields
	// (Version, FECDesc, Now, SlotsPerSec, CtrlEvery, UDP, Multicast)
	// are overwritten at serving time.
	Meta wire.StationMeta
	// SlotsPerSec paces the slot clock; <= 0 streams flat out (tests).
	SlotsPerSec int
	// CtrlEvery is the control-frame cadence in slots (default 256).
	CtrlEvery int
	// Registry, when set, registers the station_net_* families and
	// mounts /metrics + /debug/pprof on the handler.
	Registry *obs.Registry
	// Tick, when set, runs once per flush with the next slot to be
	// emitted — the hook a daemon uses to drive Rebroadcaster commits.
	Tick func(abs int64)
	// Block makes publishing block on slow subscribers instead of
	// dropping batches: lossless end-to-end delivery for regression
	// tests. Never enable it on a real daemon — one stuck client
	// would stall the broadcast for everyone.
	Block bool
}

// Server is a running network station: one pacer goroutine emitting
// the slot clock, plus per-subscriber writer goroutines.
type Server struct {
	cfg  Config
	src  station.PacketSource
	fsrc station.FECSource // nil for uncoded sources
	lay  *dsi.Layout
	nch  int
	ctrl int

	httpMet  *obs.NetStationMetrics
	udpMet   *obs.NetStationMetrics
	mcastMet *obs.NetStationMetrics

	abs atomic.Int64

	mu    sync.Mutex
	conns map[*streamConn]struct{}

	udp *udpEmitter // nil until ServeUDP

	mcastAddrs []string // advertised base, set by EnableMulticast
}

// slotBatch is one flush's frames for one channel: concatenated
// encoded frames plus the end offset of each (for datagram emission,
// which sends exactly one frame per datagram) and the frame counts for
// the emission metrics.
type slotBatch struct {
	ch     int
	buf    []byte
	bounds []int
	frames int // data frames in buf
	ctrl   int // control frames in buf
}

// flushSet is everything one pacer flush emitted, shared read-only by
// every subscriber writer.
type flushSet struct {
	batches []slotBatch
}

// New assembles a server over the source. The layout must match the
// source's channel geometry; without one the source itself must report
// its channel count.
func New(cfg Config) (*Server, error) {
	if cfg.Source == nil {
		return nil, fmt.Errorf("netsrv: source is required")
	}
	nch := 0
	if cfg.Layout != nil {
		nch = cfg.Layout.Channels()
	} else if c, ok := cfg.Source.(interface{ Channels() int }); ok {
		nch = c.Channels()
	} else {
		return nil, fmt.Errorf("netsrv: layout is required (source does not expose its channel count)")
	}
	if cfg.CtrlEvery <= 0 {
		cfg.CtrlEvery = 256
	}
	s := &Server{
		cfg:   cfg,
		src:   cfg.Source,
		lay:   cfg.Layout,
		nch:   nch,
		ctrl:  cfg.CtrlEvery,
		conns: make(map[*streamConn]struct{}),
	}
	if f, ok := cfg.Source.(station.FECSource); ok {
		s.fsrc = f
	}
	s.httpMet = obs.NewNetStationMetrics(cfg.Registry, "http", s.nch)
	return s, nil
}

// Now returns the absolute slot the pacer will emit next — the live
// edge of the broadcast.
func (s *Server) Now() int64 { return s.abs.Load() }

func (s *Server) hasConns() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns) > 0
}

// Run drives the slot clock until the context is cancelled. It never
// returns another error: transport failures affect individual
// subscribers, not the broadcast.
func (s *Server) Run(ctx context.Context) error {
	rate := s.cfg.SlotsPerSec
	batchSlots := 64
	var tick *time.Ticker
	if rate > 0 {
		batchSlots = rate / 200
		if batchSlots < 1 {
			batchSlots = 1
		}
		if batchSlots > 4096 {
			batchSlots = 4096
		}
		tick = time.NewTicker(time.Duration(batchSlots) * time.Second / time.Duration(rate))
		defer tick.Stop()
	}
	for {
		select {
		case <-ctx.Done():
			return nil
		default:
		}
		// A lossless station without subscribers must not burn the
		// clock: the whole point of Block mode is that every emitted
		// slot is consumed exactly once.
		for s.cfg.Block && !s.hasConns() {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(time.Millisecond):
			}
		}
		if s.cfg.Tick != nil {
			s.cfg.Tick(s.abs.Load())
		}
		fs := s.buildFlush(batchSlots)
		s.publish(ctx, fs)
		if tick != nil {
			select {
			case <-ctx.Done():
				return nil
			case <-tick.C:
			}
		}
	}
}

// buildFlush encodes the next batchSlots slots of every channel,
// splicing control frames in at the cadence boundaries, and advances
// the published clock.
func (s *Server) buildFlush(batchSlots int) flushSet {
	fs := flushSet{batches: make([]slotBatch, s.nch)}
	for ch := range fs.batches {
		fs.batches[ch].ch = ch
	}
	abs := s.abs.Load()
	for i := 0; i < batchSlots; i++ {
		if abs%int64(s.ctrl) == 0 {
			s.appendCtrl(&fs, abs)
		}
		for ch := 0; ch < s.nch; ch++ {
			pkt, ver := s.src.PacketAt(ch, abs)
			b := &fs.batches[ch]
			buf, err := wire.AppendNetFrame(b.buf, wire.NetFrame{
				Kind: wire.NetData, Flags: pkt.Flags, Ch: uint16(ch),
				Slot: pkt.Slot, Ver: ver, Abs: abs, Payload: pkt.Payload,
			})
			if err != nil {
				// Source payloads are bounded by the packet capacity;
				// an encoding failure is a programming error.
				panic(fmt.Sprintf("netsrv: slot %d channel %d: %v", abs, ch, err))
			}
			b.buf = buf
			b.bounds = append(b.bounds, len(buf))
			b.frames++
		}
		abs++
		s.abs.Store(abs)
	}
	return fs
}

// appendCtrl appends the directory and FEC-descriptor control frames
// (as on air at abs) to every channel's batch, so any single-channel
// subscription still carries the full control stream.
func (s *Server) appendCtrl(fs *flushSet, abs int64) {
	dir, dver := s.src.DirectoryAt(abs)
	var desc []byte
	var fver uint32
	if s.fsrc != nil {
		desc, fver = s.fsrc.FECDescAt(abs)
	}
	for ch := range fs.batches {
		appendCtrlFrames(&fs.batches[ch], abs, dir, dver, desc, fver)
	}
}

// appendCtrlFrames appends the control frames for one stream: the
// versioned directory (multi-channel broadcasts) and the FEC
// descriptor (coded broadcasts). Each control frame gets its own
// datagram bound.
func appendCtrlFrames(b *slotBatch, abs int64, dir []byte, dver uint32, desc []byte, fver uint32) {
	if dir != nil {
		if buf, err := wire.AppendNetFrame(b.buf, wire.NetFrame{Kind: wire.NetDir, Ver: dver, Abs: abs, Payload: dir}); err == nil {
			b.buf = buf
			b.bounds = append(b.bounds, len(buf))
			b.ctrl++
		}
	}
	if desc != nil {
		if buf, err := wire.AppendNetFrame(b.buf, wire.NetFrame{Kind: wire.NetFECDesc, Ver: fver, Abs: abs, Payload: desc}); err == nil {
			b.buf = buf
			b.bounds = append(b.bounds, len(buf))
			b.ctrl++
		}
	}
}

// ctrlSnapshot encodes the current control frames alone — what a new
// subscription receives before its first data frame, so receivers can
// bootstrap FEC validation and stale catalogs without waiting a
// cadence period.
func (s *Server) ctrlSnapshot() slotBatch {
	abs := s.abs.Load()
	dir, dver := s.src.DirectoryAt(abs)
	var desc []byte
	var fver uint32
	if s.fsrc != nil {
		desc, fver = s.fsrc.FECDescAt(abs)
	}
	b := slotBatch{ch: -1}
	appendCtrlFrames(&b, abs, dir, dver, desc, fver)
	return b
}

// publish hands the flush to every subscriber: HTTP batch queues
// (dropping on lag unless Block), UDP datagrams, multicast groups.
func (s *Server) publish(ctx context.Context, fs flushSet) {
	s.mu.Lock()
	conns := make([]*streamConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		if s.cfg.Block {
			select {
			case c.q <- fs:
			case <-ctx.Done():
				return
			case <-c.done:
			}
			continue
		}
		select {
		case c.q <- fs:
		default:
			s.httpMet.Drops.Inc()
		}
	}
	if s.udp != nil {
		s.udp.publish(fs)
	}
}

// meta builds the live catalog document.
func (s *Server) meta() wire.StationMeta {
	m := s.cfg.Meta
	abs := s.abs.Load()
	m.Now = abs
	m.SlotsPerSec = s.cfg.SlotsPerSec
	m.CtrlEvery = s.ctrl
	_, m.Version = s.src.DirectoryAt(abs)
	if s.fsrc != nil {
		m.FECDesc, _ = s.fsrc.FECDescAt(abs)
	}
	// A rebroadcasting source re-cuts its shard bounds at seam swaps;
	// sample the live layout so late-joining clients build the catalog
	// matching the version above.
	if l, ok := s.src.(interface{ Layout() *dsi.Layout }); ok {
		lay := l.Layout()
		m.ShardBounds = lay.ShardBounds()
		m.Channels = lay.Channels()
	}
	if s.udp != nil {
		m.UDP = s.udp.addr
	}
	if len(s.mcastAddrs) > 0 {
		m.Multicast = s.mcastAddrs[0]
	}
	return m
}

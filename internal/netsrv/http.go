// The HTTP transports: /v1/meta serves the catalog document, /v1/stream
// serves the raw net-frame byte stream over chunked transfer encoding,
// and /v1/sse wraps the same bytes in Server-Sent Events (base64 data
// lines) for clients behind proxies that mangle binary streams. When a
// registry is configured the handler also carries /metrics and
// /debug/pprof.

package netsrv

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"dsi/internal/obs"
)

// streamQueueDepth bounds how many flushes a lagging subscriber may
// fall behind before whole batches are dropped (or, in Block mode, the
// broadcast stalls).
const streamQueueDepth = 32

// streamConn is one live HTTP subscription: a bounded queue of flushes
// the pacer publishes into and the writer goroutine drains.
type streamConn struct {
	q     chan flushSet
	done  chan struct{}
	chans []bool // per-channel subscription mask; nil subscribes to every channel
}

// wants reports whether the subscription carries batches of channel
// ch. Control snapshots (ch < 0) go to everyone.
func (c *streamConn) wants(ch int) bool {
	return ch < 0 || c.chans == nil || c.chans[ch]
}

// Handler returns the station's HTTP surface.
func (s *Server) Handler() http.Handler {
	var mux *http.ServeMux
	if s.cfg.Registry != nil {
		mux = obs.NewMux(s.cfg.Registry)
	} else {
		mux = http.NewServeMux()
	}
	mux.HandleFunc("/v1/meta", s.handleMeta)
	mux.HandleFunc("/v1/stream", s.handleStream)
	mux.HandleFunc("/v1/sse", s.handleSSE)
	return mux
}

func (s *Server) handleMeta(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(s.meta())
}

// parseCh reads the optional ?ch= selector: a comma-separated channel
// list (repeatable as multiple ch= parameters), or every channel when
// absent. Every listed channel is validated against the broadcast's
// channel count — an unknown channel is a client error, never a
// silent full fan-out. The returned mask is nil for the full set.
func (s *Server) parseCh(r *http.Request) ([]bool, error) {
	vals := r.URL.Query()["ch"]
	if len(vals) == 0 {
		return nil, nil
	}
	mask := make([]bool, s.nch)
	picked := 0
	for _, v := range vals {
		for _, part := range strings.Split(v, ",") {
			ch, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("bad channel %q in ch=%q", part, v)
			}
			if ch < 0 || ch >= s.nch {
				return nil, fmt.Errorf("channel %d out of range [0,%d)", ch, s.nch)
			}
			if !mask[ch] {
				mask[ch] = true
				picked++
			}
		}
	}
	if picked == s.nch {
		return nil, nil // the full set; no filtering needed
	}
	return mask, nil
}

// subscribe registers a stream connection with the pacer and returns
// its unregister func. The initial control snapshot is queued as the
// first flush so the subscription opens with the live directory and
// FEC descriptor.
func (s *Server) subscribe(chans []bool) (*streamConn, func()) {
	c := &streamConn{
		q:     make(chan flushSet, streamQueueDepth),
		done:  make(chan struct{}),
		chans: chans,
	}
	c.q <- flushSet{batches: []slotBatch{s.ctrlSnapshot()}}
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	s.httpMet.ConnOpened()
	if chans != nil {
		s.httpMet.SubsetSubscribed()
	}
	return c, func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		close(c.done)
		s.httpMet.ConnClosed()
	}
}

// emit writes one batch to the subscriber and books the emission
// metrics. A ch of -1 (the control snapshot) books bytes to channel 0.
func (s *Server) emit(w http.ResponseWriter, b slotBatch) error {
	if len(b.buf) == 0 {
		return nil
	}
	if _, err := w.Write(b.buf); err != nil {
		return err
	}
	s.bookEmit(s.httpMet, b)
	return nil
}

func (s *Server) bookEmit(met *obs.NetStationMetrics, b slotBatch) {
	if met == nil {
		return
	}
	ch := b.ch
	if ch < 0 {
		ch = 0
	}
	met.BytesEmitted(ch, len(b.buf))
	met.Frames.Add(int64(b.frames))
	met.CtrlFrames.Add(int64(b.ctrl))
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	ch, err := s.parseCh(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	c, unsub := s.subscribe(ch)
	defer unsub()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	for {
		select {
		case <-r.Context().Done():
			return
		case fs := <-c.q:
			for _, b := range fs.batches {
				if !c.wants(b.ch) {
					continue
				}
				if err := s.emit(w, b); err != nil {
					return
				}
			}
			fl.Flush()
		}
	}
}

func (s *Server) handleSSE(w http.ResponseWriter, r *http.Request) {
	ch, err := s.parseCh(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	c, unsub := s.subscribe(ch)
	defer unsub()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	for {
		select {
		case <-r.Context().Done():
			return
		case fs := <-c.q:
			for _, b := range fs.batches {
				if !c.wants(b.ch) {
					continue
				}
				if len(b.buf) == 0 {
					continue
				}
				if _, err := fmt.Fprintf(w, "event: frames\ndata: %s\n\n",
					base64.StdEncoding.EncodeToString(b.buf)); err != nil {
					return
				}
				s.bookEmit(s.httpMet, b)
			}
			fl.Flush()
		}
	}
}

// Package bptree implements a bulk-loaded B+-tree over Hilbert-curve
// values. It is the index structure underlying the Hilbert Curve Index
// (HCI) baseline of Zheng, Lee & Lee ("Spatial index on air",
// PerCom 2003), which the paper compares DSI against.
//
// Nodes are packed so that one node fits in one broadcast packet: the
// fanout is floor(capacity / 18) with 16 bytes per key (an HC value) and
// 2 bytes per pointer, the sizes from the paper's evaluation section.
// The tree is static (data is known a priori in a broadcast system), so
// it is built bottom-up from the sorted key list with every node full
// except the last of each level.
package bptree

import (
	"fmt"
	"sort"

	"dsi/internal/broadcast"
)

// EntryBytes is the size of one node entry: a key plus a pointer.
const EntryBytes = broadcast.HCBytes + broadcast.PtrBytes

// FanoutFor returns the node fanout for the given packet capacity, or 0
// when a packet cannot hold even one entry. When only one entry fits,
// nodes span two packets with the minimum useful fanout of two.
func FanoutFor(capacity int) int {
	if capacity < EntryBytes {
		return 0
	}
	f := capacity / EntryBytes
	if f < 2 {
		f = 2
	}
	return f
}

// Node is one B+-tree node. Leaves (Level 0) map keys to values (object
// IDs); internal nodes map separator keys to child node IDs. Keys[i] is
// the smallest key in the subtree of Children[i] (or exactly the key of
// Vals[i] in a leaf).
type Node struct {
	ID       int
	Level    int
	Keys     []uint64
	Children []int // internal nodes: child node IDs
	Vals     []int // leaves: object IDs
}

// MinKey returns the smallest key under the node.
func (n *Node) MinKey() uint64 { return n.Keys[0] }

// Tree is a bulk-loaded B+-tree. Node IDs are dense: 0..NodeCount()-1,
// assigned level by level from the leaves up, left to right.
type Tree struct {
	Fanout int
	// Levels[0] is the leaf level; Levels[len-1] holds only the root.
	Levels [][]*Node
	nodes  []*Node // by ID
}

// Build constructs the tree from keys sorted ascending with vals[i]
// associated to keys[i]. It returns an error when the fanout is too
// small or the input is invalid.
func Build(keys []uint64, vals []int, fanout int) (*Tree, error) {
	if fanout < 2 {
		return nil, fmt.Errorf("bptree: fanout %d < 2", fanout)
	}
	if len(keys) == 0 {
		return nil, fmt.Errorf("bptree: no keys")
	}
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("bptree: %d keys but %d vals", len(keys), len(vals))
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		return nil, fmt.Errorf("bptree: keys not sorted")
	}
	t := &Tree{Fanout: fanout}

	// Leaf level.
	var leaves []*Node
	for at := 0; at < len(keys); at += fanout {
		end := at + fanout
		if end > len(keys) {
			end = len(keys)
		}
		n := &Node{Level: 0, Keys: append([]uint64(nil), keys[at:end]...),
			Vals: append([]int(nil), vals[at:end]...)}
		leaves = append(leaves, n)
	}
	t.Levels = append(t.Levels, leaves)

	// Internal levels until a single root remains.
	for len(t.Levels[len(t.Levels)-1]) > 1 {
		below := t.Levels[len(t.Levels)-1]
		var level []*Node
		for at := 0; at < len(below); at += fanout {
			end := at + fanout
			if end > len(below) {
				end = len(below)
			}
			n := &Node{Level: len(t.Levels)}
			for _, child := range below[at:end] {
				n.Keys = append(n.Keys, child.MinKey())
				n.Children = append(n.Children, 0) // IDs assigned below
			}
			level = append(level, n)
		}
		t.Levels = append(t.Levels, level)
	}

	// Assign dense IDs (leaves first) and wire child pointers.
	for _, level := range t.Levels {
		for _, n := range level {
			n.ID = len(t.nodes)
			t.nodes = append(t.nodes, n)
		}
	}
	for li := 1; li < len(t.Levels); li++ {
		childAt := 0
		for _, n := range t.Levels[li] {
			for i := range n.Children {
				n.Children[i] = t.Levels[li-1][childAt].ID
				childAt++
			}
		}
	}
	return t, nil
}

// BuildForCapacity builds the tree with the fanout implied by the packet
// capacity.
func BuildForCapacity(keys []uint64, vals []int, capacity int) (*Tree, error) {
	f := FanoutFor(capacity)
	if f == 0 {
		return nil, fmt.Errorf("bptree: capacity %d cannot hold a node", capacity)
	}
	return Build(keys, vals, f)
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.Levels[len(t.Levels)-1][0] }

// Height returns the number of levels (1 for a single-leaf tree).
func (t *Tree) Height() int { return len(t.Levels) }

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// Node returns the node with the given ID.
func (t *Tree) Node(id int) *Node { return t.nodes[id] }

// Lookup returns the value for key and whether it exists.
func (t *Tree) Lookup(key uint64) (int, bool) {
	n := t.Root()
	for n.Level > 0 {
		n = t.nodes[n.Children[childFor(n.Keys, key)]]
	}
	i := sort.Search(len(n.Keys), func(i int) bool { return n.Keys[i] >= key })
	if i < len(n.Keys) && n.Keys[i] == key {
		return n.Vals[i], true
	}
	return 0, false
}

// childFor returns the index of the child whose subtree may contain key:
// the last separator <= key (the first child when key precedes all).
func childFor(keys []uint64, key uint64) int {
	i := sort.Search(len(keys), func(i int) bool { return keys[i] > key }) - 1
	if i < 0 {
		i = 0
	}
	return i
}

// Range calls fn for every (key, val) with lo <= key < hi, ascending.
func (t *Tree) Range(lo, hi uint64, fn func(key uint64, val int)) {
	t.rangeNode(t.Root(), lo, hi, fn)
}

func (t *Tree) rangeNode(n *Node, lo, hi uint64, fn func(uint64, int)) {
	if n.Level == 0 {
		for i, k := range n.Keys {
			if k >= lo && k < hi {
				fn(k, n.Vals[i])
			}
		}
		return
	}
	for i, childID := range n.Children {
		childLo := n.Keys[i]
		if childLo >= hi {
			break
		}
		if i+1 < len(n.Keys) && n.Keys[i+1] <= lo {
			continue
		}
		t.rangeNode(t.nodes[childID], lo, hi, fn)
	}
}

// NodeBytes returns the payload size of the largest node.
func (t *Tree) NodeBytes() int { return t.Fanout * EntryBytes }

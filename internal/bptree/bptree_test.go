package bptree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func sortedKeys(n int, seed int64) ([]uint64, []int) {
	rng := rand.New(rand.NewSource(seed))
	set := make(map[uint64]bool, n)
	for len(set) < n {
		set[uint64(rng.Intn(n*20))] = true
	}
	keys := make([]uint64, 0, n)
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	return keys, vals
}

func TestFanoutFor(t *testing.T) {
	cases := []struct{ c, want int }{
		{64, 3}, {32, 2}, {36, 2}, {128, 7}, {512, 28}, {17, 0}, {18, 2},
	}
	for _, tc := range cases {
		if got := FanoutFor(tc.c); got != tc.want {
			t.Errorf("FanoutFor(%d) = %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	keys, vals := sortedKeys(10, 1)
	if _, err := Build(keys, vals, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
	if _, err := Build(nil, nil, 3); err == nil {
		t.Error("empty keys accepted")
	}
	if _, err := Build(keys, vals[:5], 3); err == nil {
		t.Error("mismatched vals accepted")
	}
	unsorted := []uint64{5, 3, 7}
	if _, err := Build(unsorted, []int{0, 1, 2}, 3); err == nil {
		t.Error("unsorted keys accepted")
	}
}

func TestStructureInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 3, 10, 100, 1000} {
		for _, fanout := range []int{2, 3, 7, 28} {
			keys, vals := sortedKeys(n, int64(n*fanout))
			tr, err := Build(keys, vals, fanout)
			if err != nil {
				t.Fatalf("n=%d f=%d: %v", n, fanout, err)
			}
			if len(tr.Levels[tr.Height()-1]) != 1 {
				t.Fatalf("n=%d f=%d: root level has %d nodes", n, fanout, len(tr.Levels[tr.Height()-1]))
			}
			total := 0
			for li, level := range tr.Levels {
				for _, node := range level {
					total++
					if node.Level != li {
						t.Fatalf("node level mismatch")
					}
					if len(node.Keys) > fanout {
						t.Fatalf("node overflows fanout")
					}
					if li == 0 && len(node.Keys) != len(node.Vals) {
						t.Fatalf("leaf keys/vals mismatch")
					}
					if li > 0 {
						if len(node.Keys) != len(node.Children) {
							t.Fatalf("internal keys/children mismatch")
						}
						for i, c := range node.Children {
							if tr.Node(c).MinKey() != node.Keys[i] {
								t.Fatalf("separator key is not child's min key")
							}
						}
					}
					if tr.Node(node.ID) != node {
						t.Fatalf("ID indexing broken")
					}
				}
			}
			if total != tr.NodeCount() {
				t.Fatalf("NodeCount mismatch")
			}
			// All leaf keys in order must equal the input.
			var all []uint64
			for _, leaf := range tr.Levels[0] {
				all = append(all, leaf.Keys...)
			}
			if len(all) != len(keys) {
				t.Fatalf("leaves hold %d keys, want %d", len(all), len(keys))
			}
			for i := range all {
				if all[i] != keys[i] {
					t.Fatalf("leaf key order broken at %d", i)
				}
			}
		}
	}
}

func TestLookup(t *testing.T) {
	keys, vals := sortedKeys(500, 7)
	tr, _ := Build(keys, vals, 3)
	for i, k := range keys {
		v, ok := tr.Lookup(k)
		if !ok || v != vals[i] {
			t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", k, v, ok, vals[i])
		}
	}
	// Missing keys.
	present := make(map[uint64]bool)
	for _, k := range keys {
		present[k] = true
	}
	for probe := uint64(0); probe < 200; probe++ {
		if !present[probe] {
			if _, ok := tr.Lookup(probe); ok {
				t.Fatalf("Lookup(%d) found a missing key", probe)
			}
		}
	}
	// Key below the minimum.
	if _, ok := tr.Lookup(0); ok != present[0] {
		t.Error("lookup at 0 wrong")
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	keys, vals := sortedKeys(300, 9)
	tr, _ := Build(keys, vals, 4)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100; i++ {
		lo := uint64(rng.Intn(7000))
		hi := lo + uint64(rng.Intn(2000))
		var got []uint64
		prev := uint64(0)
		first := true
		tr.Range(lo, hi, func(k uint64, v int) {
			if !first && k <= prev {
				t.Fatalf("Range not ascending")
			}
			prev, first = k, false
			got = append(got, k)
		})
		var want []uint64
		for _, k := range keys {
			if k >= lo && k < hi {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Range[%d,%d) returned %d keys, want %d", lo, hi, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("Range mismatch at %d", j)
			}
		}
	}
}

func TestRangeEmptyAndFull(t *testing.T) {
	keys, vals := sortedKeys(100, 13)
	tr, _ := Build(keys, vals, 5)
	count := 0
	tr.Range(0, ^uint64(0), func(uint64, int) { count++ })
	if count != 100 {
		t.Errorf("full range visited %d, want 100", count)
	}
	count = 0
	tr.Range(5, 5, func(uint64, int) { count++ })
	if count != 0 {
		t.Errorf("empty range visited %d", count)
	}
}

func TestLookupQuick(t *testing.T) {
	keys, vals := sortedKeys(1000, 15)
	tr, _ := Build(keys, vals, 7)
	idx := make(map[uint64]int, len(keys))
	for i, k := range keys {
		idx[k] = vals[i]
	}
	f := func(probe uint16) bool {
		k := uint64(probe)
		v, ok := tr.Lookup(k)
		want, exists := idx[k]
		return ok == exists && (!ok || v == want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeBytesFitsCapacity(t *testing.T) {
	for _, c := range []int{64, 128, 256, 512} {
		keys, vals := sortedKeys(200, 17)
		tr, err := BuildForCapacity(keys, vals, c)
		if err != nil {
			t.Fatalf("capacity %d: %v", c, err)
		}
		if tr.NodeBytes() > c {
			t.Errorf("capacity %d: node %dB overflows packet", c, tr.NodeBytes())
		}
	}
	if _, err := BuildForCapacity([]uint64{1}, []int{0}, 10); err == nil {
		t.Error("tiny capacity accepted")
	}
}

func TestSingleKeyTree(t *testing.T) {
	tr, err := Build([]uint64{42}, []int{7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 || tr.Root().Level != 0 {
		t.Errorf("single-key tree shape wrong: height %d", tr.Height())
	}
	if v, ok := tr.Lookup(42); !ok || v != 7 {
		t.Error("single-key lookup failed")
	}
}

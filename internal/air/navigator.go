package air

import (
	"container/heap"

	"dsi/internal/broadcast"
)

// task is one pending on-air visit: a node to read or an object to
// retrieve at an absolute slot. hi carries the B+-tree key upper bound
// of a node's span (unused by the R-tree).
type task struct {
	slot  int64
	isObj bool
	id    int
	hi    uint64
}

type taskHeap []task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].slot != h[j].slot {
		return h[i].slot < h[j].slot
	}
	if h[i].isObj != h[j].isObj {
		return !h[i].isObj // index packets precede data at the same slot group
	}
	return h[i].id < h[j].id
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(task)) }
func (h *taskHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// navigator serves pending node and object visits in broadcast order:
// always the earliest next occurrence first. Visits whose slot has
// passed are rescheduled to the next occurrence (next replica or next
// cycle) — the tree-index behaviour the paper contrasts DSI with.
type navigator struct {
	lay  *Layout
	tu   *broadcast.Tuner
	pq   taskHeap
	read map[int]bool // nodes received intact (client cache)
	got  map[int]bool // objects retrieved

	// expand is invoked exactly once per node after it is received (or
	// immediately for cached nodes); it schedules further visits.
	expand func(id int, hi uint64)
	// keepNode and keepObj prune scheduled visits at service time; a
	// pruned visit costs nothing. Nil means keep everything.
	keepNode func(id int, hi uint64) bool
	keepObj  func(id int) bool
}

func newNavigator(l *Layout, probeSlot int64, loss *broadcast.LossModel) *navigator {
	return &navigator{
		lay:  l,
		tu:   broadcast.NewTuner(l.Prog, probeSlot, loss),
		read: make(map[int]bool),
		got:  make(map[int]bool),
	}
}

// probe reads packets until one arrives intact, synchronizing the
// client with the broadcast (each packet carries the offset of the next
// index segment).
func (n *navigator) probe() {
	for {
		if _, ok := n.tu.Read(); ok {
			return
		}
	}
}

// scheduleNode queues a visit to node id. Nodes already received are
// expanded immediately at no cost (client cache).
func (n *navigator) scheduleNode(id int, hi uint64) {
	if n.read[id] {
		n.expand(id, hi)
		return
	}
	heap.Push(&n.pq, task{slot: n.lay.NextNode(id, n.tu.Now()), id: id, hi: hi})
}

// scheduleObj queues retrieval of object id.
func (n *navigator) scheduleObj(id int) {
	if n.got[id] {
		return
	}
	heap.Push(&n.pq, task{slot: n.lay.NextObject(id, n.tu.Now()), id: id, isObj: true})
}

// run serves the queue until it drains.
func (n *navigator) run() {
	for n.pq.Len() > 0 {
		t := heap.Pop(&n.pq).(task)
		if t.isObj {
			n.serveObj(t)
		} else {
			n.serveNode(t)
		}
	}
}

func (n *navigator) serveNode(t task) {
	if n.read[t.id] {
		return
	}
	if n.keepNode != nil && !n.keepNode(t.id, t.hi) {
		return
	}
	if t.slot < n.tu.Now() {
		// Missed while serving something else: wait for the next copy.
		heap.Push(&n.pq, task{slot: n.lay.NextNode(t.id, n.tu.Now()), id: t.id, hi: t.hi})
		return
	}
	n.tu.DozeUntil(t.slot)
	ok := true
	for p := 0; p < n.lay.NodePackets; p++ {
		if _, good := n.tu.Read(); !good {
			ok = false
		}
	}
	if !ok {
		// Lost: the only copy of this node is its next occurrence.
		heap.Push(&n.pq, task{slot: n.lay.NextNode(t.id, n.tu.Now()), id: t.id, hi: t.hi})
		return
	}
	n.read[t.id] = true
	n.expand(t.id, t.hi)
}

func (n *navigator) serveObj(t task) {
	if n.got[t.id] {
		return
	}
	if n.keepObj != nil && !n.keepObj(t.id) {
		return
	}
	if t.slot < n.tu.Now() {
		heap.Push(&n.pq, task{slot: n.lay.NextObject(t.id, n.tu.Now()), id: t.id, isObj: true})
		return
	}
	n.tu.DozeUntil(t.slot)
	ok := true
	for p := 0; p < n.lay.ObjPackets; p++ {
		if _, good := n.tu.Read(); !good {
			ok = false
		}
	}
	if !ok {
		heap.Push(&n.pq, task{slot: n.lay.NextObject(t.id, n.tu.Now()), id: t.id, isObj: true})
		return
	}
	n.got[t.id] = true
}

// retrievedIDs returns the retrieved object IDs, unsorted.
func (n *navigator) retrievedIDs() []int {
	out := make([]int, 0, len(n.got))
	for id := range n.got {
		out = append(out, id)
	}
	return out
}

package air

import (
	"math/rand"
	"sort"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

func TestLayoutStructure(t *testing.T) {
	ds := dataset.Uniform(300, 6, 1)
	for _, capacity := range []int{64, 128, 512} {
		hci, err := NewHCIBroadcast(ds, capacity, 1024)
		if err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		l := hci.Lay
		// Every object appears exactly once; every node at least once.
		objSeen := make(map[int]int)
		nodeStarts := make(map[int]int)
		for i := 0; i < l.Prog.Len(); i++ {
			s := l.Prog.At(i)
			if s.Kind == broadcast.KindData && s.Part == 0 {
				objSeen[int(s.Owner)]++
			}
			if s.Kind == broadcast.KindIndex && s.Part == 0 {
				nodeStarts[int(s.Owner)]++
			}
		}
		if len(objSeen) != ds.N() {
			t.Fatalf("capacity %d: %d distinct objects, want %d", capacity, len(objSeen), ds.N())
		}
		for id, c := range objSeen {
			if c != 1 {
				t.Fatalf("object %d broadcast %d times", id, c)
			}
		}
		if len(nodeStarts) != hci.Tree.NodeCount() {
			t.Fatalf("capacity %d: %d nodes on air, want %d", capacity, len(nodeStarts), hci.Tree.NodeCount())
		}
		// Replicated levels (above the cut) appear NumSegments-proportional
		// times; the root appears once per segment.
		if got := nodeStarts[hci.Tree.Root().ID]; hci.Tree.Height() > 1 && got != l.NumSegments {
			if l.CutLevel == hci.Tree.Height()-1 {
				if got != 1 {
					t.Fatalf("root appears %d times with cut at root", got)
				}
			} else {
				t.Fatalf("root appears %d times, want %d segments", got, l.NumSegments)
			}
		}
		// Occurrence map must match the program.
		for id, want := range nodeStarts {
			if got := len(l.NodeOccurrences(id)); got != want {
				t.Fatalf("node %d: occurrence map has %d, program has %d", id, got, want)
			}
		}
	}
}

func TestNextNodeAndObject(t *testing.T) {
	ds := dataset.Uniform(100, 6, 3)
	hci, err := NewHCIBroadcast(ds, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	l := hci.Lay
	root := hci.Tree.Root().ID
	occ := l.NodeOccurrences(root)
	for _, now := range []int64{0, 5, int64(l.Prog.Len() - 1), int64(l.Prog.Len()) + 7} {
		next := l.NextNode(root, now)
		if next < now {
			t.Fatalf("NextNode went backwards: %d < %d", next, now)
		}
		pos := int(next % int64(l.Prog.Len()))
		found := false
		for _, o := range occ {
			if o == pos {
				found = true
			}
		}
		if !found {
			t.Fatalf("NextNode landed on %d, not an occurrence", pos)
		}
	}
	for id := 0; id < 10; id++ {
		next := l.NextObject(id, 42)
		if next < 42 {
			t.Fatal("NextObject went backwards")
		}
		s := l.Prog.At(int(next % int64(l.Prog.Len())))
		if s.Kind != broadcast.KindData || int(s.Owner) != id || s.Part != 0 {
			t.Fatalf("NextObject(%d) landed on %+v", id, s)
		}
	}
}

func TestBuildLayoutErrors(t *testing.T) {
	ds := dataset.Uniform(50, 6, 5)
	if _, err := NewRTreeBroadcast(ds, 32, 1024); err == nil {
		t.Error("R-tree at 32 bytes must fail")
	}
	hci, _ := NewHCIBroadcast(ds, 64, 1024)
	if _, err := BuildLayout(bpView{hci.Tree}, LayoutConfig{Capacity: 4}); err == nil {
		t.Error("tiny capacity accepted")
	}
	if _, err := BuildLayout(bpView{hci.Tree}, LayoutConfig{Capacity: 64, CutLevel: 99}); err == nil {
		t.Error("cut level out of range accepted")
	}
}

func TestRTreeWindowMatchesBruteForce(t *testing.T) {
	ds := dataset.Uniform(400, 6, 7)
	for _, capacity := range []int{64, 128, 512} {
		b, err := NewRTreeBroadcast(ds, capacity, 1024)
		if err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		rng := rand.New(rand.NewSource(int64(capacity)))
		for i := 0; i < 10; i++ {
			w := spatial.ClampedWindow(uint32(rng.Intn(64)), uint32(rng.Intn(64)),
				uint32(rng.Intn(20)+1), 64)
			got, st := b.Window(w, rng.Int63n(int64(b.Lay.Prog.Len())), nil)
			want := ds.WindowBrute(w)
			if !equalInts(got, want) {
				t.Fatalf("capacity %d window %v: got %d objs, want %d", capacity, w, len(got), len(want))
			}
			if st.TuningPackets > st.LatencyPackets || st.LatencyPackets <= 0 {
				t.Fatalf("bad stats %+v", st)
			}
		}
	}
}

func TestHCIWindowMatchesBruteForce(t *testing.T) {
	ds := dataset.Uniform(400, 6, 9)
	for _, capacity := range []int{64, 128, 512} {
		b, err := NewHCIBroadcast(ds, capacity, 1024)
		if err != nil {
			t.Fatalf("capacity %d: %v", capacity, err)
		}
		rng := rand.New(rand.NewSource(int64(capacity) + 1))
		for i := 0; i < 10; i++ {
			w := spatial.ClampedWindow(uint32(rng.Intn(64)), uint32(rng.Intn(64)),
				uint32(rng.Intn(20)+1), 64)
			got, st := b.Window(w, rng.Int63n(int64(b.Lay.Prog.Len())), nil)
			want := ds.WindowBrute(w)
			if !equalInts(got, want) {
				t.Fatalf("capacity %d window %v: got %d objs, want %d", capacity, w, len(got), len(want))
			}
			if st.TuningPackets > st.LatencyPackets {
				t.Fatalf("bad stats %+v", st)
			}
		}
	}
}

func knnDists(ds *dataset.Dataset, q spatial.Point, ids []int) []float64 {
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = ds.ByID(id).P.Dist(q)
	}
	sort.Float64s(out)
	return out
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRTreeKNNMatchesBruteForce(t *testing.T) {
	ds := dataset.Uniform(400, 6, 11)
	b, err := NewRTreeBroadcast(ds, 128, 1024)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 15; i++ {
		q := spatial.Point{X: uint32(rng.Intn(64)), Y: uint32(rng.Intn(64))}
		k := rng.Intn(15) + 1
		got, _ := b.KNN(q, k, rng.Int63n(int64(b.Lay.Prog.Len())), nil)
		if len(got) != k {
			t.Fatalf("got %d ids, want %d", len(got), k)
		}
		want, _ := ds.KNNBrute(q, k)
		if !equalFloats(knnDists(ds, q, got), knnDists(ds, q, want)) {
			t.Fatalf("kNN mismatch q=%v k=%d", q, k)
		}
	}
}

func TestHCIKNNMatchesBruteForce(t *testing.T) {
	ds := dataset.Uniform(400, 6, 15)
	for _, capacity := range []int{64, 256} {
		b, err := NewHCIBroadcast(ds, capacity, 1024)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 15; i++ {
			q := spatial.Point{X: uint32(rng.Intn(64)), Y: uint32(rng.Intn(64))}
			k := rng.Intn(15) + 1
			got, _ := b.KNN(q, k, rng.Int63n(int64(b.Lay.Prog.Len())), nil)
			if len(got) != k {
				t.Fatalf("got %d ids, want %d", len(got), k)
			}
			want, _ := ds.KNNBrute(q, k)
			if !equalFloats(knnDists(ds, q, got), knnDists(ds, q, want)) {
				t.Fatalf("capacity %d: kNN mismatch q=%v k=%d", capacity, q, k)
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	ds := dataset.Uniform(30, 5, 19)
	rt, _ := NewRTreeBroadcast(ds, 128, 1024)
	hc, _ := NewHCIBroadcast(ds, 64, 1024)
	if got, _ := rt.KNN(spatial.Point{X: 1, Y: 1}, 0, 0, nil); got != nil {
		t.Error("rtree k=0 must return nil")
	}
	if got, _ := hc.KNN(spatial.Point{X: 1, Y: 1}, 0, 0, nil); got != nil {
		t.Error("hci k=0 must return nil")
	}
	if got, _ := rt.KNN(spatial.Point{X: 1, Y: 1}, 100, 5, nil); len(got) != 30 {
		t.Errorf("rtree k>n returned %d", len(got))
	}
	if got, _ := hc.KNN(spatial.Point{X: 1, Y: 1}, 100, 5, nil); len(got) != 30 {
		t.Errorf("hci k>n returned %d", len(got))
	}
}

func TestCorrectUnderLoss(t *testing.T) {
	ds := dataset.Uniform(200, 6, 21)
	rt, _ := NewRTreeBroadcast(ds, 128, 1024)
	hc, _ := NewHCIBroadcast(ds, 64, 1024)
	rng := rand.New(rand.NewSource(23))
	for _, theta := range []float64{0.2, 0.5} {
		for i := 0; i < 5; i++ {
			w := spatial.ClampedWindow(uint32(rng.Intn(64)), uint32(rng.Intn(64)), 14, 64)
			want := ds.WindowBrute(w)
			loss := broadcast.NewLossModel(theta, rng.Int63())
			got, _ := rt.Window(w, rng.Int63n(int64(rt.Lay.Prog.Len())), loss)
			if !equalInts(got, want) {
				t.Fatalf("rtree window under loss mismatch")
			}
			loss = broadcast.NewLossModel(theta, rng.Int63())
			got, _ = hc.Window(w, rng.Int63n(int64(hc.Lay.Prog.Len())), loss)
			if !equalInts(got, want) {
				t.Fatalf("hci window under loss mismatch")
			}

			q := spatial.Point{X: uint32(rng.Intn(64)), Y: uint32(rng.Intn(64))}
			wantK, _ := ds.KNNBrute(q, 5)
			wd := knnDists(ds, q, wantK)
			loss = broadcast.NewLossModel(theta, rng.Int63())
			gotK, _ := rt.KNN(q, 5, rng.Int63n(int64(rt.Lay.Prog.Len())), loss)
			if !equalFloats(knnDists(ds, q, gotK), wd) {
				t.Fatalf("rtree kNN under loss mismatch")
			}
			loss = broadcast.NewLossModel(theta, rng.Int63())
			gotK, _ = hc.KNN(q, 5, rng.Int63n(int64(hc.Lay.Prog.Len())), loss)
			if !equalFloats(knnDists(ds, q, gotK), wd) {
				t.Fatalf("hci kNN under loss mismatch")
			}
		}
	}
}

func TestLossIncursLargerPenaltyThanErrorFree(t *testing.T) {
	// Tree indexes must pay when index packets are lost (they wait for
	// the next occurrence); average latency at theta=0.5 must exceed
	// the error-free average.
	ds := dataset.Uniform(300, 6, 25)
	hc, _ := NewHCIBroadcast(ds, 64, 1024)
	w := spatial.Rect{MinX: 10, MinY: 10, MaxX: 30, MaxY: 30}
	var base, lossy float64
	rng := rand.New(rand.NewSource(27))
	const trials = 30
	for i := 0; i < trials; i++ {
		probe := rng.Int63n(int64(hc.Lay.Prog.Len()))
		seed := rng.Int63()
		_, st := hc.Window(w, probe, nil)
		base += float64(st.LatencyPackets)
		_, st = hc.Window(w, probe, broadcast.NewLossModel(0.5, seed))
		lossy += float64(st.LatencyPackets)
	}
	if lossy <= base {
		t.Errorf("loss did not increase tree-index latency: %v <= %v", lossy/trials, base/trials)
	}
}

func TestAutoCutPicksInteriorLevel(t *testing.T) {
	// For a reasonably tall tree the best cut is neither pure (1,1)
	// (cut at root) in most cases; at minimum the layout must be valid
	// and have >= 1 segment.
	ds := dataset.Uniform(1000, 7, 29)
	hc, err := NewHCIBroadcast(ds, 64, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if hc.Lay.NumSegments < 1 {
		t.Fatal("no segments")
	}
	if hc.Lay.CutLevel < 0 || hc.Lay.CutLevel >= hc.Tree.Height() {
		t.Fatalf("cut level %d out of range", hc.Lay.CutLevel)
	}
	if hc.Tree.Height() >= 4 && hc.Lay.NumSegments == 1 {
		t.Error("auto cut chose no replication for a tall tree")
	}
}

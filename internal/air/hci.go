package air

import (
	"math"
	"sort"

	"dsi/internal/bptree"
	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/hilbert"
	"dsi/internal/spatial"
)

// HCIBroadcast is the Hilbert Curve Index baseline (Zheng, Lee & Lee,
// PerCom 2003): data objects broadcast in ascending HC order, indexed by
// a B+-tree over HC values, laid out with the distributed indexing
// scheme. Window queries decompose the window into HC ranges and probe
// the tree for each; kNN queries first descend toward the query point's
// HC value to bound the search space, then range-probe the bound.
type HCIBroadcast struct {
	DS   *dataset.Dataset
	Tree *bptree.Tree
	Lay  *Layout
}

// bpView adapts *bptree.Tree to the layout's TreeView.
type bpView struct{ t *bptree.Tree }

func (v bpView) RootID() int              { return v.t.Root().ID }
func (v bpView) Height() int              { return v.t.Height() }
func (v bpView) Level(id int) int         { return v.t.Node(id).Level }
func (v bpView) Children(id int) []int    { return v.t.Node(id).Children }
func (v bpView) LeafObjects(id int) []int { return v.t.Node(id).Vals }
func (v bpView) NodeBytes() int           { return v.t.NodeBytes() }

// NewHCIBroadcast builds the B+-tree over the dataset's HC values and
// its broadcast layout.
func NewHCIBroadcast(ds *dataset.Dataset, capacity, objectBytes int) (*HCIBroadcast, error) {
	// The key extraction is capacity-independent; the dataset caches it
	// across the capacities a figure sweeps.
	keys, vals := ds.HCKeys()
	t, err := bptree.BuildForCapacity(keys, vals, capacity)
	if err != nil {
		return nil, err
	}
	lay, err := BuildLayout(bpView{t}, LayoutConfig{
		Capacity:    capacity,
		ObjectBytes: objectBytes,
		AutoCut:     true,
	})
	if err != nil {
		return nil, err
	}
	return &HCIBroadcast{DS: ds, Tree: t, Lay: lay}, nil
}

// overlapsTargets reports whether the key span [lo, hi) intersects any
// of the sorted target ranges.
func overlapsTargets(targets []hilbert.Range, lo, hi uint64) bool {
	i := sort.Search(len(targets), func(i int) bool { return targets[i].Hi > lo })
	return i < len(targets) && targets[i].Lo < hi
}

// inTargets reports whether key lies in any of the sorted target ranges.
func inTargets(targets []hilbert.Range, key uint64) bool {
	i := sort.Search(len(targets), func(i int) bool { return targets[i].Hi > key })
	return i < len(targets) && targets[i].Contains(key)
}

// Window executes an on-air window query and returns the matching
// object IDs in HC (ID) order.
func (b *HCIBroadcast) Window(w spatial.Rect, probeSlot int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	targets := b.DS.Curve.Ranges(w.MinX, w.MinY, w.MaxX, w.MaxY)
	nav := newNavigator(b.Lay, probeSlot, loss)
	nav.expand = func(id int, hi uint64) {
		n := b.Tree.Node(id)
		if n.Level == 0 {
			for i, key := range n.Keys {
				if inTargets(targets, key) {
					nav.scheduleObj(n.Vals[i])
				}
			}
			return
		}
		for i, childID := range n.Children {
			childHi := hi
			if i+1 < len(n.Keys) {
				childHi = n.Keys[i+1]
			}
			if overlapsTargets(targets, n.Keys[i], childHi) {
				nav.scheduleNode(childID, childHi)
			}
		}
	}
	nav.probe()
	nav.scheduleNode(b.Tree.Root().ID, math.MaxUint64)
	nav.run()
	out := nav.retrievedIDs()
	sort.Ints(out)
	return out, nav.tu.Stats()
}

// KNN executes an on-air k-nearest-neighbor query following the HCI
// algorithm as published (Zheng, Lee & Lee, PerCom 2003): phase 1
// descends to the leaves around the query point's HC value and takes
// the k objects nearest in HC-value order as the initial candidates;
// their maximum spatial distance fixes the search bound. Phase 2 is a
// window-style retrieval of every object inside that bound. Because HC
// proximity does not imply spatial proximity, the fixed bound is often
// loose, which is exactly the weakness the DSI paper reports: HCI
// retrieves many unqualified objects (tuning) and spans extra cycles
// (latency) on kNN queries.
func (b *HCIBroadcast) KNN(q spatial.Point, k int, probeSlot int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	nav := newNavigator(b.Lay, probeSlot, loss)
	if k <= 0 {
		nav.probe()
		return nil, nav.tu.Stats()
	}
	if k > b.DS.N() {
		k = b.DS.N()
	}
	curve := b.DS.Curve
	hcq := curve.Encode(q.X, q.Y)

	// hcNeighborhood is the HC range holding the k objects on either
	// side of hcq: the keys phase 1 must discover. The client derives
	// it incrementally from leaf contents; using the dataset's sorted
	// key list here only short-circuits that bookkeeping.
	loIdx := b.DS.FindHC(hcq) - k
	if loIdx < 0 {
		loIdx = 0
	}
	hiIdx := b.DS.FindHC(hcq) + k
	if hiIdx > b.DS.N() {
		hiIdx = b.DS.N()
	}
	phase1Lo := b.DS.Objects[loIdx].HC
	phase1Hi := b.DS.Objects[hiIdx-1].HC + 1

	var keys []uint64
	descend := true
	var targets []hilbert.Range
	nav.expand = func(id int, hi uint64) {
		n := b.Tree.Node(id)
		if n.Level == 0 {
			if descend {
				keys = append(keys, n.Keys...)
				return
			}
			for i, key := range n.Keys {
				if inTargets(targets, key) {
					nav.scheduleObj(n.Vals[i])
				}
			}
			return
		}
		for i, childID := range n.Children {
			childHi := hi
			if i+1 < len(n.Keys) {
				childHi = n.Keys[i+1]
			}
			if descend {
				if n.Keys[i] < phase1Hi && phase1Lo < childHi {
					nav.scheduleNode(childID, childHi)
				}
				continue
			}
			if overlapsTargets(targets, n.Keys[i], childHi) {
				nav.scheduleNode(childID, childHi)
			}
		}
	}
	nav.keepObj = func(id int) bool {
		return inTargets(targets, b.DS.ByID(id).HC)
	}

	// Phase 1: find the k nearest keys in HC-value order and fix the
	// spatial bound from them.
	nav.probe()
	nav.scheduleNode(b.Tree.Root().ID, math.MaxUint64)
	nav.run()

	type hcCand struct {
		key  uint64
		dist uint64 // |key - hcq| in HC-value order
	}
	hcs := make([]hcCand, 0, len(keys))
	for _, key := range keys {
		d := key - hcq
		if key < hcq {
			d = hcq - key
		}
		hcs = append(hcs, hcCand{key: key, dist: d})
	}
	sort.Slice(hcs, func(i, j int) bool {
		if hcs[i].dist != hcs[j].dist {
			return hcs[i].dist < hcs[j].dist
		}
		return hcs[i].key < hcs[j].key
	})
	if len(hcs) > k {
		hcs = hcs[:k]
	}
	r2 := 0.0
	for _, c := range hcs {
		x, y := curve.Decode(c.key)
		if d2 := q.Dist2(spatial.Point{X: x, Y: y}); d2 > r2 {
			r2 = d2
		}
	}
	// Classify against the exact squared bound: squared distances
	// between grid cells are integers (exact in float64), while
	// sqrt-then-resquare can round below r2 and exclude the k-th
	// phase-1 object sitting exactly on the boundary.
	disk := hilbert.DiskRegion{QX: float64(q.X), QY: float64(q.Y), R2: r2}
	targets = curve.RangesFunc(disk.Classify)

	// Phase 2: retrieve everything inside the fixed bound (re-expanding
	// cached path nodes is free).
	descend = false
	nav.scheduleNode(b.Tree.Root().ID, math.MaxUint64)
	nav.run()

	// Answer: the k nearest among the retrieved objects. The bound was
	// derived from k real objects, so at least k objects lie inside it.
	type cand struct {
		id int
		d2 float64
	}
	var cands []cand
	for _, id := range nav.retrievedIDs() {
		cands = append(cands, cand{id: id, d2: b.DS.ByID(id).P.Dist2(q)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d2 != cands[j].d2 {
			return cands[i].d2 < cands[j].d2
		}
		return cands[i].id < cands[j].id
	})
	out := make([]int, 0, k)
	for _, c := range cands[:k] {
		out = append(out, c.id)
	}
	return out, nav.tu.Stats()
}

package air

import (
	"container/heap"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
)

func TestTaskHeapOrdering(t *testing.T) {
	h := &taskHeap{}
	heap.Push(h, task{slot: 30, id: 1})
	heap.Push(h, task{slot: 10, id: 2, isObj: true})
	heap.Push(h, task{slot: 10, id: 3})
	heap.Push(h, task{slot: 20, id: 4})
	heap.Push(h, task{slot: 10, id: 1})

	// Order: slot ascending; at equal slots index tasks precede data,
	// then by id.
	want := []task{
		{slot: 10, id: 1},
		{slot: 10, id: 3},
		{slot: 10, id: 2, isObj: true},
		{slot: 20, id: 4},
		{slot: 30, id: 1},
	}
	for i, w := range want {
		got := heap.Pop(h).(task)
		if got != w {
			t.Fatalf("pop %d = %+v, want %+v", i, got, w)
		}
	}
}

func TestNavigatorCachedNodeExpandsForFree(t *testing.T) {
	ds := dataset.Uniform(100, 6, 31)
	hci, err := NewHCIBroadcast(ds, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	nav := newNavigator(hci.Lay, 0, nil)
	expansions := 0
	nav.expand = func(id int, _ uint64) { expansions++ }
	root := hci.Tree.Root().ID

	nav.probe()
	nav.scheduleNode(root, 0)
	nav.run()
	if expansions != 1 {
		t.Fatalf("root expanded %d times", expansions)
	}
	tuned := nav.tu.Stats().TuningPackets

	// Scheduling the cached root again must expand immediately without
	// any radio cost.
	nav.scheduleNode(root, 0)
	if expansions != 2 {
		t.Fatal("cached node not expanded at schedule time")
	}
	if nav.tu.Stats().TuningPackets != tuned {
		t.Fatal("cached expansion cost tuning")
	}
}

func TestNavigatorMissedSlotWaitsForNextOccurrence(t *testing.T) {
	ds := dataset.Uniform(100, 6, 33)
	hci, err := NewHCIBroadcast(ds, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	nav := newNavigator(hci.Lay, 0, nil)
	nav.expand = func(int, uint64) {}
	// A leaf occurs exactly once per cycle. Find one and schedule it
	// with a slot that has already passed.
	var leaf int
	for id := 0; id < hci.Tree.NodeCount(); id++ {
		if hci.Tree.Node(id).Level == 0 {
			leaf = id
			break
		}
	}
	occ := hci.Lay.NodeOccurrences(leaf)
	if len(occ) != 1 {
		t.Fatalf("leaf occurs %d times", len(occ))
	}
	// Move the tuner beyond the leaf's slot within this cycle.
	nav.tu.DozeUntil(int64(occ[0] + 1))
	heap.Push(&nav.pq, task{slot: int64(occ[0]), id: leaf})
	nav.run()
	if !nav.read[leaf] {
		t.Fatal("missed node never served")
	}
	if nav.tu.Now() < int64(occ[0]+hci.Lay.Prog.Len()) {
		t.Fatalf("missed node served at %d, before its next-cycle occurrence %d",
			nav.tu.Now(), occ[0]+hci.Lay.Prog.Len())
	}
}

func TestNavigatorLossReschedules(t *testing.T) {
	ds := dataset.Uniform(100, 6, 35)
	hci, err := NewHCIBroadcast(ds, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	loss := broadcast.NewLossModel(0.5, 99)
	nav := newNavigator(hci.Lay, 0, loss)
	nav.expand = func(int, uint64) {}
	root := hci.Tree.Root().ID
	nav.probe()
	nav.scheduleNode(root, 0)
	nav.run()
	if !nav.read[root] {
		t.Fatal("node never received despite retries")
	}
}

func TestNavigatorObjRetrievalAndDedup(t *testing.T) {
	ds := dataset.Uniform(50, 6, 37)
	hci, err := NewHCIBroadcast(ds, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	nav := newNavigator(hci.Lay, 0, nil)
	nav.expand = func(int, uint64) {}
	nav.scheduleObj(7)
	nav.scheduleObj(7) // duplicate before retrieval: two tasks, one read
	nav.run()
	if !nav.got[7] {
		t.Fatal("object not retrieved")
	}
	read := nav.tu.Stats().TuningPackets
	if read != int64(hci.Lay.ObjPackets) {
		t.Fatalf("read %d packets, want %d (duplicate must be free)", read, hci.Lay.ObjPackets)
	}
	nav.scheduleObj(7) // after retrieval: no task at all
	if nav.pq.Len() != 0 {
		t.Fatal("retrieved object rescheduled")
	}
	if got := nav.retrievedIDs(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("retrievedIDs = %v", got)
	}
}

func TestNavigatorPruning(t *testing.T) {
	ds := dataset.Uniform(100, 6, 39)
	hci, err := NewHCIBroadcast(ds, 64, 256)
	if err != nil {
		t.Fatal(err)
	}
	nav := newNavigator(hci.Lay, 0, nil)
	nav.expand = func(int, uint64) { t.Fatal("pruned node expanded") }
	nav.keepNode = func(int, uint64) bool { return false }
	nav.keepObj = func(int) bool { return false }
	nav.scheduleNode(hci.Tree.Root().ID, 0)
	nav.scheduleObj(3)
	before := nav.tu.Now()
	nav.run()
	if nav.tu.Now() != before {
		t.Fatal("pruned tasks cost time")
	}
	if nav.tu.Stats().TuningPackets != 0 {
		t.Fatal("pruned tasks cost tuning")
	}
}

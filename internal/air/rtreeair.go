package air

import (
	"math"
	"sort"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/rtree"
	"dsi/internal/spatial"
)

// RTreeBroadcast is the R-tree baseline on the broadcast channel: an
// STR-packed R-tree laid out with the distributed indexing scheme, with
// window and kNN search executed in broadcast order.
type RTreeBroadcast struct {
	DS   *dataset.Dataset
	Tree *rtree.Tree
	Lay  *Layout
}

// rtView adapts *rtree.Tree to the layout's TreeView.
type rtView struct{ t *rtree.Tree }

func (v rtView) RootID() int              { return v.t.Root().ID }
func (v rtView) Height() int              { return v.t.Height() }
func (v rtView) Level(id int) int         { return v.t.Node(id).Level }
func (v rtView) Children(id int) []int    { return v.t.Node(id).Children }
func (v rtView) LeafObjects(id int) []int { return v.t.Node(id).Objects }
func (v rtView) NodeBytes() int           { return v.t.NodeBytes() }

// NewRTreeBroadcast builds the R-tree over the dataset and its
// broadcast layout. It fails at capacities that cannot hold an R-tree
// entry (the paper's 32-byte limitation).
func NewRTreeBroadcast(ds *dataset.Dataset, capacity, objectBytes int) (*RTreeBroadcast, error) {
	t, err := rtree.BuildForCapacity(ds, capacity)
	if err != nil {
		return nil, err
	}
	lay, err := BuildLayout(rtView{t}, LayoutConfig{
		Capacity:    capacity,
		ObjectBytes: objectBytes,
		AutoCut:     true,
	})
	if err != nil {
		return nil, err
	}
	return &RTreeBroadcast{DS: ds, Tree: t, Lay: lay}, nil
}

// Window executes an on-air window query starting at the given absolute
// probe slot and returns the matching object IDs in HC (ID) order.
func (b *RTreeBroadcast) Window(w spatial.Rect, probeSlot int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	nav := newNavigator(b.Lay, probeSlot, loss)
	nav.expand = func(id int, _ uint64) {
		n := b.Tree.Node(id)
		if n.Level == 0 {
			for i, objID := range n.Objects {
				if w.Intersects(n.MBRs[i]) {
					nav.scheduleObj(objID)
				}
			}
			return
		}
		for i, c := range n.Children {
			if w.Intersects(n.MBRs[i]) {
				nav.scheduleNode(c, 0)
			}
		}
	}
	nav.probe()
	nav.scheduleNode(b.Tree.Root().ID, 0)
	nav.run()
	out := nav.retrievedIDs()
	sort.Ints(out)
	return out, nav.tu.Stats()
}

// KNN executes an on-air k-nearest-neighbor query: a best-effort
// branch-and-bound served in broadcast order. Leaf entries carry exact
// object points, so every discovered entry is a candidate that bounds
// the search space; nodes and objects outside the current bound are
// pruned when their broadcast slot arrives.
func (b *RTreeBroadcast) KNN(q spatial.Point, k int, probeSlot int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	nav := newNavigator(b.Lay, probeSlot, loss)
	if k <= 0 {
		nav.probe()
		return nil, nav.tu.Stats()
	}
	if k > b.DS.N() {
		k = b.DS.N()
	}

	type cand struct {
		id int
		d2 float64
	}
	var cands []cand
	seen := make(map[int]bool)
	r2 := math.Inf(1)
	updateR := func() {
		if len(cands) < k {
			return
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d2 != cands[j].d2 {
				return cands[i].d2 < cands[j].d2
			}
			return cands[i].id < cands[j].id
		})
		r2 = cands[k-1].d2
	}

	nav.expand = func(id int, _ uint64) {
		n := b.Tree.Node(id)
		if n.Level == 0 {
			for i, objID := range n.Objects {
				if !seen[objID] {
					seen[objID] = true
					p := spatial.Point{X: n.MBRs[i].MinX, Y: n.MBRs[i].MinY}
					cands = append(cands, cand{id: objID, d2: q.Dist2(p)})
				}
			}
			updateR()
			for i, objID := range n.Objects {
				p := spatial.Point{X: n.MBRs[i].MinX, Y: n.MBRs[i].MinY}
				if q.Dist2(p) <= r2 {
					nav.scheduleObj(objID)
				}
			}
			return
		}
		for i, c := range n.Children {
			if n.MBRs[i].MinDist2(q) <= r2 {
				nav.scheduleNode(c, 0)
			}
		}
	}
	nav.keepNode = func(id int, _ uint64) bool {
		return b.Tree.Node(id).MBR.MinDist2(q) <= r2
	}
	nav.keepObj = func(id int) bool {
		return b.DS.ByID(id).P.Dist2(q) <= r2
	}

	nav.probe()
	nav.scheduleNode(b.Tree.Root().ID, 0)
	nav.run()

	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d2 != cands[j].d2 {
			return cands[i].d2 < cands[j].d2
		}
		return cands[i].id < cands[j].id
	})
	out := make([]int, 0, k)
	for _, c := range cands[:k] {
		out = append(out, c.id)
	}
	return out, nav.tu.Stats()
}

// Package air puts tree indexes (the STR R-tree and the B+-tree behind
// the Hilbert Curve Index) on the broadcast channel using the
// distributed indexing scheme of Imielinski, Viswanathan & Badrinath
// ("Data on air", TKDE 1997), which the paper uses for both baselines.
//
// The scheme replicates the top levels of the tree: the broadcast cycle
// consists of one segment per node at the cut level, each segment
// carrying the path from the root to that node (the replicated part),
// the node's entire subtree (the non-replicated part), and the data
// buckets the subtree covers. A client that tunes in anywhere reaches
// the next copy of the root after a fraction of a cycle instead of
// waiting for the single root of a (1,1) layout.
//
// On-air searches navigate in broadcast order (paper section 2.1): all
// pending node visits are served in the order their next broadcast
// occurrence arrives, and a visit whose occurrence has passed waits for
// the next replica or the next cycle — the structural disadvantage DSI
// is designed to remove.
package air

import (
	"fmt"
	"math"
	"sort"

	"dsi/internal/broadcast"
)

// TreeView is the structural view of a tree index that the layout
// needs: dense node IDs, levels (0 = leaf), children for internal nodes
// and object IDs for leaves.
type TreeView interface {
	RootID() int
	Height() int
	Level(id int) int
	Children(id int) []int
	LeafObjects(id int) []int
	NodeBytes() int
}

// Layout is a distributed-index broadcast program for a tree.
type Layout struct {
	Tree        TreeView
	Capacity    int
	ObjectBytes int
	NodePackets int
	ObjPackets  int
	// CutLevel is the tree level whose nodes head the broadcast
	// segments; levels above it are replicated once per segment.
	CutLevel    int
	NumSegments int

	Prog    *broadcast.Program
	nodeOcc map[int][]int // node id -> sorted cycle slots of its copies
	objSlot map[int]int   // object id -> cycle slot
}

// LayoutConfig configures BuildLayout. A zero CutLevel with AutoCut
// selects the cut minimizing estimated access latency.
type LayoutConfig struct {
	Capacity    int
	ObjectBytes int
	CutLevel    int
	AutoCut     bool
}

// BuildLayout constructs the broadcast program for the tree.
func BuildLayout(t TreeView, cfg LayoutConfig) (*Layout, error) {
	if cfg.Capacity < 8 {
		return nil, fmt.Errorf("air: capacity %d too small", cfg.Capacity)
	}
	if cfg.ObjectBytes <= 0 {
		cfg.ObjectBytes = broadcast.ObjectBytes
	}
	h := t.Height()
	cut := cfg.CutLevel
	if cfg.AutoCut {
		cut = bestCut(t, cfg)
	}
	if cut < 0 || cut >= h {
		return nil, fmt.Errorf("air: cut level %d outside [0,%d]", cut, h-1)
	}

	l := &Layout{
		Tree:        t,
		Capacity:    cfg.Capacity,
		ObjectBytes: cfg.ObjectBytes,
		NodePackets: broadcast.PacketsFor(t.NodeBytes(), cfg.Capacity),
		ObjPackets:  broadcast.PacketsFor(cfg.ObjectBytes, cfg.Capacity),
		CutLevel:    cut,
		nodeOcc:     make(map[int][]int),
		objSlot:     make(map[int]int),
	}

	var slots []broadcast.Slot
	emitNode := func(id int) {
		l.nodeOcc[id] = append(l.nodeOcc[id], len(slots))
		for p := 0; p < l.NodePackets; p++ {
			slots = append(slots, broadcast.Slot{Kind: broadcast.KindIndex, Owner: int32(id), Part: int32(p)})
		}
	}
	emitObj := func(id int) {
		l.objSlot[id] = len(slots)
		for p := 0; p < l.ObjPackets; p++ {
			slots = append(slots, broadcast.Slot{Kind: broadcast.KindData, Owner: int32(id), Part: int32(p)})
		}
	}

	// One segment per cut-level node, left to right.
	for _, u := range nodesAtLevel(t, cut) {
		for _, p := range pathTo(t, u) {
			emitNode(p)
		}
		subtree, objs := collectSubtree(t, u)
		for _, id := range subtree {
			emitNode(id)
		}
		for _, id := range objs {
			emitObj(id)
		}
		l.NumSegments++
	}
	l.Prog = &broadcast.Program{Capacity: cfg.Capacity, Slots: slots}
	return l, nil
}

// nodesAtLevel returns the IDs of the nodes at the given level in
// left-to-right order.
func nodesAtLevel(t TreeView, level int) []int {
	var out []int
	var walk func(id int)
	walk = func(id int) {
		if t.Level(id) == level {
			out = append(out, id)
			return
		}
		for _, c := range t.Children(id) {
			walk(c)
		}
	}
	walk(t.RootID())
	return out
}

// pathTo returns the nodes strictly above u on the root path, top-down
// (the replicated part of u's segment).
func pathTo(t TreeView, u int) []int {
	if u == t.RootID() {
		return nil
	}
	var path []int
	id := t.RootID()
	for id != u {
		path = append(path, id)
		next := -1
		for _, c := range t.Children(id) {
			if covers(t, c, u) {
				next = c
				break
			}
		}
		if next < 0 {
			panic("air: node unreachable from root")
		}
		id = next
	}
	return path
}

// covers reports whether node u lies in the subtree of node a.
func covers(t TreeView, a, u int) bool {
	if a == u {
		return true
	}
	if t.Level(a) <= t.Level(u) {
		return false
	}
	for _, c := range t.Children(a) {
		if covers(t, c, u) {
			return true
		}
	}
	return false
}

// collectSubtree returns the pre-order node IDs of u's subtree and the
// object IDs of its leaves in leaf order.
func collectSubtree(t TreeView, u int) (nodes, objs []int) {
	var walk func(id int)
	walk = func(id int) {
		nodes = append(nodes, id)
		if t.Level(id) == 0 {
			objs = append(objs, t.LeafObjects(id)...)
			return
		}
		for _, c := range t.Children(id) {
			walk(c)
		}
	}
	walk(u)
	return nodes, objs
}

// bestCut selects the cut level minimizing an access-latency estimate:
// half the cycle (data wait) plus half the index-segment gap (probe
// wait). More replication shortens the probe wait but lengthens the
// cycle.
func bestCut(t TreeView, cfg LayoutConfig) int {
	h := t.Height()
	nodePackets := broadcast.PacketsFor(t.NodeBytes(), cfg.Capacity)
	objPackets := broadcast.PacketsFor(cfg.ObjectBytes, cfg.Capacity)

	// Count nodes and objects per level.
	levelCount := make([]int, h)
	objects := 0
	var walk func(id int)
	walk = func(id int) {
		levelCount[t.Level(id)]++
		if t.Level(id) == 0 {
			objects += len(t.LeafObjects(id))
			return
		}
		for _, c := range t.Children(id) {
			walk(c)
		}
	}
	walk(t.RootID())

	best, bestCost := h-1, math.Inf(1)
	for cut := 0; cut < h; cut++ {
		nonRepl := 0
		for lv := 0; lv <= cut; lv++ {
			nonRepl += levelCount[lv]
		}
		segments := levelCount[cut]
		replicated := segments * (h - 1 - cut)
		cycle := float64(objects*objPackets + (nonRepl+replicated)*nodePackets)
		cost := cycle/2 + cycle/float64(2*segments)
		if cost < bestCost {
			best, bestCost = cut, cost
		}
	}
	return best
}

// NodeOccurrences returns the cycle slots at which node id is broadcast.
func (l *Layout) NodeOccurrences(id int) []int { return l.nodeOcc[id] }

// NextNode returns the earliest absolute slot >= now at which node id
// begins.
func (l *Layout) NextNode(id int, now int64) int64 {
	occ := l.nodeOcc[id]
	cl := int64(l.Prog.Len())
	cur := int(now % cl)
	i := sort.SearchInts(occ, cur)
	if i < len(occ) {
		return now + int64(occ[i]-cur)
	}
	return now + int64(occ[0]+l.Prog.Len()-cur)
}

// NextObject returns the earliest absolute slot >= now at which object
// id begins.
func (l *Layout) NextObject(id int, now int64) int64 {
	slot, ok := l.objSlot[id]
	if !ok {
		panic(fmt.Sprintf("air: object %d not in layout", id))
	}
	return broadcast.NextOccurrence(now, slot, l.Prog.Len())
}

// CycleBytes returns the broadcast cycle length in bytes.
func (l *Layout) CycleBytes() int64 { return l.Prog.CycleBytes() }

// IndexOverheadBytes returns the index bytes per cycle (node packets,
// including replicas).
func (l *Layout) IndexOverheadBytes() int64 {
	total := 0
	for _, occ := range l.nodeOcc {
		total += len(occ) * l.NodePackets
	}
	return int64(total) * int64(l.Capacity)
}

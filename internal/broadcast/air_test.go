package broadcast

import "testing"

func chanOf(capacity, n int, kind Kind) *Channel {
	slots := make([]Slot, n)
	for i := range slots {
		slots[i] = Slot{Kind: kind, Owner: int32(i)}
	}
	return &Channel{Program: Program{Capacity: capacity, Slots: slots}}
}

func TestNewAirValidates(t *testing.T) {
	if _, err := NewAir(0); err == nil {
		t.Error("empty air accepted")
	}
	if _, err := NewAir(0, chanOf(64, 4, KindData), chanOf(32, 4, KindData)); err == nil {
		t.Error("mixed capacities accepted")
	}
	if _, err := NewAir(-1, chanOf(64, 4, KindData)); err == nil {
		t.Error("negative switch cost accepted")
	}
	if _, err := NewAir(0, chanOf(64, 0, KindData)); err == nil {
		t.Error("empty channel accepted")
	}
	a, err := NewAir(2, chanOf(64, 4, KindIndex), chanOf(64, 6, KindData))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumChannels() != 2 || a.Capacity != 64 || a.Channel(1).ID != 1 {
		t.Errorf("air misassembled: %v", a)
	}
}

// TestSingleAirTunerMatchesProgramTuner is the N=1 reduction contract:
// an air tuner over a one-channel air must behave packet for packet
// like the classic single-program tuner.
func TestSingleAirTunerMatchesProgramTuner(t *testing.T) {
	prog := &Program{Capacity: 64, Slots: make([]Slot, 10)}
	for i := range prog.Slots {
		k := KindData
		if i%3 == 0 {
			k = KindIndex
		}
		prog.Slots[i] = Slot{Kind: k, Owner: int32(i)}
	}
	classic := NewTuner(prog, 7, NewLossModel(0.3, 42))
	airy := NewAirTuner(SingleAir(prog), 0, 7, NewLossModel(0.3, 42))
	for i := 0; i < 40; i++ {
		s1, ok1 := classic.Read()
		s2, ok2 := airy.Read()
		if s1 != s2 || ok1 != ok2 {
			t.Fatalf("read %d diverged: (%v,%v) vs (%v,%v)", i, s1, ok1, s2, ok2)
		}
		if i%5 == 0 {
			classic.Doze(3)
			airy.Doze(3)
		}
	}
	if classic.Stats() != airy.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", classic.Stats(), airy.Stats())
	}
	if got := airy.ChannelTuning()[0]; got != airy.Stats().TuningPackets {
		t.Errorf("channel 0 tuning %d != total %d", got, airy.Stats().TuningPackets)
	}
}

func TestSwitchCostAndAccounting(t *testing.T) {
	a, err := NewAir(5, chanOf(64, 4, KindIndex), chanOf(64, 6, KindData))
	if err != nil {
		t.Fatal(err)
	}
	tu := NewAirTuner(a, 0, 0, nil)
	tu.Read() // one packet on channel 0
	tu.Switch(0)
	if tu.Stats().Switches != 0 {
		t.Error("switching to the current channel charged a switch")
	}
	now := tu.Now()
	tu.Switch(1)
	if tu.Now() != now+5 {
		t.Errorf("switch advanced clock to %d, want %d", tu.Now(), now+5)
	}
	if tu.Channel() != 1 {
		t.Errorf("on channel %d, want 1", tu.Channel())
	}
	// The new channel's cycle length governs positions now.
	tu.DozeUntilPos(5)
	s, _ := tu.Read()
	if s.Owner != 5 || s.Kind != KindData {
		t.Errorf("read %+v from channel 1, want data slot 5", s)
	}
	st := tu.Stats()
	if st.Switches != 1 || st.TuningPackets != 2 {
		t.Errorf("stats %+v, want 1 switch, 2 tuning packets", st)
	}
	ct := tu.ChannelTuning()
	if ct[0] != 1 || ct[1] != 1 {
		t.Errorf("per-channel tuning %v, want [1 1]", ct)
	}

	// Reset returns to the start channel and clears accounting.
	tu.Reset(3, nil)
	if tu.Channel() != 0 || tu.Stats().Switches != 0 || tu.ChannelTuning()[1] != 0 {
		t.Errorf("reset left state: ch=%d stats=%+v per-channel=%v",
			tu.Channel(), tu.Stats(), tu.ChannelTuning())
	}
}

func TestPerChannelLoss(t *testing.T) {
	a, err := NewAir(0, chanOf(64, 8, KindIndex), chanOf(64, 8, KindIndex))
	if err != nil {
		t.Fatal(err)
	}
	tu := NewAirTuner(a, 0, 0, nil)
	tu.SetChannelLoss(1, NewLossModel(0.9999999, 7))
	for i := 0; i < 20; i++ {
		if _, ok := tu.Read(); !ok {
			t.Fatal("error-free channel 0 lost a packet")
		}
	}
	tu.Switch(1)
	lost := 0
	for i := 0; i < 20; i++ {
		if _, ok := tu.Read(); !ok {
			lost++
		}
	}
	if lost == 0 {
		t.Error("lossy channel 1 lost nothing")
	}
	tu.Reset(0, nil)
	tu.Switch(1)
	if _, ok := tu.Read(); !ok {
		t.Error("Reset did not clear the per-channel loss override")
	}
}

func TestSwitchOnSingleProgramTunerPanics(t *testing.T) {
	prog := &Program{Capacity: 64, Slots: []Slot{{}}}
	tu := NewTuner(prog, 0, nil)
	defer func() {
		if recover() == nil {
			t.Error("Switch on a single-program tuner did not panic")
		}
	}()
	tu.Switch(1)
}

// TestGilbertElliottDeterministic pins the burst model's behaviour for a
// fixed seed: identical seeds replay identical loss sequences, and the
// losses arrive in bursts (a lost packet's successor is lost far more
// often than the stationary rate).
func TestGilbertElliottDeterministic(t *testing.T) {
	seq := func() []bool {
		l := GilbertForTheta(0.3, 8, 12345)
		out := make([]bool, 4000)
		for i := range out {
			out[i] = l.Lost(KindIndex)
		}
		return out
	}
	a, b := seq(), seq()
	losses, afterLoss, lossAfterLoss := 0, 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs across identical seeds", i)
		}
		if a[i] {
			losses++
		}
		if i > 0 && a[i-1] {
			afterLoss++
			if a[i] {
				lossAfterLoss++
			}
		}
	}
	rate := float64(losses) / float64(len(a))
	if rate < 0.2 || rate > 0.4 {
		t.Errorf("stationary loss rate %.3f far from configured 0.3", rate)
	}
	burstiness := float64(lossAfterLoss) / float64(afterLoss)
	if burstiness < 2*rate {
		t.Errorf("loss-after-loss rate %.3f not bursty (stationary %.3f)", burstiness, rate)
	}
	if th := GilbertForTheta(0.3, 8, 1).Theta; th < 0.299 || th > 0.301 {
		t.Errorf("stationary Theta %.4f, want 0.3", th)
	}
}

// TestGilbertForThetaInfeasiblePanics: a stationary rate the requested
// burst length cannot average must be refused, not silently lowered.
func TestGilbertForThetaInfeasiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("infeasible (theta, burst length) pair accepted")
		}
	}()
	GilbertForTheta(0.9, 8, 1) // max feasible theta at burst 8 is 8/9
}

// TestGilbertElliottDataGating: by default data packets are never
// corrupted, but the chain still advances so the burst process does not
// depend on the packet mix.
func TestGilbertElliottDataGating(t *testing.T) {
	l := GilbertForTheta(0.5, 4, 9)
	for i := 0; i < 1000; i++ {
		if l.Lost(KindData) {
			t.Fatal("data packet corrupted without AffectsData")
		}
	}
	l.AffectsData = true
	lost := 0
	for i := 0; i < 1000; i++ {
		if l.Lost(KindData) {
			lost++
		}
	}
	if lost == 0 {
		t.Error("AffectsData burst model lost no data packets")
	}
}

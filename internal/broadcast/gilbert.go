package broadcast

import (
	"fmt"
	"math/rand/v2"
)

// NewGilbertElliott returns a burst-error loss model: the classic
// Gilbert-Elliott two-state Markov channel. The channel alternates
// between a good and a bad state; each received packet is lost with
// probability thetaGood in the good state and thetaBad in the bad
// state, and after each packet the channel moves good->bad with
// probability pGB and bad->good with probability pBG. Runs of the bad
// state produce the loss bursts i.i.d. models cannot: the mean burst
// length is 1/pBG packets.
//
// Like the i.i.d. model, the chain advances per *received* packet (the
// paper's error model is per-packet), and by default only index packets
// are corrupted; set AffectsData on the returned model to extend
// corruption to data packets.
//
// The model starts in the good state. Theta on the returned model is
// set to the stationary loss rate
//
//	pBG/(pGB+pBG)*thetaGood + pGB/(pGB+pBG)*thetaBad
//
// so burst and i.i.d. models with equal Theta are comparable at equal
// average loss.
func NewGilbertElliott(pGB, pBG, thetaGood, thetaBad float64, seed int64) *LossModel {
	for _, p := range []float64{pGB, pBG} {
		if p <= 0 || p > 1 {
			panic(fmt.Sprintf("broadcast: transition probability %v outside (0,1]", p))
		}
	}
	for _, th := range []float64{thetaGood, thetaBad} {
		if th < 0 || th > 1 {
			panic(fmt.Sprintf("broadcast: state loss ratio %v outside [0,1]", th))
		}
	}
	piBad := pGB / (pGB + pBG)
	stationary := (1-piBad)*thetaGood + piBad*thetaBad
	if stationary >= 1 {
		panic(fmt.Sprintf("broadcast: stationary loss rate %v leaves no intact packets", stationary))
	}
	return &LossModel{
		Theta:     stationary,
		rng:       rand.New(rand.NewPCG(uint64(seed), 0xda3e39cb94b95bdb)),
		burst:     true,
		pGB:       pGB,
		pBG:       pBG,
		thetaGood: thetaGood,
		thetaBad:  thetaBad,
	}
}

// GilbertForTheta returns a Gilbert-Elliott model tuned to a stationary
// loss rate of theta with mean bad-state burst length burstLen (in
// packets): the bad state loses every packet, the good state none. This
// is the burst counterpart of NewLossModel(theta, seed) used by the
// Table 1 re-run under burst errors.
func GilbertForTheta(theta float64, burstLen float64, seed int64) *LossModel {
	if theta <= 0 || theta >= 1 {
		panic(fmt.Sprintf("broadcast: theta %v outside (0,1)", theta))
	}
	if burstLen < 1 {
		panic(fmt.Sprintf("broadcast: burst length %v below one packet", burstLen))
	}
	pBG := 1 / burstLen
	// Stationary bad fraction pGB/(pGB+pBG) must equal theta.
	pGB := theta * pBG / (1 - theta)
	if pGB > 1 {
		// theta/(1-theta) > pBG: bursts of the requested mean length
		// cannot be sparse enough to average theta. Refuse rather than
		// silently simulate a lower loss rate than the label claims.
		panic(fmt.Sprintf("broadcast: theta %v infeasible with mean burst length %v (max %v)",
			theta, burstLen, burstLen/(burstLen+1)))
	}
	return NewGilbertElliott(pGB, pBG, 0, 1, seed)
}

// lostBurst advances the Gilbert-Elliott chain by one received packet
// and reports whether that packet was lost. The state transition is
// consumed even for packet kinds the model does not corrupt, so the
// burst process is a property of the channel, not of the packet mix.
func (l *LossModel) lostBurst(k Kind) bool {
	theta := l.thetaGood
	if l.bad {
		theta = l.thetaBad
	}
	lost := theta > 0 && l.rng.Float64() < theta
	if l.bad {
		if l.rng.Float64() < l.pBG {
			l.bad = false
		}
	} else if l.rng.Float64() < l.pGB {
		l.bad = true
	}
	if k == KindData && !l.AffectsData {
		return false
	}
	return lost
}

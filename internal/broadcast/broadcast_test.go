package broadcast

import (
	"math"
	"testing"
	"testing/quick"
)

func testProgram(capacity, n int) *Program {
	slots := make([]Slot, n)
	for i := range slots {
		k := KindData
		if i%4 == 0 {
			k = KindIndex
		}
		slots[i] = Slot{Kind: k, Owner: int32(i / 4), Part: int32(i % 4)}
	}
	return &Program{Capacity: capacity, Slots: slots}
}

func TestProgramBasics(t *testing.T) {
	p := testProgram(64, 20)
	if p.Len() != 20 {
		t.Errorf("Len = %d", p.Len())
	}
	if p.CycleBytes() != 20*64 {
		t.Errorf("CycleBytes = %d", p.CycleBytes())
	}
	if p.At(0).Kind != KindIndex || p.At(1).Kind != KindData {
		t.Error("At kinds wrong")
	}
	if p.At(21) != p.At(1) {
		t.Error("At must wrap around the cycle")
	}
}

func TestPacketsFor(t *testing.T) {
	cases := []struct{ n, c, want int }{
		{0, 64, 0},
		{-5, 64, 0},
		{1, 64, 1},
		{64, 64, 1},
		{65, 64, 2},
		{1024, 64, 16},
		{1024, 512, 2},
		{252, 64, 4},
	}
	for _, tc := range cases {
		if got := PacketsFor(tc.n, tc.c); got != tc.want {
			t.Errorf("PacketsFor(%d,%d) = %d, want %d", tc.n, tc.c, got, tc.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindIndex.String() != "index" || KindData.String() != "data" {
		t.Error("Kind strings wrong")
	}
	if Kind(9).String() != "kind(9)" {
		t.Error("unknown kind string wrong")
	}
}

func TestTunerReadAdvancesAndMeters(t *testing.T) {
	p := testProgram(64, 20)
	tu := NewTuner(p, 3, nil)
	s, ok := tu.Read()
	if !ok {
		t.Fatal("error-free read failed")
	}
	if s != p.At(3) {
		t.Errorf("read slot %v, want %v", s, p.At(3))
	}
	if tu.Now() != 4 || tu.Pos() != 4 {
		t.Errorf("clock after read: now=%d pos=%d", tu.Now(), tu.Pos())
	}
	st := tu.Stats()
	if st.LatencyPackets != 1 || st.TuningPackets != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.LatencyBytes() != 64 || st.TuningBytes() != 64 {
		t.Errorf("bytes = %d/%d", st.LatencyBytes(), st.TuningBytes())
	}
}

func TestTunerDoze(t *testing.T) {
	p := testProgram(64, 20)
	tu := NewTuner(p, 0, nil)
	tu.Doze(7)
	if tu.Now() != 7 {
		t.Errorf("now = %d", tu.Now())
	}
	st := tu.Stats()
	if st.LatencyPackets != 7 || st.TuningPackets != 0 {
		t.Errorf("doze must cost latency only: %+v", st)
	}
}

func TestTunerDozeUntilPosWraps(t *testing.T) {
	p := testProgram(64, 10)
	tu := NewTuner(p, 8, nil)
	tu.DozeUntilPos(2) // position 2 next occurs at absolute 12
	if tu.Now() != 12 {
		t.Errorf("now = %d, want 12", tu.Now())
	}
	tu.DozeUntilPos(2) // already there: zero slots
	if tu.Now() != 12 {
		t.Errorf("now = %d after no-op doze", tu.Now())
	}
}

func TestTunerPanics(t *testing.T) {
	p := testProgram(64, 10)
	cases := []func(){
		func() { NewTuner(&Program{Capacity: 64}, 0, nil) },
		func() { NewTuner(p, -1, nil) },
		func() { NewTuner(p, 0, nil).Doze(-1) },
		func() { tu := NewTuner(p, 5, nil); tu.DozeUntil(3) },
		func() { NextOccurrence(0, 10, 10) },
		func() { NewLossModel(1.0, 1) },
		func() { NewLossModel(-0.1, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNextOccurrence(t *testing.T) {
	cases := []struct {
		now    int64
		pos, l int
		want   int64
	}{
		{0, 0, 10, 0},
		{0, 5, 10, 5},
		{12, 5, 10, 15},
		{15, 5, 10, 15},
		{16, 5, 10, 25},
		{99, 9, 10, 99},
	}
	for _, tc := range cases {
		if got := NextOccurrence(tc.now, tc.pos, tc.l); got != tc.want {
			t.Errorf("NextOccurrence(%d,%d,%d) = %d, want %d", tc.now, tc.pos, tc.l, got, tc.want)
		}
	}
}

func TestNextOccurrenceQuick(t *testing.T) {
	f := func(now uint16, pos uint8, l uint8) bool {
		cycle := int(l)%100 + 1
		p := int(pos) % cycle
		got := NextOccurrence(int64(now), p, cycle)
		return got >= int64(now) &&
			got < int64(now)+int64(cycle) &&
			int(got%int64(cycle)) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLossModelZeroThetaNoOp(t *testing.T) {
	l := NewLossModel(0, 1)
	for i := 0; i < 1000; i++ {
		if l.Lost(KindIndex) || l.Lost(KindData) {
			t.Fatal("theta=0 lost a packet")
		}
	}
	var nilModel *LossModel
	if nilModel.Lost(KindIndex) {
		t.Fatal("nil model lost a packet")
	}
}

func TestLossModelRate(t *testing.T) {
	l := NewLossModel(0.3, 42)
	const n = 200000
	lost := 0
	for i := 0; i < n; i++ {
		if l.Lost(KindIndex) {
			lost++
		}
	}
	rate := float64(lost) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Errorf("loss rate %v, want ~0.3", rate)
	}
}

func TestLossModelDataExemptByDefault(t *testing.T) {
	l := NewLossModel(0.9, 7)
	for i := 0; i < 1000; i++ {
		if l.Lost(KindData) {
			t.Fatal("data packet lost with AffectsData=false")
		}
	}
	l.AffectsData = true
	lost := 0
	for i := 0; i < 1000; i++ {
		if l.Lost(KindData) {
			lost++
		}
	}
	if lost == 0 {
		t.Error("no data packets lost with AffectsData=true and theta=0.9")
	}
}

func TestTunerWithLossCountsCorruptedTuning(t *testing.T) {
	p := testProgram(64, 20)
	l := NewLossModel(0.5, 3)
	tu := NewTuner(p, 0, l)
	okCount := 0
	for i := 0; i < 100; i++ {
		if _, ok := tu.Read(); ok {
			okCount++
		}
	}
	st := tu.Stats()
	if st.TuningPackets != 100 {
		t.Errorf("tuning must count corrupted packets: %d", st.TuningPackets)
	}
	if okCount == 0 || okCount == 100 {
		t.Errorf("okCount = %d, expected a mix at theta=0.5", okCount)
	}
}

func TestTuningNeverExceedsLatencyQuick(t *testing.T) {
	p := testProgram(64, 50)
	f := func(ops []bool, probe uint8) bool {
		tu := NewTuner(p, int64(probe), nil)
		for _, read := range ops {
			if read {
				tu.Read()
			} else {
				tu.Doze(3)
			}
		}
		st := tu.Stats()
		return st.TuningPackets <= st.LatencyPackets
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{LatencyPackets: 10, TuningPackets: 2, Capacity: 64}
	if got := s.String(); got != "latency=640B tuning=128B" {
		t.Errorf("String = %q", got)
	}
}

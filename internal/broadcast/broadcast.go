// Package broadcast simulates a periodic wireless data broadcast channel.
//
// The server broadcasts a fixed cyclic sequence of packets (the broadcast
// program); time is measured in packet slots. A mobile client is modelled
// by a Tuner: it tunes in at some slot, alternates between reading packets
// (active mode) and dozing until a future slot (doze mode), and its two
// cost metrics are
//
//   - access latency: packet slots elapsed between the initial probe and
//     query completion, and
//   - tuning time: packets actually received.
//
// Both are reported in bytes (slots x packet capacity), matching the
// paper's evaluation. The package also implements the link-error model of
// paper section 5: every received packet is corrupted independently with
// probability theta. See LossModel for how corruption is applied.
package broadcast

import (
	"fmt"
	"math/rand/v2"
)

// Paper section 4 constants: sizes of the broadcast payload components.
const (
	// ObjectBytes is the size of one data object.
	ObjectBytes = 1024
	// CoordBytes is the size of a two-dimensional coordinate
	// (two 8-byte floating-point numbers).
	CoordBytes = 16
	// HCBytes is the size of a Hilbert-curve value (same total size as a
	// coordinate).
	HCBytes = 16
	// PtrBytes is the size of an index-table or tree-node pointer.
	PtrBytes = 2
	// MCPtrBytes is the size of a multi-channel pointer: a PtrBytes
	// frame pointer widened by a one-byte channel id (see package wire).
	MCPtrBytes = PtrBytes + 1
	// MBRBytes is the size of an R-tree minimum bounding rectangle
	// (four 8-byte floats).
	MBRBytes = 32
)

// Kind classifies a packet slot. Index packets carry navigation
// information; data packets carry object payload.
type Kind uint8

const (
	// KindIndex marks packets carrying index information.
	KindIndex Kind = iota
	// KindData marks packets carrying data-object payload.
	KindData
)

func (k Kind) String() string {
	switch k {
	case KindIndex:
		return "index"
	case KindData:
		return "data"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Slot describes one packet of the broadcast program. Owner and Part are
// interpreted by the index structure that built the program (e.g. frame
// number and packet-within-frame for DSI; node id for tree indexes).
type Slot struct {
	Kind  Kind
	Owner int32
	Part  int32
}

// Program is a cyclic broadcast schedule: Slots repeats forever.
type Program struct {
	Capacity int // packet capacity in bytes
	Slots    []Slot
}

// Len returns the cycle length in packets.
func (p *Program) Len() int { return len(p.Slots) }

// CycleBytes returns the length of one broadcast cycle in bytes.
func (p *Program) CycleBytes() int64 { return int64(p.Len()) * int64(p.Capacity) }

// At returns the slot at the given cycle position.
func (p *Program) At(pos int) Slot { return p.Slots[pos%len(p.Slots)] }

// PacketsFor returns how many packets of the given capacity are needed to
// carry n bytes (at least one packet for any positive n).
func PacketsFor(n, capacity int) int {
	if n <= 0 {
		return 0
	}
	return (n + capacity - 1) / capacity
}

// LossModel decides which received packets are corrupted. Theta is the
// paper's link-error ratio: each packet is lost independently with
// probability Theta.
//
// By default corruption applies to index packets only: the paper's
// reported deterioration magnitudes (Table 1: at most ~62% latency
// deterioration at theta = 0.7) are only consistent with link errors
// affecting navigation, since losing any packet of a 16-packet data
// object with theta = 0.7 would make object retrieval take thousands of
// cycles. Set AffectsData to extend corruption to data packets (clients
// then retry the object on its next broadcast).
type LossModel struct {
	Theta       float64
	AffectsData bool
	rng         *rand.Rand

	// Gilbert-Elliott burst mode (see NewGilbertElliott). When burst is
	// set, Theta holds the stationary loss rate and losses follow the
	// two-state chain instead of the i.i.d. draw.
	burst               bool
	bad                 bool
	pGB, pBG            float64
	thetaGood, thetaBad float64
}

// NewLossModel returns a loss model with the given error ratio and seed.
// Theta outside [0, 1) panics: 1 would mean every packet is lost and no
// query could ever terminate. Construction is cheap (O(1) seeding), so
// simulations can afford a fresh, independently seeded model per query.
func NewLossModel(theta float64, seed int64) *LossModel {
	if theta < 0 || theta >= 1 {
		panic(fmt.Sprintf("broadcast: theta %v outside [0,1)", theta))
	}
	return &LossModel{Theta: theta, rng: rand.New(rand.NewPCG(uint64(seed), 0xda3e39cb94b95bdb))}
}

// Lost reports whether a packet of the given kind is corrupted on
// reception. A nil model never loses packets.
func (l *LossModel) Lost(k Kind) bool {
	if l == nil || l.Theta == 0 {
		return false
	}
	if l.burst {
		return l.lostBurst(k)
	}
	if k == KindData && !l.AffectsData {
		return false
	}
	return l.rng.Float64() < l.Theta
}

// Stats are the cost metrics of one query execution.
type Stats struct {
	// ProbeSlot is the absolute slot at which the client tuned in.
	ProbeSlot int64
	// LatencyPackets is the number of slots elapsed from the initial
	// probe until the query was satisfied.
	LatencyPackets int64
	// TuningPackets is the number of packets the client received
	// (including corrupted ones: the radio was on).
	TuningPackets int64
	// Switches is the number of channel switches the receiver performed
	// (always zero on a single-channel broadcast).
	Switches int64
	// Capacity is the packet capacity used to convert to bytes.
	Capacity int
}

// LatencyBytes returns the access latency in bytes.
func (s Stats) LatencyBytes() int64 { return s.LatencyPackets * int64(s.Capacity) }

// TuningBytes returns the tuning time in bytes.
func (s Stats) TuningBytes() int64 { return s.TuningPackets * int64(s.Capacity) }

func (s Stats) String() string {
	return fmt.Sprintf("latency=%dB tuning=%dB", s.LatencyBytes(), s.TuningBytes())
}

// Tuner is a mobile client's view of the broadcast medium. It tracks an
// absolute packet clock (monotonically increasing across cycles), the
// channel it is tuned to, and the metrics of the current query.
//
// A tuner constructed with NewTuner listens to a classic single
// program; one constructed with NewAirTuner listens to one channel of a
// multi-channel Air and can Switch between channels, paying the air's
// switch cost in latency. On a single-channel air both behave
// identically, packet for packet.
type Tuner struct {
	air      *Air
	prog     *Program // current channel's program
	loss     *LossModel
	chLoss   []*LossModel // optional per-channel override of loss
	ch       int
	startCh  int
	now      int64
	start    int64
	read     int64
	switches int64
	chRead   []int64 // per-channel tuning packets; nil for NewTuner tuners

	// phase[ch] is the absolute slot at which channel ch's cycle has
	// position 0. Nil means every channel is anchored at slot 0 — the
	// classic simulator convention. A broadcast whose schedule was
	// swapped at a cycle seam re-anchors each channel at its cutover
	// slot (see RetunePhased); the phase is a property of the schedule
	// on air, so Reset preserves it.
	phase []int64
}

// NewTuner returns a client tuned in at the given absolute slot of a
// single-channel broadcast. A nil loss model means an error-free
// channel.
func NewTuner(prog *Program, probeSlot int64, loss *LossModel) *Tuner {
	if prog.Len() == 0 {
		panic("broadcast: empty program")
	}
	if probeSlot < 0 {
		panic("broadcast: negative probe slot")
	}
	return &Tuner{prog: prog, loss: loss, now: probeSlot, start: probeSlot}
}

// NewAirTuner returns a client tuned to channel ch of the air at the
// given absolute slot. A nil loss model means error-free channels; use
// SetChannelLoss for per-channel error processes.
func NewAirTuner(air *Air, ch int, probeSlot int64, loss *LossModel) *Tuner {
	if ch < 0 || ch >= len(air.Channels) {
		panic(fmt.Sprintf("broadcast: channel %d outside air of %d", ch, len(air.Channels)))
	}
	if probeSlot < 0 {
		panic("broadcast: negative probe slot")
	}
	return &Tuner{
		air:     air,
		prog:    &air.Channels[ch].Program,
		loss:    loss,
		ch:      ch,
		startCh: ch,
		now:     probeSlot,
		start:   probeSlot,
		chRead:  make([]int64, len(air.Channels)),
	}
}

// Program returns the program of the channel the tuner listens to.
func (t *Tuner) Program() *Program { return t.prog }

// Channel returns the channel the tuner is currently tuned to (0 for a
// single-program tuner).
func (t *Tuner) Channel() int { return t.ch }

// Reset re-tunes the client at the given absolute slot (and, for air
// tuners, its initial channel) with fresh metrics, reusing the tuner:
// after Reset the tuner is indistinguishable from a newly constructed
// one.
func (t *Tuner) Reset(probeSlot int64, loss *LossModel) {
	if probeSlot < 0 {
		panic("broadcast: negative probe slot")
	}
	t.loss = loss
	t.now = probeSlot
	t.start = probeSlot
	t.read = 0
	t.switches = 0
	if t.air != nil {
		t.ch = t.startCh
		t.prog = &t.air.Channels[t.ch].Program
		clear(t.chRead)
		clear(t.chLoss)
	}
}

// Retune points an air tuner at a different air mid-flight, preserving
// the absolute clock, the accumulated metrics, and the channel the
// receiver is tuned to. This models a broadcast schedule swap: the
// carriers are the same physical channels (so no switch cost applies
// and per-channel accounting carries over), but from this slot on they
// transmit the new air's programs. The new air must have the same
// channel count and capacity — a schedule swap cannot retune radios.
func (t *Tuner) Retune(air *Air) {
	if t.air == nil {
		panic("broadcast: Retune on a single-program tuner")
	}
	if len(air.Channels) != len(t.air.Channels) {
		panic(fmt.Sprintf("broadcast: Retune from %d channels to %d", len(t.air.Channels), len(air.Channels)))
	}
	if air.Capacity != t.air.Capacity {
		panic(fmt.Sprintf("broadcast: Retune from capacity %d to %d", t.air.Capacity, air.Capacity))
	}
	t.air = air
	t.prog = &air.Channels[t.ch].Program
	// Plain Retune means slot-0 anchoring: a stale phase from an
	// earlier RetunePhased would skew every position computation
	// against the new air.
	t.phase = nil
}

// RetunePhased is Retune for an air whose channel cycles are not
// anchored at slot 0: phase[ch] is the absolute slot at which channel
// ch's new cycle has position 0. A transmitter that swaps schedules at
// a cycle seam anchors each channel at its cutover slot, so a byte-
// level receiver following the swap must re-anchor the same way or its
// position arithmetic drifts off the air by the seam offset. A nil
// phase re-anchors every channel at slot 0 (the Retune convention).
func (t *Tuner) RetunePhased(air *Air, phase []int64) {
	if phase != nil && len(phase) != len(air.Channels) {
		panic(fmt.Sprintf("broadcast: %d phases for %d channels", len(phase), len(air.Channels)))
	}
	t.Retune(air)
	if phase == nil {
		t.phase = nil
		return
	}
	t.phase = append(t.phase[:0], phase...)
}

// SetChannelLoss installs a per-channel loss model for channel ch,
// overriding the tuner-wide model on that channel. Only air tuners
// support per-channel loss; a channel outside the air panics with a
// clear message rather than corrupting (or silently growing) the
// override table. Reset clears all overrides.
func (t *Tuner) SetChannelLoss(ch int, loss *LossModel) {
	if t.air == nil {
		panic("broadcast: per-channel loss on a single-program tuner")
	}
	if ch < 0 || ch >= len(t.air.Channels) {
		panic(fmt.Sprintf("broadcast: per-channel loss on channel %d outside air of %d", ch, len(t.air.Channels)))
	}
	if t.chLoss == nil {
		t.chLoss = make([]*LossModel, len(t.air.Channels))
	}
	t.chLoss[ch] = loss
}

// Switch retunes the receiver to channel ch. Switching to the current
// channel is free; any other channel costs the air's SwitchSlots slots
// of latency (the radio is retuning, so no packet is received and no
// tuning cost accrues).
func (t *Tuner) Switch(ch int) {
	if ch == t.ch {
		return
	}
	if t.air == nil {
		panic("broadcast: Switch on a single-program tuner")
	}
	if ch < 0 || ch >= len(t.air.Channels) {
		panic(fmt.Sprintf("broadcast: channel %d outside air of %d", ch, len(t.air.Channels)))
	}
	t.ch = ch
	t.prog = &t.air.Channels[ch].Program
	t.now += int64(t.air.SwitchSlots)
	t.switches++
}

// Now returns the absolute packet clock.
func (t *Tuner) Now() int64 { return t.now }

// Pos returns the current position within the broadcast cycle: the slot
// about to be broadcast, which Read would receive. On a phase-anchored
// air (RetunePhased) the position is relative to the current channel's
// anchor slot.
func (t *Tuner) Pos() int {
	l := int64(t.prog.Len())
	if t.phase == nil {
		return int(t.now % l)
	}
	rel := (t.now - t.phase[t.ch]) % l
	if rel < 0 {
		rel += l
	}
	return int(rel)
}

// PhaseOf returns the absolute slot at which channel ch's current cycle
// has position 0 (always 0 for airs anchored the classic way).
func (t *Tuner) PhaseOf(ch int) int64 {
	if t.phase == nil {
		return 0
	}
	return t.phase[ch]
}

// Read receives the packet at the current slot of the current channel.
// It advances the clock by one slot and accounts one packet of tuning
// time. The returned slot describes the packet; ok is false when the
// packet was corrupted by the loss model (its content must not be used,
// but the cost is still paid).
func (t *Tuner) Read() (s Slot, ok bool) {
	s = t.prog.At(t.Pos())
	t.now++
	t.read++
	loss := t.loss
	if t.chRead != nil {
		t.chRead[t.ch]++
		if t.chLoss != nil && t.chLoss[t.ch] != nil {
			loss = t.chLoss[t.ch]
		}
	}
	return s, !loss.Lost(s.Kind)
}

// Doze advances the clock by n slots without receiving anything (the
// client sleeps). Negative n panics.
func (t *Tuner) Doze(n int64) {
	if n < 0 {
		panic("broadcast: Doze with negative duration")
	}
	t.now += n
}

// DozeUntil advances the clock to the absolute slot abs. Rewinding
// panics: broadcast time only moves forward.
func (t *Tuner) DozeUntil(abs int64) {
	if abs < t.now {
		panic(fmt.Sprintf("broadcast: DozeUntil(%d) before now=%d", abs, t.now))
	}
	t.now = abs
}

// NextOccurrence returns the earliest absolute slot >= now whose cycle
// position (under the current channel's phase anchor) equals pos.
func (t *Tuner) NextOccurrence(pos int) int64 {
	l := t.prog.Len()
	if pos < 0 || pos >= l {
		panic(fmt.Sprintf("broadcast: position %d outside cycle of %d", pos, l))
	}
	delta := pos - t.Pos()
	if delta < 0 {
		delta += l
	}
	return t.now + int64(delta)
}

// DozeUntilPos advances the clock to the next occurrence of the given
// cycle position (possibly zero slots if the client is already there).
func (t *Tuner) DozeUntilPos(pos int) {
	t.DozeUntil(t.NextOccurrence(pos))
}

// Stats returns the metrics accumulated so far. Latency counts the slots
// from the probe up to (and including) the last slot consumed, including
// slots spent retuning between channels.
func (t *Tuner) Stats() Stats {
	return Stats{
		ProbeSlot:      t.start,
		LatencyPackets: t.now - t.start,
		TuningPackets:  t.read,
		Switches:       t.switches,
		Capacity:       t.prog.Capacity,
	}
}

// ChannelTuning returns the tuning packets received per channel (nil
// for single-program tuners, whose whole tuning is on channel 0). The
// returned slice is the tuner's accounting state: callers must not
// modify it, and Reset clears it.
func (t *Tuner) ChannelTuning() []int64 { return t.chRead }

// NextOccurrence returns the earliest absolute slot >= now whose position
// within a cycle of length cycleLen equals pos.
func NextOccurrence(now int64, pos, cycleLen int) int64 {
	if pos < 0 || pos >= cycleLen {
		panic(fmt.Sprintf("broadcast: position %d outside cycle of %d", pos, cycleLen))
	}
	cur := int(now % int64(cycleLen))
	delta := pos - cur
	if delta < 0 {
		delta += cycleLen
	}
	return now + int64(delta)
}

package broadcast

import "fmt"

// Channel is one physical broadcast channel: a cyclic program with a
// stable identity inside an Air. Channels of one Air share a global
// slot clock but cycle independently (their programs may have different
// lengths).
type Channel struct {
	ID int
	Program
}

// Air is a multi-channel broadcast medium: N channels transmitting in
// parallel on a common slot clock. A receiver listens to one channel at
// a time and pays SwitchSlots slots of latency (but no tuning cost: the
// radio is retuning, not receiving) whenever it changes channels.
//
// All channels must share one packet capacity so the slot clock has a
// single byte rate; per-channel cycle lengths are free. A single-channel
// Air with zero switch cost is exactly the classic single program — the
// degenerate case the rest of the stack reduces to at N = 1.
type Air struct {
	// Capacity is the packet capacity common to every channel.
	Capacity int
	// SwitchSlots is the slot cost a receiver pays to retune from one
	// channel to another.
	SwitchSlots int
	// Channels are the parallel programs; Channels[i].ID == i.
	Channels []*Channel
}

// NewAir assembles channels into an air. It validates that at least one
// channel exists, that every channel is non-empty, and that all
// capacities agree (the slot clock needs a single byte rate).
func NewAir(switchSlots int, chans ...*Channel) (*Air, error) {
	if len(chans) == 0 {
		return nil, fmt.Errorf("broadcast: air needs at least one channel")
	}
	if switchSlots < 0 {
		return nil, fmt.Errorf("broadcast: negative switch cost %d", switchSlots)
	}
	cap0 := chans[0].Capacity
	for i, ch := range chans {
		if ch.Len() == 0 {
			return nil, fmt.Errorf("broadcast: channel %d is empty", i)
		}
		if ch.Capacity != cap0 {
			return nil, fmt.Errorf("broadcast: channel %d capacity %d != channel 0 capacity %d",
				i, ch.Capacity, cap0)
		}
		ch.ID = i
	}
	return &Air{Capacity: cap0, SwitchSlots: switchSlots, Channels: chans}, nil
}

// SingleAir wraps a classic single program as a one-channel air with
// zero switch cost. The channel shares the program's slot slice.
func SingleAir(p *Program) *Air {
	return &Air{
		Capacity:    p.Capacity,
		Channels:    []*Channel{{ID: 0, Program: *p}},
		SwitchSlots: 0,
	}
}

// NumChannels returns the number of parallel channels.
func (a *Air) NumChannels() int { return len(a.Channels) }

// Channel returns channel i.
func (a *Air) Channel(i int) *Channel { return a.Channels[i] }

func (a *Air) String() string {
	return fmt.Sprintf("Air{N=%d C=%d switch=%d}", len(a.Channels), a.Capacity, a.SwitchSlots)
}

package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

func TestFanoutFor(t *testing.T) {
	cases := []struct{ c, want int }{
		{32, 0}, // the paper's limitation: no R-tree at 32-byte packets
		{33, 0},
		{64, 2}, // one entry per packet: bump to fanout 2, node spans 2 packets
		{68, 2},
		{128, 3},
		{256, 7},
		{512, 15},
	}
	for _, tc := range cases {
		if got := FanoutFor(tc.c); got != tc.want {
			t.Errorf("FanoutFor(%d) = %d, want %d", tc.c, got, tc.want)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	ds := dataset.Uniform(10, 5, 1)
	if _, err := Build(ds, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
	if _, err := Build(&dataset.Dataset{Curve: ds.Curve}, 3); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := BuildForCapacity(ds, 32); err == nil {
		t.Error("32-byte capacity must be rejected")
	}
}

func TestStructureInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 5, 100, 1000} {
		for _, fanout := range []int{2, 3, 7, 15} {
			ds := dataset.Uniform(n, 6, int64(n+fanout))
			tr, err := Build(ds, fanout)
			if err != nil {
				t.Fatalf("n=%d f=%d: %v", n, fanout, err)
			}
			if len(tr.Levels[tr.Height()-1]) != 1 {
				t.Fatalf("n=%d f=%d: no single root", n, fanout)
			}
			seen := make(map[int]bool)
			for li, level := range tr.Levels {
				for _, node := range level {
					if node.Level != li {
						t.Fatal("level mismatch")
					}
					if len(node.MBRs) == 0 || len(node.MBRs) > fanout {
						t.Fatalf("node entry count %d out of [1,%d]", len(node.MBRs), fanout)
					}
					// Node MBR must cover all entry MBRs exactly.
					cover := node.MBRs[0]
					for _, m := range node.MBRs[1:] {
						cover = cover.Union(m)
					}
					if cover != node.MBR {
						t.Fatal("node MBR is not the union of entries")
					}
					if li == 0 {
						for _, id := range node.Objects {
							if seen[id] {
								t.Fatalf("object %d in two leaves", id)
							}
							seen[id] = true
						}
					} else {
						for i, c := range node.Children {
							child := tr.Node(c)
							if child.MBR != node.MBRs[i] {
								t.Fatal("child MBR mismatch")
							}
							if child.Level != li-1 {
								t.Fatal("child level mismatch")
							}
						}
					}
				}
			}
			if len(seen) != n {
				t.Fatalf("leaves cover %d objects, want %d", len(seen), n)
			}
		}
	}
}

func TestLeafEntriesArePoints(t *testing.T) {
	ds := dataset.Uniform(200, 6, 3)
	tr, _ := Build(ds, 7)
	for _, leaf := range tr.Levels[0] {
		for i, id := range leaf.Objects {
			p := ds.ByID(id).P
			want := spatial.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}
			if leaf.MBRs[i] != want {
				t.Fatalf("leaf entry MBR %v does not match object point %v", leaf.MBRs[i], p)
			}
		}
	}
}

func TestWindowMatchesBruteForce(t *testing.T) {
	ds := dataset.Uniform(500, 6, 5)
	tr, _ := Build(ds, 7)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		w := spatial.ClampedWindow(uint32(rng.Intn(64)), uint32(rng.Intn(64)),
			uint32(rng.Intn(30)+1), 64)
		got := tr.Window(w)
		want := ds.WindowBrute(w)
		if len(got) != len(want) {
			t.Fatalf("window %v: %d objects, want %d", w, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("window %v mismatch at %d", w, j)
			}
		}
	}
}

func TestLeafOrderObjectsCoversAll(t *testing.T) {
	ds := dataset.Uniform(300, 6, 9)
	tr, _ := Build(ds, 7)
	objs := tr.LeafOrderObjects()
	if len(objs) != 300 {
		t.Fatalf("LeafOrderObjects returned %d", len(objs))
	}
	sorted := append([]int(nil), objs...)
	sort.Ints(sorted)
	for i, id := range sorted {
		if id != i {
			t.Fatalf("missing object %d", i)
		}
	}
}

func TestSTRSpatialLocality(t *testing.T) {
	// STR packing should produce leaves with small MBRs: the average
	// leaf MBR area must be a small fraction of the grid.
	ds := dataset.Uniform(1000, 7, 11)
	tr, _ := Build(ds, 7)
	var total float64
	for _, leaf := range tr.Levels[0] {
		total += float64(leaf.MBR.Area())
	}
	avg := total / float64(len(tr.Levels[0]))
	grid := float64(uint64(128) * 128)
	if avg > grid/50 {
		t.Errorf("average leaf MBR area %v too large (grid %v)", avg, grid)
	}
}

func TestNodeBytesFitsCapacity(t *testing.T) {
	ds := dataset.Uniform(100, 6, 13)
	for _, c := range []int{68, 128, 256, 512} {
		tr, err := BuildForCapacity(ds, c)
		if err != nil {
			t.Fatalf("capacity %d: %v", c, err)
		}
		if tr.NodeBytes() > c {
			t.Errorf("capacity %d: node %dB overflows", c, tr.NodeBytes())
		}
	}
}

func TestSingleObjectTree(t *testing.T) {
	ds := dataset.Uniform(1, 5, 1)
	tr, err := Build(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Height() != 1 || tr.NodeCount() != 1 {
		t.Errorf("single-object tree: height %d, nodes %d", tr.Height(), tr.NodeCount())
	}
	w := spatial.Rect{MinX: 0, MinY: 0, MaxX: 31, MaxY: 31}
	if got := tr.Window(w); len(got) != 1 {
		t.Errorf("window on single-object tree: %v", got)
	}
}

// TestBuildSharesDatasetCacheSafely: builds at different capacities on
// one dataset (sharing its cached x-order) must equal builds on fresh
// datasets of the same seed, node for node.
func TestBuildSharesDatasetCacheSafely(t *testing.T) {
	shared := dataset.Uniform(400, 8, 77)
	for _, capacity := range []int{64, 128, 512} {
		fresh := dataset.Uniform(400, 8, 77)
		a, err := BuildForCapacity(shared, capacity)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BuildForCapacity(fresh, capacity)
		if err != nil {
			t.Fatal(err)
		}
		if a.Height() != b.Height() || len(a.Levels[0]) != len(b.Levels[0]) {
			t.Fatalf("capacity %d: shapes differ", capacity)
		}
		for li := range a.Levels {
			for ni := range a.Levels[li] {
				na, nb := a.Levels[li][ni], b.Levels[li][ni]
				if na.MBR != nb.MBR || len(na.Objects) != len(nb.Objects) || len(na.Children) != len(nb.Children) {
					t.Fatalf("capacity %d: level %d node %d differs", capacity, li, ni)
				}
				for i := range na.Objects {
					if na.Objects[i] != nb.Objects[i] {
						t.Fatalf("capacity %d: level %d node %d object %d differs", capacity, li, ni, i)
					}
				}
			}
		}
	}
}

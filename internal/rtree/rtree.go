// Package rtree implements an STR-packed R-tree over point data, the
// second baseline the paper compares DSI against.
//
// Because the broadcast data set is known a priori, the tree is bulk
// loaded with the Sort-Tile-Recursive packing of Leutenegger et al.
// (ICDE 1997), which the paper uses "to provide an optimal performance".
// Nodes are packed so one node fits in one broadcast packet: each entry
// needs an MBR (32 bytes) plus a pointer (2 bytes), so the fanout is
// floor(capacity / 34). A 32-byte packet therefore cannot hold an R-tree
// node at all — the limitation the paper notes in section 4.
package rtree

import (
	"fmt"
	"math"
	"sort"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

// EntryBytes is the size of one node entry: an MBR plus a pointer.
const EntryBytes = broadcast.MBRBytes + broadcast.PtrBytes

// FanoutFor returns the node fanout for the given packet capacity. A
// packet that cannot even hold one entry makes the R-tree infeasible
// (returns 0) — the paper's 32-byte limitation. When a packet holds
// only one entry, nodes span two packets with the minimum useful fanout
// of two (the paper evaluates R-tree at 64-byte packets, where a
// one-entry node would be degenerate).
func FanoutFor(capacity int) int {
	if capacity < EntryBytes {
		return 0
	}
	f := capacity / EntryBytes
	if f < 2 {
		f = 2
	}
	return f
}

// Node is one R-tree node. Leaves (Level 0) reference objects; internal
// nodes reference child nodes. Entry i covers MBRs[i]: for leaves that
// is the object's point, for internal nodes the child's MBR.
type Node struct {
	ID       int
	Level    int
	MBR      spatial.Rect
	MBRs     []spatial.Rect
	Children []int // internal: child node IDs
	Objects  []int // leaves: object IDs
}

// Tree is a bulk-loaded R-tree. Node IDs are dense, assigned level by
// level from the leaves up, left to right.
type Tree struct {
	Fanout int
	Levels [][]*Node // Levels[0] = leaves
	nodes  []*Node
}

// Build packs the dataset's objects into an R-tree with the given
// fanout using STR.
func Build(ds *dataset.Dataset, fanout int) (*Tree, error) {
	if fanout < 2 {
		return nil, fmt.Errorf("rtree: fanout %d < 2", fanout)
	}
	if ds.N() == 0 {
		return nil, fmt.Errorf("rtree: empty dataset")
	}
	t := &Tree{Fanout: fanout}

	type item struct {
		mbr spatial.Rect
		ref int // object ID at leaf build, node ID above
	}
	// The leaf level starts from the dataset's cached x-sorted order:
	// that first STR pass is capacity-independent, so sharing it across
	// builds at different capacities costs nothing and changes nothing
	// (the cache applies the identical sort).
	items := make([]item, ds.N())
	for i, id := range ds.XOrder() {
		o := ds.Objects[id]
		items[i] = item{mbr: spatial.Rect{MinX: o.P.X, MinY: o.P.Y, MaxX: o.P.X, MaxY: o.P.Y}, ref: o.ID}
	}

	level := 0
	for {
		// STR tiling: sort by center x, cut into vertical slabs, sort
		// each slab by center y, pack runs of `fanout`.
		nGroups := (len(items) + fanout - 1) / fanout
		slabs := int(math.Ceil(math.Sqrt(float64(nGroups))))
		perSlab := slabs * fanout
		// Comparators are total orders (ties broken by ref) so the
		// packing is a pure function of the item set: the in-memory
		// sort here and the external merge sort of the out-of-core
		// build produce the identical tree.
		if level > 0 {
			sort.Slice(items, func(i, j int) bool {
				xi, _ := items[i].mbr.Center()
				xj, _ := items[j].mbr.Center()
				if xi != xj {
					return xi < xj
				}
				return items[i].ref < items[j].ref
			})
		}
		var nodes []*Node
		for s := 0; s < len(items); s += perSlab {
			end := s + perSlab
			if end > len(items) {
				end = len(items)
			}
			slab := items[s:end]
			sort.Slice(slab, func(i, j int) bool {
				_, yi := slab[i].mbr.Center()
				_, yj := slab[j].mbr.Center()
				if yi != yj {
					return yi < yj
				}
				return slab[i].ref < slab[j].ref
			})
			for g := 0; g < len(slab); g += fanout {
				ge := g + fanout
				if ge > len(slab) {
					ge = len(slab)
				}
				n := &Node{Level: level}
				for _, it := range slab[g:ge] {
					n.MBRs = append(n.MBRs, it.mbr)
					if level == 0 {
						n.Objects = append(n.Objects, it.ref)
					} else {
						n.Children = append(n.Children, it.ref)
					}
				}
				n.MBR = n.MBRs[0]
				for _, m := range n.MBRs[1:] {
					n.MBR = n.MBR.Union(m)
				}
				nodes = append(nodes, n)
			}
		}
		t.Levels = append(t.Levels, nodes)
		if len(nodes) == 1 {
			break
		}
		items = items[:0]
		for _, n := range nodes {
			items = append(items, item{mbr: n.MBR, ref: len(t.Levels)}) // ref fixed below
		}
		// refs for the next level are indices into this level; record
		// them as positions, converted to IDs after ID assignment.
		for i := range items {
			items[i].ref = i
		}
		level++
	}

	// Assign dense IDs and convert child position references to IDs.
	for _, lvl := range t.Levels {
		for _, n := range lvl {
			n.ID = len(t.nodes)
			t.nodes = append(t.nodes, n)
		}
	}
	for li := 1; li < len(t.Levels); li++ {
		for _, n := range t.Levels[li] {
			for i, pos := range n.Children {
				n.Children[i] = t.Levels[li-1][pos].ID
			}
		}
	}
	return t, nil
}

// BuildForCapacity builds the tree with the fanout implied by the packet
// capacity (an error at 32 bytes, matching the paper).
func BuildForCapacity(ds *dataset.Dataset, capacity int) (*Tree, error) {
	f := FanoutFor(capacity)
	if f == 0 {
		return nil, fmt.Errorf("rtree: capacity %d cannot hold an R-tree node (needs %d bytes per entry)",
			capacity, EntryBytes)
	}
	return Build(ds, f)
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.Levels[len(t.Levels)-1][0] }

// Height returns the number of levels.
func (t *Tree) Height() int { return len(t.Levels) }

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int { return len(t.nodes) }

// Node returns the node with the given ID.
func (t *Tree) Node(id int) *Node { return t.nodes[id] }

// Window returns the object IDs inside w (in-memory search, used as the
// reference for the on-air search and by tests).
func (t *Tree) Window(w spatial.Rect) []int {
	var out []int
	var walk func(n *Node)
	walk = func(n *Node) {
		if !n.MBR.Intersects(w) {
			return
		}
		if n.Level == 0 {
			for i, m := range n.MBRs {
				if w.Intersects(m) {
					out = append(out, n.Objects[i])
				}
			}
			return
		}
		for i, c := range n.Children {
			if w.Intersects(n.MBRs[i]) {
				walk(t.nodes[c])
			}
		}
	}
	walk(t.Root())
	sort.Ints(out)
	return out
}

// NodeBytes returns the payload size of the largest node.
func (t *Tree) NodeBytes() int { return t.Fanout * EntryBytes }

// LeafOrderObjects returns all object IDs in leaf (broadcast) order:
// the order in which the on-air layout schedules the data.
func (t *Tree) LeafOrderObjects() []int {
	var out []int
	for _, leaf := range t.Levels[0] {
		out = append(out, leaf.Objects...)
	}
	return out
}

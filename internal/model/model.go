// Package model provides closed-form cost expectations for a DSI
// broadcast: cycle length, index overhead, and the expected cost of
// energy-efficient forwarding. The formulas support design-space
// exploration (choosing capacity, object factor, and index base)
// without simulation, and the tests validate them against the
// simulator within tolerance — a consistency check between the
// implementation and the paper's analytical intuition that forwarding
// is "logically like a binary search".
package model

import (
	"math"

	"dsi/internal/dsi"
)

// DSICost summarizes the expected costs of a DSI broadcast.
type DSICost struct {
	// CyclePackets is the broadcast cycle length in packets.
	CyclePackets int
	// CycleBytes is the cycle length in bytes.
	CycleBytes int64
	// IndexOverhead is the fraction of the cycle spent on index tables.
	IndexOverhead float64
	// ExpEEFTables is the expected number of index tables a point query
	// reads on the original (m=1) broadcast, assuming a uniformly
	// distributed target: one initial table plus the expected digit sum
	// of the forward distance written in base r (each hop follows the
	// largest useful entry, so a distance D = sum d_i r^i costs
	// sum d_i hops).
	ExpEEFTables float64
	// ExpPointLatencyPackets is the expected access latency of a point
	// query in packets: half a frame to sync after the probe, half a
	// cycle of expected travel, plus the target frame itself.
	ExpPointLatencyPackets float64
	// ExpPointTuningPackets is the expected tuning time of a point
	// query in packets: the probe, the tables read while forwarding,
	// and the object's packets.
	ExpPointTuningPackets float64
}

// AnalyzeDSI computes the cost model of a built index.
func AnalyzeDSI(x *dsi.Index) DSICost {
	var c DSICost
	c.CyclePackets = x.Prog.Len()
	c.CycleBytes = x.CycleBytes()
	c.IndexOverhead = float64(x.NF*x.TablePackets) / float64(c.CyclePackets)
	c.ExpEEFTables = 1 + expDigitSum(x.NF, x.Base, x.E)
	c.ExpPointLatencyPackets = float64(x.FramePackets)/2 +
		float64(c.CyclePackets)/2 + float64(x.FramePackets)
	c.ExpPointTuningPackets = 1 + c.ExpEEFTables*float64(x.TablePackets) +
		float64(x.ObjPackets) + headerScanCost(x)
	return c
}

// expDigitSum returns the expected digit sum of a uniform distance in
// [0, nf) written in base r with at most e digits. Digits above the
// e-th cannot be expressed by a single entry and cost one hop per r^e
// span (the client re-reads a table every r^(e-1) frames at most); for
// the coverage-complete sizings used here, r^e >= nf and the plain
// digit-sum expectation applies.
func expDigitSum(nf, r, e int) float64 {
	if nf <= 1 {
		return 0
	}
	span := math.Pow(float64(r), float64(e))
	digits := float64(e)
	if span < float64(nf) {
		// Truncated coverage: the residual distance is walked in
		// full-span hops.
		extra := float64(nf) / span / 2
		return digits*float64(r-1)/2 + extra
	}
	// Expected number of base-r digits of a uniform value in [0, nf).
	digits = math.Log(float64(nf)) / math.Log(float64(r))
	return digits * float64(r-1) / 2
}

// headerScanCost estimates the extra header packets a point query reads
// inside a multi-object frame: half the frame's objects on average.
func headerScanCost(x *dsi.Index) float64 {
	if x.NO <= 1 {
		return 0
	}
	return float64(x.NO) / 2
}

// LayoutCost summarizes a distributed tree layout analytically (the
// quantities air.BuildLayout optimizes over).
type LayoutCost struct {
	CyclePackets  int
	IndexOverhead float64
	// ProbeWaitPackets is the expected wait for the next index segment.
	ProbeWaitPackets float64
}

// AnalyzeLayout computes layout-level costs from first principles.
func AnalyzeLayout(cyclePackets, indexPackets, segments int) LayoutCost {
	return LayoutCost{
		CyclePackets:     cyclePackets,
		IndexOverhead:    float64(indexPackets) / float64(cyclePackets),
		ProbeWaitPackets: float64(cyclePackets) / float64(2*segments),
	}
}

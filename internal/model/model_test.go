package model

import (
	"math"
	"math/rand"
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
)

func TestCycleAccounting(t *testing.T) {
	ds := dataset.Uniform(500, 6, 1)
	for _, cfg := range []dsi.Config{{}, {Capacity: 512}, {Sizing: dsi.SizingUnitFactor}} {
		x, err := dsi.Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := AnalyzeDSI(x)
		if c.CyclePackets != x.Prog.Len() {
			t.Errorf("cfg %+v: cycle %d != %d", cfg, c.CyclePackets, x.Prog.Len())
		}
		if c.CycleBytes != x.CycleBytes() {
			t.Errorf("cfg %+v: cycle bytes mismatch", cfg)
		}
		wantOverhead := float64(x.IndexOverheadBytes()) / float64(x.CycleBytes())
		if math.Abs(c.IndexOverhead-wantOverhead) > 1e-9 {
			t.Errorf("cfg %+v: overhead %v != %v", cfg, c.IndexOverhead, wantOverhead)
		}
	}
}

// measurePoint runs point queries for existing objects and returns the
// average latency and tuning in packets.
func measurePoint(x *dsi.Index, ds *dataset.Dataset, trials int, seed int64) (lat, tun float64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < trials; i++ {
		o := ds.Objects[rng.Intn(ds.N())]
		c := dsi.NewClient(x, rng.Int63n(int64(x.Prog.Len())), nil)
		_, _, st := c.EEF(o.HC)
		lat += float64(st.LatencyPackets)
		tun += float64(st.TuningPackets)
	}
	return lat / float64(trials), tun / float64(trials)
}

func TestPointLatencyModelWithinTolerance(t *testing.T) {
	ds := dataset.Uniform(2000, 7, 3)
	for _, cfg := range []dsi.Config{{}, {Capacity: 256}, {Sizing: dsi.SizingUnitFactor}} {
		x, err := dsi.Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := AnalyzeDSI(x)
		lat, _ := measurePoint(x, ds, 150, 7)
		if ratio := lat / c.ExpPointLatencyPackets; ratio < 0.75 || ratio > 1.25 {
			t.Errorf("cfg %+v: measured latency %.0f vs model %.0f (ratio %.2f)",
				cfg, lat, c.ExpPointLatencyPackets, ratio)
		}
	}
}

func TestPointTuningModelWithinTolerance(t *testing.T) {
	// The tuning model captures forwarding cost; validate on the
	// full-coverage base-2 sizing where the digit-sum argument is
	// exact, and on the auto sizing (large base).
	ds := dataset.Uniform(2000, 7, 5)
	for _, cfg := range []dsi.Config{{Sizing: dsi.SizingUnitFactor}, {}} {
		x, err := dsi.Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c := AnalyzeDSI(x)
		_, tun := measurePoint(x, ds, 150, 9)
		if ratio := tun / c.ExpPointTuningPackets; ratio < 0.4 || ratio > 2.5 {
			t.Errorf("cfg %+v: measured tuning %.1f vs model %.1f (ratio %.2f)",
				cfg, tun, c.ExpPointTuningPackets, ratio)
		}
	}
}

func TestExpDigitSum(t *testing.T) {
	// Base 2: digits are bits; expected bit count of a uniform value in
	// [0, 2^k) times 1/2.
	got := expDigitSum(1024, 2, 10)
	want := 10.0 / 2 // log2(1024) bits, each set with probability 1/2
	if math.Abs(got-want) > 0.1 {
		t.Errorf("expDigitSum(1024,2,10) = %v, want ~%v", got, want)
	}
	// Degenerate cases.
	if expDigitSum(1, 2, 4) != 0 {
		t.Error("single frame needs no forwarding")
	}
	// Truncated coverage costs more than complete coverage.
	if expDigitSum(1024, 2, 5) <= expDigitSum(1024, 2, 10) {
		t.Error("truncated coverage must cost extra hops")
	}
}

func TestExpDigitSumMatchesBruteForce(t *testing.T) {
	// Exact check: average digit sum over all distances in [0, nf).
	for _, tc := range []struct{ nf, r, e int }{{256, 2, 8}, {625, 5, 4}, {100, 10, 2}} {
		var sum float64
		for d := 0; d < tc.nf; d++ {
			v := d
			for v > 0 {
				sum += float64(v % tc.r)
				v /= tc.r
			}
		}
		brute := sum / float64(tc.nf)
		model := expDigitSum(tc.nf, tc.r, tc.e)
		if math.Abs(model-brute)/brute > 0.15 {
			t.Errorf("nf=%d r=%d: model %v vs brute %v", tc.nf, tc.r, model, brute)
		}
	}
}

func TestAnalyzeLayout(t *testing.T) {
	c := AnalyzeLayout(10000, 500, 20)
	if c.IndexOverhead != 0.05 {
		t.Errorf("overhead = %v", c.IndexOverhead)
	}
	if c.ProbeWaitPackets != 250 {
		t.Errorf("probe wait = %v", c.ProbeWaitPackets)
	}
}

func TestHeaderScanCost(t *testing.T) {
	ds := dataset.Uniform(500, 6, 11)
	x, err := dsi.Build(ds, dsi.Config{Sizing: dsi.SizingPaperTable, Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if x.NO <= 1 {
		t.Skip("need multi-object frames")
	}
	if got := headerScanCost(x); got != float64(x.NO)/2 {
		t.Errorf("headerScanCost = %v", got)
	}
	x2, _ := dsi.Build(ds, dsi.Config{})
	if x2.NO == 1 && headerScanCost(x2) != 0 {
		t.Error("unit factor must have no scan cost")
	}
}

package spatial

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if got := a.Dist(b); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if a.Dist(a) != 0 {
		t.Error("self distance nonzero")
	}
}

func TestDistSymmetricQuick(t *testing.T) {
	f := func(ax, ay, bx, by uint16) bool {
		a := Point{uint32(ax), uint32(ay)}
		b := Point{uint32(bx), uint32(by)}
		return a.Dist2(b) == b.Dist2(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Point{9, 2}, Point{3, 8})
	want := Rect{MinX: 3, MinY: 2, MaxX: 9, MaxY: 8}
	if r != want {
		t.Errorf("NewRect = %v, want %v", r, want)
	}
	if !r.Valid() {
		t.Error("normalized rect not valid")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{MinX: 2, MinY: 3, MaxX: 5, MaxY: 7}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{2, 3}, true},
		{Point{5, 7}, true},
		{Point{3, 5}, true},
		{Point{1, 5}, false},
		{Point{6, 5}, false},
		{Point{3, 2}, false},
		{Point{3, 8}, false},
	}
	for _, tc := range cases {
		if got := r.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	r := Rect{MinX: 2, MinY: 2, MaxX: 5, MaxY: 5}
	cases := []struct {
		o    Rect
		want bool
	}{
		{Rect{0, 0, 1, 1}, false},
		{Rect{0, 0, 2, 2}, true}, // corner touch counts (inclusive bounds)
		{Rect{5, 5, 9, 9}, true},
		{Rect{6, 2, 8, 5}, false},
		{Rect{3, 3, 4, 4}, true},
		{Rect{0, 0, 9, 9}, true},
	}
	for _, tc := range cases {
		if got := r.Intersects(tc.o); got != tc.want {
			t.Errorf("Intersects(%v) = %v, want %v", tc.o, got, tc.want)
		}
		if got := tc.o.Intersects(r); got != tc.want {
			t.Errorf("Intersects not symmetric for %v", tc.o)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}
	if !r.ContainsRect(Rect{2, 2, 5, 5}) {
		t.Error("inner rect not contained")
	}
	if !r.ContainsRect(r) {
		t.Error("rect must contain itself")
	}
	if r.ContainsRect(Rect{2, 2, 11, 5}) {
		t.Error("overflowing rect contained")
	}
}

func TestRectUnionExpandArea(t *testing.T) {
	a := Rect{MinX: 2, MinY: 2, MaxX: 4, MaxY: 4}
	b := Rect{MinX: 6, MinY: 1, MaxX: 7, MaxY: 3}
	u := a.Union(b)
	want := Rect{MinX: 2, MinY: 1, MaxX: 7, MaxY: 4}
	if u != want {
		t.Errorf("Union = %v, want %v", u, want)
	}
	if got := u.Area(); got != 6*4 {
		t.Errorf("Area = %d, want 24", got)
	}
	e := a.Expand(Point{0, 9})
	if e != (Rect{MinX: 0, MinY: 2, MaxX: 4, MaxY: 9}) {
		t.Errorf("Expand = %v", e)
	}
	if got := a.Width(); got != 3 {
		t.Errorf("Width = %d, want 3", got)
	}
	if got := a.Height(); got != 3 {
		t.Errorf("Height = %d, want 3", got)
	}
}

func TestRectCenter(t *testing.T) {
	r := Rect{MinX: 2, MinY: 0, MaxX: 4, MaxY: 5}
	x, y := r.Center()
	if x != 3 || y != 2.5 {
		t.Errorf("Center = (%v,%v), want (3,2.5)", x, y)
	}
}

func TestRectMinMaxDist(t *testing.T) {
	r := Rect{MinX: 2, MinY: 2, MaxX: 4, MaxY: 4}
	cases := []struct {
		p        Point
		min, max float64
	}{
		{Point{3, 3}, 0, math.Sqrt2},           // inside: farthest corner is one diagonal step away
		{Point{0, 3}, 2, 0},                    // left of rect
		{Point{6, 6}, math.Sqrt(8), 0},         // diagonal away
		{Point{3, 0}, 2, 0},                    // below
		{Point{2, 2}, 0, math.Sqrt(4 + 4)},     // on corner
		{Point{10, 2}, 6, math.Sqrt(64 + 2*2)}, // far right
	}
	for _, tc := range cases {
		if got := r.MinDist(tc.p); math.Abs(got-tc.min) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", tc.p, got, tc.min)
		}
		if tc.max != 0 {
			if got := math.Sqrt(r.MaxDist2(tc.p)); math.Abs(got-tc.max) > 1e-12 {
				t.Errorf("MaxDist(%v) = %v, want %v", tc.p, got, tc.max)
			}
		}
	}
}

func TestMinDistLEMaxDistQuick(t *testing.T) {
	f := func(px, py, ax, ay, bx, by uint16) bool {
		r := NewRect(Point{uint32(ax), uint32(ay)}, Point{uint32(bx), uint32(by)})
		p := Point{uint32(px), uint32(py)}
		return r.MinDist2(p) <= r.MaxDist2(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMinDistZeroInsideQuick(t *testing.T) {
	f := func(px, py, ax, ay, bx, by uint16) bool {
		r := NewRect(Point{uint32(ax), uint32(ay)}, Point{uint32(bx), uint32(by)})
		p := Point{uint32(px), uint32(py)}
		if r.Contains(p) {
			return r.MinDist2(p) == 0
		}
		return r.MinDist2(p) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClampedWindow(t *testing.T) {
	cases := []struct {
		x, y, win, grid uint32
		want            Rect
	}{
		{10, 10, 5, 64, Rect{10, 10, 14, 14}},
		{62, 62, 5, 64, Rect{59, 59, 63, 63}}, // clamped at far edge
		{0, 0, 0, 64, Rect{0, 0, 0, 0}},       // zero side becomes 1
		{0, 0, 100, 64, Rect{0, 0, 63, 63}},   // side larger than grid
	}
	for _, tc := range cases {
		got := ClampedWindow(tc.x, tc.y, tc.win, tc.grid)
		if got != tc.want {
			t.Errorf("ClampedWindow(%d,%d,%d,%d) = %v, want %v",
				tc.x, tc.y, tc.win, tc.grid, got, tc.want)
		}
	}
}

func TestClampedWindowAlwaysInGridQuick(t *testing.T) {
	f := func(x, y uint16, win uint8) bool {
		const grid = 256
		r := ClampedWindow(uint32(x), uint32(y), uint32(win), grid)
		return r.Valid() && r.MaxX < grid && r.MaxY < grid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiskContains(t *testing.T) {
	d := Disk{CX: 5, CY: 5, R: 2}
	if !d.Contains(Point{5, 7}) {
		t.Error("point at exactly R not contained (disk must be closed)")
	}
	if d.Contains(Point{5, 8}) {
		t.Error("point beyond R contained")
	}
	if !d.Contains(Point{5, 5}) {
		t.Error("center not contained")
	}
}

func TestDiskBoundingRect(t *testing.T) {
	d := Disk{CX: 5, CY: 5, R: 2.5}
	r := d.BoundingRect(64)
	want := Rect{MinX: 3, MinY: 3, MaxX: 7, MaxY: 7}
	if r != want {
		t.Errorf("BoundingRect = %v, want %v", r, want)
	}
	// Near the grid edge the rect clamps.
	d = Disk{CX: 1, CY: 62, R: 5}
	r = d.BoundingRect(64)
	want = Rect{MinX: 0, MinY: 57, MaxX: 6, MaxY: 63}
	if r != want {
		t.Errorf("clamped BoundingRect = %v, want %v", r, want)
	}
}

func TestDiskBoundingRectCoversDiskQuick(t *testing.T) {
	const grid = 128
	f := func(cx, cy uint8, r uint8, px, py uint8) bool {
		d := Disk{CX: float64(cx % grid), CY: float64(cy % grid), R: float64(r%32) + 0.5}
		p := Point{uint32(px) % grid, uint32(py) % grid}
		if d.Contains(p) {
			return d.BoundingRect(grid).Contains(p)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestStringers(t *testing.T) {
	if got := (Point{1, 2}).String(); got != "(1,2)" {
		t.Errorf("Point.String = %q", got)
	}
	if got := (Rect{1, 2, 3, 4}).String(); got != "[1,3]x[2,4]" {
		t.Errorf("Rect.String = %q", got)
	}
}

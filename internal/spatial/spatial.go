// Package spatial provides the geometric primitives shared by the index
// structures and query algorithms: points on the broadcast grid, axis-
// aligned rectangles, and distance computations.
//
// Following the paper's model, data objects live exactly on the cells of
// a 2^order x 2^order Hilbert grid, so a point's coordinates are integer
// cell coordinates and there is a 1-1 correspondence between a point and
// its HC value. Query geometry (window rectangles, kNN disks) is computed
// in the same cell coordinate space.
package spatial

import (
	"fmt"
	"math"
)

// Point is a grid cell coordinate.
type Point struct {
	X, Y uint32
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Dist2 returns the squared Euclidean distance to q.
func (p Point) Dist2(q Point) float64 {
	dx := float64(p.X) - float64(q.X)
	dy := float64(p.Y) - float64(q.Y)
	return dx*dx + dy*dy
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 { return math.Sqrt(p.Dist2(q)) }

// Rect is an axis-aligned rectangle with inclusive integer bounds
// [MinX, MaxX] x [MinY, MaxY]. The zero value is the single cell (0,0).
type Rect struct {
	MinX, MinY, MaxX, MaxY uint32
}

// NewRect returns the rectangle spanning the two corner points in either
// order.
func NewRect(a, b Point) Rect {
	r := Rect{MinX: a.X, MinY: a.Y, MaxX: b.X, MaxY: b.Y}
	if r.MinX > r.MaxX {
		r.MinX, r.MaxX = r.MaxX, r.MinX
	}
	if r.MinY > r.MaxY {
		r.MinY, r.MaxY = r.MaxY, r.MinY
	}
	return r
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d]x[%d,%d]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// Valid reports whether the rectangle's bounds are ordered.
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Contains reports whether p lies inside the rectangle.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether o lies entirely inside r.
func (r Rect) ContainsRect(o Rect) bool {
	return o.MinX >= r.MinX && o.MaxX <= r.MaxX && o.MinY >= r.MinY && o.MaxY <= r.MaxY
}

// Intersects reports whether the two rectangles share at least one cell.
func (r Rect) Intersects(o Rect) bool {
	return r.MinX <= o.MaxX && o.MinX <= r.MaxX && r.MinY <= o.MaxY && o.MinY <= r.MaxY
}

// Union returns the smallest rectangle covering both r and o.
func (r Rect) Union(o Rect) Rect {
	if o.MinX < r.MinX {
		r.MinX = o.MinX
	}
	if o.MinY < r.MinY {
		r.MinY = o.MinY
	}
	if o.MaxX > r.MaxX {
		r.MaxX = o.MaxX
	}
	if o.MaxY > r.MaxY {
		r.MaxY = o.MaxY
	}
	return r
}

// Expand returns the smallest rectangle covering r and p.
func (r Rect) Expand(p Point) Rect {
	return r.Union(Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
}

// Area returns the number of cells covered by the rectangle.
func (r Rect) Area() uint64 {
	if !r.Valid() {
		return 0
	}
	return uint64(r.MaxX-r.MinX+1) * uint64(r.MaxY-r.MinY+1)
}

// Width returns the number of cells spanned horizontally.
func (r Rect) Width() uint32 { return r.MaxX - r.MinX + 1 }

// Height returns the number of cells spanned vertically.
func (r Rect) Height() uint32 { return r.MaxY - r.MinY + 1 }

// Center returns the rectangle's center in continuous cell coordinates.
func (r Rect) Center() (x, y float64) {
	return (float64(r.MinX) + float64(r.MaxX)) / 2, (float64(r.MinY) + float64(r.MaxY)) / 2
}

// MinDist2 returns the squared distance from p to the nearest point of
// the rectangle (zero when p is inside).
func (r Rect) MinDist2(p Point) float64 {
	dx := 0.0
	switch {
	case p.X < r.MinX:
		dx = float64(r.MinX) - float64(p.X)
	case p.X > r.MaxX:
		dx = float64(p.X) - float64(r.MaxX)
	}
	dy := 0.0
	switch {
	case p.Y < r.MinY:
		dy = float64(r.MinY) - float64(p.Y)
	case p.Y > r.MaxY:
		dy = float64(p.Y) - float64(r.MaxY)
	}
	return dx*dx + dy*dy
}

// MinDist returns the distance from p to the nearest point of the
// rectangle.
func (r Rect) MinDist(p Point) float64 { return math.Sqrt(r.MinDist2(p)) }

// MaxDist2 returns the squared distance from p to the farthest corner of
// the rectangle.
func (r Rect) MaxDist2(p Point) float64 {
	dx := float64(p.X) - float64(r.MinX)
	if d := float64(r.MaxX) - float64(p.X); d > dx {
		dx = d
	}
	dy := float64(p.Y) - float64(r.MinY)
	if d := float64(r.MaxY) - float64(p.Y); d > dy {
		dy = d
	}
	return dx*dx + dy*dy
}

// ClampedWindow returns a rectangle of the given side length whose lower
// corner is at (x, y), clamped so that it stays within a grid of the
// given side. It is the helper used by workload generators to build
// window queries from a WinSideRatio.
func ClampedWindow(x, y, winSide, gridSide uint32) Rect {
	if winSide == 0 {
		winSide = 1
	}
	if winSide > gridSide {
		winSide = gridSide
	}
	if x > gridSide-winSide {
		x = gridSide - winSide
	}
	if y > gridSide-winSide {
		y = gridSide - winSide
	}
	return Rect{MinX: x, MinY: y, MaxX: x + winSide - 1, MaxY: y + winSide - 1}
}

// Disk is a closed disk in cell coordinate space, used as the kNN search
// space: it contains all cells within distance R of the center.
type Disk struct {
	CX, CY float64
	R      float64
}

// Contains reports whether the point lies inside the closed disk.
func (d Disk) Contains(p Point) bool {
	dx := float64(p.X) - d.CX
	dy := float64(p.Y) - d.CY
	return dx*dx+dy*dy <= d.R*d.R
}

// BoundingRect returns the smallest cell rectangle covering the disk,
// clamped to a grid of the given side.
func (d Disk) BoundingRect(gridSide uint32) Rect {
	lo := func(v float64) uint32 {
		v = math.Ceil(v)
		if v < 0 {
			return 0
		}
		if v > float64(gridSide-1) {
			return gridSide - 1
		}
		return uint32(v)
	}
	hi := func(v float64) uint32 {
		v = math.Floor(v)
		if v < 0 {
			return 0
		}
		if v > float64(gridSide-1) {
			return gridSide - 1
		}
		return uint32(v)
	}
	return Rect{
		MinX: lo(d.CX - d.R),
		MinY: lo(d.CY - d.R),
		MaxX: hi(d.CX + d.R),
		MaxY: hi(d.CY + d.R),
	}
}

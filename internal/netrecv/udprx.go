// The datagram transports. A unicast receiver subscribes with
// "DSIJOIN <ch>" on the station's UDP port, keeps the lease alive with
// periodic pings, and reads one net frame per datagram; a multicast
// receiver just joins each channel's group (base address, port +
// channel) and listens. A datagram that never arrives is a hole the
// feed declares lost once the clock passes it — exactly the loss model
// the FEC framing recovers from, which is what makes UDP the honest
// transport for the broadcast metaphor.

package netrecv

import (
	"context"
	"fmt"
	"net"
	"strconv"
	"time"

	"dsi/internal/obs"
	"dsi/internal/wire"
)

// udpPingEvery keeps the unicast lease alive (the station expires
// subscriptions after 30s without traffic).
const udpPingEvery = 10 * time.Second

// udpReadBuffer asks the kernel for enough socket buffer to absorb
// paced bursts without drops being the OS's fault.
const udpReadBuffer = 4 << 20

// UDPReceiver is a dsi.Receiver fed from the station's datagram
// emission, unicast or multicast.
type UDPReceiver struct {
	Receiver
}

// NewUDPReceiver subscribes to the station's unicast datagram port
// (the address a bootstrap catalog carries in Meta.UDP). ch selects a
// single channel, or -1 for all of them.
func NewUDPReceiver(stationAddr string, ch int, cat *Catalog, opt Options) (*UDPReceiver, error) {
	opt = opt.withDefaults()
	raddr, err := net.ResolveUDPAddr("udp", stationAddr)
	if err != nil {
		return nil, fmt.Errorf("netrecv: station address: %w", err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return nil, fmt.Errorf("netrecv: udp dial: %w", err)
	}
	_ = conn.SetReadBuffer(udpReadBuffer)
	met := obs.NewNetReceiverMetrics(opt.Registry, "udp")
	feed := NewFeed(cat.Lay.Channels(), opt, met)
	ctx, cancel := context.WithCancel(context.Background())
	u := &UDPReceiver{Receiver: Receiver{feed: feed, met: met, cancel: cancel}}
	if _, err := fmt.Fprintf(conn, "DSIJOIN %d", ch); err != nil {
		u.Close()
		conn.Close()
		return nil, fmt.Errorf("netrecv: udp join: %w", err)
	}
	go u.datagramLoop(conn)
	go func() {
		tick := time.NewTicker(udpPingEvery)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				_, _ = conn.Write([]byte("DSILEAVE"))
				_ = conn.Close()
				return
			case <-tick.C:
				_, _ = conn.Write([]byte("DSIPING"))
			}
		}
	}()
	dec, err := newDecoder(cat, feed, opt)
	if err != nil {
		u.Close()
		return nil, err
	}
	u.Receiver.Receiver = dec
	return u, nil
}

// NewMulticastReceiver joins every channel's multicast group under the
// base address (the one a bootstrap catalog carries in Meta.Multicast:
// channel c streams on port+c) and listens without any per-client
// state at the station. Coded broadcasts must wait out one control
// cadence before the decoder can validate the FEC descriptor, so the
// effective bootstrap wait should exceed CtrlEvery/SlotsPerSec.
func NewMulticastReceiver(base string, cat *Catalog, opt Options) (*UDPReceiver, error) {
	opt = opt.withDefaults()
	host, portStr, err := net.SplitHostPort(base)
	if err != nil {
		return nil, fmt.Errorf("netrecv: multicast base %q: %w", base, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("netrecv: multicast base %q: %w", base, err)
	}
	met := obs.NewNetReceiverMetrics(opt.Registry, "mcast")
	feed := NewFeed(cat.Lay.Channels(), opt, met)
	ctx, cancel := context.WithCancel(context.Background())
	u := &UDPReceiver{Receiver: Receiver{feed: feed, met: met, cancel: cancel}}
	conns := make([]*net.UDPConn, 0, cat.Lay.Channels())
	for c := 0; c < cat.Lay.Channels(); c++ {
		gaddr, err := net.ResolveUDPAddr("udp", net.JoinHostPort(host, strconv.Itoa(port+c)))
		if err != nil || !gaddr.IP.IsMulticast() {
			u.Close()
			for _, done := range conns {
				_ = done.Close()
			}
			return nil, fmt.Errorf("netrecv: channel %d group %v is not a multicast address", c, gaddr)
		}
		conn, err := net.ListenMulticastUDP("udp", nil, gaddr)
		if err != nil {
			u.Close()
			for _, done := range conns {
				_ = done.Close()
			}
			return nil, fmt.Errorf("netrecv: join channel %d group: %w", c, err)
		}
		_ = conn.SetReadBuffer(udpReadBuffer)
		conns = append(conns, conn)
		go u.datagramLoop(conn)
	}
	go func() {
		<-ctx.Done()
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	dec, err := newDecoder(cat, feed, opt)
	if err != nil {
		u.Close()
		return nil, err
	}
	u.Receiver.Receiver = dec
	return u, nil
}

// datagramLoop feeds every datagram until the socket closes. Each
// datagram is self-contained (the station sends one frame per
// datagram), so a malformed one is discarded alone — datagram streams
// cannot desync.
func (u *UDPReceiver) datagramLoop(conn *net.UDPConn) {
	buf := make([]byte, wire.MaxNetPayload+wire.NetFrameHeader)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return
		}
		if _, err := u.feed.Consume(buf[:n]); err != nil {
			continue // counted as garbage by the feed
		}
	}
}

// Feed-level fault paths: dropped datagrams mid-group that the FEC
// layer must recover, and malformed or truncated network frames that
// the parser must reject without desyncing the consumer.

package netrecv_test

import (
	"math/rand"
	"testing"
	"time"

	"dsi/internal/dsi"
	"dsi/internal/netrecv"
	"dsi/internal/obs"
	"dsi/internal/spatial"
	"dsi/internal/station"
	"dsi/internal/wire"
)

// pumpFeed emits the broadcast into the feed like a station would —
// demand-paced a bounded distance ahead of the consumer — dropping
// exactly the data slots drop selects (a lost datagram is precisely an
// un-offered frame). Returns a stop func.
func pumpFeed(feed *netrecv.Feed, src station.PacketSource, nch int, drop func(ch int, abs int64) bool) func() {
	stop := make(chan struct{})
	go func() {
		if f, ok := src.(station.FECSource); ok {
			if desc, ver := f.FECDescAt(0); desc != nil {
				feed.Offer(wire.NetFrame{Kind: wire.NetFECDesc, Ver: ver, Abs: 0, Payload: desc})
			}
		}
		if dir, ver := src.DirectoryAt(0); dir != nil {
			feed.Offer(wire.NetFrame{Kind: wire.NetDir, Ver: ver, Abs: 0, Payload: dir})
		}
		for abs := int64(0); ; abs++ {
			for abs > feed.Consumed()+4096 {
				select {
				case <-stop:
					return
				case <-time.After(100 * time.Microsecond):
				}
			}
			select {
			case <-stop:
				return
			default:
			}
			for ch := 0; ch < nch; ch++ {
				if drop != nil && drop(ch, abs) {
					continue
				}
				pkt, ver := src.PacketAt(ch, abs)
				feed.Offer(wire.NetFrame{
					Kind: wire.NetData, Flags: pkt.Flags, Ch: uint16(ch),
					Slot: pkt.Slot, Ver: ver, Abs: abs, Payload: pkt.Payload,
				})
			}
		}
	}()
	return func() { close(stop); feed.Close() }
}

// TestFeedDroppedDatagramsFECRecovers drops periodic data-channel
// slots from the stream — the datagram loss model — and requires the
// FEC receiver to answer exactly, with parity doing real work.
func TestFeedDroppedDatagramsFECRecovers(t *testing.T) {
	ds, x, lay := netTestBed(t, 220, 1901)
	cfg := xorCode()
	mt, err := station.NewMultiTransmitterFEC(lay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	feed := netrecv.NewFeed(lay.Channels(), netrecv.Options{RingSlots: 1 << 14}, nil)
	stop := pumpFeed(feed, mt, lay.Channels(), func(ch int, abs int64) bool {
		return ch >= 1 && abs%97 == 0 // sparse drops across the data channels
	})
	defer stop()
	if _, ok := feed.WaitFEC(5 * time.Second); !ok {
		t.Fatal("no FEC descriptor offered")
	}
	rx, err := station.NewFECReceiver(lay, 1, feed, cfg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	fm := obs.NewFECMetrics(reg)
	rx.SetObs(fm)
	sess, err := dsi.Open(x, dsi.WithReceiver(rx))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	side := int(ds.Curve.Side())
	for trial := 0; trial < 8; trial++ {
		sess.Tune(int64(trial)*int64(4*lay.ProbeCycle()), nil)
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 40, ds.Curve.Side())
		got, _ := sess.Window(w)
		want := ds.WindowBrute(w)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: dropped-datagram stream returned %d objects, want %d", trial, len(got), len(want))
		}
	}
	if feed.LostSlots() == 0 {
		t.Fatal("no slot was declared lost; the drop path went unexercised")
	}
	if fm.Recovered.Value() == 0 {
		t.Fatal("no packet was FEC-recovered; parity did no work")
	}
}

// TestFeedRejectsMalformedFrames pins the parser contract at the feed:
// a truncated frame is carried (not an error), garbage is an error
// that does not consume valid frames before it.
func TestFeedRejectsMalformedFrames(t *testing.T) {
	feed := netrecv.NewFeed(2, netrecv.Options{RingSlots: 64}, nil)
	frame, err := wire.AppendNetFrame(nil, wire.NetFrame{
		Kind: wire.NetData, Ch: 1, Slot: 9, Ver: 1, Abs: 5, Payload: []byte("abc"),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every truncation of a single frame consumes nothing and is no
	// error: the transport waits for the rest.
	for cut := 0; cut < len(frame); cut++ {
		n, err := feed.Consume(frame[:cut])
		if n != 0 || err != nil {
			t.Fatalf("cut %d: consumed %d, err %v", cut, n, err)
		}
	}
	// A valid frame followed by garbage: the frame lands, the garbage
	// errors so the transport reconnects.
	buf := append(append([]byte(nil), frame...), 0xde, 0xad, 0xbe, 0xef, 0xde, 0xad)
	n, err := feed.Consume(buf)
	if n != len(frame) || err == nil {
		t.Fatalf("frame+garbage: consumed %d of %d, err %v", n, len(buf), err)
	}
	if pkt, ver := feed.PacketAt(1, 5); ver != 1 || string(pkt.Payload) != "abc" {
		t.Fatalf("valid frame before garbage was lost: ver=%d payload=%q", ver, pkt.Payload)
	}
	// A frame for a channel the layout does not have is counted and
	// dropped, never slotted.
	feed.Offer(wire.NetFrame{Kind: wire.NetData, Ch: 7, Slot: 1, Ver: 1, Abs: 6, Payload: []byte("x")})
	if live := feed.Live(); live != 5 {
		t.Fatalf("out-of-range channel moved the clock to %d", live)
	}
}

// TestFeedLossDeclaration pins the loss semantics: a slot the clock
// has passed is served as version-0 loss, and an evicted slot likewise.
func TestFeedLossDeclaration(t *testing.T) {
	feed := netrecv.NewFeed(1, netrecv.Options{RingSlots: 32, WaitTimeout: 50 * time.Millisecond}, nil)
	offer := func(abs int64) {
		feed.Offer(wire.NetFrame{Kind: wire.NetData, Ch: 0, Slot: uint32(abs), Ver: 1, Abs: abs, Payload: []byte{1}})
	}
	for abs := int64(0); abs < 30; abs++ {
		if abs != 3 {
			offer(abs)
		}
	}
	// Slot 3 was never offered and the channel clock is 16+ past it.
	if _, ver := feed.PacketAt(0, 3); ver != 0 {
		t.Fatalf("hole served with version %d, want loss", ver)
	}
	// Slot 2 is still resident.
	if _, ver := feed.PacketAt(0, 2); ver != 1 {
		t.Fatal("resident slot served as loss")
	}
	// Push the window far past slot 2: evicted, now a loss.
	for abs := int64(30); abs < 80; abs++ {
		offer(abs)
	}
	if _, ver := feed.PacketAt(0, 2); ver != 0 {
		t.Fatal("evicted slot not served as loss")
	}
	if feed.LostSlots() != 2 {
		t.Fatalf("lost-slot count %d, want 2", feed.LostSlots())
	}
	// A slot beyond the clock times out to a loss rather than hanging.
	done := make(chan uint32, 1)
	go func() { _, ver := feed.PacketAt(0, 500); done <- ver }()
	select {
	case ver := <-done:
		if ver != 0 {
			t.Fatalf("future slot served with version %d", ver)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("future-slot read hung past its timeout")
	}
}

// Package netrecv is the client side of the network station: receivers
// that implement dsi.Receiver over a real transport (HTTP chunked
// streams, UDP unicast subscriptions, UDP multicast groups) instead of
// an in-process packet source.
//
// The design inverts nothing above the transport. The station emits
// position-stamped net frames (wire.NetFrame); a Feed reassembles them
// into per-channel ring buffers and presents the result as a
// station.PacketSource — the exact interface the in-process
// WireReceiver and FECReceiver already decode from. All byte-level
// machinery (index-table decoding, versioned directory adoption,
// FEC recovery, phased re-tuning) therefore runs unchanged on top of a
// network link, and a loss-free link is regression-enforced
// bit-identical to in-process replay.
//
// Loss translates naturally: a UDP datagram that never arrives leaves
// a hole in the ring; when the channel's high-water mark passes the
// hole the Feed serves the zero packet with version 0, which the
// decoding layer treats exactly like a simulator-injected slot loss —
// and FEC recovers it the same way. A severed HTTP stream is a burst
// of such holes between disconnect and reconnect; the absolute slot
// clock is global, so reconnection needs no re-anchoring unless a
// directory swap happened in the gap (the in-band control frames carry
// the bump, and the standard Poll path adopts it).
//
// Invariants:
//
//   - Offer copies every payload: ring eviction never invalidates a
//     slice an upper layer still aliases (the FEC receiver holds
//     payload references for up to a cycle).
//   - PacketAt never blocks forever in lossy mode: a slot is declared
//     lost when the channel clock passes it, the global clock outruns
//     it by LagSlack, the wait times out, or the feed closes.
//   - In lossless mode (loopback regression tests) Offer blocks for
//     ring space and PacketAt waits indefinitely, so the byte stream
//     is consumed exactly once and in order, with TCP backpressure
//     pacing the server.
package netrecv

import (
	"sync"
	"time"

	"dsi/internal/obs"
	"dsi/internal/station"
	"dsi/internal/wire"
)

// reorderSlack is how many slots past a pending position the channel
// clock may run before the position is declared lost — headroom for
// datagram reordering without delaying loss detection noticeably.
const reorderSlack = 16

// Options tune a network receiver's feed and transport.
type Options struct {
	// RingSlots is the per-channel reassembly window (default 4096).
	RingSlots int
	// LagSlack declares a pending slot lost once the global high-water
	// mark is this many slots past it (default RingSlots/2).
	LagSlack int64
	// WaitTimeout bounds the wall-clock wait for a slot that has not
	// arrived (default 5s); on expiry the slot is served as lost.
	WaitTimeout time.Duration
	// Lossless switches the feed to the regression-test discipline:
	// Offer blocks for ring space instead of evicting, and PacketAt
	// never times a slot out. Use only with a Block-mode station.
	Lossless bool
	// DialTimeout bounds transport dials and the bootstrap fetch
	// (default 5s).
	DialTimeout time.Duration
	// SSE subscribes an HTTP receiver via /v1/sse (base64 events)
	// instead of the raw /v1/stream bytes.
	SSE bool
	// Registry, when set, registers the netrecv_* metric families.
	Registry *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.RingSlots <= 0 {
		o.RingSlots = 4096
	}
	if o.LagSlack <= 0 {
		o.LagSlack = int64(o.RingSlots / 2)
	}
	if o.WaitTimeout <= 0 {
		o.WaitTimeout = 5 * time.Second
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	return o
}

type feedEntry struct {
	abs int64
	ver uint32
	set bool
	pkt station.Packet
}

// Feed reassembles net frames into a station.PacketSource (and
// station.FECSource): per-channel ring buffers over the absolute slot
// clock plus the latest in-band control state.
type Feed struct {
	nch  int
	ring int64
	opt  Options
	met  *obs.NetReceiverMetrics

	mu   sync.Mutex
	cond *sync.Cond

	entries [][]feedEntry
	high    []int64 // per channel: highest offered abs + 1
	highAll int64

	dir     []byte
	dirVer  uint32
	desc    []byte
	descVer uint32

	// lastConsumed is the lossless-mode watermark: the highest abs the
	// consumer has asked for, -1 before the first read. Offer blocks
	// while a frame would land more than a ring ahead of it; the first
	// data frame anchors an unset watermark so a receiver joining a
	// long-running station does not deadlock its own stream.
	lastConsumed int64

	lost int64

	closed bool
}

// NewFeed builds a feed for a broadcast of nch channels. met may be
// nil.
func NewFeed(nch int, opt Options, met *obs.NetReceiverMetrics) *Feed {
	opt = opt.withDefaults()
	f := &Feed{
		nch:     nch,
		ring:    int64(opt.RingSlots),
		opt:     opt,
		met:     met,
		entries: make([][]feedEntry, nch),
		high:    make([]int64, nch),
	}
	for ch := range f.entries {
		f.entries[ch] = make([]feedEntry, opt.RingSlots)
	}
	f.lastConsumed = -1
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Consumed returns the highest absolute slot the consumer has asked
// for, -1 before the first read. Demand-paced emitters (tests) key off
// it to stay a bounded distance ahead of the consumer.
func (f *Feed) Consumed() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastConsumed
}

// LostSlots returns how many reads this feed has served as lost.
func (f *Feed) LostSlots() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lost
}

// Close releases every waiter; pending and future reads serve losses.
func (f *Feed) Close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
}

// Live returns the absolute slot of the newest frame seen, or -1
// before any frame has arrived.
func (f *Feed) Live() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.highAll - 1
}

// Offer slots one decoded frame into the feed. Payload bytes are
// copied, so the caller may reuse its read buffer.
func (f *Feed) Offer(fr wire.NetFrame) {
	f.mu.Lock()
	defer f.mu.Unlock()
	switch fr.Kind {
	case wire.NetDir:
		if fr.Ver >= f.dirVer {
			f.dir = append([]byte(nil), fr.Payload...)
			f.dirVer = fr.Ver
		}
	case wire.NetFECDesc:
		if fr.Ver >= f.descVer {
			f.desc = append([]byte(nil), fr.Payload...)
			f.descVer = fr.Ver
		}
	case wire.NetData:
		ch := int(fr.Ch)
		if ch < 0 || ch >= f.nch {
			if f.met != nil {
				f.met.Garbage.Inc()
			}
			f.cond.Broadcast()
			return
		}
		if f.opt.Lossless {
			if f.lastConsumed < 0 {
				f.lastConsumed = fr.Abs
			}
			for !f.closed && fr.Abs >= f.lastConsumed+f.ring {
				f.cond.Wait()
			}
			if f.closed {
				return
			}
		}
		e := &f.entries[ch][fr.Abs%f.ring]
		if !e.set || e.abs < fr.Abs {
			*e = feedEntry{
				abs: fr.Abs,
				ver: fr.Ver,
				set: true,
				pkt: station.Packet{
					Ch:      uint8(ch),
					Slot:    fr.Slot,
					Flags:   fr.Flags,
					Payload: append([]byte(nil), fr.Payload...),
				},
			}
		}
		if fr.Abs+1 > f.high[ch] {
			f.high[ch] = fr.Abs + 1
		}
		if fr.Abs+1 > f.highAll {
			f.highAll = fr.Abs + 1
		}
	}
	if f.met != nil {
		f.met.Frames.Inc()
	}
	f.cond.Broadcast()
}

// Consume parses as many complete frames as buf holds, offering each,
// and returns the number of bytes consumed. A short tail is not an
// error — the caller carries it into the next read. A malformed frame
// is: the stream has desynced and the transport must reconnect.
func (f *Feed) Consume(buf []byte) (int, error) {
	at := 0
	for at < len(buf) {
		fr, n, err := wire.DecodeNetFrame(buf[at:])
		if err == wire.ErrShortFrame {
			break
		}
		if err != nil {
			if f.met != nil {
				f.met.Garbage.Inc()
			}
			return at, err
		}
		f.Offer(fr)
		at += n
	}
	return at, nil
}

// PacketAt implements station.PacketSource: the frame broadcast on
// channel ch at absolute slot abs, waiting for it to arrive when it is
// still in flight. A lost slot is the zero packet with version 0,
// which the decoding layer counts as channel loss.
func (f *Feed) PacketAt(ch int, abs int64) (station.Packet, uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch < 0 || ch >= f.nch || abs < 0 {
		return station.Packet{}, 0
	}
	if abs > f.lastConsumed {
		f.lastConsumed = abs
		f.cond.Broadcast() // lossless Offer may be waiting for ring space
	}
	var timedOut bool
	var tm *time.Timer
	defer func() {
		if tm != nil {
			tm.Stop()
		}
	}()
	for {
		e := &f.entries[ch][abs%f.ring]
		if e.set && e.abs == abs {
			return e.pkt, e.ver
		}
		lost := f.closed ||
			(e.set && e.abs > abs) // evicted: the window moved past
		if !f.opt.Lossless {
			lost = lost ||
				f.high[ch] > abs+reorderSlack ||
				f.highAll > abs+f.opt.LagSlack ||
				timedOut
		}
		if lost {
			f.lost++
			if f.met != nil {
				f.met.LostSlots.Inc()
			}
			return station.Packet{}, 0
		}
		if tm == nil && !f.opt.Lossless {
			tm = time.AfterFunc(f.opt.WaitTimeout, func() {
				f.mu.Lock()
				timedOut = true
				f.cond.Broadcast()
				f.mu.Unlock()
			})
		}
		f.cond.Wait()
	}
}

// DirectoryAt implements station.PacketSource: the newest in-band
// directory, nil with version 0 before one has arrived.
func (f *Feed) DirectoryAt(int64) ([]byte, uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dir, f.dirVer
}

// FECDescAt implements station.FECSource: the newest in-band FEC
// descriptor, nil with version 0 before one has arrived.
func (f *Feed) FECDescAt(int64) ([]byte, uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.desc, f.descVer
}

// WaitLive blocks until at least one data frame has arrived and
// returns its absolute slot, or false on timeout / close.
func (f *Feed) WaitLive(timeout time.Duration) (int64, bool) {
	return f.waitFor(timeout, func() bool { return f.highAll > 0 })
}

// WaitFEC blocks until an FEC descriptor control frame has arrived and
// returns the live slot, or false on timeout / close.
func (f *Feed) WaitFEC(timeout time.Duration) (int64, bool) {
	return f.waitFor(timeout, func() bool { return f.desc != nil })
}

func (f *Feed) waitFor(timeout time.Duration, ready func() bool) (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var timedOut bool
	tm := time.AfterFunc(timeout, func() {
		f.mu.Lock()
		timedOut = true
		f.cond.Broadcast()
		f.mu.Unlock()
	})
	defer tm.Stop()
	for !ready() {
		if f.closed || timedOut {
			return 0, false
		}
		f.cond.Wait()
	}
	return f.highAll - 1, true
}

// The receiver core shared by every transport: once a Feed is being
// filled, the existing byte-level decoders (station.WireReceiver for
// plain broadcasts, station.FECReceiver for coded ones) are
// constructed directly over it — the network adds a transport layer
// under the decode seam, not a new decode path.

package netrecv

import (
	"context"
	"fmt"
	"sync/atomic"

	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/station"
)

// Receiver is the transport-independent core of a network receiver: a
// dsi.Receiver decoding from a live network feed, plus the lifecycle
// and health surface the transports share. A query session uses it
// like any other receiver — dsi.Open(cat.X, dsi.WithReceiver(rx)) —
// but must tune each query at the live edge (LiveSlot), since the
// broadcast clock keeps running between queries.
type Receiver struct {
	dsi.Receiver
	feed       *Feed
	met        *obs.NetReceiverMetrics
	cancel     context.CancelFunc
	reconnects atomic.Int64
}

// LiveSlot returns the newest absolute slot heard from the station —
// the position to tune fresh queries at.
func (r *Receiver) LiveSlot() int64 { return r.feed.Live() }

// Reconnects returns how many times the transport re-established a
// severed stream.
func (r *Receiver) Reconnects() int64 { return r.reconnects.Load() }

// Feed exposes the reassembly feed (tests inject faults through it).
func (r *Receiver) Feed() *Feed { return r.feed }

// DirVersion returns the shard-directory version the decoder currently
// follows (0 when the decoder has no versioned directory).
func (r *Receiver) DirVersion() uint32 {
	if v, ok := r.Receiver.(interface{ Version() uint32 }); ok {
		return v.Version()
	}
	return 0
}

// Close tears the transport down and releases every waiter.
func (r *Receiver) Close() {
	if r.cancel != nil {
		r.cancel()
	}
	r.feed.Close()
}

// newDecoder waits for the stream to come alive and constructs the
// byte-level decoder over the feed, tuned at the live edge.
func newDecoder(cat *Catalog, feed *Feed, opt Options) (dsi.Receiver, error) {
	wait := bootstrapWait(opt)
	if cat.FEC.Enabled() {
		if _, ok := feed.WaitFEC(wait); !ok {
			return nil, fmt.Errorf("netrecv: no FEC descriptor heard within %v; station down or uncoded", wait)
		}
	}
	live, ok := feed.WaitLive(wait)
	if !ok {
		return nil, fmt.Errorf("netrecv: no frames heard within %v; station down?", wait)
	}
	if cat.FEC.Enabled() {
		return station.NewFECReceiver(cat.Lay, cat.Version(), feed, cat.FEC, live, nil)
	}
	return station.NewWireReceiver(cat.Lay, cat.Version(), feed, live, nil)
}

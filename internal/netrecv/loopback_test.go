// Loopback regression: the acceptance contract of the network layer.
// Queries answered through a real transport (HTTP chunked stream, UDP
// datagrams) over a loss-free loopback link must be bit-identical —
// same result IDs, same slot-level cost stats — to the same queries
// answered through the in-process WireReceiver/FECReceiver over the
// same transmitter. The transport may add wall-clock time, never
// broadcast-clock cost.

package netrecv_test

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/netrecv"
	"dsi/internal/netsrv"
	"dsi/internal/spatial"
	"dsi/internal/station"
	"dsi/internal/wire"
)

func quarterBounds(nf int) []int { return []int{0, nf / 4, nf / 2, nf} }
func skewedBounds(nf int) []int  { return []int{0, nf / 8, 7 * nf / 8, nf} }

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func xorCode() wire.FECConfig {
	return wire.FECConfig{
		Table:  wire.FECCode{Groups: 1, Parity: 1},
		Object: wire.FECCode{Groups: 4, Parity: 1},
	}
}

// netTestBed builds the sharded broadcast the suite streams: uniform
// dataset, multi-channel-pointer tables, four channels.
func netTestBed(t testing.TB, n int, seed int64) (*dataset.Dataset, *dsi.Index, *dsi.Layout) {
	t.Helper()
	ds := dataset.Uniform(n, 7, seed)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 4, Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: quarterBounds(x.NF),
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, x, lay
}

// metaFor writes the catalog document for a netTestBed station.
func metaFor(t testing.TB, ds *dataset.Dataset, n int, seed int64, lay *dsi.Layout, fec wire.FECConfig) wire.StationMeta {
	t.Helper()
	m := wire.StationMeta{
		Dataset:      wire.StationDataset{Kind: "uniform", N: n, Order: 7, Seed: seed, Sum: ds.Checksum()},
		Capacity:     64,
		ReserveMCPtr: true,
		Channels:     lay.Channels(),
		Scheduler:    "shard",
		SwitchSlots:  2,
		ShardBounds:  lay.ShardBounds(),
		Version:      1,
	}
	if fec.Enabled() {
		desc, err := wire.EncodeFECDesc(fec, 1)
		if err != nil {
			t.Fatal(err)
		}
		m.FECDesc = desc
	}
	return m
}

// startBlockStation runs a lossless (Block-mode) station over src and
// returns its base URL.
func startBlockStation(t testing.TB, src station.PacketSource, lay *dsi.Layout, meta wire.StationMeta, tick func(int64)) string {
	t.Helper()
	srv, err := netsrv.New(netsrv.Config{
		Source: src, Layout: lay, Meta: meta, CtrlEvery: 64, Block: true, Tick: tick,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { _ = srv.Run(ctx) }()
	hts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		cancel()
		hts.CloseClientConnections()
		hts.Close()
	})
	return hts.URL
}

// losslessOpts is the regression-test feed discipline: blocking ring,
// no timeouts, a window deep enough that a whole query's working set
// stays resident.
func losslessOpts() netrecv.Options {
	return netrecv.Options{Lossless: true, RingSlots: 1 << 14}
}

// runBitIdentical drives interleaved window and kNN queries through
// both sessions at the same ascending probe slots and requires equal
// IDs and equal stats on every trial.
func runBitIdentical(t *testing.T, ds *dataset.Dataset, netSess, refSess *dsi.Session, startSlot int64, lay *dsi.Layout, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	side := int(ds.Curve.Side())
	step := int64(12 * lay.ProbeCycle())
	for trial := 0; trial < trials; trial++ {
		probe := startSlot + int64(trial)*step + rng.Int63n(int64(lay.ProbeCycle()))
		netSess.Tune(probe, nil)
		refSess.Tune(probe, nil)
		if trial%3 == 2 {
			q := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
			k := 1 + rng.Intn(6)
			wantIDs, wantSt := refSess.KNN(q, k, dsi.Conservative)
			gotIDs, gotSt := netSess.KNN(q, k, dsi.Conservative)
			if !equalIDs(gotIDs, wantIDs) || gotSt != wantSt {
				t.Fatalf("trial %d: net kNN (%v,%+v) != local (%v,%+v)", trial, gotIDs, gotSt, wantIDs, wantSt)
			}
		} else {
			w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 30, ds.Curve.Side())
			wantIDs, wantSt := refSess.Window(w)
			gotIDs, gotSt := netSess.Window(w)
			if !equalIDs(gotIDs, wantIDs) || gotSt != wantSt {
				t.Fatalf("trial %d: net window (%v,%+v) != local (%v,%+v)", trial, gotIDs, gotSt, wantIDs, wantSt)
			}
		}
	}
}

// TestHTTPReceiverBitIdenticalLoopback is the tentpole regression:
// window and kNN suites through an HTTP network receiver over a
// loss-free loopback stream are bit-identical to the in-process
// WireReceiver over the same transmitter.
func TestHTTPReceiverBitIdenticalLoopback(t *testing.T) {
	const n, seed = 240, 1201
	ds, x, lay := netTestBed(t, n, seed)
	mt, err := station.NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	url := startBlockStation(t, mt, lay, metaFor(t, ds, n, seed, lay, wire.FECConfig{}), nil)

	cat, err := netrecv.Bootstrap(url, netrecv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cat.X.NF != x.NF || cat.Lay.ShardBounds()[1] != lay.ShardBounds()[1] {
		t.Fatalf("bootstrap rebuilt a different catalog: NF=%d bounds=%v", cat.X.NF, cat.Lay.ShardBounds())
	}
	rx, err := netrecv.NewHTTPReceiver(url, cat, losslessOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	netSess, err := dsi.Open(cat.X, dsi.WithReceiver(rx))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := station.NewWireReceiver(lay, 1, mt, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	refSess, err := dsi.Open(x, dsi.WithReceiver(ref))
	if err != nil {
		t.Fatal(err)
	}
	runBitIdentical(t, ds, netSess, refSess, rx.LiveSlot()+1, lay, 9)
	if lost := rx.Feed().LostSlots(); lost != 0 {
		t.Fatalf("lossless loopback stream declared %d lost slots", lost)
	}
}

// TestHTTPReceiverSSEBitIdentical runs the same regression over the
// Server-Sent-Events wrapping of the stream.
func TestHTTPReceiverSSEBitIdentical(t *testing.T) {
	const n, seed = 200, 1301
	ds, x, lay := netTestBed(t, n, seed)
	mt, err := station.NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	url := startBlockStation(t, mt, lay, metaFor(t, ds, n, seed, lay, wire.FECConfig{}), nil)
	opt := losslessOpts()
	opt.SSE = true
	rx, err := netrecv.NewHTTPReceiver(url, nil, opt) // nil catalog: bootstrap inside
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	netSess, err := dsi.Open(rx.Layout().X, dsi.WithReceiver(rx))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := station.NewWireReceiver(lay, 1, mt, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	refSess, err := dsi.Open(x, dsi.WithReceiver(ref))
	if err != nil {
		t.Fatal(err)
	}
	runBitIdentical(t, ds, netSess, refSess, rx.LiveSlot()+1, lay, 6)
}

// TestHTTPReceiverFECBitIdentical streams a coded broadcast: the
// network receiver must build the FEC decode path from the in-band
// descriptor and stay bit-identical to the in-process FECReceiver.
func TestHTTPReceiverFECBitIdentical(t *testing.T) {
	const n, seed = 220, 1409
	ds, x, lay := netTestBed(t, n, seed)
	cfg := xorCode()
	mt, err := station.NewMultiTransmitterFEC(lay, cfg)
	if err != nil {
		t.Fatal(err)
	}
	url := startBlockStation(t, mt, lay, metaFor(t, ds, n, seed, lay, cfg), nil)
	cat, err := netrecv.Bootstrap(url, netrecv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !cat.FEC.Enabled() {
		t.Fatal("bootstrap lost the FEC code")
	}
	rx, err := netrecv.NewHTTPReceiver(url, cat, losslessOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	netSess, err := dsi.Open(cat.X, dsi.WithReceiver(rx))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := station.NewFECReceiver(lay, 1, mt, cfg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	refSess, err := dsi.Open(x, dsi.WithReceiver(ref))
	if err != nil {
		t.Fatal(err)
	}
	runBitIdentical(t, ds, netSess, refSess, rx.LiveSlot()+1, lay, 6)
}

// TestUDPReceiverLoopback answers queries through a real paced UDP
// subscription. Loopback datagrams are not guaranteed delivered, so
// each trial that experienced zero feed losses must be bit-identical
// to the in-process receiver; lossy trials (rare, load-dependent) are
// skipped rather than compared.
func TestUDPReceiverLoopback(t *testing.T) {
	const n, seed = 200, 1501
	ds, x, lay := netTestBed(t, n, seed)
	mt, err := station.NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netsrv.New(netsrv.Config{
		Source: mt, Layout: lay,
		Meta:        metaFor(t, ds, n, seed, lay, wire.FECConfig{}),
		SlotsPerSec: 20000, CtrlEvery: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, err := srv.ServeUDP(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Run(ctx) }()

	cat, err := netrecv.BuildCatalog(metaFor(t, ds, n, seed, lay, wire.FECConfig{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := netrecv.NewUDPReceiver(addr, -1, cat, netrecv.Options{RingSlots: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	netSess, err := dsi.Open(cat.X, dsi.WithReceiver(rx))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := station.NewWireReceiver(lay, 1, mt, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	refSess, err := dsi.Open(x, dsi.WithReceiver(ref))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(17))
	side := int(ds.Curve.Side())
	clean := 0
	for trial := 0; trial < 6; trial++ {
		probe := rx.LiveSlot()
		if probe < 0 {
			t.Fatal("no live slot heard over UDP")
		}
		lostBefore := rx.Feed().LostSlots()
		netSess.Tune(probe, nil)
		refSess.Tune(probe, nil)
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 30, ds.Curve.Side())
		gotIDs, gotSt := netSess.Window(w)
		wantIDs, wantSt := refSess.Window(w)
		if rx.Feed().LostSlots() != lostBefore {
			t.Logf("trial %d: datagram loss on loopback, skipping comparison", trial)
			continue
		}
		if !equalIDs(gotIDs, wantIDs) || gotSt != wantSt {
			t.Fatalf("trial %d: udp window (%v,%+v) != local (%v,%+v)", trial, gotIDs, gotSt, wantIDs, wantSt)
		}
		clean++
	}
	if clean == 0 {
		t.Fatal("every UDP trial lost datagrams on loopback; nothing was verified")
	}
}

// TestSeamSwapMidQueryOverNetwork stages a live shard-directory swap
// while a network client is querying: the versioned directory rides
// the in-band control frames, the client adopts version 2 mid-stream
// with zero client changes, and every answer stays exact.
func TestSeamSwapMidQueryOverNetwork(t *testing.T) {
	const n, seed = 240, 1601
	ds, x, lay0 := netTestBed(t, n, seed)
	lay1, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 4, Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: skewedBounds(x.NF),
	})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := station.NewRebroadcaster(lay0)
	if err != nil {
		t.Fatal(err)
	}
	url := startBlockStation(t, rb, lay0, metaFor(t, ds, n, seed, lay0, wire.FECConfig{}),
		func(abs int64) { rb.Commit(abs) })

	cat, err := netrecv.Bootstrap(url, netrecv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := netrecv.NewHTTPReceiver(url, cat, losslessOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	sess, err := dsi.Open(cat.X, dsi.WithReceiver(rx))
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(23))
	side := int(ds.Curve.Side())
	query := func() {
		t.Helper()
		sess.Tune(rx.LiveSlot()+1, nil)
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 45, ds.Curve.Side())
		got, _ := sess.Window(w)
		want := ds.WindowBrute(w)
		if !equalIDs(got, want) {
			t.Fatalf("window returned %d objects, want %d", len(got), len(want))
		}
	}
	query() // version 1, pre-swap
	if _, err := rb.Stage(lay1, rx.LiveSlot()+1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24 && rx.DirVersion() != 2; i++ {
		query() // queries cross the seam; polls adopt the bump
	}
	if rx.DirVersion() != 2 {
		t.Fatalf("network client never adopted the swapped directory (still v%d)", rx.DirVersion())
	}
	query() // version 2, post-swap
}

// TestStaleTuneInOverNetwork tunes a client whose catalog is one
// directory version behind the live daemon: every payload is initially
// undecodable, the current directory arrives in-band, and queries
// converge on the new schedule with exact results.
func TestStaleTuneInOverNetwork(t *testing.T) {
	const n, seed = 240, 1701
	ds, x, lay0 := netTestBed(t, n, seed)
	lay1, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: 4, Scheduler: dsi.SchedShard, SwitchSlots: 2, ShardBounds: skewedBounds(x.NF),
	})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := station.NewRebroadcaster(lay0)
	if err != nil {
		t.Fatal(err)
	}
	seam, err := rb.Stage(lay1, 100)
	if err != nil {
		t.Fatal(err)
	}
	horizon := seam
	for ch := 0; ch < lay0.Channels(); ch++ {
		if s, ok := rb.SeamOf(ch); ok && s > horizon {
			horizon = s
		}
	}
	if !rb.Commit(horizon) {
		t.Fatal("commit refused past every seam")
	}
	// The air is now fully version 2; the client below bootstraps from
	// a stale version-1 document on purpose.
	url := startBlockStation(t, rb, lay0, metaFor(t, ds, n, seed, lay0, wire.FECConfig{}), nil)
	cat, err := netrecv.BuildCatalog(metaFor(t, ds, n, seed, lay0, wire.FECConfig{}), nil)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := netrecv.NewHTTPReceiver(url, cat, losslessOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	sess, err := dsi.Open(cat.X, dsi.WithReceiver(rx))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	side := int(ds.Curve.Side())
	for trial := 0; trial < 4; trial++ {
		sess.Tune(rx.LiveSlot()+1, nil)
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 45, ds.Curve.Side())
		got, _ := sess.Window(w)
		want := ds.WindowBrute(w)
		if !equalIDs(got, want) {
			t.Fatalf("trial %d: stale tune-in returned %d objects, want %d", trial, len(got), len(want))
		}
	}
	if rx.DirVersion() != 2 {
		t.Fatalf("stale client never converged on the live directory (still v%d)", rx.DirVersion())
	}
}

// TestSeveredStreamReconnects cuts every client connection of a paced
// station mid-cycle: the receiver must reconnect on its own, the gap
// surfaces as ordinary losses, and queries before and after the cut
// answer exactly.
func TestSeveredStreamReconnects(t *testing.T) {
	const n, seed = 200, 1801
	ds, x, lay := netTestBed(t, n, seed)
	mt, err := station.NewMultiTransmitter(lay)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netsrv.New(netsrv.Config{
		Source: mt, Layout: lay,
		Meta:        metaFor(t, ds, n, seed, lay, wire.FECConfig{}),
		SlotsPerSec: 20000, CtrlEvery: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = srv.Run(ctx) }()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()
	_ = x

	cat, err := netrecv.Bootstrap(hts.URL, netrecv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rx, err := netrecv.NewHTTPReceiver(hts.URL, cat, netrecv.Options{RingSlots: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	defer rx.Close()
	sess, err := dsi.Open(cat.X, dsi.WithReceiver(rx))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	side := int(ds.Curve.Side())
	query := func(tag string) {
		t.Helper()
		sess.Tune(rx.LiveSlot(), nil)
		w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)), 40, ds.Curve.Side())
		got, _ := sess.Window(w)
		want := ds.WindowBrute(w)
		if !equalIDs(got, want) {
			t.Fatalf("%s: window returned %d objects, want %d", tag, len(got), len(want))
		}
	}
	query("pre-cut")
	before := rx.LiveSlot()
	hts.CloseClientConnections()
	deadline := time.Now().Add(10 * time.Second)
	for rx.Reconnects() == 0 || rx.LiveSlot() <= before {
		if time.Now().After(deadline) {
			t.Fatalf("stream did not recover: reconnects=%d live=%d (was %d)",
				rx.Reconnects(), rx.LiveSlot(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
	query("post-cut")
	if rx.Reconnects() == 0 {
		t.Fatal("no reconnect was counted")
	}
}

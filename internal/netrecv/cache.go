// The catalog build cache. Every client that attaches to a station
// derives the same dataset, index, and layout from the same meta
// document — an attach storm of N clients would otherwise run N
// identical index builds back to back (the build dominates attach cost
// at paper-size datasets). The cache keys on every input BuildCatalog
// reads from the document and single-flights concurrent misses, so the
// storm costs one build and everyone shares the result read-only.

package netrecv

import (
	"fmt"
	"sync"

	"dsi/internal/wire"
)

var catalogCache = struct {
	sync.Mutex
	m map[string]*catalogEntry
}{m: make(map[string]*catalogEntry)}

type catalogEntry struct {
	once sync.Once
	cat  *Catalog
	err  error
}

// catalogKey fingerprints every meta field the catalog derivation
// reads. Live fields (Now, Version, SlotsPerSec, transports) are
// deliberately absent: they vary per fetch without changing the build.
func catalogKey(m wire.StationMeta) string {
	return fmt.Sprintf("%s|%d|%d|%d|%#x|%d|%d|%d|%t|%s|%d|%d|%v|%x",
		m.Dataset.Kind, m.Dataset.N, m.Dataset.Order, m.Dataset.Seed, m.Dataset.Sum,
		m.Capacity, m.Segments, m.ObjectBytes, m.ReserveMCPtr,
		m.Scheduler, m.Channels, m.SwitchSlots, m.ShardBounds, m.FECDesc)
}

// buildCatalogCached is BuildCatalog for regenerated datasets: the
// expensive derivation runs once per distinct key (derivation is
// deterministic, so errors cache too); the returned Catalog is a fresh
// shell over the shared build carrying this call's meta document.
func buildCatalogCached(m wire.StationMeta) (*Catalog, error) {
	key := catalogKey(m)
	catalogCache.Lock()
	e := catalogCache.m[key]
	if e == nil {
		e = &catalogEntry{}
		catalogCache.m[key] = e
	}
	catalogCache.Unlock()
	e.once.Do(func() { e.cat, e.err = buildCatalog(m, nil) })
	if e.err != nil {
		return nil, e.err
	}
	return &Catalog{Meta: m, DS: e.cat.DS, X: e.cat.X, Lay: e.cat.Lay, FEC: e.cat.FEC}, nil
}

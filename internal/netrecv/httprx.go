// The HTTP transports: a chunked binary stream of net frames
// (/v1/stream) or its Server-Sent-Events wrapping (/v1/sse, base64
// data lines for proxies that mangle binary bodies). TCP makes a live
// stream lossless; a severed stream is reconnected with exponential
// backoff, and the slots broadcast during the gap surface as ordinary
// channel losses — the absolute slot clock is global, so no
// re-anchoring is needed beyond what a directory swap in the gap
// already triggers through the in-band control frames.

package netrecv

import (
	"bufio"
	"bytes"
	"context"
	"encoding/base64"
	"net/http"
	"time"

	"dsi/internal/obs"
)

// HTTPReceiver is a dsi.Receiver fed from a station's HTTP stream.
type HTTPReceiver struct {
	Receiver
}

// NewHTTPReceiver bootstraps (or reuses) a catalog and subscribes to
// the station's chunked frame stream. cat may be nil to bootstrap from
// baseURL/v1/meta. Set opt.SSE to subscribe via /v1/sse instead.
func NewHTTPReceiver(baseURL string, cat *Catalog, opt Options) (*HTTPReceiver, error) {
	opt = opt.withDefaults()
	if cat == nil {
		var err error
		if cat, err = Bootstrap(baseURL, opt); err != nil {
			return nil, err
		}
	}
	met := obs.NewNetReceiverMetrics(opt.Registry, "http")
	feed := NewFeed(cat.Lay.Channels(), opt, met)
	ctx, cancel := context.WithCancel(context.Background())
	h := &HTTPReceiver{Receiver: Receiver{feed: feed, met: met, cancel: cancel}}
	go h.streamLoop(ctx, baseURL, opt)
	dec, err := newDecoder(cat, feed, opt)
	if err != nil {
		h.Close()
		return nil, err
	}
	h.Receiver.Receiver = dec
	return h, nil
}

// streamLoop keeps one subscription alive for the receiver's lifetime,
// reconnecting with exponential backoff after any transport failure.
func (h *HTTPReceiver) streamLoop(ctx context.Context, baseURL string, opt Options) {
	path := "/v1/stream"
	if opt.SSE {
		path = "/v1/sse"
	}
	backoff := 50 * time.Millisecond
	first := true
	for ctx.Err() == nil {
		if !first {
			h.reconnects.Add(1)
			if h.met != nil {
				h.met.Reconnects.Inc()
			}
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
		}
		first = false
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+path, nil)
		if err != nil {
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			continue
		}
		if opt.SSE {
			h.drainSSE(resp)
		} else {
			h.drainStream(resp)
		}
		resp.Body.Close()
		backoff = 50 * time.Millisecond
	}
}

// drainStream feeds the raw byte stream until it breaks, carrying
// partial frames across reads.
func (h *HTTPReceiver) drainStream(resp *http.Response) {
	buf := make([]byte, 64<<10)
	var carry []byte
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			carry = append(carry, buf[:n]...)
			used, cerr := h.feed.Consume(carry)
			carry = append(carry[:0], carry[used:]...)
			if cerr != nil {
				return // desynced: tear down, reconnect clean
			}
		}
		if err != nil {
			return
		}
	}
}

// drainSSE feeds the event stream until it breaks. Only the data lines
// matter; each carries one whole batch, so no carry is needed.
func (h *HTTPReceiver) drainSSE(resp *http.Response) {
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 8<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if !bytes.HasPrefix(line, []byte("data: ")) {
			continue
		}
		raw, err := base64.StdEncoding.DecodeString(string(line[len("data: "):]))
		if err != nil {
			if h.met != nil {
				h.met.Garbage.Inc()
			}
			return
		}
		if _, err := h.feed.Consume(raw); err != nil {
			return
		}
	}
}

package netrecv

import (
	"sync"
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/wire"
)

func cacheMeta(n int, seed int64) wire.StationMeta {
	ds := dataset.Uniform(n, 7, seed)
	return wire.StationMeta{
		Dataset:  wire.StationDataset{Kind: "uniform", N: n, Order: 7, Seed: seed, Sum: ds.Checksum()},
		Capacity: 64, Channels: 1, Scheduler: "single",
	}
}

// TestCatalogCacheShared: identical meta documents share one build —
// the attach-storm guarantee.
func TestCatalogCacheShared(t *testing.T) {
	m := cacheMeta(400, 91)
	a, err := BuildCatalog(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCatalog(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.X != b.X || a.DS != b.DS || a.Lay != b.Lay {
		t.Fatal("identical meta did not share the cached build")
	}
	if a == b {
		t.Fatal("catalog shells must be per-call (live meta fields differ per fetch)")
	}

	// Live fields ride the fresh shell, not the cached one.
	m2 := m
	m2.Now = 99999
	c, err := BuildCatalog(m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.X != a.X {
		t.Fatal("live meta fields must not split the cache key")
	}
	if c.Meta.Now != 99999 {
		t.Fatalf("cached catalog carries stale Now %d", c.Meta.Now)
	}
}

// TestCatalogCacheKeyed: any derivation input change misses the cache.
func TestCatalogCacheKeyed(t *testing.T) {
	a, err := BuildCatalog(cacheMeta(400, 92), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCatalog(cacheMeta(400, 93), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.X == b.X {
		t.Fatal("different seeds shared one cached build")
	}
	m := cacheMeta(400, 92)
	m.Capacity = 128
	c, err := BuildCatalog(m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.X == a.X {
		t.Fatal("different capacity shared one cached build")
	}
}

// TestCatalogCacheBypassed: caller-supplied datasets never touch the
// cache (they may be CSV loads the key cannot identify).
func TestCatalogCacheBypassed(t *testing.T) {
	m := cacheMeta(400, 94)
	ds := dataset.Uniform(400, 7, 94)
	a, err := BuildCatalog(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCatalog(m, ds)
	if err != nil {
		t.Fatal(err)
	}
	if a.X == b.X {
		t.Fatal("caller-supplied dataset hit the cache")
	}
}

// TestCatalogCacheSingleFlight: a concurrent attach storm resolves to
// one shared build with no duplicate work visible.
func TestCatalogCacheSingleFlight(t *testing.T) {
	m := cacheMeta(500, 95)
	const clients = 32
	cats := make([]*Catalog, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cat, err := BuildCatalog(m, nil)
			if err != nil {
				t.Error(err)
				return
			}
			cats[i] = cat
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if cats[i] == nil || cats[i].X != cats[0].X {
			t.Fatalf("client %d did not share the single-flight build", i)
		}
	}
}

// TestCatalogCacheChecksumMismatch: a wrong station checksum still
// fails, cached or not.
func TestCatalogCacheChecksumMismatch(t *testing.T) {
	m := cacheMeta(400, 96)
	m.Dataset.Sum++
	for i := 0; i < 2; i++ {
		if _, err := BuildCatalog(m, nil); err == nil {
			t.Fatalf("call %d: checksum mismatch accepted", i)
		}
	}
}

// Catalog bootstrap: the broadcast-disk model makes the schedule
// catalog knowledge, not payload, so a network client first fetches
// the station's /v1/meta document, regenerates the identical dataset
// locally (deterministic generators keyed by kind and seed), rebuilds
// the identical index and layout, and proves the derivation with the
// dataset checksum before trusting a single decoded pointer.

package netrecv

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/wire"
)

// Catalog is everything a network client derives from the station's
// meta document: the dataset, the built index, the channel layout the
// directory version refers to, and the FEC code on air.
type Catalog struct {
	Meta wire.StationMeta
	DS   *dataset.Dataset
	X    *dsi.Index
	Lay  *dsi.Layout
	FEC  wire.FECConfig
}

// Bootstrap fetches baseURL/v1/meta and builds the catalog. Stations
// broadcasting a CSV-loaded dataset cannot be bootstrapped without the
// file; obtain it out of band and call BuildCatalog directly.
func Bootstrap(baseURL string, opt Options) (*Catalog, error) {
	opt = opt.withDefaults()
	cl := &http.Client{Timeout: opt.DialTimeout}
	resp, err := cl.Get(baseURL + "/v1/meta")
	if err != nil {
		return nil, fmt.Errorf("netrecv: meta fetch: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("netrecv: meta fetch: %s", resp.Status)
	}
	var m wire.StationMeta
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("netrecv: meta decode: %w", err)
	}
	return BuildCatalog(m, nil)
}

// BuildCatalog derives the catalog from a meta document. ds supplies
// the dataset for kind "csv" stations (and overrides regeneration
// otherwise); nil regenerates from the document's kind, n, order and
// seed. The dataset checksum must match the station's.
//
// Regenerated catalogs (ds == nil) are served from a process-wide
// cache keyed on every derivation input, so an attach storm — many
// clients bootstrapping against the same station — costs one dataset
// regeneration and one index build, not one per client. The cached
// dataset, index, and layout are shared read-only; the returned
// Catalog itself is fresh and carries the caller's live meta fields.
func BuildCatalog(m wire.StationMeta, ds *dataset.Dataset) (*Catalog, error) {
	if ds == nil && m.Dataset.Kind != "csv" {
		return buildCatalogCached(m)
	}
	return buildCatalog(m, ds)
}

func buildCatalog(m wire.StationMeta, ds *dataset.Dataset) (*Catalog, error) {
	if ds == nil {
		switch m.Dataset.Kind {
		case "uniform":
			ds = dataset.Uniform(m.Dataset.N, m.Dataset.Order, m.Dataset.Seed)
		case "real":
			ds = dataset.Clustered(dataset.DefaultRealConfig(m.Dataset.Seed))
		case "csv":
			return nil, fmt.Errorf("netrecv: station broadcasts a csv dataset; supply it to BuildCatalog out of band")
		default:
			return nil, fmt.Errorf("netrecv: unknown dataset kind %q", m.Dataset.Kind)
		}
	}
	if m.Dataset.Sum != 0 && ds.Checksum() != m.Dataset.Sum {
		return nil, fmt.Errorf("netrecv: dataset checksum %#x does not match the station's %#x; catalogs diverge",
			ds.Checksum(), m.Dataset.Sum)
	}
	x, err := dsi.Build(ds, dsi.Config{
		Capacity:     m.Capacity,
		Segments:     m.Segments,
		ObjectBytes:  m.ObjectBytes,
		ReserveMCPtr: m.ReserveMCPtr,
	})
	if err != nil {
		return nil, fmt.Errorf("netrecv: catalog index build: %w", err)
	}
	var lay *dsi.Layout
	switch m.Scheduler {
	case "", "single":
		lay = x.SingleLayout()
	case "split":
		lay, err = dsi.NewLayout(x, dsi.MultiConfig{
			Channels: m.Channels, Scheduler: dsi.SchedSplit, SwitchSlots: m.SwitchSlots,
		})
	case "shard":
		lay, err = dsi.NewLayout(x, dsi.MultiConfig{
			Channels: m.Channels, Scheduler: dsi.SchedShard, SwitchSlots: m.SwitchSlots,
			ShardBounds: m.ShardBounds,
		})
	default:
		err = fmt.Errorf("unknown scheduler %q", m.Scheduler)
	}
	if err != nil {
		return nil, fmt.Errorf("netrecv: catalog layout: %w", err)
	}
	cat := &Catalog{Meta: m, DS: ds, X: x, Lay: lay}
	if len(m.FECDesc) > 0 {
		cfg, _, err := wire.DecodeFECDesc(m.FECDesc)
		if err != nil {
			return nil, fmt.Errorf("netrecv: catalog FEC descriptor: %w", err)
		}
		cat.FEC = cfg
	}
	return cat, nil
}

// Version returns the directory version the catalog was cut for.
func (c *Catalog) Version() uint32 {
	if c.Meta.Version == 0 {
		return 1
	}
	return c.Meta.Version
}

// minWait is the floor applied to bootstrap waits so short
// WaitTimeouts tuned for slot reads don't starve stream start-up.
const minWait = 2 * time.Second

// bootstrapWait is how long receiver construction waits for the stream
// to come alive.
func bootstrapWait(opt Options) time.Duration {
	if opt.WaitTimeout > minWait {
		return opt.WaitTimeout
	}
	return minWait
}

// Adaptive replan cadence. The online loop's original cadence was a
// fixed query count between drift checks (the drift experiment's
// DriftCheckEvery): cheap while the workload is stable, but every
// check of a stable workload is wasted, and when the hot spot finally
// migrates the fixed interval bounds how fast the drift can be
// noticed. A Cadence spends the same planning budget where it matters:
// every check feeds the measured drift ratio back, a rising trend
// halves the interval to the next check (down to Min) and a flat or
// falling trend doubles it (up to Max), so checks thin out over stable
// stretches and crowd together exactly while drift is building toward
// the trigger.

package sched

// Cadence adapts the interval between replan checks to the drift
// trend. Use: run a check every Interval() queries, feed the measured
// drift ratio to Observe, and wait the returned interval until the
// next check. The zero value is invalid; construct with NewCadence.
type Cadence struct {
	min, max int
	cur      int
	last     float64
	primed   bool
}

// NewCadence returns a cadence starting at the initial interval and
// adapting within [min, max]. Panics on a non-positive or inverted
// range or an initial interval outside it.
func NewCadence(initial, min, max int) *Cadence {
	if min < 1 || max < min || initial < min || initial > max {
		panic("sched: cadence needs 1 <= min <= initial <= max")
	}
	return &Cadence{min: min, max: max, cur: initial}
}

// Interval returns the current number of queries until the next check.
func (c *Cadence) Interval() int { return c.cur }

// Observe feeds the drift ratio measured at a check and returns the
// interval until the next one: a ratio above the previous check's
// halves the interval (drift is building — look again soon), anything
// else doubles it (the plan still fits — spend the budget elsewhere).
// The first observation only primes the trend and keeps the interval.
func (c *Cadence) Observe(drift float64) int {
	switch {
	case !c.primed:
		c.primed = true
	case drift > c.last:
		c.cur /= 2
		if c.cur < c.min {
			c.cur = c.min
		}
	default:
		c.cur *= 2
		if c.cur > c.max {
			c.cur = c.max
		}
	}
	c.last = drift
	return c.cur
}

package sched

import (
	"math"
	"math/rand"
	"testing"

	"dsi/internal/dsi"
	"dsi/internal/hilbert"
)

// frameRange returns a target range covering exactly frame f's HC span.
func frameRange(x *dsi.Index, f int) hilbert.Range {
	lo := x.MinHC(f)
	hi := x.DS.Curve.Size()
	if f+1 < x.NF {
		hi = x.MinHC(f + 1)
	}
	return hilbert.Range{Lo: lo, Hi: hi}
}

// TestOnlineNoDecayMatchesOffline: with decay disabled the online
// profiler is the offline Profile, count for count.
func TestOnlineNoDecayMatchesOffline(t *testing.T) {
	x := buildIndex(t, 300, 21)
	off := NewProfile(x)
	on := NewOnlineProfiler(x, 0)
	rng := rand.New(rand.NewSource(5))
	size := x.DS.Curve.Size()
	for i := 0; i < 50; i++ {
		lo := rng.Uint64() % size
		hi := lo + 1 + rng.Uint64()%(size/10)
		if hi > size {
			hi = size
		}
		targets := []hilbert.Range{{Lo: lo, Hi: hi}}
		off.AddRanges(targets, 1)
		on.Observe(targets, 1)
	}
	snap := on.Snapshot(nil)
	for f := range snap.Freq {
		if snap.Freq[f] != off.Freq[f] {
			t.Fatalf("frame %d: online %g != offline %g", f, snap.Freq[f], off.Freq[f])
		}
	}
	if on.Queries() != 50 {
		t.Fatalf("Queries() = %d", on.Queries())
	}
}

// TestOnlineDecayHalfLife: an observation's weight halves every
// halfLife further observations, to floating-point accuracy.
func TestOnlineDecayHalfLife(t *testing.T) {
	x := buildIndex(t, 300, 22)
	const halfLife = 8
	op := NewOnlineProfiler(x, halfLife)
	early := frameRange(x, 10)
	late := frameRange(x, 200)
	op.Observe([]hilbert.Range{early}, 1)
	for i := 0; i < halfLife-1; i++ {
		op.Observe(nil, 1) // decay ticks with no charge
	}
	op.Observe([]hilbert.Range{late}, 1)
	snap := op.Snapshot(nil)
	we, wl := snap.Freq[10], snap.Freq[200]
	if wl <= 0 || we <= 0 {
		t.Fatalf("weights not recorded: early %g late %g", we, wl)
	}
	if ratio := we / wl; math.Abs(ratio-0.5) > 1e-9 {
		t.Fatalf("early/late weight ratio %g, want 0.5 after one half-life", ratio)
	}
}

// TestOnlineRescaleKeepsProportions: a tiny half-life drives the lazy
// scale over the renormalization threshold within a few observations;
// proportions between surviving observations must come through intact
// and finite.
func TestOnlineRescaleKeepsProportions(t *testing.T) {
	x := buildIndex(t, 300, 23)
	op := NewOnlineProfiler(x, 0.01) // scale grows ~2^100 per tick
	a := frameRange(x, 50)
	b := frameRange(x, 250)
	for i := 0; i < 20; i++ {
		op.Observe([]hilbert.Range{a}, 1)
	}
	op.Observe([]hilbert.Range{b}, 3)
	snap := op.Snapshot(nil)
	for f, w := range snap.Freq {
		if math.IsInf(w, 0) || math.IsNaN(w) {
			t.Fatalf("frame %d weight %g not finite", f, w)
		}
	}
	// The b observation is the most recent: weight ~3; the last a
	// observation is one tick older: decayed by 2^100.
	if snap.Freq[250] < 2.99 || snap.Freq[250] > 3.01 {
		t.Fatalf("latest observation weighs %g, want ~3", snap.Freq[250])
	}
	if snap.Freq[50] > 1e-20 {
		t.Fatalf("stale observation weighs %g, want ~0", snap.Freq[50])
	}
}

// TestOnlineObserveAllocs: the steady-state observe/snapshot/replan
// loop must not allocate per query beyond the returned Plan.
func TestOnlineObserveAllocs(t *testing.T) {
	x := buildIndex(t, 300, 24)
	op := NewOnlineProfiler(x, 16)
	targets := []hilbert.Range{frameRange(x, 7)}
	snap := NewProfile(x)
	if n := testing.AllocsPerRun(200, func() {
		op.Observe(targets, 1)
		op.Snapshot(snap)
	}); n != 0 {
		t.Fatalf("observe+snapshot allocates %.1f times per query", n)
	}
}

// TestReplanMatchesPartition: the Replanner's fresh cut is exactly the
// offline Partition of the same snapshot — including when one Replanner
// instance is reused across profiles and shard counts (the buffer
// recycling must not leak state between cuts).
func TestReplanMatchesPartition(t *testing.T) {
	x := buildIndex(t, 200, 25)
	rng := rand.New(rand.NewSource(9))
	var r Replanner
	for trial := 0; trial < 30; trial++ {
		k := 1 + rng.Intn(8)
		p := NewProfile(x)
		for f := range p.Freq {
			if rng.Intn(3) > 0 {
				p.Freq[f] = rng.Float64()
			}
		}
		want, err := Partition(p, k)
		if err != nil {
			t.Fatal(err)
		}
		live, err := Uniform(x, k)
		if err != nil {
			t.Fatal(err)
		}
		fresh, drift, _, err := r.Replan(p, live, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if drift < 1 {
			t.Fatalf("trial %d: drift %g below 1", trial, drift)
		}
		for s := range want.Bounds {
			if fresh.Bounds[s] != want.Bounds[s] {
				t.Fatalf("trial %d (k=%d): replan bounds %v != partition %v",
					trial, k, fresh.Bounds, want.Bounds)
			}
		}
	}
}

// TestReplannerGrowsAcrossInstances: one Replanner reused over indexes
// of different frame counts — including a larger one after a smaller
// one — must resize its DP buffers instead of reslicing past their
// capacity.
func TestReplannerGrowsAcrossInstances(t *testing.T) {
	var r Replanner
	for _, n := range []int{100, 150, 80, 400} {
		x := buildIndex(t, n, int64(60+n))
		p := NewProfile(x)
		for f := 0; f < x.NF/5; f++ {
			p.Freq[f] = 1
		}
		live, err := Uniform(x, 3)
		if err != nil {
			t.Fatal(err)
		}
		fresh, _, _, err := r.Replan(p, live, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Partition(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		for s := range want.Bounds {
			if fresh.Bounds[s] != want.Bounds[s] {
				t.Fatalf("n=%d: reused replanner bounds %v != partition %v", n, fresh.Bounds, want.Bounds)
			}
		}
	}
}

// TestReplanTriggersOnDrift is the re-planning loop end to end at the
// planning layer: a profiler tracking a workload whose hot span
// migrates reports no drift while the live plan matches the load, then
// crosses the trigger threshold after the migration, and the fresh plan
// strictly improves the decayed objective.
func TestReplanTriggersOnDrift(t *testing.T) {
	x := buildIndex(t, 400, 26)
	size := x.DS.Curve.Size()
	const ratio = 1.25
	op := NewOnlineProfiler(x, 40)
	head := hilbert.Range{Lo: x.MinHC(0), Hi: x.MinHC(40)}
	tail := hilbert.Range{Lo: x.MinHC(x.NF - 40), Hi: size}

	for i := 0; i < 200; i++ {
		op.Observe([]hilbert.Range{head}, 1)
	}
	live, err := Partition(op.Snapshot(nil), 3)
	if err != nil {
		t.Fatal(err)
	}
	var r Replanner
	if _, drift, replan, err := r.Replan(op.Snapshot(nil), live, ratio); err != nil || replan {
		t.Fatalf("replan on the plan's own training profile: drift %g replan %v err %v", drift, replan, err)
	}

	// The hot spot migrates: a few half-lives of tail queries wash the
	// head out of the decayed profile.
	for i := 0; i < 300; i++ {
		op.Observe([]hilbert.Range{tail}, 1)
	}
	snap := op.Snapshot(nil)
	fresh, drift, replan, err := r.Replan(snap, live, ratio)
	if err != nil {
		t.Fatal(err)
	}
	if !replan {
		t.Fatalf("drift %g did not trigger a replan at ratio %g", drift, ratio)
	}
	if lc, fc := PlanCost(snap.Freq, live.Bounds), PlanCost(snap.Freq, fresh.Bounds); fc >= lc {
		t.Fatalf("fresh plan cost %g not below live %g", fc, lc)
	}
	// The fresh plan gives the migrated hot span a short cycle: the
	// shard holding the tail is smaller than the one holding the head.
	tailShard, headShard := -1, -1
	for s := 0; s < fresh.Shards(); s++ {
		if fresh.Bounds[s] <= x.NF-20 && x.NF-20 < fresh.Bounds[s+1] {
			tailShard = s
		}
		if fresh.Bounds[s] <= 20 && 20 < fresh.Bounds[s+1] {
			headShard = s
		}
	}
	ts := fresh.Bounds[tailShard+1] - fresh.Bounds[tailShard]
	hs := fresh.Bounds[headShard+1] - fresh.Bounds[headShard]
	if ts >= hs {
		t.Fatalf("tail shard (%d frames) not smaller than head shard (%d): %v", ts, hs, fresh.Bounds)
	}
}

// TestReplanErrors covers the argument validation.
func TestReplanErrors(t *testing.T) {
	x := buildIndex(t, 100, 27)
	live, err := Uniform(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProfile(x)
	if _, _, _, err := Replan(p, live, 0.5); err == nil {
		t.Error("ratio below 1 accepted")
	}
	other := buildIndex(t, 100, 28)
	if _, _, _, err := Replan(NewProfile(other), live, 1.5); err == nil {
		t.Error("profile of a different index accepted")
	}
	// Zero profile: nothing to gain, never a replan.
	if fresh, drift, replan, err := Replan(p, live, 1.0); err != nil || replan || drift != 1 || fresh != live {
		t.Errorf("zero profile: fresh %v drift %g replan %v err %v", fresh, drift, replan, err)
	}
}

// TestPlanCostMatchesObjective: PlanCost is the test-reference
// objective used by the brute-force partition checks.
func TestPlanCostMatchesObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := make([]float64, 50)
	for i := range w {
		w[i] = rng.Float64()
	}
	bounds := []int{0, 10, 30, 50}
	if got, want := PlanCost(w, bounds), planCost(w, bounds); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PlanCost %g != reference %g", got, want)
	}
}

// Online re-planning: the drifting-workload counterpart of the offline
// Profile/Partition pair. An OnlineProfiler maintains exponentially
// decayed per-frame access counts, updated in O(touched frames) per
// query; a Replanner re-cuts the broadcast with the same
// divide-and-conquer Monge DP the offline partitioner uses (its working
// arrays recycled across cuts) and reports how far the live plan has
// drifted from the fresh optimum, so a transmitter replans only when
// the drift exceeds a configured ratio.

package sched

import (
	"fmt"
	"math"

	"dsi/internal/dsi"
	"dsi/internal/hilbert"
	"dsi/internal/obs"
)

// rescaleAbove bounds the lazy decay scale: when the per-observation
// weight grows past it, the accumulated counts are renormalized once
// (O(frames), amortized over the hundreds of observations it takes the
// scale to grow that far).
const rescaleAbove = 1e150

// OnlineProfiler accumulates exponentially decayed per-frame access
// frequencies from a live query stream. After n further observations an
// old observation's weight has decayed by 0.5^(n/halfLife), so the
// profile tracks the current access skew and forgets a migrated-away
// hot spot within a few half-lives.
//
// Decay is lazy: instead of multiplying every count by the decay factor
// per observation (O(frames) each), new observations are charged with a
// growing scale — equivalent weights at O(ranges) per update — and the
// counts are renormalized only when the scale nears overflow.
//
// An OnlineProfiler is not safe for concurrent use; the transmitter's
// planning loop owns it.
type OnlineProfiler struct {
	x     *dsi.Index
	freq  []float64 // scaled decayed counts
	scale float64   // weight of a unit observation now
	decay float64   // per-observation decay factor in (0, 1]
	n     int64
}

// NewOnlineProfiler returns an empty decayed profile over the index's
// frames. halfLife is the observation count over which an observation's
// influence halves; halfLife <= 0 disables decay (plain counting, the
// offline Profile's semantics).
func NewOnlineProfiler(x *dsi.Index, halfLife float64) *OnlineProfiler {
	decay := 1.0
	if halfLife > 0 {
		decay = math.Exp2(-1 / halfLife)
	}
	return &OnlineProfiler{
		x:     x,
		freq:  make([]float64, x.NF),
		scale: 1,
		decay: decay,
	}
}

// Queries returns the number of observations absorbed so far.
func (op *OnlineProfiler) Queries() int64 { return op.n }

// Observe absorbs one query: every earlier observation decays by one
// decay step and weight w lands on the frames overlapping the query's
// target ranges (its HC decomposition — exactly what Profile.AddRanges
// charges). Cost is O(frames touched by the ranges).
func (op *OnlineProfiler) Observe(targets []hilbert.Range, w float64) {
	op.tick()
	for _, r := range targets {
		chargeRange(op.x, op.freq, r.Lo, r.Hi, w*op.scale)
	}
}

// ObserveRange is Observe for a single pre-decomposed range.
func (op *OnlineProfiler) ObserveRange(lo, hi uint64, w float64) {
	op.tick()
	chargeRange(op.x, op.freq, lo, hi, w*op.scale)
}

// tick advances the decay clock by one observation and renormalizes
// when the lazy scale nears overflow.
func (op *OnlineProfiler) tick() {
	op.n++
	op.scale /= op.decay
	if op.scale > rescaleAbove {
		inv := 1 / op.scale
		for f := range op.freq {
			op.freq[f] *= inv
		}
		op.scale = 1
	}
}

// Seed adds an offline profile's counts at weight w, as if its whole
// accumulation had just been observed (it decays as one batch). A
// transmitter warm-starts its online profiler from the training profile
// its initial plan was cut from, so the first live observations refine
// a populated profile instead of whipsawing an empty one.
func (op *OnlineProfiler) Seed(p *Profile, w float64) {
	if p.X != op.x {
		panic("sched: seeding from a profile of a different index")
	}
	for f, v := range p.Freq {
		op.freq[f] += v * w * op.scale
	}
}

// Snapshot materializes the current decayed profile into dst (allocated
// when nil), normalized so the most recent observation has weight ~1.
// The snapshot is an ordinary Profile: Partition and Replan consume it.
func (op *OnlineProfiler) Snapshot(dst *Profile) *Profile {
	if dst == nil {
		dst = NewProfile(op.x)
	}
	if dst.X != op.x {
		panic("sched: snapshot into a profile of a different index")
	}
	if len(dst.Freq) != op.x.NF {
		dst.Freq = make([]float64, op.x.NF)
	}
	inv := 1 / op.scale
	for f, v := range op.freq {
		dst.Freq[f] = v * inv
	}
	return dst
}

// PlanCost returns the broadcast-disks objective of the given shard
// bounds under the frequency vector: sum over shards of (shard
// weight)·(shard length), the quantity Partition minimizes. Frequencies
// need not be normalized; ratios of PlanCost values are scale-free.
func PlanCost(freq []float64, bounds []int) float64 {
	var c float64
	for s := 0; s+1 < len(bounds); s++ {
		var w float64
		for f := bounds[s]; f < bounds[s+1]; f++ {
			w += freq[f]
		}
		c += w * float64(bounds[s+1]-bounds[s])
	}
	return c
}

// Replanner owns the reusable state of the online re-planning loop: the
// Monge DP's working arrays survive across cuts, so a steady-state
// Replan allocates only the returned Plan. The zero value is ready for
// use.
type Replanner struct {
	dp mongeDP

	// met, when set, counts planning checks, trigger/skip decisions, and
	// the measured drift ratios. Nil counts nothing.
	met *obs.SchedMetrics
}

// SetObs installs the scheduler metric bundle (nil counts nothing).
func (r *Replanner) SetObs(m *obs.SchedMetrics) { r.met = m }

// count records one successful planning pass's outcome.
func (r *Replanner) count(drift float64, replan bool) {
	if r.met == nil {
		return
	}
	r.met.Checks.Inc()
	if replan {
		r.met.ReplansTriggered.Inc()
	} else {
		r.met.ReplansSkipped.Inc()
	}
	r.met.DriftRatio.Set(drift)
	r.met.Drift.Observe(drift)
}

// Replan re-cuts the profile into as many shards as the live plan has,
// using the same divide-and-conquer Monge DP as Partition, and measures
// the live plan's drift: the ratio of its objective to the fresh
// optimum's under the current (decayed) profile, >= 1. replan reports
// whether the drift exceeds ratio — the caller then swaps the broadcast
// to the fresh plan at the next cycle seam, and otherwise keeps the
// live plan on air (a fresh near-tie is not worth disturbing clients
// for).
//
// A profile with no weight measures drift 1 (every partition costs
// zero, so nothing can be gained by moving cuts).
func (r *Replanner) Replan(p *Profile, live *Plan, ratio float64) (fresh *Plan, drift float64, replan bool, err error) {
	if live.X != p.X {
		return nil, 0, false, fmt.Errorf("sched: live plan and profile index differ")
	}
	if ratio < 1 {
		return nil, 0, false, fmt.Errorf("sched: replan ratio %g below 1", ratio)
	}
	k := live.Shards()
	if k < 1 || k > p.X.NF {
		return nil, 0, false, fmt.Errorf("sched: %d shards for %d frames", k, p.X.NF)
	}
	if p.Total() == 0 {
		r.count(1, false)
		return live, 1, false, nil
	}
	bounds := r.dp.cut(p.Freq, k)
	if err := snapBounds(p.X, bounds); err != nil {
		return nil, 0, false, err
	}
	fresh = planFor(p, bounds)
	liveCost := PlanCost(p.Freq, live.Bounds)
	freshCost := PlanCost(p.Freq, fresh.Bounds)
	// Snapping off duplicate minima can nudge the DP optimum, so guard
	// the ratio against a (theoretical) fresh cost above the live one.
	if freshCost <= 0 || liveCost <= freshCost {
		r.count(1, false)
		return fresh, 1, false, nil
	}
	drift = liveCost / freshCost
	replan = drift > ratio
	r.count(drift, replan)
	return fresh, drift, replan, nil
}

// Replan is the convenience entry point for one-shot re-cuts; loops
// should hold a Replanner to recycle the DP state.
func Replan(p *Profile, live *Plan, ratio float64) (fresh *Plan, drift float64, replan bool, err error) {
	var r Replanner
	return r.Replan(p, live, ratio)
}

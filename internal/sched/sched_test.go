package sched

import (
	"math"
	"math/rand"
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/hilbert"
)

// brutePartition is the O(n^2 k) reference DP the Monge-optimized
// partitioner must match exactly.
func brutePartition(w []float64, k int) (float64, []int) {
	n := len(w)
	pre := make([]float64, n+1)
	for i, v := range w {
		pre[i+1] = pre[i] + v
	}
	cost := func(j, i int) float64 { return (pre[i] - pre[j]) * float64(i-j) }
	dp := make([][]float64, k+1)
	from := make([][]int, k+1)
	for s := range dp {
		dp[s] = make([]float64, n+1)
		from[s] = make([]int, n+1)
		for i := range dp[s] {
			dp[s][i] = math.Inf(1)
		}
	}
	dp[0][0] = 0
	for s := 1; s <= k; s++ {
		for i := s; i <= n; i++ {
			for j := s - 1; j < i; j++ {
				if c := dp[s-1][j] + cost(j, i); c < dp[s][i] {
					dp[s][i] = c
					from[s][i] = j
				}
			}
		}
	}
	bounds := make([]int, k+1)
	bounds[k] = n
	for s := k; s >= 1; s-- {
		bounds[s-1] = from[s][bounds[s]]
	}
	return dp[k][n], bounds
}

func planCost(w []float64, bounds []int) float64 {
	var c float64
	for s := 0; s+1 < len(bounds); s++ {
		var sum float64
		for f := bounds[s]; f < bounds[s+1]; f++ {
			sum += w[f]
		}
		c += sum * float64(bounds[s+1]-bounds[s])
	}
	return c
}

func TestPartitionMongeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(60)
		k := 1 + rng.Intn(n)
		w := make([]float64, n)
		for i := range w {
			switch rng.Intn(3) {
			case 0: // Zipf-ish head
				w[i] = 1 / math.Pow(float64(i+1), 0.9)
			case 1:
				w[i] = rng.Float64()
			default:
				w[i] = 0
			}
		}
		wantCost, _ := brutePartition(w, k)
		bounds := partitionMonge(w, k)
		if len(bounds) != k+1 || bounds[0] != 0 || bounds[k] != n {
			t.Fatalf("trial %d: malformed bounds %v", trial, bounds)
		}
		for s := 1; s <= k; s++ {
			if bounds[s] <= bounds[s-1] {
				t.Fatalf("trial %d: empty shard in %v", trial, bounds)
			}
		}
		if got := planCost(w, bounds); math.Abs(got-wantCost) > 1e-9*(1+wantCost) {
			t.Fatalf("trial %d (n=%d k=%d): monge cost %g != brute %g (bounds %v)",
				trial, n, k, got, wantCost, bounds)
		}
	}
}

func buildIndex(t *testing.T, n int, seed int64) *dsi.Index {
	t.Helper()
	ds := dataset.Uniform(n, 7, seed)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestProfileAddRange(t *testing.T) {
	x := buildIndex(t, 300, 3)
	p := NewProfile(x)
	// A single-object range touches the frames that can hold its HC
	// value — conservatively including a frame whose successor starts
	// exactly at the value (duplicate minima across a boundary would
	// put the object there).
	hc := x.DS.Objects[123].HC
	p.AddRange(hc, hc+1, 1)
	for f := 0; f < x.NF; f++ {
		lo := x.MinHC(f)
		hi := uint64(math.MaxUint64)
		if f+1 < x.NF {
			hi = x.MinHC(f + 1)
		}
		want := 0.0
		if hc >= lo && hc < hi || hi == hc {
			want = 1
		}
		if p.Freq[f] != want {
			t.Fatalf("frame %d weight %g, want %g", f, p.Freq[f], want)
		}
	}
	// A full-curve range touches every frame once more.
	p.AddRanges([]hilbert.Range{{Lo: 0, Hi: x.DS.Curve.Size()}}, 2)
	for f := 0; f < x.NF; f++ {
		if p.Freq[f] < 2 {
			t.Fatalf("frame %d missed the full-curve range: %g", f, p.Freq[f])
		}
	}
	if p.Total() < float64(2*x.NF) {
		t.Fatalf("total %g too small", p.Total())
	}
}

func TestUniformPlanBalanced(t *testing.T) {
	x := buildIndex(t, 300, 5)
	plan, err := Uniform(x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Shards() != 4 {
		t.Fatalf("got %d shards", plan.Shards())
	}
	for s := 0; s < 4; s++ {
		size := plan.Bounds[s+1] - plan.Bounds[s]
		if size < x.NF/4-1 || size > x.NF/4+1 {
			t.Fatalf("uniform shard %d has %d frames (nf=%d)", s, size, x.NF)
		}
	}
}

func TestSkewedPlanShrinksHotShard(t *testing.T) {
	x := buildIndex(t, 400, 7)
	p := NewProfile(x)
	// All load on the first 40 frames.
	for f := 0; f < 40; f++ {
		p.Freq[f] = 1
	}
	plan, err := Partition(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The optimum splits the hot 40 frames across two fast shards and
	// leaves the unqueried tail to the third: every loaded frame sits
	// in a short cycle, the cold 360 frames in the long one.
	if plan.Bounds[2] != 40 {
		t.Fatalf("cold tail not isolated: bounds %v", plan.Bounds)
	}
	if plan.Load[0]+plan.Load[1] < 0.999 {
		t.Fatalf("hot shards carry load %g, want ~1", plan.Load[0]+plan.Load[1])
	}
	// The skew-aware plan must beat uniform on its own objective.
	uni, err := Uniform(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	uni.Load = planLoads(p, uni.Bounds)
	if pw, uw := plan.ExpectedWait(16), uni.ExpectedWait(16); pw >= uw {
		t.Fatalf("skewed plan wait %g >= uniform %g", pw, uw)
	}
}

// planLoads recomputes shard loads of arbitrary bounds under a profile.
func planLoads(p *Profile, bounds []int) []float64 {
	loads := make([]float64, len(bounds)-1)
	total := p.Total()
	if total == 0 {
		return loads
	}
	for s := 0; s+1 < len(bounds); s++ {
		for f := bounds[s]; f < bounds[s+1]; f++ {
			loads[s] += p.Freq[f]
		}
		loads[s] /= total
	}
	return loads
}

func TestPartitionErrors(t *testing.T) {
	x := buildIndex(t, 100, 9)
	if _, err := Partition(NewProfile(x), 0); err == nil {
		t.Error("0 shards accepted")
	}
	if _, err := Partition(NewProfile(x), x.NF+1); err == nil {
		t.Error("more shards than frames accepted")
	}
	ds := dataset.Uniform(100, 7, 9)
	xr, err := dsi.Build(ds, dsi.Config{Capacity: 64, Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Partition(NewProfile(xr), 2); err == nil {
		t.Error("reorganized broadcast accepted")
	}
}

func TestPlanLayoutRoundTrip(t *testing.T) {
	x := buildIndex(t, 200, 11)
	p := NewProfile(x)
	for f := 0; f < 25; f++ {
		p.Freq[f] = 3
	}
	plan, err := Partition(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	lay, err := plan.Layout(2)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Channels() != 4 {
		t.Fatalf("layout has %d channels, want 4", lay.Channels())
	}
	// Shard s's data channel cycle is exactly its frame count times the
	// frame payload.
	for s := 0; s < plan.Shards(); s++ {
		want := (plan.Bounds[s+1] - plan.Bounds[s]) * lay.DataPackets
		if got := lay.ChanLen(1 + s); got != want {
			t.Fatalf("shard %d cycle %d slots, want %d", s, got, want)
		}
	}
}

package sched

import (
	"math/rand"
	"testing"

	"dsi/internal/spatial"
)

// TestProfileKNNTraceConcentratesHotDisks closes the ROADMAP gap that
// Profile was only exercised with window decompositions: a kNN trace
// profiles through the same HC-range charging, because a kNN query's
// search space is a disk around the query point and the client visits
// exactly the frames overlapping the disk's HC decomposition. Profiling
// a trace of kNN disks clustered at a hot location must concentrate the
// load on the frames under the hot spot, and the resulting partition
// must give those frames a shard with a shorter cycle and the dominant
// load share.
func TestProfileKNNTraceConcentratesHotDisks(t *testing.T) {
	x := buildIndex(t, 500, 31)
	ds := x.DS
	curve := ds.Curve
	side := curve.Side()

	// kNN queries cluster around a hot location; the search-disk radius
	// varies with the draw, imitating the shrinking search spaces of a
	// real kNN execution (large first-phase disk, tight final disk).
	hot := spatial.Point{X: side / 5, Y: side / 5}
	rng := rand.New(rand.NewSource(17))
	prof := NewProfile(x)
	for q := 0; q < 200; q++ {
		qx := float64(hot.X) + rng.NormFloat64()*3
		qy := float64(hot.Y) + rng.NormFloat64()*3
		r := 2 + rng.Float64()*10
		prof.AddRanges(curve.AppendRangesDisk(nil, qx, qy, r), 1)
	}
	if prof.Total() == 0 {
		t.Fatal("kNN trace produced an empty profile")
	}

	// The hot frame: the one whose HC span contains the hot cell.
	hotHC := curve.Encode(hot.X, hot.Y)
	hotFrame := 0
	for f := 0; f < x.NF; f++ {
		if x.MinHC(f) <= hotHC {
			hotFrame = f
		}
	}
	if prof.Freq[hotFrame] == 0 {
		t.Fatalf("hot frame %d uncharged by the kNN trace", hotFrame)
	}

	const k = 4
	plan, err := Partition(prof, k)
	if err != nil {
		t.Fatal(err)
	}
	hotShard := -1
	for s := 0; s < k; s++ {
		if plan.Bounds[s] <= hotFrame && hotFrame < plan.Bounds[s+1] {
			hotShard = s
		}
	}
	hotLen := plan.Bounds[hotShard+1] - plan.Bounds[hotShard]
	maxLen, maxLoad := 0, 0.0
	for s := 0; s < k; s++ {
		if l := plan.Bounds[s+1] - plan.Bounds[s]; l > maxLen {
			maxLen = l
		}
		if s != hotShard && plan.Load[s] > maxLoad {
			maxLoad = plan.Load[s]
		}
	}
	if hotLen >= x.NF/k {
		t.Errorf("hot shard has %d frames, not below the balanced %d: bounds %v",
			hotLen, x.NF/k, plan.Bounds)
	}
	if hotLen >= maxLen {
		t.Errorf("hot shard (%d frames) not shorter than the coldest (%d): bounds %v",
			hotLen, maxLen, plan.Bounds)
	}
	if plan.Load[hotShard] <= maxLoad {
		t.Errorf("hot shard load %.3f not dominant (best other %.3f): loads %v",
			plan.Load[hotShard], maxLoad, plan.Load)
	}
	// And the plan beats uniform striping on the broadcast-disks
	// objective for this kNN workload.
	uni, err := Uniform(x, k)
	if err != nil {
		t.Fatal(err)
	}
	uni.Load = planLoads(prof, uni.Bounds)
	if pw, uw := plan.ExpectedWait(16), uni.ExpectedWait(16); pw >= uw {
		t.Errorf("kNN-trace plan wait %g not below uniform %g", pw, uw)
	}
}

package sched

import (
	"math/rand"
	"testing"

	"dsi/internal/hilbert"
)

// cadenceBed builds the migration scenario the cadence is for: a plan
// trained on a hot span at the head of the HC order, a stable query
// phase on that span, then a migrated phase on a span half the rank
// space away.
type cadenceBed struct {
	stream    []hilbert.Range
	migrateAt int
	live      *Plan
	train     *Profile
}

func newCadenceBed(t *testing.T) *cadenceBed {
	t.Helper()
	x := buildIndex(t, 240, 31)
	rng := rand.New(rand.NewSource(17))
	hot := func(base, width int) hilbert.Range {
		return frameRange(x, base+rng.Intn(width))
	}

	train := NewProfile(x)
	for i := 0; i < 400; i++ {
		r := hot(0, 24)
		train.AddRanges([]hilbert.Range{r}, 1)
	}
	live, err := Partition(train, 3)
	if err != nil {
		t.Fatal(err)
	}

	const stable, drifted = 200, 400
	b := &cadenceBed{migrateAt: stable, live: live, train: train}
	for i := 0; i < stable; i++ {
		b.stream = append(b.stream, hot(0, 24))
	}
	// The hot spot migrates gradually: the fraction of load on the new
	// span ramps up over 250 queries, so the measured drift climbs
	// across several checks before crossing the trigger — the regime an
	// adaptive cadence exploits (an instantaneous jump is detected at
	// the very next check under any cadence).
	for i := 0; i < drifted; i++ {
		frac := float64(i) / 250
		if rng.Float64() < frac {
			b.stream = append(b.stream, hot(120, 24))
		} else {
			b.stream = append(b.stream, hot(0, 24))
		}
	}
	return b
}

// runCadenceLoop replays the stream through the online planning loop,
// checking for drift whenever the stepper says to, and stops at the
// first trigger. It returns the number of checks spent (the planning
// cost) and the query index of detection (-1 when the trigger never
// fired).
func (b *cadenceBed) runCadenceLoop(t *testing.T, initial int, step func(drift float64) int) (checks, detect int) {
	t.Helper()
	x := b.live.X
	op := NewOnlineProfiler(x, 120)
	op.Seed(b.train, 1.0/400)
	var rp Replanner
	snap := NewProfile(x)
	nextCheck := initial
	detect = -1
	for i, r := range b.stream {
		op.ObserveRange(r.Lo, r.Hi, 1)
		if i+1 < nextCheck {
			continue
		}
		checks++
		_, drift, trig, err := rp.Replan(op.Snapshot(snap), b.live, 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if trig {
			detect = i
			return checks, detect
		}
		nextCheck = i + 1 + step(drift)
	}
	return checks, detect
}

// TestCadenceCutsDetectionLagAtEqualCost is the adaptive-cadence
// contract: against a fixed cadence spending the same (or more)
// planning checks, the adaptive cadence detects the migration sooner —
// it banks checks over the stable phase and spends them densely while
// the measured drift is rising.
func TestCadenceCutsDetectionLagAtEqualCost(t *testing.T) {
	b := newCadenceBed(t)

	cad := NewCadence(16, 2, 64)
	adChecks, adDetect := b.runCadenceLoop(t, cad.Interval(), cad.Observe)
	if adDetect < 0 {
		t.Fatal("adaptive cadence never detected the migration")
	}
	if adDetect < b.migrateAt {
		t.Fatalf("adaptive cadence triggered at %d, before the migration at %d", adDetect, b.migrateAt)
	}
	adLag := adDetect - b.migrateAt

	// The fixed cadence of equal planning cost: the interval that would
	// spend the adaptive run's check budget evenly over the same span.
	equalF := (adDetect + adChecks) / adChecks
	fxChecks, fxDetect := b.runCadenceLoop(t, equalF, func(float64) int { return equalF })
	if fxDetect < 0 {
		t.Fatal("fixed cadence never detected the migration")
	}
	fxLag := fxDetect - b.migrateAt

	if adChecks > fxChecks {
		t.Errorf("adaptive spent %d checks, fixed(%d) spent %d: not equal planning cost", adChecks, equalF, fxChecks)
	}
	if adLag >= fxLag {
		t.Errorf("adaptive lag %d (cost %d checks) not below fixed(%d) lag %d (cost %d checks)",
			adLag, adChecks, equalF, fxLag, fxChecks)
	}
	t.Logf("adaptive: lag %d in %d checks; fixed every %d: lag %d in %d checks",
		adLag, adChecks, equalF, fxLag, fxChecks)
}

// TestCadenceBounds pins the interval dynamics: rising drift halves
// down to Min, flat or falling drift doubles up to Max, and the first
// observation only primes the trend.
func TestCadenceBounds(t *testing.T) {
	c := NewCadence(16, 2, 64)
	if got := c.Observe(1.0); got != 16 {
		t.Fatalf("priming observation moved the interval to %d", got)
	}
	for i, want := range []int{8, 4, 2, 2} {
		if got := c.Observe(1.1 + float64(i)/10); got != want {
			t.Fatalf("rising step %d: interval %d, want %d", i, got, want)
		}
	}
	for i, want := range []int{4, 8, 16, 32, 64, 64} {
		if got := c.Observe(1.0); got != want {
			t.Fatalf("flat step %d: interval %d, want %d", i, got, want)
		}
	}
	for _, bad := range [][3]int{{0, 1, 4}, {4, 2, 3}, {5, 1, 4}, {1, 2, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCadence(%v) did not panic", bad)
				}
			}()
			NewCadence(bad[0], bad[1], bad[2])
		}()
	}
}

// Package sched plans skew-aware broadcast schedules: it turns a query
// trace into per-frame access frequencies (Profile), cuts the
// Hilbert-ordered frame sequence into contiguous shards whose
// load-weighted cycle lengths are minimal (Partition), and emits the
// shard boundaries as a dsi.Layout-compatible placement (Plan) in which
// every shard is a broadcast disk: a data channel cycling through just
// its own frames, so a small, hot shard rebroadcasts its frames
// proportionally more often than a large, cold one.
//
// The planning objective is the classic broadcast-disks one. A query
// for a frame in shard s waits, in expectation, half of the shard's
// cycle length |s|*DataPackets; with P(s) the probability that a query
// hits shard s, the expected data wait is proportional to
//
//	sum_s P(s) * |s|
//
// which Partition minimizes exactly over all contiguous partitions (the
// cost is a Monge matrix, so the divide-and-conquer optimization of the
// underlying dynamic program is exact). Uniform striping — equal-size
// shards — is the profile-free special case; under a skewed profile the
// optimum assigns hot spans short cycles and recovers it as theta -> 0.
package sched

import (
	"fmt"
	"math"
	"sort"

	"dsi/internal/dsi"
	"dsi/internal/hilbert"
)

// Profile holds per-frame access frequencies of a DSI broadcast,
// accumulated from a query trace. The zero weight is a valid profile
// (uniform partition); weights need not be normalized.
type Profile struct {
	X *dsi.Index
	// Freq[f] is the accumulated access weight of frame f.
	Freq []float64
}

// NewProfile returns an empty profile over the index's frames.
func NewProfile(x *dsi.Index) *Profile {
	return &Profile{X: x, Freq: make([]float64, x.NF)}
}

// AddRange accumulates weight w on every frame that can hold objects
// with HC values in [lo, hi): the frames a query for that range visits.
func (p *Profile) AddRange(lo, hi uint64, w float64) {
	chargeRange(p.X, p.Freq, lo, hi, w)
}

// chargeRange accumulates weight w on every frame of x that can hold
// objects with HC values in [lo, hi) — the shared core of the offline
// Profile and the decayed OnlineProfiler.
func chargeRange(x *dsi.Index, freq []float64, lo, hi uint64, w float64) {
	if lo >= hi || w == 0 {
		return
	}
	// First frame whose successor starts at or above lo, up to the last
	// frame starting below hi. The >= (rather than >) keeps a frame
	// whose last objects duplicate the next frame's minimum HC == lo in
	// the charged set; without duplicates it can at most charge one
	// extra boundary frame, which a frequency profile tolerates.
	f := sort.Search(x.NF, func(f int) bool {
		return f+1 >= x.NF || x.MinHC(f+1) >= lo
	})
	for ; f < x.NF && x.MinHC(f) < hi; f++ {
		freq[f] += w
	}
}

// AddRanges accumulates weight w on every frame overlapping any of the
// target ranges (one query's HC decomposition).
func (p *Profile) AddRanges(targets []hilbert.Range, w float64) {
	for _, r := range targets {
		p.AddRange(r.Lo, r.Hi, w)
	}
}

// Total returns the accumulated weight across all frames.
func (p *Profile) Total() float64 {
	var t float64
	for _, w := range p.Freq {
		t += w
	}
	return t
}

// Plan is a shard schedule: bounds[s] .. bounds[s+1] delimit shard s,
// one data channel per shard.
type Plan struct {
	X *dsi.Index
	// Bounds are the shard boundaries: ascending frame ids from 0 to
	// NF, len = shards+1. They plug into dsi.MultiConfig.ShardBounds.
	Bounds []int
	// Load[s] is the fraction of the profile's weight falling on shard
	// s (0 for an unweighted profile).
	Load []float64
}

// Shards returns the number of shards.
func (p *Plan) Shards() int { return len(p.Bounds) - 1 }

// ExpectedWait returns the load-weighted mean data wait of the plan in
// packet slots: sum_s Load[s] * |s| * DataPackets / 2, the
// broadcast-disks objective the partitioner minimizes. dataPackets is
// the per-frame data payload in slots (dsi.Layout.DataPackets).
func (p *Plan) ExpectedWait(dataPackets int) float64 {
	var w float64
	for s := 0; s < p.Shards(); s++ {
		w += p.Load[s] * float64(p.Bounds[s+1]-p.Bounds[s])
	}
	return w * float64(dataPackets) / 2
}

// MultiConfig returns the dsi layout configuration realizing the plan:
// one data channel per shard plus the index channel.
func (p *Plan) MultiConfig(switchSlots int) dsi.MultiConfig {
	return dsi.MultiConfig{
		Channels:    p.Shards() + 1,
		Scheduler:   dsi.SchedShard,
		SwitchSlots: switchSlots,
		ShardBounds: p.Bounds,
	}
}

// Layout places the plan's index onto its channels.
func (p *Plan) Layout(switchSlots int) (*dsi.Layout, error) {
	return dsi.NewLayout(p.X, p.MultiConfig(switchSlots))
}

func (p *Plan) String() string {
	return fmt.Sprintf("Plan{%d shards over %d frames, bounds %v}", p.Shards(), p.X.NF, p.Bounds)
}

// Partition cuts the profile's frames into k contiguous shards
// minimizing the expected data wait sum_s P(s)*|s| and returns the
// resulting plan. It errors when k exceeds the frame count or the
// index's broadcast is reorganized (shards are HC spans; interleaved
// segments would break their contiguity on air). A zero (or uniform)
// profile yields balanced shards. Cut points are snapped forward off
// duplicate frame minima so every shard starts on a fresh HC value (the
// shard split doubles as catalog knowledge).
func Partition(p *Profile, k int) (*Plan, error) {
	x := p.X
	if x.Cfg.Segments != 1 {
		return nil, fmt.Errorf("sched: cannot shard a reorganized broadcast (m=%d)", x.Cfg.Segments)
	}
	if k < 1 || k > x.NF {
		return nil, fmt.Errorf("sched: %d shards for %d frames", k, x.NF)
	}
	freq := p.Freq
	if p.Total() == 0 {
		// No observations: every partition costs zero, so optimize the
		// uniform-access objective instead, which yields balanced
		// shards (the striping baseline).
		freq = make([]float64, x.NF)
		for f := range freq {
			freq[f] = 1
		}
	}
	bounds := partitionMonge(freq, k)
	if err := snapBounds(x, bounds); err != nil {
		return nil, err
	}
	return planFor(p, bounds), nil
}

// snapBounds snaps cut points off duplicate frame minima, in place
// (multi-object frames can repeat an HC value across a frame boundary):
// shards must begin on a strictly larger minimum than their predecessor
// frame ends with, so each cut moves forward past the duplicate run.
// Left to right, so a moved cut can push the next one along; a workload
// whose duplicates leave no room for k distinct cuts is rejected rather
// than silently emitting bounds the layout would refuse.
func snapBounds(x *dsi.Index, bounds []int) error {
	k := len(bounds) - 1
	for s := 1; s < k; s++ {
		if bounds[s] <= bounds[s-1] {
			bounds[s] = bounds[s-1] + 1
		}
		for bounds[s] < x.NF && x.MinHC(bounds[s]) <= x.MinHC(bounds[s]-1) {
			bounds[s]++
		}
		if bounds[s] >= x.NF {
			return fmt.Errorf("sched: duplicate frame minima leave no room for %d shards", k)
		}
	}
	return nil
}

// planFor assembles the plan over the given bounds, with per-shard
// loads taken from the profile.
func planFor(p *Profile, bounds []int) *Plan {
	k := len(bounds) - 1
	plan := &Plan{X: p.X, Bounds: bounds, Load: make([]float64, k)}
	if total := p.Total(); total > 0 {
		for s := 0; s < k; s++ {
			var w float64
			for f := bounds[s]; f < bounds[s+1]; f++ {
				w += p.Freq[f]
			}
			plan.Load[s] = w / total
		}
	}
	return plan
}

// Uniform returns the profile-free plan: k balanced shards, the
// equal-bandwidth baseline a skew-aware plan is compared against.
func Uniform(x *dsi.Index, k int) (*Plan, error) {
	return Partition(NewProfile(x), k)
}

// partitionMonge minimizes sum over shards of (shard weight)*(shard
// length) across all partitions of w into k non-empty contiguous runs,
// returning the boundaries (len k+1, from 0 to len(w)).
func partitionMonge(w []float64, k int) []int {
	var d mongeDP
	return d.cut(w, k)
}

// mongeDP holds the working arrays of the divide-and-conquer Monge DP,
// so a long-lived re-planner re-cutting the same broadcast over and
// over reuses its buffers instead of reallocating O(n·k) state per cut.
type mongeDP struct {
	pre, prev, cur []float64
	choice         [][]int32
}

// grow sizes the working arrays for an (n, k) instance, recycling prior
// storage.
func (d *mongeDP) grow(n, k int) {
	need := n + 1
	// cur is the smallest of the three views into the shared buffer, so
	// its capacity decides whether the whole buffer fits this instance.
	if cap(d.cur) < need {
		buf := make([]float64, 3*need)
		d.pre, d.prev, d.cur = buf[:need], buf[need:2*need], buf[2*need:]
	} else {
		d.pre, d.prev, d.cur = d.pre[:need], d.prev[:need], d.cur[:need]
	}
	if len(d.choice) < k+1 {
		d.choice = append(d.choice, make([][]int32, k+1-len(d.choice))...)
	}
	for s := 0; s <= k; s++ {
		if cap(d.choice[s]) < need {
			d.choice[s] = make([]int32, need)
		} else {
			d.choice[s] = d.choice[s][:need]
		}
	}
}

// cut runs the DP: dp[s][i] = best cost of cutting the first i frames
// into s shards; the transition cost C(j, i) = (W[i]-W[j])*(i-j)
// satisfies the quadrangle inequality ((c-d)(x-y) + (a-b)(u-v) >= 0 for
// monotone prefix sums), so the row-wise argmins are monotone and each
// DP row fills in O(n log n) by divide and conquer.
func (d *mongeDP) cut(w []float64, k int) []int {
	n := len(w)
	d.grow(n, k)
	pre := d.pre
	pre[0] = 0
	for i, v := range w {
		pre[i+1] = pre[i] + v
	}
	cost := func(j, i int) float64 { return (pre[i] - pre[j]) * float64(i-j) }

	prev, cur := d.prev, d.cur // prev: dp for s-1 shards
	choice := d.choice         // choice[s][i]: best j for dp[s][i]
	for i := 0; i <= n; i++ {
		prev[i] = math.Inf(1)
	}
	prev[0] = 0

	// fill computes cur[iLo..iHi] knowing the optimal split index lies
	// in [jLo, jHi] (divide and conquer over the monotone argmin).
	var fill func(s, iLo, iHi, jLo, jHi int)
	fill = func(s, iLo, iHi, jLo, jHi int) {
		if iLo > iHi {
			return
		}
		mid := (iLo + iHi) / 2
		best, bestJ := math.Inf(1), -1
		hi := jHi
		if hi > mid-1 {
			hi = mid - 1
		}
		for j := jLo; j <= hi; j++ {
			if prev[j] == math.Inf(1) {
				continue
			}
			if c := prev[j] + cost(j, mid); c < best {
				best, bestJ = c, j
			}
		}
		cur[mid] = best
		if bestJ < 0 {
			bestJ = jLo
		}
		choice[s][mid] = int32(bestJ)
		fill(s, iLo, mid-1, jLo, bestJ)
		fill(s, mid+1, iHi, bestJ, jHi)
	}

	for s := 1; s <= k; s++ {
		for i := 0; i <= n; i++ {
			cur[i] = math.Inf(1)
		}
		// i ranges over [s, n-(k-s)]: enough frames before for s shards
		// and after for the remaining k-s.
		fill(s, s, n-(k-s), s-1, n-(k-s)-1)
		prev, cur = cur, prev
	}

	bounds := make([]int, k+1)
	bounds[k] = n
	for s := k; s >= 1; s-- {
		bounds[s-1] = int(choice[s][bounds[s]])
	}
	return bounds
}

package dsi

import (
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/hilbert"
)

// BenchmarkNextUsefulManyRanges isolates the navigation walk the merged
// walkTargets pass optimizes: choosing the next useful frame against a
// many-range target set (a kNN disk decomposition) over a knowledge
// base that already knows most of the cycle. The per-(range, segment)
// walk of the old rangeState re-walked the known-frame list once per
// range; the merged walk pays for each known frame once per span.
func BenchmarkNextUsefulManyRanges(b *testing.B) {
	ds := dataset.Uniform(2000, 8, 5)
	x, err := Build(ds, Config{Segments: 2})
	if err != nil {
		b.Fatal(err)
	}
	kb := newKnowledge(x)
	teachAll(kb, x)
	// Many small, spread-out unretrieved targets: every range keeps a
	// little work pending so no (range, span) pair resolves.
	var targets []hilbert.Range
	for i := 40; i < ds.N(); i += 50 {
		hc := ds.Objects[i].HC
		targets = append(targets, hilbert.Range{Lo: hc, Hi: hc + 1})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := kb.nextUseful(i%x.NF, targets); !ok {
			b.Fatal("nothing useful")
		}
	}
}

// BenchmarkResolvedManyRanges measures the termination test on the same
// state: all targets retrieved, so every (range, span) pair walks to
// completion.
func BenchmarkResolvedManyRanges(b *testing.B) {
	ds := dataset.Uniform(2000, 8, 5)
	x, err := Build(ds, Config{Segments: 2})
	if err != nil {
		b.Fatal(err)
	}
	kb := newKnowledge(x)
	teachAll(kb, x)
	var targets []hilbert.Range
	for i := 40; i < ds.N(); i += 50 {
		hc := ds.Objects[i].HC
		targets = append(targets, hilbert.Range{Lo: hc, Hi: hc + 1})
		kb.markRetrieved(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !kb.resolved(targets) {
			b.Fatal("unresolved")
		}
	}
}

package dsi

import (
	"math/rand"
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

// hopBed runs trials aggressive kNN queries over the layout with the
// arrival-time hop pricing toggled by posHopOnly, returning total
// latency and tuning packets. Result IDs must not depend on the
// toggle, so the caller can compare costs knowing answers agree.
func hopBed(t *testing.T, lay *Layout, trials int, seed int64, check func(q int, ids []int)) (lat, tun int64) {
	t.Helper()
	sess, err := Open(lay.X, WithReceiver(NewSimReceiver(lay, 0, nil)))
	if err != nil {
		t.Fatal(err)
	}
	side := int(lay.X.DS.Curve.Side())
	cycle := int64(lay.ProbeCycle())
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < trials; q++ {
		probe := rng.Int63n(cycle)
		p := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
		sess.Tune(probe, nil)
		ids, st := sess.KNN(p, 5, Aggressive)
		check(q, ids)
		lat += st.LatencyPackets
		tun += st.TuningPackets
	}
	return lat, tun
}

// TestAggressiveHopClassicUnchanged pins the timed-hop gate shut on
// single-channel layouts: with one data channel, position order is
// time order, and the aggressive hop must behave bit-identically with
// the pricing enabled or disabled.
func TestAggressiveHopClassicUnchanged(t *testing.T) {
	ds := dataset.Uniform(500, 7, 2)
	x, err := Build(ds, Config{Capacity: 64, ObjectBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	lay := x.SingleLayout()

	results := make(map[int][]int)
	record := func(q int, ids []int) { results[q] = append([]int(nil), ids...) }
	latNew, tunNew := hopBed(t, lay, 60, 9, record)

	sess, err := Open(x, WithReceiver(NewSimReceiver(lay, 0, nil)))
	if err != nil {
		t.Fatal(err)
	}
	sess.Client().posHopOnly = true
	side := int(ds.Curve.Side())
	cycle := int64(lay.ProbeCycle())
	rng := rand.New(rand.NewSource(9))
	var latOld, tunOld int64
	for q := 0; q < 60; q++ {
		probe := rng.Int63n(cycle)
		p := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
		sess.Tune(probe, nil)
		ids, st := sess.KNN(p, 5, Aggressive)
		latOld += st.LatencyPackets
		tunOld += st.TuningPackets
		want := results[q]
		if len(ids) != len(want) {
			t.Fatalf("query %d: result count changed", q)
		}
		for i := range ids {
			if ids[i] != want[i] {
				t.Fatalf("query %d: result %d changed with the hop toggle", q, i)
			}
		}
	}
	if latNew != latOld || tunNew != tunOld {
		t.Fatalf("classic aggressive kNN changed: lat %d -> %d, tun %d -> %d", latOld, latNew, tunOld, tunNew)
	}
}

// TestAggressiveHopShardZipf demands the arrival-time pricing actually
// pays off where it is supposed to: on a sharded layout over a Zipf
// clustered dataset with uneven shards, hops priced by per-shard
// arrival time must beat purely positional hops in aggregate latency,
// without changing any query's answer.
func TestAggressiveHopShardZipf(t *testing.T) {
	ds := dataset.Clustered(dataset.ClusteredConfig{
		N: 1200, Order: 8, Clusters: 24, Spread: 0.02, Isolated: 0.1, Seed: 4,
	})
	x, err := Build(ds, Config{Capacity: 64, ObjectBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	nf := x.NF
	// Deliberately uneven shards: the hot head of the Zipf curve
	// crowds the first channel while the tail spreads thin.
	lay, err := NewLayout(x, MultiConfig{
		Channels:    4,
		Scheduler:   SchedShard,
		SwitchSlots: 2,
		ShardBounds: []int{0, nf / 6, nf / 2, nf},
	})
	if err != nil {
		t.Fatal(err)
	}

	const trials = 120
	results := make(map[int][]int)
	record := func(q int, ids []int) { results[q] = append([]int(nil), ids...) }
	latNew, _ := hopBed(t, lay, trials, 5, record)

	sess, err := Open(x, WithReceiver(NewSimReceiver(lay, 0, nil)))
	if err != nil {
		t.Fatal(err)
	}
	sess.Client().posHopOnly = true
	side := int(ds.Curve.Side())
	cycle := int64(lay.ProbeCycle())
	rng := rand.New(rand.NewSource(5))
	var latOld int64
	for q := 0; q < trials; q++ {
		probe := rng.Int63n(cycle)
		p := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
		sess.Tune(probe, nil)
		ids, st := sess.KNN(p, 5, Aggressive)
		latOld += st.LatencyPackets
		want := results[q]
		if len(ids) != len(want) {
			t.Fatalf("query %d: result count changed", q)
		}
		for i := range ids {
			if ids[i] != want[i] {
				t.Fatalf("query %d: result %d changed with the hop toggle", q, i)
			}
		}
	}
	if latNew >= latOld {
		t.Fatalf("timed hop pricing did not improve sharded Zipf latency: %d (timed) vs %d (positional)", latNew, latOld)
	}
	t.Logf("sharded Zipf aggregate latency: %d (timed) vs %d (positional), %.1f%% lower",
		latNew, latOld, 100*(1-float64(latNew)/float64(latOld)))
}

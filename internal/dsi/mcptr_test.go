package dsi

import (
	"reflect"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
)

// TestReserveMCPtrWidensTables: reserving the multi-channel pointer
// width grows the table budget by exactly one channel-id byte per
// entry.
func TestReserveMCPtrWidensTables(t *testing.T) {
	ds := dataset.Uniform(256, 7, 31)
	x, err := Build(ds, Config{Capacity: 32, Sizing: SizingUnitFactor})
	if err != nil {
		t.Fatal(err)
	}
	xr, err := Build(ds, Config{Capacity: 32, Sizing: SizingUnitFactor, ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	if xr.E != x.E {
		t.Fatalf("reservation changed the entry count: %d vs %d", xr.E, x.E)
	}
	if want := x.TableBytes() + x.E; xr.TableBytes() != want {
		t.Fatalf("reserved table is %dB, want %d", xr.TableBytes(), want)
	}
	if xr.TablePackets <= x.TablePackets {
		t.Fatalf("tight 32B config did not gain a table packet: %d vs %d", xr.TablePackets, x.TablePackets)
	}
}

// TestReserveMCPtrDefaultBitIdentical: with the option off nothing
// changes, and on a configuration whose tables have headroom anyway,
// turning it on leaves the whole N=1 broadcast bit-identical (same
// geometry, same program, same tables) — the reservation only matters
// when it must.
func TestReserveMCPtrDefaultBitIdentical(t *testing.T) {
	ds := dataset.Uniform(300, 7, 33)
	plain, err := Build(ds, Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	reserved, err := Build(ds, Config{Capacity: 64, ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.NF != reserved.NF || plain.NO != reserved.NO || plain.E != reserved.E ||
		plain.Base != reserved.Base || plain.TablePackets != reserved.TablePackets ||
		plain.FramePackets != reserved.FramePackets {
		t.Fatalf("geometry changed: %v vs %v", plain, reserved)
	}
	if !reflect.DeepEqual(plain.Prog.Slots, reserved.Prog.Slots) {
		t.Fatal("broadcast program changed")
	}
	for pos := 0; pos < plain.NF; pos++ {
		a, b := plain.TableAt(pos), reserved.TableAt(pos)
		if a.OwnHC != b.OwnHC || !reflect.DeepEqual(a.Entries, b.Entries) {
			t.Fatalf("table %d changed", pos)
		}
	}
	// And the two engines answer identically.
	w := hilbertWindow(40, 40)
	ids1, st1 := NewClient(plain, 7, nil).Window(w)
	ids2, st2 := NewClient(reserved, 7, nil).Window(w)
	if !equalInts(ids1, ids2) || st1 != st2 {
		t.Fatalf("query results differ: (%v,%+v) vs (%v,%+v)", ids1, st1, ids2, st2)
	}
}

// TestReserveMCPtrAutoSizing: under SizingAuto the reservation enters
// the entries-per-packet computation, so one-packet tables stay
// one-packet with the wider entries (fewer entries if necessary).
func TestReserveMCPtrAutoSizing(t *testing.T) {
	ds := dataset.Uniform(500, 7, 35)
	x, err := Build(ds, Config{Capacity: 64, ReserveMCPtr: true})
	if err != nil {
		t.Fatal(err)
	}
	if x.TableBytes() > x.TablePackets*64 {
		t.Fatalf("auto-sized table %dB exceeds its %d packets", x.TableBytes(), x.TablePackets)
	}
	if got := (64 - broadcast.HCBytes) / (broadcast.HCBytes + broadcast.MCPtrBytes); x.E > got {
		t.Fatalf("E=%d entries cannot fit one packet at the reserved width (max %d)", x.E, got)
	}
}

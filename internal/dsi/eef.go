package dsi

import (
	"dsi/internal/broadcast"
	"dsi/internal/hilbert"
)

// EEF performs the paper's energy-efficient forwarding (section 3.2):
// starting from wherever the client tuned in, it follows index-table
// pointers until it reaches the frame that covers the given HC value —
// the frame that holds the object at that location, or would hold it if
// it existed. It returns the frame id and whether an object with
// exactly that HC value exists there (scanning the reached frame, which
// makes EEF a point query per the paper).
func (c *Client) EEF(hc uint64) (frame int, exists bool, stats broadcast.Stats) {
	if hc >= c.x.DS.Curve.Size() {
		panic("dsi: EEF target outside the curve")
	}
	targetsFn := c.constTargets(append(c.scr.targets[:0], hilbert.Range{Lo: hc, Hi: hc + 1}))
	targets := c.scr.targets
	p := c.probe()
	for {
		c.visit(p, targetsFn)
		if f, certain := c.kb.coveringFrame(hc); certain && c.x.FrameToPos(f) == p {
			id := c.x.DS.FindHC(hc)
			exists = id < c.x.DS.N() && c.x.DS.Objects[id].HC == hc && c.kb.retrieved(id)
			return f, exists, c.Stats()
		}
		next, ok := c.kb.nextUseful(p, targets)
		if !ok {
			// The target is resolved: the object was retrieved or is
			// known not to exist. Forward to the covering frame if the
			// client is not already there, as EEF "reaches the frame
			// containing the data object".
			f, _ := c.kb.coveringFrame(hc)
			if pos := c.x.FrameToPos(f); pos != p {
				c.gotoFrameEntry(pos)
			}
			id := c.x.DS.FindHC(hc)
			exists = id < c.x.DS.N() && c.x.DS.Objects[id].HC == hc && c.kb.retrieved(id)
			return f, exists, c.Stats()
		}
		p = next
	}
}

// coveringFrame returns the frame with the largest known minimum HC
// value not exceeding hc (the frame that covers hc), and whether that
// identification is certain: the next same-span frame is known to
// start above hc, so no unknown frame can lie between.
func (kb *knowledge) coveringFrame(hc uint64) (frame int, certain bool) {
	j := kb.hcSpan(hc)
	base := kb.spanStart[j]
	it, ok := kb.known[j].FloorKey(kb.frameHC, base, hc)
	if !ok {
		// hc precedes every object: the covering frame is the first
		// frame of span 0, which the catalog makes always known.
		return kb.spanStart[0], true
	}
	i := it.Value()
	frame = base + i
	peek := it
	peek.Next()
	if peek.Valid() {
		certain = peek.Value() == i+1
	} else {
		certain = i == kb.spanLen(j)-1
	}
	return frame, certain
}

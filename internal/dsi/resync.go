// Client re-sync: the receiver side of online re-planning. When the
// transmitter swaps a sharded broadcast to a freshly planned shard
// directory (a new MultiConfig at a cycle seam, directory version
// bumped), a client mid-query detects the bump and re-seeds onto the
// new layout without restarting the query: every fact it holds — frame
// minimum HC values, located objects, retrieved objects — is knowledge
// about the dataset, not about the schedule, so only the span partition
// of the knowledge base (which spans mirror the shard channels) and the
// channel placements need rebuilding. The epoch-stamped per-frame and
// per-object state carries over untouched; the rebuild costs O(known
// frames), not O(dataset).

package dsi

import (
	"fmt"

	"dsi/internal/ordset"
)

// Resync re-seeds the client onto a new sharded layout of the same
// broadcast: the response to a shard-directory version bump. The
// knowledge base keeps every fact it holds, its span partition is
// rebuilt around the new shard bounds, the new directory's shard split
// HC values are absorbed as catalog knowledge, and the tuner follows
// the schedule swap on its current channel (no switch cost: the
// carriers are unchanged). The query in flight continues — the engine's
// next navigation step prices the new channel cycles.
//
// Resyncing to the layout already in use is a no-op. The new layout
// must shard the same index across the same number of channels.
func (c *Client) Resync(lay *Layout) error {
	if lay == c.lay {
		return nil
	}
	if err := c.resyncCheck(lay); err != nil {
		return err
	}
	c.kb.rebuildShardSpans(lay.shardBounds)
	c.lay = lay
	c.rx.Follow(lay)
	// The resolution cache is per (range, span) and the spans moved:
	// force the engine to rebuild it.
	c.scr.targetsVer++
	return nil
}

// resyncCheck validates a re-sync target against the client's state.
func (c *Client) resyncCheck(lay *Layout) error {
	if lay.X != c.x {
		return fmt.Errorf("dsi: resync to a layout of a different index")
	}
	if lay.Sched != SchedShard || lay.Channels() == 1 {
		return fmt.Errorf("dsi: resync target is %v over %d channels, want a sharded multi-channel layout",
			lay.Sched, lay.Channels())
	}
	if c.lay.Sched != SchedShard || c.lay.Channels() == 1 {
		return fmt.Errorf("dsi: resync of a %v client; only shard clients follow directory versions", c.lay.Sched)
	}
	if c.lay.Channels() != lay.Channels() {
		return fmt.Errorf("dsi: resync from %d channels to %d; a schedule swap cannot retune radios",
			c.lay.Channels(), lay.Channels())
	}
	return nil
}

// ScheduleResync arms a pending directory-version bump: once the
// client's clock reaches atSlot — the cycle seam at which the
// transmitter swaps schedules — the next navigation step detects the
// bump (version numbers ride the index channel the client is already
// mining) and Resyncs onto lay mid-query. Scheduling validates the
// target immediately; Reset discards a pending bump.
func (c *Client) ScheduleResync(lay *Layout, atSlot int64) error {
	if err := c.resyncCheck(lay); err != nil {
		return err
	}
	c.pendingLay = lay
	c.pendingAt = atSlot
	return nil
}

// maybeResync fires a pending re-sync between navigation steps:
// detection granularity is one frame visit, matching a receiver that
// learns the directory version from the index tables it reads anyway.
// Two sources feed it — a byte-level receiver that learned a new shard
// directory from the air (Poll), and a simulator-side swap scheduled
// with ScheduleResync once the clock has passed its seam.
func (c *Client) maybeResync() {
	if lay, ok := c.rx.Poll(); ok {
		if err := c.Resync(lay); err != nil {
			// The receiver adopted a directory the client cannot follow;
			// the two must stay in lockstep, so this is a programming
			// error, not an input error.
			panic(fmt.Sprintf("dsi: directory resync failed: %v", err))
		}
		return
	}
	if c.pendingLay == nil || c.rx.Now() < c.pendingAt {
		return
	}
	lay := c.pendingLay
	c.pendingLay = nil
	if err := c.Resync(lay); err != nil {
		// ScheduleResync validated the target against this client; a
		// failure here is a programming error, not an input error.
		panic(fmt.Sprintf("dsi: scheduled resync failed: %v", err))
	}
}

// rebuildShardSpans re-partitions the knowledge base onto new shard
// bounds, preserving every epoch-current fact. The known-frame sets are
// rebuilt by re-inserting the frames the old spans enumerate (O(known
// frames)); the epoch-stamped frame and object arrays are untouched —
// the facts they hold are schedule-independent. The new bounds' split
// HC values are then seeded as catalog knowledge: they arrive with the
// new directory exactly like the original catalog did at tune-in.
func (kb *knowledge) rebuildShardSpans(bounds []int) {
	x := kb.x
	n := len(bounds) - 1

	kb.resync = kb.resync[:0]
	for j := 0; j < kb.nspan; j++ {
		base := kb.spanStart[j]
		from := len(kb.resync)
		kb.resync = kb.known[j].AppendTo(kb.resync)
		for i := from; i < len(kb.resync); i++ {
			kb.resync[i] += base
		}
	}

	kb.nspan = n
	kb.spanStart = bounds // the layout's private copy: immutable
	kb.posOrigin = bounds[:n]
	kb.stride = 1 // sharded layouts require m = 1
	if cap(kb.splits) < n {
		kb.splits = make([]uint64, n)
	}
	kb.splits = kb.splits[:n]
	for s := 0; s < n; s++ {
		kb.splits[s] = x.minHC[bounds[s]]
	}
	for j := range kb.known {
		kb.known[j].Reset()
	}
	if len(kb.known) < n {
		kb.known = append(kb.known, make([]ordset.Set, n-len(kb.known))...)
	}
	kb.known = kb.known[:n]

	for _, f := range kb.resync {
		j := kb.frameSpan(f)
		kb.known[j].Insert(f - kb.spanStart[j])
	}
	kb.seedCatalog()
}

package dsi

import (
	"math"
	"slices"

	"dsi/internal/broadcast"
	"dsi/internal/hilbert"
	"dsi/internal/spatial"
)

// Strategy selects the kNN search-space navigation strategy
// (paper section 3.4).
type Strategy int

const (
	// Conservative retrieves every object that may potentially be in
	// the answer set and follows the first index entry whose range
	// overlaps the current search space: small access latency, higher
	// tuning cost.
	Conservative Strategy = iota
	// Aggressive follows the index entry pointing at the frame closest
	// to the query point to shrink the search space fast: low tuning
	// cost, but skipped ranges may have to wait for the next cycle.
	Aggressive
)

func (s Strategy) String() string {
	switch s {
	case Conservative:
		return "conservative"
	case Aggressive:
		return "aggressive"
	default:
		return "strategy?"
	}
}

// scratch is the per-query working state a client reuses across
// queries. The closures are created once per client and read their
// inputs from the scratch fields, so a warm query installs new
// parameters without allocating.
type scratch struct {
	// targets is the current HC target decomposition (window rectangle,
	// EEF point, or kNN search disk).
	targets []hilbert.Range
	// targetsVer is bumped whenever targets are (re)installed, telling
	// the query engine to rebuild its resolution cache.
	targetsVer int
	// marks is the engine's per-(range, segment) resolution cache.
	marks []bool
	// constFn returns targets unchanged; the target function of window
	// and point queries.
	constFn func() []hilbert.Range

	// win is the clamped window rectangle winRegion classifies against.
	win       hilbert.RectRegion
	winRegion hilbert.RegionFunc

	knn knnScratch
}

// constTargets installs targets as the fixed target set and returns the
// constant target function.
func (c *Client) constTargets(targets []hilbert.Range) func() []hilbert.Range {
	c.scr.targets = targets
	c.scr.targetsVer++
	if c.scr.constFn == nil {
		c.scr.constFn = func() []hilbert.Range { return c.scr.targets }
	}
	return c.scr.constFn
}

// windowTargets decomposes w (clamped to the grid) into HC ranges using
// the reusable target buffer.
func (c *Client) windowTargets(w spatial.Rect) []hilbert.Range {
	curve := c.x.DS.Curve
	s := &c.scr
	rect, ok := curve.ClampRect(w.MinX, w.MinY, w.MaxX, w.MaxY)
	if !ok {
		return s.targets[:0]
	}
	s.win = rect
	if s.winRegion == nil {
		s.winRegion = func(x0, y0, x1, y1 uint32) hilbert.Region {
			return c.scr.win.Classify(x0, y0, x1, y1)
		}
	}
	return curve.AppendRangesFunc(s.targets[:0], s.winRegion)
}

// Window executes a window query: it returns the IDs of all objects
// inside w, in HC order, together with the query's cost metrics.
func (c *Client) Window(w spatial.Rect) ([]int, broadcast.Stats) {
	return c.WindowAppend(nil, w)
}

// WindowAppend is Window appending the result IDs into dst (which may
// be nil or a recycled buffer), avoiding the per-query result
// allocation on reused clients.
func (c *Client) WindowAppend(dst []int, w spatial.Rect) ([]int, broadcast.Stats) {
	targetsFn := c.constTargets(c.windowTargets(w))
	start := c.probe()
	c.retrieveAll(start, targetsFn, nil)
	return c.collect(dst, c.scr.targets), c.Stats()
}

// Point executes a point query: it returns the ID of the object at
// point p and whether one exists. Either way the client has certainty
// when the query terminates.
func (c *Client) Point(p spatial.Point) (id int, found bool, stats broadcast.Stats) {
	hc := c.x.DS.Curve.Encode(p.X, p.Y)
	targetsFn := c.constTargets(append(c.scr.targets[:0], hilbert.Range{Lo: hc, Hi: hc + 1}))
	start := c.probe()
	c.retrieveAll(start, targetsFn, nil)
	for i := c.x.DS.FindHC(hc); i < c.x.DS.N() && c.x.DS.Objects[i].HC == hc; i++ {
		if c.kb.retrieved(i) {
			return i, true, c.Stats()
		}
	}
	return 0, false, c.Stats()
}

// collect appends the retrieved object IDs with HC values in the
// targets to dst, ascending.
func (c *Client) collect(dst []int, targets []hilbert.Range) []int {
	for _, r := range targets {
		for i := c.x.DS.FindHC(r.Lo); i < c.x.DS.N() && c.x.DS.Objects[i].HC < r.Hi; i++ {
			if c.kb.retrieved(i) {
				dst = append(dst, i)
			}
		}
	}
	return dst
}

// knnCand is an object known to the client during kNN processing. The
// 1-1 correspondence between HC values and cells makes index knowledge
// exact: locating an object means knowing its distance.
type knnCand struct {
	id int
	d2 float64
	hc uint64
}

// candLess orders candidates by distance, ties broken by HC value so
// results are deterministic.
func candLess(a, b knnCand) bool {
	if a.d2 != b.d2 {
		return a.d2 < b.d2
	}
	return a.hc < b.hc
}

// knnScratch is the kNN working state: the query parameters, the
// current squared search radius, and a bounded max-heap holding the k
// best candidates seen so far (the heap root is the current k-th
// nearest, whose distance bounds the search space). Keeping only k
// candidates replaces the full candidate list and its repeated
// O(n log n) sorts. The radius is kept squared end to end: cell
// distances squared are integers (exact in float64), and a
// sqrt-then-resquare round-trip could misclassify boundary cells.
type knnScratch struct {
	q     spatial.Point
	k     int
	curR2 float64
	heap  []knnCand
	full  [1]hilbert.Range
	disk  hilbert.DiskRegion

	fn     func() []hilbert.Range
	diskFn hilbert.RegionFunc
}

// push offers a candidate to the bounded heap.
func (ks *knnScratch) push(cand knnCand) {
	h := ks.heap
	if len(h) < ks.k {
		h = append(h, cand)
		i := len(h) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !candLess(h[p], h[i]) {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		ks.heap = h
		return
	}
	if !candLess(cand, h[0]) {
		return
	}
	h[0] = cand
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < len(h) && candLess(h[big], h[l]) {
			big = l
		}
		if r < len(h) && candLess(h[big], h[r]) {
			big = r
		}
		if big == i {
			return
		}
		h[i], h[big] = h[big], h[i]
		i = big
	}
}

// knnTargets is the kNN target function: absorb freshly located
// objects into the candidate heap, and once k candidates are known,
// shrink the target set to the disk of the k-th candidate distance.
func (c *Client) knnTargets() []hilbert.Range {
	ks := &c.scr.knn
	curve := c.x.DS.Curve
	for _, id := range c.kb.drainNew() {
		hc := c.kb.objHC[id]
		x, y := curve.Decode(hc)
		ks.push(knnCand{id: id, d2: ks.q.Dist2(spatial.Point{X: x, Y: y}), hc: hc})
	}
	if len(ks.heap) < ks.k {
		return ks.full[:]
	}
	if d2 := ks.heap[0].d2; d2 != ks.curR2 {
		ks.curR2 = d2
		ks.disk.R2 = d2
		c.scr.targets = curve.AppendRangesFunc(c.scr.targets[:0], ks.diskFn)
		c.scr.targetsVer++
	}
	return c.scr.targets
}

// KNN executes a k-nearest-neighbor query at point q using the given
// strategy. It returns the IDs of the k nearest objects (all fully
// retrieved) and the query's cost metrics. On a reorganized broadcast
// (Segments > 1), Conservative is the strategy the paper evaluates.
func (c *Client) KNN(q spatial.Point, k int, strat Strategy) ([]int, broadcast.Stats) {
	return c.KNNAppend(nil, q, k, strat)
}

// KNNAppend is KNN appending the result IDs into dst (which may be nil
// or a recycled buffer).
func (c *Client) KNNAppend(dst []int, q spatial.Point, k int, strat Strategy) ([]int, broadcast.Stats) {
	if k <= 0 {
		return dst, c.Stats()
	}
	if k > c.x.DS.N() {
		k = c.x.DS.N()
	}
	curve := c.x.DS.Curve

	ks := &c.scr.knn
	ks.q = q
	ks.k = k
	ks.curR2 = math.Inf(1)
	ks.heap = ks.heap[:0]
	ks.full[0] = hilbert.Range{Lo: 0, Hi: curve.Size()}
	ks.disk = hilbert.DiskRegion{QX: float64(q.X), QY: float64(q.Y), R2: math.Inf(1)}
	if ks.diskFn == nil {
		ks.diskFn = func(x0, y0, x1, y1 uint32) hilbert.Region {
			return c.scr.knn.disk.Classify(x0, y0, x1, y1)
		}
	}
	if ks.fn == nil {
		ks.fn = c.knnTargets
	}

	var hook func(p int) (int, bool)
	if strat == Aggressive {
		// Phase 1 of the aggressive approach: keep following the table
		// entry whose frame is closest to the query point, until the
		// current frame is locally closest. Bounded so a pathological
		// distribution cannot jump forever.
		maxJumps := 4 * bitsFor(c.x.NF)
		jumps := 0
		// On multi-data-channel layouts (split, sharded) a hop's real
		// cost depends on which channel the candidate frame airs on and
		// where that channel is in its cycle: a marginally closer frame
		// on a cold shard can cost most of a cycle in waiting. Price
		// strictly-closer candidates by arrival time instead of picking
		// the positionally closest one.
		timed := c.lay.splitData() && !c.posHopOnly
		hook = func(p int) (int, bool) {
			if jumps >= maxJumps || c.lastTable == nil || c.lastTable.Pos != p {
				return 0, false
			}
			bestD := c.frameDist2(q, c.x.PosToFrame(p))
			best := -1
			if timed {
				// Among the candidates strictly closer than the current
				// frame, hop to the soonest-arriving data slot; ties go
				// to the closer frame, then the smaller position.
				now := c.rx.Now()
				cur := c.rx.Channel()
				sw := int64(c.lay.Air.SwitchSlots)
				curD := bestD
				bestT := int64(math.MaxInt64)
				for _, e := range c.lastTable.Entries {
					d := c.frameDist2(q, c.x.PosToFrame(e.TargetPos))
					if d >= curD {
						continue
					}
					t := c.arrivalData(e.TargetPos, now, cur, sw)
					if t < bestT || (t == bestT && (d < bestD || (d == bestD && e.TargetPos < best))) {
						bestT, bestD, best = t, d, e.TargetPos
					}
				}
			} else {
				for _, e := range c.lastTable.Entries {
					if d := c.frameDist2(q, c.x.PosToFrame(e.TargetPos)); d < bestD {
						bestD = d
						best = e.TargetPos
					}
				}
			}
			if best < 0 {
				jumps = maxJumps // vicinity reached: stay conservative
				return 0, false
			}
			jumps++
			return best, true
		}
	}

	start := c.probe()
	c.retrieveAll(start, ks.fn, hook)
	c.knnTargets() // absorb anything located by the final visit

	// The search space is resolved: every object within the k-th
	// candidate distance has been retrieved, so the heap holds the
	// answer.
	slices.SortFunc(ks.heap, func(a, b knnCand) int {
		if candLess(a, b) {
			return -1
		}
		if candLess(b, a) {
			return 1
		}
		return 0
	})
	for i := 0; i < k; i++ {
		dst = append(dst, ks.heap[i].id)
	}
	return dst, c.Stats()
}

// hcDist2 returns the squared distance from q to the cell with the
// given HC value, decoding the HC value on the spot. The aggressive hop
// rule used to call this per table entry per hop; it now uses
// frameDist2, which reads the coordinates precomputed at Build (see
// BenchmarkFrameDist2 for the difference). hcDist2 remains for values
// that are not frame minima.
func (c *Client) hcDist2(q spatial.Point, hc uint64) float64 {
	x, y := c.x.DS.Curve.Decode(hc)
	return q.Dist2(spatial.Point{X: x, Y: y})
}

// frameDist2 returns the squared distance from q to the cell of frame
// f's minimum HC value, using the per-frame coordinates precomputed at
// Build. For table entries (whose MinHC values are exactly the frame
// minima) it is equivalent to hcDist2(q, minHC[f]) without the per-hop
// Hilbert decode.
func (c *Client) frameDist2(q spatial.Point, f int) float64 {
	return q.Dist2(spatial.Point{X: c.x.cellX[f], Y: c.x.cellY[f]})
}

// bitsFor returns ceil(log2(n)) for n >= 1.
func bitsFor(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

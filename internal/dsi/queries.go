package dsi

import (
	"math"
	"sort"

	"dsi/internal/broadcast"
	"dsi/internal/hilbert"
	"dsi/internal/spatial"
)

// Strategy selects the kNN search-space navigation strategy
// (paper section 3.4).
type Strategy int

const (
	// Conservative retrieves every object that may potentially be in
	// the answer set and follows the first index entry whose range
	// overlaps the current search space: small access latency, higher
	// tuning cost.
	Conservative Strategy = iota
	// Aggressive follows the index entry pointing at the frame closest
	// to the query point to shrink the search space fast: low tuning
	// cost, but skipped ranges may have to wait for the next cycle.
	Aggressive
)

func (s Strategy) String() string {
	switch s {
	case Conservative:
		return "conservative"
	case Aggressive:
		return "aggressive"
	default:
		return "strategy?"
	}
}

// Window executes a window query: it returns the IDs of all objects
// inside w, in HC order, together with the query's cost metrics.
func (c *Client) Window(w spatial.Rect) ([]int, broadcast.Stats) {
	curve := c.x.DS.Curve
	targets := curve.Ranges(w.MinX, w.MinY, w.MaxX, w.MaxY)
	start := c.probe()
	c.retrieveAll(start, func() []hilbert.Range { return targets }, nil)
	return c.collect(targets), c.Stats()
}

// Point executes a point query: it returns the ID of the object at
// point p and whether one exists. Either way the client has certainty
// when the query terminates.
func (c *Client) Point(p spatial.Point) (id int, found bool, stats broadcast.Stats) {
	hc := c.x.DS.Curve.Encode(p.X, p.Y)
	targets := []hilbert.Range{{Lo: hc, Hi: hc + 1}}
	start := c.probe()
	c.retrieveAll(start, func() []hilbert.Range { return targets }, nil)
	ids := c.collect(targets)
	if len(ids) == 0 {
		return 0, false, c.Stats()
	}
	return ids[0], true, c.Stats()
}

// collect returns the retrieved object IDs with HC values in the
// targets, ascending.
func (c *Client) collect(targets []hilbert.Range) []int {
	var out []int
	for _, r := range targets {
		for i := c.x.DS.FindHC(r.Lo); i < c.x.DS.N() && c.x.DS.Objects[i].HC < r.Hi; i++ {
			if c.kb.retrieved[i] {
				out = append(out, i)
			}
		}
	}
	return out
}

// knnCand is an object known to the client during kNN processing. The
// 1-1 correspondence between HC values and cells makes index knowledge
// exact: locating an object means knowing its distance.
type knnCand struct {
	id int
	d2 float64
	hc uint64
}

// KNN executes a k-nearest-neighbor query at point q using the given
// strategy. It returns the IDs of the k nearest objects (all fully
// retrieved) and the query's cost metrics. On a reorganized broadcast
// (Segments > 1), Conservative is the strategy the paper evaluates.
func (c *Client) KNN(q spatial.Point, k int, strat Strategy) ([]int, broadcast.Stats) {
	if k <= 0 {
		return nil, c.Stats()
	}
	if k > c.x.DS.N() {
		k = c.x.DS.N()
	}
	curve := c.x.DS.Curve
	full := []hilbert.Range{{Lo: 0, Hi: curve.Size()}}

	var cands []knnCand
	curR := math.Inf(1)
	targets := full

	targetsFn := func() []hilbert.Range {
		for _, id := range c.kb.drainNew() {
			hc := c.kb.objHC[id]
			x, y := curve.Decode(hc)
			cands = append(cands, knnCand{id: id, d2: q.Dist2(spatial.Point{X: x, Y: y}), hc: hc})
		}
		if len(cands) < k {
			return full
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d2 != cands[j].d2 {
				return cands[i].d2 < cands[j].d2
			}
			return cands[i].hc < cands[j].hc
		})
		if r := math.Sqrt(cands[k-1].d2); r != curR {
			curR = r
			targets = curve.RangesDisk(float64(q.X), float64(q.Y), r)
		}
		return targets
	}

	var hook func(p int) (int, bool)
	if strat == Aggressive {
		// Phase 1 of the aggressive approach: keep following the table
		// entry whose frame is closest to the query point, until the
		// current frame is locally closest. Bounded so a pathological
		// distribution cannot jump forever.
		maxJumps := 4 * bitsFor(c.x.NF)
		jumps := 0
		hook = func(p int) (int, bool) {
			if jumps >= maxJumps || c.lastTable == nil || c.lastTable.Pos != p {
				return 0, false
			}
			bestD := c.hcDist2(q, c.lastTable.OwnHC)
			best := -1
			for _, e := range c.lastTable.Entries {
				if d := c.hcDist2(q, e.MinHC); d < bestD {
					bestD = d
					best = e.TargetPos
				}
			}
			if best < 0 {
				jumps = maxJumps // vicinity reached: stay conservative
				return 0, false
			}
			jumps++
			return best, true
		}
	}

	start := c.probe()
	c.retrieveAll(start, targetsFn, hook)
	targetsFn() // absorb anything located by the final visit

	// The search space is resolved: every object within the k-th
	// candidate distance has been retrieved, so the k nearest
	// candidates are the answer.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d2 != cands[j].d2 {
			return cands[i].d2 < cands[j].d2
		}
		return cands[i].hc < cands[j].hc
	})
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].id
	}
	return out, c.Stats()
}

// hcDist2 returns the squared distance from q to the cell with the
// given HC value.
func (c *Client) hcDist2(q spatial.Point, hc uint64) float64 {
	x, y := c.x.DS.Curve.Decode(hc)
	return q.Dist2(spatial.Point{X: x, Y: y})
}

// bitsFor returns ceil(log2(n)) for n >= 1.
func bitsFor(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	return b
}

package dsi

import (
	"testing"

	"dsi/internal/dataset"
)

// TestStripeStaggerNoAdjacentOverlap: on a phase-staggered stripe
// layout with equal per-channel frame counts, adjacent cycle positions
// never air in the same slots — the frame at position p+1 starts
// exactly one frame length plus the switch cost after the frame at
// position p, so a single-radio client can harvest consecutive frames
// across channels.
func TestStripeStaggerNoAdjacentOverlap(t *testing.T) {
	ds := dataset.Uniform(400, 8, 21)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8} {
		if x.NF%n != 0 {
			t.Fatalf("test dataset must stripe evenly: %d %% %d", x.NF, n)
		}
		const sw = 2
		lay, err := NewLayout(x, MultiConfig{Channels: n, Scheduler: SchedStripe, SwitchSlots: sw})
		if err != nil {
			t.Fatal(err)
		}
		L := lay.ChanLen(0)
		for ch := 1; ch < n; ch++ {
			if lay.ChanLen(ch) != L {
				t.Fatalf("x%d: unequal channel lengths", n)
			}
		}
		fp := x.FramePackets
		for pos := 0; pos < x.NF-1; pos++ {
			c0, c1 := pos%n, (pos+1)%n
			if c1 == 0 {
				// Round seam (channel n-1 back to channel 0): the
				// telescoped stagger wraps and these n-th pairs can
				// overlap — the guarantee covers consecutive positions
				// on consecutive channels only (see stripeLayout).
				continue
			}
			s0 := int(lay.tableSlot[pos])
			s1 := int(lay.tableSlot[pos+1])
			// Channels share one absolute clock and equal cycle length,
			// so the circular slot distance decides overlap.
			d := (s1 - s0 + L) % L
			if d < fp || d > L-fp {
				t.Fatalf("x%d: positions %d (ch %d slot %d) and %d (ch %d slot %d) overlap on air (distance %d, frame %d slots)",
					n, pos, c0, s0, pos+1, c1, s1, d, fp)
			}
			// And the stagger is exactly one frame plus the retune cost:
			// finishing frame p, a client switches and catches frame p+1
			// whole.
			if d != fp+sw {
				t.Fatalf("x%d: positions %d -> %d staggered by %d slots, want %d", n, pos, pos+1, d, fp+sw)
			}
		}
	}
}

// TestStripeStaggerZeroSwitch: with a zero switch cost the stagger is
// exactly one frame length and frames never wrap the cycle seam, so
// placements stay frame-aligned.
func TestStripeStaggerZeroSwitch(t *testing.T) {
	ds := dataset.Uniform(120, 7, 23)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := NewLayout(x, MultiConfig{Channels: 3, Scheduler: SchedStripe})
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < x.NF; pos++ {
		if int(lay.tableSlot[pos])%x.FramePackets != 0 {
			t.Fatalf("pos %d table at slot %d not frame-aligned", pos, lay.tableSlot[pos])
		}
	}
}

// TestStripeUnevenStaysAligned: when the frames do not divide evenly
// across the channels, the per-channel cycles have different lengths
// and no fixed rotation can keep adjacent frames apart, so the layout
// falls back to aligned striping (frame-aligned placements, no offsets)
// rather than claim a stagger that drifts away after one wrap.
func TestStripeUnevenStaysAligned(t *testing.T) {
	ds := dataset.Uniform(125, 7, 27)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := NewLayout(x, MultiConfig{Channels: 3, Scheduler: SchedStripe, SwitchSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if lay.stripeOff != nil {
		t.Fatalf("uneven stripe staggered: offsets %v", lay.stripeOff)
	}
	for pos := 0; pos < x.NF; pos++ {
		if int(lay.tableSlot[pos])%x.FramePackets != 0 {
			t.Fatalf("pos %d table at slot %d not frame-aligned", pos, lay.tableSlot[pos])
		}
	}
}

package dsi

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

// configsUnderTest exercises every structural variant: original and
// reorganized broadcasts, both sizings, different bases and capacities.
var configsUnderTest = []Config{
	{},
	{Segments: 2},
	{Segments: 3},
	{Segments: 4},
	{Capacity: 32},
	{Capacity: 512, Segments: 2},
	{IndexBase: 4},
	{Sizing: SizingUnitFactor},
	{Sizing: SizingUnitFactor, Segments: 2},
	{Sizing: SizingUnitFactor, IndexBase: 4, Segments: 4},
	{Sizing: SizingUnitFactor, Capacity: 32},
	{Sizing: SizingPaperTable, Capacity: 64},
	{Sizing: SizingPaperTable, Capacity: 128, Segments: 2},
	{Sizing: SizingPaperTable, Capacity: 512},
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestWindowMatchesBruteForce(t *testing.T) {
	ds := dataset.Uniform(300, 6, 11)
	rng := rand.New(rand.NewSource(99))
	for ci, cfg := range configsUnderTest {
		x, err := Build(ds, cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", ci, err)
		}
		for i := 0; i < 12; i++ {
			w := spatial.ClampedWindow(
				uint32(rng.Intn(64)), uint32(rng.Intn(64)),
				uint32(rng.Intn(20)+1), 64)
			probe := rng.Int63n(int64(x.Prog.Len()))
			c := NewClient(x, probe, nil)
			got, st := c.Window(w)
			want := ds.WindowBrute(w)
			if !equalInts(got, want) {
				t.Fatalf("cfg %d window %v: got %v, want %v", ci, w, got, want)
			}
			if st.TuningPackets > st.LatencyPackets {
				t.Fatalf("cfg %d: tuning exceeds latency: %+v", ci, st)
			}
			if st.LatencyPackets <= 0 {
				t.Fatalf("cfg %d: nonpositive latency", ci)
			}
		}
	}
}

func TestWindowWholeGrid(t *testing.T) {
	ds := dataset.Uniform(100, 6, 3)
	x, _ := Build(ds, Config{})
	c := NewClient(x, 0, nil)
	got, _ := c.Window(spatial.Rect{MinX: 0, MinY: 0, MaxX: 63, MaxY: 63})
	if len(got) != 100 {
		t.Errorf("whole-grid window returned %d objects, want 100", len(got))
	}
}

func TestWindowEmptyResult(t *testing.T) {
	// A dataset confined to the left half; query the right half.
	ds := dataset.Uniform(500, 6, 3)
	var objs []dataset.Object
	for _, o := range ds.Objects {
		if o.P.X < 20 {
			objs = append(objs, o)
		}
	}
	for i := range objs {
		objs[i].ID = i
	}
	left := &dataset.Dataset{Curve: ds.Curve, Objects: objs, Name: "left"}
	x, err := Build(left, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(x, 7, nil)
	got, st := c.Window(spatial.Rect{MinX: 40, MinY: 0, MaxX: 63, MaxY: 63})
	if len(got) != 0 {
		t.Errorf("got %d objects, want none", len(got))
	}
	if st.LatencyPackets <= 0 {
		t.Error("query must still pay the probe")
	}
}

func TestPointQuery(t *testing.T) {
	ds := dataset.Uniform(200, 6, 13)
	for _, cfg := range []Config{{}, {Segments: 2}, {Sizing: SizingPaperTable, Capacity: 64}} {
		x, err := Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Existing point.
		o := ds.Objects[57]
		c := NewClient(x, 123, nil)
		id, found, _ := c.Point(o.P)
		if !found || id != o.ID {
			t.Errorf("cfg %+v: Point(%v) = (%d,%v), want (%d,true)", cfg, o.P, id, found, o.ID)
		}
		// Missing point: find an unoccupied cell.
		occupied := make(map[uint64]bool)
		for _, oo := range ds.Objects {
			occupied[oo.HC] = true
		}
		var miss spatial.Point
		for v := uint64(0); ; v++ {
			if !occupied[v] {
				mx, my := ds.Curve.Decode(v)
				miss = spatial.Point{X: mx, Y: my}
				break
			}
		}
		c = NewClient(x, 55, nil)
		if _, found, _ := c.Point(miss); found {
			t.Errorf("cfg %+v: Point(%v) found a nonexistent object", cfg, miss)
		}
	}
}

func knnDistances(ds *dataset.Dataset, q spatial.Point, ids []int) []float64 {
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = ds.ByID(id).P.Dist(q)
	}
	sort.Float64s(out)
	return out
}

func TestKNNMatchesBruteForce(t *testing.T) {
	ds := dataset.Uniform(300, 6, 17)
	rng := rand.New(rand.NewSource(5))
	for ci, cfg := range configsUnderTest {
		x, err := Build(ds, cfg)
		if err != nil {
			t.Fatalf("cfg %d: %v", ci, err)
		}
		for _, strat := range []Strategy{Conservative, Aggressive} {
			for i := 0; i < 8; i++ {
				q := spatial.Point{X: uint32(rng.Intn(64)), Y: uint32(rng.Intn(64))}
				k := rng.Intn(12) + 1
				probe := rng.Int63n(int64(x.Prog.Len()))
				c := NewClient(x, probe, nil)
				got, st := c.KNN(q, k, strat)
				if len(got) != k {
					t.Fatalf("cfg %d %v: got %d ids, want %d", ci, strat, len(got), k)
				}
				want, _ := ds.KNNBrute(q, k)
				gd := knnDistances(ds, q, got)
				wd := knnDistances(ds, q, want)
				for j := range gd {
					if gd[j] != wd[j] {
						t.Fatalf("cfg %d %v q=%v k=%d: distance[%d] = %v, want %v (ids %v vs %v)",
							ci, strat, q, k, j, gd[j], wd[j], got, want)
					}
				}
				if st.TuningPackets > st.LatencyPackets {
					t.Fatalf("cfg %d %v: tuning exceeds latency", ci, strat)
				}
			}
		}
	}
}

func TestKNNEdgeCases(t *testing.T) {
	ds := dataset.Uniform(50, 6, 19)
	x, _ := Build(ds, Config{})
	c := NewClient(x, 3, nil)
	if got, _ := c.KNN(spatial.Point{X: 1, Y: 1}, 0, Conservative); got != nil {
		t.Error("k=0 must return nil")
	}
	c = NewClient(x, 3, nil)
	got, _ := c.KNN(spatial.Point{X: 1, Y: 1}, 100, Conservative)
	if len(got) != 50 {
		t.Errorf("k>n returned %d, want all 50", len(got))
	}
	// k = n exactly.
	c = NewClient(x, 900, nil)
	got, _ = c.KNN(spatial.Point{X: 60, Y: 60}, 50, Aggressive)
	if len(got) != 50 {
		t.Errorf("k=n returned %d", len(got))
	}
}

func TestKNNQueryAtObjectLocation(t *testing.T) {
	ds := dataset.Uniform(200, 6, 23)
	x, _ := Build(ds, Config{Segments: 2})
	o := ds.Objects[100]
	c := NewClient(x, 42, nil)
	got, _ := c.KNN(o.P, 1, Conservative)
	if len(got) != 1 || got[0] != o.ID {
		t.Errorf("1NN at object location = %v, want [%d]", got, o.ID)
	}
}

func TestQueriesFromEveryProbePosition(t *testing.T) {
	// Exhaustive probe sweep on a small broadcast: correctness must not
	// depend on where the client tunes in.
	ds := dataset.Uniform(40, 5, 29)
	for _, cfg := range []Config{{}, {Segments: 2}} {
		x, err := Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		w := spatial.Rect{MinX: 5, MinY: 5, MaxX: 25, MaxY: 25}
		want := ds.WindowBrute(w)
		q := spatial.Point{X: 16, Y: 16}
		wantKNN, _ := ds.KNNBrute(q, 5)
		wd := knnDistances(ds, q, wantKNN)
		step := x.FramePackets/3 + 1
		for probe := 0; probe < x.Prog.Len(); probe += step {
			c := NewClient(x, int64(probe), nil)
			got, _ := c.Window(w)
			if !equalInts(got, want) {
				t.Fatalf("cfg %+v probe %d: window mismatch", cfg, probe)
			}
			c = NewClient(x, int64(probe), nil)
			gotKNN, _ := c.KNN(q, 5, Conservative)
			if gd := knnDistances(ds, q, gotKNN); !equalFloats(gd, wd) {
				t.Fatalf("cfg %+v probe %d: kNN mismatch", cfg, probe)
			}
		}
	}
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLatencyBoundedByFewCycles(t *testing.T) {
	// DSI queries must terminate within a small number of cycles.
	ds := dataset.Uniform(300, 6, 31)
	for _, cfg := range []Config{{}, {Segments: 2}} {
		x, _ := Build(ds, cfg)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 10; i++ {
			q := spatial.Point{X: uint32(rng.Intn(64)), Y: uint32(rng.Intn(64))}
			c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), nil)
			_, st := c.KNN(q, 10, Conservative)
			if st.LatencyPackets > 3*int64(x.Prog.Len()) {
				t.Errorf("cfg %+v: kNN took %d packets (> 3 cycles of %d)",
					cfg, st.LatencyPackets, x.Prog.Len())
			}
		}
	}
}

func TestClusteredDatasetQueries(t *testing.T) {
	ds := dataset.Clustered(dataset.ClusteredConfig{
		N: 400, Order: 7, Clusters: 8, Spread: 0.05, Isolated: 0.2, Seed: 5,
	})
	x, err := Build(ds, Config{Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10; i++ {
		q := spatial.Point{X: uint32(rng.Intn(128)), Y: uint32(rng.Intn(128))}
		c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), nil)
		got, _ := c.KNN(q, 7, Conservative)
		want, _ := ds.KNNBrute(q, 7)
		if !equalFloats(knnDistances(ds, q, got), knnDistances(ds, q, want)) {
			t.Fatalf("clustered kNN mismatch at %v", q)
		}
		w := spatial.ClampedWindow(uint32(rng.Intn(128)), uint32(rng.Intn(128)), 25, 128)
		c = NewClient(x, rng.Int63n(int64(x.Prog.Len())), nil)
		gotW, _ := c.Window(w)
		if !equalInts(gotW, ds.WindowBrute(w)) {
			t.Fatalf("clustered window mismatch at %v", w)
		}
	}
}

func TestConservativeVsAggressiveTradeoff(t *testing.T) {
	// Paper section 3.4/4.1: on the original (m=1) broadcast, the
	// aggressive strategy should use no more tuning than conservative
	// on average, while conservative should have no more latency.
	ds := dataset.Uniform(1000, 7, 37)
	x, _ := Build(ds, Config{})
	rng := rand.New(rand.NewSource(3))
	var consLat, consTune, aggLat, aggTune float64
	const trials = 60
	for i := 0; i < trials; i++ {
		q := spatial.Point{X: uint32(rng.Intn(128)), Y: uint32(rng.Intn(128))}
		probe := rng.Int63n(int64(x.Prog.Len()))
		c := NewClient(x, probe, nil)
		_, st := c.KNN(q, 10, Conservative)
		consLat += float64(st.LatencyPackets)
		consTune += float64(st.TuningPackets)
		c = NewClient(x, probe, nil)
		_, st = c.KNN(q, 10, Aggressive)
		aggLat += float64(st.LatencyPackets)
		aggTune += float64(st.TuningPackets)
	}
	if aggTune > consTune {
		t.Errorf("aggressive tuning %v > conservative %v", aggTune/trials, consTune/trials)
	}
	if consLat > aggLat*1.05 {
		t.Errorf("conservative latency %v > aggressive %v", consLat/trials, aggLat/trials)
	}
}

func TestReorganizedImprovesKNN(t *testing.T) {
	// Paper section 4.1: the two-segment reorganized broadcast beats
	// the original broadcast's conservative strategy on tuning time
	// (our measured win is ~25% at paper scale) while staying within a
	// modest factor on access latency.
	ds := dataset.Uniform(1000, 7, 41)
	orig, _ := Build(ds, Config{})
	reorg, _ := Build(ds, Config{Segments: 2})
	rng := rand.New(rand.NewSource(4))
	var oLat, oTune, rLat, rTune float64
	const trials = 60
	for i := 0; i < trials; i++ {
		q := spatial.Point{X: uint32(rng.Intn(128)), Y: uint32(rng.Intn(128))}
		probe := rng.Int63n(int64(orig.Prog.Len()))
		c := NewClient(orig, probe, nil)
		_, st := c.KNN(q, 10, Conservative)
		oLat += float64(st.LatencyPackets)
		oTune += float64(st.TuningPackets)
		c = NewClient(reorg, probe%int64(reorg.Prog.Len()), nil)
		_, st = c.KNN(q, 10, Conservative)
		rLat += float64(st.LatencyPackets)
		rTune += float64(st.TuningPackets)
	}
	if rTune > oTune {
		t.Errorf("reorganized tuning %v worse than original %v", rTune/trials, oTune/trials)
	}
	if rLat > oLat*1.25 {
		t.Errorf("reorganized latency %v much worse than original %v", rLat/trials, oLat/trials)
	}
}

func TestStatsProbeSlotRecorded(t *testing.T) {
	ds := dataset.Uniform(100, 6, 43)
	x, _ := Build(ds, Config{})
	c := NewClient(x, 777, nil)
	_, st := c.Window(spatial.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10})
	if st.ProbeSlot != 777 {
		t.Errorf("ProbeSlot = %d, want 777", st.ProbeSlot)
	}
	if st.Capacity != 64 {
		t.Errorf("Capacity = %d", st.Capacity)
	}
}

func TestKNNRadiusNeverBelowTrueKth(t *testing.T) {
	// Sanity: the kNN result's max distance equals the brute-force kth
	// distance (no object closer than the kth is missed).
	ds := dataset.Uniform(500, 7, 47)
	x, _ := Build(ds, Config{Segments: 2})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 20; i++ {
		q := spatial.Point{X: uint32(rng.Intn(128)), Y: uint32(rng.Intn(128))}
		c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), nil)
		got, _ := c.KNN(q, 10, Conservative)
		maxD := 0.0
		for _, id := range got {
			if d := ds.ByID(id).P.Dist(q); d > maxD {
				maxD = d
			}
		}
		if kth := ds.KthDist(q, 10); math.Abs(maxD-kth) > 1e-9 {
			t.Errorf("q=%v: result max dist %v != brute kth %v", q, maxD, kth)
		}
	}
}

var sinkStats broadcast.Stats

func BenchmarkWindowQuery(b *testing.B) {
	ds := dataset.Uniform(1000, 7, 1)
	x, _ := Build(ds, Config{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := spatial.ClampedWindow(uint32(rng.Intn(128)), uint32(rng.Intn(128)), 13, 128)
		c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), nil)
		_, sinkStats = c.Window(w)
	}
}

func BenchmarkKNNConservative(b *testing.B) {
	ds := dataset.Uniform(1000, 7, 1)
	x, _ := Build(ds, Config{})
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := spatial.Point{X: uint32(rng.Intn(128)), Y: uint32(rng.Intn(128))}
		c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), nil)
		_, sinkStats = c.KNN(q, 10, Conservative)
	}
}

// BenchmarkKNNAggressive exercises the aggressive hop rule, whose
// frame-distance evaluations now read coordinates precomputed at Build
// instead of Hilbert-decoding each table entry per hop.
func BenchmarkKNNAggressive(b *testing.B) {
	ds := dataset.Uniform(1000, 7, 1)
	x, _ := Build(ds, Config{})
	rng := rand.New(rand.NewSource(1))
	c := NewClient(x, 0, nil)
	var buf []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := spatial.Point{X: uint32(rng.Intn(128)), Y: uint32(rng.Intn(128))}
		c.Reset(rng.Int63n(int64(x.Prog.Len())), nil)
		buf, sinkStats = c.KNNAppend(buf[:0], q, 10, Aggressive)
	}
}

var sinkDist float64

// BenchmarkFrameDist2 and BenchmarkHCDist2Decode compare the two ways
// of measuring a frame's distance to the query point: the Build-time
// precomputed cell coordinates versus decoding the frame's minimum HC
// value on the spot (what the aggressive hop rule used to do per entry
// per hop).
func BenchmarkFrameDist2(b *testing.B) {
	ds := dataset.Uniform(1000, 7, 1)
	x, _ := Build(ds, Config{})
	c := NewClient(x, 0, nil)
	q := spatial.Point{X: 77, Y: 19}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkDist += c.frameDist2(q, i%x.NF)
	}
}

func BenchmarkHCDist2Decode(b *testing.B) {
	ds := dataset.Uniform(1000, 7, 1)
	x, _ := Build(ds, Config{})
	c := NewClient(x, 0, nil)
	q := spatial.Point{X: 77, Y: 19}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkDist += c.hcDist2(q, x.MinHC(i%x.NF))
	}
}

package dsi

import (
	"math/rand"
	"testing"

	"dsi/internal/dataset"
)

func TestEEFReachesCoveringFrame(t *testing.T) {
	ds := dataset.Uniform(200, 6, 61)
	for _, cfg := range []Config{{}, {Segments: 2}, {Sizing: SizingUnitFactor}} {
		x, err := Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 30; i++ {
			o := ds.Objects[rng.Intn(ds.N())]
			c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), nil)
			frame, exists, st := c.EEF(o.HC)
			if !exists {
				t.Fatalf("cfg %+v: EEF(%d) missed existing object", cfg, o.HC)
			}
			first, num := x.FrameObjects(frame)
			found := false
			for id := first; id < first+num; id++ {
				if ds.Objects[id].HC == o.HC {
					found = true
				}
			}
			if !found {
				t.Fatalf("cfg %+v: EEF(%d) reached frame %d which does not hold the object",
					cfg, o.HC, frame)
			}
			if st.LatencyPackets <= 0 || st.TuningPackets > st.LatencyPackets {
				t.Fatalf("cfg %+v: bad stats %+v", cfg, st)
			}
		}
	}
}

func TestEEFNonexistentValue(t *testing.T) {
	ds := dataset.Uniform(100, 6, 63)
	x, _ := Build(ds, Config{})
	occupied := make(map[uint64]bool)
	for _, o := range ds.Objects {
		occupied[o.HC] = true
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		hc := uint64(rng.Int63n(int64(ds.Curve.Size())))
		if occupied[hc] {
			continue
		}
		c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), nil)
		frame, exists, _ := c.EEF(hc)
		if exists {
			t.Fatalf("EEF(%d) claims a nonexistent object exists", hc)
		}
		// The covering frame must bracket hc: its minimum HC <= hc (or
		// hc precedes the whole broadcast and the frame is frame 0).
		if x.MinHC(frame) > hc && frame != 0 {
			t.Fatalf("EEF(%d) reached frame %d with min HC %d", hc, frame, x.MinHC(frame))
		}
	}
}

func TestEEFPanicsOutsideCurve(t *testing.T) {
	ds := dataset.Uniform(50, 5, 65)
	x, _ := Build(ds, Config{})
	c := NewClient(x, 0, nil)
	defer func() {
		if recover() == nil {
			t.Error("EEF outside curve did not panic")
		}
	}()
	c.EEF(ds.Curve.Size())
}

func TestEEFHopCountLogarithmic(t *testing.T) {
	// EEF's defining property: the number of index tables read grows
	// like log(nF), not linearly. With full base-2 coverage
	// (SizingUnitFactor) a point query on 4096 frames must read far
	// fewer than 100 tables.
	ds := dataset.Uniform(4096, 7, 67)
	x, err := Build(ds, Config{Sizing: SizingUnitFactor})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		o := ds.Objects[rng.Intn(ds.N())]
		c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), nil)
		_, _, st := c.EEF(o.HC)
		// Tables are 3 packets here; allow probe + object + generous
		// slack: 100 packets is still far below linear scanning
		// (thousands of packets).
		if st.TuningPackets > 120 {
			t.Fatalf("EEF used %d packets of tuning; forwarding is not logarithmic",
				st.TuningPackets)
		}
	}
}

func TestCoveringFrameCertainty(t *testing.T) {
	ds := dataset.Uniform(100, 6, 69)
	x, _ := Build(ds, Config{})
	kb := newKnowledge(x)
	// Only the catalog seed is known: covering an HC beyond frame 0 is
	// uncertain because any unknown frame could still cover it.
	hc := ds.Objects[50].HC
	f, certain := kb.coveringFrame(hc)
	if f != 0 || certain {
		t.Fatalf("fresh kb: coveringFrame = (%d,%v), want (0,false)", f, certain)
	}
	// Teach it frames 49..51: now the covering frame of object 50's HC
	// is frame 50, with certainty (51 is known and adjacent).
	for _, fid := range []int{49, 50, 51} {
		kb.addFrameFact(fid, x.MinHC(fid))
	}
	f, certain = kb.coveringFrame(hc)
	if f != 50 || !certain {
		t.Fatalf("coveringFrame = (%d,%v), want (50,true)", f, certain)
	}
	// An HC value below every object is covered by frame 0, certainly.
	if ds.Objects[0].HC > 0 {
		f, certain = kb.coveringFrame(0)
		if f != 0 || !certain {
			t.Fatalf("coveringFrame(0) = (%d,%v), want (0,true)", f, certain)
		}
	}
	// The last frame covers anything above it, with certainty only
	// because it is the segment's last frame and known.
	kb.addFrameFact(x.NF-1, x.MinHC(x.NF-1))
	f, certain = kb.coveringFrame(ds.Curve.Size() - 1)
	if f != x.NF-1 || !certain {
		t.Fatalf("coveringFrame(max) = (%d,%v), want (%d,true)", f, certain, x.NF-1)
	}
}

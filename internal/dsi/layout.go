package dsi

import (
	"fmt"

	"dsi/internal/broadcast"
)

// Scheduler selects how a DSI broadcast is laid out across the channels
// of a multi-channel air.
type Scheduler int

const (
	// SchedStripe stripes whole frames (index table + objects) round-
	// robin across the channels: the frame at cycle position p airs on
	// channel p mod N. Every channel is self-describing (it carries
	// tables), and the per-channel cycle shrinks by a factor of N.
	SchedStripe Scheduler = iota
	// SchedSplit separates index from data: channel 0 carries only the
	// index tables (one per cycle position, in position order), and the
	// remaining N-1 channels carry the object payloads of the frames,
	// striped round-robin. Tables recur a frame-length factor faster
	// and the data cycle shrinks by a factor of N-1, at the price of a
	// channel switch between navigation and retrieval.
	SchedSplit
	// SchedShard separates index from data like SchedSplit, but cuts
	// the data frames at the caller-supplied shard boundaries
	// (MultiConfig.ShardBounds) instead of into balanced blocks: data
	// channel 1+s carries frames [ShardBounds[s], ShardBounds[s+1]) as
	// its own independent cycle, so a small (hot) shard rebroadcasts
	// its frames proportionally more often than a large (cold) one —
	// the broadcast-disks discipline. internal/sched plans the
	// boundaries from a workload profile; clients get one knowledge
	// span per shard and navigate across shards by actual arrival time.
	SchedShard
)

func (s Scheduler) String() string {
	switch s {
	case SchedStripe:
		return "stripe"
	case SchedSplit:
		return "split"
	case SchedShard:
		return "shard"
	default:
		return fmt.Sprintf("scheduler(%d)", int(s))
	}
}

// MultiConfig describes a multi-channel layout of a DSI broadcast.
type MultiConfig struct {
	// Channels is the number of parallel broadcast channels (>= 1).
	Channels int
	// Scheduler selects the placement policy. With Channels == 1 both
	// schedulers degenerate to the classic single-channel program.
	Scheduler Scheduler
	// SwitchSlots is the receiver's channel-switch cost in packet slots.
	SwitchSlots int
	// ShardBounds are the shard boundaries of a SchedShard layout:
	// ascending frame ids starting at 0 and ending at the frame count,
	// one entry per channel (Channels-1 data shards plus the sentinel).
	// Ignored by the other schedulers. internal/sched emits them.
	ShardBounds []int
}

// Layout places a built DSI broadcast onto the channels of an air: for
// every cycle position it records where the frame's index table and
// where its object payload are transmitted, as (channel, slot) pairs.
// Navigation pointers in a multi-channel broadcast are exactly such
// pairs; the client's timing arithmetic goes through the layout and
// nothing else, so a layout is the one seam between query processing
// and channel scheduling.
//
// A layout is immutable after construction and safe for concurrent use.
type Layout struct {
	X     *Index
	Air   *broadcast.Air
	Cfg   MultiConfig
	Sched Scheduler

	// StartCh is the channel clients tune to initially (the channel
	// carrying index tables: 0 under every scheduler here).
	StartCh int

	// DataPackets is the size of a frame's object payload in slots.
	DataPackets int

	// Per cycle position: channel and per-channel cycle slot of the
	// frame's index table and of its first object packet.
	tableCh   []int32
	tableSlot []int32
	dataCh    []int32
	dataSlot  []int32

	// dataStart[ch] is the first cycle position whose data channel ch
	// carries (split and sharded layouts; the block placement keeps
	// positions contiguous per channel).
	dataStart []int32

	// shardBounds are the shard boundaries of a SchedShard layout
	// (frame ids, with a sentinel NF); nil for other schedulers.
	shardBounds []int

	// stripeOff[ch] is the phase-stagger rotation of stripe channel ch
	// in slots (see stripeLayout); nil when no stagger applies.
	stripeOff []int32
}

// singleLayout builds the degenerate one-channel layout over the
// index's classic program: table and data placements are the slot
// arithmetic the single-channel client has always used.
func singleLayout(x *Index) *Layout {
	l := &Layout{
		X:           x,
		Air:         broadcast.SingleAir(x.Prog),
		Cfg:         MultiConfig{Channels: 1},
		Sched:       SchedStripe,
		DataPackets: x.NO * x.ObjPackets,
	}
	l.place(x.NF)
	for pos := 0; pos < x.NF; pos++ {
		l.tableCh[pos] = 0
		l.tableSlot[pos] = int32(pos * x.FramePackets)
		l.dataCh[pos] = 0
		l.dataSlot[pos] = int32(pos*x.FramePackets + x.TablePackets)
	}
	return l
}

func (l *Layout) place(nf int) {
	buf := make([]int32, 4*nf)
	l.tableCh, l.tableSlot = buf[0:nf], buf[nf:2*nf]
	l.dataCh, l.dataSlot = buf[2*nf:3*nf], buf[3*nf:4*nf]
}

// NewLayout places the index onto mc.Channels parallel channels with
// the configured scheduler. Channels == 1 yields a layout whose single
// channel is the index's own program: clients behave bit-identically to
// the classic single-channel engine.
func NewLayout(x *Index, mc MultiConfig) (*Layout, error) {
	if mc.Channels < 1 {
		return nil, fmt.Errorf("dsi: channel count %d must be >= 1", mc.Channels)
	}
	if mc.SwitchSlots < 0 {
		return nil, fmt.Errorf("dsi: negative switch cost %d", mc.SwitchSlots)
	}
	if mc.Channels == 1 {
		l := singleLayout(x)
		l.Cfg = mc
		return l, nil
	}
	switch mc.Scheduler {
	case SchedStripe:
		return stripeLayout(x, mc)
	case SchedSplit:
		return splitLayout(x, mc)
	case SchedShard:
		return shardLayout(x, mc)
	default:
		return nil, fmt.Errorf("dsi: unknown scheduler %v", mc.Scheduler)
	}
}

// frameSlots appends the slots of frame f (table packets then object
// packets, or data only) to dst.
func frameSlots(x *Index, f int, table, data bool, dst []broadcast.Slot) []broadcast.Slot {
	if table {
		for p := 0; p < x.TablePackets; p++ {
			dst = append(dst, broadcast.Slot{Kind: broadcast.KindIndex, Owner: int32(f), Part: int32(p)})
		}
	}
	if data {
		for p := 0; p < x.NO*x.ObjPackets; p++ {
			dst = append(dst, broadcast.Slot{Kind: broadcast.KindData, Owner: int32(f), Part: int32(x.TablePackets + p)})
		}
	}
	return dst
}

// stripeLayout places whole frames round-robin: position p airs intact
// (table followed by objects) on channel p mod N.
//
// When the frames divide evenly across the channels, the channels are
// phase-staggered: channel c's program is rotated by
// c*(FramePackets+SwitchSlots) slots, so within each round of n
// consecutive positions the frame at position p airs one frame length
// (plus the retune cost) after the frame at position p-1 instead of in
// the same slots in parallel. Aligned striping is useless to a
// single-radio client — adjacent frames air simultaneously and all but
// one are unreceivable — while the stagger lets a client that finishes
// frame p switch channels and catch frame p+1's first slot exactly
// after the retune. The guarantee covers consecutive positions on
// consecutive channels (n-1 of every n adjacent pairs); at the round
// seam — channel n-1 back to channel 0 — the rotations telescope and
// wrap, so that pair can still overlap. With NF % N != 0 the per-channel
// cycles have different lengths and the relative phases drift a frame
// per wrap, so no fixed rotation can keep adjacent frames apart; such
// layouts stay aligned rather than claim a guarantee that decays after
// one cycle. At one channel the offset is zero and the program is the
// classic single-channel cycle, untouched.
func stripeLayout(x *Index, mc MultiConfig) (*Layout, error) {
	n := mc.Channels
	if x.NF < n {
		return nil, fmt.Errorf("dsi: %d frames cannot stripe over %d channels", x.NF, n)
	}
	l := &Layout{
		X:           x,
		Cfg:         mc,
		Sched:       SchedStripe,
		DataPackets: x.NO * x.ObjPackets,
	}
	l.place(x.NF)
	chans := make([]*broadcast.Channel, n)
	for c := range chans {
		chans[c] = &broadcast.Channel{Program: broadcast.Program{Capacity: x.Cfg.Capacity}}
	}
	for pos := 0; pos < x.NF; pos++ {
		c := pos % n
		prog := &chans[c].Program
		l.tableCh[pos] = int32(c)
		l.tableSlot[pos] = int32(len(prog.Slots))
		l.dataCh[pos] = int32(c)
		l.dataSlot[pos] = int32(len(prog.Slots) + x.TablePackets)
		prog.Slots = frameSlots(x, x.PosToFrame(pos), true, true, prog.Slots)
	}
	// The stagger needs evenly striped frames (unequal cycles drift out
	// of any fixed rotation) and room inside the cycle: with
	// per-channel cycles of at most one frame plus the retune cost, the
	// rotation wraps back onto the aligned frame and the no-overlap
	// guarantee is void.
	staggered := x.NF%n == 0 && (x.NF/n)*x.FramePackets > x.FramePackets+mc.SwitchSlots
	if staggered {
		l.stripeOff = make([]int32, n)
		for c := 1; c < n; c++ {
			ln := len(chans[c].Slots)
			off := (c * (x.FramePackets + mc.SwitchSlots)) % ln
			l.stripeOff[c] = int32(off)
			if off == 0 {
				continue
			}
			rotated := make([]broadcast.Slot, ln)
			for i, s := range chans[c].Slots {
				rotated[(i+off)%ln] = s
			}
			chans[c].Slots = rotated
		}
		for pos := 0; pos < x.NF; pos++ {
			c := pos % n
			if off := int(l.stripeOff[c]); off != 0 {
				ln := len(chans[c].Slots)
				l.tableSlot[pos] = int32((int(l.tableSlot[pos]) + off) % ln)
				l.dataSlot[pos] = int32((int(l.dataSlot[pos]) + off) % ln)
			}
		}
	}
	air, err := broadcast.NewAir(mc.SwitchSlots, chans...)
	if err != nil {
		return nil, err
	}
	l.Air = air
	return l, nil
}

// deStagger maps a per-channel slot of a staggered stripe channel back
// to its unrotated program slot.
func (l *Layout) deStagger(ch, slot int) int {
	if l.stripeOff == nil {
		return slot
	}
	ln := l.ChanLen(ch)
	return (slot - int(l.stripeOff[ch]) + ln) % ln
}

// splitLayout separates index from data: channel 0 carries every index
// table in cycle-position order; channels 1..N-1 carry the frames'
// object payloads in contiguous position blocks (channel 1+c holds
// positions [c*B, (c+1)*B)). Blocks — rather than round-robin — keep
// consecutive positions on one channel in consecutive slots, so a
// client harvesting a range of frames stays tuned instead of finding
// that the next frame just aired in parallel on a sibling channel.
func splitLayout(x *Index, mc MultiConfig) (*Layout, error) {
	k := mc.Channels - 1 // data channels
	if x.NF < k {
		return nil, fmt.Errorf("dsi: %d frames cannot be blocked over %d data channels", x.NF, k)
	}
	l := &Layout{
		X:           x,
		Cfg:         mc,
		Sched:       SchedSplit,
		DataPackets: x.NO * x.ObjPackets,
	}
	l.place(x.NF)
	chans := make([]*broadcast.Channel, mc.Channels)
	for c := range chans {
		chans[c] = &broadcast.Channel{Program: broadcast.Program{Capacity: x.Cfg.Capacity}}
	}
	// Balanced blocks: the first NF mod k data channels carry one frame
	// more, so every data channel is non-empty.
	dataChOf := make([]int32, x.NF)
	l.dataStart = make([]int32, mc.Channels)
	base, extra := x.NF/k, x.NF%k
	pos := 0
	for c := 0; c < k; c++ {
		size := base
		if c < extra {
			size++
		}
		l.dataStart[1+c] = int32(pos)
		for i := 0; i < size; i++ {
			dataChOf[pos] = int32(1 + c)
			pos++
		}
	}
	for pos := 0; pos < x.NF; pos++ {
		f := x.PosToFrame(pos)
		l.tableCh[pos] = 0
		l.tableSlot[pos] = int32(pos * x.TablePackets)
		chans[0].Slots = frameSlots(x, f, true, false, chans[0].Slots)

		c := dataChOf[pos]
		prog := &chans[c].Program
		l.dataCh[pos] = c
		l.dataSlot[pos] = int32(len(prog.Slots))
		prog.Slots = frameSlots(x, f, false, true, prog.Slots)
	}
	air, err := broadcast.NewAir(mc.SwitchSlots, chans...)
	if err != nil {
		return nil, err
	}
	l.Air = air
	return l, nil
}

// shardLayout is SchedSplit with caller-chosen cut points: channel 0
// carries every index table in cycle-position order, and data channel
// 1+s carries the object payloads of frames [ShardBounds[s],
// ShardBounds[s+1]) as its own cycle. Because the per-channel cycle
// length is proportional to the shard size, assigning few (hot) frames
// to a shard makes them recur often — the broadcast-disks lever the
// sched planner pulls. Sharded layouts require the non-reorganized
// broadcast (m = 1): shards are HC spans, and interleaved segments
// would break the frame-contiguity the per-shard knowledge bases and
// the catalog shard splits rely on.
func shardLayout(x *Index, mc MultiConfig) (*Layout, error) {
	if x.Cfg.Segments != 1 {
		return nil, fmt.Errorf("dsi: sharded layouts require a non-reorganized broadcast, got m=%d", x.Cfg.Segments)
	}
	b := mc.ShardBounds
	if len(b) != mc.Channels {
		return nil, fmt.Errorf("dsi: %d shard bounds for %d channels (want one data channel per shard plus the index channel)",
			len(b), mc.Channels)
	}
	if len(b) < 2 || b[0] != 0 || b[len(b)-1] != x.NF {
		return nil, fmt.Errorf("dsi: shard bounds %v must start at 0 and end at %d", b, x.NF)
	}
	for s := 1; s < len(b); s++ {
		if b[s] <= b[s-1] {
			return nil, fmt.Errorf("dsi: shard %d is empty in bounds %v", s-1, b)
		}
	}
	for s := 1; s < len(b)-1; s++ {
		if x.minHC[b[s]] <= x.minHC[b[s]-1] {
			return nil, fmt.Errorf("dsi: shard cut at frame %d does not advance the HC order", b[s])
		}
	}
	l := &Layout{
		X:           x,
		Cfg:         mc,
		Sched:       SchedShard,
		DataPackets: x.NO * x.ObjPackets,
		shardBounds: append([]int(nil), b...),
	}
	l.place(x.NF)
	chans := make([]*broadcast.Channel, mc.Channels)
	for c := range chans {
		chans[c] = &broadcast.Channel{Program: broadcast.Program{Capacity: x.Cfg.Capacity}}
	}
	l.dataStart = make([]int32, mc.Channels)
	for s := 0; s < len(b)-1; s++ {
		l.dataStart[1+s] = int32(b[s])
	}
	shard := 0
	for pos := 0; pos < x.NF; pos++ {
		f := x.PosToFrame(pos) // identity at m=1, kept for symmetry
		l.tableCh[pos] = 0
		l.tableSlot[pos] = int32(pos * x.TablePackets)
		chans[0].Slots = frameSlots(x, f, true, false, chans[0].Slots)

		for pos >= b[shard+1] {
			shard++
		}
		prog := &chans[1+shard].Program
		l.dataCh[pos] = int32(1 + shard)
		l.dataSlot[pos] = int32(len(prog.Slots))
		prog.Slots = frameSlots(x, f, false, true, prog.Slots)
	}
	air, err := broadcast.NewAir(mc.SwitchSlots, chans...)
	if err != nil {
		return nil, err
	}
	l.Air = air
	return l, nil
}

// CheckLossChannel validates a per-channel loss override target: the
// layout must be multi-channel and ch must be one of its channels. It
// is the one validation every Receiver implementation applies before
// handing the override to the tuner.
func (l *Layout) CheckLossChannel(ch int) error {
	if l.Channels() == 1 {
		return fmt.Errorf("dsi: per-channel loss on a single-channel layout")
	}
	if ch < 0 || ch >= l.Channels() {
		return fmt.Errorf("dsi: per-channel loss on channel %d outside layout of %d channels", ch, l.Channels())
	}
	return nil
}

// ShardBounds returns the shard boundaries of a SchedShard layout
// (frame ids with a sentinel), nil for other schedulers. The returned
// slice is the layout's state: callers must not modify it.
func (l *Layout) ShardBounds() []int { return l.shardBounds }

// splitData reports whether the layout carries index tables on a
// channel of their own (the client then navigates with the index sweep
// instead of per-frame table reads).
func (l *Layout) splitData() bool {
	return (l.Sched == SchedSplit || l.Sched == SchedShard) && l.Channels() > 1
}

// TablePlace returns the channel and per-channel cycle slot at which
// the index table of the frame at cycle position pos is broadcast.
func (l *Layout) TablePlace(pos int) (ch, slot int) {
	return int(l.tableCh[pos]), int(l.tableSlot[pos])
}

// DataPlace returns the channel and per-channel cycle slot at which the
// first object packet of the frame at cycle position pos is broadcast.
func (l *Layout) DataPlace(pos int) (ch, slot int) {
	return int(l.dataCh[pos]), int(l.dataSlot[pos])
}

// Channels returns the number of parallel channels.
func (l *Layout) Channels() int { return l.Air.NumChannels() }

// ChanLen returns the cycle length of channel ch in slots.
func (l *Layout) ChanLen(ch int) int { return l.Air.Channels[ch].Len() }

// FramesOn returns the number of frames whose content (data frames; on
// the index channel of a split layout, index tables) channel ch carries
// per cycle — the range a per-channel frame pointer must stay within.
func (l *Layout) FramesOn(ch int) int {
	if l.splitData() {
		if ch == l.StartCh {
			return l.X.NF
		}
		return l.ChanLen(ch) / l.DataPackets
	}
	return l.ChanLen(ch) / l.X.FramePackets
}

// DataFrameIndex returns the per-channel frame index of the frame at
// cycle position pos on its data channel: its data starts at slot
// index*DataPackets (plus the table packets on layouts that keep the
// table inline, and the channel's phase-stagger offset on staggered
// stripe layouts — catalog geometry a receiver knows a priori).
func (l *Layout) DataFrameIndex(pos int) (ch, index int) {
	ch = int(l.dataCh[pos])
	if l.splitData() {
		return ch, int(l.dataSlot[pos]) / l.DataPackets
	}
	return ch, l.deStagger(ch, int(l.tableSlot[pos])) / l.X.FramePackets
}

// SlotTable inverts the table placement: it returns the cycle position
// and packet part of the index table occupying per-channel slot `slot`
// of channel ch, with ok false when that slot carries no table packet.
func (l *Layout) SlotTable(ch, slot int) (pos, part int, ok bool) {
	fp := l.X.FramePackets
	switch {
	case l.Channels() == 1:
		pos, part = slot/fp, slot%fp
		return pos, part, part < l.X.TablePackets
	case l.splitData():
		if ch != l.StartCh {
			return 0, 0, false
		}
		return slot / l.X.TablePackets, slot % l.X.TablePackets, true
	default: // stripe: channel ch carries positions ch, ch+N, ch+2N, ...
		slot = l.deStagger(ch, slot)
		j, within := slot/fp, slot%fp
		return j*l.Cfg.Channels + ch, within, within < l.X.TablePackets
	}
}

// SlotData inverts the data placement: it returns the cycle position
// and the packet offset within the frame's object payload for
// per-channel slot `slot` of channel ch, with ok false when that slot
// carries no data packet.
func (l *Layout) SlotData(ch, slot int) (pos, off int, ok bool) {
	fp := l.X.FramePackets
	tp := l.X.TablePackets
	switch {
	case l.Channels() == 1:
		pos, off = slot/fp, slot%fp-tp
		return pos, off, off >= 0
	case l.splitData():
		if ch == l.StartCh {
			return 0, 0, false
		}
		return int(l.dataStart[ch]) + slot/l.DataPackets, slot % l.DataPackets, true
	default:
		slot = l.deStagger(ch, slot)
		j, within := slot/fp, slot%fp
		return j*l.Cfg.Channels + ch, within - tp, within >= tp
	}
}

// ProbeCycle returns the range experiment harnesses draw probe slots
// from: the total slot count across channels. Channels share one
// absolute clock, so a probe uniform over this range makes every
// channel's phase (in particular the long data channels of a split
// layout) effectively uniform at tune-in; drawing over just the start
// channel's short cycle would pin the data channels near phase zero
// and bias every measured wait. At one channel this is exactly the
// program length, so single-channel experiments are unchanged.
func (l *Layout) ProbeCycle() int {
	total := 0
	for _, ch := range l.Air.Channels {
		total += ch.Len()
	}
	return total
}

// CycleBytes returns the total bytes broadcast per full cycle across
// all channels.
func (l *Layout) CycleBytes() int64 {
	var total int64
	for _, ch := range l.Air.Channels {
		total += ch.CycleBytes()
	}
	return total
}

// probePos maps the position the tuner synchronized at (channel
// l.StartCh, slot within that channel's cycle) to the cycle position of
// the next frame whose table starts at or after that slot, which is
// where a freshly probed client resumes.
func (l *Layout) probePos(slot int) int {
	switch {
	case l.Channels() == 1:
		framePos := slot / l.X.FramePackets
		if slot%l.X.FramePackets != 0 {
			framePos = (framePos + 1) % l.X.NF
		}
		return framePos
	case l.Sched == SchedSplit || l.Sched == SchedShard:
		p := slot / l.X.TablePackets
		if slot%l.X.TablePackets != 0 {
			p++
		}
		return p % l.X.NF
	default: // stripe, start channel 0 carries positions 0, N, 2N, ...
		fp := l.X.FramePackets
		j := slot / fp
		if slot%fp != 0 {
			j++
		}
		n := l.Cfg.Channels
		onStart := (l.X.NF + n - 1) / n // frames on channel 0
		return (j % onStart) * n
	}
}

func (l *Layout) String() string {
	return fmt.Sprintf("Layout{%v N=%d switch=%d over %v}", l.Sched, l.Channels(), l.Cfg.SwitchSlots, l.X)
}

package dsi

import (
	"fmt"

	"dsi/internal/broadcast"
)

// Scheduler selects how a DSI broadcast is laid out across the channels
// of a multi-channel air.
type Scheduler int

const (
	// SchedStripe stripes whole frames (index table + objects) round-
	// robin across the channels: the frame at cycle position p airs on
	// channel p mod N. Every channel is self-describing (it carries
	// tables), and the per-channel cycle shrinks by a factor of N.
	SchedStripe Scheduler = iota
	// SchedSplit separates index from data: channel 0 carries only the
	// index tables (one per cycle position, in position order), and the
	// remaining N-1 channels carry the object payloads of the frames,
	// striped round-robin. Tables recur a frame-length factor faster
	// and the data cycle shrinks by a factor of N-1, at the price of a
	// channel switch between navigation and retrieval.
	SchedSplit
)

func (s Scheduler) String() string {
	switch s {
	case SchedStripe:
		return "stripe"
	case SchedSplit:
		return "split"
	default:
		return fmt.Sprintf("scheduler(%d)", int(s))
	}
}

// MultiConfig describes a multi-channel layout of a DSI broadcast.
type MultiConfig struct {
	// Channels is the number of parallel broadcast channels (>= 1).
	Channels int
	// Scheduler selects the placement policy. With Channels == 1 both
	// schedulers degenerate to the classic single-channel program.
	Scheduler Scheduler
	// SwitchSlots is the receiver's channel-switch cost in packet slots.
	SwitchSlots int
}

// Layout places a built DSI broadcast onto the channels of an air: for
// every cycle position it records where the frame's index table and
// where its object payload are transmitted, as (channel, slot) pairs.
// Navigation pointers in a multi-channel broadcast are exactly such
// pairs; the client's timing arithmetic goes through the layout and
// nothing else, so a layout is the one seam between query processing
// and channel scheduling.
//
// A layout is immutable after construction and safe for concurrent use.
type Layout struct {
	X     *Index
	Air   *broadcast.Air
	Cfg   MultiConfig
	Sched Scheduler

	// StartCh is the channel clients tune to initially (the channel
	// carrying index tables: 0 under every scheduler here).
	StartCh int

	// DataPackets is the size of a frame's object payload in slots.
	DataPackets int

	// Per cycle position: channel and per-channel cycle slot of the
	// frame's index table and of its first object packet.
	tableCh   []int32
	tableSlot []int32
	dataCh    []int32
	dataSlot  []int32

	// dataStart[ch] is the first cycle position whose data channel ch
	// carries (split layouts; the block placement keeps positions
	// contiguous per channel).
	dataStart []int32
}

// singleLayout builds the degenerate one-channel layout over the
// index's classic program: table and data placements are the slot
// arithmetic the single-channel client has always used.
func singleLayout(x *Index) *Layout {
	l := &Layout{
		X:           x,
		Air:         broadcast.SingleAir(x.Prog),
		Cfg:         MultiConfig{Channels: 1},
		Sched:       SchedStripe,
		DataPackets: x.NO * x.ObjPackets,
	}
	l.place(x.NF)
	for pos := 0; pos < x.NF; pos++ {
		l.tableCh[pos] = 0
		l.tableSlot[pos] = int32(pos * x.FramePackets)
		l.dataCh[pos] = 0
		l.dataSlot[pos] = int32(pos*x.FramePackets + x.TablePackets)
	}
	return l
}

func (l *Layout) place(nf int) {
	buf := make([]int32, 4*nf)
	l.tableCh, l.tableSlot = buf[0:nf], buf[nf:2*nf]
	l.dataCh, l.dataSlot = buf[2*nf:3*nf], buf[3*nf:4*nf]
}

// NewLayout places the index onto mc.Channels parallel channels with
// the configured scheduler. Channels == 1 yields a layout whose single
// channel is the index's own program: clients behave bit-identically to
// the classic single-channel engine.
func NewLayout(x *Index, mc MultiConfig) (*Layout, error) {
	if mc.Channels < 1 {
		return nil, fmt.Errorf("dsi: channel count %d must be >= 1", mc.Channels)
	}
	if mc.SwitchSlots < 0 {
		return nil, fmt.Errorf("dsi: negative switch cost %d", mc.SwitchSlots)
	}
	if mc.Channels == 1 {
		l := singleLayout(x)
		l.Cfg = mc
		return l, nil
	}
	switch mc.Scheduler {
	case SchedStripe:
		return stripeLayout(x, mc)
	case SchedSplit:
		return splitLayout(x, mc)
	default:
		return nil, fmt.Errorf("dsi: unknown scheduler %v", mc.Scheduler)
	}
}

// frameSlots appends the slots of frame f (table packets then object
// packets, or data only) to dst.
func frameSlots(x *Index, f int, table, data bool, dst []broadcast.Slot) []broadcast.Slot {
	if table {
		for p := 0; p < x.TablePackets; p++ {
			dst = append(dst, broadcast.Slot{Kind: broadcast.KindIndex, Owner: int32(f), Part: int32(p)})
		}
	}
	if data {
		for p := 0; p < x.NO*x.ObjPackets; p++ {
			dst = append(dst, broadcast.Slot{Kind: broadcast.KindData, Owner: int32(f), Part: int32(x.TablePackets + p)})
		}
	}
	return dst
}

// stripeLayout places whole frames round-robin: position p airs intact
// (table followed by objects) on channel p mod N.
func stripeLayout(x *Index, mc MultiConfig) (*Layout, error) {
	n := mc.Channels
	if x.NF < n {
		return nil, fmt.Errorf("dsi: %d frames cannot stripe over %d channels", x.NF, n)
	}
	l := &Layout{
		X:           x,
		Cfg:         mc,
		Sched:       SchedStripe,
		DataPackets: x.NO * x.ObjPackets,
	}
	l.place(x.NF)
	chans := make([]*broadcast.Channel, n)
	for c := range chans {
		chans[c] = &broadcast.Channel{Program: broadcast.Program{Capacity: x.Cfg.Capacity}}
	}
	for pos := 0; pos < x.NF; pos++ {
		c := pos % n
		prog := &chans[c].Program
		l.tableCh[pos] = int32(c)
		l.tableSlot[pos] = int32(len(prog.Slots))
		l.dataCh[pos] = int32(c)
		l.dataSlot[pos] = int32(len(prog.Slots) + x.TablePackets)
		prog.Slots = frameSlots(x, x.PosToFrame(pos), true, true, prog.Slots)
	}
	air, err := broadcast.NewAir(mc.SwitchSlots, chans...)
	if err != nil {
		return nil, err
	}
	l.Air = air
	return l, nil
}

// splitLayout separates index from data: channel 0 carries every index
// table in cycle-position order; channels 1..N-1 carry the frames'
// object payloads in contiguous position blocks (channel 1+c holds
// positions [c*B, (c+1)*B)). Blocks — rather than round-robin — keep
// consecutive positions on one channel in consecutive slots, so a
// client harvesting a range of frames stays tuned instead of finding
// that the next frame just aired in parallel on a sibling channel.
func splitLayout(x *Index, mc MultiConfig) (*Layout, error) {
	k := mc.Channels - 1 // data channels
	if x.NF < k {
		return nil, fmt.Errorf("dsi: %d frames cannot be blocked over %d data channels", x.NF, k)
	}
	l := &Layout{
		X:           x,
		Cfg:         mc,
		Sched:       SchedSplit,
		DataPackets: x.NO * x.ObjPackets,
	}
	l.place(x.NF)
	chans := make([]*broadcast.Channel, mc.Channels)
	for c := range chans {
		chans[c] = &broadcast.Channel{Program: broadcast.Program{Capacity: x.Cfg.Capacity}}
	}
	// Balanced blocks: the first NF mod k data channels carry one frame
	// more, so every data channel is non-empty.
	dataChOf := make([]int32, x.NF)
	l.dataStart = make([]int32, mc.Channels)
	base, extra := x.NF/k, x.NF%k
	pos := 0
	for c := 0; c < k; c++ {
		size := base
		if c < extra {
			size++
		}
		l.dataStart[1+c] = int32(pos)
		for i := 0; i < size; i++ {
			dataChOf[pos] = int32(1 + c)
			pos++
		}
	}
	for pos := 0; pos < x.NF; pos++ {
		f := x.PosToFrame(pos)
		l.tableCh[pos] = 0
		l.tableSlot[pos] = int32(pos * x.TablePackets)
		chans[0].Slots = frameSlots(x, f, true, false, chans[0].Slots)

		c := dataChOf[pos]
		prog := &chans[c].Program
		l.dataCh[pos] = c
		l.dataSlot[pos] = int32(len(prog.Slots))
		prog.Slots = frameSlots(x, f, false, true, prog.Slots)
	}
	air, err := broadcast.NewAir(mc.SwitchSlots, chans...)
	if err != nil {
		return nil, err
	}
	l.Air = air
	return l, nil
}

// splitData reports whether the layout carries index tables on a
// channel of their own (the client then navigates with the index sweep
// instead of per-frame table reads).
func (l *Layout) splitData() bool { return l.Sched == SchedSplit && l.Channels() > 1 }

// TablePlace returns the channel and per-channel cycle slot at which
// the index table of the frame at cycle position pos is broadcast.
func (l *Layout) TablePlace(pos int) (ch, slot int) {
	return int(l.tableCh[pos]), int(l.tableSlot[pos])
}

// DataPlace returns the channel and per-channel cycle slot at which the
// first object packet of the frame at cycle position pos is broadcast.
func (l *Layout) DataPlace(pos int) (ch, slot int) {
	return int(l.dataCh[pos]), int(l.dataSlot[pos])
}

// Channels returns the number of parallel channels.
func (l *Layout) Channels() int { return l.Air.NumChannels() }

// ChanLen returns the cycle length of channel ch in slots.
func (l *Layout) ChanLen(ch int) int { return l.Air.Channels[ch].Len() }

// FramesOn returns the number of frames whose content (data frames; on
// the index channel of a split layout, index tables) channel ch carries
// per cycle — the range a per-channel frame pointer must stay within.
func (l *Layout) FramesOn(ch int) int {
	if l.splitData() {
		if ch == l.StartCh {
			return l.X.NF
		}
		return l.ChanLen(ch) / l.DataPackets
	}
	return l.ChanLen(ch) / l.X.FramePackets
}

// DataFrameIndex returns the per-channel frame index of the frame at
// cycle position pos on its data channel: its data starts at slot
// index*DataPackets (plus the table packets on layouts that keep the
// table inline).
func (l *Layout) DataFrameIndex(pos int) (ch, index int) {
	ch = int(l.dataCh[pos])
	if l.splitData() {
		return ch, int(l.dataSlot[pos]) / l.DataPackets
	}
	return ch, int(l.tableSlot[pos]) / l.X.FramePackets
}

// SlotTable inverts the table placement: it returns the cycle position
// and packet part of the index table occupying per-channel slot `slot`
// of channel ch, with ok false when that slot carries no table packet.
func (l *Layout) SlotTable(ch, slot int) (pos, part int, ok bool) {
	fp := l.X.FramePackets
	switch {
	case l.Channels() == 1:
		pos, part = slot/fp, slot%fp
		return pos, part, part < l.X.TablePackets
	case l.splitData():
		if ch != l.StartCh {
			return 0, 0, false
		}
		return slot / l.X.TablePackets, slot % l.X.TablePackets, true
	default: // stripe: channel ch carries positions ch, ch+N, ch+2N, ...
		j, within := slot/fp, slot%fp
		return j*l.Cfg.Channels + ch, within, within < l.X.TablePackets
	}
}

// SlotData inverts the data placement: it returns the cycle position
// and the packet offset within the frame's object payload for
// per-channel slot `slot` of channel ch, with ok false when that slot
// carries no data packet.
func (l *Layout) SlotData(ch, slot int) (pos, off int, ok bool) {
	fp := l.X.FramePackets
	tp := l.X.TablePackets
	switch {
	case l.Channels() == 1:
		pos, off = slot/fp, slot%fp-tp
		return pos, off, off >= 0
	case l.splitData():
		if ch == l.StartCh {
			return 0, 0, false
		}
		return int(l.dataStart[ch]) + slot/l.DataPackets, slot % l.DataPackets, true
	default:
		j, within := slot/fp, slot%fp
		return j*l.Cfg.Channels + ch, within - tp, within >= tp
	}
}

// ProbeCycle returns the range experiment harnesses draw probe slots
// from: the total slot count across channels. Channels share one
// absolute clock, so a probe uniform over this range makes every
// channel's phase (in particular the long data channels of a split
// layout) effectively uniform at tune-in; drawing over just the start
// channel's short cycle would pin the data channels near phase zero
// and bias every measured wait. At one channel this is exactly the
// program length, so single-channel experiments are unchanged.
func (l *Layout) ProbeCycle() int {
	total := 0
	for _, ch := range l.Air.Channels {
		total += ch.Len()
	}
	return total
}

// CycleBytes returns the total bytes broadcast per full cycle across
// all channels.
func (l *Layout) CycleBytes() int64 {
	var total int64
	for _, ch := range l.Air.Channels {
		total += ch.CycleBytes()
	}
	return total
}

// probePos maps the position the tuner synchronized at (channel
// l.StartCh, slot within that channel's cycle) to the cycle position of
// the next frame whose table starts at or after that slot, which is
// where a freshly probed client resumes.
func (l *Layout) probePos(slot int) int {
	switch {
	case l.Channels() == 1:
		framePos := slot / l.X.FramePackets
		if slot%l.X.FramePackets != 0 {
			framePos = (framePos + 1) % l.X.NF
		}
		return framePos
	case l.Sched == SchedSplit:
		p := slot / l.X.TablePackets
		if slot%l.X.TablePackets != 0 {
			p++
		}
		return p % l.X.NF
	default: // stripe, start channel 0 carries positions 0, N, 2N, ...
		fp := l.X.FramePackets
		j := slot / fp
		if slot%fp != 0 {
			j++
		}
		n := l.Cfg.Channels
		onStart := (l.X.NF + n - 1) / n // frames on channel 0
		return (j % onStart) * n
	}
}

func (l *Layout) String() string {
	return fmt.Sprintf("Layout{%v N=%d switch=%d over %v}", l.Sched, l.Channels(), l.Cfg.SwitchSlots, l.X)
}

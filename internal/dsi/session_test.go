package dsi

import (
	"math/rand"
	"strings"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

// TestOpenBitIdenticalToLegacyConstructors is the facade's regression
// contract: a Session opened over any layout must answer every query
// with exactly the results and cost metrics of the legacy constructor
// it replaces — including across Tune cycles, which must behave like
// the legacy Reset.
func TestOpenBitIdenticalToLegacyConstructors(t *testing.T) {
	ds := dataset.Uniform(320, 7, 611)
	x, err := Build(ds, Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	x2, err := Build(ds, Config{Capacity: 64, Segments: 2})
	if err != nil {
		t.Fatal(err)
	}

	type arm struct {
		name   string
		legacy func(probe int64, loss *broadcast.LossModel) *Client
		open   func() (*Session, error)
	}
	mkLay := func(x *Index, mc MultiConfig) *Layout {
		lay, err := NewLayout(x, mc)
		if err != nil {
			t.Fatal(err)
		}
		return lay
	}
	split := mkLay(x2, MultiConfig{Channels: 3, Scheduler: SchedSplit, SwitchSlots: 2})
	shardMC := MultiConfig{Channels: 3, Scheduler: SchedShard, SwitchSlots: 2,
		ShardBounds: []int{0, x.NF / 3, x.NF}}
	shard := mkLay(x, shardMC)
	arms := []arm{
		{
			"single",
			func(p int64, l *broadcast.LossModel) *Client { return NewClient(x, p, l) },
			func() (*Session, error) { return Open(x) },
		},
		{
			"split layout",
			func(p int64, l *broadcast.LossModel) *Client { return NewMultiClient(split, p, l) },
			func() (*Session, error) { return Open(x2, WithLayout(split)) },
		},
		{
			"shard via multiconfig",
			func(p int64, l *broadcast.LossModel) *Client { return NewMultiClient(shard, p, l) },
			func() (*Session, error) { return Open(x, WithMultiConfig(shardMC)) },
		},
		{
			"shard via bounds",
			func(p int64, l *broadcast.LossModel) *Client { return NewMultiClient(shard, p, l) },
			func() (*Session, error) {
				return Open(x, WithShardBounds(0, x.NF/3, x.NF), WithSwitchSlots(2))
			},
		},
	}

	side := int(ds.Curve.Side())
	for _, a := range arms {
		s, err := a.open()
		if err != nil {
			t.Fatalf("%s: Open: %v", a.name, err)
		}
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 12; trial++ {
			probe := rng.Int63n(int64(s.Layout().ProbeCycle()))
			var loss *broadcast.LossModel
			mk := func() *broadcast.LossModel { return nil }
			if trial%3 == 2 {
				seed := rng.Int63()
				mk = func() *broadcast.LossModel { return broadcast.NewLossModel(0.3, seed) }
			}
			loss = mk()
			legacy := a.legacy(probe, mk())
			s.Tune(probe, loss)
			if trial%2 == 0 {
				w := randWindow(rng, side)
				wantIDs, wantSt := legacy.Window(w)
				gotIDs, gotSt := s.Window(w)
				if !equalInts(gotIDs, wantIDs) || gotSt != wantSt {
					t.Fatalf("%s trial %d: session window (%v,%+v) != legacy (%v,%+v)",
						a.name, trial, gotIDs, gotSt, wantIDs, wantSt)
				}
			} else {
				q := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
				k := 1 + rng.Intn(6)
				wantIDs, wantSt := legacy.KNN(q, k, Conservative)
				gotIDs, gotSt := s.KNN(q, k, Conservative)
				if !equalInts(gotIDs, wantIDs) || gotSt != wantSt {
					t.Fatalf("%s trial %d: session kNN (%v,%+v) != legacy (%v,%+v)",
						a.name, trial, gotIDs, gotSt, wantIDs, wantSt)
				}
			}
		}
	}
}

// TestSessionAutoRetune verifies that a query issued without an
// intervening Tune behaves like an explicit re-tune at the previous
// parameters (the legacy Reset-per-query pattern).
func TestSessionAutoRetune(t *testing.T) {
	ds := dataset.Uniform(200, 7, 77)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(x, WithProbeSlot(1234))
	if err != nil {
		t.Fatal(err)
	}
	w := spatial.ClampedWindow(40, 40, 30, ds.Curve.Side())
	ids1, st1 := s.Window(w)
	want := append([]int(nil), ids1...)
	ids2, st2 := s.Window(w)
	if !equalInts(ids2, want) || st1 != st2 {
		t.Fatalf("repeat query diverged: (%v,%+v) then (%v,%+v)", want, st1, ids2, st2)
	}
	c := NewClient(x, 1234, nil)
	wantIDs, wantSt := c.Window(w)
	if !equalInts(ids2, wantIDs) || st2 != wantSt {
		t.Fatalf("auto-retuned session != fresh client")
	}

	// An injected receiver's construction-time probe slot must survive
	// the automatic re-tune too (it used to silently reset to slot 0).
	rxSess, err := Open(x, WithReceiver(NewSimReceiver(x.SingleLayout(), 1234, nil)))
	if err != nil {
		t.Fatal(err)
	}
	ids3, st3 := rxSess.Window(w)
	ids4, st4 := rxSess.Window(w)
	if !equalInts(ids3, wantIDs) || st3 != wantSt {
		t.Fatalf("receiver session first query != fresh client at its probe slot")
	}
	if !equalInts(ids4, wantIDs) || st4 != wantSt {
		t.Fatalf("receiver session auto-retune lost the probe slot: %+v, want %+v", st4, wantSt)
	}
}

// TestOpenOptionErrors covers the facade's validation: conflicting
// layout options, orphan switch cost, cross-index layouts and
// receivers, and channel-loss overrides that do not fit the layout.
func TestOpenOptionErrors(t *testing.T) {
	ds := dataset.Uniform(120, 7, 9)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	other, err := Build(dataset.Uniform(80, 7, 10), Config{})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := NewLayout(x, MultiConfig{Channels: 2, Scheduler: SchedSplit})
	if err != nil {
		t.Fatal(err)
	}
	ge := broadcast.NewLossModel(0.1, 1)
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"layout conflict", []Option{WithLayout(lay), WithMultiConfig(MultiConfig{Channels: 2})}, "more than one"},
		{"bounds conflict", []Option{WithShardBounds(0, x.NF), WithLayout(lay)}, "more than one"},
		{"receiver plus layout", []Option{WithReceiver(NewSimReceiver(lay, 0, nil)), WithLayout(lay)}, "carries its own layout"},
		{"orphan switch slots", []Option{WithSwitchSlots(2)}, "WithShardBounds"},
		{"foreign layout", []Option{WithLayout(mustLayout(t, other, MultiConfig{Channels: 1}))}, "different index"},
		{"foreign receiver", []Option{WithReceiver(NewSimReceiver(other.single, 0, nil))}, "different index"},
		{"bad bounds", []Option{WithShardBounds(0, 0, x.NF)}, "empty"},
		{"channel loss on single channel", []Option{WithChannelLoss(0, ge)}, "single-channel"},
		{"channel loss out of range", []Option{WithLayout(lay), WithChannelLoss(5, ge)}, "outside layout"},
	}
	for _, tc := range cases {
		_, err := Open(x, tc.opts...)
		if err == nil {
			t.Errorf("%s: Open succeeded, want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func mustLayout(t *testing.T, x *Index, mc MultiConfig) *Layout {
	t.Helper()
	lay, err := NewLayout(x, mc)
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

// TestSessionChannelLossPersists verifies WithChannelLoss overrides are
// reinstalled after Tune (unlike the one-query Client.SetChannelLoss).
func TestSessionChannelLossPersists(t *testing.T) {
	ds := dataset.Uniform(200, 7, 21)
	x, err := Build(ds, Config{Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := NewLayout(x, MultiConfig{Channels: 3, Scheduler: SchedSplit, SwitchSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One stateful loss model per arm, shared across that arm's two
	// queries: the reference reinstalls its model by hand after every
	// reset, the session must reinstall its own automatically, and the
	// two RNG streams advance in lockstep query by query.
	sessLoss := broadcast.NewLossModel(0.2, 99)
	refLoss := broadcast.NewLossModel(0.2, 99)
	s, err := Open(x, WithLayout(lay), WithChannelLoss(0, sessLoss))
	if err != nil {
		t.Fatal(err)
	}
	w := spatial.ClampedWindow(10, 10, 40, ds.Curve.Side())

	c := NewMultiClient(lay, 500, nil)
	for trial := 0; trial < 2; trial++ {
		c.Reset(500, nil)
		if err := c.SetChannelLoss(0, refLoss); err != nil {
			t.Fatal(err)
		}
		_, wantSt := c.Window(w)

		s.Tune(500, nil)
		_, st := s.Window(w)
		if st != wantSt {
			t.Fatalf("trial %d: channel loss lost across Tune: %+v, want %+v", trial, st, wantSt)
		}
	}
}

// TestSessionSetChannelLossSurvivesAutoRetune: an override installed
// between queries must land on the next query even when the session
// re-tunes automatically (the re-tune used to wipe it).
func TestSessionSetChannelLossSurvivesAutoRetune(t *testing.T) {
	ds := dataset.Uniform(200, 7, 21)
	x, err := Build(ds, Config{Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := NewLayout(x, MultiConfig{Channels: 3, Scheduler: SchedSplit, SwitchSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := spatial.ClampedWindow(10, 10, 40, ds.Curve.Side())

	s, err := Open(x, WithLayout(lay), WithProbeSlot(500))
	if err != nil {
		t.Fatal(err)
	}
	s.Window(w) // consume the fresh tune-in
	if err := s.SetChannelLoss(0, broadcast.NewLossModel(0.2, 99)); err != nil {
		t.Fatal(err)
	}
	_, got := s.Window(w) // must run with the override despite the auto re-tune

	ref := NewMultiClient(lay, 500, nil)
	if err := ref.SetChannelLoss(0, broadcast.NewLossModel(0.2, 99)); err != nil {
		t.Fatal(err)
	}
	_, want := ref.Window(w)
	if got != want {
		t.Fatalf("override wiped by auto re-tune: %+v, want %+v", got, want)
	}
}

// TestSessionAllocsSteadyState asserts the facade keeps the client's
// zero-allocation append contract: a warm session answers window
// queries within the same fixed budget as a bare client.
func TestSessionAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets only hold in normal builds")
	}
	ds := dataset.Uniform(2000, 8, 31)
	x, err := Build(ds, Config{Capacity: 64, Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Open(x)
	if err != nil {
		t.Fatal(err)
	}
	w := spatial.ClampedWindow(100, 140, 25, ds.Curve.Side())
	var buf []int
	for i := 0; i < 3; i++ {
		s.Tune(int64(i*37), nil)
		buf, _ = s.WindowAppend(buf[:0], w)
	}
	probe := int64(0)
	avg := testing.AllocsPerRun(20, func() {
		s.Tune(probe, nil)
		buf, _ = s.WindowAppend(buf[:0], w)
		probe = (probe + 61) % int64(x.Prog.Len())
	})
	if avg > windowAllocBudget {
		t.Errorf("warm session window query allocates %.1f/run, budget %d", avg, windowAllocBudget)
	}
	if len(buf) == 0 {
		t.Fatal("window query returned nothing")
	}
}

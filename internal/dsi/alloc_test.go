package dsi

import (
	"testing"

	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

// Steady-state allocation budgets for warm-client queries. The engine
// holds a handful of small closures and pooled buffers; nothing may
// scale with the dataset (the seed code allocated six dataset-sized
// slices per query plus per-visit index tables).
const (
	windowAllocBudget = 8
	knnAllocBudget    = 16
)

// TestWindowAllocsSteadyState asserts a warm client answers window
// queries within the fixed allocation budget.
func TestWindowAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; allocation budgets only hold in normal builds")
	}
	ds := dataset.Uniform(2000, 8, 31)
	x, err := Build(ds, Config{Capacity: 64, Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(x, 0, nil)
	w := spatial.ClampedWindow(100, 140, 25, ds.Curve.Side())
	var buf []int
	// Warm up: grow every reusable buffer to steady state.
	for i := 0; i < 3; i++ {
		c.Reset(int64(i*37), nil)
		buf, _ = c.WindowAppend(buf[:0], w)
	}
	probe := int64(0)
	avg := testing.AllocsPerRun(20, func() {
		c.Reset(probe, nil)
		buf, _ = c.WindowAppend(buf[:0], w)
		probe = (probe + 61) % int64(x.Prog.Len())
	})
	if avg > windowAllocBudget {
		t.Errorf("warm window query allocates %.1f/run, budget %d", avg, windowAllocBudget)
	}
	if len(buf) == 0 {
		t.Fatal("window query returned nothing")
	}
}

// TestKNNAllocsSteadyState asserts a warm client answers 10NN queries
// within the fixed allocation budget.
func TestKNNAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector randomizes sync.Pool reuse; allocation budgets only hold in normal builds")
	}
	ds := dataset.Uniform(2000, 8, 33)
	x, err := Build(ds, Config{Capacity: 64, Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(x, 0, nil)
	q := spatial.Point{X: 77, Y: 190}
	var buf []int
	for i := 0; i < 3; i++ {
		c.Reset(int64(i*37), nil)
		buf, _ = c.KNNAppend(buf[:0], q, 10, Conservative)
	}
	probe := int64(0)
	avg := testing.AllocsPerRun(20, func() {
		c.Reset(probe, nil)
		buf, _ = c.KNNAppend(buf[:0], q, 10, Conservative)
		probe = (probe + 61) % int64(x.Prog.Len())
	})
	if avg > knnAllocBudget {
		t.Errorf("warm 10NN query allocates %.1f/run, budget %d", avg, knnAllocBudget)
	}
	if len(buf) != 10 {
		t.Fatalf("10NN returned %d ids", len(buf))
	}
}

// The Receiver abstraction: the client's only window onto the air.
//
// Query processing (knowledge base, navigation, termination) never
// touches the broadcast medium directly — every packet a client
// receives flows through a Receiver, which turns positioned reads into
// content: index tables, object headers, object payloads, and shard-
// directory updates. Two implementations ship with the package's
// ecosystem:
//
//   - SimReceiver (here) wraps the in-memory simulator fast path: it
//     pays tuning and latency through a broadcast.Tuner and serves
//     content from the index's precomputed tables and the dataset,
//     bit-identical to the pre-Receiver client.
//   - station.WireReceiver decodes the actual byte streams a
//     transmitter puts on air (package wire formats), including the
//     versioned shard directory, so loss applies to real packets —
//     directory packets included.
//
// New reception models (a dual-radio receiver, a prefetching tuner)
// are new Receiver implementations, not new client constructors: pass
// one to Open via WithReceiver.

package dsi

import (
	"dsi/internal/broadcast"
)

// Receiver is a mobile client's radio: position and clock accounting
// plus content reception. All cost metrics (latency, tuning, switches)
// accrue inside the receiver; the client above it only decides where to
// point it next.
//
// Positioning methods (Tune, DozeUntilPos) move the radio; content
// methods (Next, Table, Header, Object) receive packets at the current
// position, paying one tuning packet per slot consumed and reporting
// ok=false when loss or an undecodable payload corrupted the content
// (the cost is paid either way). Poll surfaces a shard-directory
// version bump the receiver has learned from the air; Follow commits
// the client's switch onto the new layout.
type Receiver interface {
	// Layout returns the channel layout the receiver currently assumes
	// on air (its catalog view; Poll/Follow advance it).
	Layout() *Layout
	// Now returns the absolute packet clock.
	Now() int64
	// Pos returns the current cycle position on the current channel,
	// relative to the channel's phase anchor.
	Pos() int
	// Channel returns the channel the radio is tuned to.
	Channel() int
	// PhaseOf returns the absolute slot at which channel ch's current
	// cycle has position 0 (0 until a schedule swap re-anchors it).
	PhaseOf(ch int) int64
	// Stats returns the cost metrics accumulated since the last Reset.
	Stats() broadcast.Stats
	// Tune retunes the radio to channel ch, paying the air's switch
	// cost when ch differs from the current channel.
	Tune(ch int)
	// DozeUntilPos sleeps until the next occurrence of the given cycle
	// position on the current channel.
	DozeUntilPos(pos int)
	// Next receives one packet at the current slot (the probe).
	Next() (broadcast.Slot, bool)
	// Table receives the index table of the frame at cycle position pos
	// (the radio must be at the table's first slot) and returns its
	// decoded content. The returned table is valid until the next Table
	// call; callers must not modify it.
	Table(pos int) (*Table, bool)
	// Header receives the header packet of the o-th object of the frame
	// at position pos and returns the object's HC value.
	Header(pos, o int) (uint64, bool)
	// Object receives the remaining packets of the o-th object of the
	// frame at position pos, the first skip packets having already been
	// consumed as a header. It reports whether every packet arrived
	// intact.
	Object(pos, o, skip int) bool
	// Poll reports a pending shard-directory version bump: the new
	// layout to re-seed onto, once the receiver has fully learned it
	// from the air. Receivers that pay reception costs for directory
	// content (the wire path) charge them here.
	Poll() (*Layout, bool)
	// Follow commits the client's re-seed onto lay (a layout obtained
	// from Poll, or a scheduled simulator-side swap target).
	Follow(lay *Layout)
	// Reset re-tunes the radio at the given absolute slot with fresh
	// metrics, preserving what the receiver knows about the schedule.
	Reset(probeSlot int64, loss *broadcast.LossModel)
	// SetChannelLoss installs a per-channel loss model, overriding the
	// query-wide model on that channel. It fails on a single-channel
	// receiver or a channel outside the layout.
	SetChannelLoss(ch int, loss *broadcast.LossModel) error
}

// SimReceiver is the in-memory simulator receiver: costs are paid
// through a broadcast.Tuner over the layout's air, and content is
// served from the index's precomputed tables and the dataset itself —
// the fast path every experiment harness runs on. It is bit-identical
// (results and cost metrics) to the pre-Receiver client.
type SimReceiver struct {
	lay *Layout
	tu  *broadcast.Tuner
}

// NewSimReceiver returns a simulator receiver tuned to the layout's
// start channel at the given absolute slot. The canonical single-
// channel layout gets the classic single-program tuner; every other
// layout gets an air tuner with per-channel accounting.
func NewSimReceiver(lay *Layout, probeSlot int64, loss *broadcast.LossModel) *SimReceiver {
	if lay == lay.X.single {
		return &SimReceiver{lay: lay, tu: broadcast.NewTuner(lay.X.Prog, probeSlot, loss)}
	}
	return &SimReceiver{lay: lay, tu: broadcast.NewAirTuner(lay.Air, lay.StartCh, probeSlot, loss)}
}

// Layout returns the layout the receiver runs over.
func (r *SimReceiver) Layout() *Layout { return r.lay }

// Now returns the absolute packet clock.
func (r *SimReceiver) Now() int64 { return r.tu.Now() }

// Pos returns the current cycle position on the current channel.
func (r *SimReceiver) Pos() int { return r.tu.Pos() }

// Channel returns the channel the radio is tuned to.
func (r *SimReceiver) Channel() int { return r.tu.Channel() }

// PhaseOf returns 0: simulator airs are anchored at slot 0 (the
// simulator models a schedule swap as an instantaneous program change,
// see Tuner.Retune).
func (r *SimReceiver) PhaseOf(int) int64 { return 0 }

// Stats returns the metrics accumulated since the last Reset.
func (r *SimReceiver) Stats() broadcast.Stats { return r.tu.Stats() }

// Tune retunes the radio to channel ch.
func (r *SimReceiver) Tune(ch int) { r.tu.Switch(ch) }

// DozeUntilPos sleeps until the next occurrence of the position.
func (r *SimReceiver) DozeUntilPos(pos int) { r.tu.DozeUntilPos(pos) }

// Next receives one packet at the current slot.
func (r *SimReceiver) Next() (broadcast.Slot, bool) { return r.tu.Read() }

// Table receives the TablePackets packets of position pos's index table
// and serves the precomputed decoded table. ok is false when any packet
// was corrupted; no knowledge is gained but the cost is paid.
func (r *SimReceiver) Table(pos int) (*Table, bool) {
	ok := true
	for i := 0; i < r.lay.X.TablePackets; i++ {
		if _, good := r.tu.Read(); !good {
			ok = false
		}
	}
	if !ok {
		return nil, false
	}
	return &r.lay.X.tables[pos], true
}

// Header receives one header packet and serves the object's HC value
// from the dataset (the content a wire receiver decodes from bytes).
func (r *SimReceiver) Header(pos, o int) (uint64, bool) {
	if _, good := r.tu.Read(); !good {
		return 0, false
	}
	x := r.lay.X
	first, _ := x.FrameObjects(x.PosToFrame(pos))
	return x.DS.Objects[first+o].HC, true
}

// Object receives the object's remaining ObjPackets-skip packets.
func (r *SimReceiver) Object(pos, o, skip int) bool {
	ok := true
	for i := skip; i < r.lay.X.ObjPackets; i++ {
		if _, good := r.tu.Read(); !good {
			ok = false
		}
	}
	return ok
}

// Poll never reports a bump: the simulator drives swaps through
// Client.ScheduleResync instead of through on-air directory packets.
func (r *SimReceiver) Poll() (*Layout, bool) { return nil, false }

// Follow re-points the tuner at the new layout's air in place (the
// simulator's instantaneous schedule swap).
func (r *SimReceiver) Follow(lay *Layout) {
	r.tu.Retune(lay.Air)
	r.lay = lay
}

// Reset re-tunes the receiver at the given absolute slot.
func (r *SimReceiver) Reset(probeSlot int64, loss *broadcast.LossModel) {
	r.tu.Reset(probeSlot, loss)
}

// SetChannelLoss installs a per-channel loss model. The channel must
// exist on a multi-channel layout (Layout.CheckLossChannel): an
// out-of-range channel is an error, not a silent index.
func (r *SimReceiver) SetChannelLoss(ch int, loss *broadcast.LossModel) error {
	if err := r.lay.CheckLossChannel(ch); err != nil {
		return err
	}
	r.tu.SetChannelLoss(ch, loss)
	return nil
}

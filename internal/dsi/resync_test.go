package dsi

import (
	"math/rand"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

// resyncFixture builds an index and two sharded layouts over it with
// different shard maps: the "old" and "new" directory of a re-plan.
func resyncFixture(t *testing.T, n int, seed int64) (*Index, *Layout, *Layout) {
	t.Helper()
	ds := dataset.Uniform(n, 7, seed)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	nf := x.NF
	old, err := NewLayout(x, MultiConfig{Channels: 4, Scheduler: SchedShard, SwitchSlots: 2,
		ShardBounds: shardBoundsOf(nf/3, nf/3, nf-2*(nf/3))})
	if err != nil {
		t.Fatal(err)
	}
	new_, err := NewLayout(x, MultiConfig{Channels: 4, Scheduler: SchedShard, SwitchSlots: 2,
		ShardBounds: shardBoundsOf(25, 80, nf-105)})
	if err != nil {
		t.Fatal(err)
	}
	return x, old, new_
}

// TestResyncMidQueryCorrectness: a client whose broadcast swaps shard
// directories mid-query — at any point of the query — still answers
// exactly, for window and kNN queries, with and without packet loss.
func TestResyncMidQueryCorrectness(t *testing.T) {
	x, old, new_ := resyncFixture(t, 500, 41)
	ds := x.DS
	rng := rand.New(rand.NewSource(7))
	side := int(ds.Curve.Side())
	c := NewMultiClient(old, 0, nil)
	fired := 0
	for trial := 0; trial < 60; trial++ {
		// Recreate the old-directory client when the previous trial's
		// swap went through (a resynced client is a new-layout client).
		if c.Layout() != old {
			c = NewMultiClient(old, 0, nil)
			fired++
		}
		probe := rng.Int63n(int64(old.ProbeCycle()))
		var loss *broadcast.LossModel
		if trial%5 == 4 {
			loss = broadcast.NewLossModel(0.3, rng.Int63())
		}
		c.Reset(probe, loss)
		// The seam lands anywhere from immediately to deep into the
		// query; late seams exercise queries that finish before it.
		delay := rng.Int63n(int64(old.ProbeCycle()))
		if err := c.ScheduleResync(new_, probe+delay); err != nil {
			t.Fatal(err)
		}
		if trial%2 == 0 {
			w := randWindow(rng, side)
			got, _ := c.Window(w)
			if want := ds.WindowBrute(w); !equalInts(got, want) {
				t.Fatalf("trial %d (delay %d): window %v got %v want %v", trial, delay, w, got, want)
			}
		} else {
			q := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
			k := 1 + rng.Intn(8)
			got, _ := c.KNN(q, k, Conservative)
			want, _ := ds.KNNBrute(q, k)
			if !sameDist2(ds, q, got, want) {
				t.Fatalf("trial %d (delay %d): kNN at %v k=%d got %v want %v", trial, delay, q, k, got, want)
			}
		}
	}
	if fired == 0 {
		t.Fatal("no trial actually crossed a directory swap")
	}
}

// TestResyncIdenticalDirectoryBitIdentical is the drift experiment's
// control contract at the client level: a version bump whose new
// directory carries the same shard bounds (re-planning "disabled" — the
// re-planner kept the plan) must not change a single client decision,
// result, or cost metric.
func TestResyncIdenticalDirectoryBitIdentical(t *testing.T) {
	ds := dataset.Uniform(400, 7, 43)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bounds := shardBoundsOf(30, 120, x.NF-150)
	mk := func() *Layout {
		lay, err := NewLayout(x, MultiConfig{Channels: 4, Scheduler: SchedShard, SwitchSlots: 2,
			ShardBounds: bounds})
		if err != nil {
			t.Fatal(err)
		}
		return lay
	}
	layA, layA2 := mk(), mk()
	rng := rand.New(rand.NewSource(3))
	side := int(ds.Curve.Side())
	plain := NewMultiClient(layA, 0, nil)
	bumped := NewMultiClient(layA, 0, nil)
	for trial := 0; trial < 25; trial++ {
		probe := rng.Int63n(int64(layA.ProbeCycle()))
		delay := rng.Int63n(int64(layA.ChanLen(0)) * 2)
		plain.Reset(probe, nil)
		bumped.Reset(probe, nil)
		if err := bumped.ScheduleResync(layA2, probe+delay); err != nil {
			t.Fatal(err)
		}
		w := randWindow(rng, side)
		wantIDs, wantSt := plain.Window(w)
		gotIDs, gotSt := bumped.Window(w)
		if !equalInts(gotIDs, wantIDs) || gotSt != wantSt {
			t.Fatalf("trial %d: bumped (%v,%+v) != plain (%v,%+v)",
				trial, gotIDs, gotSt, wantIDs, wantSt)
		}
		// The swap really happened on the bumped client (when reached).
		if bumped.Layout() != layA2 && gotSt.LatencyPackets > delay {
			t.Fatalf("trial %d: query ran past the seam without resyncing", trial)
		}
	}
}

// TestResyncPreservesKnowledge white-boxes the knowledge rebuild: every
// fact learned before the bump — known frames, located objects,
// retrieved objects — survives it, the span partition mirrors the new
// bounds, and the new directory's splits are seeded as catalog facts.
func TestResyncPreservesKnowledge(t *testing.T) {
	x, old, new_ := resyncFixture(t, 450, 47)
	c := NewMultiClient(old, 0, nil)
	kb := c.kb

	rng := rand.New(rand.NewSource(11))
	knownFrames := map[int]bool{}
	for i := 0; i < 60; i++ {
		f := rng.Intn(x.NF)
		kb.addFrameFact(f, x.minHC[f])
		knownFrames[f] = true
	}
	locObjs := map[int]uint64{}
	retObjs := map[int]bool{}
	for i := 0; i < 40; i++ {
		id := rng.Intn(x.DS.N())
		kb.locate(id, x.DS.Objects[id].HC)
		locObjs[id] = x.DS.Objects[id].HC
		if i%2 == 0 {
			kb.markRetrieved(id)
			retObjs[id] = true
		}
	}

	if err := c.Resync(new_); err != nil {
		t.Fatal(err)
	}

	bounds := new_.ShardBounds()
	if kb.nspan != len(bounds)-1 {
		t.Fatalf("nspan %d after resync, want %d", kb.nspan, len(bounds)-1)
	}
	for s := 0; s < kb.nspan; s++ {
		if kb.spanStart[s] != bounds[s] || kb.splits[s] != x.minHC[bounds[s]] {
			t.Fatalf("span %d: start %d splits %d, want %d %d",
				s, kb.spanStart[s], kb.splits[s], bounds[s], x.minHC[bounds[s]])
		}
		// New-directory catalog: each span's first frame is known.
		if !kb.frameKnown(bounds[s]) {
			t.Fatalf("span %d start frame %d not seeded from the new directory", s, bounds[s])
		}
	}
	for f := range knownFrames {
		if !kb.frameKnown(f) {
			t.Fatalf("frame %d forgotten by resync", f)
		}
		if kb.frameHC[f] != x.minHC[f] {
			t.Fatalf("frame %d HC corrupted", f)
		}
		j := kb.frameSpan(f)
		if !kb.known[j].Contains(f - kb.spanStart[j]) {
			t.Fatalf("frame %d missing from span %d's known set", f, j)
		}
	}
	// Known sets hold exactly the known frames (no stale offsets).
	total := 0
	for j := 0; j < kb.nspan; j++ {
		total += kb.known[j].Len()
		base := kb.spanStart[j]
		for it := kb.known[j].Begin(); it.Valid(); it.Next() {
			if !kb.frameKnown(base + it.Value()) {
				t.Fatalf("span %d lists unknown frame %d", j, base+it.Value())
			}
		}
	}
	for id, hc := range locObjs {
		if !kb.objLocated(id) || kb.objHC[id] != hc {
			t.Fatalf("object %d location lost", id)
		}
	}
	for id := range retObjs {
		if !kb.retrieved(id) {
			t.Fatalf("object %d retrieval lost", id)
		}
	}
	_ = total
}

// TestResyncStaleTuneIn: a client that tunes in holding the previous
// directory version (built against the old layout) converges by
// re-seeding from the new directory before navigating — the catalog
// seed path — and answers every query exactly on the new broadcast.
func TestResyncStaleTuneIn(t *testing.T) {
	x, old, new_ := resyncFixture(t, 500, 53)
	ds := x.DS
	rng := rand.New(rand.NewSource(13))
	side := int(ds.Curve.Side())
	for trial := 0; trial < 20; trial++ {
		stale := NewMultiClient(old, 0, nil)
		probe := rng.Int63n(int64(new_.ProbeCycle()))
		stale.Reset(probe, nil)
		if err := stale.Resync(new_); err != nil {
			t.Fatal(err)
		}
		w := randWindow(rng, side)
		got, _ := stale.Window(w)
		if want := ds.WindowBrute(w); !equalInts(got, want) {
			t.Fatalf("trial %d: stale tune-in window got %v want %v", trial, got, want)
		}
	}
}

// TestResyncValidation covers the protocol's error paths, and that
// Reset discards a pending bump.
func TestResyncValidation(t *testing.T) {
	x, old, new_ := resyncFixture(t, 300, 59)
	c := NewMultiClient(old, 0, nil)

	otherDS := dataset.Uniform(300, 7, 60)
	otherX, err := Build(otherDS, Config{})
	if err != nil {
		t.Fatal(err)
	}
	otherLay, err := NewLayout(otherX, MultiConfig{Channels: 4, Scheduler: SchedShard, SwitchSlots: 2,
		ShardBounds: []int{0, 10, 20, otherX.NF}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Resync(otherLay); err == nil {
		t.Error("resync onto a different index accepted")
	}

	split, err := NewLayout(x, MultiConfig{Channels: 4, Scheduler: SchedSplit, SwitchSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Resync(split); err == nil {
		t.Error("resync onto a split layout accepted")
	}
	splitClient := NewMultiClient(split, 0, nil)
	if err := splitClient.Resync(new_); err == nil {
		t.Error("resync of a split client accepted")
	}

	wide, err := NewLayout(x, MultiConfig{Channels: 5, Scheduler: SchedShard, SwitchSlots: 2,
		ShardBounds: []int{0, 10, 20, 30, x.NF}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Resync(wide); err == nil {
		t.Error("resync across channel counts accepted")
	}
	if err := c.ScheduleResync(wide, 0); err == nil {
		t.Error("ScheduleResync did not validate eagerly")
	}

	// Self-resync is a no-op; Reset discards a pending bump.
	if err := c.Resync(old); err != nil {
		t.Errorf("self-resync: %v", err)
	}
	if err := c.ScheduleResync(new_, 0); err != nil {
		t.Fatal(err)
	}
	c.Reset(0, nil)
	w := randWindow(rand.New(rand.NewSource(1)), int(x.DS.Curve.Side()))
	c.Window(w)
	if c.Layout() != old {
		t.Error("Reset did not discard the pending resync")
	}
}

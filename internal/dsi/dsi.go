// Package dsi implements the Distributed Spatial Index (DSI) of Lee &
// Zheng (ICDCS 2005), the paper's primary contribution.
//
// DSI linearizes spatial objects along a Hilbert curve and broadcasts
// them as a cycle of frames. Every frame carries a small index table
// whose i-th entry describes the frame r^i positions ahead (r is the
// index base), giving each table exponentially spaced knowledge of the
// entire cycle. Clients answer queries by alternately reading tables and
// dozing to the next relevant frame; because every frame carries a
// table, a query can start anywhere and resume after packet loss.
//
// The package provides:
//
//   - Build: construct the broadcast program for a dataset, either in
//     ascending HC order (Segments=1) or with the paper's broadcast
//     reorganization (Segments=m interleaves m equal HC spans).
//   - Client: the mobile-client query processor with energy-efficient
//     forwarding (EEF), window queries, and kNN queries in the paper's
//     conservative and aggressive variants.
package dsi

import (
	"fmt"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
)

// Sizing selects how frames are sized relative to packets.
type Sizing int

const (
	// SizingAuto is the default: object factor one (one object per
	// frame, as in all of the paper's examples) and a one-packet index
	// table (as in the paper's evaluation). The index base r is raised
	// until the entries that fit in one packet cover the whole cycle —
	// the knob the paper describes: "the index base r can be chosen to
	// control the overhead of index table". At 64-byte packets this
	// yields two entries with r = 100 for 10,000 objects; at 512 bytes
	// it converges to r = 2.
	SizingAuto Sizing = iota
	// SizingUnitFactor uses object factor one with a fixed index base
	// (Config.IndexBase) and full cycle coverage; the index table spans
	// multiple packets when the capacity is small.
	SizingUnitFactor
	// SizingPaperTable follows the paper's evaluation-section frame
	// derivation literally: the index table is exactly one packet with
	// the configured base, the number of entries that fit determines
	// the frame count, and frames hold multiple objects. Clients scan
	// inside a frame selectively by reading per-object header packets.
	SizingPaperTable
)

func (s Sizing) String() string {
	switch s {
	case SizingAuto:
		return "auto"
	case SizingUnitFactor:
		return "unit-factor"
	case SizingPaperTable:
		return "paper-table"
	default:
		return fmt.Sprintf("sizing(%d)", int(s))
	}
}

// Config describes a DSI broadcast.
type Config struct {
	// Capacity is the packet size in bytes (paper default 64).
	Capacity int
	// IndexBase is the exponential base r of the index tables (paper
	// default 2).
	IndexBase int
	// Segments is the broadcast reorganization factor m: the HC-ordered
	// frame sequence is cut into m equal spans that are interleaved on
	// air. m = 1 is the original (pure HC order) broadcast; the paper's
	// reorganized broadcast uses m = 2.
	Segments int
	// Sizing selects the frame sizing policy.
	Sizing Sizing
	// ObjectBytes is the data-object payload size (paper default 1024).
	ObjectBytes int
	// ReserveMCPtr sizes index tables for the multi-channel pointer
	// width (broadcast.MCPtrBytes, one channel-id byte wider per
	// entry). An index whose tables fill their packet budget to within
	// E bytes cannot otherwise carry multi-channel pointers — the wire
	// layer rejects such layouts at transmission time — so builds that
	// target a multi-channel layout set this to reserve the headroom.
	// Off by default: the classic sizing (and thus the single-channel
	// broadcast) is untouched.
	ReserveMCPtr bool
}

// DefaultConfig returns the paper's default configuration: 64-byte
// packets, index base 2, original (non-reorganized) broadcast.
func DefaultConfig() Config {
	return Config{
		Capacity:    64,
		IndexBase:   2,
		Segments:    1,
		Sizing:      SizingUnitFactor,
		ObjectBytes: broadcast.ObjectBytes,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Capacity == 0 {
		c.Capacity = d.Capacity
	}
	if c.IndexBase == 0 {
		c.IndexBase = d.IndexBase
	}
	if c.Segments == 0 {
		c.Segments = d.Segments
	}
	if c.ObjectBytes == 0 {
		c.ObjectBytes = d.ObjectBytes
	}
	return c
}

func (c Config) validate(n int) error {
	if n <= 0 {
		return fmt.Errorf("dsi: dataset is empty")
	}
	if c.Capacity < 8 {
		return fmt.Errorf("dsi: packet capacity %d too small", c.Capacity)
	}
	if c.IndexBase < 2 {
		return fmt.Errorf("dsi: index base %d must be >= 2", c.IndexBase)
	}
	if c.Segments < 1 {
		return fmt.Errorf("dsi: segment count %d must be >= 1", c.Segments)
	}
	if c.ObjectBytes <= 0 {
		return fmt.Errorf("dsi: object size %d must be positive", c.ObjectBytes)
	}
	return nil
}

// entryBytes is the size of one index-table entry: an HC value plus a
// pointer (paper section 4).
const entryBytes = broadcast.HCBytes + broadcast.PtrBytes

// entryWidth returns the on-air size of one index-table entry under
// the build's pointer reservation.
func (c Config) entryWidth() int {
	if c.ReserveMCPtr {
		return broadcast.HCBytes + broadcast.MCPtrBytes
	}
	return entryBytes
}

// Geometry is the frame geometry of a DSI broadcast: everything the
// sizing policy derives from (n, Config), with no reference to the
// dataset's contents. It is a pure function of those inputs
// (PlanGeometry), so the out-of-core build can size and address a
// broadcast it never materializes — slot arithmetic, frame-to-object
// mapping, and table shape all live here.
type Geometry struct {
	// N is the object count the geometry was planned for; Capacity and
	// Segments echo the planned Config.
	N, Capacity, Segments int

	// NF is the number of frames in a cycle; NO the object factor
	// (objects per frame, the last frame may hold fewer); E the number
	// of entries per index table; Base the effective index base r
	// (equal to Config.IndexBase except under SizingAuto, which raises
	// it until the one-packet table covers the cycle); EntryWidth the
	// on-air bytes of one table entry under the build's pointer
	// reservation.
	NF, NO, E, Base, EntryWidth int

	// TablePackets, ObjPackets and FramePackets give the frame layout:
	// a frame occupies FramePackets = TablePackets + NO*ObjPackets
	// consecutive slots (frames are padded to uniform size).
	TablePackets, ObjPackets, FramePackets int

	// segStart[j] is the first frame id of broadcast segment j;
	// segStart[Segments] = NF is a sentinel.
	segStart []int
}

// Index is a built DSI broadcast: the program plus the static metadata
// ("catalog") that clients are assumed to know a priori (dataset size,
// curve order, frame geometry, segment split HC values).
type Index struct {
	DS  *dataset.Dataset
	Cfg Config

	Geometry

	// Prog is the cyclic broadcast program.
	Prog *broadcast.Program

	// minHC[f] is the smallest HC value in frame f; frames are numbered
	// in HC order (frame f covers objects [f*NO, min((f+1)*NO, N))).
	minHC []uint64

	// cellX[f], cellY[f] are the grid coordinates of the cell with HC
	// value minHC[f], decoded once at Build so distance computations
	// against frames (the aggressive kNN hop rule) need no per-hop
	// Hilbert decoding.
	cellX, cellY []uint32

	// single is the canonical one-channel layout over Prog; clients
	// constructed with NewClient run on it.
	single *Layout

	// Splits[j] = minHC[segStart[j]], the first HC value of broadcast
	// segment j.
	Splits []uint64

	// tables[pos] is the index table broadcast with the frame at cycle
	// position pos, precomputed at Build time (entry slices share one
	// backing array) so per-query simulation reads tables instead of
	// regenerating them. Treated as immutable.
	tables []Table
}

// PlanGeometry sizes the broadcast for n objects under cfg, returning
// the geometry plus the config with defaults applied. It is the pure
// sizing half of Build: no dataset contents are consulted, so the
// out-of-core image writer plans a 10^7-object broadcast without
// materializing one object.
func PlanGeometry(n int, cfg Config) (Geometry, Config, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(n); err != nil {
		return Geometry{}, cfg, err
	}

	x := &Geometry{N: n, Capacity: cfg.Capacity, Segments: cfg.Segments,
		Base: cfg.IndexBase, EntryWidth: cfg.entryWidth()}
	switch cfg.Sizing {
	case SizingAuto:
		// Pick the object factor so the one-packet index table stays a
		// small, capacity-independent fraction of the frame (at least
		// minDataPackets data packets per table packet). At 64-byte
		// packets a 1024-byte object spans 16 packets and one object
		// per frame suffices; at 512 bytes an object is only 2 packets,
		// so frames carry several objects — clients skip inside a frame
		// by reading per-object header packets.
		const minDataPackets = 12
		objPackets := broadcast.PacketsFor(cfg.ObjectBytes, cfg.Capacity)
		x.NO = (minDataPackets + objPackets - 1) / objPackets
		if x.NO < 1 {
			x.NO = 1
		}
		if x.NO > n {
			x.NO = n
		}
		x.NF = (n + x.NO - 1) / x.NO
		// As many entries as fit in one packet beside the frame's own
		// HC value — but no more than base-2 coverage needs, and at
		// least two so forwarding stays exponential.
		x.E = (cfg.Capacity - broadcast.HCBytes) / cfg.entryWidth()
		if max := entriesToCover(x.NF, 2); x.E > max {
			x.E = max
		}
		if x.E < 2 {
			x.E = 2
		}
		x.Base = baseToCover(x.NF, x.E, cfg.IndexBase)
		// On a reorganized broadcast, make the base a multiple of the
		// segment count: far entries (distance r^i, i >= 1) then stay
		// within the current segment while the distance-1 entry crosses
		// segments. An odd base with m = 2 would aim every entry at the
		// other segment and starve same-segment knowledge.
		if m := cfg.Segments; m > 1 && x.Base%m != 0 {
			x.Base += m - x.Base%m
		}
		x.TablePackets = broadcast.PacketsFor(x.TableBytes(), cfg.Capacity)
	case SizingUnitFactor:
		x.NO = 1
		x.NF = n
		x.E = entriesToCover(x.NF, cfg.IndexBase)
		// Table: the frame's own minimum HC value plus E entries.
		x.TablePackets = broadcast.PacketsFor(x.TableBytes(), cfg.Capacity)
	case SizingPaperTable:
		fit := (cfg.Capacity - broadcast.HCBytes) / cfg.entryWidth()
		if fit < 1 {
			return Geometry{}, cfg, fmt.Errorf("dsi: capacity %d cannot hold a one-packet index table", cfg.Capacity)
		}
		nf := 1
		for i := 0; i < fit && nf < n; i++ {
			nf *= cfg.IndexBase
		}
		if nf > n {
			nf = n
		}
		x.NO = (n + nf - 1) / nf
		x.NF = (n + x.NO - 1) / x.NO
		x.E = entriesToCover(x.NF, cfg.IndexBase)
		x.TablePackets = 1
	default:
		return Geometry{}, cfg, fmt.Errorf("dsi: unknown sizing %v", cfg.Sizing)
	}
	if x.NF < cfg.Segments {
		return Geometry{}, cfg, fmt.Errorf("dsi: %d frames cannot be cut into %d segments", x.NF, cfg.Segments)
	}

	x.ObjPackets = broadcast.PacketsFor(cfg.ObjectBytes, cfg.Capacity)
	x.FramePackets = x.TablePackets + x.NO*x.ObjPackets

	x.segStart = make([]int, cfg.Segments+1)
	start := 0
	for j := 0; j < cfg.Segments; j++ {
		x.segStart[j] = start
		start += x.segLen(j)
	}
	x.segStart[cfg.Segments] = x.NF
	return *x, cfg, nil
}

// Build constructs the DSI broadcast program for the dataset.
func Build(ds *dataset.Dataset, cfg Config) (*Index, error) {
	geo, cfg, err := PlanGeometry(ds.N(), cfg)
	if err != nil {
		return nil, err
	}
	x := &Index{DS: ds, Cfg: cfg, Geometry: geo}

	x.minHC = make([]uint64, x.NF)
	x.cellX = make([]uint32, x.NF)
	x.cellY = make([]uint32, x.NF)
	for f := 0; f < x.NF; f++ {
		x.minHC[f] = ds.Objects[f*x.NO].HC
		x.cellX[f], x.cellY[f] = ds.Curve.Decode(x.minHC[f])
	}

	x.Splits = make([]uint64, cfg.Segments)
	for j := 0; j < cfg.Segments; j++ {
		x.Splits[j] = x.minHC[x.segStart[j]]
	}

	slots := make([]broadcast.Slot, 0, x.NF*x.FramePackets)
	for pos := 0; pos < x.NF; pos++ {
		f := x.PosToFrame(pos)
		for p := 0; p < x.FramePackets; p++ {
			k := broadcast.KindData
			if p < x.TablePackets {
				k = broadcast.KindIndex
			}
			slots = append(slots, broadcast.Slot{Kind: k, Owner: int32(f), Part: int32(p)})
		}
	}
	x.Prog = &broadcast.Program{Capacity: cfg.Capacity, Slots: slots}

	x.tables = make([]Table, x.NF)
	entries := make([]TableEntry, x.NF*x.E)
	for pos := 0; pos < x.NF; pos++ {
		t := &x.tables[pos]
		t.Pos = pos
		t.OwnHC = x.minHC[x.PosToFrame(pos)]
		t.Entries = entries[pos*x.E : (pos+1)*x.E : (pos+1)*x.E]
		dist := 1
		for i := 0; i < x.E; i++ {
			tp := (pos + dist) % x.NF
			t.Entries[i] = TableEntry{TargetPos: tp, MinHC: x.minHC[x.PosToFrame(tp)]}
			dist *= x.Base
		}
	}
	x.single = singleLayout(x)
	return x, nil
}

// SingleLayout returns the canonical one-channel layout over Prog.
func (x *Index) SingleLayout() *Layout { return x.single }

// FrameCell returns the grid coordinates of the cell holding frame f's
// minimum HC value, precomputed at Build.
func (x *Index) FrameCell(f int) (cx, cy uint32) { return x.cellX[f], x.cellY[f] }

// entriesToCover returns the smallest E with base^E >= nf, at least 1:
// an index table with E entries (pointing 1, r, ..., r^(E-1) frames
// ahead) covers a cycle of nf frames.
func entriesToCover(nf, base int) int {
	e := 1
	span := base
	for span < nf {
		span *= base
		e++
	}
	return e
}

// baseToCover returns the smallest base r >= min such that r^e >= nf:
// the index base at which e table entries cover a cycle of nf frames.
func baseToCover(nf, e, min int) int {
	if min < 2 {
		min = 2
	}
	for r := min; ; r++ {
		span := 1
		for i := 0; i < e; i++ {
			span *= r
			if span >= nf {
				return r
			}
		}
	}
}

// TableBytes returns the payload size of one index table: the frame's
// own minimum HC value plus E (HC value, pointer) entries, at the
// pointer width the build reserved (see Config.ReserveMCPtr).
func (g *Geometry) TableBytes() int {
	return broadcast.HCBytes + g.E*g.EntryWidth
}

// segLen returns the number of frames in broadcast segment j: the
// frames at cycle positions congruent to j modulo Segments.
func (g *Geometry) segLen(j int) int {
	return (g.NF - j + g.Segments - 1) / g.Segments
}

// SegLen returns the number of frames in broadcast segment j.
func (g *Geometry) SegLen(j int) int { return g.segStart[j+1] - g.segStart[j] }

// SegStart returns the first frame id of broadcast segment j.
func (g *Geometry) SegStart(j int) int { return g.segStart[j] }

// PosToFrame returns the frame id broadcast at cycle position pos.
// Position p carries the (p div m)-th frame of segment (p mod m), so
// segment frames appear interleaved and each segment's frames appear in
// ascending HC order.
func (g *Geometry) PosToFrame(pos int) int {
	m := g.Segments
	return g.segStart[pos%m] + pos/m
}

// FrameToPos returns the cycle position at which frame f is broadcast.
func (g *Geometry) FrameToPos(f int) int {
	j := g.FrameSegment(f)
	return j + g.Segments*(f-g.segStart[j])
}

// FrameSegment returns the broadcast segment containing frame f.
func (g *Geometry) FrameSegment(f int) int {
	for j := g.Segments - 1; j > 0; j-- {
		if f >= g.segStart[j] {
			return j
		}
	}
	return 0
}

// HCSegment returns the broadcast segment whose HC span contains v:
// segment j spans [Splits[j], Splits[j+1]). Values below Splits[0] (no
// object there) map to segment 0.
func (x *Index) HCSegment(v uint64) int {
	for j := x.Cfg.Segments - 1; j > 0; j-- {
		if v >= x.Splits[j] {
			return j
		}
	}
	return 0
}

// MinHC returns the smallest HC value in frame f. This is server-side
// information; clients learn it from index tables.
func (x *Index) MinHC(f int) uint64 { return x.minHC[f] }

// FrameObjects returns the dataset index range [first, first+num) of the
// objects in frame f.
func (g *Geometry) FrameObjects(f int) (first, num int) {
	first = f * g.NO
	num = g.NO
	if first+num > g.N {
		num = g.N - first
	}
	return first, num
}

// FrameStartSlot returns the cycle slot of the first packet of the frame
// at position pos.
func (g *Geometry) FrameStartSlot(pos int) int { return pos * g.FramePackets }

// ObjectSlot returns the cycle slot of the first packet of the o-th
// object (0-based within the frame) of the frame at position pos.
func (g *Geometry) ObjectSlot(pos, o int) int {
	return pos*g.FramePackets + g.TablePackets + o*g.ObjPackets
}

// CycleSlots returns the number of slots in one broadcast cycle.
func (g *Geometry) CycleSlots() int { return g.NF * g.FramePackets }

// TableEntry is one index-table entry as received by a client: the frame
// TargetPos positions ahead holds objects whose smallest HC value is
// MinHC.
type TableEntry struct {
	TargetPos int // absolute cycle position of the described frame
	MinHC     uint64
}

// Table is the index table of one frame as received by a client.
type Table struct {
	Pos     int    // cycle position of the frame carrying the table
	OwnHC   uint64 // smallest HC value of the carrying frame
	Entries []TableEntry
}

// TableAt returns the index table broadcast with the frame at the given
// cycle position. This simulates reception of the table's packets. The
// returned table's entry slice is shared, precomputed state: callers
// must not modify it.
func (x *Index) TableAt(pos int) Table { return x.tables[pos] }

// IndexOverheadBytes returns the total index bytes added per cycle.
func (x *Index) IndexOverheadBytes() int64 {
	return int64(x.NF) * int64(x.TablePackets) * int64(x.Cfg.Capacity)
}

// CycleBytes returns the broadcast cycle length in bytes.
func (x *Index) CycleBytes() int64 { return x.Prog.CycleBytes() }

func (x *Index) String() string {
	return fmt.Sprintf("DSI{n=%d nF=%d nO=%d E=%d m=%d C=%d cycle=%dB}",
		x.DS.N(), x.NF, x.NO, x.E, x.Cfg.Segments, x.Cfg.Capacity, x.CycleBytes())
}

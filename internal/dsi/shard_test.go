package dsi

import (
	"math/rand"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

// shardBoundsOf builds bounds from shard sizes (which must sum to nf).
func shardBoundsOf(sizes ...int) []int {
	b := []int{0}
	for _, s := range sizes {
		b = append(b, b[len(b)-1]+s)
	}
	return b
}

// TestShardMatchesSplitOneShard is the PR's regression contract: a
// sharded layout with a single shard is exactly the split layout with
// one data channel — same placements, same per-shard catalog, same
// client decisions, bit for bit, loss or no loss.
func TestShardMatchesSplitOneShard(t *testing.T) {
	for ci, cfg := range []Config{{}, {Capacity: 256}} {
		ds := dataset.Uniform(320, 7, int64(130+ci))
		x, err := Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		split, err := NewLayout(x, MultiConfig{Channels: 2, Scheduler: SchedSplit, SwitchSlots: 2})
		if err != nil {
			t.Fatal(err)
		}
		shard, err := NewLayout(x, MultiConfig{Channels: 2, Scheduler: SchedShard, SwitchSlots: 2,
			ShardBounds: []int{0, x.NF}})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(17 + ci)))
		side := int(ds.Curve.Side())
		for trial := 0; trial < 15; trial++ {
			probe := rng.Int63n(int64(split.ProbeCycle()))
			var theta float64
			if trial%3 == 2 {
				theta = 0.4
			}
			lossSeed := rng.Int63()
			mkLoss := func() *broadcast.LossModel {
				if theta == 0 {
					return nil
				}
				return broadcast.NewLossModel(theta, lossSeed)
			}
			a := NewMultiClient(split, probe, mkLoss())
			b := NewMultiClient(shard, probe, mkLoss())
			if trial%2 == 0 {
				w := randWindow(rng, side)
				wantIDs, wantSt := a.Window(w)
				gotIDs, gotSt := b.Window(w)
				if !equalInts(gotIDs, wantIDs) || gotSt != wantSt {
					t.Fatalf("cfg %d trial %d: shard window (%v,%+v) != split (%v,%+v)",
						ci, trial, gotIDs, gotSt, wantIDs, wantSt)
				}
			} else {
				q := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
				k := 1 + rng.Intn(8)
				wantIDs, wantSt := a.KNN(q, k, Conservative)
				gotIDs, gotSt := b.KNN(q, k, Conservative)
				if !equalInts(gotIDs, wantIDs) || gotSt != wantSt {
					t.Fatalf("cfg %d trial %d: shard kNN (%v,%+v) != split (%v,%+v)",
						ci, trial, gotIDs, gotSt, wantIDs, wantSt)
				}
			}
		}
	}
}

// TestShardLayoutCorrectness cross-checks sharded queries against brute
// force across uneven shard maps — including single-frame shards and
// cycle lengths that are not multiples of each other.
func TestShardLayoutCorrectness(t *testing.T) {
	ds := dataset.Uniform(351, 7, 901)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	nf := x.NF
	for _, bounds := range [][]int{
		shardBoundsOf(nf/2, nf-nf/2),       // two halves
		shardBoundsOf(7, 13, nf-20),        // coprime hot cycles vs cold tail
		shardBoundsOf(1, nf-2, 1),          // single-frame shards at both ends
		shardBoundsOf(23, 54, 100, nf-177), // four uneven shards
		shardBoundsOf(nf-1, 1),             // all load on one shard, one stray frame
	} {
		mc := MultiConfig{Channels: len(bounds), Scheduler: SchedShard, SwitchSlots: 2, ShardBounds: bounds}
		lay, err := NewLayout(x, mc)
		if err != nil {
			t.Fatalf("bounds %v: %v", bounds, err)
		}
		// Unequal cycles: verify the per-channel lengths really differ
		// and are not multiples where the shard map says so.
		for s := 0; s+1 < len(bounds)-1; s++ {
			if got := lay.ChanLen(1 + s); got != (bounds[s+1]-bounds[s])*lay.DataPackets {
				t.Fatalf("bounds %v: shard %d cycle %d", bounds, s, got)
			}
		}
		rng := rand.New(rand.NewSource(int64(len(bounds))))
		side := int(ds.Curve.Side())
		c := NewMultiClient(lay, 0, nil)
		if c.kb.nspan != len(bounds)-1 {
			t.Fatalf("bounds %v: client has %d knowledge spans, want %d", bounds, c.kb.nspan, len(bounds)-1)
		}
		for trial := 0; trial < 10; trial++ {
			probe := rng.Int63n(int64(lay.ProbeCycle()))
			var loss *broadcast.LossModel
			if trial%4 == 3 {
				loss = broadcast.NewLossModel(0.3, rng.Int63())
			}
			c.Reset(probe, loss)
			if trial%2 == 0 {
				w := randWindow(rng, side)
				got, st := c.Window(w)
				if want := ds.WindowBrute(w); !equalInts(got, want) {
					t.Fatalf("bounds %v: window %v got %v want %v", bounds, w, got, want)
				}
				if st.LatencyPackets <= 0 {
					t.Fatalf("no latency accounted: %+v", st)
				}
			} else {
				q := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
				k := 1 + rng.Intn(8)
				got, _ := c.KNN(q, k, Conservative)
				want, _ := ds.KNNBrute(q, k)
				if !sameDist2(ds, q, got, want) {
					t.Fatalf("bounds %v: kNN at %v k=%d got %v want %v", bounds, q, k, got, want)
				}
			}
		}
	}
}

// TestShardLayoutValidation covers the shard-map error paths: empty
// shards, uncovered frames, mismatched channel counts, and reorganized
// broadcasts.
func TestShardLayoutValidation(t *testing.T) {
	ds := dataset.Uniform(60, 6, 3)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	nf := x.NF
	cases := []struct {
		name string
		mc   MultiConfig
	}{
		{"empty shard", MultiConfig{Channels: 3, Scheduler: SchedShard, ShardBounds: []int{0, 20, 20, nf}}},
		{"empty shard via dup sentinel", MultiConfig{Channels: 3, Scheduler: SchedShard, ShardBounds: []int{0, nf, nf}}},
		{"missing head", MultiConfig{Channels: 2, Scheduler: SchedShard, ShardBounds: []int{5, nf}}},
		{"missing tail", MultiConfig{Channels: 2, Scheduler: SchedShard, ShardBounds: []int{0, nf - 3}}},
		{"descending", MultiConfig{Channels: 3, Scheduler: SchedShard, ShardBounds: []int{0, 30, 20, nf}}},
		{"channel mismatch", MultiConfig{Channels: 4, Scheduler: SchedShard, ShardBounds: []int{0, 10, nf}}},
		{"no bounds", MultiConfig{Channels: 3, Scheduler: SchedShard}},
	}
	for _, tc := range cases {
		if _, err := NewLayout(x, tc.mc); err == nil {
			t.Errorf("%s accepted: %+v", tc.name, tc.mc)
		}
	}
	// Reorganized broadcasts cannot shard (shards are HC spans).
	xr, err := Build(ds, Config{Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLayout(xr, MultiConfig{Channels: 2, Scheduler: SchedShard, ShardBounds: []int{0, xr.NF}}); err == nil {
		t.Error("reorganized broadcast accepted for sharding")
	}
}

// TestShardPlacementInvariants checks every table and data placement of
// a sharded layout, and that total bandwidth equals the single-channel
// program (equal aggregate bandwidth with any other layout of the same
// index).
func TestShardPlacementInvariants(t *testing.T) {
	ds := dataset.Uniform(123, 7, 9)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bounds := shardBoundsOf(11, 49, x.NF-60)
	lay, err := NewLayout(x, MultiConfig{Channels: 4, Scheduler: SchedShard, SwitchSlots: 1, ShardBounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ch := range lay.Air.Channels {
		total += ch.Len()
	}
	if total != x.Prog.Len() {
		t.Errorf("%d total slots, want %d", total, x.Prog.Len())
	}
	for pos := 0; pos < x.NF; pos++ {
		f := x.PosToFrame(pos)
		tc, ts := lay.TablePlace(pos)
		if tc != 0 {
			t.Fatalf("pos %d: table on channel %d", pos, tc)
		}
		s := lay.Air.Channels[tc].At(ts)
		if s.Kind != broadcast.KindIndex || s.Owner != int32(f) || s.Part != 0 {
			t.Fatalf("pos %d: table placed at %+v", pos, s)
		}
		dc, dsl := lay.DataPlace(pos)
		wantCh := 1
		for pos >= bounds[wantCh] {
			wantCh++
		}
		if dc != wantCh {
			t.Fatalf("pos %d: data on channel %d, want %d", pos, dc, wantCh)
		}
		d := lay.Air.Channels[dc].At(dsl)
		if d.Kind != broadcast.KindData || d.Owner != int32(f) || d.Part != int32(x.TablePackets) {
			t.Fatalf("pos %d: data placed at %+v", pos, d)
		}
		// Slot inversions agree with the placements.
		if p2, part, ok := lay.SlotTable(tc, ts); !ok || p2 != pos || part != 0 {
			t.Fatalf("pos %d: SlotTable inverted to (%d,%d,%v)", pos, p2, part, ok)
		}
		if p2, off, ok := lay.SlotData(dc, dsl); !ok || p2 != pos || off != 0 {
			t.Fatalf("pos %d: SlotData inverted to (%d,%d,%v)", pos, p2, off, ok)
		}
	}
}

// TestShardClientResetMatchesFresh extends the client-reuse contract to
// sharded layouts (whose knowledge base carries per-shard spans).
func TestShardClientResetMatchesFresh(t *testing.T) {
	ds := dataset.Uniform(280, 7, 61)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	bounds := shardBoundsOf(17, 100, x.NF-117)
	lay, err := NewLayout(x, MultiConfig{Channels: 4, Scheduler: SchedShard, SwitchSlots: 2, ShardBounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	side := int(ds.Curve.Side())
	reused := NewMultiClient(lay, 0, nil)
	for trial := 0; trial < 10; trial++ {
		probe := rng.Int63n(int64(lay.ProbeCycle()))
		lossSeed := rng.Int63()
		mkLoss := func() *broadcast.LossModel {
			if trial%3 != 1 {
				return nil
			}
			return broadcast.NewLossModel(0.35, lossSeed)
		}
		reused.Reset(rng.Int63n(int64(lay.ProbeCycle())), nil)
		reused.KNN(spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}, 2, Conservative)

		w := randWindow(rng, side)
		fresh := NewMultiClient(lay, probe, mkLoss())
		wantIDs, wantSt := fresh.Window(w)
		reused.Reset(probe, mkLoss())
		gotIDs, gotSt := reused.Window(w)
		if !equalInts(gotIDs, wantIDs) || gotSt != wantSt {
			t.Fatalf("trial %d: reused (%v,%+v) != fresh (%v,%+v)",
				trial, gotIDs, gotSt, wantIDs, wantSt)
		}
	}
}

// TestShardHotQueriesFaster is the unit-level version of the sharded
// experiment's acceptance: with all query load on a small HC span, a
// layout that gives that span its own small shard answers those queries
// with lower latency than uniform striping at the same channel count.
func TestShardHotQueriesFaster(t *testing.T) {
	ds := dataset.Uniform(600, 7, 77)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hot := 40 // frames at the head of the HC order
	shard, err := NewLayout(x, MultiConfig{Channels: 4, Scheduler: SchedShard, SwitchSlots: 2,
		ShardBounds: shardBoundsOf(hot/2, hot/2, x.NF-hot)})
	if err != nil {
		t.Fatal(err)
	}
	split, err := NewLayout(x, MultiConfig{Channels: 4, Scheduler: SchedSplit, SwitchSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var shardLat, splitLat int64
	cs := NewMultiClient(shard, 0, nil)
	cu := NewMultiClient(split, 0, nil)
	for trial := 0; trial < 60; trial++ {
		// Query a random hot object's cell neighborhood.
		o := ds.Objects[rng.Intn(hot)]
		w := hilbertWindow(o.P.X, o.P.Y)
		u := rng.Float64()
		cs.Reset(int64(u*float64(shard.ProbeCycle())), nil)
		if got, _ := cs.Window(w); !equalInts(got, ds.WindowBrute(w)) {
			t.Fatalf("shard window wrong at trial %d", trial)
		}
		cu.Reset(int64(u*float64(split.ProbeCycle())), nil)
		cu.Window(w)
		shardLat += cs.Stats().LatencyPackets
		splitLat += cu.Stats().LatencyPackets
	}
	if shardLat >= splitLat {
		t.Errorf("hot-span shard latency %d packets >= uniform split %d", shardLat, splitLat)
	}
}

package dsi

import (
	"math/rand"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

// TestWindowCorrectUnderLoss verifies that query results are unaffected
// by link errors (paper section 5): DSI recovers by using the next
// frame's table or the object headers themselves.
func TestWindowCorrectUnderLoss(t *testing.T) {
	ds := dataset.Uniform(200, 6, 51)
	for _, cfg := range []Config{{}, {Segments: 2}, {Sizing: SizingPaperTable, Capacity: 64}} {
		x, err := Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(8))
		for _, theta := range []float64{0.2, 0.5, 0.7} {
			for i := 0; i < 6; i++ {
				w := spatial.ClampedWindow(uint32(rng.Intn(64)), uint32(rng.Intn(64)), 15, 64)
				loss := broadcast.NewLossModel(theta, rng.Int63())
				c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), loss)
				got, _ := c.Window(w)
				if !equalInts(got, ds.WindowBrute(w)) {
					t.Fatalf("cfg %+v theta=%v: window mismatch", cfg, theta)
				}
			}
		}
	}
}

func TestKNNCorrectUnderLoss(t *testing.T) {
	ds := dataset.Uniform(200, 6, 53)
	for _, cfg := range []Config{{}, {Segments: 2}} {
		x, _ := Build(ds, cfg)
		rng := rand.New(rand.NewSource(9))
		for _, theta := range []float64{0.2, 0.7} {
			for _, strat := range []Strategy{Conservative, Aggressive} {
				for i := 0; i < 5; i++ {
					q := spatial.Point{X: uint32(rng.Intn(64)), Y: uint32(rng.Intn(64))}
					loss := broadcast.NewLossModel(theta, rng.Int63())
					c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), loss)
					got, _ := c.KNN(q, 5, strat)
					want, _ := ds.KNNBrute(q, 5)
					if !equalFloats(knnDistances(ds, q, got), knnDistances(ds, q, want)) {
						t.Fatalf("cfg %+v theta=%v %v: kNN mismatch", cfg, theta, strat)
					}
				}
			}
		}
	}
}

func TestCorrectUnderStrictDataLoss(t *testing.T) {
	// Strict mode: data packets are lost too; clients must retry
	// objects on later cycles. Use a small object so retries converge
	// at moderate theta.
	ds := dataset.Uniform(100, 6, 57)
	x, err := Build(ds, Config{ObjectBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 8; i++ {
		w := spatial.ClampedWindow(uint32(rng.Intn(64)), uint32(rng.Intn(64)), 12, 64)
		loss := broadcast.NewLossModel(0.3, rng.Int63())
		loss.AffectsData = true
		c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), loss)
		got, _ := c.Window(w)
		if !equalInts(got, ds.WindowBrute(w)) {
			t.Fatalf("strict loss: window mismatch")
		}
	}
}

func TestLossDegradesGracefully(t *testing.T) {
	// Average latency under loss must grow with theta but stay within a
	// small factor of the error-free latency — the paper's resilience
	// claim (Table 1 reports <31% deterioration for DSI at theta=0.7).
	ds := dataset.Uniform(500, 7, 59)
	x, _ := Build(ds, Config{Segments: 2})
	avgLat := func(theta float64) float64 {
		rng := rand.New(rand.NewSource(11))
		var sum float64
		const trials = 40
		for i := 0; i < trials; i++ {
			q := spatial.Point{X: uint32(rng.Intn(128)), Y: uint32(rng.Intn(128))}
			var loss *broadcast.LossModel
			if theta > 0 {
				loss = broadcast.NewLossModel(theta, rng.Int63())
			} else {
				rng.Int63() // keep the random stream aligned across thetas
			}
			c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), loss)
			_, st := c.KNN(q, 10, Conservative)
			sum += float64(st.LatencyPackets)
		}
		return sum / trials
	}
	base := avgLat(0)
	at07 := avgLat(0.7)
	if at07 < base {
		t.Errorf("loss cannot reduce latency: base %v, theta=0.7 %v", base, at07)
	}
	if at07 > 2.5*base {
		t.Errorf("DSI deterioration too large: base %v -> %v at theta=0.7", base, at07)
	}
}

package dsi

import (
	"strings"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

func TestTraceRecordsQuerySteps(t *testing.T) {
	ds := dataset.Uniform(100, 6, 95)
	x, _ := Build(ds, Config{})
	c := NewClient(x, 7, nil)
	var events []Event
	c.SetTracer(func(e Event) { events = append(events, e) })
	ids, st := c.Window(spatial.Rect{MinX: 10, MinY: 10, MaxX: 30, MaxY: 30})
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	if events[0].Op != OpProbe {
		t.Errorf("first event %v, want probe", events[0].Op)
	}
	var tables, objects int
	var readPackets int64
	prevSlot := int64(-1)
	for _, e := range events {
		if e.Slot < prevSlot {
			t.Fatalf("events not in slot order: %d after %d", e.Slot, prevSlot)
		}
		prevSlot = e.Slot
		if !e.OK {
			t.Fatalf("lossless run traced a lost packet: %v", e)
		}
		switch e.Op {
		case OpProbe:
			readPackets++
		case OpTableRead:
			tables++
			readPackets += int64(e.Arg)
		case OpHeaderRead:
			readPackets++
		case OpObjectRead:
			objects++
			readPackets += int64(x.ObjPackets)
		}
	}
	if tables == 0 {
		t.Error("no table reads traced")
	}
	if objects != len(ids) {
		t.Errorf("traced %d object reads for %d results", objects, len(ids))
	}
	// Tuning must be fully explained by traced events.
	if readPackets != st.TuningPackets {
		t.Errorf("traced %d packets, stats say %d", readPackets, st.TuningPackets)
	}
}

func TestTraceLossMarksEvents(t *testing.T) {
	ds := dataset.Uniform(100, 6, 97)
	x, _ := Build(ds, Config{})
	loss := broadcast.NewLossModel(0.5, 11)
	c := NewClient(x, 3, loss)
	lost := 0
	c.SetTracer(func(e Event) {
		if !e.OK {
			lost++
		}
	})
	c.KNN(spatial.Point{X: 30, Y: 30}, 5, Conservative)
	if lost == 0 {
		t.Error("theta=0.5 run traced no lost packets")
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	ds := dataset.Uniform(50, 6, 99)
	x, _ := Build(ds, Config{})
	c := NewClient(x, 0, nil)
	// Must not panic with no tracer installed.
	c.Window(spatial.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10})
	c2 := NewClient(x, 0, nil)
	c2.SetTracer(func(Event) {})
	c2.SetTracer(nil) // disable again
	c2.Window(spatial.Rect{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10})
}

func TestEventAndOpStrings(t *testing.T) {
	if OpProbe.String() != "probe" || OpTableRead.String() != "table" ||
		OpHeaderRead.String() != "header" || OpObjectRead.String() != "object" {
		t.Error("op strings wrong")
	}
	if !strings.Contains(Op(42).String(), "42") {
		t.Error("unknown op string")
	}
	e := Event{Slot: 5, Op: OpObjectRead, Pos: 2, Frame: 3, Arg: 7, OK: true}
	s := e.String()
	for _, want := range []string{"object", "pos=2", "frame=3", "obj=7", "ok"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
	e.OK = false
	if !strings.Contains(e.String(), "lost") {
		t.Error("lost event not marked")
	}
	probe := Event{Op: OpProbe, OK: true}
	if !strings.Contains(probe.String(), "probe") {
		t.Error("probe string")
	}
	hdr := Event{Op: OpHeaderRead, OK: true}
	if !strings.Contains(hdr.String(), "header") {
		t.Error("header string")
	}
	tab := Event{Op: OpTableRead, OK: true}
	if !strings.Contains(tab.String(), "table") {
		t.Error("table string")
	}
	unknown := Event{Op: Op(42)}
	if !strings.Contains(unknown.String(), "op(42)") {
		t.Error("unknown event string")
	}
}

package dsi

import (
	"math"
	"sort"

	"dsi/internal/broadcast"
	"dsi/internal/hilbert"
	"dsi/internal/ordset"
)

// knowledge is the client-side knowledge base: everything a client has
// learned about the broadcast from received index tables and object
// headers, plus the static catalog (segment split HC values).
//
// The key inference DSI clients rely on (paper sections 3.3-3.4, e.g.
// "the index table shows the next object is O32, ruling out the
// existence of O28 and O31"): within one broadcast segment, frames
// appear in ascending HC order, so two known frames at adjacent
// same-segment positions bound the HC values of everything between them
// — if the positions are adjacent, nothing exists between their HC
// values.
//
// The knowledge base is organized in spans: maximal runs of frames the
// client can apply that inference to, each an ascending-HC frame range
// whose first frame is catalog knowledge. On classic layouts the spans
// are the broadcast segments (the i-th frame of segment j airs at cycle
// position j + m*i). On sharded layouts (SchedShard) the spans are the
// shards: each data channel's frame range is one span, so every span of
// the knowledge base corresponds to exactly one broadcast channel — the
// per-channel knowledge bases the shard-aware client navigates with —
// and the shard split HC values (carried by the layout's shard
// directory) seed the catalog.
//
// All per-frame and per-object state is epoch-stamped: a fact is
// current only when its stamp equals the knowledge base's epoch, so
// reset clears the whole base in O(known facts) — it bumps the epoch
// and recycles the known-frame sets — instead of reallocating six
// dataset-sized slices per query.
type knowledge struct {
	x *Index

	// Span partition. spanStart (frame ids, with a sentinel NF) and
	// splits (each span's first minimum HC value) describe the spans;
	// the i-th frame of span j airs at cycle position
	// posOrigin[j] + stride*i.
	nspan     int
	spanStart []int
	splits    []uint64
	posOrigin []int
	stride    int

	// epoch stamps current facts; entries with any other stamp are
	// unknown. Starts at 1 so zeroed stamp arrays mean "nothing known".
	epoch uint32

	frameEp []uint32 // frameEp[f] == epoch -> minimum HC value known
	frameHC []uint64 // valid when the frame is known

	// known[j] is the set of within-span indices of known frames in
	// span j. Because frames in a span are HC sorted, the set is
	// simultaneously ordered by position and by HC.
	known []ordset.Set

	// Per-object state. Objects are identified by their dataset ID
	// (HC rank); object i belongs to frame i/NO.
	objEp []uint32 // objEp[id] == epoch -> location (HC value) known
	objHC []uint64 // valid when located
	retEp []uint32 // retEp[id] == epoch -> full payload received

	// newObjs queues freshly located objects for the kNN candidate set.
	// Its backing array is reused across drains and queries.
	newObjs []int

	// found is the per-range scratch of the merged walk (which ranges
	// produced an unresolved visit in the current span).
	found []bool

	// resync is the scratch of rebuildShardSpans (known frame ids in
	// flight between the old and new span partition).
	resync []int
}

// newKnowledge builds the classic knowledge base, whose spans are the
// broadcast segments.
func newKnowledge(x *Index) *knowledge {
	m := x.Cfg.Segments
	origin := make([]int, m)
	for j := range origin {
		origin[j] = j
	}
	return newSpanKnowledge(x, x.segStart, x.Splits, origin, m)
}

// newShardKnowledge builds the per-channel knowledge base of a sharded
// layout: one span per shard (= per data channel), with the shard split
// HC values as catalog knowledge. Sharded layouts require m = 1, so the
// i-th frame of the shard starting at frame s airs at position s + i.
func newShardKnowledge(x *Index, bounds []int) *knowledge {
	n := len(bounds) - 1
	splits := make([]uint64, n)
	for s := 0; s < n; s++ {
		splits[s] = x.minHC[bounds[s]]
	}
	return newSpanKnowledge(x, bounds, splits, bounds[:n], 1)
}

func newSpanKnowledge(x *Index, spanStart []int, splits []uint64, posOrigin []int, stride int) *knowledge {
	kb := &knowledge{
		x:         x,
		nspan:     len(splits),
		spanStart: spanStart,
		splits:    splits,
		posOrigin: posOrigin,
		stride:    stride,
		epoch:     1,
		frameEp:   make([]uint32, x.NF),
		frameHC:   make([]uint64, x.NF),
		known:     make([]ordset.Set, len(splits)),
		objEp:     make([]uint32, x.DS.N()),
		objHC:     make([]uint64, x.DS.N()),
		retEp:     make([]uint32, x.DS.N()),
	}
	kb.seedCatalog()
	return kb
}

// reset forgets everything and re-seeds the catalog, in time
// proportional to what was known rather than the dataset size.
func (kb *knowledge) reset() {
	kb.epoch++
	if kb.epoch == 0 {
		// Stamp wraparound: stale stamps from 2^32 resets ago could
		// alias the new epoch, so clear them once per wrap.
		clear(kb.frameEp)
		clear(kb.objEp)
		clear(kb.retEp)
		kb.epoch = 1
	}
	for j := range kb.known {
		kb.known[j].Reset()
	}
	kb.newObjs = kb.newObjs[:0]
	kb.seedCatalog()
}

// seedCatalog records the public split HC values: the first frame of
// every span is known a priori.
func (kb *knowledge) seedCatalog() {
	for j := 0; j < kb.nspan; j++ {
		kb.addFrameFact(kb.spanStart[j], kb.splits[j])
	}
}

// frameSpan returns the knowledge span containing frame f.
func (kb *knowledge) frameSpan(f int) int {
	for j := kb.nspan - 1; j > 0; j-- {
		if f >= kb.spanStart[j] {
			return j
		}
	}
	return 0
}

// hcSpan returns the knowledge span whose HC range contains v: span j
// spans [splits[j], splits[j+1]). Values below splits[0] (no object
// there) map to span 0.
func (kb *knowledge) hcSpan(v uint64) int {
	for j := kb.nspan - 1; j > 0; j-- {
		if v >= kb.splits[j] {
			return j
		}
	}
	return 0
}

// spanLen returns the number of frames in span j.
func (kb *knowledge) spanLen(j int) int { return kb.spanStart[j+1] - kb.spanStart[j] }

// spanPos returns the cycle position of the i-th frame of span j.
func (kb *knowledge) spanPos(j, i int) int { return kb.posOrigin[j] + kb.stride*i }

// spanHC returns the HC range [lo, hi) covered by span j.
func (kb *knowledge) spanHC(j int) (lo, hi uint64) {
	lo = kb.splits[j]
	if j+1 < kb.nspan {
		hi = kb.splits[j+1]
	} else {
		hi = kb.x.DS.Curve.Size()
	}
	return lo, hi
}

func (kb *knowledge) frameKnown(f int) bool  { return kb.frameEp[f] == kb.epoch }
func (kb *knowledge) objLocated(id int) bool { return kb.objEp[id] == kb.epoch }
func (kb *knowledge) retrieved(id int) bool  { return kb.retEp[id] == kb.epoch }

// addFrameFact records that frame f's minimum HC value is hc, locating
// the frame's first object.
func (kb *knowledge) addFrameFact(f int, hc uint64) {
	if kb.frameKnown(f) {
		return
	}
	kb.frameEp[f] = kb.epoch
	kb.frameHC[f] = hc
	j := kb.frameSpan(f)
	kb.known[j].Insert(f - kb.spanStart[j])

	first, _ := kb.x.FrameObjects(f)
	kb.locate(first, hc)
}

// locate records an object's HC value (and thus its exact position on
// the grid: objects live on cells).
func (kb *knowledge) locate(id int, hc uint64) {
	if kb.objLocated(id) {
		return
	}
	kb.objEp[id] = kb.epoch
	kb.objHC[id] = hc
	kb.newObjs = append(kb.newObjs, id)
}

// addHeader records that the header of the o-th object of frame f has
// been received, revealing its HC value.
func (kb *knowledge) addHeader(f, o int, hc uint64) {
	first, num := kb.x.FrameObjects(f)
	if o < 0 || o >= num {
		panic("dsi: header index outside frame")
	}
	kb.locate(first+o, hc)
}

// markRetrieved records a completed object download.
func (kb *knowledge) markRetrieved(id int) { kb.retEp[id] = kb.epoch }

// drainNew returns the objects located since the previous call. The
// returned slice is only valid until the next locate: its backing array
// is reused.
func (kb *knowledge) drainNew() []int {
	if len(kb.newObjs) == 0 {
		return nil
	}
	out := kb.newObjs
	kb.newObjs = kb.newObjs[:0]
	return out
}

// frameResolved reports whether, as far as [lo, hi) is concerned, frame
// f requires no further attention: every object of f that could have an
// HC value in [lo, hi) is either retrieved or certainly outside.
// The frame's minimum HC must be known (so its first object is
// located). upper is a known strict upper bound on the HC values in f
// (the next known same-span frame's minimum, or the span end). Objects
// whose headers have not been received are bounded by the nearest
// located objects around them.
func (kb *knowledge) frameResolved(f int, lo, hi, upper uint64) bool {
	first, num := kb.x.FrameObjects(f)
	prev := kb.frameHC[f] // first object is located whenever the frame is known
	gapOpen := false
	for t := 0; t < num; t++ {
		id := first + t
		if !kb.objLocated(id) {
			gapOpen = true
			continue
		}
		hc := kb.objHC[id]
		if gapOpen {
			// Unlocated objects between prev and hc: HC in (prev, hc).
			if prev+1 < hi && hc > lo {
				return false
			}
			gapOpen = false
		}
		if hc >= lo && hc < hi && !kb.retrieved(id) {
			return false
		}
		prev = hc
	}
	if gapOpen && prev+1 < hi && upper > lo {
		return false
	}
	return true
}

// walkTargets walks the client's knowledge about span j once, in
// ascending HC order, over all sorted (disjoint) target ranges, and
// calls visit for every (range, frame-or-gap) pair that is not resolved
// with respect to that range: known frames with pending objects, and
// unknown frames that could hold objects in the range. It produces
// exactly the pairs the per-range walks used to produce, but with one
// monotone pass over the span's known frames instead of one pass per
// range: both the known-frame cursor and the range cursor only move
// forward, so a query with many target ranges (a kNN disk
// decomposition) pays for each known frame once per span.
//
// For unknown gap frames, visit receives the within-span index range
// [gapLo, gapHi] (inclusive) of the gap; for known frames
// gapLo == gapHi == the frame's index. marks, when non-nil, is the
// caller's per-(range, span) resolution cache, flattened as
// ri*nspan + span: marked ranges are skipped entirely. found, when
// non-nil, records found[ri] = true for every range that produced a
// visit. Returning false from visit aborts the walk; the return value
// reports whether the walk ran to completion (only then may a caller
// conclude that ranges without a found mark are resolved in this span).
func (kb *knowledge) walkTargets(j int, targets []hilbert.Range, marks, found []bool, visit func(ri, gapLo, gapHi int) bool) bool {
	segLo, segHi := kb.spanHC(j)
	ns := kb.nspan
	// Skip to the first range that could intersect the span.
	ri := 0
	for ri < len(targets) && (targets[ri].Hi <= segLo || (marks != nil && marks[ri*ns+j])) {
		ri++
	}
	if ri == len(targets) || targets[ri].Lo >= segHi {
		return true
	}
	lo0 := targets[ri].Lo
	if lo0 < segLo {
		lo0 = segLo
	}
	base := kb.spanStart[j]
	segN := kb.spanLen(j)
	// Start at the last known frame whose minimum HC is <= the first
	// active range's lo. Index 0 is always known (catalog).
	it, ok := kb.known[j].FloorKey(kb.frameHC, base, lo0)
	if !ok {
		return true // unreachable: the catalog seeds index 0
	}
	// Single forward pass with one-element lookahead: i is the current
	// known index, it has already advanced to its successor.
	i := it.Value()
	it.Next()
	for {
		f := base + i
		hc := kb.frameHC[f]
		// Upper bound on this frame's content and the following gap.
		nextI := segN
		upper := segHi
		hasNext := it.Valid()
		if hasNext {
			nextI = it.Value()
			upper = kb.frameHC[base+nextI]
		}
		// Drop ranges nothing from this frame on can matter to (their
		// end is at or below the frame's minimum; ranges are sorted).
		for ri < len(targets) {
			if marks != nil && marks[ri*ns+j] {
				ri++
				continue
			}
			hi := targets[ri].Hi
			if hi > segHi {
				hi = segHi
			}
			if hi > hc {
				break
			}
			ri++
		}
		if ri == len(targets) || targets[ri].Lo >= segHi {
			return true
		}
		// Evaluate this frame and its trailing gap against every range
		// that can reach them: a range with lo >= upper lies beyond the
		// next known frame (this frame is not its floor), and later
		// ranges lie further still.
		for rj := ri; rj < len(targets); rj++ {
			if marks != nil && marks[rj*ns+j] {
				continue
			}
			lo, hi := targets[rj].Lo, targets[rj].Hi
			if lo < segLo {
				lo = segLo
			}
			if hi > segHi {
				hi = segHi
			}
			if lo >= upper {
				break
			}
			if lo >= hi {
				continue
			}
			if hc < hi && !kb.frameResolved(f, lo, hi, upper) {
				if found != nil {
					found[rj] = true
				}
				if !visit(rj, i, i) {
					return false
				}
			}
			// Unknown frames between this one and the next known one
			// hold objects with HC in (hc, upper).
			if nextI > i+1 && upper > lo && hc+1 < hi {
				if found != nil {
					found[rj] = true
				}
				if !visit(rj, i+1, nextI-1) {
					return false
				}
			}
		}
		if !hasNext {
			return true
		}
		// Jump over known frames wholly below the next active range:
		// re-seek the cursor to that range's floor instead of stepping
		// through frames that cannot pair with anything.
		loR := targets[ri].Lo
		if loR < segLo {
			loR = segLo
		}
		if upper <= loR {
			if it2, ok2 := kb.known[j].FloorKey(kb.frameHC, base, loR); ok2 && it2.Value() > nextI {
				i = it2.Value()
				it = it2
				it.Next()
				continue
			}
		}
		i = nextI
		it.Next()
	}
}

// foundScratch returns the cleared per-range found buffer for a walk.
func (kb *knowledge) foundScratch(n int) []bool {
	if cap(kb.found) < n {
		kb.found = make([]bool, n)
	} else {
		kb.found = kb.found[:n]
		clear(kb.found)
	}
	return kb.found
}

// resolved reports whether every object with an HC value in any of the
// target ranges has been retrieved, with certainty (no unknown frame
// could still hold one).
func (kb *knowledge) resolved(targets []hilbert.Range) bool {
	for j := 0; j < kb.nspan; j++ {
		done := true
		kb.walkTargets(j, targets, nil, nil, func(_, _, _ int) bool {
			done = false
			return false
		})
		if !done {
			return false
		}
	}
	return true
}

// nextUseful returns the cycle position of the soonest-arriving frame
// (strictly after nowPos, wrapping) that is not resolved with respect to
// the targets. ok is false when everything is resolved (so !ok is
// equivalent to resolved(targets): a query terminates exactly when no
// useful frame remains).
func (kb *knowledge) nextUseful(nowPos int, targets []hilbert.Range) (pos int, ok bool) {
	return kb.nextUsefulMarked(nowPos, targets, nil)
}

// nextUsefulMarked is nextUseful with a resolution cache: marks, when
// non-nil, has one slot per (target range, span) pair, flattened as
// rangeIdx*nspan + span. Resolution is monotone — knowledge and
// retrievals only grow, so a pair that is once resolved with respect to
// a fixed range can never become unresolved — which makes a set mark
// permanently valid for unchanged targets. Marked pairs are skipped;
// pairs observed fully resolved are marked.
func (kb *knowledge) nextUsefulMarked(nowPos int, targets []hilbert.Range, marks []bool) (pos int, ok bool) {
	nf := kb.x.NF
	bestDelta := nf + 1
	for j := 0; j < kb.nspan; j++ {
		var found []bool
		if marks != nil {
			found = kb.foundScratch(len(targets))
		}
		completed := kb.walkTargets(j, targets, marks, found, func(ri, gapLo, gapHi int) bool {
			// Earliest arrival among the gap's positions, strictly
			// after nowPos.
			if d := ArrivalDelta(nowPos, kb.spanPos(j, gapLo), kb.spanPos(j, gapHi), kb.stride, nf); d < bestDelta {
				bestDelta = d
			}
			return bestDelta > 1 // delta 1 cannot be beaten
		})
		if completed && marks != nil {
			for ri := range targets {
				if !found[ri] {
					marks[ri*kb.nspan+j] = true
				}
			}
		}
		if bestDelta == 1 {
			return (nowPos + 1) % nf, true
		}
	}
	if bestDelta > nf {
		return 0, false
	}
	return (nowPos + bestDelta) % nf, true
}

// nextVisitTimed is the index-split counterpart of nextUsefulMarked
// (split and sharded layouts): it returns the unresolved frame whose
// visit can begin soonest in actual broadcast time — switch costs,
// per-channel phases and cycle lengths included — rather than soonest
// in cycle-position order. Position order equals time order on one
// channel, but an index-split layout runs channels of very different
// periods in parallel: index tables recur much faster than data frames,
// so the timed chooser batches table reads on the index channel
// whenever data is not imminent (consecutive gap tables are consecutive
// slots there) and harvests data frames in the order their slots
// actually come by; on a sharded layout each knowledge span is one data
// channel, so the walk prices every channel's own phase and cycle
// length. Marks semantics are as in nextUsefulMarked.
func (c *Client) nextVisitTimed(targets []hilbert.Range, marks []bool) (pos int, ok bool) {
	kb := c.kb
	now := c.rx.Now()
	cur := c.rx.Channel()
	sw := int64(c.lay.Air.SwitchSlots)
	bestT := int64(math.MaxInt64)
	best := -1
	for j := 0; j < kb.nspan; j++ {
		var found []bool
		if marks != nil {
			found = kb.foundScratch(len(targets))
		}
		base := kb.spanStart[j]
		// A frame or gap repeated for another overlapping range has the
		// same arrival; the walk alternates frame and gap visits per
		// range, so the two kinds memoize separately.
		lastFrame, lastLo, lastHi := -1, -1, -1
		completed := kb.walkTargets(j, targets, marks, found, func(ri, gapLo, gapHi int) bool {
			var t int64
			var p int
			if gapLo == gapHi && kb.frameKnown(base+gapLo) {
				if gapLo == lastFrame {
					return true
				}
				lastFrame = gapLo
				p = kb.spanPos(j, gapLo)
				t = c.arrivalData(p, now, cur, sw)
			} else {
				if gapLo == lastLo && gapHi == lastHi {
					return true
				}
				lastLo, lastHi = gapLo, gapHi
				t, p = c.arrivalTables(kb.spanPos(j, gapLo), kb.spanPos(j, gapHi), kb.stride, now, cur, sw)
			}
			if t < bestT {
				bestT, best = t, p
			}
			return true
		})
		if completed && marks != nil {
			for ri := range targets {
				if !found[ri] {
					marks[ri*kb.nspan+j] = true
				}
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// arrivalData returns the slots from now until a visit of position p's
// data can begin: the channel switch (if any) plus the doze to the
// frame's data slot, exactly what gotoData would pay. The wait is
// computed relative to the channel's phase anchor (0 on simulator
// airs, the cutover seam on a swapped wire schedule).
func (c *Client) arrivalData(p int, now int64, cur int, sw int64) int64 {
	ch := int(c.lay.dataCh[p])
	var t int64
	if ch != cur {
		t = sw
	}
	l := int64(c.lay.ChanLen(ch))
	wait := (int64(c.lay.dataSlot[p]) - (now + t - c.rx.PhaseOf(ch))) % l
	if wait < 0 {
		wait += l
	}
	return t + wait
}

// arrivalTables returns the earliest table-read start among the unknown
// frames at cycle positions posLo, posLo+stride, ..., posHi, all of
// whose tables sit in position order on the index channel, plus the
// position achieving it.
func (c *Client) arrivalTables(posLo, posHi, stride int, now int64, cur int, sw int64) (int64, int) {
	var t int64
	if cur != c.lay.StartCh {
		t = sw
	}
	l := int64(c.lay.ChanLen(c.lay.StartCh))
	phase := (now + t - c.rx.PhaseOf(c.lay.StartCh)) % l
	if phase < 0 {
		phase += l
	}
	tp := int64(c.x.TablePackets)
	pLo, pHi := int64(posLo), int64(posHi)
	// First span position whose table starts at or after the phase.
	cand := pLo
	if need := (phase + tp - 1) / tp; need > pLo {
		st := int64(stride)
		r := (pLo - need) % st
		if r < 0 {
			r += st
		}
		cand = need + r
	}
	if cand <= pHi {
		return t + cand*tp - phase, int(cand)
	}
	// Every span table already passed this cycle: wait for the wrap.
	return t + pLo*tp + l - phase, int(pLo)
}

// ArrivalDelta returns the smallest delta in [1, nf] such that
// nowPos+delta is one of the positions posLo, posLo+stride, ..., posHi
// on a cycle of nf positions. It is the positional-arithmetic kernel
// behind the knowledge walk's earliest-arrival choice, exported so the
// event-driven replay engine and property tests can check skip targets
// against brute-force stepping.
func ArrivalDelta(nowPos, posLo, posHi, stride, nf int) int {
	// First candidate strictly after nowPos within this cycle.
	cur := nowPos % nf
	if cur < posHi {
		// Smallest position >= cur+1 congruent to posLo mod stride, at
		// least posLo.
		c := cur + 1
		if c < posLo {
			c = posLo
		}
		r := (posLo - c) % stride
		if r < 0 {
			r += stride
		}
		if cand := c + r; cand <= posHi {
			return cand - cur
		}
	}
	// Wrap to the first position of the gap in the next cycle.
	return posLo + nf - cur
}

// Client is a mobile client executing queries over a DSI broadcast.
// Create one with Open (or the legacy NewClient/NewMultiClient
// wrappers); a client answers one query per (construction or Reset),
// and Reset is cheap — proportional to what the previous query
// learned, not to the dataset — so long-running simulations reuse one
// client per worker instead of allocating dataset-sized state per
// query.
//
// All air access goes through the client's Receiver: the same query
// engine runs over the in-memory simulator (SimReceiver) and over real
// byte streams (station.WireReceiver).
type Client struct {
	x   *Index
	lay *Layout
	rx  Receiver
	kb  *knowledge

	// lastTable is the most recently received intact index table
	// (pointing into the index's precomputed tables), used by the
	// aggressive kNN hop rule. Nil until a table is received.
	lastTable *Table

	// posHopOnly disables the arrival-time pricing of aggressive kNN
	// hops on multi-data-channel layouts, falling back to the purely
	// positional closest-frame rule (tests compare the two).
	posHopOnly bool

	// trace, when non-nil, receives an Event for every client step.
	trace func(Event)

	// pendingLay, when non-nil, is a scheduled shard-directory version
	// bump: at clock pendingAt the broadcast swaps to pendingLay and the
	// client re-syncs mid-query (see ScheduleResync).
	pendingLay *Layout
	pendingAt  int64

	// scr holds per-query scratch reused across queries (see
	// queries.go); its buffers grow to a steady state after which warm
	// queries allocate nothing dataset-sized.
	scr scratch
}

// newReceiverClient assembles a client over an arbitrary receiver: the
// knowledge base is built for the receiver's layout (per-shard spans on
// sharded layouts, broadcast segments otherwise).
func newReceiverClient(rx Receiver) *Client {
	lay := rx.Layout()
	var kb *knowledge
	if lay.Sched == SchedShard && lay.Channels() > 1 {
		kb = newShardKnowledge(lay.X, lay.shardBounds)
	} else {
		kb = newKnowledge(lay.X)
	}
	return &Client{x: lay.X, lay: lay, rx: rx, kb: kb}
}

// NewClient returns a client that tunes into the single-channel
// broadcast at the given absolute slot. A nil loss model means an
// error-free channel.
//
// NewClient is a thin wrapper kept for compatibility: new code should
// use Open, which reaches every layout and receiver through options.
func NewClient(x *Index, probeSlot int64, loss *broadcast.LossModel) *Client {
	return newReceiverClient(NewSimReceiver(x.single, probeSlot, loss))
}

// NewMultiClient returns a client executing queries over a
// multi-channel layout: it tunes into the layout's start channel at the
// given absolute slot, follows (channel, slot) navigation pointers, and
// pays the air's switch cost whenever retrieval moves across channels.
// On a sharded layout the client's knowledge base is per-channel (one
// span per shard). On a one-channel layout it behaves bit-identically
// to NewClient.
//
// NewMultiClient is a thin wrapper kept for compatibility: new code
// should use Open with WithLayout or WithMultiConfig.
func NewMultiClient(lay *Layout, probeSlot int64, loss *broadcast.LossModel) *Client {
	return newReceiverClient(&SimReceiver{
		lay: lay,
		tu:  broadcast.NewAirTuner(lay.Air, lay.StartCh, probeSlot, loss),
	})
}

// Layout returns the channel layout the client executes over.
func (c *Client) Layout() *Layout { return c.lay }

// Receiver returns the client's radio.
func (c *Client) Receiver() Receiver { return c.rx }

// gotoTable moves the receiver to the start of the index table of the
// frame at position p, switching channels when the layout placed the
// table elsewhere.
func (c *Client) gotoTable(p int) {
	c.rx.Tune(int(c.lay.tableCh[p]))
	c.rx.DozeUntilPos(int(c.lay.tableSlot[p]))
}

// gotoData moves the receiver to the (o*ObjPackets + skip)-th object
// packet of the frame at position p, switching channels as needed.
func (c *Client) gotoData(p, o, skip int) {
	ch := int(c.lay.dataCh[p])
	c.rx.Tune(ch)
	c.rx.DozeUntilPos((int(c.lay.dataSlot[p]) + o*c.x.ObjPackets + skip) % c.lay.ChanLen(ch))
}

// gotoFrameEntry moves the receiver to where a tableless visit of the
// frame at position p begins: the frame start on its channel. Layouts
// with a dedicated index channel go straight to the frame's data
// channel — data is all it carries for this frame.
func (c *Client) gotoFrameEntry(p int) {
	if c.lay.splitData() {
		c.gotoData(p, 0, 0)
		return
	}
	c.gotoTable(p)
}

// Reset forgets everything the client learned and re-tunes it at the
// given absolute slot, recycling all internal state: the reused client
// behaves exactly like a freshly constructed one (identical results and
// identical cost metrics) at a fraction of the setup cost.
func (c *Client) Reset(probeSlot int64, loss *broadcast.LossModel) {
	c.rx.Reset(probeSlot, loss)
	c.kb.reset()
	c.lastTable = nil
	c.pendingLay = nil
}

// SetChannelLoss installs a per-channel loss model on the client's
// receiver, overriding the query-wide model on that channel. Only
// multi-channel clients support per-channel loss, and the channel must
// exist in the layout: violations return a descriptive error instead
// of indexing (or panicking) deep inside the tuner. Reset clears the
// overrides, so heterogeneous-channel simulations reinstall them per
// query.
func (c *Client) SetChannelLoss(ch int, loss *broadcast.LossModel) error {
	return c.rx.SetChannelLoss(ch, loss)
}

// Stats returns the metrics accumulated so far.
func (c *Client) Stats() broadcast.Stats { return c.rx.Stats() }

// probe performs the initial probe: receive one intact packet on the
// start channel to synchronize with the broadcast, then doze to the
// next index-table start on that channel. Returns the cycle position of
// that table's frame.
func (c *Client) probe() int {
	for {
		_, ok := c.rx.Next()
		c.emit(Event{Op: OpProbe, OK: ok})
		if ok {
			break
		}
	}
	p := c.lay.probePos(c.rx.Pos())
	c.rx.DozeUntilPos(int(c.lay.tableSlot[p]))
	return p
}

// readTable receives the index table of the frame at position p (the
// receiver must be at the frame's first slot). It returns false when
// any table packet was corrupted — or, on a byte-level receiver, when
// the payload did not decode — in which case no knowledge is gained
// but the tuning cost is still paid.
func (c *Client) readTable(p int) bool {
	t, ok := c.rx.Table(p)
	c.emit(Event{Op: OpTableRead, Pos: p, Frame: c.x.PosToFrame(p), Arg: c.x.TablePackets, OK: ok})
	if !ok {
		return false
	}
	c.lastTable = t
	c.kb.addFrameFact(c.x.PosToFrame(p), t.OwnHC)
	for _, e := range t.Entries {
		c.kb.addFrameFact(c.x.PosToFrame(e.TargetPos), e.MinHC)
	}
	return true
}

// wantTable reports whether visiting the frame at position p should
// read its index table: yes when the frame's own minimum HC is unknown
// or the next same-segment frame (needed to bound this frame's content)
// is unknown. Pure data re-fetches skip the table.
//
// On an index-split layout the table lives on another channel, so a
// visit to a known frame never crosses over for the neighbour's bound:
// the frame resolves from its own object headers instead, and unknown
// frames are handled wholesale by the index sweep.
func (c *Client) wantTable(p int) bool {
	f := c.x.PosToFrame(p)
	if !c.kb.frameKnown(f) {
		return true
	}
	if c.lay.splitData() {
		return false
	}
	j := c.x.FrameSegment(f)
	if f+1 < c.x.segStart[j+1] {
		return !c.kb.frameKnown(f + 1)
	}
	return false
}

// inTargets reports whether hc lies in any of the sorted target ranges.
func inTargets(targets []hilbert.Range, hc uint64) bool {
	i := sort.Search(len(targets), func(i int) bool { return targets[i].Hi > hc })
	return i < len(targets) && targets[i].Contains(hc)
}

// maxHi returns the largest range end among targets (they are sorted).
func maxHi(targets []hilbert.Range) uint64 {
	if len(targets) == 0 {
		return 0
	}
	return targets[len(targets)-1].Hi
}

// visit moves the client to the frame at position p, reads its index
// table when useful, and retrieves the frame's objects selected by the
// targets. targetsFn is consulted after the table is absorbed, so a kNN
// client shrinks its search space before deciding what to download. On
// a multi-channel layout the visit follows the layout's (channel, slot)
// placements: table on the index-bearing channel, objects on the
// frame's data channel.
//
// When the table is corrupted (or skipped) and the frame's minimum HC is
// unknown, the client falls back to reading the first object's header
// packet — DSI's loss resilience: the broadcast content itself reveals
// the frame's HC range, so navigation resumes at the very next frame.
func (c *Client) visit(p int, targetsFn func() []hilbert.Range) {
	f := c.x.PosToFrame(p)
	headerConsumed := -1
	if c.wantTable(p) {
		c.gotoTable(p)
		ok := c.readTable(p)
		if c.lay.splitData() {
			// An index-split table visit ends with the table: the
			// frame's data lives on another channel, and the timed
			// chooser will schedule its retrieval at the slot it
			// actually arrives instead of crossing channels here and
			// stalling until it comes around.
			return
		}
		if !ok && !c.kb.frameKnown(f) {
			// Header fallback: one data packet reveals the first object's
			// HC value (every object's payload starts with its coordinate).
			// Index-split layouts skip it — their index channel rebroadcasts
			// the lost table much sooner than the data channel reaches the
			// frame's first header.
			first, _ := c.x.FrameObjects(f)
			c.gotoData(p, 0, 0)
			hc, okHdr := c.rx.Header(p, 0)
			c.emit(Event{Op: OpHeaderRead, Pos: p, Frame: f, Arg: first, OK: okHdr})
			if okHdr {
				c.kb.addFrameFact(f, hc)
				headerConsumed = 0
			}
		}
	} else {
		c.gotoFrameEntry(p)
	}
	c.fetchData(p, targetsFn(), headerConsumed)
}

// fetchData retrieves from the frame at position p every object whose
// HC value lies in the targets and is not yet retrieved. headerConsumed
// is the index of the object whose header packet was already received
// during the table fallback (-1 for none). Corrupted objects stay
// unretrieved; a later cycle retries them.
func (c *Client) fetchData(p int, targets []hilbert.Range, headerConsumed int) {
	f := c.x.PosToFrame(p)
	if !c.kb.frameKnown(f) {
		return // nothing is known about this frame; nothing to fetch safely
	}
	first, num := c.x.FrameObjects(f)
	hiBound := maxHi(targets)

	prev := c.kb.frameHC[f] // ascending watermark of located HC values
	for t := 0; t < num; t++ {
		id := first + t
		if c.kb.objLocated(id) {
			prev = c.kb.objHC[id]
			if !c.kb.retrieved(id) && inTargets(targets, prev) {
				skip := 0
				if t == headerConsumed {
					skip = 1
				}
				c.readObject(p, t, id, skip)
			}
			continue
		}
		// Unlocated: objects from here on have HC above prev; stop
		// once nothing in range can remain.
		if prev+1 >= hiBound {
			return
		}
		// Read the header packet to learn this object's HC value.
		c.gotoData(p, t, 0)
		hc, ok := c.rx.Header(p, t)
		c.emit(Event{Op: OpHeaderRead, Pos: p, Frame: f, Arg: id, OK: ok})
		if !ok {
			continue // lost header: a later cycle rescans this object
		}
		c.kb.addHeader(f, t, hc)
		prev = hc
		if inTargets(targets, hc) {
			c.readObject(p, t, id, 1)
		}
	}
}

// readObject receives object id, the o-th object of the frame at
// position p, skipping the first skip packets (already received as a
// header). The object counts as retrieved only if every packet arrives
// intact.
func (c *Client) readObject(p, o, id, skip int) {
	c.gotoData(p, o, skip)
	ok := c.rx.Object(p, o, skip)
	c.emit(Event{Op: OpObjectRead, Pos: p, Frame: c.x.PosToFrame(p), Arg: id, OK: ok})
	if ok {
		c.kb.markRetrieved(id)
	}
}

// retrieveAll is the generic query engine: it visits frames until every
// object with an HC value in the current target set has been retrieved
// with certainty. targetsFn is consulted after every table read and may
// shrink the target set as knowledge accumulates (kNN); for window
// queries it is constant. hook, if non-nil, may redirect the next visit
// (the aggressive kNN hop rule); it returns a cycle position and true
// to override the default soonest-unresolved-frame choice.
func (c *Client) retrieveAll(startPos int, targetsFn func() []hilbert.Range, hook func(p int) (int, bool)) {
	p := startPos
	ver := c.scr.targetsVer - 1 // force a mark (re)build on entry
	for {
		// A pending shard-directory version bump is detected between
		// navigation steps (the version rides the index channel the
		// client mines anyway); re-syncing bumps targetsVer, so the
		// resolution cache below rebuilds against the new spans.
		c.maybeResync()
		c.visit(p, targetsFn)
		targets := targetsFn()
		// (Re)build the resolution cache whenever the target set
		// changes (kNN shrinks it as candidates accumulate); marks for
		// an unchanged target set stay valid because resolution is
		// monotone in the growing knowledge base.
		if ver != c.scr.targetsVer {
			ver = c.scr.targetsVer
			need := len(targets) * c.kb.nspan
			if cap(c.scr.marks) < need {
				c.scr.marks = make([]bool, need)
			} else {
				c.scr.marks = c.scr.marks[:need]
				clear(c.scr.marks)
			}
		}
		// nextUseful reporting nothing doubles as the termination test:
		// the query is done exactly when no unresolved frame remains.
		// Index-split layouts choose by actual arrival time across
		// channels; on one channel, position order is time order, and
		// the positional chooser is kept bit-identical to the classic
		// engine.
		var next int
		var ok bool
		if c.lay.splitData() {
			next, ok = c.nextVisitTimed(targets, c.scr.marks)
		} else {
			next, ok = c.kb.nextUsefulMarked(p, targets, c.scr.marks)
		}
		if !ok {
			return
		}
		if hook != nil {
			if override, use := hook(p); use {
				next = override
			}
		}
		p = next
	}
}

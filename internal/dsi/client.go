package dsi

import (
	"math"
	"sort"

	"dsi/internal/broadcast"
	"dsi/internal/hilbert"
	"dsi/internal/ordset"
)

// knowledge is the client-side knowledge base: everything a client has
// learned about the broadcast from received index tables and object
// headers, plus the static catalog (segment split HC values).
//
// The key inference DSI clients rely on (paper sections 3.3-3.4, e.g.
// "the index table shows the next object is O32, ruling out the
// existence of O28 and O31"): within one broadcast segment, frames
// appear in ascending HC order, so two known frames at adjacent
// same-segment positions bound the HC values of everything between them
// — if the positions are adjacent, nothing exists between their HC
// values.
//
// All per-frame and per-object state is epoch-stamped: a fact is
// current only when its stamp equals the knowledge base's epoch, so
// reset clears the whole base in O(known facts) — it bumps the epoch
// and recycles the known-frame sets — instead of reallocating six
// dataset-sized slices per query.
type knowledge struct {
	x *Index

	// epoch stamps current facts; entries with any other stamp are
	// unknown. Starts at 1 so zeroed stamp arrays mean "nothing known".
	epoch uint32

	frameEp []uint32 // frameEp[f] == epoch -> minimum HC value known
	frameHC []uint64 // valid when the frame is known

	// known[j] is the set of within-segment indices of known frames in
	// segment j. Because frames in a segment are HC sorted, the set is
	// simultaneously ordered by position and by HC.
	known []ordset.Set

	// Per-object state. Objects are identified by their dataset ID
	// (HC rank); object i belongs to frame i/NO.
	objEp []uint32 // objEp[id] == epoch -> location (HC value) known
	objHC []uint64 // valid when located
	retEp []uint32 // retEp[id] == epoch -> full payload received

	// newObjs queues freshly located objects for the kNN candidate set.
	// Its backing array is reused across drains and queries.
	newObjs []int
}

func newKnowledge(x *Index) *knowledge {
	kb := &knowledge{
		x:       x,
		epoch:   1,
		frameEp: make([]uint32, x.NF),
		frameHC: make([]uint64, x.NF),
		known:   make([]ordset.Set, x.Cfg.Segments),
		objEp:   make([]uint32, x.DS.N()),
		objHC:   make([]uint64, x.DS.N()),
		retEp:   make([]uint32, x.DS.N()),
	}
	kb.seedCatalog()
	return kb
}

// reset forgets everything and re-seeds the catalog, in time
// proportional to what was known rather than the dataset size.
func (kb *knowledge) reset() {
	kb.epoch++
	if kb.epoch == 0 {
		// Stamp wraparound: stale stamps from 2^32 resets ago could
		// alias the new epoch, so clear them once per wrap.
		clear(kb.frameEp)
		clear(kb.objEp)
		clear(kb.retEp)
		kb.epoch = 1
	}
	for j := range kb.known {
		kb.known[j].Reset()
	}
	kb.newObjs = kb.newObjs[:0]
	kb.seedCatalog()
}

// seedCatalog records the public split HC values: the first frame of
// every segment is known a priori.
func (kb *knowledge) seedCatalog() {
	for j := 0; j < kb.x.Cfg.Segments; j++ {
		kb.addFrameFact(kb.x.segStart[j], kb.x.Splits[j])
	}
}

func (kb *knowledge) frameKnown(f int) bool  { return kb.frameEp[f] == kb.epoch }
func (kb *knowledge) objLocated(id int) bool { return kb.objEp[id] == kb.epoch }
func (kb *knowledge) retrieved(id int) bool  { return kb.retEp[id] == kb.epoch }

// addFrameFact records that frame f's minimum HC value is hc, locating
// the frame's first object.
func (kb *knowledge) addFrameFact(f int, hc uint64) {
	if kb.frameKnown(f) {
		return
	}
	kb.frameEp[f] = kb.epoch
	kb.frameHC[f] = hc
	j := kb.x.FrameSegment(f)
	kb.known[j].Insert(f - kb.x.segStart[j])

	first, _ := kb.x.FrameObjects(f)
	kb.locate(first, hc)
}

// locate records an object's HC value (and thus its exact position on
// the grid: objects live on cells).
func (kb *knowledge) locate(id int, hc uint64) {
	if kb.objLocated(id) {
		return
	}
	kb.objEp[id] = kb.epoch
	kb.objHC[id] = hc
	kb.newObjs = append(kb.newObjs, id)
}

// addHeader records that the header of the o-th object of frame f has
// been received, revealing its HC value.
func (kb *knowledge) addHeader(f, o int, hc uint64) {
	first, num := kb.x.FrameObjects(f)
	if o < 0 || o >= num {
		panic("dsi: header index outside frame")
	}
	kb.locate(first+o, hc)
}

// markRetrieved records a completed object download.
func (kb *knowledge) markRetrieved(id int) { kb.retEp[id] = kb.epoch }

// drainNew returns the objects located since the previous call. The
// returned slice is only valid until the next locate: its backing array
// is reused.
func (kb *knowledge) drainNew() []int {
	if len(kb.newObjs) == 0 {
		return nil
	}
	out := kb.newObjs
	kb.newObjs = kb.newObjs[:0]
	return out
}

// segSpan returns the HC span [lo, hi) covered by segment j.
func (kb *knowledge) segSpan(j int) (lo, hi uint64) {
	lo = kb.x.Splits[j]
	if j+1 < kb.x.Cfg.Segments {
		hi = kb.x.Splits[j+1]
	} else {
		hi = kb.x.DS.Curve.Size()
	}
	return lo, hi
}

// frameResolved reports whether, as far as [lo, hi) is concerned, frame
// f requires no further attention: every object of f that could have an
// HC value in [lo, hi) is either retrieved or certainly outside.
// The frame's minimum HC must be known (so its first object is
// located). upper is a known strict upper bound on the HC values in f
// (the next known same-segment frame's minimum, or the segment span
// end). Objects whose headers have not been received are bounded by the
// nearest located objects around them.
func (kb *knowledge) frameResolved(f int, lo, hi, upper uint64) bool {
	first, num := kb.x.FrameObjects(f)
	prev := kb.frameHC[f] // first object is located whenever the frame is known
	gapOpen := false
	for t := 0; t < num; t++ {
		id := first + t
		if !kb.objLocated(id) {
			gapOpen = true
			continue
		}
		hc := kb.objHC[id]
		if gapOpen {
			// Unlocated objects between prev and hc: HC in (prev, hc).
			if prev+1 < hi && hc > lo {
				return false
			}
			gapOpen = false
		}
		if hc >= lo && hc < hi && !kb.retrieved(id) {
			return false
		}
		prev = hc
	}
	if gapOpen && prev+1 < hi && upper > lo {
		return false
	}
	return true
}

// rangeState walks the client's knowledge about the HC range [lo, hi)
// within segment j and calls visit for every frame that is not resolved
// with respect to the range: known frames with pending objects, and
// unknown frames that could hold objects in the range. For unknown gap
// frames, visit receives the within-segment index span [gapLo, gapHi]
// (inclusive) of the gap; for known frames gapLo == gapHi == the frame's
// index. Returning false from visit stops the walk early.
func (kb *knowledge) rangeState(j int, lo, hi uint64, visit func(gapLo, gapHi int) bool) {
	segLo, segHi := kb.segSpan(j)
	if lo < segLo {
		lo = segLo
	}
	if hi > segHi {
		hi = segHi
	}
	if lo >= hi {
		return
	}
	segN := kb.x.SegLen(j)
	base := kb.x.segStart[j]
	// Start at the last known frame whose minimum HC is <= lo. Index 0
	// is always known (catalog) with hc == segLo <= lo.
	it, ok := kb.known[j].FloorKey(kb.frameHC, base, lo)
	if !ok {
		return // unreachable: the catalog seeds index 0
	}
	// Single forward pass with one-element lookahead: i is the current
	// known index, it has already advanced to its successor.
	i := it.Value()
	it.Next()
	for {
		f := base + i
		hc := kb.frameHC[f]
		if hc >= hi {
			return
		}
		// Upper bound on this frame's content and the following gap.
		nextI := segN
		upper := segHi
		hasNext := it.Valid()
		if hasNext {
			nextI = it.Value()
			upper = kb.frameHC[base+nextI]
		}
		if !kb.frameResolved(f, lo, hi, upper) {
			if !visit(i, i) {
				return
			}
		}
		// Unknown frames between this one and the next known one hold
		// objects with HC in (hc, upper).
		if nextI > i+1 && upper > lo && hc+1 < hi {
			if !visit(i+1, nextI-1) {
				return
			}
		}
		if !hasNext {
			return
		}
		i = nextI
		it.Next()
	}
}

// resolved reports whether every object with an HC value in any of the
// target ranges has been retrieved, with certainty (no unknown frame
// could still hold one).
func (kb *knowledge) resolved(targets []hilbert.Range) bool {
	for _, r := range targets {
		for j := 0; j < kb.x.Cfg.Segments; j++ {
			done := true
			kb.rangeState(j, r.Lo, r.Hi, func(_, _ int) bool {
				done = false
				return false
			})
			if !done {
				return false
			}
		}
	}
	return true
}

// nextUseful returns the cycle position of the soonest-arriving frame
// (strictly after nowPos, wrapping) that is not resolved with respect to
// the targets. ok is false when everything is resolved (so !ok is
// equivalent to resolved(targets): a query terminates exactly when no
// useful frame remains).
func (kb *knowledge) nextUseful(nowPos int, targets []hilbert.Range) (pos int, ok bool) {
	return kb.nextUsefulMarked(nowPos, targets, nil)
}

// nextUsefulMarked is nextUseful with a resolution cache: marks, when
// non-nil, has one slot per (target range, segment) pair, flattened as
// rangeIdx*Segments + segment. Resolution is monotone — knowledge and
// retrievals only grow, so a pair that is once resolved with respect to
// a fixed range can never become unresolved — which makes a set mark
// permanently valid for unchanged targets. Marked pairs are skipped;
// pairs observed fully resolved are marked.
func (kb *knowledge) nextUsefulMarked(nowPos int, targets []hilbert.Range, marks []bool) (pos int, ok bool) {
	m := kb.x.Cfg.Segments
	nf := kb.x.NF
	bestDelta := nf + 1
	for ri, r := range targets {
		for j := 0; j < m; j++ {
			if marks != nil && marks[ri*m+j] {
				continue
			}
			found := false
			kb.rangeState(j, r.Lo, r.Hi, func(gapLo, gapHi int) bool {
				found = true
				// Earliest arrival among positions j + m*i,
				// i in [gapLo, gapHi], strictly after nowPos.
				if d := arrivalDelta(nowPos, j, m, gapLo, gapHi, nf); d < bestDelta {
					bestDelta = d
				}
				return bestDelta > 1 // delta 1 cannot be beaten
			})
			if !found && marks != nil {
				marks[ri*m+j] = true
			}
			if bestDelta == 1 {
				return (nowPos + 1) % nf, true
			}
		}
	}
	if bestDelta > nf {
		return 0, false
	}
	return (nowPos + bestDelta) % nf, true
}

// nextVisitTimed is the split-layout counterpart of nextUsefulMarked:
// it returns the unresolved frame whose visit can begin soonest in
// actual broadcast time — switch costs, per-channel phases and cycle
// lengths included — rather than soonest in cycle-position order.
// Position order equals time order on one channel, but a split layout
// runs channels of very different periods in parallel: index tables
// recur a data-frame-length factor faster than data frames, so the
// timed chooser batches table reads on the index channel whenever data
// is not imminent (consecutive gap tables are consecutive slots there)
// and harvests data frames in the order their slots actually come by.
// Greedily taking the earliest-available visit interleaves navigation
// into data-wait slack the way the single-channel client's inline
// tables do. Marks semantics are as in nextUsefulMarked.
func (c *Client) nextVisitTimed(targets []hilbert.Range, marks []bool) (pos int, ok bool) {
	kb := c.kb
	m := c.x.Cfg.Segments
	now := c.tu.Now()
	cur := c.tu.Channel()
	sw := int64(c.lay.Air.SwitchSlots)
	bestT := int64(math.MaxInt64)
	best := -1
	for ri, r := range targets {
		for j := 0; j < m; j++ {
			if marks != nil && marks[ri*m+j] {
				continue
			}
			found := false
			base := kb.x.segStart[j]
			kb.rangeState(j, r.Lo, r.Hi, func(gapLo, gapHi int) bool {
				found = true
				var t int64
				var p int
				if gapLo == gapHi && kb.frameKnown(base+gapLo) {
					p = j + m*gapLo
					t = c.arrivalData(p, now, cur, sw)
				} else {
					t, p = c.arrivalTables(j, m, gapLo, gapHi, now, cur, sw)
				}
				if t < bestT {
					bestT, best = t, p
				}
				return true
			})
			if !found && marks != nil {
				marks[ri*m+j] = true
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// arrivalData returns the slots from now until a visit of position p's
// data can begin: the channel switch (if any) plus the doze to the
// frame's data slot, exactly what gotoData would pay.
func (c *Client) arrivalData(p int, now int64, cur int, sw int64) int64 {
	ch := int(c.lay.dataCh[p])
	var t int64
	if ch != cur {
		t = sw
	}
	l := int64(c.lay.ChanLen(ch))
	wait := (int64(c.lay.dataSlot[p]) - (now + t)) % l
	if wait < 0 {
		wait += l
	}
	return t + wait
}

// arrivalTables returns the earliest table-read start among the unknown
// frames at within-segment indices [iLo, iHi] of segment j (positions
// j + m*i), all of whose tables sit in position order on the index
// channel, plus the position achieving it.
func (c *Client) arrivalTables(j, m, iLo, iHi int, now int64, cur int, sw int64) (int64, int) {
	var t int64
	if cur != c.lay.StartCh {
		t = sw
	}
	l := int64(c.lay.ChanLen(c.lay.StartCh))
	phase := (now + t) % l
	tp := int64(c.x.TablePackets)
	posLo, posHi := int64(j+m*iLo), int64(j+m*iHi)
	// First span position whose table starts at or after the phase.
	cand := posLo
	if need := (phase + tp - 1) / tp; need > posLo {
		k := (need - int64(j) + int64(m) - 1) / int64(m)
		cand = int64(j) + k*int64(m)
	}
	if cand <= posHi {
		return t + cand*tp - phase, int(cand)
	}
	// Every span table already passed this cycle: wait for the wrap.
	return t + posLo*tp + l - phase, int(posLo)
}

// arrivalDelta returns the smallest delta in [1, nf] such that
// nowPos+delta is a position of the form j + m*i with i in [iLo, iHi].
func arrivalDelta(nowPos, j, m, iLo, iHi, nf int) int {
	posLo := j + m*iLo
	posHi := j + m*iHi
	// First candidate strictly after nowPos within this cycle.
	cur := nowPos % nf
	if cur < posHi {
		// Smallest position >= cur+1 congruent to j mod m, at least posLo.
		c := cur + 1
		if c < posLo {
			c = posLo
		}
		// Round c up to the next value congruent to j modulo m.
		r := (j - c%m + m) % m
		if cand := c + r; cand <= posHi {
			return cand - cur
		}
	}
	// Wrap to the first position of the gap in the next cycle.
	return posLo + nf - cur
}

// Client is a mobile client executing queries over a DSI broadcast.
// Create one with NewClient; a client answers one query per
// (construction or Reset), and Reset is cheap — proportional to what
// the previous query learned, not to the dataset — so long-running
// simulations reuse one client per worker instead of allocating
// dataset-sized state per query.
type Client struct {
	x   *Index
	lay *Layout
	tu  *broadcast.Tuner
	kb  *knowledge

	// lastTable is the most recently received intact index table
	// (pointing into the index's precomputed tables), used by the
	// aggressive kNN hop rule. Nil until a table is received.
	lastTable *Table

	// trace, when non-nil, receives an Event for every client step.
	trace func(Event)

	// scr holds per-query scratch reused across queries (see
	// queries.go); its buffers grow to a steady state after which warm
	// queries allocate nothing dataset-sized.
	scr scratch
}

// NewClient returns a client that tunes into the single-channel
// broadcast at the given absolute slot. A nil loss model means an
// error-free channel.
func NewClient(x *Index, probeSlot int64, loss *broadcast.LossModel) *Client {
	return &Client{
		x:   x,
		lay: x.single,
		tu:  broadcast.NewTuner(x.Prog, probeSlot, loss),
		kb:  newKnowledge(x),
	}
}

// NewMultiClient returns a client executing queries over a
// multi-channel layout: it tunes into the layout's start channel at the
// given absolute slot, follows (channel, slot) navigation pointers, and
// pays the air's switch cost whenever retrieval moves across channels.
// On a one-channel layout it behaves bit-identically to NewClient.
func NewMultiClient(lay *Layout, probeSlot int64, loss *broadcast.LossModel) *Client {
	return &Client{
		x:   lay.X,
		lay: lay,
		tu:  broadcast.NewAirTuner(lay.Air, lay.StartCh, probeSlot, loss),
		kb:  newKnowledge(lay.X),
	}
}

// Layout returns the channel layout the client executes over.
func (c *Client) Layout() *Layout { return c.lay }

// gotoTable moves the receiver to the start of the index table of the
// frame at position p, switching channels when the layout placed the
// table elsewhere.
func (c *Client) gotoTable(p int) {
	c.tu.Switch(int(c.lay.tableCh[p]))
	c.tu.DozeUntilPos(int(c.lay.tableSlot[p]))
}

// gotoData moves the receiver to the (o*ObjPackets + skip)-th object
// packet of the frame at position p, switching channels as needed.
func (c *Client) gotoData(p, o, skip int) {
	ch := int(c.lay.dataCh[p])
	c.tu.Switch(ch)
	c.tu.DozeUntilPos((int(c.lay.dataSlot[p]) + o*c.x.ObjPackets + skip) % c.lay.ChanLen(ch))
}

// gotoFrameEntry moves the receiver to where a tableless visit of the
// frame at position p begins: the frame start on its channel. Split
// layouts go straight to the frame's data channel — data is all it
// carries for this frame.
func (c *Client) gotoFrameEntry(p int) {
	if c.lay.Sched == SchedSplit && c.lay.Channels() > 1 {
		c.gotoData(p, 0, 0)
		return
	}
	c.gotoTable(p)
}

// Reset forgets everything the client learned and re-tunes it at the
// given absolute slot, recycling all internal state: the reused client
// behaves exactly like a freshly constructed one (identical results and
// identical cost metrics) at a fraction of the setup cost.
func (c *Client) Reset(probeSlot int64, loss *broadcast.LossModel) {
	c.tu.Reset(probeSlot, loss)
	c.kb.reset()
	c.lastTable = nil
}

// Stats returns the metrics accumulated so far.
func (c *Client) Stats() broadcast.Stats { return c.tu.Stats() }

// probe performs the initial probe: receive one intact packet on the
// start channel to synchronize with the broadcast, then doze to the
// next index-table start on that channel. Returns the cycle position of
// that table's frame.
func (c *Client) probe() int {
	for {
		_, ok := c.tu.Read()
		c.emit(Event{Op: OpProbe, OK: ok})
		if ok {
			break
		}
	}
	p := c.lay.probePos(c.tu.Pos())
	c.tu.DozeUntilPos(int(c.lay.tableSlot[p]))
	return p
}

// readTable receives the index table of the frame at position p (the
// tuner must be at the frame's first slot). It returns false when any
// table packet was corrupted, in which case no knowledge is gained but
// the tuning cost is still paid.
func (c *Client) readTable(p int) bool {
	ok := true
	for i := 0; i < c.x.TablePackets; i++ {
		if _, good := c.tu.Read(); !good {
			ok = false
		}
	}
	c.emit(Event{Op: OpTableRead, Pos: p, Frame: c.x.PosToFrame(p), Arg: c.x.TablePackets, OK: ok})
	if !ok {
		return false
	}
	t := &c.x.tables[p]
	c.lastTable = t
	c.kb.addFrameFact(c.x.PosToFrame(p), t.OwnHC)
	for _, e := range t.Entries {
		c.kb.addFrameFact(c.x.PosToFrame(e.TargetPos), e.MinHC)
	}
	return true
}

// wantTable reports whether visiting the frame at position p should
// read its index table: yes when the frame's own minimum HC is unknown
// or the next same-segment frame (needed to bound this frame's content)
// is unknown. Pure data re-fetches skip the table.
//
// On a split layout the table lives on another channel, so a visit to a
// known frame never crosses over for the neighbour's bound: the frame
// resolves from its own object headers instead, and unknown frames are
// handled wholesale by the index sweep.
func (c *Client) wantTable(p int) bool {
	f := c.x.PosToFrame(p)
	if !c.kb.frameKnown(f) {
		return true
	}
	if c.lay.splitData() {
		return false
	}
	j := c.x.FrameSegment(f)
	if f+1 < c.x.segStart[j+1] {
		return !c.kb.frameKnown(f + 1)
	}
	return false
}

// inTargets reports whether hc lies in any of the sorted target ranges.
func inTargets(targets []hilbert.Range, hc uint64) bool {
	i := sort.Search(len(targets), func(i int) bool { return targets[i].Hi > hc })
	return i < len(targets) && targets[i].Contains(hc)
}

// maxHi returns the largest range end among targets (they are sorted).
func maxHi(targets []hilbert.Range) uint64 {
	if len(targets) == 0 {
		return 0
	}
	return targets[len(targets)-1].Hi
}

// visit moves the client to the frame at position p, reads its index
// table when useful, and retrieves the frame's objects selected by the
// targets. targetsFn is consulted after the table is absorbed, so a kNN
// client shrinks its search space before deciding what to download. On
// a multi-channel layout the visit follows the layout's (channel, slot)
// placements: table on the index-bearing channel, objects on the
// frame's data channel.
//
// When the table is corrupted (or skipped) and the frame's minimum HC is
// unknown, the client falls back to reading the first object's header
// packet — DSI's loss resilience: the broadcast content itself reveals
// the frame's HC range, so navigation resumes at the very next frame.
func (c *Client) visit(p int, targetsFn func() []hilbert.Range) {
	f := c.x.PosToFrame(p)
	headerConsumed := -1
	if c.wantTable(p) {
		c.gotoTable(p)
		ok := c.readTable(p)
		if c.lay.splitData() {
			// A split-layout table visit ends with the table: the
			// frame's data lives on another channel, and the timed
			// chooser will schedule its retrieval at the slot it
			// actually arrives instead of crossing channels here and
			// stalling until it comes around.
			return
		}
		if !ok && !c.kb.frameKnown(f) {
			// Header fallback: one data packet reveals the first object's
			// HC value (every object's payload starts with its coordinate).
			// Split layouts skip it — their index channel rebroadcasts the
			// lost table a data-frame-length factor sooner than the data
			// channel reaches the frame's first header.
			first, _ := c.x.FrameObjects(f)
			c.gotoData(p, 0, 0)
			_, okHdr := c.tu.Read()
			c.emit(Event{Op: OpHeaderRead, Pos: p, Frame: f, Arg: first, OK: okHdr})
			if okHdr {
				c.kb.addFrameFact(f, c.x.DS.Objects[first].HC)
				headerConsumed = 0
			}
		}
	} else {
		c.gotoFrameEntry(p)
	}
	c.fetchData(p, targetsFn(), headerConsumed)
}

// fetchData retrieves from the frame at position p every object whose
// HC value lies in the targets and is not yet retrieved. headerConsumed
// is the index of the object whose header packet was already received
// during the table fallback (-1 for none). Corrupted objects stay
// unretrieved; a later cycle retries them.
func (c *Client) fetchData(p int, targets []hilbert.Range, headerConsumed int) {
	f := c.x.PosToFrame(p)
	if !c.kb.frameKnown(f) {
		return // nothing is known about this frame; nothing to fetch safely
	}
	first, num := c.x.FrameObjects(f)
	hiBound := maxHi(targets)

	prev := c.kb.frameHC[f] // ascending watermark of located HC values
	for t := 0; t < num; t++ {
		id := first + t
		if c.kb.objLocated(id) {
			prev = c.kb.objHC[id]
			if !c.kb.retrieved(id) && inTargets(targets, prev) {
				skip := 0
				if t == headerConsumed {
					skip = 1
				}
				c.readObject(p, t, id, skip)
			}
			continue
		}
		// Unlocated: objects from here on have HC above prev; stop
		// once nothing in range can remain.
		if prev+1 >= hiBound {
			return
		}
		// Read the header packet to learn this object's HC value.
		c.gotoData(p, t, 0)
		_, ok := c.tu.Read()
		c.emit(Event{Op: OpHeaderRead, Pos: p, Frame: f, Arg: id, OK: ok})
		if !ok {
			continue // lost header: a later cycle rescans this object
		}
		hc := c.x.DS.Objects[id].HC
		c.kb.addHeader(f, t, hc)
		prev = hc
		if inTargets(targets, hc) {
			c.readObject(p, t, id, 1)
		}
	}
}

// readObject receives object id, the o-th object of the frame at
// position p, skipping the first skip packets (already received as a
// header). The object counts as retrieved only if every packet arrives
// intact.
func (c *Client) readObject(p, o, id, skip int) {
	c.gotoData(p, o, skip)
	ok := true
	for i := skip; i < c.x.ObjPackets; i++ {
		if _, good := c.tu.Read(); !good {
			ok = false
		}
	}
	c.emit(Event{Op: OpObjectRead, Pos: p, Frame: c.x.PosToFrame(p), Arg: id, OK: ok})
	if ok {
		c.kb.markRetrieved(id)
	}
}

// retrieveAll is the generic query engine: it visits frames until every
// object with an HC value in the current target set has been retrieved
// with certainty. targetsFn is consulted after every table read and may
// shrink the target set as knowledge accumulates (kNN); for window
// queries it is constant. hook, if non-nil, may redirect the next visit
// (the aggressive kNN hop rule); it returns a cycle position and true
// to override the default soonest-unresolved-frame choice.
func (c *Client) retrieveAll(startPos int, targetsFn func() []hilbert.Range, hook func(p int) (int, bool)) {
	p := startPos
	m := c.x.Cfg.Segments
	ver := c.scr.targetsVer - 1 // force a mark (re)build on entry
	for {
		c.visit(p, targetsFn)
		targets := targetsFn()
		// (Re)build the resolution cache whenever the target set
		// changes (kNN shrinks it as candidates accumulate); marks for
		// an unchanged target set stay valid because resolution is
		// monotone in the growing knowledge base.
		if ver != c.scr.targetsVer {
			ver = c.scr.targetsVer
			need := len(targets) * m
			if cap(c.scr.marks) < need {
				c.scr.marks = make([]bool, need)
			} else {
				c.scr.marks = c.scr.marks[:need]
				clear(c.scr.marks)
			}
		}
		// nextUseful reporting nothing doubles as the termination test:
		// the query is done exactly when no unresolved frame remains.
		// Split layouts choose by actual arrival time across channels;
		// on one channel, position order is time order, and the
		// positional chooser is kept bit-identical to the classic
		// engine.
		var next int
		var ok bool
		if c.lay.splitData() {
			next, ok = c.nextVisitTimed(targets, c.scr.marks)
		} else {
			next, ok = c.kb.nextUsefulMarked(p, targets, c.scr.marks)
		}
		if !ok {
			return
		}
		if hook != nil {
			if override, use := hook(p); use {
				next = override
			}
		}
		p = next
	}
}

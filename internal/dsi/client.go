package dsi

import (
	"sort"

	"dsi/internal/broadcast"
	"dsi/internal/hilbert"
)

// knowledge is the client-side knowledge base: everything a client has
// learned about the broadcast from received index tables and object
// headers, plus the static catalog (segment split HC values).
//
// The key inference DSI clients rely on (paper sections 3.3-3.4, e.g.
// "the index table shows the next object is O32, ruling out the
// existence of O28 and O31"): within one broadcast segment, frames
// appear in ascending HC order, so two known frames at adjacent
// same-segment positions bound the HC values of everything between them
// — if the positions are adjacent, nothing exists between their HC
// values.
type knowledge struct {
	x *Index

	frameKnown []bool   // frame id -> minimum HC value known?
	frameHC    []uint64 // valid when frameKnown

	// knownIdx[j] lists the within-segment indices of known frames in
	// segment j, sorted ascending. Because frames in a segment are HC
	// sorted, the list is simultaneously sorted by position and by HC.
	knownIdx [][]int

	// Per-object state. Objects are identified by their dataset ID
	// (HC rank); object i belongs to frame i/NO.
	objLocated []bool   // location (HC value) known to the client
	objHC      []uint64 // valid when objLocated
	retrieved  []bool   // full payload received

	// newObjs queues freshly located objects for the kNN candidate set.
	newObjs []int
}

func newKnowledge(x *Index) *knowledge {
	kb := &knowledge{
		x:          x,
		frameKnown: make([]bool, x.NF),
		frameHC:    make([]uint64, x.NF),
		knownIdx:   make([][]int, x.Cfg.Segments),
		objLocated: make([]bool, x.DS.N()),
		objHC:      make([]uint64, x.DS.N()),
		retrieved:  make([]bool, x.DS.N()),
	}
	// Catalog seed: the split HC values are public, so the first frame
	// of every segment is known a priori.
	for j := 0; j < x.Cfg.Segments; j++ {
		kb.addFrameFact(x.segStart[j], x.Splits[j])
	}
	return kb
}

// addFrameFact records that frame f's minimum HC value is hc, locating
// the frame's first object.
func (kb *knowledge) addFrameFact(f int, hc uint64) {
	if kb.frameKnown[f] {
		return
	}
	kb.frameKnown[f] = true
	kb.frameHC[f] = hc
	j := kb.x.FrameSegment(f)
	i := f - kb.x.segStart[j]
	kl := kb.knownIdx[j]
	at := sort.SearchInts(kl, i)
	kl = append(kl, 0)
	copy(kl[at+1:], kl[at:])
	kl[at] = i
	kb.knownIdx[j] = kl

	first, _ := kb.x.FrameObjects(f)
	kb.locate(first, hc)
}

// locate records an object's HC value (and thus its exact position on
// the grid: objects live on cells).
func (kb *knowledge) locate(id int, hc uint64) {
	if kb.objLocated[id] {
		return
	}
	kb.objLocated[id] = true
	kb.objHC[id] = hc
	kb.newObjs = append(kb.newObjs, id)
}

// addHeader records that the header of the o-th object of frame f has
// been received, revealing its HC value.
func (kb *knowledge) addHeader(f, o int, hc uint64) {
	first, num := kb.x.FrameObjects(f)
	if o < 0 || o >= num {
		panic("dsi: header index outside frame")
	}
	kb.locate(first+o, hc)
}

// markRetrieved records a completed object download.
func (kb *knowledge) markRetrieved(id int) { kb.retrieved[id] = true }

// drainNew returns the objects located since the previous call.
func (kb *knowledge) drainNew() []int {
	out := kb.newObjs
	kb.newObjs = nil
	return out
}

// segSpan returns the HC span [lo, hi) covered by segment j.
func (kb *knowledge) segSpan(j int) (lo, hi uint64) {
	lo = kb.x.Splits[j]
	if j+1 < kb.x.Cfg.Segments {
		hi = kb.x.Splits[j+1]
	} else {
		hi = kb.x.DS.Curve.Size()
	}
	return lo, hi
}

// frameResolved reports whether, as far as [lo, hi) is concerned, frame
// f requires no further attention: every object of f that could have an
// HC value in [lo, hi) is either retrieved or certainly outside.
// The frame's minimum HC must be known (so its first object is
// located). upper is a known strict upper bound on the HC values in f
// (the next known same-segment frame's minimum, or the segment span
// end). Objects whose headers have not been received are bounded by the
// nearest located objects around them.
func (kb *knowledge) frameResolved(f int, lo, hi, upper uint64) bool {
	first, num := kb.x.FrameObjects(f)
	prev := kb.frameHC[f] // first object is located whenever the frame is known
	gapOpen := false
	for t := 0; t < num; t++ {
		id := first + t
		if !kb.objLocated[id] {
			gapOpen = true
			continue
		}
		hc := kb.objHC[id]
		if gapOpen {
			// Unlocated objects between prev and hc: HC in (prev, hc).
			if prev+1 < hi && hc > lo {
				return false
			}
			gapOpen = false
		}
		if hc >= lo && hc < hi && !kb.retrieved[id] {
			return false
		}
		prev = hc
	}
	if gapOpen && prev+1 < hi && upper > lo {
		return false
	}
	return true
}

// rangeState walks the client's knowledge about the HC range [lo, hi)
// within segment j and calls visit for every frame that is not resolved
// with respect to the range: known frames with pending objects, and
// unknown frames that could hold objects in the range. For unknown gap
// frames, visit receives the within-segment index span [gapLo, gapHi]
// (inclusive) of the gap; for known frames gapLo == gapHi == the frame's
// index. Returning false from visit stops the walk early.
func (kb *knowledge) rangeState(j int, lo, hi uint64, visit func(gapLo, gapHi int) bool) {
	segLo, segHi := kb.segSpan(j)
	if lo < segLo {
		lo = segLo
	}
	if hi > segHi {
		hi = segHi
	}
	if lo >= hi {
		return
	}
	kl := kb.knownIdx[j]
	segN := kb.x.SegLen(j)
	base := kb.x.segStart[j]
	// Start at the last known frame whose minimum HC is <= lo. Index 0
	// is always known (catalog) with hc == segLo <= lo.
	t := sort.Search(len(kl), func(t int) bool {
		return kb.frameHC[base+kl[t]] > lo
	}) - 1
	for ; t < len(kl); t++ {
		i := kl[t]
		f := base + i
		hc := kb.frameHC[f]
		if hc >= hi {
			return
		}
		// Upper bound on this frame's content and the following gap.
		nextI := segN
		upper := segHi
		if t+1 < len(kl) {
			nextI = kl[t+1]
			upper = kb.frameHC[base+nextI]
		}
		if !kb.frameResolved(f, lo, hi, upper) {
			if !visit(i, i) {
				return
			}
		}
		// Unknown frames between this one and the next known one hold
		// objects with HC in (hc, upper).
		if nextI > i+1 && upper > lo && hc+1 < hi {
			if !visit(i+1, nextI-1) {
				return
			}
		}
	}
}

// resolved reports whether every object with an HC value in any of the
// target ranges has been retrieved, with certainty (no unknown frame
// could still hold one).
func (kb *knowledge) resolved(targets []hilbert.Range) bool {
	for _, r := range targets {
		for j := 0; j < kb.x.Cfg.Segments; j++ {
			done := true
			kb.rangeState(j, r.Lo, r.Hi, func(_, _ int) bool {
				done = false
				return false
			})
			if !done {
				return false
			}
		}
	}
	return true
}

// nextUseful returns the cycle position of the soonest-arriving frame
// (strictly after nowPos, wrapping) that is not resolved with respect to
// the targets. ok is false when everything is resolved.
func (kb *knowledge) nextUseful(nowPos int, targets []hilbert.Range) (pos int, ok bool) {
	m := kb.x.Cfg.Segments
	nf := kb.x.NF
	bestDelta := nf + 1
	for _, r := range targets {
		for j := 0; j < m; j++ {
			kb.rangeState(j, r.Lo, r.Hi, func(gapLo, gapHi int) bool {
				// Earliest arrival among positions j + m*i,
				// i in [gapLo, gapHi], strictly after nowPos.
				if d := arrivalDelta(nowPos, j, m, gapLo, gapHi, nf); d < bestDelta {
					bestDelta = d
				}
				return bestDelta > 1 // delta 1 cannot be beaten
			})
			if bestDelta == 1 {
				break
			}
		}
	}
	if bestDelta > nf {
		return 0, false
	}
	return (nowPos + bestDelta) % nf, true
}

// arrivalDelta returns the smallest delta in [1, nf] such that
// nowPos+delta is a position of the form j + m*i with i in [iLo, iHi].
func arrivalDelta(nowPos, j, m, iLo, iHi, nf int) int {
	posLo := j + m*iLo
	posHi := j + m*iHi
	// First candidate strictly after nowPos within this cycle.
	cur := nowPos % nf
	var cand int
	if cur < posHi {
		// Smallest position >= cur+1 congruent to j mod m, at least posLo.
		c := cur + 1
		if c < posLo {
			c = posLo
		}
		// Round c up to the next value congruent to j modulo m.
		r := (j - c%m + m) % m
		cand = c + r
		if cand <= posHi {
			return cand - cur
		}
	}
	// Wrap to the first position of the gap in the next cycle.
	return posLo + nf - cur
}

// Client is a mobile client executing one query over a DSI broadcast.
// Create one per query with NewClient.
type Client struct {
	x  *Index
	tu *broadcast.Tuner
	kb *knowledge

	// lastTable is the most recently received intact index table, used
	// by the aggressive kNN hop rule. Nil until a table is received.
	lastTable *Table

	// trace, when non-nil, receives an Event for every client step.
	trace func(Event)
}

// NewClient returns a client that tunes into the broadcast at the given
// absolute slot. A nil loss model means an error-free channel.
func NewClient(x *Index, probeSlot int64, loss *broadcast.LossModel) *Client {
	return &Client{
		x:  x,
		tu: broadcast.NewTuner(x.Prog, probeSlot, loss),
		kb: newKnowledge(x),
	}
}

// Stats returns the metrics accumulated so far.
func (c *Client) Stats() broadcast.Stats { return c.tu.Stats() }

// probe performs the initial probe: receive one intact packet to
// synchronize with the broadcast, then doze to the next frame start.
// Returns the cycle position of that frame.
func (c *Client) probe() int {
	for {
		_, ok := c.tu.Read()
		c.emit(Event{Op: OpProbe, OK: ok})
		if ok {
			break
		}
	}
	slot := c.tu.Pos()
	framePos := slot / c.x.FramePackets
	if slot%c.x.FramePackets != 0 {
		framePos = (framePos + 1) % c.x.NF
		c.tu.DozeUntilPos(c.x.FrameStartSlot(framePos))
	}
	return framePos
}

// readTable receives the index table of the frame at position p (the
// tuner must be at the frame's first slot). It returns false when any
// table packet was corrupted, in which case no knowledge is gained but
// the tuning cost is still paid.
func (c *Client) readTable(p int) bool {
	ok := true
	for i := 0; i < c.x.TablePackets; i++ {
		if _, good := c.tu.Read(); !good {
			ok = false
		}
	}
	c.emit(Event{Op: OpTableRead, Pos: p, Frame: c.x.PosToFrame(p), Arg: c.x.TablePackets, OK: ok})
	if !ok {
		return false
	}
	t := c.x.TableAt(p)
	c.lastTable = &t
	c.kb.addFrameFact(c.x.PosToFrame(p), t.OwnHC)
	for _, e := range t.Entries {
		c.kb.addFrameFact(c.x.PosToFrame(e.TargetPos), e.MinHC)
	}
	return true
}

// wantTable reports whether visiting the frame at position p should
// read its index table: yes when the frame's own minimum HC is unknown
// or the next same-segment frame (needed to bound this frame's content)
// is unknown. Pure data re-fetches skip the table.
func (c *Client) wantTable(p int) bool {
	f := c.x.PosToFrame(p)
	if !c.kb.frameKnown[f] {
		return true
	}
	j := c.x.FrameSegment(f)
	if f+1 < c.x.segStart[j+1] {
		return !c.kb.frameKnown[f+1]
	}
	return false
}

// inTargets reports whether hc lies in any of the sorted target ranges.
func inTargets(targets []hilbert.Range, hc uint64) bool {
	i := sort.Search(len(targets), func(i int) bool { return targets[i].Hi > hc })
	return i < len(targets) && targets[i].Contains(hc)
}

// maxHi returns the largest range end among targets (they are sorted).
func maxHi(targets []hilbert.Range) uint64 {
	if len(targets) == 0 {
		return 0
	}
	return targets[len(targets)-1].Hi
}

// visit moves the client to the frame at position p, reads its index
// table when useful, and retrieves the frame's objects selected by the
// targets. targetsFn is consulted after the table is absorbed, so a kNN
// client shrinks its search space before deciding what to download.
//
// When the table is corrupted (or skipped) and the frame's minimum HC is
// unknown, the client falls back to reading the first object's header
// packet — DSI's loss resilience: the broadcast content itself reveals
// the frame's HC range, so navigation resumes at the very next frame.
func (c *Client) visit(p int, targetsFn func() []hilbert.Range) {
	c.tu.DozeUntilPos(c.x.FrameStartSlot(p))
	f := c.x.PosToFrame(p)
	headerConsumed := -1
	if c.wantTable(p) && !c.readTable(p) && !c.kb.frameKnown[f] {
		// Header fallback: one data packet reveals the first object's
		// HC value (every object's payload starts with its coordinate).
		first, _ := c.x.FrameObjects(f)
		_, ok := c.tu.Read()
		c.emit(Event{Op: OpHeaderRead, Pos: p, Frame: f, Arg: first, OK: ok})
		if ok {
			c.kb.addFrameFact(f, c.x.DS.Objects[first].HC)
			headerConsumed = 0
		}
	}
	c.fetchData(p, targetsFn(), headerConsumed)
}

// fetchData retrieves from the frame at position p every object whose
// HC value lies in the targets and is not yet retrieved. headerConsumed
// is the index of the object whose header packet was already received
// during the table fallback (-1 for none). Corrupted objects stay
// unretrieved; a later cycle retries them.
func (c *Client) fetchData(p int, targets []hilbert.Range, headerConsumed int) {
	f := c.x.PosToFrame(p)
	if !c.kb.frameKnown[f] {
		return // nothing is known about this frame; nothing to fetch safely
	}
	first, num := c.x.FrameObjects(f)
	hiBound := maxHi(targets)
	skipFor := func(t int) int {
		if t == headerConsumed {
			return 1
		}
		return 0
	}

	prev := c.kb.frameHC[f] // ascending watermark of located HC values
	for t := 0; t < num; t++ {
		id := first + t
		if c.kb.objLocated[id] {
			prev = c.kb.objHC[id]
			if !c.kb.retrieved[id] && inTargets(targets, prev) {
				c.readObject(p, t, id, skipFor(t))
			}
			continue
		}
		// Unlocated: objects from here on have HC above prev; stop
		// once nothing in range can remain.
		if prev+1 >= hiBound {
			return
		}
		// Read the header packet to learn this object's HC value.
		c.tu.DozeUntilPos(c.x.ObjectSlot(p, t))
		_, ok := c.tu.Read()
		c.emit(Event{Op: OpHeaderRead, Pos: p, Frame: f, Arg: id, OK: ok})
		if !ok {
			continue // lost header: a later cycle rescans this object
		}
		hc := c.x.DS.Objects[id].HC
		c.kb.addHeader(f, t, hc)
		prev = hc
		if inTargets(targets, hc) {
			c.readObject(p, t, id, 1)
		}
	}
}

// readObject receives object id, the o-th object of the frame at
// position p, skipping the first skip packets (already received as a
// header). The object counts as retrieved only if every packet arrives
// intact.
func (c *Client) readObject(p, o, id, skip int) {
	c.tu.DozeUntilPos((c.x.ObjectSlot(p, o) + skip) % c.x.Prog.Len())
	ok := true
	for i := skip; i < c.x.ObjPackets; i++ {
		if _, good := c.tu.Read(); !good {
			ok = false
		}
	}
	c.emit(Event{Op: OpObjectRead, Pos: p, Frame: c.x.PosToFrame(p), Arg: id, OK: ok})
	if ok {
		c.kb.markRetrieved(id)
	}
}

// retrieveAll is the generic query engine: it visits frames until every
// object with an HC value in the current target set has been retrieved
// with certainty. targetsFn is consulted after every table read and may
// shrink the target set as knowledge accumulates (kNN); for window
// queries it is constant. hook, if non-nil, may redirect the next visit
// (the aggressive kNN hop rule); it returns a cycle position and true
// to override the default soonest-unresolved-frame choice.
func (c *Client) retrieveAll(startPos int, targetsFn func() []hilbert.Range, hook func(p int) (int, bool)) {
	p := startPos
	for {
		c.visit(p, targetsFn)
		targets := targetsFn()
		if c.kb.resolved(targets) {
			return
		}
		next, ok := c.kb.nextUseful(p, targets)
		if !ok {
			return
		}
		if hook != nil {
			if override, use := hook(p); use {
				next = override
			}
		}
		p = next
	}
}

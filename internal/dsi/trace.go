package dsi

import "fmt"

// Event is one step of a client's query execution, for tracing and
// debugging. Slot is the absolute packet clock when the step completed.
type Event struct {
	Slot int64
	Op   Op
	// Pos is the cycle position of the frame involved (when relevant).
	Pos int
	// Frame is the frame id involved (when relevant).
	Frame int
	// Arg carries op-specific detail: the object id for ObjectRead and
	// HeaderRead, the number of packets for TableRead.
	Arg int
	// OK is false when the packets involved were corrupted.
	OK bool
}

// Op classifies a trace event.
type Op int

const (
	// OpProbe is the initial probe packet.
	OpProbe Op = iota
	// OpTableRead is an index-table reception.
	OpTableRead
	// OpHeaderRead is an object-header reception (loss fallback or
	// in-frame scanning).
	OpHeaderRead
	// OpObjectRead is a full object retrieval.
	OpObjectRead
)

func (o Op) String() string {
	switch o {
	case OpProbe:
		return "probe"
	case OpTableRead:
		return "table"
	case OpHeaderRead:
		return "header"
	case OpObjectRead:
		return "object"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

func (e Event) String() string {
	status := "ok"
	if !e.OK {
		status = "lost"
	}
	switch e.Op {
	case OpProbe:
		return fmt.Sprintf("@%-8d probe %s", e.Slot, status)
	case OpTableRead:
		return fmt.Sprintf("@%-8d table pos=%d frame=%d packets=%d %s", e.Slot, e.Pos, e.Frame, e.Arg, status)
	case OpHeaderRead:
		return fmt.Sprintf("@%-8d header pos=%d frame=%d obj=%d %s", e.Slot, e.Pos, e.Frame, e.Arg, status)
	case OpObjectRead:
		return fmt.Sprintf("@%-8d object pos=%d frame=%d obj=%d %s", e.Slot, e.Pos, e.Frame, e.Arg, status)
	default:
		return fmt.Sprintf("@%-8d %v", e.Slot, e.Op)
	}
}

// SetTracer installs a callback invoked for every client step. Pass nil
// to disable tracing. Tracing does not affect costs or results.
func (c *Client) SetTracer(fn func(Event)) { c.trace = fn }

func (c *Client) emit(e Event) {
	if c.trace != nil {
		e.Slot = c.rx.Now()
		c.trace(e)
	}
}

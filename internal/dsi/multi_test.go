package dsi

import (
	"math/rand"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

// TestSingleChannelLayoutBitIdentical is the N=1 reduction contract of
// the channel layer: a multi-channel client over a one-channel layout
// (either scheduler) must answer every query with exactly the same
// results and exactly the same cost metrics as the classic
// single-channel client, loss or no loss.
func TestSingleChannelLayoutBitIdentical(t *testing.T) {
	for _, sched := range []Scheduler{SchedStripe, SchedSplit} {
		for ci, cfg := range []Config{{}, {Segments: 2}, {Capacity: 512, Segments: 2}} {
			ds := dataset.Uniform(300, 7, int64(400+ci))
			x, err := Build(ds, cfg)
			if err != nil {
				t.Fatal(err)
			}
			lay, err := NewLayout(x, MultiConfig{Channels: 1, Scheduler: sched, SwitchSlots: 4})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(7*ci + int(sched))))
			side := int(ds.Curve.Side())
			for trial := 0; trial < 15; trial++ {
				probe := rng.Int63n(int64(x.Prog.Len()))
				var theta float64
				if trial%3 == 2 {
					theta = 0.4
				}
				lossSeed := rng.Int63()
				mkLoss := func() *broadcast.LossModel {
					if theta == 0 {
						return nil
					}
					return broadcast.NewLossModel(theta, lossSeed)
				}
				single := NewClient(x, probe, mkLoss())
				multi := NewMultiClient(lay, probe, mkLoss())
				if trial%2 == 0 {
					w := randWindow(rng, side)
					wantIDs, wantSt := single.Window(w)
					gotIDs, gotSt := multi.Window(w)
					if !equalInts(gotIDs, wantIDs) || gotSt != wantSt {
						t.Fatalf("%v cfg %d trial %d: window (%v,%+v) != single (%v,%+v)",
							sched, ci, trial, gotIDs, gotSt, wantIDs, wantSt)
					}
				} else {
					q := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
					k := 1 + rng.Intn(8)
					wantIDs, wantSt := single.KNN(q, k, Conservative)
					gotIDs, gotSt := multi.KNN(q, k, Conservative)
					if !equalInts(gotIDs, wantIDs) || gotSt != wantSt {
						t.Fatalf("%v cfg %d trial %d: kNN (%v,%+v) != single (%v,%+v)",
							sched, ci, trial, gotIDs, gotSt, wantIDs, wantSt)
					}
				}
			}
		}
	}
}

// multiConfigs spans the scheduler x channel-count x segment grid the
// correctness tests sweep.
func multiConfigs() []MultiConfig {
	return []MultiConfig{
		{Channels: 2, Scheduler: SchedStripe, SwitchSlots: 2},
		{Channels: 3, Scheduler: SchedStripe},
		{Channels: 2, Scheduler: SchedSplit, SwitchSlots: 2},
		{Channels: 4, Scheduler: SchedSplit, SwitchSlots: 1},
	}
}

// TestMultiChannelCorrectness cross-checks every multi-channel query
// against brute force: the channel layer must never change what a query
// answers, only what it costs.
func TestMultiChannelCorrectness(t *testing.T) {
	for ci, cfg := range []Config{{}, {Segments: 2}, {Capacity: 256}} {
		ds := dataset.Uniform(350, 7, int64(900+ci))
		x, err := Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, mc := range multiConfigs() {
			lay, err := NewLayout(x, mc)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(50 + ci)))
			side := int(ds.Curve.Side())
			c := NewMultiClient(lay, 0, nil)
			for trial := 0; trial < 12; trial++ {
				probe := rng.Int63n(int64(lay.ProbeCycle()))
				var loss *broadcast.LossModel
				if trial%4 == 3 {
					loss = broadcast.NewLossModel(0.3, rng.Int63())
				}
				c.Reset(probe, loss)
				if trial%2 == 0 {
					w := randWindow(rng, side)
					got, st := c.Window(w)
					want := ds.WindowBrute(w)
					if !equalInts(got, want) {
						t.Fatalf("%v x%d cfg %d: window %v got %v want %v",
							mc.Scheduler, mc.Channels, ci, w, got, want)
					}
					if st.LatencyPackets <= 0 {
						t.Fatalf("no latency accounted: %+v", st)
					}
				} else {
					q := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
					k := 1 + rng.Intn(8)
					got, _ := c.KNN(q, k, Conservative)
					want, _ := ds.KNNBrute(q, k)
					if !sameDist2(ds, q, got, want) {
						t.Fatalf("%v x%d cfg %d: kNN at %v k=%d got %v want %v",
							mc.Scheduler, mc.Channels, ci, q, k, got, want)
					}
				}
			}
		}
	}
}

// TestMultiClientResetMatchesFresh extends the client-reuse contract to
// multi-channel layouts.
func TestMultiClientResetMatchesFresh(t *testing.T) {
	ds := dataset.Uniform(300, 7, 61)
	x, err := Build(ds, Config{Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range multiConfigs() {
		lay, err := NewLayout(x, mc)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(31))
		side := int(ds.Curve.Side())
		reused := NewMultiClient(lay, 0, nil)
		for trial := 0; trial < 10; trial++ {
			probe := rng.Int63n(int64(lay.ProbeCycle()))
			lossSeed := rng.Int63()
			mkLoss := func() *broadcast.LossModel {
				if trial%3 != 1 {
					return nil
				}
				return broadcast.NewLossModel(0.35, lossSeed)
			}
			// Dirty the reused client, then replay the trial query.
			reused.Reset(rng.Int63n(int64(lay.ProbeCycle())), nil)
			reused.KNN(spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}, 2, Conservative)

			w := randWindow(rng, side)
			fresh := NewMultiClient(lay, probe, mkLoss())
			wantIDs, wantSt := fresh.Window(w)
			reused.Reset(probe, mkLoss())
			gotIDs, gotSt := reused.Window(w)
			if !equalInts(gotIDs, wantIDs) || gotSt != wantSt {
				t.Fatalf("%v x%d trial %d: reused (%v,%+v) != fresh (%v,%+v)",
					mc.Scheduler, mc.Channels, trial, gotIDs, gotSt, wantIDs, wantSt)
			}
		}
	}
}

// TestSplitLayoutSwitchesAndImproves: on a split layout a window query
// must actually switch channels, pay the configured switch cost, and —
// the point of separating index from data — finish no later on average
// than the single-channel broadcast of the same index.
func TestSplitLayoutSwitchesAndImproves(t *testing.T) {
	ds := dataset.Uniform(600, 7, 77)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := NewLayout(x, MultiConfig{Channels: 3, Scheduler: SchedSplit, SwitchSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	side := int(ds.Curve.Side())
	var singleLat, multiLat, switches int64
	single := NewClient(x, 0, nil)
	multi := NewMultiClient(lay, 0, nil)
	for trial := 0; trial < 40; trial++ {
		w := randWindow(rng, side)
		u := rng.Float64()
		single.Reset(int64(u*float64(x.Prog.Len())), nil)
		_, st1 := single.Window(w)
		multi.Reset(int64(u*float64(lay.ProbeCycle())), nil)
		got, st2 := multi.Window(w)
		if !equalInts(got, ds.WindowBrute(w)) {
			t.Fatalf("split window wrong at trial %d", trial)
		}
		singleLat += st1.LatencyPackets
		multiLat += st2.LatencyPackets
		switches += st2.Switches
	}
	if switches == 0 {
		t.Error("split layout never switched channels")
	}
	if multiLat >= singleLat {
		t.Errorf("split layout latency %d packets >= single-channel %d", multiLat, singleLat)
	}
}

// TestLayoutValidation covers layout construction error paths.
func TestLayoutValidation(t *testing.T) {
	ds := dataset.Uniform(40, 6, 3)
	x, err := Build(ds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLayout(x, MultiConfig{Channels: 0}); err == nil {
		t.Error("0 channels accepted")
	}
	if _, err := NewLayout(x, MultiConfig{Channels: 2, SwitchSlots: -1}); err == nil {
		t.Error("negative switch cost accepted")
	}
	if _, err := NewLayout(x, MultiConfig{Channels: x.NF + 1, Scheduler: SchedStripe}); err == nil {
		t.Error("more channels than frames accepted (stripe)")
	}
	if _, err := NewLayout(x, MultiConfig{Channels: x.NF + 2, Scheduler: SchedSplit}); err == nil {
		t.Error("more data channels than frames accepted (split)")
	}
	if _, err := NewLayout(x, MultiConfig{Channels: 2, Scheduler: Scheduler(99)}); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

// TestLayoutPlacementInvariants checks that every frame's table and
// data placements point at the right slots of the right channels.
func TestLayoutPlacementInvariants(t *testing.T) {
	ds := dataset.Uniform(123, 7, 9)
	x, err := Build(ds, Config{Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, mc := range multiConfigs() {
		lay, err := NewLayout(x, mc)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, ch := range lay.Air.Channels {
			total += ch.Len()
		}
		if total != x.Prog.Len() {
			t.Errorf("%v x%d: %d total slots, want %d", mc.Scheduler, mc.Channels, total, x.Prog.Len())
		}
		for pos := 0; pos < x.NF; pos++ {
			f := x.PosToFrame(pos)
			tc, ts := lay.TablePlace(pos)
			s := lay.Air.Channels[tc].At(ts)
			if s.Kind != broadcast.KindIndex || s.Owner != int32(f) || s.Part != 0 {
				t.Fatalf("%v x%d pos %d: table placed at %+v", mc.Scheduler, mc.Channels, pos, s)
			}
			dc, dsl := lay.DataPlace(pos)
			d := lay.Air.Channels[dc].At(dsl)
			if d.Kind != broadcast.KindData || d.Owner != int32(f) || d.Part != int32(x.TablePackets) {
				t.Fatalf("%v x%d pos %d: data placed at %+v", mc.Scheduler, mc.Channels, pos, d)
			}
		}
	}
}

func sameDist2(ds *dataset.Dataset, q spatial.Point, a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	var da, db float64
	for i := range a {
		da += ds.ByID(a[i]).P.Dist2(q)
		db += ds.ByID(b[i]).P.Dist2(q)
	}
	return da == db
}

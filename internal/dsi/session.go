// The session facade: one constructor for every client the package
// knows how to assemble. The historical entry points — NewClient,
// NewMultiClient, and the per-harness wrappers around them — each
// hard-coded one (layout, receiver) pair and took positional probe and
// loss arguments, so every new capability (multi-channel layouts,
// shards, per-channel loss, byte-level receivers) widened every
// signature. Open replaces them: functional options select the layout
// (or a prebuilt receiver), the tune-in slot, and the loss processes,
// and the returned Session answers any number of queries with reusable
// state, keeping the zero-allocation append contracts of the client
// underneath.
//
// Migration from the legacy constructors:
//
//	NewClient(x, probe, loss)            -> Open(x, WithProbeSlot(probe), WithLoss(loss))
//	NewMultiClient(lay, probe, loss)     -> Open(lay.X, WithLayout(lay), WithProbeSlot(probe), WithLoss(loss))
//	build-your-own layout                -> Open(x, WithMultiConfig(mc), ...)
//	sharded plan (sched.Plan)            -> Open(x, WithMultiConfig(plan.MultiConfig(sw)), ...)
//	                                        or Open(x, WithShardBounds(bounds...), WithSwitchSlots(sw), ...)
//	byte-level reception (station)       -> Open(x, WithReceiver(station.NewWireReceiver(...)))

package dsi

import (
	"fmt"

	"dsi/internal/broadcast"
	"dsi/internal/spatial"
)

// Option configures Open.
type Option func(*openConfig)

type channelLoss struct {
	ch   int
	loss *broadcast.LossModel
}

type openConfig struct {
	lay         *Layout
	mc          *MultiConfig
	bounds      []int
	switchSlots int
	switchSet   bool
	probe       int64
	probeSet    bool
	loss        *broadcast.LossModel
	chLoss      []channelLoss
	rx          Receiver
}

// WithLayout runs the session over a prebuilt channel layout of the
// opened index. Mutually exclusive with WithMultiConfig, WithShardBounds
// and WithReceiver.
func WithLayout(lay *Layout) Option {
	return func(c *openConfig) { c.lay = lay }
}

// WithMultiConfig builds a channel layout for the opened index (see
// NewLayout) and runs the session over it. Mutually exclusive with
// WithLayout, WithShardBounds and WithReceiver.
func WithMultiConfig(mc MultiConfig) Option {
	return func(c *openConfig) { c.mc = &mc }
}

// WithShardBounds is shorthand for a SchedShard multi-config: bounds
// are the shard boundaries (ascending frame ids from 0 to the frame
// count, one data channel per shard plus the index channel), as emitted
// by the sched planner. Combine with WithSwitchSlots for a non-zero
// channel-switch cost.
func WithShardBounds(bounds ...int) Option {
	return func(c *openConfig) { c.bounds = bounds }
}

// WithSwitchSlots sets the channel-switch cost of a WithShardBounds
// layout. Layouts passed whole (WithLayout, WithMultiConfig) carry
// their own switch cost, so combining it with those is an error.
func WithSwitchSlots(n int) Option {
	return func(c *openConfig) {
		c.switchSlots = n
		c.switchSet = true
	}
}

// WithProbeSlot sets the absolute slot at which the session's client
// tunes in (default 0). Later queries re-tune at the slot given to
// Session.Tune.
func WithProbeSlot(slot int64) Option {
	return func(c *openConfig) {
		c.probe = slot
		c.probeSet = true
	}
}

// WithLoss sets the query-wide link-error model (nil, the default,
// means error-free channels).
func WithLoss(loss *broadcast.LossModel) Option {
	return func(c *openConfig) { c.loss = loss }
}

// WithChannelLoss overrides the loss model on one channel of a
// multi-channel layout. May be repeated for different channels; the
// overrides are reinstalled after every re-tune, so they persist for
// the session's lifetime (Client.SetChannelLoss, by contrast, lasts
// one query).
func WithChannelLoss(ch int, loss *broadcast.LossModel) Option {
	return func(c *openConfig) { c.chLoss = append(c.chLoss, channelLoss{ch, loss}) }
}

// WithReceiver runs the session over a caller-supplied Receiver — the
// extension point for reception models the simulator does not build in
// (byte-level wire receivers, and the dual-radio and prefetching tuners
// on the roadmap). The receiver carries its own layout and tune-in
// state; combining it with a layout option is an error, and probe/loss
// options are applied to it via Reset.
func WithReceiver(rx Receiver) Option {
	return func(c *openConfig) { c.rx = rx }
}

// Open assembles a query session over a built index. With no options
// the session runs the classic single-channel broadcast from slot 0
// with error-free reception; options select the channel layout (or a
// whole receiver), the tune-in slot, and the loss processes.
func Open(x *Index, opts ...Option) (*Session, error) {
	var cfg openConfig
	for _, opt := range opts {
		opt(&cfg)
	}

	layoutOpts := 0
	for _, set := range []bool{cfg.lay != nil, cfg.mc != nil, cfg.bounds != nil} {
		if set {
			layoutOpts++
		}
	}
	if layoutOpts > 1 {
		return nil, fmt.Errorf("dsi: Open with more than one of WithLayout, WithMultiConfig, WithShardBounds")
	}
	if cfg.rx != nil && layoutOpts > 0 {
		return nil, fmt.Errorf("dsi: WithReceiver carries its own layout; layout options conflict")
	}
	if cfg.switchSet && cfg.bounds == nil {
		return nil, fmt.Errorf("dsi: WithSwitchSlots applies to WithShardBounds layouts only")
	}

	rx := cfg.rx
	if rx == nil {
		lay := cfg.lay
		switch {
		case lay != nil:
		case cfg.mc != nil:
			var err error
			lay, err = NewLayout(x, *cfg.mc)
			if err != nil {
				return nil, err
			}
		case cfg.bounds != nil:
			var err error
			lay, err = NewLayout(x, MultiConfig{
				Channels:    len(cfg.bounds),
				Scheduler:   SchedShard,
				SwitchSlots: cfg.switchSlots,
				ShardBounds: cfg.bounds,
			})
			if err != nil {
				return nil, err
			}
		default:
			lay = x.single
		}
		if lay.X != x {
			return nil, fmt.Errorf("dsi: layout belongs to a different index")
		}
		rx = NewSimReceiver(lay, cfg.probe, cfg.loss)
	} else {
		if rx.Layout().X != x {
			return nil, fmt.Errorf("dsi: receiver serves a different index")
		}
		// Without an explicit probe option the receiver keeps (and the
		// session records) its construction-time probe slot, so neither
		// a loss-only Reset here nor an automatic re-tune later silently
		// moves the tune-in to slot 0. The construction loss model is
		// not recoverable through the interface: auto re-tunes of such
		// sessions run error-free, as documented on Session.
		if !cfg.probeSet {
			cfg.probe = rx.Stats().ProbeSlot
		}
		if cfg.probeSet || cfg.loss != nil {
			rx.Reset(cfg.probe, cfg.loss)
		}
	}

	s := &Session{
		c:      newReceiverClient(rx),
		probe:  cfg.probe,
		loss:   cfg.loss,
		chLoss: cfg.chLoss,
		fresh:  true,
	}
	if err := s.installChannelLoss(); err != nil {
		return nil, err
	}
	return s, nil
}

// Session is a reusable query endpoint over one DSI broadcast: it owns
// a client whose knowledge base, scratch buffers, and receiver are
// recycled across queries, so a warm session answers queries without
// dataset-sized allocations (the Append variants allocate nothing at
// steady state). Sessions are not safe for concurrent use; open one
// per worker.
//
// Each query runs from the session's current tune-in: Tune re-tunes
// for the next query, and a query issued without an intervening Tune
// re-tunes automatically at the previous probe slot and loss model
// (for a receiver injected without probe/loss options, its
// construction probe slot and error-free reception — the interface
// cannot recover the receiver's loss model; pass WithLoss or call
// Tune to keep loss across queries).
type Session struct {
	c      *Client
	probe  int64
	loss   *broadcast.LossModel
	chLoss []channelLoss
	fresh  bool
}

// Tune re-tunes the session at the given absolute slot with the given
// loss model, discarding everything the previous query learned. The
// session's channel-loss overrides (WithChannelLoss) are reinstalled.
func (s *Session) Tune(probeSlot int64, loss *broadcast.LossModel) {
	s.probe = probeSlot
	s.loss = loss
	s.c.Reset(probeSlot, loss)
	if err := s.installChannelLoss(); err != nil {
		// Open validated the overrides against this layout; a failure
		// here is a programming error.
		panic(fmt.Sprintf("dsi: session re-tune: %v", err))
	}
	s.fresh = true
}

func (s *Session) installChannelLoss() error {
	for _, cl := range s.chLoss {
		if err := s.c.SetChannelLoss(cl.ch, cl.loss); err != nil {
			return err
		}
	}
	return nil
}

// prepare readies the client for the next query, re-tuning at the
// previous probe parameters when no Tune intervened.
func (s *Session) prepare() {
	if !s.fresh {
		s.Tune(s.probe, s.loss)
	}
	s.fresh = false
}

// Window executes a window query: the IDs of all objects inside w, in
// HC order, with the query's cost metrics.
func (s *Session) Window(w spatial.Rect) ([]int, broadcast.Stats) {
	s.prepare()
	return s.c.Window(w)
}

// WindowAppend is Window appending into dst (which may be nil or a
// recycled buffer): zero allocations at steady state.
func (s *Session) WindowAppend(dst []int, w spatial.Rect) ([]int, broadcast.Stats) {
	s.prepare()
	return s.c.WindowAppend(dst, w)
}

// KNN executes a k-nearest-neighbor query with the given strategy.
func (s *Session) KNN(q spatial.Point, k int, strat Strategy) ([]int, broadcast.Stats) {
	s.prepare()
	return s.c.KNN(q, k, strat)
}

// KNNAppend is KNN appending into dst: zero allocations at steady
// state.
func (s *Session) KNNAppend(dst []int, q spatial.Point, k int, strat Strategy) ([]int, broadcast.Stats) {
	s.prepare()
	return s.c.KNNAppend(dst, q, k, strat)
}

// Point executes a point query.
func (s *Session) Point(p spatial.Point) (id int, found bool, stats broadcast.Stats) {
	s.prepare()
	return s.c.Point(p)
}

// SetChannelLoss overrides the loss model on one channel for the next
// query only (the Tune after it clears it; the WithChannelLoss option
// persists instead). When the session would re-tune automatically
// before that query, the re-tune happens here first so it cannot wipe
// the override.
func (s *Session) SetChannelLoss(ch int, loss *broadcast.LossModel) error {
	if !s.fresh {
		s.Tune(s.probe, s.loss)
	}
	return s.c.SetChannelLoss(ch, loss)
}

// Stats returns the cost metrics of the current query so far.
func (s *Session) Stats() broadcast.Stats { return s.c.Stats() }

// Layout returns the channel layout the session currently runs over
// (it advances when a directory swap re-seeds the client).
func (s *Session) Layout() *Layout { return s.c.Layout() }

// Client exposes the session's underlying client for capabilities the
// facade does not wrap (tracing, EEF, scheduled re-syncs).
func (s *Session) Client() *Client { return s.c }

package dsi

import (
	"math/rand"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

// paperDataset reconstructs the paper's running example: eight objects
// at HC values {6, 11, 17, 27, 32, 40, 51, 61} on the order-3 curve of
// Figure 2 (O6, O11, ..., O61).
func paperDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	c := dataset.Uniform(1, 3, 1).Curve // any order-3 curve
	hcs := []uint64{6, 11, 17, 27, 32, 40, 51, 61}
	objs := make([]dataset.Object, len(hcs))
	for i, hc := range hcs {
		x, y := c.Decode(hc)
		objs[i] = dataset.Object{ID: i, P: spatial.Point{X: x, Y: y}, HC: hc}
	}
	return &dataset.Dataset{Curve: c, Objects: objs, Name: "paper-example"}
}

func TestPaperRunningExampleKNN(t *testing.T) {
	// Paper section 3.4 (Figures 6 and 7): a client at the spot with HC
	// value 33 asks for its 3 nearest neighbors; the answer is
	// O32, O40 and O51 under every strategy and broadcast organization.
	ds := paperDataset(t)
	qx, qy := ds.Curve.Decode(33)
	q := spatial.Point{X: qx, Y: qy}

	wantHC := map[uint64]bool{32: true, 40: true, 51: true}
	check := func(name string, ids []int) {
		t.Helper()
		if len(ids) != 3 {
			t.Fatalf("%s: got %d neighbors", name, len(ids))
		}
		for _, id := range ids {
			if !wantHC[ds.Objects[id].HC] {
				t.Fatalf("%s: returned O%d, want {O32,O40,O51}", name, ds.Objects[id].HC)
			}
		}
	}

	// Ground truth first.
	brute, _ := ds.KNNBrute(q, 3)
	check("brute force", brute)

	for _, cfg := range []Config{{}, {Segments: 2}} {
		x, err := Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []Strategy{Conservative, Aggressive} {
			// The paper's client tunes in just before the frame of O6;
			// also sweep every other frame boundary.
			for pos := 0; pos < x.NF; pos++ {
				c := NewClient(x, int64(x.FrameStartSlot(pos)), nil)
				ids, _ := c.KNN(q, 3, strat)
				check(x.String()+"/"+strat.String(), ids)
			}
		}
	}
}

func TestPaperRunningExampleEEF(t *testing.T) {
	// Section 3.2's example: the index table of O6's frame points at
	// the frames of O11 (next), O17 (second) and O32 (fourth) on the
	// original broadcast with nF = 8 — reproduced with the unit-factor
	// sizing whose base stays 2.
	ds := paperDataset(t)
	x, err := Build(ds, Config{Sizing: SizingUnitFactor})
	if err != nil {
		t.Fatal(err)
	}
	if x.NF != 8 || x.E != 3 {
		t.Fatalf("nF=%d E=%d, want 8/3 (the paper's running example)", x.NF, x.E)
	}
	tab := x.TableAt(0) // the frame of O6
	wantHC := []uint64{11, 17, 32}
	for i, e := range tab.Entries {
		if e.MinHC != wantHC[i] {
			t.Fatalf("entry %d points at HC %d, want %d (paper Figure 4)", i, e.MinHC, wantHC[i])
		}
	}
	// EEF from anywhere must reach each object's frame.
	for _, o := range ds.Objects {
		c := NewClient(x, 3, nil)
		frame, exists, _ := c.EEF(o.HC)
		if !exists || frame != o.ID {
			t.Fatalf("EEF(O%d) = (frame %d, %v)", o.HC, frame, exists)
		}
	}
	// O28 and O31 do not exist (the aggressive example rules them out).
	for _, hc := range []uint64{28, 31} {
		c := NewClient(x, 5, nil)
		if _, exists, _ := c.EEF(hc); exists {
			t.Fatalf("EEF(O%d) found a nonexistent object", hc)
		}
	}
}

func TestPaperReorganizedBroadcastOrder(t *testing.T) {
	// Figure 7: the two-segment reorganization broadcasts
	// O6 O32 O11 O40 O17 O51 O27 O61.
	ds := paperDataset(t)
	x, err := Build(ds, Config{Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{6, 32, 11, 40, 17, 51, 27, 61}
	for pos, hc := range want {
		if got := x.MinHC(x.PosToFrame(pos)); got != hc {
			t.Fatalf("position %d broadcasts O%d, want O%d", pos, got, hc)
		}
	}
}

// TestTorture runs a large randomized cross-check of every query type
// against brute force over random datasets, configurations, probe
// positions and loss processes. Skipped with -short.
func TestTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("torture test skipped in short mode")
	}
	rng := rand.New(rand.NewSource(20260612))
	for round := 0; round < 25; round++ {
		n := rng.Intn(400) + 20
		order := uint(rng.Intn(3) + 5) // 5..7
		ds := dataset.Uniform(n, order, rng.Int63())
		side := int(ds.Curve.Side())
		cfg := Config{
			Capacity: []int{32, 64, 128, 256, 512}[rng.Intn(5)],
			Segments: []int{1, 1, 2, 2, 3, 4}[rng.Intn(6)],
			Sizing:   []Sizing{SizingAuto, SizingAuto, SizingUnitFactor, SizingPaperTable}[rng.Intn(4)],
		}
		if cfg.Sizing == SizingPaperTable && cfg.Capacity < 64 {
			cfg.Capacity = 64
		}
		x, err := Build(ds, cfg)
		if err != nil {
			t.Fatalf("round %d: %v (cfg %+v)", round, err, cfg)
		}
		theta := []float64{0, 0, 0, 0.3, 0.6}[rng.Intn(5)]
		for q := 0; q < 6; q++ {
			loss := lossFor(theta, rng.Int63())
			probe := rng.Int63n(int64(x.Prog.Len()))
			switch rng.Intn(3) {
			case 0:
				w := spatial.ClampedWindow(uint32(rng.Intn(side)), uint32(rng.Intn(side)),
					uint32(rng.Intn(side/3)+1), uint32(side))
				got, st := NewClient(x, probe, loss).Window(w)
				if !equalInts(got, ds.WindowBrute(w)) {
					t.Fatalf("round %d: window mismatch (cfg %+v theta %v)", round, cfg, theta)
				}
				checkStats(t, st)
			case 1:
				pt := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
				k := rng.Intn(8) + 1
				strat := Strategy(rng.Intn(2))
				got, st := NewClient(x, probe, loss).KNN(pt, k, strat)
				want, _ := ds.KNNBrute(pt, k)
				if !equalFloats(knnDistances(ds, pt, got), knnDistances(ds, pt, want)) {
					t.Fatalf("round %d: kNN mismatch (cfg %+v theta %v)", round, cfg, theta)
				}
				checkStats(t, st)
			default:
				o := ds.Objects[rng.Intn(n)]
				id, found, st := NewClient(x, probe, loss).Point(o.P)
				if !found || id != o.ID {
					t.Fatalf("round %d: point query missed (cfg %+v theta %v)", round, cfg, theta)
				}
				checkStats(t, st)
			}
		}
	}
}

func checkStats(t *testing.T, st interface {
	LatencyBytes() int64
	TuningBytes() int64
}) {
	t.Helper()
	if st.TuningBytes() > st.LatencyBytes() || st.LatencyBytes() <= 0 {
		t.Fatalf("implausible stats: latency %d, tuning %d", st.LatencyBytes(), st.TuningBytes())
	}
}

// lossFor returns a loss model for theta, or nil for a clean channel.
func lossFor(theta float64, seed int64) *broadcast.LossModel {
	if theta == 0 {
		return nil
	}
	return broadcast.NewLossModel(theta, seed)
}

package dsi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dsi/internal/dataset"
	"dsi/internal/hilbert"
	"dsi/internal/spatial"
)

func TestArrivalDelta(t *testing.T) {
	// Positions of the form j + m*i, i in [iLo, iHi]; delta must be the
	// smallest in [1, nf] with nowPos+delta such a position.
	cases := []struct {
		nowPos, j, m, iLo, iHi, nf, want int
	}{
		{0, 0, 1, 1, 5, 10, 1},  // next position is 1
		{3, 0, 1, 1, 2, 10, 8},  // gap passed: wrap to position 1
		{2, 0, 1, 2, 5, 10, 1},  // currently at gap edge: next is 3
		{5, 0, 2, 0, 4, 10, 1},  // even positions: 6 is next
		{6, 0, 2, 0, 4, 10, 2},  // at 6: next even position is 8
		{8, 0, 2, 0, 2, 10, 2},  // positions 0,2,4: from 8 wrap to 0
		{9, 1, 2, 0, 4, 10, 2},  // odd positions 1..9: from 9 wrap to 1... delta 2
		{0, 1, 2, 0, 0, 10, 1},  // single position 1
		{1, 1, 2, 0, 0, 10, 10}, // at it already: full wrap
	}
	for _, tc := range cases {
		got := ArrivalDelta(tc.nowPos, tc.j+tc.m*tc.iLo, tc.j+tc.m*tc.iHi, tc.m, tc.nf)
		if got != tc.want {
			t.Errorf("ArrivalDelta(now=%d,j=%d,m=%d,i=[%d,%d],nf=%d) = %d, want %d",
				tc.nowPos, tc.j, tc.m, tc.iLo, tc.iHi, tc.nf, got, tc.want)
		}
	}
}

func TestArrivalDeltaQuick(t *testing.T) {
	f := func(now uint8, j, m uint8, iLo, span uint8, nfRaw uint8) bool {
		mm := int(m)%4 + 1
		nf := int(nfRaw)%50 + mm*10
		jj := int(j) % mm
		maxI := (nf - jj - 1) / mm
		lo := int(iLo) % (maxI + 1)
		hi := lo + int(span)%(maxI-lo+1)
		nowPos := int(now) % nf
		d := ArrivalDelta(nowPos, jj+mm*lo, jj+mm*hi, mm, nf)
		if d < 1 || d > nf {
			return false
		}
		pos := (nowPos + d) % nf
		if pos%mm != jj {
			return false
		}
		i := (pos - jj) / mm
		if i < lo || i > hi {
			return false
		}
		// Minimality: no smaller delta lands in the gap.
		for dd := 1; dd < d; dd++ {
			p := (nowPos + dd) % nf
			if p%mm == jj {
				if ii := (p - jj) / mm; ii >= lo && ii <= hi {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// teachAll feeds every frame fact into the knowledge base.
func teachAll(kb *knowledge, x *Index) {
	for f := 0; f < x.NF; f++ {
		kb.addFrameFact(f, x.MinHC(f))
	}
}

func TestKnowledgeResolvedRequiresRetrieval(t *testing.T) {
	ds := dataset.Uniform(50, 6, 71)
	x, _ := Build(ds, Config{})
	kb := newKnowledge(x)
	teachAll(kb, x)
	o := ds.Objects[20]
	targets := []hilbert.Range{{Lo: o.HC, Hi: o.HC + 1}}
	if kb.resolved(targets) {
		t.Fatal("resolved before the object was retrieved")
	}
	kb.markRetrieved(o.ID)
	if !kb.resolved(targets) {
		t.Fatal("not resolved after retrieval with full knowledge")
	}
}

func TestKnowledgeResolvedEmptyGap(t *testing.T) {
	// The paper's key inference: two known adjacent frames rule out
	// everything between their HC values.
	ds := dataset.Uniform(50, 6, 73)
	x, _ := Build(ds, Config{})
	kb := newKnowledge(x)
	kb.addFrameFact(10, x.MinHC(10))
	kb.addFrameFact(11, x.MinHC(11))
	lo := x.MinHC(10) + 1
	hi := x.MinHC(11)
	if lo < hi && !kb.resolved([]hilbert.Range{{Lo: lo, Hi: hi}}) {
		t.Fatal("adjacent known frames must resolve the gap between them")
	}
	// A non-adjacent pair must not resolve its gap.
	kb2 := newKnowledge(x)
	kb2.addFrameFact(10, x.MinHC(10))
	kb2.addFrameFact(13, x.MinHC(13))
	gapLo := x.MinHC(10) + 1
	gapHi := x.MinHC(13)
	if kb2.resolved([]hilbert.Range{{Lo: gapLo, Hi: gapHi}}) {
		t.Fatal("gap with unknown frames wrongly resolved")
	}
}

func TestKnowledgeDuplicateFactsIgnored(t *testing.T) {
	ds := dataset.Uniform(30, 5, 75)
	x, _ := Build(ds, Config{})
	kb := newKnowledge(x)
	kb.addFrameFact(5, x.MinHC(5))
	n := kb.known[0].Len()
	kb.addFrameFact(5, x.MinHC(5))
	if kb.known[0].Len() != n {
		t.Fatal("duplicate fact extended the known list")
	}
	if got := len(kb.drainNew()); got != 2 { // catalog seed + frame 5
		t.Fatalf("drainNew returned %d objects, want 2", got)
	}
	if kb.drainNew() != nil {
		t.Fatal("drainNew must be empty after draining")
	}
}

func TestNextUsefulOrdersByArrival(t *testing.T) {
	ds := dataset.Uniform(60, 6, 77)
	x, _ := Build(ds, Config{})
	kb := newKnowledge(x)
	teachAll(kb, x)
	// Two unretrieved objects: the one broadcast sooner (relative to
	// nowPos) must be chosen.
	a, b := 20, 40
	targets := []hilbert.Range{
		{Lo: ds.Objects[a].HC, Hi: ds.Objects[a].HC + 1},
		{Lo: ds.Objects[b].HC, Hi: ds.Objects[b].HC + 1},
	}
	pos, ok := kb.nextUseful(10, targets)
	if !ok || pos != x.FrameToPos(a) {
		t.Fatalf("nextUseful(10) = (%d,%v), want frame %d's position %d", pos, ok, a, x.FrameToPos(a))
	}
	// From between the two, the later one comes first.
	pos, ok = kb.nextUseful(30, targets)
	if !ok || pos != x.FrameToPos(b) {
		t.Fatalf("nextUseful(30) = (%d,%v), want %d", pos, ok, x.FrameToPos(b))
	}
	// From past both, wrap to the earlier one.
	pos, ok = kb.nextUseful(50, targets)
	if !ok || pos != x.FrameToPos(a) {
		t.Fatalf("nextUseful(50) = (%d,%v), want %d", pos, ok, x.FrameToPos(a))
	}
	// Retrieve both: nothing useful remains.
	kb.markRetrieved(a)
	kb.markRetrieved(b)
	if _, ok := kb.nextUseful(0, targets); ok {
		t.Fatal("nextUseful found work after full retrieval")
	}
}

func TestNextUsefulNeverReturnsResolvedQuick(t *testing.T) {
	ds := dataset.Uniform(40, 6, 79)
	x, _ := Build(ds, Config{Segments: 2})
	f := func(factsRaw []uint8, nowRaw uint8, loRaw, spanRaw uint16) bool {
		kb := newKnowledge(x)
		for _, fr := range factsRaw {
			fid := int(fr) % x.NF
			kb.addFrameFact(fid, x.MinHC(fid))
		}
		lo := uint64(loRaw) % x.DS.Curve.Size()
		hi := lo + uint64(spanRaw)%512 + 1
		if hi > x.DS.Curve.Size() {
			hi = x.DS.Curve.Size()
		}
		targets := []hilbert.Range{{Lo: lo, Hi: hi}}
		pos, ok := kb.nextUseful(int(nowRaw)%x.NF, targets)
		if !ok {
			return kb.resolved(targets)
		}
		return pos >= 0 && pos < x.NF && !kb.resolved(targets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFrameResolvedMultiObject(t *testing.T) {
	ds := dataset.Uniform(100, 6, 81)
	x, err := Build(ds, Config{Sizing: SizingPaperTable, Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	if x.NO < 3 {
		t.Skip("need multi-object frames")
	}
	kb := newKnowledge(x)
	f := 1
	kb.addFrameFact(f, x.MinHC(f))
	first, num := x.FrameObjects(f)
	segHi := x.DS.Curve.Size()
	lo, hi := x.MinHC(f), segHi

	// Only the first object is located: the frame is unresolved for its
	// whole span.
	if kb.frameResolved(f, lo, hi, segHi) {
		t.Fatal("frame with unlocated objects wrongly resolved")
	}
	// Locate and retrieve everything: resolved.
	for t2 := 0; t2 < num; t2++ {
		kb.addHeader(f, t2, ds.Objects[first+t2].HC)
		kb.markRetrieved(first + t2)
	}
	if !kb.frameResolved(f, lo, hi, segHi) {
		t.Fatal("fully retrieved frame not resolved")
	}
	// A range strictly between two located objects' HC values (with no
	// object inside) is resolved even without retrieval.
	kb2 := newKnowledge(x)
	kb2.addFrameFact(f, x.MinHC(f))
	kb2.addHeader(f, 1, ds.Objects[first+1].HC)
	gapLo := ds.Objects[first].HC + 1
	gapHi := ds.Objects[first+1].HC
	if gapLo < gapHi && !kb2.frameResolved(f, gapLo, gapHi, segHi) {
		t.Fatal("empty range between located headers not resolved")
	}
}

func TestInTargetsAndMaxHi(t *testing.T) {
	targets := []hilbert.Range{{Lo: 5, Hi: 10}, {Lo: 20, Hi: 21}, {Lo: 30, Hi: 40}}
	cases := []struct {
		v    uint64
		want bool
	}{
		{4, false}, {5, true}, {9, true}, {10, false},
		{20, true}, {21, false}, {35, true}, {40, false}, {100, false},
	}
	for _, tc := range cases {
		if got := inTargets(targets, tc.v); got != tc.want {
			t.Errorf("inTargets(%d) = %v, want %v", tc.v, got, tc.want)
		}
	}
	if got := maxHi(targets); got != 40 {
		t.Errorf("maxHi = %d, want 40", got)
	}
	if got := maxHi(nil); got != 0 {
		t.Errorf("maxHi(nil) = %d, want 0", got)
	}
}

func TestProbeSyncsToFrameStart(t *testing.T) {
	ds := dataset.Uniform(50, 6, 83)
	x, _ := Build(ds, Config{})
	for _, probe := range []int64{0, 1, int64(x.FramePackets) - 1, int64(x.FramePackets),
		int64(x.Prog.Len()) - 1, 12345} {
		c := NewClient(x, probe, nil)
		p := c.probe()
		if p < 0 || p >= x.NF {
			t.Fatalf("probe from %d landed on position %d", probe, p)
		}
		if c.rx.Pos() != x.FrameStartSlot(p) {
			t.Fatalf("probe from %d: tuner at slot %d, frame %d starts at %d",
				probe, c.rx.Pos(), p, x.FrameStartSlot(p))
		}
		st := c.Stats()
		if st.TuningPackets != 1 {
			t.Fatalf("probe must read exactly one packet, read %d", st.TuningPackets)
		}
	}
}

func TestWantTable(t *testing.T) {
	ds := dataset.Uniform(50, 6, 85)
	x, _ := Build(ds, Config{})
	c := NewClient(x, 0, nil)
	p := 10
	f := x.PosToFrame(p)
	if !c.wantTable(p) {
		t.Fatal("unknown frame must want its table")
	}
	c.kb.addFrameFact(f, x.MinHC(f))
	if !c.wantTable(p) {
		t.Fatal("frame with unknown successor must still want the table")
	}
	c.kb.addFrameFact(f+1, x.MinHC(f+1))
	if c.wantTable(p) {
		t.Fatal("fully known neighborhood must skip the table")
	}
	// The last frame of a segment has no successor to learn.
	last := x.NF - 1
	c.kb.addFrameFact(last, x.MinHC(last))
	if c.wantTable(x.FrameToPos(last)) {
		t.Fatal("known last frame must not want a table")
	}
}

func TestKnowledgeLocateQueuesEachObjectOnce(t *testing.T) {
	ds := dataset.Uniform(30, 5, 87)
	x, _ := Build(ds, Config{})
	kb := newKnowledge(x)
	kb.drainNew()
	kb.locate(7, ds.Objects[7].HC)
	kb.locate(7, ds.Objects[7].HC)
	if got := kb.drainNew(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("drainNew = %v, want [7]", got)
	}
}

func TestWalkTargetsStopsEarly(t *testing.T) {
	ds := dataset.Uniform(80, 6, 89)
	x, _ := Build(ds, Config{})
	kb := newKnowledge(x)
	teachAll(kb, x)
	calls := 0
	kb.walkTargets(0, []hilbert.Range{{Lo: 0, Hi: x.DS.Curve.Size()}}, nil, nil, func(_, _, _ int) bool {
		calls++
		return false // stop immediately
	})
	if calls != 1 {
		t.Fatalf("walkTargets made %d calls after visit returned false", calls)
	}
}

func TestSpanHC(t *testing.T) {
	ds := dataset.Uniform(64, 6, 91)
	x, _ := Build(ds, Config{Segments: 4})
	kb := newKnowledge(x)
	var prevHi uint64
	for j := 0; j < 4; j++ {
		lo, hi := kb.spanHC(j)
		if j == 0 && lo != x.Splits[0] {
			t.Errorf("segment 0 span starts at %d", lo)
		}
		if j > 0 && lo != prevHi {
			t.Errorf("segment %d span not contiguous: %d vs %d", j, lo, prevHi)
		}
		if lo >= hi {
			t.Errorf("segment %d span empty", j)
		}
		prevHi = hi
	}
	if prevHi != x.DS.Curve.Size() {
		t.Errorf("last span ends at %d, want curve size", prevHi)
	}
}

func TestEngineTerminatesFromRandomKnowledge(t *testing.T) {
	// Robustness: whatever partial knowledge the client starts with,
	// a window query must terminate and be correct.
	ds := dataset.Uniform(80, 6, 93)
	x, _ := Build(ds, Config{Segments: 2})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 20; i++ {
		c := NewClient(x, rng.Int63n(int64(x.Prog.Len())), nil)
		// Pre-seed arbitrary facts (a client that watched earlier
		// traffic).
		for j := 0; j < rng.Intn(20); j++ {
			fid := rng.Intn(x.NF)
			c.kb.addFrameFact(fid, x.MinHC(fid))
		}
		w := ds.Objects[rng.Intn(ds.N())].P
		win := hilbertWindow(w.X, w.Y)
		got, _ := c.Window(win)
		want := ds.WindowBrute(win)
		if !equalInts(got, want) {
			t.Fatalf("pre-seeded window mismatch")
		}
	}
}

// hilbertWindow builds a small window around a point, clamped to the
// order-6 grid used in these tests.
func hilbertWindow(cx, cy uint32) (w spatial.Rect) {
	const side = 64
	x0 := int64(cx) - 5
	y0 := int64(cy) - 5
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	x1 := x0 + 10
	y1 := y0 + 10
	if x1 >= side {
		x1 = side - 1
	}
	if y1 >= side {
		y1 = side - 1
	}
	return spatial.Rect{MinX: uint32(x0), MinY: uint32(y0), MaxX: uint32(x1), MaxY: uint32(y1)}
}

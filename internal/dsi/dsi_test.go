package dsi

import (
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
)

func buildT(t testing.TB, n int, order uint, seed int64, cfg Config) *Index {
	t.Helper()
	ds := dataset.Uniform(n, order, seed)
	x, err := Build(ds, cfg)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return x
}

func TestBuildDefaults(t *testing.T) {
	x := buildT(t, 200, 6, 1, Config{})
	if x.Cfg.Capacity != 64 || x.Cfg.IndexBase != 2 || x.Cfg.Segments != 1 {
		t.Errorf("defaults not applied: %+v", x.Cfg)
	}
	if x.NO != 1 || x.NF != 200 {
		t.Errorf("auto sizing wrong: NO=%d NF=%d", x.NO, x.NF)
	}
	// Auto sizing at 64B: (64-16)/18 = 2 entries fit; smallest base
	// with r^2 >= 200 is 15.
	if x.E != 2 || x.Base != 15 {
		t.Errorf("E=%d Base=%d, want 2/15", x.E, x.Base)
	}
	// Table: 16 own + 2*18 = 52 bytes -> one packet of 64.
	if x.TableBytes() != 52 || x.TablePackets != 1 {
		t.Errorf("table sizing: %d bytes, %d packets", x.TableBytes(), x.TablePackets)
	}
	if x.ObjPackets != 16 {
		t.Errorf("ObjPackets = %d, want 16", x.ObjPackets)
	}
	if x.FramePackets != 17 {
		t.Errorf("FramePackets = %d, want 17", x.FramePackets)
	}
	if x.Prog.Len() != 200*17 {
		t.Errorf("program length = %d", x.Prog.Len())
	}
}

func TestBuildUnitFactorSizing(t *testing.T) {
	x := buildT(t, 200, 6, 1, Config{Sizing: SizingUnitFactor})
	// E must satisfy 2^E >= 200, E = 8.
	if x.E != 8 || x.Base != 2 {
		t.Errorf("E=%d Base=%d, want 8/2", x.E, x.Base)
	}
	// Table: 16 own + 8*18 = 160 bytes -> 3 packets of 64.
	if x.TableBytes() != 160 || x.TablePackets != 3 {
		t.Errorf("table sizing: %d bytes, %d packets", x.TableBytes(), x.TablePackets)
	}
	if x.FramePackets != 19 {
		t.Errorf("FramePackets = %d, want 19", x.FramePackets)
	}
}

func TestBuildErrors(t *testing.T) {
	ds := dataset.Uniform(100, 6, 1)
	cases := []Config{
		{Capacity: 4},                            // too small
		{IndexBase: 1},                           // bad base
		{Segments: -1},                           // bad segments
		{ObjectBytes: -1},                        // bad object size
		{Sizing: SizingPaperTable, Capacity: 17}, // table cannot fit one entry beside own HC
		{Sizing: Sizing(99)},                     // unknown sizing
	}
	for i, cfg := range cases {
		if _, err := Build(ds, cfg); err == nil {
			t.Errorf("case %d (%+v): no error", i, cfg)
		}
	}
	empty := &dataset.Dataset{Curve: ds.Curve}
	if _, err := Build(empty, Config{}); err == nil {
		t.Error("empty dataset: no error")
	}
}

func TestBuildAnySegmentCount(t *testing.T) {
	// Segment counts are not tied to the index base: the navigation
	// engine is fact-driven and works with any interleaving.
	for _, m := range []int{1, 2, 3, 4, 5, 8} {
		if _, err := Build(dataset.Uniform(100, 6, 1), Config{Segments: m}); err != nil {
			t.Errorf("Segments=%d rejected: %v", m, err)
		}
	}
	if _, err := Build(dataset.Uniform(100, 6, 1), Config{IndexBase: 4, Segments: 16}); err != nil {
		t.Errorf("base 4, m=16 rejected: %v", err)
	}
}

func TestBaseToCover(t *testing.T) {
	cases := []struct{ nf, e, min, want int }{
		{10000, 2, 2, 100},
		{10000, 3, 2, 22}, // 22^3 = 10648
		{10000, 13, 2, 3}, // 2^13 = 8192 < 10000, 3^13 huge
		{10000, 14, 2, 2}, // 2^14 = 16384
		{200, 2, 2, 15},   // 15^2 = 225
		{8, 3, 2, 2},
		{100, 2, 4, 10}, // min base respected via growth
		{100, 4, 4, 4},  // 4^4 = 256 >= 100
		{1, 2, 2, 2},
	}
	for _, tc := range cases {
		if got := baseToCover(tc.nf, tc.e, tc.min); got != tc.want {
			t.Errorf("baseToCover(%d,%d,%d) = %d, want %d", tc.nf, tc.e, tc.min, got, tc.want)
		}
	}
}

func TestEntriesToCover(t *testing.T) {
	cases := []struct{ nf, base, want int }{
		{2, 2, 1},
		{3, 2, 2},
		{8, 2, 3}, // the paper's running example: nF=8 -> 3 entries
		{9, 2, 4},
		{10000, 2, 14},
		{10000, 4, 7},
		{1, 2, 1},
	}
	for _, tc := range cases {
		if got := entriesToCover(tc.nf, tc.base); got != tc.want {
			t.Errorf("entriesToCover(%d,%d) = %d, want %d", tc.nf, tc.base, got, tc.want)
		}
	}
}

func TestPaperTableSizing(t *testing.T) {
	// Paper sizing at capacity 64: (64-16)/18 = 2 entries fit, so
	// nF = 2^2 = 4 frames for 100 objects -> 25 objects per frame.
	x := buildT(t, 100, 6, 1, Config{Sizing: SizingPaperTable, Capacity: 64})
	if x.TablePackets != 1 {
		t.Errorf("paper sizing must use a one-packet table, got %d", x.TablePackets)
	}
	if x.NF != 4 || x.NO != 25 {
		t.Errorf("NF=%d NO=%d, want 4/25", x.NF, x.NO)
	}
	if x.TableBytes() > x.Cfg.Capacity {
		t.Errorf("table %dB exceeds packet %dB", x.TableBytes(), x.Cfg.Capacity)
	}
	// At capacity 512: (512-16)/18 = 27 entries fit; 2^27 > 100 so
	// nF = 100, NO = 1.
	x = buildT(t, 100, 6, 1, Config{Sizing: SizingPaperTable, Capacity: 512})
	if x.NF != 100 || x.NO != 1 {
		t.Errorf("NF=%d NO=%d, want 100/1", x.NF, x.NO)
	}
}

func TestPosFrameRoundTrip(t *testing.T) {
	for _, m := range []int{1, 2, 4} {
		for _, n := range []int{97, 100, 128} { // odd sizes exercise uneven segments
			x := buildT(t, n, 6, 2, Config{Segments: m})
			seen := make([]bool, x.NF)
			for pos := 0; pos < x.NF; pos++ {
				f := x.PosToFrame(pos)
				if f < 0 || f >= x.NF {
					t.Fatalf("m=%d n=%d: PosToFrame(%d) = %d out of range", m, n, pos, f)
				}
				if seen[f] {
					t.Fatalf("m=%d n=%d: frame %d broadcast twice", m, n, f)
				}
				seen[f] = true
				if back := x.FrameToPos(f); back != pos {
					t.Fatalf("m=%d n=%d: FrameToPos(PosToFrame(%d)) = %d", m, n, pos, back)
				}
			}
		}
	}
}

func TestInterleavingMatchesPaperFigure7(t *testing.T) {
	// With nF=8 and m=2 the broadcast order must interleave the two
	// halves: frames 0,4,1,5,2,6,3,7 (paper Figure 7 broadcasts
	// O6 O32 O11 O40 O17 O51 O27 O61).
	x := buildT(t, 8, 3, 3, Config{Segments: 2})
	want := []int{0, 4, 1, 5, 2, 6, 3, 7}
	for pos, f := range want {
		if got := x.PosToFrame(pos); got != f {
			t.Errorf("PosToFrame(%d) = %d, want %d", pos, got, f)
		}
	}
}

func TestSegmentsAscendingHCWithinSegment(t *testing.T) {
	x := buildT(t, 100, 6, 5, Config{Segments: 4})
	for j := 0; j < 4; j++ {
		var prev uint64
		firstSeen := false
		for pos := j; pos < x.NF; pos += 4 {
			hc := x.MinHC(x.PosToFrame(pos))
			if firstSeen && hc <= prev {
				t.Fatalf("segment %d not ascending at pos %d", j, pos)
			}
			prev, firstSeen = hc, true
		}
	}
}

func TestHCSegment(t *testing.T) {
	x := buildT(t, 100, 6, 5, Config{Segments: 4})
	for f := 0; f < x.NF; f++ {
		j := x.FrameSegment(f)
		if got := x.HCSegment(x.MinHC(f)); got != j {
			t.Errorf("HCSegment(minHC of frame %d) = %d, want %d", f, got, j)
		}
	}
	if got := x.HCSegment(0); got != 0 {
		t.Errorf("HCSegment(0) = %d", got)
	}
}

func TestTableAtMatchesLayout(t *testing.T) {
	x := buildT(t, 64, 6, 7, Config{Segments: 2})
	for pos := 0; pos < x.NF; pos++ {
		tab := x.TableAt(pos)
		if tab.OwnHC != x.MinHC(x.PosToFrame(pos)) {
			t.Fatalf("pos %d: own HC mismatch", pos)
		}
		if len(tab.Entries) != x.E {
			t.Fatalf("pos %d: %d entries, want %d", pos, len(tab.Entries), x.E)
		}
		dist := 1
		for i, e := range tab.Entries {
			wantPos := (pos + dist) % x.NF
			if e.TargetPos != wantPos {
				t.Fatalf("pos %d entry %d: target %d, want %d", pos, i, e.TargetPos, wantPos)
			}
			if e.MinHC != x.MinHC(x.PosToFrame(wantPos)) {
				t.Fatalf("pos %d entry %d: HC mismatch", pos, i)
			}
			dist *= x.Base
		}
	}
}

func TestProgramSlots(t *testing.T) {
	x := buildT(t, 50, 6, 9, Config{})
	for pos := 0; pos < x.NF; pos++ {
		start := x.FrameStartSlot(pos)
		for p := 0; p < x.FramePackets; p++ {
			s := x.Prog.At(start + p)
			if int(s.Owner) != x.PosToFrame(pos) {
				t.Fatalf("slot %d: owner %d, want frame %d", start+p, s.Owner, x.PosToFrame(pos))
			}
			wantKind := broadcast.KindData
			if p < x.TablePackets {
				wantKind = broadcast.KindIndex
			}
			if s.Kind != wantKind {
				t.Fatalf("slot %d: kind %v, want %v", start+p, s.Kind, wantKind)
			}
		}
	}
}

func TestFrameObjectsPartialLastFrame(t *testing.T) {
	// 103 objects with paper-table sizing: NO > 1 and the last frame is
	// partial.
	ds := dataset.Uniform(103, 6, 4)
	x, err := Build(ds, Config{Sizing: SizingPaperTable, Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for f := 0; f < x.NF; f++ {
		first, num := x.FrameObjects(f)
		if first != total {
			t.Fatalf("frame %d: first=%d, want %d", f, first, total)
		}
		if num <= 0 || num > x.NO {
			t.Fatalf("frame %d: num=%d", f, num)
		}
		total += num
	}
	if total != 103 {
		t.Errorf("frames cover %d objects, want 103", total)
	}
}

func TestIndexOverheadAndString(t *testing.T) {
	x := buildT(t, 100, 6, 1, Config{})
	if x.IndexOverheadBytes() != int64(100*x.TablePackets*64) {
		t.Errorf("IndexOverheadBytes = %d", x.IndexOverheadBytes())
	}
	if x.CycleBytes() != x.Prog.CycleBytes() {
		t.Error("CycleBytes mismatch")
	}
	if s := x.String(); s == "" {
		t.Error("empty String")
	}
	if SizingUnitFactor.String() != "unit-factor" || SizingPaperTable.String() != "paper-table" {
		t.Error("Sizing strings")
	}
	if Sizing(9).String() == "" {
		t.Error("unknown sizing string")
	}
}

func TestBitsFor(t *testing.T) {
	cases := []struct{ n, want int }{{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}}
	for _, tc := range cases {
		if got := bitsFor(tc.n); got != tc.want {
			t.Errorf("bitsFor(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestStrategyString(t *testing.T) {
	if Conservative.String() != "conservative" || Aggressive.String() != "aggressive" {
		t.Error("strategy strings")
	}
	if Strategy(9).String() != "strategy?" {
		t.Error("unknown strategy string")
	}
}

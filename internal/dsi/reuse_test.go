package dsi

import (
	"math/rand"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/spatial"
)

// TestResetClientMatchesFresh is the client-reuse contract: across
// random seeds, strategies, loss models and broadcast configurations, a
// Reset client must answer window and kNN queries with exactly the same
// results AND exactly the same cost metrics (tuning time, access
// latency) as a freshly constructed client.
func TestResetClientMatchesFresh(t *testing.T) {
	configs := []Config{
		{},
		{Segments: 2},
		{Capacity: 512, Segments: 2},
		{Capacity: 64, Sizing: SizingPaperTable},
	}
	for ci, cfg := range configs {
		ds := dataset.Uniform(400, 7, int64(100+ci))
		x, err := Build(ds, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(1000 + ci)))
		side := int(ds.Curve.Side())

		// One long-lived client replays every trial; dirty it with an
		// unrelated query before each comparison so Reset has real state
		// to clear.
		reused := NewClient(x, 0, nil)
		var buf []int

		for trial := 0; trial < 30; trial++ {
			probe := rng.Int63n(int64(x.Prog.Len()))
			theta := 0.0
			if trial%3 == 1 {
				theta = 0.4
			}
			lossSeed := rng.Int63()
			mkLoss := func() *broadcast.LossModel {
				if theta == 0 {
					return nil
				}
				return broadcast.NewLossModel(theta, lossSeed)
			}

			// Dirty the reused client.
			reused.Reset(rng.Int63n(int64(x.Prog.Len())), nil)
			qd := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
			reused.KNN(qd, 3, Conservative)

			switch trial % 2 {
			case 0:
				w := randWindow(rng, side)
				fresh := NewClient(x, probe, mkLoss())
				wantIDs, wantSt := fresh.Window(w)

				reused.Reset(probe, mkLoss())
				buf, _ = reused.WindowAppend(buf[:0], w)
				gotSt := reused.Stats()
				if !equalInts(buf, wantIDs) {
					t.Fatalf("cfg %d trial %d: window IDs %v != fresh %v", ci, trial, buf, wantIDs)
				}
				if gotSt != wantSt {
					t.Fatalf("cfg %d trial %d: window stats %+v != fresh %+v", ci, trial, gotSt, wantSt)
				}
			case 1:
				q := spatial.Point{X: uint32(rng.Intn(side)), Y: uint32(rng.Intn(side))}
				k := 1 + rng.Intn(10)
				strat := Conservative
				if cfg.Segments <= 1 && trial%4 == 1 {
					strat = Aggressive
				}
				fresh := NewClient(x, probe, mkLoss())
				wantIDs, wantSt := fresh.KNN(q, k, strat)

				reused.Reset(probe, mkLoss())
				buf, _ = reused.KNNAppend(buf[:0], q, k, strat)
				gotSt := reused.Stats()
				if !equalInts(buf, wantIDs) {
					t.Fatalf("cfg %d trial %d: kNN IDs %v != fresh %v", ci, trial, buf, wantIDs)
				}
				if gotSt != wantSt {
					t.Fatalf("cfg %d trial %d: kNN stats %+v != fresh %+v", ci, trial, gotSt, wantSt)
				}
			}
		}
	}
}

// TestResetClientMatchesFreshEEF extends the reuse contract to the
// point-query forwarding path.
func TestResetClientMatchesFreshEEF(t *testing.T) {
	ds := dataset.Uniform(200, 6, 55)
	x, err := Build(ds, Config{Segments: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	reused := NewClient(x, 0, nil)
	for trial := 0; trial < 20; trial++ {
		probe := rng.Int63n(int64(x.Prog.Len()))
		hc := ds.Objects[rng.Intn(ds.N())].HC

		fresh := NewClient(x, probe, nil)
		wantF, wantEx, wantSt := fresh.EEF(hc)

		reused.Reset(probe, nil)
		gotF, gotEx, gotSt := reused.EEF(hc)
		if gotF != wantF || gotEx != wantEx || gotSt != wantSt {
			t.Fatalf("trial %d: EEF (%d,%v,%+v) != fresh (%d,%v,%+v)",
				trial, gotF, gotEx, gotSt, wantF, wantEx, wantSt)
		}
	}
}

func randWindow(rng *rand.Rand, side int) spatial.Rect {
	cx, cy := rng.Intn(side), rng.Intn(side)
	win := 1 + rng.Intn(side/4)
	return spatial.ClampedWindow(uint32(cx), uint32(cy), uint32(win), uint32(side))
}

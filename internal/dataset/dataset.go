// Package dataset generates the workload datasets used in the paper's
// evaluation.
//
// Two datasets are provided:
//
//   - UNIFORM: points drawn uniformly from the grid (the paper uses
//     10,000 points in a square Euclidean space).
//   - REAL-like: the paper uses 5,848 cities and villages of Greece from
//     rtreeportal.org. That file is proprietary/offline, so we substitute
//     a seeded synthetic clustered dataset of the same cardinality: a
//     Gaussian mixture of "city" clusters with Zipf-weighted populations
//     plus isolated "villages". The substitution preserves the property
//     the experiment exercises — heavy spatial skew.
//
// All generators snap points to distinct Hilbert cells (the paper assumes
// a 1-1 correspondence between coordinates and HC values) and return
// objects sorted by HC value, which is the broadcast order.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"dsi/internal/hilbert"
	"dsi/internal/spatial"
)

// Object is one broadcast data object: a spatial point and its HC value.
// ID is the object's rank in HC order (assigned by the generators).
type Object struct {
	ID int
	P  spatial.Point
	HC uint64
}

// Dataset is a set of objects on a Hilbert grid, sorted by HC value.
//
// Index builders derive the same intermediate products from a dataset
// regardless of the packet capacity they are built for — the STR
// packing's x-sorted object order, the B+-tree's key extraction. Those
// are cached here (lazily, thread-safe), so an experiment sweeping many
// capacities over one dataset pays for them once instead of once per
// figure point.
type Dataset struct {
	Curve   hilbert.Curve
	Objects []Object
	Name    string

	xOrderOnce sync.Once
	xOrder     []int

	hcKeysOnce sync.Once
	hcKeys     []uint64
	hcVals     []int
}

// N returns the number of objects.
func (d *Dataset) N() int { return len(d.Objects) }

// Checksum returns an FNV-1a hash of the object cells in HC order.
// Two datasets with equal checksums build identical indexes (the
// build is a pure function of the cell sequence), so a network client
// can verify its locally derived catalog matches the station's before
// trusting any decoded pointer.
func (d *Dataset) Checksum() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(d.Curve.Order()))
	for i := range d.Objects {
		mix(uint64(d.Objects[i].P.X))
		mix(uint64(d.Objects[i].P.Y))
	}
	return h
}

// MinOrderFor returns the smallest curve order whose grid has at least
// slack*n cells, so that n distinct cells can be occupied with room to
// spare. The paper picks the curve order from the object density the
// same way ("HC of higher order is needed for denser object
// distribution").
func MinOrderFor(n int, slack float64) uint {
	if n <= 0 {
		return 1
	}
	need := float64(n) * slack
	for order := uint(1); order <= hilbert.MaxOrder; order++ {
		if math.Pow(4, float64(order)) >= need {
			return order
		}
	}
	return hilbert.MaxOrder
}

// Uniform generates n objects uniformly distributed over the grid of the
// given curve order, each on a distinct cell. It panics if the grid
// cannot hold n distinct cells.
func Uniform(n int, order uint, seed int64) *Dataset {
	c := hilbert.New(order)
	if uint64(n) > c.Size() {
		panic(fmt.Sprintf("dataset: %d objects cannot occupy %d cells", n, c.Size()))
	}
	rng := rand.New(rand.NewSource(seed))
	side := c.Side()
	used := make(map[uint64]bool, n)
	objs := make([]Object, 0, n)
	for len(objs) < n {
		p := spatial.Point{X: uint32(rng.Intn(int(side))), Y: uint32(rng.Intn(int(side)))}
		hc := c.Encode(p.X, p.Y)
		if used[hc] {
			continue
		}
		used[hc] = true
		objs = append(objs, Object{P: p, HC: hc})
	}
	return finish(c, objs, fmt.Sprintf("UNIFORM(n=%d,order=%d,seed=%d)", n, order, seed))
}

// ClusteredConfig controls the REAL-like generator.
type ClusteredConfig struct {
	N        int     // total number of objects
	Order    uint    // curve order
	Clusters int     // number of city clusters
	Spread   float64 // cluster standard deviation as a fraction of grid side
	Isolated float64 // fraction of objects placed uniformly ("villages")
	Seed     int64
}

// DefaultRealConfig mirrors the paper's REAL dataset cardinality: 5,848
// points with strong clustering.
func DefaultRealConfig(seed int64) ClusteredConfig {
	return ClusteredConfig{
		N:        5848,
		Order:    8,
		Clusters: 60,
		Spread:   0.02,
		Isolated: 0.15,
		Seed:     seed,
	}
}

// Clustered generates a skewed dataset per the config. Cluster sizes
// follow a Zipf distribution (a few big cities, many small ones), which
// is the canonical model for population-derived point sets.
func Clustered(cfg ClusteredConfig) *Dataset {
	if cfg.N <= 0 {
		panic("dataset: Clustered requires N > 0")
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = 1
	}
	c := hilbert.New(cfg.Order)
	if uint64(cfg.N)*2 > c.Size() {
		panic(fmt.Sprintf("dataset: grid of order %d too small for %d clustered objects", cfg.Order, cfg.N))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	side := float64(c.Side())

	// Cluster centres, uniform over the grid; weights Zipf(s=1).
	type cluster struct {
		cx, cy float64
		weight float64
	}
	clusters := make([]cluster, cfg.Clusters)
	var totalW float64
	for i := range clusters {
		clusters[i] = cluster{
			cx:     rng.Float64() * side,
			cy:     rng.Float64() * side,
			weight: 1 / float64(i+1),
		}
		totalW += clusters[i].weight
	}

	used := make(map[uint64]bool, cfg.N)
	objs := make([]Object, 0, cfg.N)
	place := func(x, y float64) bool {
		if x < 0 || y < 0 || x >= side || y >= side {
			return false
		}
		p := spatial.Point{X: uint32(x), Y: uint32(y)}
		hc := c.Encode(p.X, p.Y)
		if used[hc] {
			return false
		}
		used[hc] = true
		objs = append(objs, Object{P: p, HC: hc})
		return true
	}

	nIsolated := int(float64(cfg.N) * cfg.Isolated)
	for len(objs) < nIsolated {
		place(rng.Float64()*side, rng.Float64()*side)
	}
	sigma := cfg.Spread * side
	for len(objs) < cfg.N {
		// Pick a cluster proportionally to weight.
		w := rng.Float64() * totalW
		var cl cluster
		for _, cand := range clusters {
			if w -= cand.weight; w <= 0 {
				cl = cand
				break
			}
		}
		place(cl.cx+rng.NormFloat64()*sigma, cl.cy+rng.NormFloat64()*sigma)
	}
	name := fmt.Sprintf("REAL-like(n=%d,order=%d,clusters=%d,seed=%d)",
		cfg.N, cfg.Order, cfg.Clusters, cfg.Seed)
	return finish(c, objs, name)
}

func finish(c hilbert.Curve, objs []Object, name string) *Dataset {
	sort.Slice(objs, func(i, j int) bool { return objs[i].HC < objs[j].HC })
	for i := range objs {
		objs[i].ID = i
	}
	return &Dataset{Curve: c, Objects: objs, Name: name}
}

// WindowBrute returns the IDs of objects inside the window, in HC order.
// It is the ground truth for window-query correctness tests.
func (d *Dataset) WindowBrute(w spatial.Rect) []int {
	var out []int
	for _, o := range d.Objects {
		if w.Contains(o.P) {
			out = append(out, o.ID)
		}
	}
	return out
}

// KNNBrute returns the IDs of the k nearest objects to q (ties broken by
// HC value so the result is deterministic), plus the distance of the
// k-th neighbor. It is the ground truth for kNN correctness tests.
func (d *Dataset) KNNBrute(q spatial.Point, k int) (ids []int, kth float64) {
	if k <= 0 {
		return nil, 0
	}
	type cand struct {
		id int
		d2 float64
		hc uint64
	}
	cands := make([]cand, len(d.Objects))
	for i, o := range d.Objects {
		cands[i] = cand{id: o.ID, d2: o.P.Dist2(q), hc: o.HC}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d2 != cands[j].d2 {
			return cands[i].d2 < cands[j].d2
		}
		return cands[i].hc < cands[j].hc
	})
	if k > len(cands) {
		k = len(cands)
	}
	ids = make([]int, k)
	for i := 0; i < k; i++ {
		ids[i] = cands[i].id
	}
	return ids, math.Sqrt(cands[k-1].d2)
}

// KthDist returns the distance from q to its k-th nearest object.
func (d *Dataset) KthDist(q spatial.Point, k int) float64 {
	_, kth := d.KNNBrute(q, k)
	return kth
}

// ByID returns the object with the given ID (its HC rank).
func (d *Dataset) ByID(id int) Object { return d.Objects[id] }

// XOrder returns the object IDs sorted by x coordinate — the first
// pass of STR packing, which is the same for every packet capacity the
// tree might be built at. The permutation is computed exactly as an STR
// leaf sort over the objects in ID order would compute it (same
// algorithm, same comparator), so trees built from the cached order are
// identical to trees that sort from scratch. Computed once per dataset;
// the returned slice is shared and must not be modified.
func (d *Dataset) XOrder() []int {
	d.xOrderOnce.Do(func() {
		idx := make([]int, len(d.Objects))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool {
			return float64(d.Objects[idx[i]].P.X) < float64(d.Objects[idx[j]].P.X)
		})
		d.xOrder = idx
	})
	return d.xOrder
}

// HCKeys returns the objects' HC values and IDs in broadcast (HC)
// order — the key extraction every capacity's B+-tree build starts
// from. Computed once per dataset; the returned slices are shared and
// must not be modified.
func (d *Dataset) HCKeys() (keys []uint64, vals []int) {
	d.hcKeysOnce.Do(func() {
		d.hcKeys = make([]uint64, len(d.Objects))
		d.hcVals = make([]int, len(d.Objects))
		for i, o := range d.Objects {
			d.hcKeys[i] = o.HC
			d.hcVals[i] = o.ID
		}
	})
	return d.hcKeys, d.hcVals
}

// FindHC returns the index of the first object with HC >= v, which is
// len(Objects) when v exceeds every object's HC value.
func (d *Dataset) FindHC(v uint64) int {
	return sort.Search(len(d.Objects), func(i int) bool { return d.Objects[i].HC >= v })
}

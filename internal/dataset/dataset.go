// Package dataset generates the workload datasets used in the paper's
// evaluation.
//
// Two datasets are provided:
//
//   - UNIFORM: points drawn uniformly from the grid (the paper uses
//     10,000 points in a square Euclidean space).
//   - REAL-like: the paper uses 5,848 cities and villages of Greece from
//     rtreeportal.org. That file is proprietary/offline, so we substitute
//     a seeded synthetic clustered dataset of the same cardinality: a
//     Gaussian mixture of "city" clusters with Zipf-weighted populations
//     plus isolated "villages". The substitution preserves the property
//     the experiment exercises — heavy spatial skew.
//
// All generators snap points to distinct Hilbert cells (the paper assumes
// a 1-1 correspondence between coordinates and HC values) and return
// objects sorted by HC value, which is the broadcast order.
package dataset

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dsi/internal/hilbert"
	"dsi/internal/spatial"
)

// Object is one broadcast data object: a spatial point and its HC value.
// ID is the object's rank in HC order (assigned by the generators).
type Object struct {
	ID int
	P  spatial.Point
	HC uint64
}

// Dataset is a set of objects on a Hilbert grid, sorted by HC value.
//
// Index builders derive the same intermediate products from a dataset
// regardless of the packet capacity they are built for — the STR
// packing's x-sorted object order, the B+-tree's key extraction. Those
// are cached here (lazily, thread-safe), so an experiment sweeping many
// capacities over one dataset pays for them once instead of once per
// figure point.
type Dataset struct {
	Curve   hilbert.Curve
	Objects []Object
	Name    string

	xOrderOnce sync.Once
	xOrder     []int

	hcKeysOnce sync.Once
	hcKeys     []uint64
	hcVals     []int
}

// N returns the number of objects.
func (d *Dataset) N() int { return len(d.Objects) }

// Checksum returns an FNV-1a hash of the object cells in HC order.
// Two datasets with equal checksums build identical indexes (the
// build is a pure function of the cell sequence), so a network client
// can verify its locally derived catalog matches the station's before
// trusting any decoded pointer.
func (d *Dataset) Checksum() uint64 {
	b := NewChecksumBuilder(d.Curve.Order())
	for i := range d.Objects {
		b.Add(d.Objects[i].P)
	}
	return b.Sum()
}

// ChecksumBuilder computes Checksum incrementally: feed it every
// object's point in HC order and Sum matches Dataset.Checksum exactly.
// The out-of-core build path uses it to checksum a dataset it never
// materializes, so image-backed stations publish the same catalog
// proof as in-memory ones.
type ChecksumBuilder struct {
	h uint64
}

const fnvOffset, fnvPrime = 14695981039346656037, 1099511628211

// NewChecksumBuilder starts a checksum over a dataset of the given
// curve order.
func NewChecksumBuilder(order uint) *ChecksumBuilder {
	b := &ChecksumBuilder{h: fnvOffset}
	b.mix(uint64(order))
	return b
}

func (b *ChecksumBuilder) mix(v uint64) {
	for i := 0; i < 8; i++ {
		b.h ^= v & 0xff
		b.h *= fnvPrime
		v >>= 8
	}
}

// Add mixes in the next object's point; objects must arrive in HC
// order.
func (b *ChecksumBuilder) Add(p spatial.Point) {
	b.mix(uint64(p.X))
	b.mix(uint64(p.Y))
}

// Sum returns the checksum over everything added so far.
func (b *ChecksumBuilder) Sum() uint64 { return b.h }

// MinOrderFor returns the smallest curve order whose grid has at least
// slack*n cells, so that n distinct cells can be occupied with room to
// spare. The paper picks the curve order from the object density the
// same way ("HC of higher order is needed for denser object
// distribution").
func MinOrderFor(n int, slack float64) uint {
	if n <= 0 {
		return 1
	}
	need := float64(n) * slack
	for order := uint(1); order <= hilbert.MaxOrder; order++ {
		if math.Pow(4, float64(order)) >= need {
			return order
		}
	}
	return hilbert.MaxOrder
}

// Uniform generates n objects uniformly distributed over the grid of the
// given curve order, each on a distinct cell. It panics if the grid
// cannot hold n distinct cells.
func Uniform(n int, order uint, seed int64) *Dataset {
	objs := make([]Object, 0, n)
	c := UniformPoints(n, order, seed, func(p spatial.Point, hc uint64) {
		objs = append(objs, Object{P: p, HC: hc})
	})
	return finish(c, objs, fmt.Sprintf("UNIFORM(n=%d,order=%d,seed=%d)", n, order, seed))
}

// ClusteredConfig controls the REAL-like generator.
type ClusteredConfig struct {
	N        int     // total number of objects
	Order    uint    // curve order
	Clusters int     // number of city clusters
	Spread   float64 // cluster standard deviation as a fraction of grid side
	Isolated float64 // fraction of objects placed uniformly ("villages")
	Seed     int64
}

// DefaultRealConfig mirrors the paper's REAL dataset cardinality: 5,848
// points with strong clustering.
func DefaultRealConfig(seed int64) ClusteredConfig {
	return ClusteredConfig{
		N:        5848,
		Order:    8,
		Clusters: 60,
		Spread:   0.02,
		Isolated: 0.15,
		Seed:     seed,
	}
}

// Clustered generates a skewed dataset per the config. Cluster sizes
// follow a Zipf distribution (a few big cities, many small ones), which
// is the canonical model for population-derived point sets.
func Clustered(cfg ClusteredConfig) *Dataset {
	objs := make([]Object, 0, cfg.N)
	c := ClusteredPoints(cfg, func(p spatial.Point, hc uint64) {
		objs = append(objs, Object{P: p, HC: hc})
	})
	name := fmt.Sprintf("REAL-like(n=%d,order=%d,clusters=%d,seed=%d)",
		cfg.N, cfg.Order, cfg.Clusters, cfg.Seed)
	return finish(c, objs, name)
}

func finish(c hilbert.Curve, objs []Object, name string) *Dataset {
	sort.Slice(objs, func(i, j int) bool { return objs[i].HC < objs[j].HC })
	for i := range objs {
		objs[i].ID = i
	}
	return &Dataset{Curve: c, Objects: objs, Name: name}
}

// WindowBrute returns the IDs of objects inside the window, in HC order.
// It is the ground truth for window-query correctness tests.
func (d *Dataset) WindowBrute(w spatial.Rect) []int {
	var out []int
	for _, o := range d.Objects {
		if w.Contains(o.P) {
			out = append(out, o.ID)
		}
	}
	return out
}

// KNNBrute returns the IDs of the k nearest objects to q (ties broken by
// HC value so the result is deterministic), plus the distance of the
// k-th neighbor. It is the ground truth for kNN correctness tests.
func (d *Dataset) KNNBrute(q spatial.Point, k int) (ids []int, kth float64) {
	if k <= 0 {
		return nil, 0
	}
	type cand struct {
		id int
		d2 float64
		hc uint64
	}
	cands := make([]cand, len(d.Objects))
	for i, o := range d.Objects {
		cands[i] = cand{id: o.ID, d2: o.P.Dist2(q), hc: o.HC}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d2 != cands[j].d2 {
			return cands[i].d2 < cands[j].d2
		}
		return cands[i].hc < cands[j].hc
	})
	if k > len(cands) {
		k = len(cands)
	}
	ids = make([]int, k)
	for i := 0; i < k; i++ {
		ids[i] = cands[i].id
	}
	return ids, math.Sqrt(cands[k-1].d2)
}

// KthDist returns the distance from q to its k-th nearest object.
func (d *Dataset) KthDist(q spatial.Point, k int) float64 {
	_, kth := d.KNNBrute(q, k)
	return kth
}

// ByID returns the object with the given ID (its HC rank).
func (d *Dataset) ByID(id int) Object { return d.Objects[id] }

// XOrder returns the object IDs sorted by x coordinate, ties broken by
// ID — the first pass of STR packing, which is the same for every
// packet capacity the tree might be built at. The comparator is a
// total order, so any sort — the in-memory sort here, or the external
// merge sort of the out-of-core build — produces the identical
// permutation, and trees built from either are identical. Computed
// once per dataset; the returned slice is shared and must not be
// modified.
func (d *Dataset) XOrder() []int {
	d.xOrderOnce.Do(func() {
		idx := make([]int, len(d.Objects))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(i, j int) bool {
			a, b := &d.Objects[idx[i]], &d.Objects[idx[j]]
			if a.P.X != b.P.X {
				return a.P.X < b.P.X
			}
			return a.ID < b.ID
		})
		d.xOrder = idx
	})
	return d.xOrder
}

// HCKeys returns the objects' HC values and IDs in broadcast (HC)
// order — the key extraction every capacity's B+-tree build starts
// from. Computed once per dataset; the returned slices are shared and
// must not be modified.
func (d *Dataset) HCKeys() (keys []uint64, vals []int) {
	d.hcKeysOnce.Do(func() {
		d.hcKeys = make([]uint64, len(d.Objects))
		d.hcVals = make([]int, len(d.Objects))
		for i, o := range d.Objects {
			d.hcKeys[i] = o.HC
			d.hcVals[i] = o.ID
		}
	})
	return d.hcKeys, d.hcVals
}

// FindHC returns the index of the first object with HC >= v, which is
// len(Objects) when v exceeds every object's HC value.
func (d *Dataset) FindHC(v uint64) int {
	return sort.Search(len(d.Objects), func(i int) bool { return d.Objects[i].HC >= v })
}

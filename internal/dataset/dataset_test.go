package dataset

import (
	"sort"
	"testing"
	"testing/quick"

	"dsi/internal/spatial"
)

func TestMinOrderFor(t *testing.T) {
	cases := []struct {
		n     int
		slack float64
		want  uint
	}{
		{0, 2, 1},
		{1, 1, 1},
		{4, 1, 1},
		{5, 1, 2},
		{10000, 4, 8},    // 4^8 = 65536 >= 40000
		{10000, 8, 9},    // 80000 > 65536
		{1 << 40, 1, 20}, // 4^20 = 2^40
		{1 << 62, 4, 31}, // capped at MaxOrder
	}
	for _, tc := range cases {
		if got := MinOrderFor(tc.n, tc.slack); got != tc.want {
			t.Errorf("MinOrderFor(%d,%v) = %d, want %d", tc.n, tc.slack, got, tc.want)
		}
	}
}

func TestUniformProperties(t *testing.T) {
	d := Uniform(500, 6, 1)
	if d.N() != 500 {
		t.Fatalf("N = %d, want 500", d.N())
	}
	seen := make(map[uint64]bool)
	for i, o := range d.Objects {
		if o.ID != i {
			t.Fatalf("object %d has ID %d", i, o.ID)
		}
		if seen[o.HC] {
			t.Fatalf("duplicate HC %d", o.HC)
		}
		seen[o.HC] = true
		if got := d.Curve.Encode(o.P.X, o.P.Y); got != o.HC {
			t.Fatalf("object %d: HC %d does not match point %v", i, o.HC, o.P)
		}
		if i > 0 && d.Objects[i-1].HC >= o.HC {
			t.Fatalf("objects not sorted by HC at %d", i)
		}
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform(200, 6, 42)
	b := Uniform(200, 6, 42)
	for i := range a.Objects {
		if a.Objects[i] != b.Objects[i] {
			t.Fatalf("same seed produced different datasets at %d", i)
		}
	}
	c := Uniform(200, 6, 43)
	same := true
	for i := range a.Objects {
		if a.Objects[i] != c.Objects[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestUniformPanicsWhenGridTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Uniform did not panic for overfull grid")
		}
	}()
	Uniform(5, 1, 1) // order-1 grid has 4 cells
}

func TestClusteredProperties(t *testing.T) {
	d := Clustered(DefaultRealConfig(7))
	if d.N() != 5848 {
		t.Fatalf("N = %d, want 5848", d.N())
	}
	seen := make(map[uint64]bool)
	for i, o := range d.Objects {
		if seen[o.HC] {
			t.Fatalf("duplicate HC %d", o.HC)
		}
		seen[o.HC] = true
		if i > 0 && d.Objects[i-1].HC >= o.HC {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestClusteredIsSkewed(t *testing.T) {
	// Compare cell occupancy variance across coarse blocks: the clustered
	// dataset must be substantially more skewed than uniform.
	skew := func(d *Dataset) float64 {
		const blocks = 16
		side := d.Curve.Side()
		counts := make([]float64, blocks*blocks)
		for _, o := range d.Objects {
			bx := o.P.X * blocks / side
			by := o.P.Y * blocks / side
			counts[by*blocks+bx]++
		}
		mean := float64(d.N()) / float64(len(counts))
		var v float64
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		return v / float64(len(counts)) / (mean * mean)
	}
	u := Uniform(5848, 8, 3)
	r := Clustered(DefaultRealConfig(3))
	if skew(r) < 4*skew(u) {
		t.Errorf("clustered skew %v not clearly larger than uniform %v", skew(r), skew(u))
	}
}

func TestClusteredPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for N=0")
		}
	}()
	Clustered(ClusteredConfig{N: 0, Order: 8})
}

func TestWindowBrute(t *testing.T) {
	d := Uniform(300, 6, 5)
	w := spatial.Rect{MinX: 10, MinY: 10, MaxX: 40, MaxY: 40}
	got := d.WindowBrute(w)
	if !sort.IntsAreSorted(got) {
		t.Error("WindowBrute result not in ID (HC) order")
	}
	count := 0
	for _, o := range d.Objects {
		if w.Contains(o.P) {
			count++
		}
	}
	if len(got) != count {
		t.Errorf("WindowBrute returned %d, want %d", len(got), count)
	}
}

func TestKNNBrute(t *testing.T) {
	d := Uniform(300, 6, 5)
	q := spatial.Point{X: 30, Y: 30}
	ids, kth := d.KNNBrute(q, 10)
	if len(ids) != 10 {
		t.Fatalf("got %d ids", len(ids))
	}
	// Every non-returned object must be at distance >= kth.
	inSet := make(map[int]bool)
	for _, id := range ids {
		inSet[id] = true
		if d.ByID(id).P.Dist(q) > kth {
			t.Errorf("returned object %d farther than kth distance", id)
		}
	}
	for _, o := range d.Objects {
		if !inSet[o.ID] && o.P.Dist(q) < kth {
			t.Errorf("object %d at %v closer than kth %v but not returned", o.ID, o.P.Dist(q), kth)
		}
	}
}

func TestKNNBruteEdgeCases(t *testing.T) {
	d := Uniform(10, 4, 1)
	if ids, _ := d.KNNBrute(spatial.Point{}, 0); ids != nil {
		t.Error("k=0 should return nil")
	}
	ids, _ := d.KNNBrute(spatial.Point{}, 100)
	if len(ids) != 10 {
		t.Errorf("k>n should return all %d objects, got %d", 10, len(ids))
	}
}

func TestFindHC(t *testing.T) {
	d := Uniform(100, 6, 9)
	for i, o := range d.Objects {
		if got := d.FindHC(o.HC); got != i {
			t.Fatalf("FindHC(%d) = %d, want %d", o.HC, got, i)
		}
	}
	if got := d.FindHC(d.Objects[d.N()-1].HC + 1); got != d.N() {
		t.Errorf("FindHC past end = %d, want %d", got, d.N())
	}
	if got := d.FindHC(0); got != 0 {
		if d.Objects[0].HC == 0 {
			t.Errorf("FindHC(0) = %d, want 0", got)
		}
	}
}

func TestKNNBruteMatchesKthDistQuick(t *testing.T) {
	d := Uniform(200, 6, 11)
	f := func(x, y uint8, kk uint8) bool {
		q := spatial.Point{X: uint32(x) % 64, Y: uint32(y) % 64}
		k := int(kk)%20 + 1
		ids, kth := d.KNNBrute(q, k)
		if len(ids) != k {
			return false
		}
		return d.KthDist(q, k) == kth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestXOrderMatchesSTRLeafSort: the cached x-order must be exactly the
// permutation an STR leaf sort (by center x, ties broken by object ID
// — a total order, so stable and unstable sorts agree) produces, and
// repeated calls must share one computation.
func TestXOrderMatchesSTRLeafSort(t *testing.T) {
	ds := Uniform(500, 8, 99)
	type item struct {
		x   float64
		ref int
	}
	items := make([]item, ds.N())
	for i, o := range ds.Objects {
		items[i] = item{x: float64(o.P.X), ref: o.ID}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].x != items[j].x {
			return items[i].x < items[j].x
		}
		return items[i].ref < items[j].ref
	})

	got := ds.XOrder()
	if len(got) != len(items) {
		t.Fatalf("XOrder has %d entries, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i].ref {
			t.Fatalf("XOrder[%d] = %d, STR leaf sort says %d", i, got[i], items[i].ref)
		}
	}
	if again := ds.XOrder(); &again[0] != &got[0] {
		t.Error("XOrder recomputed instead of cached")
	}
}

// TestHCKeysCached: key extraction is in HC (ID) order and computed
// once.
func TestHCKeysCached(t *testing.T) {
	ds := Uniform(200, 7, 5)
	keys, vals := ds.HCKeys()
	for i, o := range ds.Objects {
		if keys[i] != o.HC || vals[i] != o.ID {
			t.Fatalf("entry %d: (%d,%d) != object (%d,%d)", i, keys[i], vals[i], o.HC, o.ID)
		}
	}
	k2, v2 := ds.HCKeys()
	if &k2[0] != &keys[0] || &v2[0] != &vals[0] {
		t.Error("HCKeys recomputed instead of cached")
	}
}

package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dsi/internal/hilbert"
	"dsi/internal/spatial"
)

// ReadCSV loads a dataset from the CSV format cmd/dsigen emits
// ("id,x,y,hc" per line; '#'-prefixed lines and the column header are
// ignored). The HC column is recomputed and validated against the
// coordinates, IDs are re-assigned in HC order, and duplicate cells are
// rejected — the invariants every index in this module relies on. Use
// this to broadcast real point data: convert it to grid cells with the
// dsigen CSV format, then load it here.
func ReadCSV(r io.Reader, order uint) (*Dataset, error) {
	c := hilbert.New(order)
	side := uint64(c.Side())
	seen := make(map[uint64]bool)
	var objs []Object

	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "id,") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) < 3 {
			return nil, fmt.Errorf("dataset: line %d: need at least id,x,y", line)
		}
		x, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad x: %w", line, err)
		}
		y, err := strconv.ParseUint(fields[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad y: %w", line, err)
		}
		if x >= side || y >= side {
			return nil, fmt.Errorf("dataset: line %d: cell (%d,%d) outside order-%d grid", line, x, y, order)
		}
		hc := c.Encode(uint32(x), uint32(y))
		if len(fields) >= 4 && fields[3] != "" {
			claimed, err := strconv.ParseUint(fields[3], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad hc: %w", line, err)
			}
			if claimed != hc {
				return nil, fmt.Errorf("dataset: line %d: hc %d does not match cell (%d,%d) (want %d)",
					line, claimed, x, y, hc)
			}
		}
		if seen[hc] {
			return nil, fmt.Errorf("dataset: line %d: duplicate cell (%d,%d)", line, x, y)
		}
		seen[hc] = true
		objs = append(objs, Object{P: spatial.Point{X: uint32(x), Y: uint32(y)}, HC: hc})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(objs) == 0 {
		return nil, fmt.Errorf("dataset: no objects in input")
	}
	return finish(c, objs, fmt.Sprintf("CSV(n=%d,order=%d)", len(objs), order)), nil
}

// WriteCSV emits the dataset in dsigen's CSV format.
func WriteCSV(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# %s\nid,x,y,hc\n", d.Name); err != nil {
		return err
	}
	for _, o := range d.Objects {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d\n", o.ID, o.P.X, o.P.Y, o.HC); err != nil {
			return err
		}
	}
	return bw.Flush()
}

package dataset

import (
	"bytes"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	want := Uniform(200, 6, 5)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != want.N() {
		t.Fatalf("round trip lost objects: %d vs %d", got.N(), want.N())
	}
	for i := range want.Objects {
		if got.Objects[i] != want.Objects[i] {
			t.Fatalf("object %d differs after round trip", i)
		}
	}
}

func TestReadCSVWithoutHCColumn(t *testing.T) {
	in := "# comment\nid,x,y,hc\n0,3,5\n1,10,2\n"
	ds, err := ReadCSV(strings.NewReader(in), 6)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 2 {
		t.Fatalf("N = %d", ds.N())
	}
	// IDs are re-assigned in HC order.
	if ds.Objects[0].HC >= ds.Objects[1].HC {
		t.Error("objects not sorted by HC")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"empty", ""},
		{"short line", "0,3\n"},
		{"bad x", "0,abc,5\n"},
		{"bad y", "0,3,abc\n"},
		{"bad hc", "0,3,5,zz\n"},
		{"off grid", "0,64,5\n"},
		{"wrong hc", "0,3,5,999999\n"},
		{"duplicate cell", "0,3,5\n1,3,5\n"},
	}
	for _, tc := range cases {
		if _, err := ReadCSV(strings.NewReader(tc.in), 6); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestReadCSVValidatesClaimedHC(t *testing.T) {
	ds := Uniform(5, 5, 1)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	// Loading at a different order changes every HC value: the claimed
	// column must be rejected.
	if _, err := ReadCSV(bytes.NewReader(buf.Bytes()), 6); err == nil {
		t.Error("order mismatch accepted")
	}
}

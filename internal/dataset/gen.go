package dataset

import (
	"fmt"
	"math/rand"

	"dsi/internal/hilbert"
	"dsi/internal/spatial"
)

// cellSet tracks occupied Hilbert cells during generation. insert
// reports whether hc was newly inserted (false = already taken). Both
// implementations make identical accept/reject decisions, so the
// generator's RNG consumption — and therefore the emitted point
// sequence — does not depend on which one backs a given run.
type cellSet interface {
	insert(hc uint64) bool
}

type mapCells map[uint64]bool

func (m mapCells) insert(hc uint64) bool {
	if m[hc] {
		return false
	}
	m[hc] = true
	return true
}

type bitmapCells []uint64

func (b bitmapCells) insert(hc uint64) bool {
	w, bit := hc/64, uint64(1)<<(hc%64)
	if b[w]&bit != 0 {
		return false
	}
	b[w] |= bit
	return true
}

// newCellSet picks the dedup structure by grid size: a bitmap over the
// 4^order cells when that costs at most a few bytes per object (the
// common case — curve orders are picked for modest slack over n), a
// hash map when the grid is sparse enough that a bitmap would dwarf
// the object set. The out-of-core build path depends on the bitmap
// arm: at 10^7 objects the map's overhead alone would blow the heap
// budget, while the bitmap stays O(grid)/8 bytes.
func newCellSet(c hilbert.Curve, n int) cellSet {
	if cells := c.Size(); cells/64 <= 8*uint64(n)+1024 {
		return make(bitmapCells, (cells+63)/64)
	}
	return make(mapCells, n)
}

// UniformPoints streams the UNIFORM generator's points in generation
// order (pre-sort): n points drawn uniformly over the grid of the
// given curve order, each on a distinct cell, emitted as they are
// accepted. Uniform is exactly finish() over this stream; the
// out-of-core build feeds the same stream into an external sorter
// instead of a slice. Memory is bounded by the cell-dedup structure,
// not by n.
func UniformPoints(n int, order uint, seed int64, emit func(p spatial.Point, hc uint64)) hilbert.Curve {
	c := hilbert.New(order)
	if uint64(n) > c.Size() {
		panic(fmt.Sprintf("dataset: %d objects cannot occupy %d cells", n, c.Size()))
	}
	rng := rand.New(rand.NewSource(seed))
	side := c.Side()
	seen := newCellSet(c, n)
	for emitted := 0; emitted < n; {
		p := spatial.Point{X: uint32(rng.Intn(int(side))), Y: uint32(rng.Intn(int(side)))}
		hc := c.Encode(p.X, p.Y)
		if !seen.insert(hc) {
			continue
		}
		emit(p, hc)
		emitted++
	}
	return c
}

// ClusteredPoints streams the REAL-like generator's points in
// generation order (pre-sort); Clustered is exactly finish() over this
// stream. See Clustered for the distribution.
func ClusteredPoints(cfg ClusteredConfig, emit func(p spatial.Point, hc uint64)) hilbert.Curve {
	if cfg.N <= 0 {
		panic("dataset: Clustered requires N > 0")
	}
	if cfg.Clusters <= 0 {
		cfg.Clusters = 1
	}
	c := hilbert.New(cfg.Order)
	if uint64(cfg.N)*2 > c.Size() {
		panic(fmt.Sprintf("dataset: grid of order %d too small for %d clustered objects", cfg.Order, cfg.N))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	side := float64(c.Side())

	// Cluster centres, uniform over the grid; weights Zipf(s=1).
	type cluster struct {
		cx, cy float64
		weight float64
	}
	clusters := make([]cluster, cfg.Clusters)
	var totalW float64
	for i := range clusters {
		clusters[i] = cluster{
			cx:     rng.Float64() * side,
			cy:     rng.Float64() * side,
			weight: 1 / float64(i+1),
		}
		totalW += clusters[i].weight
	}

	seen := newCellSet(c, cfg.N)
	emitted := 0
	place := func(x, y float64) bool {
		if x < 0 || y < 0 || x >= side || y >= side {
			return false
		}
		p := spatial.Point{X: uint32(x), Y: uint32(y)}
		hc := c.Encode(p.X, p.Y)
		if !seen.insert(hc) {
			return false
		}
		emit(p, hc)
		emitted++
		return true
	}

	nIsolated := int(float64(cfg.N) * cfg.Isolated)
	for emitted < nIsolated {
		place(rng.Float64()*side, rng.Float64()*side)
	}
	sigma := cfg.Spread * side
	for emitted < cfg.N {
		// Pick a cluster proportionally to weight.
		w := rng.Float64() * totalW
		var cl cluster
		for _, cand := range clusters {
			if w -= cand.weight; w <= 0 {
				cl = cand
				break
			}
		}
		place(cl.cx+rng.NormFloat64()*sigma, cl.cy+rng.NormFloat64()*sigma)
	}
	return c
}

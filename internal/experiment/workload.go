package experiment

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/obs"
	"dsi/internal/spatial"
)

// Workload is a reproducible query mix. The same workload is replayed
// against every system so comparisons see identical queries, probe
// positions (scaled to each system's cycle), and loss processes.
type Workload struct {
	DS      *dataset.Dataset
	Queries int
	Seed    int64
	// Verify cross-checks every result against brute force and panics
	// on mismatch; experiments double as end-to-end correctness tests.
	Verify bool
	// Theta enables the link-error model.
	Theta float64
	// BurstLen, when positive, replaces the i.i.d. error process with
	// the Gilbert-Elliott burst model at the same stationary loss rate
	// Theta and this mean burst length in packets.
	BurstLen float64
	// LossData extends the error process to data packets. The paper's
	// link-error model (and the default here) corrupts index packets
	// only; the FEC experiment needs losses on everything the channel
	// carries.
	LossData bool
	// Obs, when set, collects operational counters from the replay's
	// receivers and stations; nil leaves the hot paths uninstrumented.
	Obs *obs.Registry
}

// Metrics are per-query averages in bytes, the unit the paper reports.
type Metrics struct {
	LatencyBytes float64
	TuningBytes  float64
}

func (m Metrics) String() string {
	return fmt.Sprintf("latency=%.0fB tuning=%.0fB", m.LatencyBytes, m.TuningBytes)
}

// windowQuery is one generated window query instance.
type windowQuery struct {
	w     spatial.Rect
	uProb float64 // uniform (0,1) scaled to the system's cycle
	seed  int64   // loss-model seed
}

// newWorkloadRNG returns the deterministic stream for a workload seed.
// PCG seeding is O(1), unlike the legacy math/rand source whose 607-word
// seeding dominated short workload generations.
func newWorkloadRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewPCG(uint64(seed), 0x9e3779b97f4a7c15))
}

// genWindows generates the window workload for a WinSideRatio.
func (wl *Workload) genWindows(ratio float64) []windowQuery {
	rng := newWorkloadRNG(wl.Seed)
	side := wl.DS.Curve.Side()
	win := uint32(float64(side) * ratio)
	if win == 0 {
		win = 1
	}
	out := make([]windowQuery, wl.Queries)
	for i := range out {
		out[i] = windowQuery{
			w: spatial.ClampedWindow(
				uint32(rng.IntN(int(side))), uint32(rng.IntN(int(side))), win, side),
			uProb: rng.Float64(),
			seed:  int64(rng.Uint64() >> 1),
		}
	}
	return out
}

type knnQuery struct {
	q     spatial.Point
	uProb float64
	seed  int64
}

// genKNN generates the kNN workload.
func (wl *Workload) genKNN() []knnQuery {
	rng := newWorkloadRNG(wl.Seed + 1)
	side := int(wl.DS.Curve.Side())
	out := make([]knnQuery, wl.Queries)
	for i := range out {
		out[i] = knnQuery{
			q:     spatial.Point{X: uint32(rng.IntN(side)), Y: uint32(rng.IntN(side))},
			uProb: rng.Float64(),
			seed:  int64(rng.Uint64() >> 1),
		}
	}
	return out
}

func (wl *Workload) loss(seed int64) *broadcast.LossModel {
	if wl.Theta == 0 {
		return nil
	}
	var m *broadcast.LossModel
	if wl.BurstLen > 0 {
		m = broadcast.GilbertForTheta(wl.Theta, wl.BurstLen, seed)
	} else {
		m = broadcast.NewLossModel(wl.Theta, seed)
	}
	m.AffectsData = wl.LossData
	return m
}

// RunWindow replays the window workload with the given WinSideRatio
// against the system and returns average metrics.
//
// Queries are sharded across the package worker pool (SetParallelism),
// each worker replaying through its own reusable session against the
// shared immutable index. Every query is fully determined by its
// precomputed workload entry (window, probe fraction, loss seed) and
// per-query stats are accumulated in query order, so the averages are
// bit-identical at any parallelism setting.
func (wl *Workload) RunWindow(sys System, ratio float64) Metrics {
	return wl.runWindows(sys, wl.genWindows(ratio))
}

// runWindows replays an explicit window-query list — the entry point of
// the skewed (non-uniform) workloads, whose queries are generated
// elsewhere but replayed with the same sharding and determinism
// guarantees as RunWindow.
func (wl *Workload) runWindows(sys System, qs []windowQuery) Metrics {
	return wl.run(sys, len(qs), func(s QuerySession, i int) broadcast.Stats {
		q := qs[i]
		probe := int64(q.uProb * float64(sys.CycleLen()))
		got, st := s.Window(q.w, probe, wl.loss(q.seed))
		if wl.Verify {
			want := wl.DS.WindowBrute(q.w)
			if !sameIDs(got, want) {
				panic(fmt.Sprintf("experiment: %s window %v returned %d objects, want %d",
					sys.Name(), q.w, len(got), len(want)))
			}
		}
		return st
	})
}

// RunKNN replays the kNN workload against the system. Sharding and
// determinism are as for RunWindow.
func (wl *Workload) RunKNN(sys System, k int) Metrics {
	qs := wl.genKNN()
	return wl.run(sys, len(qs), func(s QuerySession, i int) broadcast.Stats {
		q := qs[i]
		probe := int64(q.uProb * float64(sys.CycleLen()))
		got, st := s.KNN(q.q, k, probe, wl.loss(q.seed))
		if wl.Verify {
			want, _ := wl.DS.KNNBrute(q.q, k)
			if !sameDistances(wl.DS, q.q, got, want) {
				panic(fmt.Sprintf("experiment: %s kNN at %v k=%d wrong", sys.Name(), q.q, k))
			}
		}
		return st
	})
}

// run executes n queries on the worker pool and averages their metrics
// in query order. Each worker owns the session pinned to its worker id
// for its whole lifetime.
func (wl *Workload) run(sys System, n int, query func(s QuerySession, i int) broadcast.Stats) Metrics {
	return replay(n,
		func(worker int) QuerySession { return acquireSession(sys, worker) },
		func(worker int, s QuerySession) { releaseSession(sys, worker, s) },
		query)
}

// replay is the deterministic parallel replay core every workload
// runner goes through: it executes n independent query simulations on
// the worker pool, each worker owning one reusable state W (acquired
// for its worker id once, released when the worker drains), every
// query execution holding a global token — so total in-flight query
// work stays within SetParallelism even when a figure sweep runs
// several workloads concurrently — and averages the per-query metrics
// in query order, which makes the result bit-identical at any
// parallelism setting.
func replay[W any](n int, acquire func(worker int) W, release func(worker int, w W), query func(w W, i int) broadcast.Stats) Metrics {
	return meanOf(replayStats(n, acquire, release, query))
}

// replayStats is replay returning the raw per-query stats in query
// order instead of their average — the entry point of the
// distribution-reporting runners (mean alone hides exactly the latency
// tail that loss recovery is about).
func replayStats[W any](n int, acquire func(worker int) W, release func(worker int, w W), query func(w W, i int) broadcast.Stats) []broadcast.Stats {
	stats := make([]broadcast.Stats, n)
	toks := queryTokens()
	parallelWorkers(n, func(id int, next func() (int, bool)) {
		w := acquire(id)
		if release != nil {
			defer release(id, w)
		}
		for i, ok := next(); ok; i, ok = next() {
			toks <- struct{}{}
			stats[i] = query(w, i)
			<-toks
		}
	})
	return stats
}

func meanOf(stats []broadcast.Stats) Metrics {
	var lat, tun float64
	for _, st := range stats {
		lat += float64(st.LatencyBytes())
		tun += float64(st.TuningBytes())
	}
	q := float64(len(stats))
	return Metrics{LatencyBytes: lat / q, TuningBytes: tun / q}
}

// DistMetrics reports a workload's per-query cost distribution: the
// mean and the 95th percentile, both in bytes.
type DistMetrics struct {
	Mean Metrics
	P95  Metrics
}

// distOf aggregates per-query stats into mean and p95 metrics. The
// percentile is the nearest-rank one over each metric independently.
func distOf(stats []broadcast.Stats) DistMetrics {
	lat := make([]float64, len(stats))
	tun := make([]float64, len(stats))
	for i, st := range stats {
		lat[i] = float64(st.LatencyBytes())
		tun[i] = float64(st.TuningBytes())
	}
	return DistMetrics{
		Mean: meanOf(stats),
		P95:  Metrics{LatencyBytes: percentile(lat, 0.95), TuningBytes: percentile(tun, 0.95)},
	}
}

// percentile returns the nearest-rank p-percentile of vs (vs is
// clobbered by sorting).
func percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	rank := int(p*float64(len(vs))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(vs) {
		rank = len(vs) - 1
	}
	return vs[rank]
}

// RunWindowDist replays the window workload and reports the cost
// distribution. Determinism and sharding are as for RunWindow.
func (wl *Workload) RunWindowDist(sys System, ratio float64) DistMetrics {
	qs := wl.genWindows(ratio)
	stats := replayStats(len(qs),
		func(worker int) QuerySession { return acquireSession(sys, worker) },
		func(worker int, s QuerySession) { releaseSession(sys, worker, s) },
		func(s QuerySession, i int) broadcast.Stats {
			q := qs[i]
			probe := int64(q.uProb * float64(sys.CycleLen()))
			got, st := s.Window(q.w, probe, wl.loss(q.seed))
			if wl.Verify {
				want := wl.DS.WindowBrute(q.w)
				if !sameIDs(got, want) {
					panic(fmt.Sprintf("experiment: %s window %v returned %d objects, want %d",
						sys.Name(), q.w, len(got), len(want)))
				}
			}
			return st
		})
	return distOf(stats)
}

func sameIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameDistances compares kNN answers by their distance multisets (ties
// may be broken differently by different systems).
func sameDistances(ds *dataset.Dataset, q spatial.Point, a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	da := make([]float64, len(a))
	db := make([]float64, len(b))
	for i := range a {
		da[i] = ds.ByID(a[i]).P.Dist2(q)
		db[i] = ds.ByID(b[i]).P.Dist2(q)
	}
	sort.Float64s(da)
	sort.Float64s(db)
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

package experiment

import (
	"reflect"
	"testing"

	"dsi/internal/dsi"
	"dsi/internal/obs"
)

// driftParams keeps the drift cells fast while leaving enough frames
// for eight channels and a clearly resolvable migration.
var driftParams = Params{N: 500, Order: 7, Seed: 11, Queries: 20, Verify: true}

// TestDriftReplanBeatsStaticAfterDrift is the PR's acceptance
// criterion: under a migrating hot spot, the online re-planning loop
// (a) never fires before the drift, so the two arms are EXACTLY equal
// there; (b) answers the post-drift workload with latency at or below
// the static plan's, strictly below at the tightest trigger; and (c)
// the whole sweep is bit-identical across parallelism levels.
func TestDriftReplanBeatsStaticAfterDrift(t *testing.T) {
	p := driftParams
	ds := p.Dataset()
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: p.ObjectBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer SetParallelism(Parallelism())

	type cell struct {
		ratio float64
		n     int
		pt    driftPoint
	}
	run := func() []cell {
		var out []cell
		for _, n := range DriftChannels {
			base := newDriftBase(x, p.workload(ds), n)
			for _, r := range DriftRatios {
				out = append(out, cell{r, n, driftCell(base, p.workload(ds), r)})
			}
		}
		return out
	}

	SetParallelism(1)
	seq := run()
	SetParallelism(4)
	par := run()
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("drift sweep differs across parallelism levels:\nseq: %+v\npar: %+v", seq, par)
	}

	for _, c := range seq {
		pt := c.pt
		t.Logf("ratio=%.1f x%d: pre static/replan %.0f/%.0f B, post %.0f/%.0f B, %d swaps (first at query %d, drift %.2f); adaptive post %.0f B, %d swaps in %d checks (fixed spent %d)",
			c.ratio, c.n, pt.PreStatic.LatencyBytes, pt.PreReplan.LatencyBytes,
			pt.PostStatic.LatencyBytes, pt.PostReplan.LatencyBytes, pt.Replans, pt.FirstReplan, pt.Drift,
			pt.PostAdaptive.LatencyBytes, pt.AdaptiveReplans, pt.AdaptiveChecks, pt.Checks)
		// (a) Before the drift: no swap, and the arms tie bit for bit.
		if pt.FirstReplan >= 0 && pt.FirstReplan < p.Queries {
			t.Errorf("ratio=%.1f x%d: replan fired at query %d, before the drift", c.ratio, c.n, pt.FirstReplan)
		}
		if pt.AdaptiveFirst >= 0 && pt.AdaptiveFirst < p.Queries {
			t.Errorf("ratio=%.1f x%d: adaptive replan fired at query %d, before the drift", c.ratio, c.n, pt.AdaptiveFirst)
		}
		if pt.PreReplan != pt.PreStatic {
			t.Errorf("ratio=%.1f x%d: pre-drift arms differ: static %+v replan %+v",
				c.ratio, c.n, pt.PreStatic, pt.PreReplan)
		}
		if pt.PreAdaptive != pt.PreStatic {
			t.Errorf("ratio=%.1f x%d: pre-drift adaptive arm differs: static %+v adaptive %+v",
				c.ratio, c.n, pt.PreStatic, pt.PreAdaptive)
		}
		// (b) After the drift: re-planning at or below static.
		if pt.PostReplan.LatencyBytes > pt.PostStatic.LatencyBytes {
			t.Errorf("ratio=%.1f x%d: post-drift replan latency %.0fB above static %.0fB",
				c.ratio, c.n, pt.PostReplan.LatencyBytes, pt.PostStatic.LatencyBytes)
		}
		if pt.PostAdaptive.LatencyBytes > pt.PostStatic.LatencyBytes {
			t.Errorf("ratio=%.1f x%d: post-drift adaptive latency %.0fB above static %.0fB",
				c.ratio, c.n, pt.PostAdaptive.LatencyBytes, pt.PostStatic.LatencyBytes)
		}
		if c.ratio == DriftRatios[len(DriftRatios)-1] {
			// The loosest trigger is sized to never fire on this
			// migration: the re-planning arm must degenerate to the
			// static broadcast exactly (no swap, identical metrics).
			if pt.Replans != 0 || pt.PostReplan != pt.PostStatic {
				t.Errorf("ratio=%.1f x%d: loose trigger not degenerate: %d swaps, post %+v vs %+v",
					c.ratio, c.n, pt.Replans, pt.PostReplan, pt.PostStatic)
			}
		} else {
			if pt.Replans == 0 {
				t.Errorf("ratio=%.1f x%d: migration never triggered a replan", c.ratio, c.n)
			}
			if pt.AdaptiveReplans == 0 {
				t.Errorf("ratio=%.1f x%d: migration never triggered the adaptive arm", c.ratio, c.n)
			}
		}
	}
	// Strictly better at the tightest trigger, for every channel count.
	for _, n := range DriftChannels {
		found := false
		for _, c := range seq {
			if c.n == n && c.ratio == DriftRatios[0] {
				found = true
				if c.pt.PostReplan.LatencyBytes >= c.pt.PostStatic.LatencyBytes {
					t.Errorf("x%d ratio=%.1f: replan %.0fB not strictly below static %.0fB",
						n, c.ratio, c.pt.PostReplan.LatencyBytes, c.pt.PostStatic.LatencyBytes)
				}
			}
		}
		if !found {
			t.Fatalf("no tightest-ratio cell for %d channels", n)
		}
	}
}

// TestDriftExperimentStructure runs the registered experiment end to
// end (verified queries) and checks its shape.
func TestDriftExperimentStructure(t *testing.T) {
	res := Drift(driftParams)
	if want := 3 * len(DriftChannels); len(res.Figures) != want {
		t.Fatalf("drift produced %d figures, want %d", len(res.Figures), want)
	}
	for _, f := range res.Figures {
		if len(f.X) != len(DriftRatios) {
			t.Errorf("%s: %d xs", f.ID, len(f.X))
		}
		for _, s := range f.Series {
			if len(s.Y) != len(DriftRatios) {
				t.Errorf("%s series %s: %d points", f.ID, s.Name, len(s.Y))
			}
		}
	}
}

// TestZipfShiftWindowsCompat: shift 0 must reproduce zipfWindows draw
// for draw — the sharded experiment's workloads ride on it.
func TestZipfShiftWindowsCompat(t *testing.T) {
	p := driftParams
	ds := p.Dataset()
	wl := p.workload(ds)
	a := wl.zipfWindows(1.0, DefaultWinSideRatio, 123, 50)
	b := wl.zipfShiftWindows(1.0, DefaultWinSideRatio, 123, 50, 0)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("zipfShiftWindows(shift=0) diverges from zipfWindows")
	}
	c := wl.zipfShiftWindows(1.0, DefaultWinSideRatio, 123, 50, ds.N()/2)
	same := true
	for i := range a {
		if a[i].w != c[i].w {
			same = false
		}
		if a[i].uProb != c[i].uProb || a[i].seed != c[i].seed {
			t.Fatal("shift changed the probe/loss draws")
		}
	}
	if same {
		t.Fatal("shifted hot spot produced identical windows")
	}
}

// BenchmarkDrift is the CI smoke benchmark of the online re-planning
// loop: one verified migrating-workload cell at 4 channels.
func BenchmarkDrift(b *testing.B) {
	// The benchmark runs instrumented and folds the per-iteration obs
	// counter averages into the report (units suffixed _total), so the
	// BENCH_<sha>.json trajectory carries how many clients resynced at
	// seams and how much planning each run spent, next to ns/op.
	reg := obs.NewRegistry()
	p := Params{N: 400, Order: 7, Seed: 11, Queries: 10, Verify: true, Obs: reg}
	ds := p.Dataset()
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: p.ObjectBytes})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		driftCell(newDriftBase(x, p.workload(ds), 4), p.workload(ds), DriftRatios[0])
	}
	b.StopTimer()
	snap := reg.Snapshot()
	n := float64(b.N)
	b.ReportMetric(snap["dsi_receiver_resyncs_total"]/n, "resyncs_total")
	b.ReportMetric(snap["station_seam_swaps_staged_total"]/n, "seam_swaps_total")
	b.ReportMetric(snap["sched_replans_triggered_total"]/n, "replans_total")
}

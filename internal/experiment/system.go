// Package experiment reproduces the paper's evaluation: every figure
// (Fig. 8-12) and table (Table 1) of section 4 and 5, plus the REAL-
// dataset comparisons reported in the text and the ablations called out
// in DESIGN.md.
//
// The package wraps the three air-index implementations behind a common
// System interface, generates seeded workloads, runs them with identical
// query sequences against every system, and formats the results as the
// paper reports them (average access latency and tuning time in bytes).
package experiment

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dsi/internal/air"
	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
)

// System is an air index under evaluation.
type System interface {
	// Name identifies the system in tables ("DSI", "R-tree", "HCI", ...).
	Name() string
	// Window answers a window query from the given absolute probe slot.
	Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats)
	// KNN answers a k-nearest-neighbor query.
	KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats)
	// CycleLen returns the broadcast cycle length in packets, used to
	// draw uniform probe slots.
	CycleLen() int
}

// QuerySession answers queries one at a time with reusable state: a
// worker holds one session and replays queries through it, so per-query
// setup (client knowledge bases, scratch buffers) is recycled instead
// of reallocated. Result slices are only valid until the session's next
// query. Sessions are not safe for concurrent use; mint one per worker.
type QuerySession interface {
	Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats)
	KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats)
}

// SessionSystem is a System that pools reusable query sessions. The
// workload runner acquires a session per worker and releases it after
// the run, so session state (and its pooled client) survives across
// workload runs; systems without sessions are queried statelessly.
type SessionSystem interface {
	System
	AcquireSession() QuerySession
	ReleaseSession(QuerySession)
}

// statelessSession adapts a plain System to the session interface.
type statelessSession struct{ sys System }

func (s statelessSession) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.sys.Window(w, probe, loss)
}

func (s statelessSession) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.sys.KNN(q, k, probe, loss)
}

// DSISystem runs queries over a DSI broadcast with a fixed kNN strategy.
// Use it by pointer: it carries a session pool.
type DSISystem struct {
	Label    string
	Index    *dsi.Index
	Strategy dsi.Strategy

	sessions sync.Pool // of *dsiSession
}

// NewDSI builds a DSI system. The label defaults to "DSI".
func NewDSI(ds *dataset.Dataset, cfg dsi.Config, strat dsi.Strategy, label string) (*DSISystem, error) {
	x, err := dsi.Build(ds, cfg)
	if err != nil {
		return nil, err
	}
	if label == "" {
		label = "DSI"
	}
	return &DSISystem{Label: label, Index: x, Strategy: strat}, nil
}

func (s *DSISystem) Name() string { return s.Label }

func (s *DSISystem) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return dsi.NewClient(s.Index, probe, loss).Window(w)
}

func (s *DSISystem) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return dsi.NewClient(s.Index, probe, loss).KNN(q, k, s.Strategy)
}

func (s *DSISystem) CycleLen() int { return s.Index.Prog.Len() }

// dsiSessionsMinted counts sessions constructed from scratch, so tests
// can assert that workloads reuse sessions instead of re-minting them.
var dsiSessionsMinted atomic.Int64

// AcquireSession returns a session around one long-lived dsi.Client
// that is Reset between queries: identical results and metrics to
// fresh clients, without the per-query dataset-sized allocations.
func (s *DSISystem) AcquireSession() QuerySession {
	if v := s.sessions.Get(); v != nil {
		return v.(*dsiSession)
	}
	dsiSessionsMinted.Add(1)
	return &dsiSession{sys: s}
}

// ReleaseSession returns a session to the pool for the next worker.
func (s *DSISystem) ReleaseSession(q QuerySession) { s.sessions.Put(q) }

type dsiSession struct {
	sys *DSISystem
	c   *dsi.Client
	buf []int
}

// client returns the session's client tuned to the probe slot.
func (s *dsiSession) client(probe int64, loss *broadcast.LossModel) *dsi.Client {
	if s.c == nil {
		s.c = dsi.NewClient(s.sys.Index, probe, loss)
	} else {
		s.c.Reset(probe, loss)
	}
	return s.c
}

func (s *dsiSession) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	ids, st := s.client(probe, loss).WindowAppend(s.buf[:0], w)
	s.buf = ids
	return ids, st
}

func (s *dsiSession) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	ids, st := s.client(probe, loss).KNNAppend(s.buf[:0], q, k, s.sys.Strategy)
	s.buf = ids
	return ids, st
}

// RTreeSystem is the on-air STR R-tree baseline.
type RTreeSystem struct{ B *air.RTreeBroadcast }

// NewRTree builds the R-tree baseline (fails at 32-byte packets).
func NewRTree(ds *dataset.Dataset, capacity, objectBytes int) (*RTreeSystem, error) {
	b, err := air.NewRTreeBroadcast(ds, capacity, objectBytes)
	if err != nil {
		return nil, err
	}
	return &RTreeSystem{B: b}, nil
}

func (s *RTreeSystem) Name() string { return "R-tree" }

func (s *RTreeSystem) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.B.Window(w, probe, loss)
}

func (s *RTreeSystem) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.B.KNN(q, k, probe, loss)
}

func (s *RTreeSystem) CycleLen() int { return s.B.Lay.Prog.Len() }

// HCISystem is the on-air Hilbert Curve Index baseline.
type HCISystem struct{ B *air.HCIBroadcast }

// NewHCI builds the HCI baseline.
func NewHCI(ds *dataset.Dataset, capacity, objectBytes int) (*HCISystem, error) {
	b, err := air.NewHCIBroadcast(ds, capacity, objectBytes)
	if err != nil {
		return nil, err
	}
	return &HCISystem{B: b}, nil
}

func (s *HCISystem) Name() string { return "HCI" }

func (s *HCISystem) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.B.Window(w, probe, loss)
}

func (s *HCISystem) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.B.KNN(q, k, probe, loss)
}

func (s *HCISystem) CycleLen() int { return s.B.Lay.Prog.Len() }

func mustSys(s System, err error) System {
	if err != nil {
		panic(fmt.Sprintf("experiment: building system: %v", err))
	}
	return s
}

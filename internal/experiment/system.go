// Package experiment reproduces the paper's evaluation: every figure
// (Fig. 8-12) and table (Table 1) of section 4 and 5, plus the REAL-
// dataset comparisons reported in the text and the ablations called out
// in DESIGN.md.
//
// The package wraps the three air-index implementations behind a common
// System interface, generates seeded workloads, runs them with identical
// query sequences against every system, and formats the results as the
// paper reports them (average access latency and tuning time in bytes).
package experiment

import (
	"fmt"
	"sync/atomic"

	"dsi/internal/air"
	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
)

// System is an air index under evaluation.
type System interface {
	// Name identifies the system in tables ("DSI", "R-tree", "HCI", ...).
	Name() string
	// Window answers a window query from the given absolute probe slot.
	Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats)
	// KNN answers a k-nearest-neighbor query.
	KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats)
	// CycleLen returns the broadcast cycle length in packets, used to
	// draw uniform probe slots.
	CycleLen() int
}

// QuerySession answers queries one at a time with reusable state: a
// worker holds one session and replays queries through it, so per-query
// setup (client knowledge bases, scratch buffers) is recycled instead
// of reallocated. Result slices are only valid until the session's next
// query. Sessions are not safe for concurrent use; mint one per worker.
type QuerySession interface {
	Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats)
	KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats)
}

// SessionSystem is a System that keeps reusable query sessions in a
// per-worker arena: worker w always gets the session pinned to slot w,
// so session state (and its client) survives across workload runs with
// no pool traffic at all. Systems without sessions are queried
// statelessly.
type SessionSystem interface {
	System
	AcquireSession(worker int) QuerySession
	ReleaseSession(worker int, s QuerySession)
}

// statelessSession adapts a plain System to the session interface.
type statelessSession struct{ sys System }

func (s statelessSession) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.sys.Window(w, probe, loss)
}

func (s statelessSession) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.sys.KNN(q, k, probe, loss)
}

// DSISystem runs queries over a DSI broadcast with a fixed kNN strategy.
// Use it by pointer: it carries a session arena.
type DSISystem struct {
	Label    string
	Index    *dsi.Index
	Strategy dsi.Strategy

	sessions sessionArena // of *dsiSession, pinned per worker
}

// NewDSI builds a DSI system. The label defaults to "DSI".
func NewDSI(ds *dataset.Dataset, cfg dsi.Config, strat dsi.Strategy, label string) (*DSISystem, error) {
	x, err := dsi.Build(ds, cfg)
	if err != nil {
		return nil, err
	}
	if label == "" {
		label = "DSI"
	}
	return &DSISystem{Label: label, Index: x, Strategy: strat}, nil
}

func (s *DSISystem) Name() string { return s.Label }

func (s *DSISystem) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return dsi.NewClient(s.Index, probe, loss).Window(w)
}

func (s *DSISystem) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return dsi.NewClient(s.Index, probe, loss).KNN(q, k, s.Strategy)
}

func (s *DSISystem) CycleLen() int { return s.Index.Prog.Len() }

// dsiSessionsMinted counts sessions constructed from scratch, so tests
// can assert that workloads reuse sessions instead of re-minting them.
var dsiSessionsMinted atomic.Int64

// AcquireSession returns worker's pinned session around one long-lived
// dsi.Session (built through the Open facade) that is re-tuned between
// queries: identical results and metrics to fresh clients, without the
// per-query dataset-sized allocations.
func (s *DSISystem) AcquireSession(worker int) QuerySession {
	return s.sessions.acquire(worker, func() QuerySession {
		dsiSessionsMinted.Add(1)
		sess, err := dsi.Open(s.Index)
		if err != nil {
			panic(fmt.Sprintf("experiment: opening DSI session: %v", err))
		}
		return &sessionAdapter{s: sess, strat: s.Strategy}
	})
}

// ReleaseSession checks the session back into its worker slot.
func (s *DSISystem) ReleaseSession(worker int, q QuerySession) { s.sessions.release(worker, q) }

// sessionAdapter adapts a dsi.Session to the harness's QuerySession:
// re-tune per query, recycle the result buffer, run kNN with the
// system's strategy. All session systems (classic, multi-channel,
// wire) share it. Arena mints count into dsiSessionsMinted at the
// mint site; stateless throwaway adapters stay uncounted so the
// reuse tests' exact bounds hold.
type sessionAdapter struct {
	s     *dsi.Session
	strat dsi.Strategy
	buf   []int
}

func (a *sessionAdapter) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	a.s.Tune(probe, loss)
	ids, st := a.s.WindowAppend(a.buf[:0], w)
	a.buf = ids
	return ids, st
}

func (a *sessionAdapter) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	a.s.Tune(probe, loss)
	ids, st := a.s.KNNAppend(a.buf[:0], q, k, a.strat)
	a.buf = ids
	return ids, st
}

// RTreeSystem is the on-air STR R-tree baseline.
type RTreeSystem struct{ B *air.RTreeBroadcast }

// NewRTree builds the R-tree baseline (fails at 32-byte packets).
func NewRTree(ds *dataset.Dataset, capacity, objectBytes int) (*RTreeSystem, error) {
	b, err := air.NewRTreeBroadcast(ds, capacity, objectBytes)
	if err != nil {
		return nil, err
	}
	return &RTreeSystem{B: b}, nil
}

func (s *RTreeSystem) Name() string { return "R-tree" }

func (s *RTreeSystem) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.B.Window(w, probe, loss)
}

func (s *RTreeSystem) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.B.KNN(q, k, probe, loss)
}

func (s *RTreeSystem) CycleLen() int { return s.B.Lay.Prog.Len() }

// HCISystem is the on-air Hilbert Curve Index baseline.
type HCISystem struct{ B *air.HCIBroadcast }

// NewHCI builds the HCI baseline.
func NewHCI(ds *dataset.Dataset, capacity, objectBytes int) (*HCISystem, error) {
	b, err := air.NewHCIBroadcast(ds, capacity, objectBytes)
	if err != nil {
		return nil, err
	}
	return &HCISystem{B: b}, nil
}

func (s *HCISystem) Name() string { return "HCI" }

func (s *HCISystem) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.B.Window(w, probe, loss)
}

func (s *HCISystem) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.B.KNN(q, k, probe, loss)
}

func (s *HCISystem) CycleLen() int { return s.B.Lay.Prog.Len() }

func mustSys(s System, err error) System {
	if err != nil {
		panic(fmt.Sprintf("experiment: building system: %v", err))
	}
	return s
}

// The massive experiment: the event-driven replay engine at
// population scale. Where every other experiment measures a broadcast
// organization with a few hundred step-wise queries, massive replays a
// whole population of concurrent clients — up to millions on one
// machine — against the four organizations (classic single channel,
// index/data split, sharded, erasure-coded) at matched per-channel
// bandwidth, and reports the percentile surface: p50/p95/p99/p999
// access latency and tuning time per layout, plus the engine's own
// throughput (clients/sec) and per-client state budget. Queries is the
// population knob: the default 100 is a smoke run, cmd/dsiload drives
// the same testbed at a million.

package experiment

import (
	"fmt"
	"time"

	"dsi/internal/massive"
)

// massivePercentiles is the percentile axis of the massive figures.
var massivePercentiles = []float64{50, 95, 99, 99.9}

// distAt indexes a massive.Dist by the percentile axis.
func distAt(d massive.Dist, p float64) float64 {
	switch p {
	case 50:
		return d.P50
	case 95:
		return d.P95
	case 99:
		return d.P99
	default:
		return d.P999
	}
}

// Massive replays the population on the event-driven engine, one arm
// at a time (each run already saturates the machine's cores, and
// sequential arms keep clients/sec honest).
func Massive(p Params) Result {
	p = p.withDefaults()
	bed, err := massive.NewTestbed(massive.BedConfig{
		N: p.N, Order: int(p.Order), Seed: p.Seed, ObjectBytes: p.ObjectBytes,
	})
	if err != nil {
		panic(fmt.Sprintf("experiment: massive testbed: %v", err))
	}
	cfg := massive.Config{Clients: p.Queries, Seed: p.Seed + 1000}

	reports := make([]massive.Report, len(bed.Arms))
	for i, arm := range bed.Arms {
		t0 := time.Now()
		res := massive.Run(bed, arm, cfg)
		reports[i] = res.ReportOf(arm, bed.X.Cfg.Capacity, time.Since(t0).Seconds())
	}

	lat := Figure{ID: "massive-lat", Title: "Population replay: access latency percentile surface",
		XLabel: "percentile", YLabel: "access latency (bytes)"}
	tun := Figure{ID: "massive-tun", Title: "Population replay: tuning time percentile surface",
		XLabel: "percentile", YLabel: "tuning time (bytes)"}
	for _, pc := range massivePercentiles {
		lat.X = append(lat.X, pc)
		tun.X = append(tun.X, pc)
		for _, rep := range reports {
			lat.AddPoint(rep.Name, distAt(rep.Latency, pc))
			tun.AddPoint(rep.Name, distAt(rep.Tuning, pc))
		}
	}

	t := Table{
		ID:    "massive",
		Title: fmt.Sprintf("Event-driven replay of %d concurrent clients per arm (64B packets)", cfg.Clients),
		Header: []string{"Arm", "Clients", "Lat p50", "Lat p95", "Lat p99", "Lat p999",
			"Tun p50", "Tun p99", "Sw p99", "clients/s", "B/client"},
	}
	for _, rep := range reports {
		t.Rows = append(t.Rows, []string{
			rep.Name,
			fmt.Sprintf("%d", rep.Clients),
			humanBytes(rep.Latency.P50), humanBytes(rep.Latency.P95),
			humanBytes(rep.Latency.P99), humanBytes(rep.Latency.P999),
			humanBytes(rep.Tuning.P50), humanBytes(rep.Tuning.P99),
			fmt.Sprintf("%.0f", rep.Switches.P99),
			fmt.Sprintf("%.0f", rep.ClientsPerSec),
			fmt.Sprintf("%.0f", rep.BytesPerClient),
		})
	}
	return Result{Figures: []Figure{lat, tun}, Tables: []Table{t}}
}

package experiment

import (
	"fmt"
	"strings"
)

// Series is one curve of a figure: a named sequence of Y values over
// the figure's shared X values.
type Series struct {
	Name string
	Y    []float64
}

// Figure is one reproduced paper figure (or sub-figure): a set of
// series over a common X axis, reported in bytes like the paper.
type Figure struct {
	ID     string // e.g. "fig9a"
	Title  string
	XLabel string
	YLabel string
	XFmt   string // format for X tick labels, default %g
	YFmt   string // format for Y values; default renders byte counts
	X      []float64
	Series []Series
}

// AddPoint appends y to the named series, creating it on first use.
func (f *Figure) AddPoint(series string, y float64) {
	for i := range f.Series {
		if f.Series[i].Name == series {
			f.Series[i].Y = append(f.Series[i].Y, y)
			return
		}
	}
	f.Series = append(f.Series, Series{Name: series, Y: []float64{y}})
}

// Format renders the figure as an aligned text table, one row per X
// value and one column per series.
func (f *Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "  (%s; values are %s)\n", f.XLabel, f.YLabel)
	xf := f.XFmt
	if xf == "" {
		xf = "%g"
	}

	header := fmt.Sprintf("  %-14s", f.XLabel)
	for _, s := range f.Series {
		header += fmt.Sprintf(" %16s", s.Name)
	}
	b.WriteString(header + "\n")
	b.WriteString("  " + strings.Repeat("-", len(header)-2) + "\n")
	for i, x := range f.X {
		row := fmt.Sprintf("  %-14s", fmt.Sprintf(xf, x))
		for _, s := range f.Series {
			switch {
			case i >= len(s.Y):
				row += fmt.Sprintf(" %16s", "-")
			case f.YFmt != "":
				row += fmt.Sprintf(" %16s", fmt.Sprintf(f.YFmt, s.Y[i]))
			default:
				row += fmt.Sprintf(" %16s", humanBytes(s.Y[i]))
			}
		}
		b.WriteString(row + "\n")
	}
	return b.String()
}

// humanBytes renders a byte count compactly (the paper uses 10^4/10^6
// scales on its axes).
func humanBytes(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2fMB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fKB", v/1e3)
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// CSV renders the figure as comma-separated values (one row per X
// value, one column per series), for plotting with external tools.
func (f *Figure) CSV() string {
	var b strings.Builder
	b.WriteString(strings.ReplaceAll(f.XLabel, ",", ";"))
	for _, s := range f.Series {
		b.WriteString("," + strings.ReplaceAll(s.Name, ",", ";"))
	}
	b.WriteString("\n")
	for i, x := range f.X {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, ",%.0f", s.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Table is one reproduced paper table with free-form string cells.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		b.WriteString(" ")
		for i, c := range cells {
			fmt.Fprintf(&b, " %-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	total := 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(" " + strings.Repeat("-", total) + "\n")
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Result bundles everything one experiment produces.
type Result struct {
	Figures []Figure
	Tables  []Table
}

// Format renders all artifacts.
func (r *Result) Format() string {
	var b strings.Builder
	for i := range r.Figures {
		b.WriteString(r.Figures[i].Format())
		b.WriteString("\n")
	}
	for i := range r.Tables {
		b.WriteString(r.Tables[i].Format())
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders all figures as CSV blocks separated by the figure ids.
func (r *Result) CSV() string {
	var b strings.Builder
	for i := range r.Figures {
		fmt.Fprintf(&b, "# %s\n%s\n", r.Figures[i].ID, r.Figures[i].CSV())
	}
	return b.String()
}

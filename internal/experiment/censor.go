// Censored-latency estimation for the uncoded retry baseline at
// paper-size objects.
//
// A 1KB object spans 16 packets and the rebroadcast-wait baseline
// needs all 16 to arrive in one cycle; at the fec sweep's high thetas
// that run of good slots arrives roughly never (see fecObjectBytes),
// so a plain replay of the retry arm would not terminate. Dropping the
// baseline from the 1KB figures leaves the coded arm's headline
// unanchored. Instead, the censored runner bounds every query at a
// cycle horizon and treats completion as a geometric trial process:
// each broadcast cycle the query either finishes (probability p) or
// retries into the next one. Completed queries report how many cycles
// they took; abandoned queries report horizonCycles failed trials. The
// censored-geometric maximum-likelihood estimate
//
//	p̂ = completions / Σ at-risk cycles
//
// then extrapolates the mean and the p95 the truncated replay could
// not observe directly. With zero completions the rule of three stands
// in (p̂ = 3/Σ at-risk cycles, the 95% upper confidence bound on p),
// which makes the plotted point a lower bound on the true latency —
// conservative in the direction that favors the baseline.

package experiment

import (
	"fmt"
	"math"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
	"dsi/internal/station"
)

// censorHorizonCycles bounds the censored replay: every query is
// abandoned after this many physical broadcast cycles. Mild thetas
// complete well inside it; at the harsh end nearly everything censors
// and the fit leans on the rule of three.
const censorHorizonCycles = 8

// censorHorizon is the sentinel a horizon-bounded receiver panics with
// when a query runs past its slot budget; the censored replay recovers
// exactly this type and re-raises everything else.
type censorHorizon struct{}

// censorReceiver bounds every query at a latency horizon: each
// time-advancing call checks the latency accumulated since the last
// Reset and aborts the query (panic with censorHorizon) once the
// horizon is crossed. The unwound session is discarded by the runner —
// a recovered client's knowledge base is mid-query garbage.
type censorReceiver struct {
	dsi.Receiver
	limit int64 // latency packets at which reception aborts
}

func (r *censorReceiver) check() {
	if r.Receiver.Stats().LatencyPackets >= r.limit {
		panic(censorHorizon{})
	}
}

func (r *censorReceiver) Tune(ch int) { r.Receiver.Tune(ch); r.check() }

func (r *censorReceiver) DozeUntilPos(pos int) { r.Receiver.DozeUntilPos(pos); r.check() }

func (r *censorReceiver) Next() (broadcast.Slot, bool) {
	s, ok := r.Receiver.Next()
	r.check()
	return s, ok
}

func (r *censorReceiver) Table(pos int) (*dsi.Table, bool) {
	tab, ok := r.Receiver.Table(pos)
	r.check()
	return tab, ok
}

func (r *censorReceiver) Header(pos, o int) (uint64, bool) {
	hc, ok := r.Receiver.Header(pos, o)
	r.check()
	return hc, ok
}

func (r *censorReceiver) Object(pos, o, skip int) bool {
	ok := r.Receiver.Object(pos, o, skip)
	r.check()
	return ok
}

func (r *censorReceiver) Poll() (*dsi.Layout, bool) {
	lay, ok := r.Receiver.Poll()
	r.check()
	return lay, ok
}

// mintCensored builds a fresh throwaway session whose receiver aborts
// past the latency horizon. Censored sessions never enter the arena
// (an aborted query leaves them unusable) and skip instrumentation
// (partial costs from abandoned queries would pollute the registry's
// replay counters).
func (s *fecSystem) mintCensored(horizon int64) *sessionAdapter {
	frx, err := station.NewFECReceiver(s.lay, 1, s.src, s.cfg, 0, nil)
	if err != nil {
		panic(fmt.Sprintf("experiment: FEC receiver: %v", err))
	}
	sess, err := dsi.Open(s.x, dsi.WithReceiver(&censorReceiver{Receiver: frx, limit: horizon}))
	if err != nil {
		panic(fmt.Sprintf("experiment: opening censored session: %v", err))
	}
	return &sessionAdapter{s: sess}
}

// censorObs is one query's contribution to the censored fit: its
// at-risk cycle count, and its observed costs when it completed.
type censorObs struct {
	trials   int64 // cycles to completion, or the horizon when censored
	latency  int64 // latency packets (completed queries only)
	tuning   int64 // tuning packets (completed queries only)
	complete bool
}

// CensoredDist is the outcome of a horizon-bounded replay: the fitted
// latency distribution plus the raw counts behind it.
type CensoredDist struct {
	Est       DistMetrics
	P         float64 // fitted per-cycle completion probability
	Queries   int
	Completed int // queries that finished inside the horizon
}

// RunWindowCensored replays the window workload against the system
// with every query abandoned after horizonCycles broadcast cycles and
// returns the censored-geometric estimate of the latency distribution.
// Completed queries verify against brute force as usual when the
// workload verifies; censored queries cannot (they have no result).
// Tuning time is reported as the completed-query observed mean, not
// extrapolated — the paper-size figures only plot latency.
func (wl *Workload) RunWindowCensored(sys *fecSystem, ratio float64, horizonCycles int) CensoredDist {
	qs := wl.genWindows(ratio)
	cycle := int64(sys.CycleLen())
	horizon := cycle * int64(horizonCycles)
	one := func(s QuerySession, i int) (o censorObs, censored bool) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(censorHorizon); !ok {
					panic(r)
				}
				o = censorObs{trials: int64(horizonCycles)}
				censored = true
			}
		}()
		q := qs[i]
		probe := int64(q.uProb * float64(cycle))
		got, st := s.Window(q.w, probe, wl.loss(q.seed))
		if wl.Verify {
			want := wl.DS.WindowBrute(q.w)
			if !sameIDs(got, want) {
				panic(fmt.Sprintf("experiment: %s window %v returned %d objects, want %d",
					sys.Name(), q.w, len(got), len(want)))
			}
		}
		n := (st.LatencyPackets + cycle - 1) / cycle
		if n < 1 {
			n = 1
		}
		return censorObs{trials: n, latency: st.LatencyPackets, tuning: st.TuningPackets, complete: true}, false
	}
	obs := make([]censorObs, len(qs))
	toks := queryTokens()
	parallelWorkers(len(qs), func(id int, next func() (int, bool)) {
		var s QuerySession = sys.mintCensored(horizon)
		for i, ok := next(); ok; i, ok = next() {
			toks <- struct{}{}
			o, censored := one(s, i)
			obs[i] = o
			if censored {
				s = sys.mintCensored(horizon) // the aborted session is mid-query garbage
			}
			<-toks
		}
	})
	return fitCensoredGeometric(obs, cycle, int64(sys.x.Cfg.Capacity))
}

// fitCensoredGeometric fits the geometric completion law to the
// observation set and converts it to byte metrics. The mean splits
// into the within-cycle offset (estimated from completed queries; a
// full cycle stands in when nothing completed) plus the expected extra
// cycles (1-p̂)/p̂; the p95 places the geometric 95th-percentile trial
// count on the same offset.
func fitCensoredGeometric(obs []censorObs, cycle, capacity int64) CensoredDist {
	var (
		completed      int
		trials         int64
		offSum, tunSum float64
	)
	for _, o := range obs {
		trials += o.trials
		if o.complete {
			completed++
			offSum += float64(o.latency - (o.trials-1)*cycle)
			tunSum += float64(o.tuning)
		}
	}
	p := 1.0
	offset := float64(cycle)
	if trials > 0 {
		if completed > 0 {
			p = float64(completed) / float64(trials)
			offset = offSum / float64(completed)
		} else {
			// Rule of three: every trial failed, so take the 95% upper
			// confidence bound on p — a lower bound on the latency.
			p = 3 / float64(trials)
		}
	}
	if p > 1 {
		p = 1
	}
	n95 := 1.0
	if p < 1 {
		n95 = math.Ceil(math.Log(0.05) / math.Log(1-p))
	}
	var meanTun float64
	if completed > 0 {
		meanTun = tunSum / float64(completed)
	}
	c, b := float64(cycle), float64(capacity)
	return CensoredDist{
		Est: DistMetrics{
			Mean: Metrics{LatencyBytes: (offset + c*(1-p)/p) * b, TuningBytes: meanTun * b},
			P95:  Metrics{LatencyBytes: (offset + (n95-1)*c) * b, TuningBytes: meanTun * b},
		},
		P:         p,
		Queries:   len(obs),
		Completed: completed,
	}
}

package experiment

import (
	"reflect"
	"testing"

	"dsi/internal/dsi"
	"dsi/internal/sched"
)

// shardParams keeps the sharded experiment tests fast while leaving
// enough frames for eight channels and a clearly resolvable skew.
var shardParams = Params{N: 500, Order: 7, Seed: 11, Queries: 20, Verify: true}

// TestShardedBeatsUniformUnderSkew is the PR's acceptance criterion:
// for Zipf theta >= 0.8 the skew-aware sharded layout answers the
// skewed window workload with strictly lower access latency than
// uniform striping at equal aggregate bandwidth — and the whole sweep
// is bit-identical across parallelism levels.
func TestShardedBeatsUniformUnderSkew(t *testing.T) {
	p := shardParams
	ds := p.Dataset()
	defer SetParallelism(Parallelism())

	type cell struct {
		theta float64
		n     int
		pt    shardedPoint
	}
	run := func() []cell {
		var out []cell
		for _, n := range ShardedChannels {
			for _, th := range ShardedThetas {
				out = append(out, cell{th, n, shardedCell(ds, p, th, n)})
			}
		}
		return out
	}

	SetParallelism(1)
	seq := run()
	SetParallelism(4)
	par := run()
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sharded sweep differs across parallelism levels:\nseq: %+v\npar: %+v", seq, par)
	}

	for _, c := range seq {
		if c.theta < 0.8 {
			continue
		}
		if c.pt.shard.LatencyBytes >= c.pt.split.LatencyBytes {
			t.Errorf("theta=%.1f x%d: shard latency %.0fB >= uniform split %.0fB",
				c.theta, c.n, c.pt.shard.LatencyBytes, c.pt.split.LatencyBytes)
		}
		if c.pt.wait > c.pt.uniformWait {
			t.Errorf("theta=%.1f x%d: planned wait %.1f slots above uniform %.1f",
				c.theta, c.n, c.pt.wait, c.pt.uniformWait)
		}
	}
}

// TestShardedExperimentStructure runs the registered experiment
// end-to-end (verified queries) and checks its shape.
func TestShardedExperimentStructure(t *testing.T) {
	res := Sharded(shardParams)
	if want := 2 * len(ShardedChannels); len(res.Figures) != want {
		t.Fatalf("sharded produced %d figures, want %d", len(res.Figures), want)
	}
	for _, f := range res.Figures {
		if len(f.X) != len(ShardedThetas) || len(f.Series) != 2 {
			t.Errorf("%s: %d xs, %d series", f.ID, len(f.X), len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.Y) != len(ShardedThetas) {
				t.Errorf("%s series %s: %d points", f.ID, s.Name, len(s.Y))
			}
		}
	}
}

// TestShardProfileMatchesWorkload: the profiler's hot frames are where
// the Zipf workload actually lands — the head of the HC order carries
// more weight than the tail for theta > 0.
func TestShardProfileMatchesWorkload(t *testing.T) {
	p := shardParams
	ds := p.Dataset()
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	wl := p.workload(ds)
	train := wl.zipfWindows(1.0, DefaultWinSideRatio, 7000, 200)
	prof := shardProfile(x, train)
	head, tail := 0.0, 0.0
	for f := 0; f < x.NF/10; f++ {
		head += prof.Freq[f]
	}
	for f := x.NF - x.NF/10; f < x.NF; f++ {
		tail += prof.Freq[f]
	}
	if head <= 2*tail {
		t.Fatalf("head weight %.0f not dominant over tail %.0f", head, tail)
	}
	// And the resulting plan gives the head shorter cycles: the shard
	// containing frame 0 must be smaller than the one containing the
	// last frame.
	plan, err := sched.Partition(prof, 3)
	if err != nil {
		t.Fatal(err)
	}
	first := plan.Bounds[1] - plan.Bounds[0]
	last := plan.Bounds[len(plan.Bounds)-1] - plan.Bounds[len(plan.Bounds)-2]
	if first >= last {
		t.Fatalf("hot shard (%d frames) not smaller than cold shard (%d): bounds %v",
			first, last, plan.Bounds)
	}
}

// TestChanLossStructure runs the heterogeneous channel-quality
// experiment end-to-end with verified queries and checks that loss
// always deteriorates both metrics relative to the clean run.
func TestChanLossStructure(t *testing.T) {
	res := ChanLoss(shardParams)
	if len(res.Tables) != 1 {
		t.Fatalf("chanloss produced %d tables", len(res.Tables))
	}
	tb := res.Tables[0]
	if want := len(ChanLossThetas) * 3; len(tb.Rows) != want {
		t.Fatalf("chanloss has %d rows, want %d", len(tb.Rows), want)
	}
	for _, row := range tb.Rows {
		for _, cell := range row[4:] {
			if len(cell) == 0 || cell[len(cell)-1] != '%' {
				t.Errorf("cell %q is not a percentage", cell)
			}
		}
	}
}

// TestChanLossDataLossCostsLatency: losing data packets costs more
// latency than losing the (fast-recurring) index tables at the same
// per-channel loss rate.
func TestChanLossDataLossCostsLatency(t *testing.T) {
	p := shardParams
	ds := p.Dataset()
	wl := p.workload(ds)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: ChanLossChannels, Scheduler: dsi.SchedSplit, SwitchSlots: DefaultSwitchSlots})
	if err != nil {
		t.Fatal(err)
	}
	scs := chanLossScenarios()
	indexOnly := chanLossRun(lay, wl, 0.4, scs[0])
	dataOnly := chanLossRun(lay, wl, 0.4, scs[1])
	if dataOnly.LatencyBytes <= indexOnly.LatencyBytes {
		t.Errorf("data-channel loss latency %.0fB <= index-channel loss %.0fB",
			dataOnly.LatencyBytes, indexOnly.LatencyBytes)
	}
}

// BenchmarkSharded is the CI smoke benchmark of the sched layer: one
// verified skewed workload comparison at 4 channels.
func BenchmarkSharded(b *testing.B) {
	p := Params{N: 400, Order: 7, Seed: 11, Queries: 10, Verify: true}
	ds := p.Dataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shardedCell(ds, p, 1.0, 4)
	}
}

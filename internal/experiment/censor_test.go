package experiment

import (
	"math"
	"testing"

	"dsi/internal/wire"
)

// TestCensoredGeometricFit pins the estimator's arithmetic on
// hand-computed observation sets.
func TestCensoredGeometricFit(t *testing.T) {
	const cycle, capacity = 100, 64

	// Every query completes in its first cycle: p̂ = 1, both the mean
	// and the p95 collapse to the observed within-cycle mean.
	d := fitCensoredGeometric([]censorObs{
		{trials: 1, latency: 40, tuning: 10, complete: true},
		{trials: 1, latency: 60, tuning: 20, complete: true},
	}, cycle, capacity)
	if d.P != 1 || d.Completed != 2 || d.Queries != 2 {
		t.Fatalf("all-completed fit: %+v", d)
	}
	if d.Est.Mean.LatencyBytes != 50*capacity || d.Est.P95.LatencyBytes != 50*capacity {
		t.Fatalf("all-completed latency: %+v", d.Est)
	}
	if d.Est.Mean.TuningBytes != 15*capacity {
		t.Fatalf("all-completed tuning: %+v", d.Est)
	}

	// Mixed: completions after 1, 2, and 4 cycles (each 40 packets into
	// its final cycle) plus one query censored at 8 cycles. p̂ = 3/15,
	// mean = 40 + cycle·(1-p̂)/p̂ = 440, and the geometric 95th
	// percentile needs ceil(ln 0.05 / ln 0.8) = 14 trials → 1340.
	d = fitCensoredGeometric([]censorObs{
		{trials: 1, latency: 40, complete: true},
		{trials: 2, latency: 140, complete: true},
		{trials: 4, latency: 340, complete: true},
		{trials: 8},
	}, cycle, capacity)
	if d.Completed != 3 || math.Abs(d.P-0.2) > 1e-12 {
		t.Fatalf("mixed fit: %+v", d)
	}
	if got := d.Est.Mean.LatencyBytes; math.Abs(got-440*capacity) > 1e-6 {
		t.Fatalf("mixed mean latency %v, want %v", got, 440*capacity)
	}
	if got := d.Est.P95.LatencyBytes; math.Abs(got-1340*capacity) > 1e-6 {
		t.Fatalf("mixed p95 latency %v, want %v", got, 1340*capacity)
	}

	// Zero completions: the rule of three stands in, p̂ = 3/16, with a
	// full cycle as the offset stand-in.
	d = fitCensoredGeometric([]censorObs{{trials: 8}, {trials: 8}}, cycle, capacity)
	if d.Completed != 0 || math.Abs(d.P-3.0/16) > 1e-12 {
		t.Fatalf("censored-only fit: %+v", d)
	}
	p := 3.0 / 16
	want := (cycle + cycle*(1-p)/p) * capacity
	if got := d.Est.Mean.LatencyBytes; math.Abs(got-want) > 1e-6 {
		t.Fatalf("censored-only mean latency %v, want %v", got, want)
	}
}

// TestRunWindowCensoredLossless: on a clean channel every query
// completes inside the horizon (verified against brute force), and the
// fitted mean lands near the plain replay's.
func TestRunWindowCensoredLossless(t *testing.T) {
	p := Params{N: 400, Order: 7, Seed: 61, Queries: 8, Verify: true}
	x, arms := fecBed(p)
	retry := arms[0]
	wl := p.workload(x.DS)

	d := wl.RunWindowCensored(retry, DefaultWinSideRatio, 4)
	if d.Completed != d.Queries || d.Queries != p.Queries {
		t.Fatalf("lossless replay censored queries: %+v", d)
	}
	plain := wl.RunWindowDist(retry, DefaultWinSideRatio)
	if d.Est.Mean.LatencyBytes < plain.Mean.LatencyBytes/3 ||
		d.Est.Mean.LatencyBytes > plain.Mean.LatencyBytes*3 {
		t.Fatalf("lossless estimate %.0fB far from replay %.0fB",
			d.Est.Mean.LatencyBytes, plain.Mean.LatencyBytes)
	}
}

// TestRunWindowCensoredHighTheta: at the sweep's worst burst loss the
// 1KB retry arm censors queries instead of hanging, and the fit
// extrapolates well past a single cycle.
func TestRunWindowCensoredHighTheta(t *testing.T) {
	p := Params{N: 300, Order: 7, Seed: 53, Queries: 6}.withDefaults()
	x, _ := fecBed1024(p)
	retry := newFECSystem("Retry 1KB (censored est)", x, wire.FECConfig{}, nil)

	wl := p.workload(x.DS)
	wl.Theta = 0.85
	wl.BurstLen = FECBurstLen
	wl.LossData = true

	d := wl.RunWindowCensored(retry, DefaultWinSideRatio, 2)
	if d.Completed >= d.Queries {
		t.Fatalf("worst-theta replay completed everything: %+v", d)
	}
	cycleBytes := float64(retry.CycleLen() * x.Cfg.Capacity)
	if d.Est.Mean.LatencyBytes <= cycleBytes {
		t.Fatalf("estimate %.0fB does not extrapolate past one cycle (%.0fB)",
			d.Est.Mean.LatencyBytes, cycleBytes)
	}
	if d.Est.P95.LatencyBytes < d.Est.Mean.LatencyBytes {
		t.Fatalf("p95 %.0fB below mean %.0fB", d.Est.P95.LatencyBytes, d.Est.Mean.LatencyBytes)
	}
}

package experiment

import "testing"

// TestMassiveExperimentRuns smoke-runs the registered massive
// experiment: four arms, the full percentile surface, and a sane
// throughput/state-budget column.
func TestMassiveExperimentRuns(t *testing.T) {
	res := Massive(Params{N: 400, Order: 7, Seed: 17, Queries: 200})
	if len(res.Figures) != 2 {
		t.Fatalf("massive produced %d figures, want 2", len(res.Figures))
	}
	for _, f := range res.Figures {
		if len(f.Series) != 4 {
			t.Fatalf("figure %s has %d series, want 4 arms", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.Y) != len(massivePercentiles) {
				t.Fatalf("figure %s series %s has %d points, want %d",
					f.ID, s.Name, len(s.Y), len(massivePercentiles))
			}
			// Percentile surfaces are monotone nondecreasing.
			for i := 1; i < len(s.Y); i++ {
				if s.Y[i] < s.Y[i-1] {
					t.Fatalf("figure %s series %s not monotone at %d: %v", f.ID, s.Name, i, s.Y)
				}
			}
		}
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 4 {
		t.Fatalf("massive table malformed: %+v", res.Tables)
	}
}

// BenchmarkMassive is the CI smoke benchmark of the massive replay.
func BenchmarkMassive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Massive(Params{N: 400, Order: 7, Seed: 19, Queries: 500})
	}
}

package experiment

import (
	"testing"

	"dsi/internal/obs"
	"dsi/internal/wire"
)

// TestFECBeatsRetryUnderBurst is the acceptance regression of the
// erasure-coded broadcast: on the bursty Gilbert-Elliott channel at
// theta 0.85 (losses on every packet kind), the heavy Reed-Solomon arm
// must answer windows with strictly lower mean AND p95 access latency
// than the rebroadcast-wait retry baseline at matched aggregate
// bandwidth — with every result verified against brute force.
func TestFECBeatsRetryUnderBurst(t *testing.T) {
	p := Params{N: 400, Order: 8, Seed: 31, Queries: 16, Verify: true}
	x, arms := fecBed(p)
	ds := x.DS

	wl := p.workload(ds)
	wl.Theta = 0.85
	wl.BurstLen = FECBurstLen
	wl.LossData = true

	retry := wl.RunWindowDist(arms[0], DefaultWinSideRatio)
	heavy := wl.RunWindowDist(arms[2], DefaultWinSideRatio)

	if heavy.Mean.LatencyBytes >= retry.Mean.LatencyBytes {
		t.Errorf("mean latency: FEC heavy %.0fB not below retry %.0fB",
			heavy.Mean.LatencyBytes, retry.Mean.LatencyBytes)
	}
	if heavy.P95.LatencyBytes >= retry.P95.LatencyBytes {
		t.Errorf("p95 latency: FEC heavy %.0fB not below retry %.0fB",
			heavy.P95.LatencyBytes, retry.P95.LatencyBytes)
	}
}

// TestFECRate1MatchesWireReceiver pins the baseline arm to the plain
// byte-level receiver: the zero code's metrics must equal a
// station.WireReceiver system's to the bit.
func TestFECRate1MatchesWireReceiver(t *testing.T) {
	p := Params{N: 400, Order: 7, Seed: 37, Queries: 12, Verify: true}
	x, arms := fecBed(p)
	ds := x.DS
	base := arms[0]
	plain := &wireSystem{label: "Wire", x: x, lay: x.SingleLayout(), src: base.src}

	for _, theta := range []float64{0, 0.3} {
		wl := p.workload(ds)
		wl.Theta = theta
		wl.BurstLen = FECBurstLen
		wl.LossData = true
		got := wl.RunWindow(base, DefaultWinSideRatio)
		want := wl.RunWindow(plain, DefaultWinSideRatio)
		if got != want {
			t.Errorf("theta=%v: rate-1 arm %v != wire receiver %v", theta, got, want)
		}
	}
}

// TestFECCodesValidate pins the sweep's code constructions to the wire
// layer's validation rules at the experiment's geometry.
func TestFECCodesValidate(t *testing.T) {
	p := Params{N: 400, Order: 7, Seed: 41, Queries: 1}
	x, arms := fecBed(p)
	for _, sys := range arms[1:] {
		if err := sys.cfg.Validate(x.TablePackets, x.ObjPackets); err != nil {
			t.Errorf("%s: %v", sys.Name(), err)
		}
	}
	light, heavy := arms[1], arms[2]
	if r := light.Rate(); r < 0.5 {
		t.Errorf("light code rate %.3f implausibly low", r)
	}
	worst := FECThetas[len(FECThetas)-1]
	if r := heavy.Rate(); r > 1-worst {
		t.Errorf("heavy code rate %.3f exceeds the capacity bound %.3f for theta %.2f",
			r, 1-worst, worst)
	}
	if zero := (wire.FECConfig{}); arms[0].cfg != zero {
		t.Errorf("baseline arm carries a code: %+v", arms[0].cfg)
	}
}

// TestFECExperimentRuns smoke-runs the registered experiment with
// verification on.
func TestFECExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("fec sweep is minutes-long at full size")
	}
	res := FEC(Params{N: 300, Order: 7, Seed: 43, Queries: 4, Verify: true})
	if len(res.Figures) != 6 {
		t.Fatalf("fec produced %d figures, want 6", len(res.Figures))
	}
	for i, f := range res.Figures {
		// fec-a..d sweep the three small-object arms; fec-e/f carry the
		// coded paper-size (1KB) arm plus the censored retry estimate.
		wantSeries := 3
		if i >= 4 {
			wantSeries = 2
		}
		if len(f.Series) != wantSeries {
			t.Fatalf("figure %s has %d series, want %d", f.ID, len(f.Series), wantSeries)
		}
		for _, s := range f.Series {
			if len(s.Y) != len(FECThetas) {
				t.Fatalf("figure %s series %s has %d points, want %d", f.ID, s.Name, len(s.Y), len(FECThetas))
			}
		}
	}
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 5 {
		t.Fatalf("fec code-rate table malformed: %+v", res.Tables)
	}
}

// TestFECBed1024PaperSizeCodedOnly pins the paper-size bed: 1024-byte
// objects, no uncoded retry arm (it would not terminate at the sweep's
// high thetas), and codes that validate at the 16-packet geometry.
func TestFECBed1024PaperSizeCodedOnly(t *testing.T) {
	p := Params{N: 300, Order: 7, Seed: 53, Queries: 1}.withDefaults()
	x, arms := fecBed1024(p)
	if x.Cfg.ObjectBytes != 1024 {
		t.Fatalf("paper-size bed has %d-byte objects, want 1024", x.Cfg.ObjectBytes)
	}
	if len(arms) != 1 {
		t.Fatalf("paper-size bed has %d arms, want the single heavy coded arm", len(arms))
	}
	for _, sys := range arms {
		if !sys.cfg.Enabled() {
			t.Fatalf("%s: paper-size bed must not carry an uncoded arm", sys.Name())
		}
		if err := sys.cfg.Validate(x.TablePackets, x.ObjPackets); err != nil {
			t.Errorf("%s: %v", sys.Name(), err)
		}
	}
}

// BenchmarkFEC is the CI smoke benchmark of the fec sweep.
func BenchmarkFEC(b *testing.B) {
	// Instrumented run: the obs counter averages ride into the bench
	// artifact (units suffixed _total) next to the latency figures.
	reg := obs.NewRegistry()
	for i := 0; i < b.N; i++ {
		FEC(Params{N: 300, Order: 7, Seed: 47, Queries: 3, Verify: true, Obs: reg})
	}
	b.StopTimer()
	snap := reg.Snapshot()
	n := float64(b.N)
	b.ReportMetric(snap["station_fec_recovered_packets_total"]/n, "fec_recovered_total")
	b.ReportMetric(snap["station_fec_group_solves_total"]/n, "fec_solves_total")
	b.ReportMetric(snap["dsi_receiver_losses_total{channel=\"0\"}"]/n, "losses_total")
}

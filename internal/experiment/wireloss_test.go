package experiment

import (
	"testing"

	"dsi/internal/dsi"
)

// TestWireLossSimWireBitIdentical is the acceptance regression of the
// byte-level receiver: over a static transmitter the Wire arm matches
// the Sim arm exactly — results verified against brute force, metrics
// equal to the bit — at every loss rate and at two parallelism levels.
func TestWireLossSimWireBitIdentical(t *testing.T) {
	p := Params{N: 400, Order: 7, Seed: 17, Queries: 12, Verify: true}
	x, lay0, _, mt, _ := wireLossBed(p)
	ds := x.DS

	sim := &MultiDSISystem{Label: "Sim", Lay: lay0, Strategy: dsi.Conservative}
	wire := &wireSystem{label: "Wire", x: x, lay: lay0, src: mt, strat: dsi.Conservative}

	defer SetParallelism(Parallelism())
	for _, theta := range []float64{0, 0.25} {
		wl := p.workload(ds)
		wl.Theta = theta
		wl.BurstLen = Table1GEBurstLen

		var ref Metrics
		for pi, workers := range []int{1, 4} {
			SetParallelism(workers)
			simM := wl.RunWindow(sim, DefaultWinSideRatio)
			wireM := wl.RunWindow(wire, DefaultWinSideRatio)
			if simM != wireM {
				t.Errorf("theta=%v workers=%d: wire %v != sim %v", theta, workers, wireM, simM)
			}
			simK := wl.RunKNN(sim, 5)
			wireK := wl.RunKNN(wire, 5)
			if simK != wireK {
				t.Errorf("theta=%v workers=%d: wire kNN %v != sim %v", theta, workers, wireK, simK)
			}
			if pi == 0 {
				ref = wireM
			} else if wireM != ref {
				t.Errorf("theta=%v: wire metrics differ across parallelism: %v vs %v", theta, wireM, ref)
			}
		}
	}
}

// TestWireLossStaleConverges runs the stale-tune-in arm with Verify on:
// every query must fetch the committed directory over the lossy air
// and still answer exactly (runWindows cross-checks brute force).
func TestWireLossStaleConverges(t *testing.T) {
	p := Params{N: 400, Order: 7, Seed: 19, Queries: 10, Verify: true}
	x, lay0, lay1, _, rb := wireLossBed(p)
	ds := x.DS
	stale := &staleWireSystem{label: "Wire stale", x: x, stale: lay0, onAir: lay1, src: rb}

	for _, theta := range []float64{0, 0.25} {
		wl := p.workload(ds)
		wl.Theta = theta
		wl.BurstLen = Table1GEBurstLen
		m := wl.RunWindow(stale, DefaultWinSideRatio)
		if m.LatencyBytes <= 0 || m.TuningBytes <= 0 {
			t.Fatalf("theta=%v: degenerate stale metrics %v", theta, m)
		}
	}
}

// TestWireLossExperimentRuns smoke-runs the registered experiment with
// verification on.
func TestWireLossExperimentRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("wireloss sweep is minutes-long at full size")
	}
	res := WireLoss(Params{N: 300, Order: 7, Seed: 23, Queries: 6, Verify: true})
	if len(res.Figures) != 2 {
		t.Fatalf("wireloss produced %d figures, want 2", len(res.Figures))
	}
	for _, f := range res.Figures {
		if len(f.Series) != 3 {
			t.Fatalf("figure %s has %d series, want 3", f.ID, len(f.Series))
		}
	}
	// The Sim and Wire series must coincide exactly at every theta.
	lat := res.Figures[0]
	var simS, wireS []float64
	for _, s := range lat.Series {
		switch s.Name {
		case "Sim":
			simS = s.Y
		case "Wire":
			wireS = s.Y
		}
	}
	for i := range simS {
		if simS[i] != wireS[i] {
			t.Errorf("theta=%v: wire latency %v != sim %v", lat.X[i], wireS[i], simS[i])
		}
	}
}

// BenchmarkWireLoss is the CI smoke benchmark of the wireloss sweep.
func BenchmarkWireLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		WireLoss(Params{N: 300, Order: 7, Seed: 29, Queries: 4, Verify: true})
	}
}

//go:build race

package experiment

// raceEnabled reports whether the race detector is on, which changes
// sync.Pool reuse behavior.
const raceEnabled = true

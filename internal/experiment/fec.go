// The fec experiment: erasure-coded broadcast against the
// rebroadcast-wait retry baseline, at matched aggregate bandwidth.
// Every arm transmits on the same single channel at the same bit rate;
// the coded arms spend part of that rate on parity tails (their cycles
// are physically longer), the retry arm spends all of it on content
// and pays for losses with whole extra cycles. The sweep runs the
// Gilbert-Elliott burst channel, loss on every packet kind, and
// reports the mean and the 95th-percentile access latency and tuning
// time — the tail is where in-stream recovery earns its overhead,
// because one unrecoverable packet costs the retry arm a full cycle.
//
// Code-rate choice follows the capacity bound: a unit of K content
// packets needs its K + R coded packets to carry K surviving ones, so
// the code rate K/(K+R) must stay below the channel's good fraction
// 1-theta, with slack for burst variance. The light XOR arm (rate
// ~0.8) is sized for the mild end of the sweep; the heavy
// Reed-Solomon arm is sized for the worst theta and wins there at the
// price of a much longer cycle everywhere else.

package experiment

import (
	"fmt"
	"math"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/spatial"
	"dsi/internal/station"
	"dsi/internal/wire"
)

// FECThetas is the Gilbert-Elliott stationary loss sweep of the fec
// experiment.
var FECThetas = []float64{0.3, 0.6, 0.85}

// FECBurstLen is the mean burst length (packets) of the fec
// experiment's loss process.
const FECBurstLen = 8

// fecObjectBytes pins the experiment's object size to 4 packets. The
// bound is the retry baseline, which needs a run of ObjPackets
// consecutive good slots per object: at the sweep's worst point the
// Gilbert-Elliott good runs average BurstLen*(1-theta)/theta ~ 1.4
// packets, so a 4-packet object succeeds every ~10^2 cycles while the
// default 16-packet object would take ~10^9 — the uncoded arm would
// never terminate. The coded arms are insensitive to the choice.
const fecObjectBytes = 256

// fecLightCode is the low-overhead interleaved-XOR configuration: one
// parity packet per group of up to four members, so a short burst
// costs each group at most one erasure.
func fecLightCode(x *dsi.Index) wire.FECConfig {
	groups := func(k int) int { return (k + 3) / 4 }
	return wire.FECConfig{
		Table:  wire.FECCode{Groups: groups(x.TablePackets), Parity: 1},
		Object: wire.FECCode{Groups: groups(x.ObjPackets), Parity: 1},
	}
}

// fecHeavyCode sizes a single-group Reed-Solomon code for the worst
// loss rate of the sweep: R grows until the expected survivors among
// K+R packets exceed K with a 50% margin (the burst channel's variance
// is far from binomial).
func fecHeavyCode(x *dsi.Index, theta float64) wire.FECConfig {
	size := func(k int) wire.FECCode {
		r := int(math.Ceil(1.5 * float64(k) * theta / (1 - theta)))
		if k+r > 255 {
			r = 255 - k
		}
		return wire.FECCode{Groups: 1, Parity: r}
	}
	return wire.FECConfig{Table: size(x.TablePackets), Object: size(x.ObjPackets)}
}

// fecSystem runs queries through station.FECReceiver over a coded
// single-channel transmitter, one receiver+session pinned per worker.
// The zero code is exactly the retry baseline: a plain transmitter
// decoded by the plain byte-level receiver.
type fecSystem struct {
	label string
	x     *dsi.Index
	lay   *dsi.Layout
	src   station.PacketSource
	cfg   wire.FECConfig
	cycle int // physical slots per cycle — what probe positions scale to
	reg   *obs.Registry

	sessions sessionArena
}

// newFECSystem builds the coded transmitter and its system wrapper.
func newFECSystem(label string, x *dsi.Index, cfg wire.FECConfig, reg *obs.Registry) *fecSystem {
	tx, err := station.NewTransmitterFEC(x, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiment: coded transmitter: %v", err))
	}
	if reg != nil {
		tx.SetObs(obs.NewStationMetrics(reg, 1))
	}
	s := &fecSystem{label: label, x: x, lay: x.SingleLayout(), src: tx, cfg: cfg, reg: reg}
	rx, err := station.NewFECReceiver(s.lay, 1, s.src, s.cfg, 0, nil)
	if err != nil {
		panic(fmt.Sprintf("experiment: FEC receiver: %v", err))
	}
	s.cycle = rx.CycleSlots()
	return s
}

func (s *fecSystem) Name() string { return s.label }

func (s *fecSystem) CycleLen() int { return s.cycle }

// Rate returns the code rate: the fraction of the physical cycle
// carrying content.
func (s *fecSystem) Rate() float64 { return float64(s.lay.ProbeCycle()) / float64(s.cycle) }

func (s *fecSystem) mint() *sessionAdapter {
	frx, err := station.NewFECReceiver(s.lay, 1, s.src, s.cfg, 0, nil)
	if err != nil {
		panic(fmt.Sprintf("experiment: FEC receiver: %v", err))
	}
	var rx dsi.Receiver = frx
	if s.reg != nil {
		frx.SetObs(obs.NewFECMetrics(s.reg))
		rx = obs.InstrumentReceiver(rx, obs.NewReceiverMetrics(s.reg, 1))
	}
	sess, err := dsi.Open(s.x, dsi.WithReceiver(rx))
	if err != nil {
		panic(fmt.Sprintf("experiment: opening FEC session: %v", err))
	}
	return &sessionAdapter{s: sess}
}

func (s *fecSystem) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.mint().Window(w, probe, loss)
}

func (s *fecSystem) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.mint().KNN(q, k, probe, loss)
}

// AcquireSession returns worker's pinned coded session.
func (s *fecSystem) AcquireSession(worker int) QuerySession {
	return s.sessions.acquire(worker, func() QuerySession {
		dsiSessionsMinted.Add(1)
		return s.mint()
	})
}

// ReleaseSession checks the session back into its worker slot.
func (s *fecSystem) ReleaseSession(worker int, q QuerySession) { s.sessions.release(worker, q) }

// fecBed assembles the experiment's arms over one index: the retry
// baseline (rate 1), the light XOR code, and the heavy Reed-Solomon
// code sized for the sweep's worst theta.
func fecBed(p Params) (x *dsi.Index, arms []*fecSystem) {
	ds := p.Dataset()
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: fecObjectBytes})
	if err != nil {
		panic(err)
	}
	worst := FECThetas[len(FECThetas)-1]
	arms = []*fecSystem{
		newFECSystem("Retry", x, wire.FECConfig{}, p.Obs),
		newFECSystem("FEC light", x, fecLightCode(x), p.Obs),
		newFECSystem("FEC heavy", x, fecHeavyCode(x, worst), p.Obs),
	}
	return x, arms
}

// fecBed1024 assembles the coded-only arm at the paper-default
// 1024-byte object size. The retry baseline is deliberately absent —
// a 16-packet object needs 16 consecutive good slots, which at the
// sweep's high thetas arrives roughly never (see fecObjectBytes) —
// and so is the light code, whose rate ~0.8 sits just as hopelessly
// above the worst theta's capacity bound 1-theta. Only the heavy
// Reed-Solomon code, sized for the worst theta, terminates across the
// full sweep at paper-size objects. FEC puts the retry baseline back
// onto the 1KB figures anyway — as a horizon-bounded censored
// estimate (censor.go), not a replay arm.
func fecBed1024(p Params) (x *dsi.Index, arms []*fecSystem) {
	ds := p.Dataset()
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: p.ObjectBytes})
	if err != nil {
		panic(err)
	}
	worst := FECThetas[len(FECThetas)-1]
	arms = []*fecSystem{
		newFECSystem("FEC heavy 1KB", x, fecHeavyCode(x, worst), p.Obs),
	}
	return x, arms
}

// FEC sweeps code rate against Gilbert-Elliott burst loss and reports
// the window-query cost distribution of every arm, plus the code-rate
// table.
func FEC(p Params) Result {
	p = p.withDefaults()
	x, arms := fecBed(p)
	x1k, arms1k := fecBed1024(p)
	// The uncoded baseline cannot replay to completion at paper size
	// (see fecBed1024), but it can be estimated: a horizon-bounded
	// replay plus the censored-geometric fit puts it back on the 1KB
	// figures. Uninstrumented — abandoned queries' partial costs would
	// pollute the registry's replay counters.
	retry1k := newFECSystem("Retry 1KB (censored est)", x1k, wire.FECConfig{}, nil)
	ds := x.DS

	mk := func(id, title, y string) Figure {
		return Figure{ID: id, Title: title, XLabel: "loss rate theta", YLabel: y}
	}
	figs := []Figure{
		mk("fec-a", "Erasure-coded broadcast: mean window access latency", "access latency (bytes)"),
		mk("fec-b", "Erasure-coded broadcast: p95 window access latency", "p95 access latency (bytes)"),
		mk("fec-c", "Erasure-coded broadcast: mean window tuning time", "tuning time (bytes)"),
		mk("fec-d", "Erasure-coded broadcast: p95 window tuning time", "p95 tuning time (bytes)"),
		mk("fec-e", "Erasure-coded broadcast, 1KB objects: mean window access latency", "access latency (bytes)"),
		mk("fec-f", "Erasure-coded broadcast, 1KB objects: p95 window access latency", "p95 access latency (bytes)"),
	}
	type thetaPoint struct {
		small, paper []DistMetrics
		cens         CensoredDist
	}
	lossy := func(theta float64) *Workload {
		wl := p.workload(ds)
		wl.Theta = theta
		wl.BurstLen = FECBurstLen
		wl.LossData = true
		return wl
	}
	run := func(sys *fecSystem, theta float64) DistMetrics {
		return lossy(theta).RunWindowDist(sys, DefaultWinSideRatio)
	}
	pts := sweep(len(FECThetas), func(i int) thetaPoint {
		var pt thetaPoint
		for _, sys := range arms {
			pt.small = append(pt.small, run(sys, FECThetas[i]))
		}
		for _, sys := range arms1k {
			pt.paper = append(pt.paper, run(sys, FECThetas[i]))
		}
		pt.cens = lossy(FECThetas[i]).RunWindowCensored(retry1k, DefaultWinSideRatio, censorHorizonCycles)
		return pt
	})
	for i, theta := range FECThetas {
		for f := range figs {
			figs[f].X = append(figs[f].X, theta)
		}
		for a, sys := range arms {
			d := pts[i].small[a]
			figs[0].AddPoint(sys.Name(), d.Mean.LatencyBytes)
			figs[1].AddPoint(sys.Name(), d.P95.LatencyBytes)
			figs[2].AddPoint(sys.Name(), d.Mean.TuningBytes)
			figs[3].AddPoint(sys.Name(), d.P95.TuningBytes)
		}
		for a, sys := range arms1k {
			d := pts[i].paper[a]
			figs[4].AddPoint(sys.Name(), d.Mean.LatencyBytes)
			figs[5].AddPoint(sys.Name(), d.P95.LatencyBytes)
		}
		figs[4].AddPoint(retry1k.Name(), pts[i].cens.Est.Mean.LatencyBytes)
		figs[5].AddPoint(retry1k.Name(), pts[i].cens.Est.P95.LatencyBytes)
	}

	t := Table{
		ID:     "fec-rates",
		Title:  "Code rates at matched aggregate bandwidth (64B packets)",
		Header: []string{"Arm", "Table code", "Object code", "Rate", "Cycle (slots)"},
	}
	codeStr := func(c wire.FECCode, k int) string {
		if !c.Enabled() {
			return "-"
		}
		return fmt.Sprintf("G=%d R=%d (K=%d)", c.Groups, c.Parity, k)
	}
	addRows := func(xr *dsi.Index, systems []*fecSystem) {
		for _, sys := range systems {
			t.Rows = append(t.Rows, []string{
				sys.Name(),
				codeStr(sys.cfg.Table, xr.TablePackets),
				codeStr(sys.cfg.Object, xr.ObjPackets),
				fmt.Sprintf("%.3f", sys.Rate()),
				fmt.Sprintf("%d", sys.cycle),
			})
		}
	}
	addRows(x, arms)
	addRows(x1k, arms1k)
	addRows(x1k, []*fecSystem{retry1k})
	return Result{Figures: figs, Tables: []Table{t}}
}

package experiment

import (
	"reflect"
	"testing"

	"dsi/internal/dsi"
)

// TestParallelBitIdentical is the parallel harness's core guarantee:
// for a fixed seed, the figure series produced on many workers are
// bit-identical to the fully sequential run.
func TestParallelBitIdentical(t *testing.T) {
	p := Params{N: 300, Order: 6, Seed: 11, Queries: 6, Verify: true}
	defer SetParallelism(Parallelism())

	cases := []struct {
		name string
		fn   func(Params) Result
	}{
		{"fig8", Fig8},
		{"fig10", Fig10},
		{"table1", Table1},
		{"costmodel", CostModel},
	}
	for _, tc := range cases {
		SetParallelism(1)
		seq := tc.fn(p)
		SetParallelism(8)
		par := tc.fn(p)
		if !reflect.DeepEqual(seq, par) {
			t.Errorf("%s: parallel result differs from sequential:\nseq:\n%s\npar:\n%s",
				tc.name, seq.Format(), par.Format())
		}
	}
}

// TestWorkloadParallelMatchesSequential checks raw metrics equality at
// the workload level across several parallelism settings, including
// under the loss model (whose per-query seeds must make corruption
// independent of scheduling).
func TestWorkloadParallelMatchesSequential(t *testing.T) {
	p := Params{N: 300, Order: 6, Seed: 5, Queries: 16, Verify: true}
	ds := p.Dataset()
	defer SetParallelism(Parallelism())

	for _, theta := range []float64{0, 0.3} {
		wl := p.workload(ds)
		wl.Theta = theta
		sys := mustSys(NewDSI(ds, dsi.Config{Capacity: 64, Segments: 2}, dsi.Conservative, ""))

		SetParallelism(1)
		seqW := wl.RunWindow(sys, 0.1)
		seqK := wl.RunKNN(sys, 5)
		for _, workers := range []int{2, 4, 16} {
			SetParallelism(workers)
			if got := wl.RunWindow(sys, 0.1); got != seqW {
				t.Errorf("theta=%v workers=%d: window %v != sequential %v", theta, workers, got, seqW)
			}
			if got := wl.RunKNN(sys, 5); got != seqK {
				t.Errorf("theta=%v workers=%d: kNN %v != sequential %v", theta, workers, got, seqK)
			}
		}
	}
}

// TestHCIKNNBoundaryExact runs the paper-scale HCI kNN workload that
// once crashed with "slice bounds out of range": the k-th phase-1
// object sat exactly on the search bound, and the sqrt-then-resquare
// radius round-trip excluded it from the closed disk. The bound is now
// kept squared end to end; Verify cross-checks every answer.
func TestHCIKNNBoundaryExact(t *testing.T) {
	p := Params{Queries: 10, Verify: true}.withDefaults() // paper scale: N=10000, order 8
	ds := p.Dataset()
	wl := p.workload(ds)
	sys := mustSys(NewHCI(ds, 64, p.ObjectBytes))
	m := wl.RunKNN(sys, 3)
	if m.LatencyBytes <= 0 || m.TuningBytes <= 0 {
		t.Fatalf("degenerate metrics %v", m)
	}
}

// TestSessionReuseAcrossWorkload verifies sessions actually get reused:
// the per-worker arena mints at most one session per worker slot and
// every later workload run reuses them. Unlike the sync.Pool this
// replaced — whose reuse was randomized under the race detector — the
// arena's bounds are deterministic in every build.
func TestSessionReuseAcrossWorkload(t *testing.T) {
	p := Params{N: 300, Order: 6, Seed: 9, Queries: 32, Verify: true}
	ds := p.Dataset()
	sys, err := NewDSI(ds, dsi.Config{Capacity: 64, Segments: 2}, dsi.Conservative, "")
	if err != nil {
		t.Fatal(err)
	}

	wl := p.workload(ds)
	before := dsiSessionsMinted.Load()
	wl.RunWindow(sys, 0.1)
	first := dsiSessionsMinted.Load() - before
	if first == 0 {
		t.Fatal("no sessions minted")
	}
	wl.RunKNN(sys, 5)
	total := dsiSessionsMinted.Load() - before
	if first > int64(Parallelism()) {
		t.Errorf("minted %d sessions for %d queries (parallelism %d)", first, p.Queries, Parallelism())
	}
	if total > first {
		t.Errorf("second workload run minted %d extra sessions; wanted zero arena traffic", total-first)
	}
}

// BenchmarkParallelReplay measures the parallel replay core over a
// warm system and asserts the arena contract: after the first run has
// pinned a session per worker, replays mint nothing — zero pool
// traffic in the steady state the figure sweeps run in.
func BenchmarkParallelReplay(b *testing.B) {
	p := Params{N: 500, Order: 7, Seed: 13, Queries: 64}
	ds := p.Dataset()
	sys := mustSys(NewDSI(ds, dsi.Config{Capacity: 64, Segments: 2}, dsi.Conservative, ""))
	wl := p.workload(ds)
	wl.RunWindow(sys, 0.1) // warm: pin one session per worker
	before := dsiSessionsMinted.Load()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wl.RunWindow(sys, 0.1)
	}
	b.StopTimer()
	if minted := dsiSessionsMinted.Load() - before; minted != 0 {
		b.Fatalf("replay minted %d sessions after warmup; the arena must serve every worker", minted)
	}
}

package experiment

import (
	"fmt"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
)

// ChanLossThetas is the per-channel stationary loss sweep of the
// heterogeneous channel-quality experiment.
var ChanLossThetas = []float64{0.1, 0.2, 0.4}

// ChanLossChannels is the split layout's channel count.
const ChanLossChannels = 4

// chanLossScenario selects which channels of the split layout run the
// Gilbert-Elliott process.
type chanLossScenario struct {
	name string
	// lossy reports whether channel ch (0 = index) is error-prone.
	lossy func(ch int) bool
}

func chanLossScenarios() []chanLossScenario {
	return []chanLossScenario{
		{"index only", func(ch int) bool { return ch == 0 }},
		{"data only", func(ch int) bool { return ch != 0 }},
		{"all channels", func(ch int) bool { return true }},
	}
}

// chanLossRun replays the window workload with per-channel
// Gilbert-Elliott loss installed through Client.SetChannelLoss — the
// per-channel override the tuner has always supported but no experiment
// exercised. Each (query, channel) pair draws its own deterministic
// seed, so results are reproducible and independent of execution order.
func chanLossRun(lay *dsi.Layout, wl *Workload, theta float64, sc chanLossScenario) Metrics {
	qs := wl.genWindows(DefaultWinSideRatio)
	return replay(len(qs),
		// One reusable client per worker; Reset re-tunes it per query
		// and clears the per-channel loss overrides, which are then
		// reinstalled with the query's own seeds.
		func(int) *dsi.Client { return dsi.NewMultiClient(lay, 0, nil) },
		nil,
		func(c *dsi.Client, i int) broadcast.Stats {
			q := qs[i]
			c.Reset(int64(q.uProb*float64(lay.ProbeCycle())), nil)
			for ch := 0; ch < lay.Channels(); ch++ {
				if theta > 0 && sc.lossy(ch) {
					m := broadcast.GilbertForTheta(theta, Table1GEBurstLen, q.seed+int64(ch))
					// Data channels of a split layout carry only object
					// packets; the loss process must corrupt them or the
					// channel would be error-free in practice.
					m.AffectsData = ch != lay.StartCh
					if err := c.SetChannelLoss(ch, m); err != nil {
						panic(fmt.Sprintf("experiment: chanloss: %v", err))
					}
				}
			}
			got, st := c.Window(q.w)
			if wl.Verify {
				want := wl.DS.WindowBrute(q.w)
				if !sameIDs(got, want) {
					panic(fmt.Sprintf("experiment: chanloss window %v returned %d objects, want %d",
						q.w, len(got), len(want)))
				}
			}
			return st
		})
}

// ChanLoss sweeps heterogeneous per-channel Gilbert-Elliott loss over a
// 4-channel split layout: the same stationary loss rate is applied to
// the index channel only, the data channels only, or every channel, and
// the table reports the latency and tuning deterioration relative to
// the error-free run.
//
// Expected shape: index-channel loss costs tuning (tables are re-read
// on their fast-recurring channel) but little latency; data-channel
// loss costs latency (a lost object packet waits a full data cycle for
// the retry); whole-air loss pays both.
func ChanLoss(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	wl := p.workload(ds)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: p.ObjectBytes})
	if err != nil {
		panic(err)
	}
	lay, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: ChanLossChannels, Scheduler: dsi.SchedSplit, SwitchSlots: DefaultSwitchSlots})
	if err != nil {
		panic(err)
	}
	base := chanLossRun(lay, wl, 0, chanLossScenario{"clean", func(int) bool { return false }})

	t := Table{
		ID: "chanloss",
		Title: fmt.Sprintf("Heterogeneous channel quality (split x%d, Gilbert-Elliott mean burst %d)",
			ChanLossChannels, Table1GEBurstLen),
		Header: []string{"Lossy channels", "theta", "Latency", "Tuning", "dLatency", "dTuning"},
	}
	pct := func(now, was float64) string { return fmt.Sprintf("%+.2f%%", (now-was)/was*100) }
	for _, theta := range ChanLossThetas {
		for _, sc := range chanLossScenarios() {
			m := chanLossRun(lay, wl, theta, sc)
			t.Rows = append(t.Rows, []string{
				sc.name, fmt.Sprintf("%.1f", theta),
				humanBytes(m.LatencyBytes), humanBytes(m.TuningBytes),
				pct(m.LatencyBytes, base.LatencyBytes),
				pct(m.TuningBytes, base.TuningBytes),
			})
		}
	}
	return Result{Tables: []Table{t}}
}

package experiment

import (
	"fmt"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
)

// MultiDSISystem runs queries over a multi-channel DSI layout. Like
// DSISystem it pins reusable sessions per worker; use it by pointer.
type MultiDSISystem struct {
	Label    string
	Lay      *dsi.Layout
	Strategy dsi.Strategy

	sessions sessionArena // of *multiSession, pinned per worker
}

// NewMultiDSI builds a DSI broadcast and places it on mc.Channels
// parallel channels with the configured scheduler.
func NewMultiDSI(ds *dataset.Dataset, cfg dsi.Config, mc dsi.MultiConfig, strat dsi.Strategy, label string) (*MultiDSISystem, error) {
	x, err := dsi.Build(ds, cfg)
	if err != nil {
		return nil, err
	}
	lay, err := dsi.NewLayout(x, mc)
	if err != nil {
		return nil, err
	}
	if label == "" {
		label = fmt.Sprintf("DSI/%vx%d", mc.Scheduler, mc.Channels)
	}
	return &MultiDSISystem{Label: label, Lay: lay, Strategy: strat}, nil
}

func (s *MultiDSISystem) Name() string { return s.Label }

func (s *MultiDSISystem) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return dsi.NewMultiClient(s.Lay, probe, loss).Window(w)
}

func (s *MultiDSISystem) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return dsi.NewMultiClient(s.Lay, probe, loss).KNN(q, k, s.Strategy)
}

// CycleLen returns the range workload probe slots are drawn from: the
// layout's total slot count across channels (see Layout.ProbeCycle —
// drawing over just the start channel's short cycle would pin the long
// data channels near phase zero and bias every measured wait).
func (s *MultiDSISystem) CycleLen() int { return s.Lay.ProbeCycle() }

// AcquireSession returns worker's pinned session around one long-lived
// multi-channel dsi.Session built through the Open facade.
func (s *MultiDSISystem) AcquireSession(worker int) QuerySession {
	return s.sessions.acquire(worker, func() QuerySession {
		dsiSessionsMinted.Add(1)
		sess, err := dsi.Open(s.Lay.X, dsi.WithLayout(s.Lay))
		if err != nil {
			panic(fmt.Sprintf("experiment: opening multi-channel session: %v", err))
		}
		return &sessionAdapter{s: sess, strat: s.Strategy}
	})
}

// ReleaseSession checks the session back into its worker slot.
func (s *MultiDSISystem) ReleaseSession(worker int, q QuerySession) { s.sessions.release(worker, q) }

// ChannelCounts is the channel sweep of the multi-channel experiment.
var ChannelCounts = []int{1, 2, 4, 8}

// DefaultSwitchSlots is the channel-switch cost the experiment charges,
// in packet slots.
const DefaultSwitchSlots = 2

// Channels reproduces the multi-channel follow-up the paper leaves as
// future work: window and 10NN cost versus the number of parallel
// channels, for the index/data split scheduler against naive
// round-robin frame striping, at 64-byte packets on the reorganized
// (m=2) broadcast. N=1 is the paper's single-channel DSI, so the
// leftmost point of every series reproduces the existing engine
// exactly.
//
// Expected shape: split latency falls monotonically with N (the data
// cycle shrinks by the data-channel count), and split kNN tuning
// collapses immediately (candidates are discovered from the fast
// index channel instead of data passes). The N=2 split point is the
// structurally weakest — one data channel keeps the data cycle almost
// full length, and an object whose table is read just after its own
// data slot passed costs a wrap that the single channel's inline
// tables never pay — so at some scales 10NN latency only breaks even
// there before the N>=4 wins. Stripe demonstrates why naive striping
// fails: adjacent frames air in parallel, which a one-radio client
// cannot exploit.
func Channels(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	wl := p.workload(ds)
	mk := func(id, title, y string) Figure {
		return Figure{ID: id, Title: title, XLabel: "channels", YLabel: y, XFmt: "%.0f"}
	}
	figs := []Figure{
		mk("chan-a", "Multi-channel broadcast: window-query access latency", "access latency (bytes)"),
		mk("chan-b", "Multi-channel broadcast: window-query tuning time", "tuning time (bytes)"),
		mk("chan-c", "Multi-channel broadcast: 10NN access latency", "access latency (bytes)"),
		mk("chan-d", "Multi-channel broadcast: 10NN tuning time", "tuning time (bytes)"),
	}
	type point struct{ splitW, stripeW, splitK, stripeK Metrics }
	pts := sweep(len(ChannelCounts), func(i int) point {
		n := ChannelCounts[i]
		cfg := dsi.Config{Capacity: 64, Segments: 2, ObjectBytes: p.ObjectBytes}
		split := mustSys(NewMultiDSI(ds, cfg,
			dsi.MultiConfig{Channels: n, Scheduler: dsi.SchedSplit, SwitchSlots: DefaultSwitchSlots},
			dsi.Conservative, "Split"))
		stripe := mustSys(NewMultiDSI(ds, cfg,
			dsi.MultiConfig{Channels: n, Scheduler: dsi.SchedStripe, SwitchSlots: DefaultSwitchSlots},
			dsi.Conservative, "Stripe"))
		return point{
			splitW:  wl.RunWindow(split, DefaultWinSideRatio),
			stripeW: wl.RunWindow(stripe, DefaultWinSideRatio),
			splitK:  wl.RunKNN(split, 10),
			stripeK: wl.RunKNN(stripe, 10),
		}
	})
	for i, n := range ChannelCounts {
		for f := range figs {
			figs[f].X = append(figs[f].X, float64(n))
		}
		pt := pts[i]
		figs[0].AddPoint("Split", pt.splitW.LatencyBytes)
		figs[0].AddPoint("Stripe", pt.stripeW.LatencyBytes)
		figs[1].AddPoint("Split", pt.splitW.TuningBytes)
		figs[1].AddPoint("Stripe", pt.stripeW.TuningBytes)
		figs[2].AddPoint("Split", pt.splitK.LatencyBytes)
		figs[2].AddPoint("Stripe", pt.stripeK.LatencyBytes)
		figs[3].AddPoint("Split", pt.splitK.TuningBytes)
		figs[3].AddPoint("Stripe", pt.stripeK.TuningBytes)
	}
	return Result{Figures: figs}
}

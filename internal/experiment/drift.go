// The drift experiment: online re-planning under a migrating hot spot,
// end to end across the stack. A Zipf window workload starts with its
// hot head at the beginning of the Hilbert order — the distribution the
// initial shard plan was trained on — and then migrates halfway around
// the HC rank space. The static arm keeps the trained plan on air for
// the whole run (PR 3's offline scheduler); the re-planning arm runs
// the online loop: a decayed profiler observes every query, a
// Replanner measures the live plan's drift against the fresh optimum
// after every few queries, and when the drift crosses the configured
// ratio the broadcast swaps to the fresh plan at a cycle seam — the
// query in flight at the seam re-syncs mid-query via the shard
// directory version bump, later queries tune into the new directory.
//
// The planning pass is simulation-free (range decomposition and the
// Monge DP only) and runs sequentially before the replay, so the swap
// schedule is part of the experiment's deterministic inputs and the
// replay itself shards across the worker pool with bit-identical
// results at any parallelism — including the control contract that the
// two arms are exactly equal before the drift (no replan triggers while
// the live plan matches the load, so the arms execute identical code on
// identical layouts).

package experiment

import (
	"fmt"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
	"dsi/internal/hilbert"
	"dsi/internal/sched"
)

// DriftRatios is the replan-trigger sweep: the live plan is swapped out
// when its decayed objective exceeds ratio times the fresh optimum's.
var DriftRatios = []float64{1.2, 1.5, 2.5}

// DriftChannels is the channel-count sweep of the drift experiment.
var DriftChannels = []int{4, 8}

// DriftTheta is the Zipf skew of the drifting workload.
const DriftTheta = 1.2

// DriftCheckEvery is the replan-trigger cadence in queries.
const DriftCheckEvery = 5

// driftHalfLifeFactor sizes the profiler's half-life relative to one
// workload phase: half a phase, so a migrated hot spot dominates the
// decayed profile well before the phase ends.
const driftHalfLifeFactor = 0.5

// driftPoint holds one (ratio, channels) cell: per-arm metrics split at
// the drift point, and the swap schedule the online loop produced.
type driftPoint struct {
	PreStatic, PreReplan   Metrics
	PostStatic, PostReplan Metrics
	// Replans counts directory swaps that took effect during the run;
	// FirstReplan is the global query index whose execution crosses the
	// first seam (-1 when no swap triggered).
	Replans     int
	FirstReplan int
	// Drift is the measured objective ratio at the first trigger.
	Drift float64
}

// driftSchedule is the output of the sequential planning pass: the
// layouts that were on air and, per query, the layout at its tune-in
// plus the mid-query re-sync target (-1 for none).
type driftSchedule struct {
	lays     []*dsi.Layout
	planAt   []int
	resyncTo []int
}

// staticSchedule pins every query to the initial layout.
func staticSchedule(lay *dsi.Layout, n int) driftSchedule {
	s := driftSchedule{
		lays:     []*dsi.Layout{lay},
		planAt:   make([]int, n),
		resyncTo: make([]int, n),
	}
	for i := range s.resyncTo {
		s.resyncTo[i] = -1
	}
	return s
}

// driftBase is the ratio-independent half of one channel count's
// cells: the workload phases, the trained plan, and the static arm's
// replayed metrics — shared across the trigger-ratio sweep (the same
// hoisting the sharded experiment applies to its theta profiles).
type driftBase struct {
	x       *dsi.Index
	queries []windowQuery
	prof0   *sched.Profile
	plan0   *sched.Plan
	lay0    *dsi.Layout

	preStatic, postStatic Metrics
}

// newDriftBase trains the initial plan on the pre-drift distribution,
// assembles the two-phase evaluation workload, and replays the static
// arm once.
func newDriftBase(x *dsi.Index, wl *Workload, channels int) *driftBase {
	n := wl.Queries
	shift := x.DS.N() / 2

	train := wl.zipfShiftWindows(DriftTheta, DefaultWinSideRatio, 7000, n*ShardedTrainFactor, 0)
	pre := wl.zipfShiftWindows(DriftTheta, DefaultWinSideRatio, 0, n, 0)
	post := wl.zipfShiftWindows(DriftTheta, DefaultWinSideRatio, 500, n, shift)
	queries := append(append(make([]windowQuery, 0, 2*n), pre...), post...)

	prof0 := shardProfile(x, train)
	plan0, err := sched.Partition(prof0, channels-1)
	if err != nil {
		panic(err)
	}
	lay0, err := plan0.Layout(DefaultSwitchSlots)
	if err != nil {
		panic(err)
	}
	b := &driftBase{x: x, queries: queries, prof0: prof0, plan0: plan0, lay0: lay0}
	static := staticSchedule(lay0, len(queries))
	b.preStatic = wl.runDrift(static, queries, 0, n)
	b.postStatic = wl.runDrift(static, queries, n, 2*n)
	return b
}

// driftCell evaluates one trigger ratio over a shared base.
func driftCell(b *driftBase, wl *Workload, ratio float64) driftPoint {
	x := b.x
	n := wl.Queries
	queries := b.queries

	pt := driftPoint{FirstReplan: -1, PreStatic: b.preStatic, PostStatic: b.postStatic}
	sch := driftSchedule{
		lays:     []*dsi.Layout{b.lay0},
		planAt:   make([]int, len(queries)),
		resyncTo: make([]int, len(queries)),
	}

	// Sequential planning pass: the transmitter's online loop. It is
	// simulation-free — each query contributes its HC decomposition to
	// the decayed profile; every DriftCheckEvery queries the Replanner
	// compares the live plan against the fresh cut. A trigger swaps the
	// broadcast at the next seam: the query running at that moment
	// re-syncs mid-flight, queries after it tune into the new directory.
	op := sched.NewOnlineProfiler(x, driftHalfLifeFactor*float64(n))
	op.Seed(b.prof0, 1)
	var rp sched.Replanner
	snap := sched.NewProfile(x)
	live := b.plan0
	curve := x.DS.Curve
	var ranges []hilbert.Range
	cur, pending := 0, -1
	for i, q := range queries {
		sch.planAt[i] = cur
		sch.resyncTo[i] = -1
		if pending >= 0 {
			sch.resyncTo[i] = pending
			cur = pending // on air when the next query tunes in
			pending = -1
		}
		rect, ok := curve.ClampRect(q.w.MinX, q.w.MinY, q.w.MaxX, q.w.MaxY)
		if ok {
			ranges = curve.AppendRangesFunc(ranges[:0], rect.Classify)
			op.Observe(ranges, 1)
		} else {
			op.Observe(nil, 1)
		}
		if (i+1)%DriftCheckEvery != 0 {
			continue
		}
		fresh, drift, trig, err := rp.Replan(op.Snapshot(snap), live, ratio)
		if err != nil {
			panic(err)
		}
		if !trig || i+1 >= len(queries) {
			continue
		}
		lay, err := fresh.Layout(DefaultSwitchSlots)
		if err != nil {
			panic(err)
		}
		live = fresh
		sch.lays = append(sch.lays, lay)
		pending = len(sch.lays) - 1
		pt.Replans++
		if pt.FirstReplan < 0 {
			pt.FirstReplan = i + 1
			pt.Drift = drift
		}
	}

	pt.PreReplan = wl.runDrift(sch, queries, 0, n)
	pt.PostReplan = wl.runDrift(sch, queries, n, 2*n)
	return pt
}

// driftSession is the per-worker replay state: one long-lived client
// per layout that was on air, minted lazily and Reset between queries.
type driftSession struct {
	lays    []*dsi.Layout
	clients []*dsi.Client
	buf     []int
}

func (s *driftSession) client(idx int, probe int64, loss *broadcast.LossModel) *dsi.Client {
	c := s.clients[idx]
	// A client that crossed a seam last query is a client of the new
	// layout now; the old directory's queries need a fresh one.
	if c == nil || c.Layout() != s.lays[idx] {
		c = dsi.NewMultiClient(s.lays[idx], probe, loss)
		s.clients[idx] = c
		return c
	}
	c.Reset(probe, loss)
	return c
}

// runDrift replays queries [from, to) under the swap schedule on the
// worker pool, averaging metrics in query order (bit-identical at any
// parallelism). A query with a re-sync target starts under its tune-in
// layout and receives the directory bump one index-channel cycle after
// its probe — mid-query for any query that outlives one table sweep.
func (wl *Workload) runDrift(sch driftSchedule, queries []windowQuery, from, to int) Metrics {
	return replay(to-from,
		func(int) *driftSession {
			return &driftSession{lays: sch.lays, clients: make([]*dsi.Client, len(sch.lays))}
		},
		nil,
		func(s *driftSession, i int) broadcast.Stats {
			gi := from + i
			q := queries[gi]
			idx := sch.planAt[gi]
			lay := sch.lays[idx]
			probe := int64(q.uProb * float64(lay.ProbeCycle()))
			c := s.client(idx, probe, wl.loss(q.seed))
			if tgt := sch.resyncTo[gi]; tgt >= 0 {
				if err := c.ScheduleResync(sch.lays[tgt], probe+int64(lay.ChanLen(0))); err != nil {
					panic(fmt.Sprintf("experiment: drift resync: %v", err))
				}
			}
			got, st := c.WindowAppend(s.buf[:0], q.w)
			s.buf = got
			if wl.Verify {
				want := wl.DS.WindowBrute(q.w)
				if !sameIDs(got, want) {
					panic(fmt.Sprintf("experiment: drift window %v returned %d objects, want %d",
						q.w, len(got), len(want)))
				}
			}
			return st
		})
}

// Drift is the online re-planning experiment: post-drift window latency
// of the re-planning broadcast versus the static plan, swept over the
// replan-trigger ratio per channel count, plus the number of directory
// swaps each trigger setting produced.
//
// Expected shape: before the drift the arms tie exactly (no trigger
// fires, the broadcast never changes). After the hot spot migrates, the
// static plan serves the new hot span from its huge cold shard and its
// latency jumps; the re-planning arm swaps to a plan that gives the
// migrated span short cycles and holds latency near the pre-drift
// level. Lower trigger ratios react faster (more swaps); a ratio high
// enough to never trigger degenerates to the static arm.
func Drift(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: p.ObjectBytes})
	if err != nil {
		panic(err)
	}
	// The base of each channel count — training, initial plan, and the
	// static arm's full replay — does not depend on the trigger ratio,
	// so it is computed once and shared across that channel count's
	// ratio cells.
	bases := sweep(len(DriftChannels), func(i int) *driftBase {
		return newDriftBase(x, p.workload(ds), DriftChannels[i])
	})
	type cell struct {
		base  *driftBase
		ratio float64
	}
	var cells []cell
	for bi := range DriftChannels {
		for _, r := range DriftRatios {
			cells = append(cells, cell{bases[bi], r})
		}
	}
	pts := sweep(len(cells), func(i int) driftPoint {
		return driftCell(cells[i].base, p.workload(ds), cells[i].ratio)
	})
	var figs []Figure
	for ni, n := range DriftChannels {
		lat := Figure{ID: fmt.Sprintf("drift-lat-%d", n),
			Title:  fmt.Sprintf("Online re-planning (%d channels): post-drift window access latency", n),
			XLabel: "replan trigger ratio", YLabel: "access latency (bytes)"}
		swaps := Figure{ID: fmt.Sprintf("drift-replans-%d", n),
			Title:  fmt.Sprintf("Online re-planning (%d channels): directory swaps per run", n),
			XLabel: "replan trigger ratio", YLabel: "swaps", YFmt: "%.0f"}
		for ri, r := range DriftRatios {
			pt := pts[ni*len(DriftRatios)+ri]
			lat.X = append(lat.X, r)
			swaps.X = append(swaps.X, r)
			lat.AddPoint("Static", pt.PostStatic.LatencyBytes)
			lat.AddPoint("Replan", pt.PostReplan.LatencyBytes)
			swaps.AddPoint("Replan", float64(pt.Replans))
		}
		figs = append(figs, lat, swaps)
	}
	return Result{Figures: figs}
}

// The drift experiment: online re-planning under a migrating hot spot,
// end to end across the stack. A Zipf window workload starts with its
// hot head at the beginning of the Hilbert order — the distribution the
// initial shard plan was trained on — and then migrates halfway around
// the HC rank space. The static arm keeps the trained plan on air for
// the whole run (PR 3's offline scheduler); the re-planning arms run
// the online loop: a decayed profiler observes every query, a
// Replanner measures the live plan's drift against the fresh optimum
// at each check, and when the drift crosses the configured ratio the
// broadcast swaps to the fresh plan at a cycle seam — the query in
// flight at the seam re-syncs mid-query via the shard directory
// version bump, later queries tune into the new directory. The fixed
// arm checks every DriftCheckEvery queries; the adaptive arm spends
// the same kind of budget through sched.Cadence, thinning checks out
// over stable stretches and crowding them while measured drift rises.
//
// The replay is byte-level end to end: every query decodes the actual
// packets a station source puts on air through a station.WireReceiver
// — static stretches over each generation's MultiTransmitter with
// per-worker session reuse, and each seam-crossing query over a
// Rebroadcaster holding exactly that staged swap, so the directory
// bump (and its fetch cost) is received over the air rather than
// simulated.
//
// The planning pass is simulation-free (range decomposition and the
// Monge DP only) and runs sequentially before the replay, so the swap
// schedule is part of the experiment's deterministic inputs and the
// replay itself shards across the worker pool with bit-identical
// results at any parallelism — including the control contract that the
// arms are exactly equal before the drift (no replan triggers while
// the live plan matches the load, so the arms execute identical code on
// identical layouts).

package experiment

import (
	"fmt"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
	"dsi/internal/hilbert"
	"dsi/internal/obs"
	"dsi/internal/sched"
	"dsi/internal/station"
)

// DriftRatios is the replan-trigger sweep: the live plan is swapped out
// when its decayed objective exceeds ratio times the fresh optimum's.
var DriftRatios = []float64{1.2, 1.5, 2.5}

// DriftChannels is the channel-count sweep of the drift experiment.
var DriftChannels = []int{4, 8}

// DriftTheta is the Zipf skew of the drifting workload.
const DriftTheta = 1.2

// DriftCheckEvery is the fixed arm's replan-trigger cadence in queries,
// and the adaptive arm's starting interval.
const DriftCheckEvery = 5

// DriftCadenceMin and DriftCadenceMax bound the adaptive arm's check
// interval (sched.Cadence halves toward Min while measured drift
// rises, doubles toward Max while the plan fits).
const (
	DriftCadenceMin = 2
	DriftCadenceMax = 4 * DriftCheckEvery
)

// driftHalfLifeFactor sizes the profiler's half-life relative to one
// workload phase: half a phase, so a migrated hot spot dominates the
// decayed profile well before the phase ends.
const driftHalfLifeFactor = 0.5

// driftPoint holds one (ratio, channels) cell: per-arm metrics split at
// the drift point, and the swap schedules the online loops produced.
type driftPoint struct {
	PreStatic, PreReplan, PreAdaptive    Metrics
	PostStatic, PostReplan, PostAdaptive Metrics
	// Replans counts directory swaps that took effect during the fixed
	// arm's run; FirstReplan is the global query index whose execution
	// crosses the first seam (-1 when no swap triggered); Drift is the
	// measured objective ratio at the first trigger; Checks is the
	// planning passes spent.
	Replans     int
	FirstReplan int
	Drift       float64
	Checks      int
	// The adaptive-cadence arm's counters, same meanings.
	AdaptiveReplans int
	AdaptiveFirst   int
	AdaptiveChecks  int
}

// driftSchedule is the output of the sequential planning pass: the
// layouts that were on air with their static byte sources and, per
// query, the layout at its tune-in plus the mid-query re-sync target
// (-1 for none).
type driftSchedule struct {
	x        *dsi.Index
	lays     []*dsi.Layout
	mts      []*station.MultiTransmitter
	planAt   []int
	resyncTo []int
}

// finish builds the static transmitter of every layout generation the
// plan put on air (concurrency-safe read-only sources the replay
// workers share).
func (s *driftSchedule) finish() *driftSchedule {
	s.mts = make([]*station.MultiTransmitter, len(s.lays))
	for i, lay := range s.lays {
		mt, err := station.NewMultiTransmitter(lay)
		if err != nil {
			panic(fmt.Sprintf("experiment: drift transmitter: %v", err))
		}
		s.mts[i] = mt
	}
	return s
}

// staticSchedule pins every query to the initial layout.
func staticSchedule(x *dsi.Index, lay *dsi.Layout, n int) *driftSchedule {
	s := &driftSchedule{
		x:        x,
		lays:     []*dsi.Layout{lay},
		planAt:   make([]int, n),
		resyncTo: make([]int, n),
	}
	for i := range s.resyncTo {
		s.resyncTo[i] = -1
	}
	return s.finish()
}

// driftBase is the ratio-independent half of one channel count's
// cells: the workload phases, the trained plan, and the static arm's
// replayed metrics — shared across the trigger-ratio sweep (the same
// hoisting the sharded experiment applies to its theta profiles).
type driftBase struct {
	x       *dsi.Index
	queries []windowQuery
	prof0   *sched.Profile
	plan0   *sched.Plan
	lay0    *dsi.Layout
	reg     *obs.Registry

	preStatic, postStatic Metrics
}

// newDriftBase trains the initial plan on the pre-drift distribution,
// assembles the two-phase evaluation workload, and replays the static
// arm once.
func newDriftBase(x *dsi.Index, wl *Workload, channels int) *driftBase {
	n := wl.Queries
	shift := x.DS.N() / 2

	train := wl.zipfShiftWindows(DriftTheta, DefaultWinSideRatio, 7000, n*ShardedTrainFactor, 0)
	pre := wl.zipfShiftWindows(DriftTheta, DefaultWinSideRatio, 0, n, 0)
	post := wl.zipfShiftWindows(DriftTheta, DefaultWinSideRatio, 500, n, shift)
	queries := append(append(make([]windowQuery, 0, 2*n), pre...), post...)

	prof0 := shardProfile(x, train)
	plan0, err := sched.Partition(prof0, channels-1)
	if err != nil {
		panic(err)
	}
	lay0, err := plan0.Layout(DefaultSwitchSlots)
	if err != nil {
		panic(err)
	}
	b := &driftBase{x: x, queries: queries, prof0: prof0, plan0: plan0, lay0: lay0, reg: wl.Obs}
	static := staticSchedule(x, lay0, len(queries))
	b.preStatic = wl.runDrift(static, queries, 0, n)
	b.postStatic = wl.runDrift(static, queries, n, 2*n)
	return b
}

// driftPlanStats is what one online planning pass produced.
type driftPlanStats struct {
	replans int
	first   int
	drift   float64
	checks  int
}

// driftPlan is the sequential planning pass: the transmitter's online
// loop. It is simulation-free — each query contributes its HC
// decomposition to the decayed profile; whenever the step policy says
// so, the Replanner compares the live plan against the fresh cut. A
// trigger swaps the broadcast at the next seam: the query running at
// that moment re-syncs mid-flight, queries after it tune into the new
// directory. step receives the measured drift ratio of a check and
// returns the interval (in queries) to the next one — a fixed constant
// for the classic arm, sched.Cadence.Observe for the adaptive one.
func driftPlan(b *driftBase, n int, ratio float64, initial int, step func(drift float64) int) (*driftSchedule, driftPlanStats) {
	x := b.x
	queries := b.queries
	st := driftPlanStats{first: -1}
	sch := &driftSchedule{
		x:        x,
		lays:     []*dsi.Layout{b.lay0},
		planAt:   make([]int, len(queries)),
		resyncTo: make([]int, len(queries)),
	}

	op := sched.NewOnlineProfiler(x, driftHalfLifeFactor*float64(n))
	op.Seed(b.prof0, 1)
	var rp sched.Replanner
	rp.SetObs(obs.NewSchedMetrics(b.reg))
	snap := sched.NewProfile(x)
	live := b.plan0
	curve := x.DS.Curve
	var ranges []hilbert.Range
	cur, pending := 0, -1
	nextCheck := initial
	for i, q := range queries {
		sch.planAt[i] = cur
		sch.resyncTo[i] = -1
		if pending >= 0 {
			sch.resyncTo[i] = pending
			cur = pending // on air when the next query tunes in
			pending = -1
		}
		rect, ok := curve.ClampRect(q.w.MinX, q.w.MinY, q.w.MaxX, q.w.MaxY)
		if ok {
			ranges = curve.AppendRangesFunc(ranges[:0], rect.Classify)
			op.Observe(ranges, 1)
		} else {
			op.Observe(nil, 1)
		}
		if i+1 != nextCheck {
			continue
		}
		fresh, drift, trig, err := rp.Replan(op.Snapshot(snap), live, ratio)
		if err != nil {
			panic(err)
		}
		st.checks++
		nextCheck = i + 1 + step(drift)
		if !trig || i+1 >= len(queries) {
			continue
		}
		lay, err := fresh.Layout(DefaultSwitchSlots)
		if err != nil {
			panic(err)
		}
		live = fresh
		sch.lays = append(sch.lays, lay)
		pending = len(sch.lays) - 1
		st.replans++
		if st.first < 0 {
			st.first = i + 1
			st.drift = drift
		}
	}
	return sch.finish(), st
}

// driftCell evaluates one trigger ratio over a shared base: the fixed
// check cadence and the adaptive one, each planned sequentially and
// replayed byte-level.
func driftCell(b *driftBase, wl *Workload, ratio float64) driftPoint {
	n := wl.Queries
	queries := b.queries
	pt := driftPoint{PreStatic: b.preStatic, PostStatic: b.postStatic}

	fixed, fst := driftPlan(b, n, ratio, DriftCheckEvery,
		func(float64) int { return DriftCheckEvery })
	pt.Replans, pt.FirstReplan, pt.Drift, pt.Checks = fst.replans, fst.first, fst.drift, fst.checks
	pt.PreReplan = wl.runDrift(fixed, queries, 0, n)
	pt.PostReplan = wl.runDrift(fixed, queries, n, 2*n)

	cad := sched.NewCadence(DriftCheckEvery, DriftCadenceMin, DriftCadenceMax)
	adaptive, ast := driftPlan(b, n, ratio, cad.Interval(), cad.Observe)
	pt.AdaptiveReplans, pt.AdaptiveFirst, pt.AdaptiveChecks = ast.replans, ast.first, ast.checks
	pt.PreAdaptive = wl.runDrift(adaptive, queries, 0, n)
	pt.PostAdaptive = wl.runDrift(adaptive, queries, n, 2*n)
	return pt
}

// driftSession is the per-worker replay state: one long-lived
// byte-level session per layout generation that was on air, minted
// lazily over the schedule's shared transmitters and re-tuned between
// queries.
type driftSession struct {
	sch  *driftSchedule
	reg  *obs.Registry
	sess []*sessionAdapter
}

func (s *driftSession) session(idx int) *sessionAdapter {
	if s.sess[idx] == nil {
		var rx dsi.Receiver
		wrx, err := station.NewWireReceiver(s.sch.lays[idx], 1, s.sch.mts[idx], 0, nil)
		if err != nil {
			panic(fmt.Sprintf("experiment: drift wire receiver: %v", err))
		}
		rx = wrx
		if s.reg != nil {
			rx = obs.InstrumentReceiver(rx, obs.NewReceiverMetrics(s.reg, s.sch.lays[idx].Channels()))
		}
		sess, err := dsi.Open(s.sch.x, dsi.WithReceiver(rx))
		if err != nil {
			panic(fmt.Sprintf("experiment: opening drift session: %v", err))
		}
		s.sess[idx] = &sessionAdapter{s: sess}
	}
	return s.sess[idx]
}

// resyncWindow answers one seam-crossing query byte-level: a fresh
// receiver holding the tune-in generation's catalog as directory
// version 1, over a rebroadcaster with exactly that swap staged — the
// seam lands at the first index-channel cycle boundary after the
// probe, so the receiver picks the version bump and the new directory
// off the air mid-query (exactly the machinery a live transmitter
// would exercise).
func (sch *driftSchedule) resyncWindow(reg *obs.Registry, idx, tgt int, q windowQuery, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	rb, err := station.NewRebroadcaster(sch.lays[idx])
	if err != nil {
		panic(fmt.Sprintf("experiment: drift rebroadcaster: %v", err))
	}
	if reg != nil {
		rb.SetObs(obs.NewStationMetrics(reg, sch.lays[idx].Channels()))
	}
	if _, err := rb.Stage(sch.lays[tgt], probe); err != nil {
		panic(fmt.Sprintf("experiment: drift stage: %v", err))
	}
	var rx dsi.Receiver
	wrx, err := station.NewWireReceiver(sch.lays[idx], 1, rb, probe, loss)
	if err != nil {
		panic(fmt.Sprintf("experiment: drift resync receiver: %v", err))
	}
	rx = wrx
	if reg != nil {
		rx = obs.InstrumentReceiver(rx, obs.NewReceiverMetrics(reg, sch.lays[idx].Channels()))
	}
	sess, err := dsi.Open(sch.x, dsi.WithReceiver(rx))
	if err != nil {
		panic(fmt.Sprintf("experiment: opening drift resync session: %v", err))
	}
	return sess.Window(q.w)
}

// runDrift replays queries [from, to) under the swap schedule on the
// worker pool, averaging metrics in query order (bit-identical at any
// parallelism). Every query decodes actual packets: static stretches
// run through the worker's reusable receiver over that generation's
// transmitter; a query with a re-sync target runs over a staged
// rebroadcaster and crosses the swap seam mid-flight.
func (wl *Workload) runDrift(sch *driftSchedule, queries []windowQuery, from, to int) Metrics {
	if wl.Obs != nil {
		m := obs.NewStationMetrics(wl.Obs, sch.lays[0].Channels())
		for _, mt := range sch.mts {
			mt.SetObs(m)
		}
	}
	return replay(to-from,
		func(int) *driftSession {
			return &driftSession{sch: sch, reg: wl.Obs, sess: make([]*sessionAdapter, len(sch.lays))}
		},
		nil,
		func(s *driftSession, i int) broadcast.Stats {
			gi := from + i
			q := queries[gi]
			idx := sch.planAt[gi]
			probe := int64(q.uProb * float64(sch.lays[idx].ProbeCycle()))
			var got []int
			var st broadcast.Stats
			if tgt := sch.resyncTo[gi]; tgt >= 0 {
				got, st = sch.resyncWindow(wl.Obs, idx, tgt, q, probe, wl.loss(q.seed))
			} else {
				got, st = s.session(idx).Window(q.w, probe, wl.loss(q.seed))
			}
			if wl.Verify {
				want := wl.DS.WindowBrute(q.w)
				if !sameIDs(got, want) {
					panic(fmt.Sprintf("experiment: drift window %v returned %d objects, want %d",
						q.w, len(got), len(want)))
				}
			}
			return st
		})
}

// Drift is the online re-planning experiment: post-drift window latency
// of the re-planning broadcast versus the static plan, swept over the
// replan-trigger ratio per channel count, plus the number of directory
// swaps each trigger setting produced.
//
// Expected shape: before the drift the arms tie exactly (no trigger
// fires, the broadcast never changes). After the hot spot migrates, the
// static plan serves the new hot span from its huge cold shard and its
// latency jumps; the re-planning arm swaps to a plan that gives the
// migrated span short cycles and holds latency near the pre-drift
// level. Lower trigger ratios react faster (more swaps); a ratio high
// enough to never trigger degenerates to the static arm.
func Drift(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: p.ObjectBytes})
	if err != nil {
		panic(err)
	}
	// The base of each channel count — training, initial plan, and the
	// static arm's full replay — does not depend on the trigger ratio,
	// so it is computed once and shared across that channel count's
	// ratio cells.
	bases := sweep(len(DriftChannels), func(i int) *driftBase {
		return newDriftBase(x, p.workload(ds), DriftChannels[i])
	})
	type cell struct {
		base  *driftBase
		ratio float64
	}
	var cells []cell
	for bi := range DriftChannels {
		for _, r := range DriftRatios {
			cells = append(cells, cell{bases[bi], r})
		}
	}
	pts := sweep(len(cells), func(i int) driftPoint {
		return driftCell(cells[i].base, p.workload(ds), cells[i].ratio)
	})
	var figs []Figure
	for ni, n := range DriftChannels {
		lat := Figure{ID: fmt.Sprintf("drift-lat-%d", n),
			Title:  fmt.Sprintf("Online re-planning (%d channels): post-drift window access latency", n),
			XLabel: "replan trigger ratio", YLabel: "access latency (bytes)"}
		swaps := Figure{ID: fmt.Sprintf("drift-replans-%d", n),
			Title:  fmt.Sprintf("Online re-planning (%d channels): directory swaps per run", n),
			XLabel: "replan trigger ratio", YLabel: "swaps", YFmt: "%.0f"}
		checks := Figure{ID: fmt.Sprintf("drift-checks-%d", n),
			Title:  fmt.Sprintf("Online re-planning (%d channels): planning checks per run", n),
			XLabel: "replan trigger ratio", YLabel: "checks", YFmt: "%.0f"}
		for ri, r := range DriftRatios {
			pt := pts[ni*len(DriftRatios)+ri]
			lat.X = append(lat.X, r)
			swaps.X = append(swaps.X, r)
			checks.X = append(checks.X, r)
			lat.AddPoint("Static", pt.PostStatic.LatencyBytes)
			lat.AddPoint("Replan", pt.PostReplan.LatencyBytes)
			lat.AddPoint("Adaptive", pt.PostAdaptive.LatencyBytes)
			swaps.AddPoint("Replan", float64(pt.Replans))
			swaps.AddPoint("Adaptive", float64(pt.AdaptiveReplans))
			checks.AddPoint("Fixed", float64(pt.Checks))
			checks.AddPoint("Adaptive", float64(pt.AdaptiveChecks))
		}
		figs = append(figs, lat, swaps, checks)
	}
	return Result{Figures: figs}
}

// The wireloss experiment: the simulator fast path against byte-level
// reception, end to end over the wire layer. Both arms run the same
// sharded layout under the same Gilbert-Elliott loss processes; the
// Sim arm reads the in-memory simulator (dsi.SimReceiver), the Wire
// arm decodes the actual packets a station.MultiTransmitter puts on
// air (station.WireReceiver). Over a static transmitter the two are
// bit-identical at every loss rate — the regression that closes the
// seam ROADMAP called out between the simulator and the wire layer.
//
// The third arm tunes in stale: the broadcast has committed a
// directory swap the client's catalog predates, so every query must
// receive the versioned shard directory over the lossy air (directory
// packets are subject to exactly the same loss process) before its
// payloads decode — the cost of byte-level convergence that the
// simulator arms never pay.

package experiment

import (
	"fmt"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
	"dsi/internal/sched"
	"dsi/internal/spatial"
	"dsi/internal/station"
)

// WireLossThetas is the stationary loss sweep of the wireloss
// experiment (Gilbert-Elliott at Table1GEBurstLen mean burst length).
var WireLossThetas = []float64{0, 0.1, 0.25}

// WireLossChannels is the sharded layout's channel count.
const WireLossChannels = 4

// WireLossTheta is the Zipf skew of the plan the stale arm's broadcast
// has swapped to.
const WireLossTheta = 1.2

// wireSystem runs queries through byte-level receivers over a static
// packet source, with one receiver+session pinned per worker: the
// session facade's WithReceiver path under the standard harness.
type wireSystem struct {
	label string
	x     *dsi.Index
	lay   *dsi.Layout
	src   station.PacketSource
	strat dsi.Strategy

	sessions sessionArena
}

func (s *wireSystem) Name() string { return s.label }

func (s *wireSystem) CycleLen() int { return s.lay.ProbeCycle() }

// mint assembles a throwaway byte-level session (uncounted: arena
// mints count at the acquire site).
func (s *wireSystem) mint() *sessionAdapter {
	rx, err := station.NewWireReceiver(s.lay, 1, s.src, 0, nil)
	if err != nil {
		panic(fmt.Sprintf("experiment: wire receiver: %v", err))
	}
	sess, err := dsi.Open(s.x, dsi.WithReceiver(rx))
	if err != nil {
		panic(fmt.Sprintf("experiment: opening wire session: %v", err))
	}
	return &sessionAdapter{s: sess, strat: s.strat}
}

func (s *wireSystem) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.mint().Window(w, probe, loss)
}

func (s *wireSystem) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	return s.mint().KNN(q, k, probe, loss)
}

// AcquireSession returns worker's pinned byte-level session.
func (s *wireSystem) AcquireSession(worker int) QuerySession {
	return s.sessions.acquire(worker, func() QuerySession {
		dsiSessionsMinted.Add(1)
		return s.mint()
	})
}

// ReleaseSession checks the session back into its worker slot.
func (s *wireSystem) ReleaseSession(worker int, q QuerySession) { s.sessions.release(worker, q) }

// staleWireSystem tunes every query in with a catalog one directory
// version behind the source's committed swap: a fresh receiver per
// query, which must fetch the current directory over the lossy air
// before anything decodes. Sessions are deliberately not reused — the
// staleness is the point.
type staleWireSystem struct {
	label string
	x     *dsi.Index
	stale *dsi.Layout // the version-1 catalog clients tune in with
	onAir *dsi.Layout // the committed layout (probe slots scale to it)
	src   station.PacketSource
	strat dsi.Strategy
}

func (s *staleWireSystem) Name() string { return s.label }

func (s *staleWireSystem) CycleLen() int { return s.onAir.ProbeCycle() }

func (s *staleWireSystem) Window(w spatial.Rect, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	rx, err := station.NewWireReceiver(s.stale, 1, s.src, probe, loss)
	if err != nil {
		panic(fmt.Sprintf("experiment: stale wire receiver: %v", err))
	}
	sess, err := dsi.Open(s.x, dsi.WithReceiver(rx))
	if err != nil {
		panic(fmt.Sprintf("experiment: opening stale wire session: %v", err))
	}
	return sess.Window(w)
}

func (s *staleWireSystem) KNN(q spatial.Point, k int, probe int64, loss *broadcast.LossModel) ([]int, broadcast.Stats) {
	rx, err := station.NewWireReceiver(s.stale, 1, s.src, probe, loss)
	if err != nil {
		panic(fmt.Sprintf("experiment: stale wire receiver: %v", err))
	}
	sess, err := dsi.Open(s.x, dsi.WithReceiver(rx))
	if err != nil {
		panic(fmt.Sprintf("experiment: opening stale wire session: %v", err))
	}
	return sess.KNN(q, k, s.strat)
}

// wireLossBed assembles the experiment's fixed infrastructure: the
// uniform sharded layout with its static transmitter, and a
// rebroadcaster that has committed a swap from that layout to the
// Zipf-trained plan (the stale arm's source).
func wireLossBed(p Params) (x *dsi.Index, lay0, lay1 *dsi.Layout, mt *station.MultiTransmitter, rb *station.Rebroadcaster) {
	ds := p.Dataset()
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: p.ObjectBytes, ReserveMCPtr: true})
	if err != nil {
		panic(err)
	}
	uniform, err := sched.Uniform(x, WireLossChannels-1)
	if err != nil {
		panic(err)
	}
	lay0, err = uniform.Layout(DefaultSwitchSlots)
	if err != nil {
		panic(err)
	}
	mt, err = station.NewMultiTransmitter(lay0)
	if err != nil {
		panic(err)
	}

	prof := shardProfileFor(x, p.workload(ds), WireLossTheta)
	plan1, err := sched.Partition(prof, WireLossChannels-1)
	if err != nil {
		panic(err)
	}
	lay1, err = plan1.Layout(DefaultSwitchSlots)
	if err != nil {
		panic(err)
	}
	rb, err = station.NewRebroadcaster(lay0)
	if err != nil {
		panic(err)
	}
	seam, err := rb.Stage(lay1, 0)
	if err != nil {
		panic(err)
	}
	horizon := seam
	for ch := 0; ch < lay0.Channels(); ch++ {
		if s, ok := rb.SeamOf(ch); ok && s > horizon {
			horizon = s
		}
	}
	if !rb.Commit(horizon) {
		panic("experiment: wireloss commit refused past every seam")
	}
	return x, lay0, lay1, mt, rb
}

// WireLoss sweeps the Gilbert-Elliott loss rate over the three arms
// and reports window latency and tuning. The Sim and Wire series are
// expected to coincide exactly at every theta; the stale arm pays the
// directory fetch (and, under loss, its retries) on top.
func WireLoss(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	x, lay0, lay1, mt, rb := wireLossBed(p)

	sim := &MultiDSISystem{Label: "Sim", Lay: lay0, Strategy: dsi.Conservative}
	wire := &wireSystem{label: "Wire", x: x, lay: lay0, src: mt, strat: dsi.Conservative}
	stale := &staleWireSystem{label: "Wire stale", x: x, stale: lay0, onAir: lay1, src: rb, strat: dsi.Conservative}

	mk := func(id, title, y string) Figure {
		return Figure{ID: id, Title: title, XLabel: "loss rate theta", YLabel: y}
	}
	figs := []Figure{
		mk("wireloss-a", "Byte-level reception: window-query access latency", "access latency (bytes)"),
		mk("wireloss-b", "Byte-level reception: window-query tuning time", "tuning time (bytes)"),
	}
	type point struct{ sim, wire, stale Metrics }
	pts := sweep(len(WireLossThetas), func(i int) point {
		wl := p.workload(ds)
		wl.Theta = WireLossThetas[i]
		wl.BurstLen = Table1GEBurstLen
		return point{
			sim:   wl.RunWindow(sim, DefaultWinSideRatio),
			wire:  wl.RunWindow(wire, DefaultWinSideRatio),
			stale: wl.RunWindow(stale, DefaultWinSideRatio),
		}
	})
	for i, theta := range WireLossThetas {
		for f := range figs {
			figs[f].X = append(figs[f].X, theta)
		}
		pt := pts[i]
		figs[0].AddPoint("Sim", pt.sim.LatencyBytes)
		figs[0].AddPoint("Wire", pt.wire.LatencyBytes)
		figs[0].AddPoint("Wire stale", pt.stale.LatencyBytes)
		figs[1].AddPoint("Sim", pt.sim.TuningBytes)
		figs[1].AddPoint("Wire", pt.wire.TuningBytes)
		figs[1].AddPoint("Wire stale", pt.stale.TuningBytes)
	}
	return Result{Figures: figs}
}

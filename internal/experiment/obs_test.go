package experiment

import (
	"fmt"
	"reflect"
	"testing"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/spatial"
)

// TestDriftObsBitIdentical pins the observability bar for the drift
// harness: running the same cell with a live registry changes nothing
// in the result, and the registry comes back with the resync,
// seam-swap, and replan counters the drift question needs.
func TestDriftObsBitIdentical(t *testing.T) {
	p := driftParams
	ds := p.Dataset()
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: p.ObjectBytes})
	if err != nil {
		t.Fatal(err)
	}

	cell := func(p Params) driftPoint {
		return driftCell(newDriftBase(x, p.workload(ds), 4), p.workload(ds), DriftRatios[0])
	}
	bare := cell(p)

	reg := obs.NewRegistry()
	p.Obs = reg
	inst := cell(p)

	if !reflect.DeepEqual(bare, inst) {
		t.Fatalf("instrumented drift cell diverges:\nbare: %+v\ninst: %+v", bare, inst)
	}
	snap := reg.Snapshot()
	for _, name := range []string{
		"dsi_receiver_resyncs_total",
		"station_seam_swaps_staged_total",
		"sched_replans_triggered_total",
		"sched_replan_checks_total",
	} {
		if reg.Sum(name) == 0 {
			t.Errorf("drift cell left %s at zero; snapshot: %v", name, snap)
		}
	}
}

// TestFECObsBitIdentical does the same for the coded arm: identical
// query outcomes with and without a registry, and nonzero FEC recovery
// counters after a lossy sweep.
func TestFECObsBitIdentical(t *testing.T) {
	p := driftParams.withDefaults()
	ds := p.Dataset()
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: p.ObjectBytes})
	if err != nil {
		t.Fatal(err)
	}
	cfg := fecLightCode(x)
	reg := obs.NewRegistry()
	bare := newFECSystem("bare", x, cfg, nil)
	inst := newFECSystem("inst", x, cfg, reg)

	side := ds.Curve.Side()
	cycle := int64(bare.CycleLen())
	for i := 0; i < 10; i++ {
		w := spatial.ClampedWindow(uint32((i*97)%int(side)), uint32((i*31)%int(side)), 40, side)
		probe := (int64(i) * 1201) % cycle
		mkLoss := func(seed int64) *broadcast.LossModel {
			m := broadcast.GilbertForTheta(0.3, FECBurstLen, seed)
			m.AffectsData = true
			return m
		}
		bids, bst := bare.Window(w, probe, mkLoss(int64(i)))
		iids, ist := inst.Window(w, probe, mkLoss(int64(i)))
		if fmt.Sprint(bids) != fmt.Sprint(iids) || bst != ist {
			t.Fatalf("query %d diverges under instrumentation:\nbare: %+v %v\ninst: %+v %v",
				i, bst, bids, ist, iids)
		}
	}
	if reg.Sum("station_fec_recovered_packets_total") == 0 {
		t.Errorf("lossy coded sweep recovered nothing; snapshot: %v", reg.Snapshot())
	}
	if reg.Sum("dsi_receiver_losses_total") == 0 {
		t.Errorf("lossy coded sweep counted no losses; snapshot: %v", reg.Snapshot())
	}
}

package experiment

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// parallelism is the bound on concurrently executing query
// simulations across the whole package. It defaults to the machine's
// CPU count. tokens is the global semaphore enforcing it: figure
// sweeps fan out without holding tokens (they only orchestrate and
// build indexes), while every leaf query execution holds one, so
// nested fan-out (a sweep of data points each running a parallel
// workload) never exceeds the bound in actual work.
var (
	parallelism atomic.Int64
	tokensMu    sync.Mutex
	tokens      chan struct{}
)

func init() {
	n := runtime.GOMAXPROCS(0)
	parallelism.Store(int64(n))
	tokens = make(chan struct{}, n)
}

// SetParallelism bounds the number of concurrently executing query
// simulations across all of the harness's worker pools. n < 1 is
// treated as 1 (fully sequential). Results are bit-identical at every
// setting: every work item is independent and deterministic, and
// aggregation always happens in item order.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism.Store(int64(n))
	tokensMu.Lock()
	tokens = make(chan struct{}, n)
	tokensMu.Unlock()
}

// Parallelism returns the current worker bound.
func Parallelism() int { return int(parallelism.Load()) }

// queryTokens snapshots the current semaphore. Holders release into
// the snapshot they acquired from, so SetParallelism mid-run cannot
// strand or deadlock in-flight workers.
func queryTokens() chan struct{} {
	tokensMu.Lock()
	defer tokensMu.Unlock()
	return tokens
}

// parallelWorkers runs up to min(Parallelism(), n) workers, each
// repeatedly pulling item indices from next until they are exhausted,
// and waits for all of them. Workers are identified by a dense id in
// [0, Parallelism()) — the key per-worker state (pinned session
// arenas) is indexed by. A panic in any worker stops the pool and is
// re-raised on the caller's goroutine.
func parallelWorkers(n int, worker func(id int, next func() (int, bool))) {
	w := Parallelism()
	if w > n {
		w = n
	}
	var cursor atomic.Int64
	if w <= 1 {
		worker(0, func() (int, bool) {
			i := int(cursor.Add(1)) - 1
			return i, i < n
		})
		return
	}
	var (
		wg       sync.WaitGroup
		panicked atomic.Pointer[any]
	)
	next := func() (int, bool) {
		if panicked.Load() != nil {
			return 0, false
		}
		i := int(cursor.Add(1)) - 1
		return i, i < n
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					// Keep the worker's stack: the re-raise on the
					// caller's goroutine would otherwise lose the
					// origin of the failure.
					r2 := any(fmt.Sprintf("experiment: worker panic: %v\n%s", r, debug.Stack()))
					panicked.CompareAndSwap(nil, &r2)
				}
			}()
			worker(id, next)
		}(g)
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(*r)
	}
}

// parallelEach runs fn(0..n-1) on the worker pool and waits for all of
// them. Item order is unspecified, so fn must write results into
// per-index slots. Callers at the orchestration level (figure sweeps)
// use this directly; it does not consume query tokens.
func parallelEach(n int, fn func(i int)) {
	parallelWorkers(n, func(_ int, next func() (int, bool)) {
		for i, ok := next(); ok; i, ok = next() {
			fn(i)
		}
	})
}

// sweep computes n independent data points on the worker pool and
// returns them in index order — the building block figure experiments
// use to shard their X axes.
func sweep[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	parallelEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// acquireSession hands out the reusable query session pinned to worker
// id for the system, falling back to direct (stateless) calls for
// systems without session support.
func acquireSession(sys System, worker int) QuerySession {
	if ss, ok := sys.(SessionSystem); ok {
		return ss.AcquireSession(worker)
	}
	return statelessSession{sys}
}

// releaseSession hands a session back to its worker slot.
func releaseSession(sys System, worker int, s QuerySession) {
	if ss, ok := sys.(SessionSystem); ok {
		ss.ReleaseSession(worker, s)
	}
}

// sessionArena is the per-system session store: one session pinned per
// worker id, minted on the slot's first use and reused by every later
// run — no pool traffic at steady state, no cross-worker handoff, and
// a stable worker-to-session binding a NUMA-aware allocator could
// exploit. When workloads run concurrently against one system (a
// figure sweep fanning out data points) their worker ids collide: the
// slot's owner keeps it and the latecomer draws from a small overflow
// free-list, minting only when that is empty too (counted by the mint
// counter the reuse tests watch).
type sessionArena struct {
	mu    sync.Mutex
	slots []arenaSlot
	spare []QuerySession // overflow reuse for busy-slot collisions
}

type arenaSlot struct {
	s    QuerySession
	busy bool
}

// acquire hands out worker w's pinned session, minting one the first
// time; when the slot is checked out by a concurrent run, it reuses a
// spare (or mints one that will become a spare on release).
func (a *sessionArena) acquire(w int, mint func() QuerySession) QuerySession {
	a.mu.Lock()
	if w >= len(a.slots) {
		a.slots = append(a.slots, make([]arenaSlot, w+1-len(a.slots))...)
	}
	slot := &a.slots[w]
	if !slot.busy && slot.s != nil {
		slot.busy = true
		s := slot.s
		a.mu.Unlock()
		return s
	}
	taken := slot.busy
	if !taken {
		slot.busy = true
	} else if n := len(a.spare); n > 0 {
		s := a.spare[n-1]
		a.spare[n-1] = nil
		a.spare = a.spare[:n-1]
		a.mu.Unlock()
		return s
	}
	a.mu.Unlock()
	s := mint()
	if !taken {
		a.mu.Lock()
		a.slots[w].s = s
		a.mu.Unlock()
	}
	return s
}

// release checks worker w's pinned session back into its slot; a
// session that is not the slot's pin goes onto the overflow free-list
// for the next colliding run.
func (a *sessionArena) release(w int, s QuerySession) {
	a.mu.Lock()
	if w < len(a.slots) && a.slots[w].s == s {
		a.slots[w].busy = false
	} else {
		a.spare = append(a.spare, s)
	}
	a.mu.Unlock()
}

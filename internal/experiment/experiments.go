package experiment

import (
	"fmt"
	"sort"

	"dsi/internal/broadcast"
	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/model"
	"dsi/internal/obs"
)

// Params configures an experiment run. Zero values take the paper's
// defaults: 10,000 uniform points, 1024-byte objects, WinSideRatio 0.1.
type Params struct {
	N           int   // dataset cardinality (default 10000; REAL uses 5848)
	Order       uint  // Hilbert curve order (default 8)
	Seed        int64 // dataset + workload seed (default 1)
	Queries     int   // queries averaged per data point (default 100)
	ObjectBytes int   // data object size (default 1024)
	Real        bool  // use the REAL-like clustered dataset
	Verify      bool  // cross-check every query against brute force
	// Obs, when set, collects operational counters from every layer the
	// run exercises (receivers, stations, planners). Nil — the default —
	// leaves every hot path uninstrumented.
	Obs *obs.Registry
}

func (p Params) withDefaults() Params {
	if p.N == 0 {
		if p.Real {
			p.N = 5848
		} else {
			p.N = 10000
		}
	}
	if p.Order == 0 {
		p.Order = 8
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Queries == 0 {
		p.Queries = 100
	}
	if p.ObjectBytes == 0 {
		p.ObjectBytes = broadcast.ObjectBytes
	}
	return p
}

// Dataset materializes the dataset the params describe.
func (p Params) Dataset() *dataset.Dataset {
	p = p.withDefaults()
	if p.Real {
		cfg := dataset.DefaultRealConfig(p.Seed)
		cfg.N = p.N
		cfg.Order = p.Order
		return dataset.Clustered(cfg)
	}
	return dataset.Uniform(p.N, p.Order, p.Seed)
}

func (p Params) workload(ds *dataset.Dataset) *Workload {
	return &Workload{DS: ds, Queries: p.Queries, Seed: p.Seed + 1000, Verify: p.Verify, Obs: p.Obs}
}

// The packet capacities the paper sweeps. DSI-only figures include 32
// bytes; three-index comparisons start at 64 (the R-tree cannot be
// built at 32, and the paper's figures omit that point).
var (
	CapacitiesAll   = []int{32, 64, 128, 256, 512}
	CapacitiesThree = []int{64, 128, 256, 512}
)

// DefaultWinSideRatio is the paper's default window side ratio.
const DefaultWinSideRatio = 0.1

// Fig8 reproduces Figure 8: broadcast reorganization on the UNIFORM
// dataset. (a,b) window-query latency/tuning of the original versus the
// two-segment reorganized broadcast; (c,d) 10NN latency/tuning of the
// original broadcast's conservative and aggressive strategies versus
// the reorganized broadcast.
func Fig8(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	wl := p.workload(ds)

	mk := func(id, title, metric string) Figure {
		return Figure{ID: id, Title: title, XLabel: "capacity(B)", YLabel: metric, XFmt: "%.0f"}
	}
	figs := []Figure{
		mk("fig8a", "Broadcast reorganization: window-query access latency", "access latency (bytes)"),
		mk("fig8b", "Broadcast reorganization: window-query tuning time", "tuning time (bytes)"),
		mk("fig8c", "Broadcast reorganization: 10NN access latency", "access latency (bytes)"),
		mk("fig8d", "Broadcast reorganization: 10NN tuning time", "tuning time (bytes)"),
	}
	type point struct{ mo, mr, kc, ka, kr Metrics }
	pts := sweep(len(CapacitiesAll), func(i int) point {
		c := CapacitiesAll[i]
		orig := mustSys(NewDSI(ds, dsi.Config{Capacity: c}, dsi.Conservative, "Original"))
		agg := mustSys(NewDSI(ds, dsi.Config{Capacity: c}, dsi.Aggressive, "Aggressive"))
		reorg := mustSys(NewDSI(ds, dsi.Config{Capacity: c, Segments: 2}, dsi.Conservative, "Reorganized"))
		return point{
			mo: wl.RunWindow(orig, DefaultWinSideRatio),
			mr: wl.RunWindow(reorg, DefaultWinSideRatio),
			kc: wl.RunKNN(orig, 10),
			ka: wl.RunKNN(agg, 10),
			kr: wl.RunKNN(reorg, 10),
		}
	})
	for i, c := range CapacitiesAll {
		for f := range figs {
			figs[f].X = append(figs[f].X, float64(c))
		}
		pt := pts[i]
		figs[0].AddPoint("Original", pt.mo.LatencyBytes)
		figs[0].AddPoint("Reorganized", pt.mr.LatencyBytes)
		figs[1].AddPoint("Original", pt.mo.TuningBytes)
		figs[1].AddPoint("Reorganized", pt.mr.TuningBytes)
		figs[2].AddPoint("Conservative", pt.kc.LatencyBytes)
		figs[2].AddPoint("Aggressive", pt.ka.LatencyBytes)
		figs[2].AddPoint("Reorganized", pt.kr.LatencyBytes)
		figs[3].AddPoint("Conservative", pt.kc.TuningBytes)
		figs[3].AddPoint("Aggressive", pt.ka.TuningBytes)
		figs[3].AddPoint("Reorganized", pt.kr.TuningBytes)
	}
	return Result{Figures: figs}
}

// threeSystems builds DSI (reorganized, the configuration the paper
// uses after section 4.1), R-tree and HCI at the given capacity.
func threeSystems(ds *dataset.Dataset, capacity, objectBytes int) []System {
	return []System{
		mustSys(NewDSI(ds, dsi.Config{Capacity: capacity, Segments: 2, ObjectBytes: objectBytes}, dsi.Conservative, "DSI")),
		mustSys(NewRTree(ds, capacity, objectBytes)),
		mustSys(NewHCI(ds, capacity, objectBytes)),
	}
}

// Fig9 reproduces Figure 9: window-query performance of DSI, R-tree and
// HCI versus packet capacity (UNIFORM, WinSideRatio 0.1).
func Fig9(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	wl := p.workload(ds)
	lat := Figure{ID: "fig9a", Title: "Window queries vs. packet capacity: access latency",
		XLabel: "capacity(B)", YLabel: "access latency (bytes)", XFmt: "%.0f"}
	tun := Figure{ID: "fig9b", Title: "Window queries vs. packet capacity: tuning time",
		XLabel: "capacity(B)", YLabel: "tuning time (bytes)", XFmt: "%.0f"}
	sweepPoints(&lat, &tun, xsOf(CapacitiesThree), func(i int) []namedMetrics {
		var out []namedMetrics
		for _, sys := range threeSystems(ds, CapacitiesThree[i], p.ObjectBytes) {
			out = append(out, namedMetrics{sys.Name(), wl.RunWindow(sys, DefaultWinSideRatio)})
		}
		return out
	})
	return Result{Figures: []Figure{lat, tun}}
}

// namedMetrics carries one system's metrics out of a parallel sweep.
type namedMetrics struct {
	name string
	m    Metrics
}

// sweepPoints computes one set of per-system metrics per X value on
// the worker pool and fills the latency/tuning figure pair in order.
func sweepPoints(lat, tun *Figure, xs []float64, point func(i int) []namedMetrics) {
	pts := sweep(len(xs), point)
	for i, x := range xs {
		lat.X = append(lat.X, x)
		tun.X = append(tun.X, x)
		for _, nm := range pts[i] {
			lat.AddPoint(nm.name, nm.m.LatencyBytes)
			tun.AddPoint(nm.name, nm.m.TuningBytes)
		}
	}
}

// xsOf converts sweep positions to figure X values.
func xsOf[T int | float64](vs []T) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(v)
	}
	return out
}

// Fig10 reproduces Figure 10: window-query performance versus the
// window side ratio at 64-byte packets.
func Fig10(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	wl := p.workload(ds)
	ratios := []float64{0.02, 0.05, 0.1, 0.15, 0.2}
	lat := Figure{ID: "fig10a", Title: "Window queries vs. WinSideRatio: access latency",
		XLabel: "WinSideRatio", YLabel: "access latency (bytes)"}
	tun := Figure{ID: "fig10b", Title: "Window queries vs. WinSideRatio: tuning time",
		XLabel: "WinSideRatio", YLabel: "tuning time (bytes)"}
	systems := threeSystems(ds, 64, p.ObjectBytes)
	sweepPoints(&lat, &tun, ratios, func(i int) []namedMetrics {
		var out []namedMetrics
		for _, sys := range systems {
			out = append(out, namedMetrics{sys.Name(), wl.RunWindow(sys, ratios[i])})
		}
		return out
	})
	return Result{Figures: []Figure{lat, tun}}
}

// Fig11 reproduces Figure 11: NN (k=1) and 10NN performance versus
// packet capacity.
func Fig11(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	wl := p.workload(ds)
	mk := func(id, title, y string) Figure {
		return Figure{ID: id, Title: title, XLabel: "capacity(B)", YLabel: y, XFmt: "%.0f"}
	}
	figs := []Figure{
		mk("fig11a", "NN queries (k=1): access latency", "access latency (bytes)"),
		mk("fig11b", "NN queries (k=1): tuning time", "tuning time (bytes)"),
		mk("fig11c", "10NN queries: access latency", "access latency (bytes)"),
		mk("fig11d", "10NN queries: tuning time", "tuning time (bytes)"),
	}
	type sysPoint struct {
		name    string
		m1, m10 Metrics
	}
	pts := sweep(len(CapacitiesThree), func(i int) []sysPoint {
		var out []sysPoint
		for _, sys := range threeSystems(ds, CapacitiesThree[i], p.ObjectBytes) {
			out = append(out, sysPoint{
				name: sys.Name(),
				m1:   wl.RunKNN(sys, 1),
				m10:  wl.RunKNN(sys, 10),
			})
		}
		return out
	})
	for i, c := range CapacitiesThree {
		for f := range figs {
			figs[f].X = append(figs[f].X, float64(c))
		}
		for _, sp := range pts[i] {
			figs[0].AddPoint(sp.name, sp.m1.LatencyBytes)
			figs[1].AddPoint(sp.name, sp.m1.TuningBytes)
			figs[2].AddPoint(sp.name, sp.m10.LatencyBytes)
			figs[3].AddPoint(sp.name, sp.m10.TuningBytes)
		}
	}
	return Result{Figures: figs}
}

// Fig12 reproduces Figure 12: kNN performance versus k at 64-byte
// packets.
func Fig12(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	wl := p.workload(ds)
	ks := []int{1, 3, 5, 10, 20, 30}
	lat := Figure{ID: "fig12a", Title: "kNN queries vs. k: access latency",
		XLabel: "k", YLabel: "access latency (bytes)", XFmt: "%.0f"}
	tun := Figure{ID: "fig12b", Title: "kNN queries vs. k: tuning time",
		XLabel: "k", YLabel: "tuning time (bytes)", XFmt: "%.0f"}
	systems := threeSystems(ds, 64, p.ObjectBytes)
	sweepPoints(&lat, &tun, xsOf(ks), func(i int) []namedMetrics {
		var out []namedMetrics
		for _, sys := range systems {
			out = append(out, namedMetrics{sys.Name(), wl.RunKNN(sys, ks[i])})
		}
		return out
	})
	return Result{Figures: []Figure{lat, tun}}
}

// Table1 reproduces Table 1: performance deterioration (percent,
// relative to the error-free run of the same index) under link-error
// ratios theta in {0.2, 0.5, 0.7}, for window queries (ratio 0.1) and
// 10NN queries, at 64-byte packets.
func Table1(p Params) Result {
	return table1Run(p, 0, "table1",
		"Performance deterioration in error-prone environments (UNIFORM)")
}

// Table1GEBurstLen is the mean burst length (packets) of the
// Gilbert-Elliott re-run of Table 1.
const Table1GEBurstLen = 8

// Table1GE re-runs Table 1 under the Gilbert-Elliott burst-error
// channel at the same stationary loss rates: losses arrive in runs of
// Table1GEBurstLen packets on average instead of independently, the
// channel model the bursty-fading literature argues is the realistic
// one.
func Table1GE(p Params) Result {
	return table1Run(p, Table1GEBurstLen, "table1ge",
		fmt.Sprintf("Deterioration under Gilbert-Elliott burst errors (mean burst %d packets, UNIFORM)",
			Table1GEBurstLen))
}

// table1Run is the shared Table 1 harness; burstLen 0 is the paper's
// i.i.d. error process.
func table1Run(p Params, burstLen float64, id, title string) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	thetas := []float64{0.2, 0.5, 0.7}

	t := Table{
		ID:    id,
		Title: title,
		Header: []string{"Index", "theta",
			"Win Latency", "Win Tuning", "10NN Latency", "10NN Tuning"},
	}
	// Order as in the paper: HCI, R-tree, DSI.
	systems := []System{
		mustSys(NewHCI(ds, 64, p.ObjectBytes)),
		mustSys(NewRTree(ds, 64, p.ObjectBytes)),
		mustSys(NewDSI(ds, dsi.Config{Capacity: 64, Segments: 2, ObjectBytes: p.ObjectBytes}, dsi.Conservative, "DSI")),
	}
	rows := sweep(len(systems), func(i int) [][]string {
		sys := systems[i]
		base := p.workload(ds)
		bw := base.RunWindow(sys, DefaultWinSideRatio)
		bk := base.RunKNN(sys, 10)
		var out [][]string
		for _, theta := range thetas {
			wl := p.workload(ds)
			wl.Theta = theta
			wl.BurstLen = burstLen
			w := wl.RunWindow(sys, DefaultWinSideRatio)
			k := wl.RunKNN(sys, 10)
			pct := func(now, was float64) string {
				return fmt.Sprintf("%.2f%%", (now-was)/was*100)
			}
			out = append(out, []string{
				sys.Name(), fmt.Sprintf("%.1f", theta),
				pct(w.LatencyBytes, bw.LatencyBytes),
				pct(w.TuningBytes, bw.TuningBytes),
				pct(k.LatencyBytes, bk.LatencyBytes),
				pct(k.TuningBytes, bk.TuningBytes),
			})
		}
		return out
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r...)
	}
	return Result{Tables: []Table{t}}
}

// RealDataset reproduces the REAL-dataset comparisons the paper reports
// in the text of sections 4.2 and 4.3: DSI's latency and tuning as a
// percentage of R-tree's and HCI's, for window and 10NN queries.
func RealDataset(p Params) Result {
	p.Real = true
	p = p.withDefaults()
	ds := p.Dataset()
	wl := p.workload(ds)
	systems := threeSystems(ds, 64, p.ObjectBytes)

	type pair struct{ win, knn Metrics }
	pts := sweep(len(systems), func(i int) pair {
		return pair{
			win: wl.RunWindow(systems[i], DefaultWinSideRatio),
			knn: wl.RunKNN(systems[i], 10),
		}
	})
	var win, knn []Metrics
	for _, pt := range pts {
		win = append(win, pt.win)
		knn = append(knn, pt.knn)
	}
	pct := func(dsiV, other float64) string { return fmt.Sprintf("%.1f%%", dsiV/other*100) }
	t := Table{
		ID:     "real",
		Title:  "REAL-like dataset: DSI cost as a fraction of each baseline (64B packets)",
		Header: []string{"Query", "Metric", "DSI/R-tree", "DSI/HCI"},
		Rows: [][]string{
			{"Window", "latency", pct(win[0].LatencyBytes, win[1].LatencyBytes), pct(win[0].LatencyBytes, win[2].LatencyBytes)},
			{"Window", "tuning", pct(win[0].TuningBytes, win[1].TuningBytes), pct(win[0].TuningBytes, win[2].TuningBytes)},
			{"10NN", "latency", pct(knn[0].LatencyBytes, knn[1].LatencyBytes), pct(knn[0].LatencyBytes, knn[2].LatencyBytes)},
			{"10NN", "tuning", pct(knn[0].TuningBytes, knn[1].TuningBytes), pct(knn[0].TuningBytes, knn[2].TuningBytes)},
		},
	}
	return Result{Tables: []Table{t}}
}

// AblationSizing compares the default auto frame sizing with the
// paper's literal one-packet-table sizing (DESIGN.md item 3).
func AblationSizing(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	wl := p.workload(ds)
	lat := Figure{ID: "abl-sizing-lat", Title: "Frame sizing ablation: 10NN access latency",
		XLabel: "capacity(B)", YLabel: "access latency (bytes)", XFmt: "%.0f"}
	tun := Figure{ID: "abl-sizing-tun", Title: "Frame sizing ablation: 10NN tuning time",
		XLabel: "capacity(B)", YLabel: "tuning time (bytes)", XFmt: "%.0f"}
	// 32-byte packets cannot hold a one-packet paper table (own HC value
	// plus at least one 18-byte entry), so the sweep starts at 64.
	sweepPoints(&lat, &tun, xsOf(CapacitiesThree), func(i int) []namedMetrics {
		c := CapacitiesThree[i]
		auto := mustSys(NewDSI(ds, dsi.Config{Capacity: c, Segments: 2, ObjectBytes: p.ObjectBytes},
			dsi.Conservative, "Auto"))
		paper := mustSys(NewDSI(ds, dsi.Config{Capacity: c, Segments: 2, ObjectBytes: p.ObjectBytes,
			Sizing: dsi.SizingPaperTable}, dsi.Conservative, "PaperTable"))
		var out []namedMetrics
		for _, sys := range []System{auto, paper} {
			out = append(out, namedMetrics{sys.Name(), wl.RunKNN(sys, 10)})
		}
		return out
	})
	return Result{Figures: []Figure{lat, tun}}
}

// AblationReorgM sweeps the reorganization factor m (DESIGN.md).
func AblationReorgM(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	wl := p.workload(ds)
	t := Table{
		ID:     "abl-m",
		Title:  "Reorganization factor m (64B packets, UNIFORM)",
		Header: []string{"m", "Win Latency", "Win Tuning", "10NN Latency", "10NN Tuning"},
	}
	ms := []int{1, 2, 4, 8}
	t.Rows = sweep(len(ms), func(i int) []string {
		m := ms[i]
		sys := mustSys(NewDSI(ds, dsi.Config{Capacity: 64, Segments: m, ObjectBytes: p.ObjectBytes},
			dsi.Conservative, fmt.Sprintf("m=%d", m)))
		w := wl.RunWindow(sys, DefaultWinSideRatio)
		k := wl.RunKNN(sys, 10)
		return []string{
			fmt.Sprintf("%d", m),
			humanBytes(w.LatencyBytes), humanBytes(w.TuningBytes),
			humanBytes(k.LatencyBytes), humanBytes(k.TuningBytes),
		}
	})
	return Result{Tables: []Table{t}}
}

// AblationIndexBase sweeps the index base r (DESIGN.md).
func AblationIndexBase(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	wl := p.workload(ds)
	t := Table{
		ID:     "abl-base",
		Title:  "Index base r (64B packets, UNIFORM, original broadcast)",
		Header: []string{"r", "Table bytes", "Win Latency", "Win Tuning", "10NN Latency", "10NN Tuning"},
	}
	rs := []int{2, 4, 8}
	t.Rows = sweep(len(rs), func(i int) []string {
		r := rs[i]
		x, err := dsi.Build(ds, dsi.Config{Capacity: 64, IndexBase: r, ObjectBytes: p.ObjectBytes,
			Sizing: dsi.SizingUnitFactor})
		if err != nil {
			panic(err)
		}
		sys := &DSISystem{Label: fmt.Sprintf("r=%d", r), Index: x, Strategy: dsi.Conservative}
		w := wl.RunWindow(sys, DefaultWinSideRatio)
		k := wl.RunKNN(sys, 10)
		return []string{
			fmt.Sprintf("%d", r), fmt.Sprintf("%d", x.TableBytes()),
			humanBytes(w.LatencyBytes), humanBytes(w.TuningBytes),
			humanBytes(k.LatencyBytes), humanBytes(k.TuningBytes),
		}
	})
	return Result{Tables: []Table{t}}
}

// CostModel tabulates the analytic cost model of internal/model next to
// simulated point-query costs, per capacity: a consistency check
// between the implementation and the paper's analytical intuition that
// forwarding is "logically like a binary search".
func CostModel(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	t := Table{
		ID:    "costmodel",
		Title: "DSI analytic cost model vs. simulation (point queries)",
		Header: []string{"capacity", "nF", "nO", "E", "r", "overhead",
			"model latency", "sim latency", "model tuning", "sim tuning"},
	}
	t.Rows = sweep(len(CapacitiesAll), func(ci int) []string {
		capacity := CapacitiesAll[ci]
		x, err := dsi.Build(ds, dsi.Config{Capacity: capacity, ObjectBytes: p.ObjectBytes})
		if err != nil {
			panic(err)
		}
		cost := model.AnalyzeDSI(x)
		// Each capacity draws from its own deterministic stream so the
		// sweep can run its data points in any order (or in parallel).
		rng := newWorkloadRNG(p.Seed + 7 + 1000*int64(ci))
		var c *dsi.Client
		var lat, tun float64
		for i := 0; i < p.Queries; i++ {
			o := ds.Objects[rng.IntN(ds.N())]
			probe := rng.Int64N(int64(x.Prog.Len()))
			if c == nil {
				c = dsi.NewClient(x, probe, nil)
			} else {
				c.Reset(probe, nil)
			}
			_, _, st := c.EEF(o.HC)
			lat += float64(st.LatencyBytes())
			tun += float64(st.TuningBytes())
		}
		q := float64(p.Queries)
		return []string{
			fmt.Sprintf("%d", capacity),
			fmt.Sprintf("%d", x.NF), fmt.Sprintf("%d", x.NO),
			fmt.Sprintf("%d", x.E), fmt.Sprintf("%d", x.Base),
			fmt.Sprintf("%.1f%%", cost.IndexOverhead*100),
			humanBytes(cost.ExpPointLatencyPackets * float64(capacity)),
			humanBytes(lat / q),
			humanBytes(cost.ExpPointTuningPackets * float64(capacity)),
			humanBytes(tun / q),
		}
	})
	return Result{Tables: []Table{t}}
}

// Registry maps experiment names to their functions, for the CLI.
var Registry = map[string]func(Params) Result{
	"fig8":      Fig8,
	"fig9":      Fig9,
	"fig10":     Fig10,
	"fig11":     Fig11,
	"fig12":     Fig12,
	"table1":    Table1,
	"table1ge":  Table1GE,
	"real":      RealDataset,
	"sizing":    AblationSizing,
	"reorgm":    AblationReorgM,
	"base":      AblationIndexBase,
	"costmodel": CostModel,
	"channels":  Channels,
	"sharded":   Sharded,
	"chanloss":  ChanLoss,
	"drift":     Drift,
	"wireloss":  WireLoss,
	"fec":       FEC,
	"massive":   Massive,
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for name := range Registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

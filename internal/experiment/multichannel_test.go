package experiment

import (
	"reflect"
	"testing"

	"dsi/internal/dsi"
)

// chanParams keeps multi-channel experiment tests fast while leaving
// enough frames for the widest channel sweep.
var chanParams = Params{N: 400, Order: 7, Seed: 11, Queries: 10, Verify: true}

// TestMultiDSIMatchesSingleAtOneChannel: the N=1 point of the channel
// sweep must be the existing single-channel engine, metric for metric,
// under both schedulers.
func TestMultiDSIMatchesSingleAtOneChannel(t *testing.T) {
	p := chanParams
	ds := p.Dataset()
	wl := p.workload(ds)
	cfg := dsi.Config{Capacity: 64, Segments: 2}
	single := mustSys(NewDSI(ds, cfg, dsi.Conservative, ""))
	wantW := wl.RunWindow(single, DefaultWinSideRatio)
	wantK := wl.RunKNN(single, 10)
	for _, sched := range []dsi.Scheduler{dsi.SchedSplit, dsi.SchedStripe} {
		sys := mustSys(NewMultiDSI(ds, cfg,
			dsi.MultiConfig{Channels: 1, Scheduler: sched, SwitchSlots: DefaultSwitchSlots},
			dsi.Conservative, ""))
		if got := wl.RunWindow(sys, DefaultWinSideRatio); got != wantW {
			t.Errorf("%v x1 window %v != single-channel %v", sched, got, wantW)
		}
		if got := wl.RunKNN(sys, 10); got != wantK {
			t.Errorf("%v x1 10NN %v != single-channel %v", sched, got, wantK)
		}
	}
}

// TestSplitLatencyMonotone is the acceptance criterion of the channel
// layer: separating index from data channels must improve access
// latency monotonically with the channel count, for window and 10NN
// queries alike — and the whole sweep must be bit-identical at every
// parallelism level.
func TestSplitLatencyMonotone(t *testing.T) {
	p := chanParams
	ds := p.Dataset()
	defer SetParallelism(Parallelism())

	type point struct{ win, knn Metrics }
	run := func() []point {
		wl := p.workload(ds)
		out := make([]point, 0, len(ChannelCounts))
		for _, n := range ChannelCounts {
			sys := mustSys(NewMultiDSI(ds, dsi.Config{Capacity: 64, Segments: 2},
				dsi.MultiConfig{Channels: n, Scheduler: dsi.SchedSplit, SwitchSlots: DefaultSwitchSlots},
				dsi.Conservative, ""))
			out = append(out, point{
				win: wl.RunWindow(sys, DefaultWinSideRatio),
				knn: wl.RunKNN(sys, 10),
			})
		}
		return out
	}

	SetParallelism(1)
	seq := run()
	SetParallelism(4)
	par := run()
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("channel sweep differs across parallelism levels:\nseq: %v\npar: %v", seq, par)
	}
	for i := 1; i < len(seq); i++ {
		if seq[i].win.LatencyBytes >= seq[i-1].win.LatencyBytes {
			t.Errorf("window latency not monotone: %d channels %.0fB >= %d channels %.0fB",
				ChannelCounts[i], seq[i].win.LatencyBytes, ChannelCounts[i-1], seq[i-1].win.LatencyBytes)
		}
		if seq[i].knn.LatencyBytes >= seq[i-1].knn.LatencyBytes {
			t.Errorf("10NN latency not monotone: %d channels %.0fB >= %d channels %.0fB",
				ChannelCounts[i], seq[i].knn.LatencyBytes, ChannelCounts[i-1], seq[i-1].knn.LatencyBytes)
		}
	}
}

// TestChannelsExperimentStructure runs the registered experiment
// end-to-end (verified queries) and checks its shape.
func TestChannelsExperimentStructure(t *testing.T) {
	res := Channels(chanParams)
	if len(res.Figures) != 4 {
		t.Fatalf("channels produced %d figures", len(res.Figures))
	}
	for _, f := range res.Figures {
		if len(f.X) != len(ChannelCounts) || len(f.Series) != 2 {
			t.Errorf("%s: %d xs, %d series", f.ID, len(f.X), len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.Y) != len(ChannelCounts) {
				t.Errorf("%s series %s: %d points", f.ID, s.Name, len(s.Y))
			}
		}
	}
}

// TestTable1GE runs the burst-error Table 1 re-run on a small dataset:
// every deterioration entry must parse as a percentage, and the burst
// workload must still verify against brute force.
func TestTable1GE(t *testing.T) {
	res := Table1GE(chanParams)
	if len(res.Tables) != 1 {
		t.Fatalf("table1ge produced %d tables", len(res.Tables))
	}
	tb := res.Tables[0]
	if len(tb.Rows) != 9 {
		t.Fatalf("table1ge has %d rows, want 9", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		for _, cell := range row[2:] {
			if len(cell) == 0 || cell[len(cell)-1] != '%' {
				t.Errorf("cell %q is not a percentage", cell)
			}
		}
	}
}

// TestMultiSessionReuse: the multi-channel system's pooled sessions
// must give the same metrics as stateless clients.
func TestMultiSessionReuse(t *testing.T) {
	p := chanParams
	ds := p.Dataset()
	wl := p.workload(ds)
	sys := mustSys(NewMultiDSI(ds, dsi.Config{Capacity: 64, Segments: 2},
		dsi.MultiConfig{Channels: 3, Scheduler: dsi.SchedSplit, SwitchSlots: DefaultSwitchSlots},
		dsi.Conservative, ""))
	first := wl.RunWindow(sys, DefaultWinSideRatio)
	for i := 0; i < 3; i++ {
		if got := wl.RunWindow(sys, DefaultWinSideRatio); got != first {
			t.Fatalf("run %d: %v != first %v", i, got, first)
		}
	}
}

// BenchmarkMultiChannel is the CI smoke benchmark of the channel layer:
// one verified window+kNN workload over a 4-channel split layout.
func BenchmarkMultiChannel(b *testing.B) {
	p := Params{N: 400, Order: 7, Seed: 11, Queries: 10, Verify: true}
	ds := p.Dataset()
	wl := p.workload(ds)
	sys, err := NewMultiDSI(ds, dsi.Config{Capacity: 64, Segments: 2},
		dsi.MultiConfig{Channels: 4, Scheduler: dsi.SchedSplit, SwitchSlots: DefaultSwitchSlots},
		dsi.Conservative, "")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wl.RunWindow(sys, DefaultWinSideRatio)
		wl.RunKNN(sys, 10)
	}
}

// BenchmarkBaselineBuilds measures building the three systems across
// the capacity sweep — the cost the dataset-level build caches (STR
// x-order, B+-tree key extraction) amortize across figure points.
func BenchmarkBaselineBuilds(b *testing.B) {
	p := Params{N: 2000, Order: 8, Seed: 3}
	ds := p.Dataset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range CapacitiesThree {
			threeSystems(ds, c, 1024)
		}
	}
}

package experiment

import (
	"strings"
	"testing"

	"dsi/internal/dsi"
)

// smallParams keeps experiment tests fast while still end-to-end.
func smallParams() Params {
	return Params{N: 300, Order: 6, Seed: 7, Queries: 4, Verify: true}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.N != 10000 || p.Order != 8 || p.Queries != 100 || p.ObjectBytes != 1024 {
		t.Errorf("defaults wrong: %+v", p)
	}
	r := Params{Real: true}.withDefaults()
	if r.N != 5848 {
		t.Errorf("REAL default N = %d, want 5848", r.N)
	}
}

func TestDatasetSelection(t *testing.T) {
	u := Params{N: 100, Order: 6, Seed: 1}.Dataset()
	if u.N() != 100 || !strings.HasPrefix(u.Name, "UNIFORM") {
		t.Errorf("uniform dataset wrong: %s", u.Name)
	}
	r := Params{N: 200, Order: 7, Seed: 1, Real: true}.Dataset()
	if r.N() != 200 || !strings.HasPrefix(r.Name, "REAL") {
		t.Errorf("real dataset wrong: %s", r.Name)
	}
}

func TestSystemsAgreeOnResults(t *testing.T) {
	// The Verify flag makes the workload panic on any wrong result, so
	// a clean run is itself the assertion.
	p := smallParams()
	ds := p.Dataset()
	wl := p.workload(ds)
	for _, sys := range threeSystems(ds, 64, 1024) {
		m := wl.RunWindow(sys, 0.15)
		if m.LatencyBytes <= 0 || m.TuningBytes <= 0 {
			t.Errorf("%s: nonpositive metrics %v", sys.Name(), m)
		}
		if m.TuningBytes > m.LatencyBytes {
			t.Errorf("%s: tuning exceeds latency", sys.Name())
		}
		mk := wl.RunKNN(sys, 5)
		if mk.TuningBytes > mk.LatencyBytes {
			t.Errorf("%s kNN: tuning exceeds latency", sys.Name())
		}
	}
}

func TestSystemNamesAndCycle(t *testing.T) {
	p := smallParams()
	ds := p.Dataset()
	systems := threeSystems(ds, 64, 1024)
	wantNames := []string{"DSI", "R-tree", "HCI"}
	for i, sys := range systems {
		if sys.Name() != wantNames[i] {
			t.Errorf("system %d name %q, want %q", i, sys.Name(), wantNames[i])
		}
		if sys.CycleLen() <= 0 {
			t.Errorf("%s: bad cycle length", sys.Name())
		}
	}
}

func TestWorkloadDeterminism(t *testing.T) {
	p := smallParams()
	ds := p.Dataset()
	sys := mustSys(NewDSI(ds, dsi.Config{Capacity: 64}, dsi.Conservative, ""))
	a := p.workload(ds).RunWindow(sys, 0.1)
	b := p.workload(ds).RunWindow(sys, 0.1)
	if a != b {
		t.Errorf("same workload produced %v and %v", a, b)
	}
}

func TestFig8Structure(t *testing.T) {
	res := Fig8(smallParams())
	if len(res.Figures) != 4 {
		t.Fatalf("Fig8 produced %d figures", len(res.Figures))
	}
	ids := []string{"fig8a", "fig8b", "fig8c", "fig8d"}
	for i, f := range res.Figures {
		if f.ID != ids[i] {
			t.Errorf("figure %d id %q", i, f.ID)
		}
		if len(f.X) != len(CapacitiesAll) {
			t.Errorf("%s: %d x points", f.ID, len(f.X))
		}
		for _, s := range f.Series {
			if len(s.Y) != len(f.X) {
				t.Errorf("%s series %s: %d points for %d x", f.ID, s.Name, len(s.Y), len(f.X))
			}
			for _, y := range s.Y {
				if y <= 0 {
					t.Errorf("%s series %s: nonpositive value", f.ID, s.Name)
				}
			}
		}
	}
	// Window figures have 2 series; kNN figures 3.
	if len(res.Figures[0].Series) != 2 || len(res.Figures[2].Series) != 3 {
		t.Error("series counts wrong")
	}
	if out := res.Format(); !strings.Contains(out, "fig8a") {
		t.Error("Format missing figure id")
	}
}

func TestFig9Through12Structure(t *testing.T) {
	p := smallParams()
	cases := []struct {
		name string
		fn   func(Params) Result
		figs int
	}{
		{"fig9", Fig9, 2},
		{"fig10", Fig10, 2},
		{"fig11", Fig11, 4},
		{"fig12", Fig12, 2},
	}
	for _, tc := range cases {
		res := tc.fn(p)
		if len(res.Figures) != tc.figs {
			t.Fatalf("%s: %d figures, want %d", tc.name, len(res.Figures), tc.figs)
		}
		for _, f := range res.Figures {
			if len(f.Series) != 3 {
				t.Errorf("%s %s: %d series, want 3 (DSI, R-tree, HCI)", tc.name, f.ID, len(f.Series))
			}
			for _, s := range f.Series {
				if len(s.Y) != len(f.X) {
					t.Errorf("%s %s series %s incomplete", tc.name, f.ID, s.Name)
				}
			}
		}
	}
}

func TestTable1Structure(t *testing.T) {
	res := Table1(smallParams())
	if len(res.Tables) != 1 {
		t.Fatal("Table1 must produce one table")
	}
	tab := res.Tables[0]
	if len(tab.Rows) != 9 { // 3 indexes x 3 thetas
		t.Fatalf("table1 has %d rows, want 9", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row width %d != header %d", len(row), len(tab.Header))
		}
		for _, cell := range row[2:] {
			if !strings.HasSuffix(cell, "%") {
				t.Fatalf("deterioration cell %q not a percentage", cell)
			}
		}
	}
	if out := tab.Format(); !strings.Contains(out, "DSI") {
		t.Error("table format missing DSI row")
	}
}

func TestRealDatasetStructure(t *testing.T) {
	res := RealDataset(Params{N: 300, Order: 7, Seed: 3, Queries: 3, Verify: true})
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != 4 {
		t.Fatalf("real table shape wrong: %+v", res.Tables)
	}
}

func TestAblations(t *testing.T) {
	p := smallParams()
	if res := AblationSizing(p); len(res.Figures) != 2 {
		t.Error("sizing ablation shape wrong")
	}
	if res := AblationReorgM(p); len(res.Tables[0].Rows) != 4 {
		t.Error("reorg-m ablation shape wrong")
	}
	if res := AblationIndexBase(p); len(res.Tables[0].Rows) != 3 {
		t.Error("base ablation shape wrong")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"base", "chanloss", "channels", "costmodel", "drift", "fec", "fig10", "fig11", "fig12", "fig8", "fig9", "massive", "real", "reorgm", "sharded", "sizing", "table1", "table1ge", "wireloss"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry = %v, want %v", got, want)
		}
	}
}

func TestFigureFormatAlignment(t *testing.T) {
	f := Figure{ID: "x", Title: "t", XLabel: "cap", YLabel: "bytes", X: []float64{1, 2}}
	f.AddPoint("A", 1500)
	f.AddPoint("B", 2.5e6)
	f.AddPoint("A", 10)
	f.AddPoint("B", 3e6)
	out := f.Format()
	if !strings.Contains(out, "1.5KB") || !strings.Contains(out, "2.50MB") || !strings.Contains(out, "10B") {
		t.Errorf("byte formatting wrong:\n%s", out)
	}
}

func TestHumanBytes(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{5, "5B"}, {999, "999B"}, {1000, "1.0KB"}, {1536, "1.5KB"},
		{1e6, "1.00MB"}, {12345678, "12.35MB"},
	}
	for _, tc := range cases {
		if got := humanBytes(tc.v); got != tc.want {
			t.Errorf("humanBytes(%v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestLossWorkloadVerifiesUnderTheta(t *testing.T) {
	p := smallParams()
	ds := p.Dataset()
	wl := p.workload(ds)
	wl.Theta = 0.5
	sys := mustSys(NewDSI(ds, dsi.Config{Capacity: 64, Segments: 2}, dsi.Conservative, ""))
	m := wl.RunWindow(sys, 0.1) // Verify=true: panics on wrong result
	if m.LatencyBytes <= 0 {
		t.Error("no latency measured under loss")
	}
}

func TestCostModelStructure(t *testing.T) {
	res := CostModel(smallParams())
	if len(res.Tables) != 1 || len(res.Tables[0].Rows) != len(CapacitiesAll) {
		t.Fatalf("costmodel shape wrong: %+v", res.Tables)
	}
}

func TestFigureCSV(t *testing.T) {
	f := Figure{ID: "x", XLabel: "cap", X: []float64{64, 128}}
	f.AddPoint("DSI", 100)
	f.AddPoint("R-tree", 200)
	f.AddPoint("DSI", 300)
	f.AddPoint("R-tree", 400)
	got := f.CSV()
	want := "cap,DSI,R-tree\n64,100,200\n128,300,400\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	r := Result{Figures: []Figure{f}}
	if out := r.CSV(); !strings.Contains(out, "# x") {
		t.Errorf("Result.CSV missing figure header: %q", out)
	}
}

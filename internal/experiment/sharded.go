package experiment

import (
	"fmt"
	"math"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/sched"
	"dsi/internal/spatial"
)

// ShardedThetas is the Zipf skew sweep of the sharded experiment;
// theta = 0 is the uniform workload.
var ShardedThetas = []float64{0, 0.4, 0.8, 1.2}

// ShardedChannels is its channel-count sweep (one index channel plus
// N-1 data shards each).
var ShardedChannels = []int{4, 8}

// ShardedTrainFactor scales the training trace the profiler sees
// relative to the evaluation workload.
const ShardedTrainFactor = 4

// zipfRanks precomputes the cumulative Zipf(theta) weights over n
// ranks: rank i (0-based) has weight (i+1)^-theta, so low HC ranks are
// hot. Sampling is by inverse CDF from a uniform draw, which keeps the
// workload deterministic and replayable.
type zipfRanks struct {
	cum []float64
}

func newZipfRanks(n int, theta float64) *zipfRanks {
	z := &zipfRanks{cum: make([]float64, n)}
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -theta)
		z.cum[i] = total
	}
	return z
}

// rank maps a uniform draw u in [0,1) to a rank.
func (z *zipfRanks) rank(u float64) int {
	target := u * z.cum[len(z.cum)-1]
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// zipfWindows generates window queries whose centers follow a
// Zipf(theta) distribution over the objects in HC rank order: the head
// of the Hilbert order is the hot span. The same window side as the
// uniform workload keeps per-query selectivity comparable across
// thetas.
func (wl *Workload) zipfWindows(theta, ratio float64, seedOffset int64, n int) []windowQuery {
	return wl.zipfShiftWindows(theta, ratio, seedOffset, n, 0)
}

// zipfShiftWindows is zipfWindows with the hot spot moved: Zipf rank r
// maps to the object at HC rank (r+shift) mod N, so shift rotates the
// head of the popularity distribution along the Hilbert order — the
// drifting-workload generator. The random draws are identical to
// zipfWindows (shift only relabels ranks), so shift 0 reproduces it bit
// for bit.
func (wl *Workload) zipfShiftWindows(theta, ratio float64, seedOffset int64, n, shift int) []windowQuery {
	rng := newWorkloadRNG(wl.Seed + seedOffset)
	z := newZipfRanks(wl.DS.N(), theta)
	side := wl.DS.Curve.Side()
	win := uint32(float64(side) * ratio)
	if win == 0 {
		win = 1
	}
	out := make([]windowQuery, n)
	for i := range out {
		o := wl.DS.Objects[(z.rank(rng.Float64())+shift)%wl.DS.N()]
		out[i] = windowQuery{
			w:     spatial.ClampedWindow(o.P.X, o.P.Y, win, side),
			uProb: rng.Float64(),
			seed:  int64(rng.Uint64() >> 1),
		}
	}
	return out
}

// shardProfile runs the training trace through the workload profiler:
// every training window decomposes to the HC ranges a client would
// target, and each range charges the frames that can serve it.
func shardProfile(x *dsi.Index, train []windowQuery) *sched.Profile {
	prof := sched.NewProfile(x)
	curve := x.DS.Curve
	for _, q := range train {
		rect, ok := curve.ClampRect(q.w.MinX, q.w.MinY, q.w.MaxX, q.w.MaxY)
		if !ok {
			continue
		}
		ranges := curve.AppendRangesFunc(nil, rect.Classify)
		prof.AddRanges(ranges, 1)
	}
	return prof
}

// shardedPoint holds one (theta, channels) cell of the sweep.
type shardedPoint struct {
	shard, split Metrics
	wait         float64 // planned expected data wait (slots) of the shard plan
	uniformWait  float64
}

// shardedCell builds the skew-aware plan from a training trace and
// replays the evaluation workload against the sharded layout and the
// uniform split baseline at equal aggregate bandwidth (same channel
// count, same capacity, same total slots per cycle). Standalone entry
// point (tests, benchmarks); Sharded hoists the theta- and
// channel-independent work out of its sweep.
func shardedCell(ds *dataset.Dataset, p Params, theta float64, channels int) shardedPoint {
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: p.ObjectBytes})
	if err != nil {
		panic(err)
	}
	wl := p.workload(ds)
	return shardedPointAt(x, wl, shardProfileFor(x, wl, theta), theta, channels)
}

// shardProfileFor profiles theta's training trace (disjoint seed range
// from the evaluation workload).
func shardProfileFor(x *dsi.Index, wl *Workload, theta float64) *sched.Profile {
	train := wl.zipfWindows(theta, DefaultWinSideRatio, 7000, wl.Queries*ShardedTrainFactor)
	return shardProfile(x, train)
}

// shardedPointAt evaluates one (theta, channels) cell over a shared
// built index and profile.
func shardedPointAt(x *dsi.Index, wl *Workload, prof *sched.Profile, theta float64, channels int) shardedPoint {
	plan, err := sched.Partition(prof, channels-1)
	if err != nil {
		panic(err)
	}
	lay, err := plan.Layout(DefaultSwitchSlots)
	if err != nil {
		panic(err)
	}
	uniform, err := sched.Uniform(x, channels-1)
	if err != nil {
		panic(err)
	}
	uniformLoads := make([]float64, uniform.Shards())
	if t := prof.Total(); t > 0 {
		for s := 0; s < uniform.Shards(); s++ {
			for f := uniform.Bounds[s]; f < uniform.Bounds[s+1]; f++ {
				uniformLoads[s] += prof.Freq[f]
			}
			uniformLoads[s] /= t
		}
	}
	uniform.Load = uniformLoads

	shardSys := &MultiDSISystem{Label: "Shard", Lay: lay, Strategy: dsi.Conservative}
	// The uniform baseline shares the built index: only the placement
	// differs (balanced blocks instead of the plan's cuts).
	splitLay, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: channels, Scheduler: dsi.SchedSplit, SwitchSlots: DefaultSwitchSlots})
	if err != nil {
		panic(err)
	}
	splitSys := &MultiDSISystem{Label: "Split", Lay: splitLay, Strategy: dsi.Conservative}

	eval := wl.zipfWindows(theta, DefaultWinSideRatio, 0, wl.Queries)
	return shardedPoint{
		shard:       wl.runWindows(shardSys, eval),
		split:       wl.runWindows(splitSys, eval),
		wait:        plan.ExpectedWait(lay.DataPackets),
		uniformWait: uniform.ExpectedWait(lay.DataPackets),
	}
}

// Sharded is the skew-aware broadcast scheduler experiment: window
// latency and tuning versus Zipf skew theta, for the sched-planned
// sharded layout against uniform striping (the balanced split
// scheduler) at equal aggregate bandwidth, per channel count. The
// profiler trains on a trace drawn from the same distribution as the
// evaluation workload but disjoint from it.
//
// Expected shape: at theta = 0 the plan degenerates to near-uniform
// shards and the two systems roughly tie; as theta grows the planner
// gives the hot head of the Hilbert order its own short-cycle shards
// and latency drops strictly below the uniform baseline, while the
// baseline barely moves (its per-frame period is skew-blind).
func Sharded(p Params) Result {
	p = p.withDefaults()
	ds := p.Dataset()
	// The built index is cell-independent and the profile depends only
	// on theta, so both are hoisted out of the sweep (the Index and the
	// finished profiles are immutable, hence safe to share across the
	// parallel cells).
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: p.ObjectBytes})
	if err != nil {
		panic(err)
	}
	wl := p.workload(ds)
	profs := make(map[float64]*sched.Profile, len(ShardedThetas))
	for _, th := range ShardedThetas {
		profs[th] = shardProfileFor(x, wl, th)
	}
	var figs []Figure
	type cell struct {
		n     int
		theta float64
	}
	var cells []cell
	for _, n := range ShardedChannels {
		for _, th := range ShardedThetas {
			cells = append(cells, cell{n, th})
		}
	}
	pts := sweep(len(cells), func(i int) shardedPoint {
		return shardedPointAt(x, p.workload(ds), profs[cells[i].theta], cells[i].theta, cells[i].n)
	})
	for ni, n := range ShardedChannels {
		lat := Figure{ID: fmt.Sprintf("shard-lat-%d", n),
			Title:  fmt.Sprintf("Skew-aware sharding (%d channels): window access latency", n),
			XLabel: "Zipf theta", YLabel: "access latency (bytes)"}
		tun := Figure{ID: fmt.Sprintf("shard-tun-%d", n),
			Title:  fmt.Sprintf("Skew-aware sharding (%d channels): window tuning time", n),
			XLabel: "Zipf theta", YLabel: "tuning time (bytes)"}
		for ti, th := range ShardedThetas {
			pt := pts[ni*len(ShardedThetas)+ti]
			lat.X = append(lat.X, th)
			tun.X = append(tun.X, th)
			lat.AddPoint("Shard", pt.shard.LatencyBytes)
			lat.AddPoint("Split", pt.split.LatencyBytes)
			tun.AddPoint("Shard", pt.shard.TuningBytes)
			tun.AddPoint("Split", pt.split.TuningBytes)
		}
		figs = append(figs, lat, tun)
	}
	return Result{Figures: figs}
}

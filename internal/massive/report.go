// Aggregation: the percentile regression surface. A million-client
// replay's deliverable is the latency/tuning/switch distributions per
// layout — p50/p95/p99/p999, not just means — plus the engine's own
// throughput (clients/sec) and state budget (bytes/client).

package massive

import "sort"

// Dist summarizes one metric's distribution across the population.
type Dist struct {
	Mean float64
	P50  float64
	P95  float64
	P99  float64
	P999 float64
}

// Report is one arm's aggregate outcome. Latency and Tuning are in
// bytes (packets scaled by the air's packet capacity, matching the
// experiment harness's reporting units); Switches is a count.
type Report struct {
	Name     string
	Clients  int
	Latency  Dist
	Tuning   Dist
	Switches Dist

	Seconds        float64
	ClientsPerSec  float64
	BytesPerClient float64
}

// percentile returns the p-quantile (0 < p < 1) of sorted vs by the
// nearest-rank method — the same estimator the experiment harness's
// distribution metrics use, so massive percentiles and DistMetrics
// percentiles are comparable.
func percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	rank := int(p*float64(len(vs))+0.999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(vs) {
		rank = len(vs) - 1
	}
	return vs[rank]
}

// distOf summarizes column scaled by unit bytes per packet.
func distOf(col func(i int) float64, n int, scale float64) Dist {
	vs := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		vs[i] = col(i) * scale
		sum += vs[i]
	}
	sort.Float64s(vs)
	return Dist{
		Mean: sum / float64(n),
		P50:  percentile(vs, 0.50),
		P95:  percentile(vs, 0.95),
		P99:  percentile(vs, 0.99),
		P999: percentile(vs, 0.999),
	}
}

// ReportOf aggregates a result into the arm's report. secs is the
// wall-clock of the replay (0 leaves ClientsPerSec unset).
func (r *Result) ReportOf(arm *Arm, capacity int, secs float64) Report {
	n := len(r.Lat)
	rep := Report{
		Name:           arm.Name,
		Clients:        n,
		BytesPerClient: StateBytesPerClient,
	}
	if n == 0 {
		return rep
	}
	bytesPer := float64(capacity)
	rep.Latency = distOf(func(i int) float64 { return float64(r.Lat[i]) }, n, bytesPer)
	rep.Tuning = distOf(func(i int) float64 { return float64(r.Tun[i]) }, n, bytesPer)
	rep.Switches = distOf(func(i int) float64 { return float64(r.Sw[i]) }, n, 1)
	if secs > 0 {
		rep.Seconds = secs
		rep.ClientsPerSec = float64(n) / secs
	}
	return rep
}

// The correctness anchor: on small populations the event-driven flat
// engine must be bit-identical to the step-wise reference replay —
// per-client stats equal across window/kNN mixes, every arm (classic,
// split, sharded, coded), both kNN strategies, and any parallelism.

package massive

import (
	"testing"

	"dsi/internal/dsi"
	"dsi/internal/spatial"

	"math/rand/v2"
)

func testBed(t testing.TB) *Testbed {
	t.Helper()
	bed, err := NewTestbed(BedConfig{N: 600, Order: 7, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return bed
}

// TestEventDrivenBitIdentical pins the flat engine to the step-wise
// reference per client, on every arm, for both strategies, at two
// parallelism levels.
func TestEventDrivenBitIdentical(t *testing.T) {
	bed := testBed(t)
	for _, strat := range []dsi.Strategy{dsi.Conservative, dsi.Aggressive} {
		base := Config{Clients: 48, Seed: 5, Strategy: strat}
		for _, arm := range bed.Arms {
			refCfg := base
			refCfg.Workers = 2
			ref := RunReference(bed, arm, refCfg)
			for _, workers := range []int{1, 4} {
				cfg := base
				cfg.Workers = workers
				got := Run(bed, arm, cfg)
				for id := 0; id < base.Clients; id++ {
					if got.Lat[id] != ref.Lat[id] || got.Tun[id] != ref.Tun[id] || got.Sw[id] != ref.Sw[id] {
						t.Fatalf("%s/%v workers=%d client %d: event-driven (lat %d, tun %d, sw %d) != step-wise (lat %d, tun %d, sw %d)",
							arm.Name, strat, workers, id,
							got.Lat[id], got.Tun[id], got.Sw[id],
							ref.Lat[id], ref.Tun[id], ref.Sw[id])
					}
				}
			}
		}
	}
}

// TestEventDrivenDeterministicAcrossParallelism re-runs the flat
// engine at several worker counts and demands identical columns —
// replay is a function of client ids, never of scheduling.
func TestEventDrivenDeterministicAcrossParallelism(t *testing.T) {
	bed := testBed(t)
	for _, arm := range bed.Arms {
		var want *Result
		for _, workers := range []int{1, 3, 8} {
			got := Run(bed, arm, Config{Clients: 40, Seed: 7, Workers: workers})
			if want == nil {
				want = got
				continue
			}
			for id := range want.Lat {
				if got.Lat[id] != want.Lat[id] || got.Tun[id] != want.Tun[id] || got.Sw[id] != want.Sw[id] {
					t.Fatalf("%s client %d differs between worker counts", arm.Name, id)
				}
			}
		}
	}
}

// TestFlatReceiverResultsMatchReference runs full queries through flat
// and reference sessions directly and compares result IDs as well as
// stats — the flat receivers must not only cost the same but navigate
// to the same answers.
func TestFlatReceiverResultsMatchReference(t *testing.T) {
	bed := testBed(t)
	side := int(bed.DS.Curve.Side())
	rng := rand.New(rand.NewPCG(11, 13))
	for _, arm := range bed.Arms {
		flatSess, err := dsi.Open(bed.X, dsi.WithReceiver(arm.newFlat()))
		if err != nil {
			t.Fatal(err)
		}
		refSess, err := dsi.Open(bed.X, dsi.WithReceiver(arm.newReference()))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 12; trial++ {
			probe := rng.Int64N(int64(arm.CycleSlots()))
			flatSess.Tune(probe, nil)
			refSess.Tune(probe, nil)
			x, y := uint32(rng.IntN(side)), uint32(rng.IntN(side))
			var gotIDs, wantIDs []int
			var gotSt, wantSt interface{ String() string }
			switch trial % 3 {
			case 0:
				w := spatial.ClampedWindow(x, y, uint32(side/10), bed.DS.Curve.Side())
				g, gs := flatSess.Window(w)
				r, rs := refSess.Window(w)
				gotIDs, wantIDs, gotSt, wantSt = g, r, gs, rs
			case 1:
				g, gs := flatSess.KNN(spatial.Point{X: x, Y: y}, 4, dsi.Conservative)
				r, rs := refSess.KNN(spatial.Point{X: x, Y: y}, 4, dsi.Conservative)
				gotIDs, wantIDs, gotSt, wantSt = g, r, gs, rs
			default:
				g, gs := flatSess.KNN(spatial.Point{X: x, Y: y}, 4, dsi.Aggressive)
				r, rs := refSess.KNN(spatial.Point{X: x, Y: y}, 4, dsi.Aggressive)
				gotIDs, wantIDs, gotSt, wantSt = g, r, gs, rs
			}
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("%s trial %d: %d results != %d", arm.Name, trial, len(gotIDs), len(wantIDs))
			}
			for i := range gotIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("%s trial %d: result %d is %d, want %d", arm.Name, trial, i, gotIDs[i], wantIDs[i])
				}
			}
			if gotSt.String() != wantSt.String() {
				t.Fatalf("%s trial %d: flat stats %v != reference %v", arm.Name, trial, gotSt, wantSt)
			}
		}
	}
}

// The massive testbed: one dataset and index served through four
// broadcast organizations at matched per-channel bandwidth — the
// classic single channel, the index/data split, the sharded schedule,
// and the erasure-coded single channel (light interleaved-XOR code,
// whose parity tail lengthens the physical cycle the same way it does
// on a real coded station). Every arm exposes two ways to mint a
// receiver over the same air: the flat batched receiver the
// event-driven engine runs on, and the reference receiver of the
// step-wise replay path (SimReceiver, or the byte-level
// station.FECReceiver for the coded arm) that the equivalence suite
// pins it against.

package massive

import (
	"fmt"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/sched"
	"dsi/internal/station"
	"dsi/internal/wire"
)

// defaultSwitchSlots is the channel-switch cost of the multi-channel
// arms, matching the experiment harness default.
const defaultSwitchSlots = 2

// BedConfig sizes the testbed.
type BedConfig struct {
	N           int   // objects (default 10000)
	Order       int   // Hilbert curve order (default 8)
	Seed        int64 // dataset seed (default 1)
	Channels    int   // channels of the split and sharded arms (default 4)
	ObjectBytes int   // object payload size (default 1024)
}

func (c BedConfig) withDefaults() BedConfig {
	if c.N == 0 {
		c.N = 10000
	}
	if c.Order == 0 {
		c.Order = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Channels == 0 {
		c.Channels = 4
	}
	if c.ObjectBytes == 0 {
		c.ObjectBytes = 1024
	}
	return c
}

// Arm is one broadcast organization of the testbed.
type Arm struct {
	Name string
	Lay  *dsi.Layout

	// Coded-arm state: the zero cfg marks a plain arm.
	cfg wire.FECConfig
	geo station.CodedChannel // physical slot maps (coded arms)
	src station.PacketSource // coded transmitter for the reference path

	cycle int // slots probe positions scale against (physical on coded arms)
}

// CycleSlots returns the slots of one full broadcast cycle — what
// probe positions scale against (physical slots on the coded arm).
func (a *Arm) CycleSlots() int { return a.cycle }

func (a *Arm) coded() bool { return a.cfg.Enabled() }

// newFlat mints the event-driven engine's receiver over the arm.
func (a *Arm) newFlat() dsi.Receiver {
	if a.coded() {
		return newFlatFECReceiver(a.Lay, a.geo, 0)
	}
	return newFlatReceiver(a.Lay, 0)
}

// newReference mints the step-wise reference receiver over the arm:
// the tuner-stepping SimReceiver, or the byte-level recovering
// receiver on the coded arm.
func (a *Arm) newReference() dsi.Receiver {
	if a.coded() {
		rx, err := station.NewFECReceiver(a.Lay, 1, a.src, a.cfg, 0, nil)
		if err != nil {
			panic(fmt.Sprintf("massive: reference FEC receiver: %v", err))
		}
		return rx
	}
	return dsi.NewSimReceiver(a.Lay, 0, nil)
}

// Testbed is the shared immutable air of one massive run: the index
// and its arms. Everything here is read-only after construction, so
// any number of workers replay over it concurrently.
type Testbed struct {
	DS   *dataset.Dataset
	X    *dsi.Index
	Arms []*Arm
}

// lightCode is the low-overhead interleaved-XOR configuration of the
// coded arm: one parity packet per group of up to four members (the
// fec experiment's light arm).
func lightCode(x *dsi.Index) wire.FECConfig {
	groups := func(k int) int { return (k + 3) / 4 }
	return wire.FECConfig{
		Table:  wire.FECCode{Groups: groups(x.TablePackets), Parity: 1},
		Object: wire.FECCode{Groups: groups(x.ObjPackets), Parity: 1},
	}
}

// NewTestbed builds the dataset, the index, and the four arms.
func NewTestbed(cfg BedConfig) (*Testbed, error) {
	cfg = cfg.withDefaults()
	ds := dataset.Uniform(cfg.N, uint(cfg.Order), cfg.Seed)
	x, err := dsi.Build(ds, dsi.Config{Capacity: 64, ObjectBytes: cfg.ObjectBytes})
	if err != nil {
		return nil, err
	}

	classic := &Arm{Name: "classic", Lay: x.SingleLayout()}
	classic.cycle = classic.Lay.ProbeCycle()

	splitLay, err := dsi.NewLayout(x, dsi.MultiConfig{
		Channels: cfg.Channels, Scheduler: dsi.SchedSplit, SwitchSlots: defaultSwitchSlots,
	})
	if err != nil {
		return nil, fmt.Errorf("massive: split layout: %w", err)
	}
	split := &Arm{Name: "split", Lay: splitLay, cycle: splitLay.ProbeCycle()}

	plan, err := sched.Uniform(x, cfg.Channels-1)
	if err != nil {
		return nil, fmt.Errorf("massive: shard plan: %w", err)
	}
	shardLay, err := plan.Layout(defaultSwitchSlots)
	if err != nil {
		return nil, fmt.Errorf("massive: shard layout: %w", err)
	}
	shard := &Arm{Name: "shard", Lay: shardLay, cycle: shardLay.ProbeCycle()}

	code := lightCode(x)
	tx, err := station.NewTransmitterFEC(x, code)
	if err != nil {
		return nil, fmt.Errorf("massive: coded transmitter: %w", err)
	}
	geos, err := station.CodedGeometry(x.SingleLayout(), code)
	if err != nil {
		return nil, fmt.Errorf("massive: coded geometry: %w", err)
	}
	fec := &Arm{Name: "fec", Lay: x.SingleLayout(), cfg: code, geo: geos[0], src: tx}
	fec.cycle = geos[0].PhysLen

	return &Testbed{DS: ds, X: x, Arms: []*Arm{classic, split, shard, fec}}, nil
}

package massive

import "testing"

// BenchmarkReplay measures the event-driven engine per arm: one
// iteration replays the whole population, and the custom metrics carry
// the percentile surface into the bench artifact (clients/op plus
// pNN-prefixed units cmd/benchjson promotes).
func BenchmarkReplay(b *testing.B) {
	bed, err := NewTestbed(BedConfig{N: 2000, Order: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	const clients = 5000
	for _, arm := range bed.Arms {
		b.Run(arm.Name, func(b *testing.B) {
			var rep Report
			for i := 0; i < b.N; i++ {
				res := Run(bed, arm, Config{Clients: clients})
				rep = res.ReportOf(arm, bed.X.Cfg.Capacity, 0)
			}
			b.ReportMetric(float64(clients)*float64(b.N)/b.Elapsed().Seconds(), "clients/s")
			b.ReportMetric(rep.Latency.P95, "p95_lat_B")
			b.ReportMetric(rep.Latency.P99, "p99_lat_B")
			b.ReportMetric(rep.Tuning.P95, "p95_tun_B")
			b.ReportMetric(StateBytesPerClient, "state_B/client")
		})
	}
}

// BenchmarkReplayReference is the step-wise baseline at the same
// population, for the event-driven speedup ratio.
func BenchmarkReplayReference(b *testing.B) {
	bed, err := NewTestbed(BedConfig{N: 2000, Order: 8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	const clients = 5000
	for _, arm := range bed.Arms {
		b.Run(arm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RunReference(bed, arm, Config{Clients: clients})
			}
			b.ReportMetric(float64(clients)*float64(b.N)/b.Elapsed().Seconds(), "clients/s")
		})
	}
}

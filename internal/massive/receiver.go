// Flat receivers: the event-driven engine's radios. The reference
// engine charges every slot through a broadcast.Tuner — per packet it
// looks up the program slot, draws from the loss model, and bumps
// per-channel counters. At a million clients that bookkeeping is the
// simulation; none of it affects an error-free replay's outcome. The
// flat receiver implements the same dsi.Receiver contract with O(1)
// batched arithmetic per operation over the shared immutable layout:
// a table read is two integer additions, a doze is one modular
// subtraction, and no per-client air, program, or tuner state exists
// at all. Every client in the engine shares one immutable air
// snapshot (the Layout placement arrays and the index's precomputed
// tables); the per-receiver state is five integers and one cached
// table value.
//
// The cost arithmetic replicates broadcast.Tuner exactly — same
// clock, same tuning accounting, same switch charging, same modular
// position math — which the equivalence suite pins per client against
// the step-wise SimReceiver path. Loss is out of scope by design:
// these receivers model error-free channels only, and refuse loss
// models loudly rather than silently ignoring them.

package massive

import (
	"errors"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
	"dsi/internal/station"
)

// flatReceiver is the event-driven engine's radio over a plain
// (uncoded) layout: classic single-channel, index/data split, or
// sharded. It implements dsi.Receiver with batched clock arithmetic
// and zero per-packet work.
type flatReceiver struct {
	lay         *dsi.Layout
	x           *dsi.Index
	chanLen     []int64 // per-channel cycle lengths
	switchSlots int64
	capacity    int

	ch       int
	now      int64
	start    int64
	read     int64
	switches int64

	// tab is the receiver's single table buffer: Table copies the
	// index's precomputed table value here and returns its address,
	// honoring the "valid until the next Table call" contract without
	// exposing the index's private table storage.
	tab dsi.Table
}

// newFlatReceiver returns a flat receiver tuned to the layout's start
// channel at slot probe.
func newFlatReceiver(lay *dsi.Layout, probe int64) *flatReceiver {
	r := &flatReceiver{
		lay:         lay,
		x:           lay.X,
		chanLen:     make([]int64, lay.Channels()),
		switchSlots: int64(lay.Air.SwitchSlots),
		capacity:    lay.X.Cfg.Capacity,
	}
	for ch := range r.chanLen {
		r.chanLen[ch] = int64(lay.ChanLen(ch))
	}
	r.Reset(probe, nil)
	return r
}

func (r *flatReceiver) Layout() *dsi.Layout { return r.lay }
func (r *flatReceiver) Now() int64          { return r.now }
func (r *flatReceiver) Channel() int        { return r.ch }
func (r *flatReceiver) PhaseOf(int) int64   { return 0 }

func (r *flatReceiver) Pos() int { return int(r.now % r.chanLen[r.ch]) }

func (r *flatReceiver) Stats() broadcast.Stats {
	return broadcast.Stats{
		ProbeSlot:      r.start,
		LatencyPackets: r.now - r.start,
		TuningPackets:  r.read,
		Switches:       r.switches,
		Capacity:       r.capacity,
	}
}

func (r *flatReceiver) Tune(ch int) {
	if ch == r.ch {
		return
	}
	r.ch = ch
	r.now += r.switchSlots
	r.switches++
}

func (r *flatReceiver) DozeUntilPos(pos int) {
	l := r.chanLen[r.ch]
	delta := (int64(pos) - r.now) % l
	if delta < 0 {
		delta += l
	}
	r.now += delta
}

// Next receives the probe packet. The returned slot is zero — the
// client discards it (only the position after the read matters) — and
// the cost is one packet, exactly like a tuner read.
func (r *flatReceiver) Next() (broadcast.Slot, bool) {
	r.now++
	r.read++
	return broadcast.Slot{}, true
}

func (r *flatReceiver) Table(pos int) (*dsi.Table, bool) {
	n := int64(r.x.TablePackets)
	r.now += n
	r.read += n
	r.tab = r.x.TableAt(pos)
	return &r.tab, true
}

func (r *flatReceiver) Header(pos, o int) (uint64, bool) {
	r.now++
	r.read++
	first, _ := r.x.FrameObjects(r.x.PosToFrame(pos))
	return r.x.DS.Objects[first+o].HC, true
}

func (r *flatReceiver) Object(pos, o, skip int) bool {
	n := int64(r.x.ObjPackets - skip)
	r.now += n
	r.read += n
	return true
}

func (r *flatReceiver) Poll() (*dsi.Layout, bool) { return nil, false }

func (r *flatReceiver) Follow(*dsi.Layout) {
	panic("massive: flat receivers model static schedules; Follow is unsupported")
}

func (r *flatReceiver) Reset(probeSlot int64, loss *broadcast.LossModel) {
	if loss != nil {
		panic("massive: flat receivers are error-free; loss models are unsupported")
	}
	r.now = probeSlot
	r.start = probeSlot
	r.read = 0
	r.switches = 0
	r.ch = r.lay.StartCh
}

func (r *flatReceiver) SetChannelLoss(int, *broadcast.LossModel) error {
	return errors.New("massive: flat receivers are error-free; per-channel loss is unsupported")
}

// flatFECReceiver is the flat receiver over a coded single-channel
// broadcast: the clock runs in the physical (parity-bearing) slot
// domain while Pos and DozeUntilPos speak logical cycle positions,
// exactly like station.FECReceiver's facade. On an error-free channel
// a coded read never touches the parity tail — every unit read costs
// its content packets and parity is dozed past — so the batched cost
// model is the plain one with the two slot maps spliced in.
type flatFECReceiver struct {
	lay      *dsi.Layout
	x        *dsi.Index
	geo      station.CodedChannel
	physLen  int64
	capacity int

	now   int64
	start int64
	read  int64

	tab dsi.Table
}

// newFlatFECReceiver returns a flat receiver over the coded geometry
// of a single-channel layout, tuned at physical slot probe.
func newFlatFECReceiver(lay *dsi.Layout, geo station.CodedChannel, probe int64) *flatFECReceiver {
	if lay.Channels() != 1 {
		panic("massive: the coded flat receiver is single-channel")
	}
	r := &flatFECReceiver{
		lay:      lay,
		x:        lay.X,
		geo:      geo,
		physLen:  int64(geo.PhysLen),
		capacity: lay.X.Cfg.Capacity,
	}
	r.Reset(probe, nil)
	return r
}

func (r *flatFECReceiver) Layout() *dsi.Layout { return r.lay }
func (r *flatFECReceiver) Now() int64          { return r.now }
func (r *flatFECReceiver) Channel() int        { return 0 }
func (r *flatFECReceiver) PhaseOf(int) int64   { return 0 }

// Pos reports the logical cycle position; a radio sitting on a parity
// slot reports the next content position, as the coded facade does.
func (r *flatFECReceiver) Pos() int {
	return int(r.geo.LogOf[r.now%r.physLen])
}

func (r *flatFECReceiver) Stats() broadcast.Stats {
	return broadcast.Stats{
		ProbeSlot:      r.start,
		LatencyPackets: r.now - r.start,
		TuningPackets:  r.read,
		Capacity:       r.capacity,
	}
}

func (r *flatFECReceiver) Tune(ch int) {
	if ch != 0 {
		panic("massive: coded flat receiver is single-channel")
	}
}

// DozeUntilPos sleeps to the next physical occurrence of the logical
// position, dozing past any parity in between.
func (r *flatFECReceiver) DozeUntilPos(pos int) {
	target := int64(r.geo.Log2Phys[pos])
	delta := (target - r.now) % r.physLen
	if delta < 0 {
		delta += r.physLen
	}
	r.now += delta
}

func (r *flatFECReceiver) Next() (broadcast.Slot, bool) {
	r.now++
	r.read++
	return broadcast.Slot{}, true
}

func (r *flatFECReceiver) Table(pos int) (*dsi.Table, bool) {
	n := int64(r.x.TablePackets)
	r.now += n
	r.read += n
	r.tab = r.x.TableAt(pos)
	return &r.tab, true
}

func (r *flatFECReceiver) Header(pos, o int) (uint64, bool) {
	r.now++
	r.read++
	first, _ := r.x.FrameObjects(r.x.PosToFrame(pos))
	return r.x.DS.Objects[first+o].HC, true
}

func (r *flatFECReceiver) Object(pos, o, skip int) bool {
	n := int64(r.x.ObjPackets - skip)
	r.now += n
	r.read += n
	return true
}

func (r *flatFECReceiver) Poll() (*dsi.Layout, bool) { return nil, false }

func (r *flatFECReceiver) Follow(*dsi.Layout) {
	panic("massive: flat receivers model static schedules; Follow is unsupported")
}

func (r *flatFECReceiver) Reset(probeSlot int64, loss *broadcast.LossModel) {
	if loss != nil {
		panic("massive: flat receivers are error-free; loss models are unsupported")
	}
	r.now = probeSlot
	r.start = probeSlot
	r.read = 0
}

func (r *flatFECReceiver) SetChannelLoss(int, *broadcast.LossModel) error {
	return errors.New("massive: flat receivers are error-free; per-channel loss is unsupported")
}

// Package massive is the event-driven replay engine behind cmd/dsiload:
// population-scale client replay against the broadcast organizations.
// A population of simulated clients — each a (query, tune-in slot)
// pair derived deterministically from its client id — replays against
// one shared immutable air snapshot (the testbed arm). Workers own
// contiguous client-id ranges; within a range, clients are ordered on
// the slot clock by a calendar/bucket queue over their tune-in slots
// and each activation runs its query to completion through a flat
// receiver that skips between tune-in slots with batched arithmetic
// (broadcast clients never interact, so slot-clock order is a locality
// choice, not a correctness one — which is exactly why replay is
// deterministic at any parallelism: every client's outcome is a
// function of its id alone).
//
// Durable per-client state is three packed result columns plus the
// queue link — 14 bytes per client (StateBytesPerClient); the
// navigation state (knowledge base, scratch buffers) lives in one
// session per worker, reset in O(facts learned) between clients. The
// step-wise reference engine (RunReference) replays the identical
// population through the tuner-stepping receivers; the equivalence
// suite (equivalence_test.go) pins the two bit-identically per client.
package massive

import (
	"fmt"
	"runtime"
	"sync"

	"dsi/internal/broadcast"
	"dsi/internal/dsi"
	"dsi/internal/obs"
	"dsi/internal/spatial"

	"math/rand/v2"
)

// Config shapes the replayed population.
type Config struct {
	Clients      int          // concurrent clients (required)
	KNNFrac      float64      // fraction running kNN queries (default 0.5)
	K            int          // kNN k (default 5)
	WinSideRatio float64      // window side / grid side (default 0.1)
	Seed         int64        // population seed (default 1)
	Workers      int          // worker count (default GOMAXPROCS)
	Strategy     dsi.Strategy // kNN navigation strategy (default Conservative)

	// Obs, when set, counts every client's reception events (shared
	// atomic counters, so the replayed outcomes stay bit-identical at
	// any worker count). Trace, when set, emits the slot timeline of
	// its deterministic client sample as JSONL. Both nil — the default
	// — replay through the bare receivers.
	Obs   *obs.Registry
	Trace *obs.Tracer
}

// ClientsReplayedName is the per-arm progress counter family of a
// massive run.
const ClientsReplayedName = "massive_clients_replayed_total"

// replayedFlushEvery bounds how stale the progress counter can go: a
// worker folds its local count into the shared counter at this grain,
// so a mid-run /metrics scrape sees progress without the hot loop
// taking an atomic per client.
const replayedFlushEvery = 1024

// RegisterMetrics pre-registers every metric family a run against the
// testbed can touch, so a scrape early in a run already serves the full
// zeroed vocabulary instead of a partial one. Nil reg is a no-op.
func RegisterMetrics(reg *obs.Registry, bed *Testbed) {
	if reg == nil {
		return
	}
	for _, arm := range bed.Arms {
		obs.NewReceiverMetrics(reg, arm.Lay.Channels())
		reg.Counter(ClientsReplayedName, "clients replayed, by arm",
			obs.Label{Key: "arm", Value: arm.Name})
	}
}

func (c Config) withDefaults() Config {
	if c.KNNFrac == 0 {
		c.KNNFrac = 0.5
	}
	if c.K == 0 {
		c.K = 5
	}
	if c.WinSideRatio == 0 {
		c.WinSideRatio = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// StateBytesPerClient is the durable per-client storage of a run: the
// three packed result columns (latency, tuning, switches) plus the
// calendar-queue link. Everything else a client "is" — its query and
// tune-in slot — is recomputed from its id, and the navigation state
// is amortized across a worker's whole id range.
const StateBytesPerClient = 4 + 4 + 2 + 4

// Result holds the per-client outcomes of one arm's replay as packed
// struct-of-arrays columns, indexed by client id.
type Result struct {
	Lat []uint32 // access latency, packets
	Tun []uint32 // tuning time, packets
	Sw  []uint16 // channel switches
}

func newResult(n int) *Result {
	return &Result{Lat: make([]uint32, n), Tun: make([]uint32, n), Sw: make([]uint16, n)}
}

// clientQuery is the deterministic population member derived from a
// client id: every draw comes from the client's own PCG stream, so
// outcomes are independent of worker count and processing order.
type clientQuery struct {
	knn   bool
	x, y  uint32
	probe int64 // tune-in slot, scaled to the arm's cycle
}

// queryOf derives client id's query against an arm. The probe slot
// scales a uniform fraction by the arm's cycle length (physical slots
// on the coded arm), mirroring the experiment workload convention.
func queryOf(cfg Config, side uint32, cycle int, id int) clientQuery {
	rng := rand.New(rand.NewPCG(uint64(cfg.Seed), 0x9e3779b97f4a7c15*(uint64(id)+1)))
	q := clientQuery{}
	q.knn = rng.Float64() < cfg.KNNFrac
	q.x = uint32(rng.IntN(int(side)))
	q.y = uint32(rng.IntN(int(side)))
	q.probe = int64(rng.Float64() * float64(cycle))
	return q
}

// runPopulation replays every client of cfg against the arm, one
// session per worker over contiguous client-id ranges. The evented
// engine activates a worker's clients in slot-clock order through the
// calendar/bucket queue over flat receivers; the reference engine
// scans ids in order over the step-wise receivers.
func runPopulation(bed *Testbed, arm *Arm, cfg Config, evented bool) *Result {
	cfg = cfg.withDefaults()
	if cfg.Clients <= 0 {
		panic("massive: Config.Clients must be positive")
	}
	res := newResult(cfg.Clients)
	side := bed.DS.Curve.Side()
	cycle := arm.CycleSlots()
	winSide := uint32(cfg.WinSideRatio * float64(side))

	workers := cfg.Workers
	if workers > cfg.Clients {
		workers = cfg.Clients
	}
	chunk := (cfg.Clients + workers - 1) / workers

	var wg sync.WaitGroup
	panics := make(chan any, workers)
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > cfg.Clients {
			hi = cfg.Clients
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
				}
			}()
			var rx dsi.Receiver
			if evented {
				rx = arm.newFlat()
			} else {
				rx = arm.newReference()
			}
			// Instrumentation is strictly opt-in: with neither a registry
			// nor a tracer the session runs on the bare receiver — the
			// path the disabled-overhead regression pins.
			var irx *obs.InstrumentedReceiver
			if cfg.Obs != nil || cfg.Trace != nil {
				irx = obs.InstrumentReceiver(rx, obs.NewReceiverMetrics(cfg.Obs, arm.Lay.Channels()))
				rx = irx
			}
			var replayed *obs.Counter
			if cfg.Obs != nil {
				replayed = cfg.Obs.Counter(ClientsReplayedName, "clients replayed, by arm",
					obs.Label{Key: "arm", Value: arm.Name})
			}
			sess, err := dsi.Open(bed.X, dsi.WithReceiver(rx))
			if err != nil {
				panic(fmt.Sprintf("massive: opening session: %v", err))
			}

			// buf recycles the result-ID storage across the worker's
			// whole range: massive replay measures cost distributions,
			// not result sets (the equivalence suite checks results on
			// small populations).
			var buf []int
			var pending int64
			run := func(id int) {
				q := queryOf(cfg, side, cycle, id)
				var rec *obs.TraceRecord
				if irx != nil && cfg.Trace.Sampled(int64(id)) {
					rec = &obs.TraceRecord{Client: int64(id), Arm: arm.Name, Probe: q.probe}
					if q.knn {
						rec.Kind = "knn"
					} else {
						rec.Kind = "window"
					}
					irx.Begin(rec)
				}
				sess.Tune(q.probe, nil)
				var st broadcast.Stats
				if q.knn {
					buf, st = sess.KNNAppend(buf[:0], spatial.Point{X: q.x, Y: q.y}, cfg.K, cfg.Strategy)
				} else {
					w := spatial.ClampedWindow(q.x, q.y, winSide, side)
					buf, st = sess.WindowAppend(buf[:0], w)
				}
				res.Lat[id] = uint32(st.LatencyPackets)
				res.Tun[id] = uint32(st.TuningPackets)
				res.Sw[id] = uint16(st.Switches)
				if rec != nil {
					irx.End()
					rec.Latency = st.LatencyPackets
					rec.Tuning = st.TuningPackets
					rec.Switches = int64(st.Switches)
					cfg.Trace.Emit(rec)
				}
				if replayed != nil {
					if pending++; pending >= replayedFlushEvery {
						replayed.Add(pending)
						pending = 0
					}
				}
			}
			defer func() {
				if pending > 0 {
					replayed.Add(pending)
				}
			}()

			if !evented {
				// Step-wise reference scan: id order.
				for id := lo; id < hi; id++ {
					run(id)
				}
				return
			}
			// Calendar/bucket queue keyed on the slot clock: clients
			// activate in tune-in-slot order within the worker's range.
			n := hi - lo
			nb := cycle
			if nb > 1<<12 {
				nb = 1 << 12
			}
			head := make([]int32, nb)
			for b := range head {
				head[b] = -1
			}
			next := make([]int32, n)
			for id := hi - 1; id >= lo; id-- {
				probe := queryOf(cfg, side, cycle, id).probe
				b := int(probe % int64(cycle) * int64(nb) / int64(cycle))
				next[id-lo] = head[b]
				head[b] = int32(id - lo)
			}
			for b := 0; b < nb; b++ {
				for i := head[b]; i >= 0; i = next[i] {
					run(lo + int(i))
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	close(panics)
	for p := range panics {
		panic(p)
	}
	return res
}

// Run replays cfg's population against the arm on the event-driven
// flat engine.
func Run(bed *Testbed, arm *Arm, cfg Config) *Result {
	return runPopulation(bed, arm, cfg, true)
}

// RunReference replays the identical population through the step-wise
// reference receivers (broadcast.Tuner stepping under SimReceiver, or
// the byte-level coded receiver) — the correctness anchor the
// event-driven engine is pinned against.
func RunReference(bed *Testbed, arm *Arm, cfg Config) *Result {
	return runPopulation(bed, arm, cfg, false)
}

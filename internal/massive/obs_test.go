package massive

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"

	"dsi/internal/obs"
)

// TestObsAndTraceBitIdentical pins the engine's observability bar: a
// replay with a live registry and an armed tracer produces the exact
// per-client columns of a bare run, the progress counter lands on the
// population size, and every emitted trace record agrees with the
// result columns for its client.
func TestObsAndTraceBitIdentical(t *testing.T) {
	bed := testBed(t)
	base := Config{Clients: 64, Seed: 9, Workers: 3}
	for _, arm := range bed.Arms {
		bare := Run(bed, arm, base)

		reg := obs.NewRegistry()
		RegisterMetrics(reg, bed)
		var sb strings.Builder
		tr := obs.NewTracer(&sb, 4, 17)
		cfg := base
		cfg.Obs = reg
		cfg.Trace = tr
		got := Run(bed, arm, cfg)

		for id := 0; id < base.Clients; id++ {
			if got.Lat[id] != bare.Lat[id] || got.Tun[id] != bare.Tun[id] || got.Sw[id] != bare.Sw[id] {
				t.Fatalf("%s client %d: instrumented (lat %d, tun %d, sw %d) != bare (lat %d, tun %d, sw %d)",
					arm.Name, id, got.Lat[id], got.Tun[id], got.Sw[id],
					bare.Lat[id], bare.Tun[id], bare.Sw[id])
			}
		}

		snap := reg.Snapshot()
		key := ClientsReplayedName + `{arm="` + arm.Name + `"}`
		if snap[key] != float64(base.Clients) {
			t.Fatalf("%s: %s = %v, want %d", arm.Name, key, snap[key], base.Clients)
		}
		if reg.Sum("dsi_receiver_tuneins_total") == 0 {
			t.Fatalf("%s: replay counted no tune-ins", arm.Name)
		}

		if tr.Emitted() == 0 {
			t.Fatalf("%s: tracer at 1/4 sampled nobody out of %d clients", arm.Name, base.Clients)
		}
		sc := bufio.NewScanner(strings.NewReader(sb.String()))
		lines := 0
		for sc.Scan() {
			var rec obs.TraceRecord
			if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
				t.Fatalf("%s: bad trace line %q: %v", arm.Name, sc.Text(), err)
			}
			lines++
			if rec.Arm != arm.Name {
				t.Fatalf("%s: trace record names arm %q", arm.Name, rec.Arm)
			}
			id := int(rec.Client)
			if id < 0 || id >= base.Clients {
				t.Fatalf("%s: trace record for out-of-range client %d", arm.Name, id)
			}
			if rec.Latency != int64(bare.Lat[id]) || rec.Tuning != int64(bare.Tun[id]) ||
				rec.Switches != int64(bare.Sw[id]) {
				t.Fatalf("%s client %d: trace (lat %d, tun %d, sw %d) disagrees with result (lat %d, tun %d, sw %d)",
					arm.Name, id, rec.Latency, rec.Tuning, rec.Switches,
					bare.Lat[id], bare.Tun[id], bare.Sw[id])
			}
			if len(rec.Events) == 0 {
				t.Fatalf("%s client %d: trace record has no slot timeline", arm.Name, id)
			}
		}
		if int64(lines) != tr.Emitted() {
			t.Fatalf("%s: %d JSONL lines vs %d emitted", arm.Name, lines, tr.Emitted())
		}
	}
}

package massive

import (
	"testing"

	"math/rand/v2"
)

// TestFlatSkipMatchesBruteForceStepping checks the skip arithmetic at
// the bottom of the event-driven engine against brute force: after
// DozeUntilPos the flat receiver's clock must sit on the first slot at
// or after the probe whose broadcast position is the target — exactly
// where stepping one slot at a time would land.
func TestFlatSkipMatchesBruteForceStepping(t *testing.T) {
	bed := testBed(t)
	rng := rand.New(rand.NewPCG(21, 23))
	for _, arm := range bed.Arms {
		cycle := int64(arm.CycleSlots())
		for trial := 0; trial < 200; trial++ {
			probe := rng.Int64N(3 * cycle) // clocks beyond one cycle must wrap too
			var posAt func(t int64) int
			var landed func(t int64, target int) bool
			var rx interface {
				DozeUntilPos(int)
				Now() int64
				Pos() int
			}
			if arm.coded() {
				r := newFlatFECReceiver(arm.Lay, arm.geo, probe)
				phys := int64(arm.geo.PhysLen)
				posAt = func(t int64) int { return int(arm.geo.LogOf[t%phys]) }
				// Parity slots map forward to the next content position,
				// so several physical slots can report the target; the
				// doze lands on the content slot itself — the last slot
				// of the contiguous run mapping to the position.
				landed = func(t int64, target int) bool {
					return posAt(t) == target && posAt(t+1) != target
				}
				rx = r
			} else {
				r := newFlatReceiver(arm.Lay, probe)
				l := int64(arm.Lay.ChanLen(r.Channel()))
				posAt = func(t int64) int { return int(t % l) }
				landed = func(t int64, target int) bool { return posAt(t) == target }
				rx = r
			}
			// Target: the position of a random future slot, so every
			// logical position (tables, headers, parity-adjacent data)
			// gets exercised.
			target := posAt(probe + rng.Int64N(cycle))
			rx.DozeUntilPos(target)

			want := probe
			for !landed(want, target) {
				want++
			}
			if rx.Now() != want || rx.Pos() != target {
				t.Fatalf("%s probe %d target %d: skipped to slot %d (pos %d), stepping lands at %d",
					arm.Name, probe, target, rx.Now(), rx.Pos(), want)
			}
		}
	}
}

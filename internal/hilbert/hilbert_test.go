package hilbert

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperFigure2Orientation(t *testing.T) {
	// The paper's Figure 2 (order-3 curve) states that cell (1,1) has HC
	// value 2. The figure also labels a few other cells we can read off:
	// the curve starts at (0,0)=0 and ends at (7,0)=63.
	c := New(3)
	cases := []struct {
		x, y uint32
		want uint64
	}{
		{0, 0, 0},
		{1, 1, 2},
		{1, 0, 3},
		{7, 0, 63},
	}
	for _, tc := range cases {
		if got := c.Encode(tc.x, tc.y); got != tc.want {
			t.Errorf("Encode(%d,%d) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestEncodeDecodeRoundTripSmall(t *testing.T) {
	for order := uint(1); order <= 6; order++ {
		c := New(order)
		seen := make(map[uint64]bool, c.Size())
		for x := uint32(0); x < c.Side(); x++ {
			for y := uint32(0); y < c.Side(); y++ {
				d := c.Encode(x, y)
				if d >= c.Size() {
					t.Fatalf("order %d: Encode(%d,%d)=%d out of range", order, x, y, d)
				}
				if seen[d] {
					t.Fatalf("order %d: duplicate HC value %d", order, d)
				}
				seen[d] = true
				gx, gy := c.Decode(d)
				if gx != x || gy != y {
					t.Fatalf("order %d: Decode(Encode(%d,%d)) = (%d,%d)", order, x, y, gx, gy)
				}
			}
		}
		if uint64(len(seen)) != c.Size() {
			t.Fatalf("order %d: curve visited %d cells, want %d", order, len(seen), c.Size())
		}
	}
}

func TestCurveContinuity(t *testing.T) {
	// Consecutive HC values must be 4-adjacent cells: the defining
	// property of the Hilbert curve.
	for order := uint(1); order <= 5; order++ {
		c := New(order)
		px, py := c.Decode(0)
		for d := uint64(1); d < c.Size(); d++ {
			x, y := c.Decode(d)
			dx := int64(x) - int64(px)
			dy := int64(y) - int64(py)
			if dx*dx+dy*dy != 1 {
				t.Fatalf("order %d: step %d->%d jumps from (%d,%d) to (%d,%d)",
					order, d-1, d, px, py, x, y)
			}
			px, py = x, y
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	c := New(16)
	f := func(x, y uint32) bool {
		x %= c.Side()
		y %= c.Side()
		gx, gy := c.Decode(c.Encode(x, y))
		return gx == x && gy == y
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeEncodeQuick(t *testing.T) {
	c := New(16)
	f := func(d uint64) bool {
		d %= c.Size()
		x, y := c.Decode(d)
		return c.Encode(x, y) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadOrder(t *testing.T) {
	for _, order := range []uint{0, MaxOrder + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", order)
				}
			}()
			New(order)
		}()
	}
}

func TestEncodePanicsOutsideGrid(t *testing.T) {
	c := New(3)
	defer func() {
		if recover() == nil {
			t.Error("Encode outside grid did not panic")
		}
	}()
	c.Encode(8, 0)
}

func TestDecodePanicsOutsideCurve(t *testing.T) {
	c := New(3)
	defer func() {
		if recover() == nil {
			t.Error("Decode outside curve did not panic")
		}
	}()
	c.Decode(64)
}

// bruteRect returns the sorted HC values of cells in the inclusive rect.
func bruteRect(c Curve, x0, y0, x1, y1 uint32) map[uint64]bool {
	in := make(map[uint64]bool)
	for x := x0; x <= x1 && x < c.Side(); x++ {
		for y := y0; y <= y1 && y < c.Side(); y++ {
			in[c.Encode(x, y)] = true
		}
	}
	return in
}

func rangesCover(rs []Range) map[uint64]bool {
	out := make(map[uint64]bool)
	for _, r := range rs {
		for v := r.Lo; v < r.Hi; v++ {
			out[v] = true
		}
	}
	return out
}

func sameSet(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for v := range a {
		if !b[v] {
			return false
		}
	}
	return true
}

func TestRangesExactSmall(t *testing.T) {
	c := New(4)
	cases := [][4]uint32{
		{0, 0, 15, 15}, // whole grid
		{0, 0, 0, 0},   // single cell
		{3, 5, 9, 12},
		{1, 1, 2, 14},
		{0, 8, 15, 8}, // single row
		{7, 0, 7, 15}, // single column
		{14, 14, 15, 15},
	}
	for _, tc := range cases {
		rs := c.Ranges(tc[0], tc[1], tc[2], tc[3])
		want := bruteRect(c, tc[0], tc[1], tc[2], tc[3])
		if !sameSet(rangesCover(rs), want) {
			t.Errorf("Ranges(%v) covers wrong cell set", tc)
		}
		// Ranges must be sorted, disjoint and non-adjacent (maximal).
		for i := 1; i < len(rs); i++ {
			if rs[i].Lo <= rs[i-1].Hi {
				t.Errorf("Ranges(%v): ranges %v and %v not maximal/disjoint", tc, rs[i-1], rs[i])
			}
		}
	}
}

func TestRangesQuick(t *testing.T) {
	c := New(5)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		x0 := uint32(rng.Intn(int(c.Side())))
		y0 := uint32(rng.Intn(int(c.Side())))
		x1 := x0 + uint32(rng.Intn(int(c.Side()-x0)))
		y1 := y0 + uint32(rng.Intn(int(c.Side()-y0)))
		rs := c.Ranges(x0, y0, x1, y1)
		want := bruteRect(c, x0, y0, x1, y1)
		if !sameSet(rangesCover(rs), want) {
			t.Fatalf("Ranges(%d,%d,%d,%d) wrong", x0, y0, x1, y1)
		}
	}
}

func TestRangesClampsToGrid(t *testing.T) {
	c := New(3)
	rs := c.Ranges(0, 0, 100, 100)
	if len(rs) != 1 || rs[0].Lo != 0 || rs[0].Hi != c.Size() {
		t.Errorf("clamped whole-grid Ranges = %v, want [0,%d)", rs, c.Size())
	}
}

func TestRangesDiskExact(t *testing.T) {
	c := New(5)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 150; i++ {
		qx := rng.Float64() * float64(c.Side())
		qy := rng.Float64() * float64(c.Side())
		r := rng.Float64() * float64(c.Side()) / 2
		rs := c.RangesDisk(qx, qy, r)
		want := make(map[uint64]bool)
		for x := uint32(0); x < c.Side(); x++ {
			for y := uint32(0); y < c.Side(); y++ {
				dx := float64(x) - qx
				dy := float64(y) - qy
				if dx*dx+dy*dy <= r*r {
					want[c.Encode(x, y)] = true
				}
			}
		}
		if !sameSet(rangesCover(rs), want) {
			t.Fatalf("RangesDisk(%.3f,%.3f,%.3f) wrong cell set", qx, qy, r)
		}
	}
}

func TestRangesDiskNegativeRadius(t *testing.T) {
	c := New(4)
	if rs := c.RangesDisk(3, 3, -1); rs != nil {
		t.Errorf("negative radius gave %v, want nil", rs)
	}
}

func TestRangesDiskZeroRadiusOnCell(t *testing.T) {
	c := New(4)
	rs := c.RangesDisk(5, 9, 0)
	want := c.Encode(5, 9)
	if len(rs) != 1 || rs[0].Lo != want || rs[0].Hi != want+1 {
		t.Errorf("zero radius on cell gave %v, want [%d,%d)", rs, want, want+1)
	}
}

func TestRangeHelpers(t *testing.T) {
	r := Range{Lo: 10, Hi: 20}
	if r.Len() != 10 {
		t.Errorf("Len = %d, want 10", r.Len())
	}
	if !r.Contains(10) || r.Contains(20) || r.Contains(9) {
		t.Error("Contains boundary behaviour wrong")
	}
	if !r.Overlaps(Range{19, 25}) || r.Overlaps(Range{20, 25}) || r.Overlaps(Range{0, 10}) {
		t.Error("Overlaps boundary behaviour wrong")
	}
	if r.String() != "[10,20)" {
		t.Errorf("String = %q", r.String())
	}
}

func TestBlockBaseMatchesMinimum(t *testing.T) {
	c := New(4)
	for _, s := range []uint32{1, 2, 4, 8} {
		for x0 := uint32(0); x0 < c.Side(); x0 += s {
			for y0 := uint32(0); y0 < c.Side(); y0 += s {
				min := uint64(math.MaxUint64)
				for x := x0; x < x0+s; x++ {
					for y := y0; y < y0+s; y++ {
						if v := c.Encode(x, y); v < min {
							min = v
						}
					}
				}
				if got := c.blockBase(x0, y0, s); got != min {
					t.Fatalf("blockBase(%d,%d,%d) = %d, want %d", x0, y0, s, got, min)
				}
			}
		}
	}
}

func TestMergeRanges(t *testing.T) {
	got := mergeRangesTail([]Range{{5, 7}, {0, 2}, {2, 4}, {6, 9}, {12, 13}}, 0)
	want := []Range{{0, 4}, {5, 9}, {12, 13}}
	if len(got) != len(want) {
		t.Fatalf("mergeRanges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mergeRanges = %v, want %v", got, want)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	c := New(16)
	for i := 0; i < b.N; i++ {
		c.Encode(uint32(i)%c.Side(), uint32(i*7)%c.Side())
	}
}

func BenchmarkDecode(b *testing.B) {
	c := New(16)
	for i := 0; i < b.N; i++ {
		c.Decode(uint64(i) % c.Size())
	}
}

func BenchmarkRangesWindow(b *testing.B) {
	c := New(10)
	for i := 0; i < b.N; i++ {
		c.Ranges(100, 100, 200, 200)
	}
}

// TestRangesSingleCellMatchesEncode pins the curve-ordered subdivision's
// arithmetic block bases to the Encode tables: a one-cell query descends
// the full tree through every orientation on its path, so the derived
// base must equal the cell's HC value for every cell of the grid.
func TestRangesSingleCellMatchesEncode(t *testing.T) {
	c := New(4)
	for x := uint32(0); x < c.Side(); x++ {
		for y := uint32(0); y < c.Side(); y++ {
			rs := c.Ranges(x, y, x, y)
			want := c.Encode(x, y)
			if len(rs) != 1 || rs[0].Lo != want || rs[0].Hi != want+1 {
				t.Fatalf("Ranges(%d,%d) = %v, want [%d,%d)", x, y, rs, want, want+1)
			}
		}
	}
}

// TestRangesDiskMaximal asserts disk decompositions surface sorted,
// disjoint, non-adjacent ranges — the invariant the curve-ordered
// traversal maintains without a sort pass.
func TestRangesDiskMaximal(t *testing.T) {
	c := New(5)
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 100; i++ {
		qx := rng.Float64() * float64(c.Side())
		qy := rng.Float64() * float64(c.Side())
		r := rng.Float64() * float64(c.Side()) / 2
		rs := c.RangesDisk(qx, qy, r)
		for j := 1; j < len(rs); j++ {
			if rs[j].Lo <= rs[j-1].Hi {
				t.Fatalf("RangesDisk(%.3f,%.3f,%.3f): ranges %v and %v not maximal/disjoint",
					qx, qy, r, rs[j-1], rs[j])
			}
		}
	}
}

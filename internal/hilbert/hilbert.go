// Package hilbert implements the two-dimensional Hilbert space-filling
// curve used by DSI and HCI to linearize spatial data for broadcast.
//
// A curve of order k visits every cell of a 2^k x 2^k grid exactly once.
// Encode maps a cell coordinate to its position along the curve (its "HC
// value") and Decode inverts the mapping. The orientation matches the
// paper's running example (Figure 2): on an order-3 curve, cell (1, 1)
// has HC value 2.
//
// The package also provides exact decompositions of query regions into
// maximal contiguous HC ranges (Ranges and RangesFunc), which both the
// DSI window/kNN algorithms and the HCI baseline rely on.
package hilbert

import (
	"fmt"
	"slices"
	"sync"
)

// MaxOrder is the largest supported curve order. 2*MaxOrder bits of HC
// value must fit in a uint64.
const MaxOrder = 31

// Curve is a Hilbert curve of a fixed order over the grid
// [0, 2^order) x [0, 2^order).
type Curve struct {
	order uint
}

// New returns a curve of the given order. It panics if order is zero or
// exceeds MaxOrder; curve order is a static configuration value, so a
// bad value is a programming error rather than a runtime condition.
func New(order uint) Curve {
	if order == 0 || order > MaxOrder {
		panic(fmt.Sprintf("hilbert: order %d out of range [1,%d]", order, MaxOrder))
	}
	return Curve{order: order}
}

// Order returns the curve order.
func (c Curve) Order() uint { return c.order }

// Side returns the grid side length 2^order.
func (c Curve) Side() uint32 { return 1 << c.order }

// Size returns the number of cells on the curve, 4^order.
func (c Curve) Size() uint64 { return 1 << (2 * c.order) }

// Encode returns the HC value of cell (x, y). Coordinates outside the
// grid panic: callers are expected to clamp to the grid first.
func (c Curve) Encode(x, y uint32) uint64 {
	side := c.Side()
	if x >= side || y >= side {
		panic(fmt.Sprintf("hilbert: cell (%d,%d) outside %dx%d grid", x, y, side, side))
	}
	nc, st := chunksFor(c.order)
	var d uint64
	for i := nc - 1; i >= 0; i-- {
		sh := uint(i * 4)
		xy := (x>>sh&15)<<4 | y>>sh&15
		e := encLUT[st][xy]
		d = d<<8 | uint64(e.v)
		st = e.next
	}
	return d
}

// encodeScalar is the bit-at-a-time reference implementation Encode's
// lookup tables are generated from (and verified against in tests).
func (c Curve) encodeScalar(x, y uint32) uint64 {
	var d uint64
	for s := c.Side() >> 1; s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant so the recursion sees a canonical sub-curve.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// Decode returns the cell coordinate of HC value d. Values outside the
// curve panic.
func (c Curve) Decode(d uint64) (x, y uint32) {
	if d >= c.Size() {
		panic(fmt.Sprintf("hilbert: HC value %d outside curve of size %d", d, c.Size()))
	}
	nc, st := chunksFor(c.order)
	for i := nc - 1; i >= 0; i-- {
		e := decLUT[st][uint8(d>>(8*uint(i)))]
		x = x<<4 | uint32(e.v>>4)
		y = y<<4 | uint32(e.v&15)
		st = e.next
	}
	return x, y
}

// decodeScalar is the bit-at-a-time reference implementation Decode is
// verified against in tests.
func (c Curve) decodeScalar(d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < c.Side(); s <<= 1 {
		rx := uint32(t>>1) & 1
		ry := uint32(t^uint64(rx)) & 1
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		t >>= 2
	}
	return x, y
}

// Range is a half-open interval [Lo, Hi) of HC values.
type Range struct {
	Lo, Hi uint64
}

// Len returns the number of cells in the range.
func (r Range) Len() uint64 { return r.Hi - r.Lo }

// Contains reports whether the HC value v lies in the range.
func (r Range) Contains(v uint64) bool { return v >= r.Lo && v < r.Hi }

// Overlaps reports whether two ranges share at least one value.
func (r Range) Overlaps(o Range) bool { return r.Lo < o.Hi && o.Lo < r.Hi }

func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// RegionFunc classifies an axis-aligned block of cells
// [x0,x1] x [y0,y1] (inclusive bounds) against a query region.
type RegionFunc func(x0, y0, x1, y1 uint32) Region

// Region is the classification of a cell block against a query region.
type Region int

const (
	// Outside means no cell of the block can satisfy the query region.
	Outside Region = iota
	// Inside means every cell of the block satisfies the query region.
	Inside
	// Partial means the block must be subdivided.
	Partial
)

// RangesFunc decomposes the set of cells classified Inside by the region
// function into maximal contiguous HC ranges, sorted ascending. The
// classifier must be consistent: a block classified Inside (Outside) must
// have all (no) cells inside. The decomposition subdivides quadrants,
// so its cost is proportional to the region's perimeter in cells.
func (c Curve) RangesFunc(region RegionFunc) []Range {
	return c.AppendRangesFunc(nil, region)
}

// qblock is a pending block of the iterative quadrant subdivision: its
// lower-left corner and side, plus the HC value of its first cell and
// the curve orientation inside it.
type qblock struct {
	x0, y0, s uint32
	lo        uint64
	state     uint8
}

// quadOrder drives the curve-ordered subdivision. The 2D Hilbert curve
// has four reachable orientations (identity, swap, point reflection,
// and their composition — derived from the rotations in encodeScalar);
// for each, the table lists the four child quadrants in the order the
// curve visits them (dx, dy select the quadrant's corner offset in
// half-side units) and the orientation of the curve inside each child.
var quadOrder = [4][4]struct{ dx, dy, next uint8 }{
	{{0, 0, 1}, {0, 1, 0}, {1, 1, 0}, {1, 0, 3}}, // identity
	{{0, 0, 0}, {1, 0, 1}, {1, 1, 1}, {0, 1, 2}}, // swap
	{{1, 1, 3}, {1, 0, 2}, {0, 0, 2}, {0, 1, 1}}, // invert both
	{{1, 1, 2}, {0, 1, 3}, {0, 0, 3}, {1, 0, 0}}, // swap + invert
}

// stackPool recycles subdivision stacks across decompositions, so a
// warm query path allocates nothing beyond growth of the caller's
// destination buffer.
var stackPool = sync.Pool{New: func() any {
	s := make([]qblock, 0, 4*MaxOrder)
	return &s
}}

// AppendRangesFunc is RangesFunc appending into dst (which may be nil
// or a recycled buffer): the new ranges occupy dst[len(dst):], sorted
// and merged; previously present elements are left untouched.
//
// The subdivision descends quadrants in curve-visit order (quadOrder),
// so blocks surface with strictly increasing HC values: each block's
// base is the parent's base plus its visit rank times the child area —
// no per-block Encode — and adjacent blocks coalesce with a single
// comparison instead of a sort-and-merge pass over the tail.
func (c Curve) AppendRangesFunc(dst []Range, region RegionFunc) []Range {
	base := len(dst)
	sp := stackPool.Get().(*[]qblock)
	stack := append((*sp)[:0], qblock{0, 0, c.Side(), 0, 0})
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		switch region(b.x0, b.y0, b.x0+b.s-1, b.y0+b.s-1) {
		case Outside:
		case Inside:
			dst = appendRun(dst, base, b.lo, b.lo+uint64(b.s)*uint64(b.s))
		default:
			if b.s == 1 {
				// A 1x1 block classified Partial is a classifier bug;
				// treat as inside to stay conservative (never lose a
				// cell).
				dst = appendRun(dst, base, b.lo, b.lo+1)
				continue
			}
			h := b.s >> 1
			area := uint64(h) * uint64(h)
			q := &quadOrder[b.state]
			// Push in reverse visit order so pops follow the curve.
			for r := 3; r >= 0; r-- {
				stack = append(stack, qblock{
					b.x0 + uint32(q[r].dx)*h, b.y0 + uint32(q[r].dy)*h, h,
					b.lo + uint64(r)*area, q[r].next,
				})
			}
		}
	}
	*sp = stack
	stackPool.Put(sp)
	return dst
}

// appendRun appends the half-open HC run [lo, hi) to dst, coalescing
// with the last range of the tail dst[base:] when adjacent. Runs arrive
// in strictly increasing curve order, so adjacency is the only merge
// case.
func appendRun(dst []Range, base int, lo, hi uint64) []Range {
	if n := len(dst); n > base && dst[n-1].Hi == lo {
		dst[n-1].Hi = hi
		return dst
	}
	return append(dst, Range{Lo: lo, Hi: hi})
}

// blockBase returns the smallest HC value within the size-s aligned block
// whose lower-left corner is (x0, y0). Because an aligned block is visited
// contiguously by the curve, the smallest value is the block's entry point;
// it equals the HC value of any cell in the block with the low 2*log2(s)
// bits cleared.
func (c Curve) blockBase(x0, y0, s uint32) uint64 {
	v := c.Encode(x0, y0)
	mask := uint64(s)*uint64(s) - 1
	return v &^ mask
}

// Ranges decomposes the inclusive cell rectangle [x0,x1] x [y0,y1] into
// maximal contiguous HC ranges, sorted ascending. Bounds are clamped to
// the grid; an empty rectangle yields nil.
func (c Curve) Ranges(x0, y0, x1, y1 uint32) []Range {
	return c.AppendRanges(nil, x0, y0, x1, y1)
}

// AppendRanges is Ranges appending into dst (which may be nil or a
// recycled buffer).
func (c Curve) AppendRanges(dst []Range, x0, y0, x1, y1 uint32) []Range {
	rect, ok := c.ClampRect(x0, y0, x1, y1)
	if !ok {
		return dst
	}
	return c.AppendRangesFunc(dst, rect.Classify)
}

// RectRegion classifies cell blocks against the inclusive rectangle
// [X0,X1] x [Y0,Y1]. Like DiskRegion, it lets a caller hold one
// long-lived RegionFunc and re-parameterize the rectangle without
// allocating a new closure per query.
type RectRegion struct {
	X0, Y0, X1, Y1 uint32
}

// Classify implements RegionFunc semantics for the rectangle.
func (r *RectRegion) Classify(x0, y0, x1, y1 uint32) Region {
	if x1 < r.X0 || x0 > r.X1 || y1 < r.Y0 || y0 > r.Y1 {
		return Outside
	}
	if x0 >= r.X0 && x1 <= r.X1 && y0 >= r.Y0 && y1 <= r.Y1 {
		return Inside
	}
	return Partial
}

// ClampRect clamps the inclusive rectangle to the grid, exactly as
// Ranges does before decomposing. ok is false when the rectangle is
// empty after clamping.
func (c Curve) ClampRect(x0, y0, x1, y1 uint32) (RectRegion, bool) {
	side := c.Side()
	if x0 >= side {
		x0 = side - 1
	}
	if y0 >= side {
		y0 = side - 1
	}
	if x1 >= side {
		x1 = side - 1
	}
	if y1 >= side {
		y1 = side - 1
	}
	if x1 < x0 || y1 < y0 {
		return RectRegion{}, false
	}
	return RectRegion{X0: x0, Y0: y0, X1: x1, Y1: y1}, true
}

// RangesDisk decomposes the set of cells whose coordinates lie within
// Euclidean distance r of (qx, qy) into maximal contiguous HC ranges.
// Distance is measured between cell coordinates (objects live exactly on
// cells), and the disk is closed: cells at distance exactly r are inside.
func (c Curve) RangesDisk(qx, qy float64, r float64) []Range {
	return c.AppendRangesDisk(nil, qx, qy, r)
}

// AppendRangesDisk is RangesDisk appending into dst (which may be nil
// or a recycled buffer).
func (c Curve) AppendRangesDisk(dst []Range, qx, qy float64, r float64) []Range {
	if r < 0 {
		return dst
	}
	r2 := r * r
	return c.AppendRangesFunc(dst, func(x0, y0, x1, y1 uint32) Region {
		min := rectPointMinDist2(float64(x0), float64(y0), float64(x1), float64(y1), qx, qy)
		if min > r2 {
			return Outside
		}
		max := rectPointMaxDist2(float64(x0), float64(y0), float64(x1), float64(y1), qx, qy)
		if max <= r2 {
			return Inside
		}
		return Partial
	})
}

// DiskRegion classifies cell blocks against the closed Euclidean disk
// of squared radius R2 around (QX, QY). It is the reusable form of
// RangesDisk's classifier: a caller holding a long-lived RegionFunc
// over a DiskRegion can grow or shrink the disk by updating R2 without
// allocating a new closure per radius.
type DiskRegion struct {
	QX, QY, R2 float64
}

// Classify implements RegionFunc semantics for the disk.
func (d *DiskRegion) Classify(x0, y0, x1, y1 uint32) Region {
	min := rectPointMinDist2(float64(x0), float64(y0), float64(x1), float64(y1), d.QX, d.QY)
	if min > d.R2 {
		return Outside
	}
	max := rectPointMaxDist2(float64(x0), float64(y0), float64(x1), float64(y1), d.QX, d.QY)
	if max <= d.R2 {
		return Inside
	}
	return Partial
}

// rectPointMinDist2 returns the squared distance from (qx,qy) to the
// closest point of the rectangle [x0,x1]x[y0,y1].
func rectPointMinDist2(x0, y0, x1, y1, qx, qy float64) float64 {
	dx := 0.0
	switch {
	case qx < x0:
		dx = x0 - qx
	case qx > x1:
		dx = qx - x1
	}
	dy := 0.0
	switch {
	case qy < y0:
		dy = y0 - qy
	case qy > y1:
		dy = qy - y1
	}
	return dx*dx + dy*dy
}

// rectPointMaxDist2 returns the squared distance from (qx,qy) to the
// farthest corner of the rectangle [x0,x1]x[y0,y1].
func rectPointMaxDist2(x0, y0, x1, y1, qx, qy float64) float64 {
	dx := qx - x0
	if d := x1 - qx; d > dx {
		dx = d
	}
	dy := qy - y0
	if d := y1 - qy; d > dy {
		dy = d
	}
	return dx*dx + dy*dy
}

// mergeRangesTail sorts dst[base:] in place and coalesces adjacent or
// overlapping ranges, truncating dst accordingly. It allocates nothing.
func mergeRangesTail(dst []Range, base int) []Range {
	rs := dst[base:]
	if len(rs) == 0 {
		return dst
	}
	slices.SortFunc(rs, func(a, b Range) int {
		switch {
		case a.Lo < b.Lo:
			return -1
		case a.Lo > b.Lo:
			return 1
		}
		return 0
	})
	w := 0
	for _, r := range rs[1:] {
		last := &rs[w]
		if r.Lo <= last.Hi {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		w++
		rs[w] = r
	}
	return dst[:base+w+1]
}

package hilbert

import (
	"math/rand"
	"testing"
)

// TestLUTMatchesScalar pins the table-driven Encode/Decode to the
// bit-at-a-time reference implementation across every order, including
// the ones that need pad-state compensation (order % 4 != 0).
func TestLUTMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for order := uint(1); order <= MaxOrder; order++ {
		c := New(order)
		side := uint64(c.Side())
		for i := 0; i < 200; i++ {
			x := uint32(rng.Uint64() % side)
			y := uint32(rng.Uint64() % side)
			want := c.encodeScalar(x, y)
			if got := c.Encode(x, y); got != want {
				t.Fatalf("order %d: Encode(%d,%d) = %d, scalar %d", order, x, y, got, want)
			}
			wx, wy := c.decodeScalar(want)
			if gx, gy := c.Decode(want); gx != wx || gy != wy {
				t.Fatalf("order %d: Decode(%d) = (%d,%d), scalar (%d,%d)", order, want, gx, gy, wx, wy)
			}
		}
	}
}

// TestLUTExhaustiveSmallOrders checks every cell of the small curves.
func TestLUTExhaustiveSmallOrders(t *testing.T) {
	for order := uint(1); order <= 6; order++ {
		c := New(order)
		for x := uint32(0); x < c.Side(); x++ {
			for y := uint32(0); y < c.Side(); y++ {
				want := c.encodeScalar(x, y)
				if got := c.Encode(x, y); got != want {
					t.Fatalf("order %d: Encode(%d,%d) = %d, scalar %d", order, x, y, got, want)
				}
			}
		}
		for d := uint64(0); d < c.Size(); d++ {
			wx, wy := c.decodeScalar(d)
			if gx, gy := c.Decode(d); gx != wx || gy != wy {
				t.Fatalf("order %d: Decode(%d) = (%d,%d), scalar (%d,%d)", order, d, gx, gy, wx, wy)
			}
		}
	}
}

// TestAppendRangesReuse verifies the append APIs reuse the caller's
// buffer, keep prior contents intact, and equal the plain APIs.
func TestAppendRangesReuse(t *testing.T) {
	c := New(6)
	buf := make([]Range, 0, 64)
	buf = append(buf, Range{Lo: 999, Hi: 1000}) // sentinel to preserve

	got := c.AppendRanges(buf, 3, 5, 20, 17)
	want := c.Ranges(3, 5, 20, 17)
	if got[0] != (Range{Lo: 999, Hi: 1000}) {
		t.Fatal("AppendRanges clobbered existing elements")
	}
	if len(got) != 1+len(want) {
		t.Fatalf("AppendRanges produced %d ranges, want %d", len(got)-1, len(want))
	}
	for i, r := range want {
		if got[1+i] != r {
			t.Fatalf("range %d = %v, want %v", i, got[1+i], r)
		}
	}

	gotD := c.AppendRangesDisk(nil, 31, 20, 7.5)
	wantD := c.RangesDisk(31, 20, 7.5)
	if len(gotD) != len(wantD) {
		t.Fatalf("disk: %d vs %d ranges", len(gotD), len(wantD))
	}
	for i := range wantD {
		if gotD[i] != wantD[i] {
			t.Fatalf("disk range %d differs", i)
		}
	}

	// Steady-state decomposition into a warm buffer must not allocate.
	warm := c.AppendRanges(nil, 3, 5, 20, 17)
	allocs := testing.AllocsPerRun(50, func() {
		warm = c.AppendRanges(warm[:0], 3, 5, 20, 17)
	})
	// The region closure escapes to the heap; everything else is reused.
	if allocs > 1 {
		t.Errorf("warm AppendRanges allocated %.1f times per run", allocs)
	}
}

func BenchmarkEncodeScalar(b *testing.B) {
	c := New(16)
	for i := 0; i < b.N; i++ {
		c.encodeScalar(uint32(i)%c.Side(), uint32(i*7)%c.Side())
	}
}

func BenchmarkDecodeScalar(b *testing.B) {
	c := New(16)
	for i := 0; i < b.N; i++ {
		c.decodeScalar(uint64(i) % c.Size())
	}
}

package hilbert

// Lookup-table-accelerated Encode/Decode.
//
// The bitwise algorithm in hilbert.go processes one bit of x and y per
// iteration, carrying a coordinate transformation (the current sub-curve
// orientation) from level to level. The transformations reachable from
// the identity form a Klein four-group:
//
//	stI  identity            (x, y)
//	stS  swap                (y, x)
//	stC  complement          (w-1-x, w-1-y)
//	stSC swap-complement     (w-1-y, w-1-x)
//
// composing by XOR of the state codes. The tables below batch four
// levels at a time: for each orientation and each 8-bit (x,y) nibble
// pair, encLUT yields the next 8 bits of the HC value and the
// orientation for the remaining levels; decLUT is its inverse. The
// tables are generated at init from the scalar reference implementation
// (encodeScalar), so the two can never disagree on curve shape.
//
// Orders that are not a multiple of four are handled by padding the
// curve with zero high bits. Each padded level contributes zero to the
// HC value and a swap to the orientation, so entering the chunk loop in
// state stS when the padding depth is odd (stI when even) makes the
// padded run reproduce the unpadded curve exactly.

const (
	stI  = 0
	stS  = 1
	stC  = 2
	stSC = 3
)

// lutChunk packs four levels of the curve walk: for encoding, the 8-bit
// HC chunk and the next orientation; for decoding, the (x<<4|y) nibble
// pair and the next orientation.
type lutChunk struct {
	v, next uint8
}

var (
	encLUT [4][256]lutChunk // [state][x4<<4|y4] -> d8
	decLUT [4][256]lutChunk // [state][d8] -> x4<<4|y4
)

// applyState16 applies a state transform on the 16x16 chunk grid.
func applyState16(st int, x, y uint32) (uint32, uint32) {
	switch st {
	case stS:
		return y, x
	case stC:
		return 15 - x, 15 - y
	case stSC:
		return 15 - y, 15 - x
	}
	return x, y
}

func init() {
	c4 := Curve{order: 4}
	for st := 0; st < 4; st++ {
		for xy := 0; xy < 256; xy++ {
			x, y := uint32(xy>>4), uint32(xy&15)
			tx, ty := applyState16(st, x, y)
			d := uint8(c4.encodeScalar(tx, ty))
			// Accumulate the orientation across the four levels. The
			// quadrant digit q = (3*rx)^ry determines the per-level
			// transform: q=0 (rx=0,ry=0) swaps, q=3 (rx=1,ry=0)
			// swap-complements, q=1,2 (ry=1) leave orientation alone.
			acc := uint8(st)
			for lvl := 3; lvl >= 0; lvl-- {
				switch (d >> (2 * lvl)) & 3 {
				case 0:
					acc ^= stS
				case 3:
					acc ^= stSC
				}
			}
			encLUT[st][xy] = lutChunk{v: d, next: acc}
			decLUT[st][d] = lutChunk{v: uint8(xy), next: acc}
		}
	}
}

// chunksFor returns the number of 4-bit chunks covering the order and
// the initial orientation compensating for the padded levels.
func chunksFor(order uint) (nc int, st uint8) {
	nc = (int(order) + 3) / 4
	if (uint(nc)*4-order)&1 == 1 {
		st = stS
	}
	return nc, st
}

//go:build !unix

package diskstore

import "os"

// mapping fallback for platforms without syscall.Mmap: the file is
// read into memory whole. Serving stays correct; only the
// zero-heap-startup property is platform-specific.
type mapping struct {
	data []byte
	mm   bool
}

func openMapping(path string) (*mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &mapping{data: data}, nil
}

func (m *mapping) close() error {
	m.data = nil
	return nil
}

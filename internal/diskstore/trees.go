package diskstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sort"

	"dsi/internal/spatial"
)

// Disk-backed index builds: the sorted object sidecar of a streaming
// build (see BuildImage with KeepSidecars) feeds bottom-up bulk loads
// of the two baseline index structures — the B+-tree of the HCI
// baseline and the STR R-tree — into node files, never holding more
// than one level's build state in heap. The node files are
// regression-tested node-for-node identical to bptree.Build and
// rtree.Build over the same dataset.
//
// Both files share the layout:
//
//	offset 0   magic (8B, format-specific)
//	           uint32 LE fanout, uint32 LE level count
//	           level count × uint64 LE nodes-per-level (leaves first)
//	then       node records, dense ID order (leaves first, left to
//	           right, then each level above)
//
// B+-tree node record (2 + fanout*16 bytes):
//
//	[count uint16 LE] count × [key uint64 LE][ref uint64 LE]
//
// where ref is an object ID in leaves and a child node ID above.
//
// R-tree node record (18 + fanout*24 bytes):
//
//	[node MBR 4×uint32 LE][count uint16 LE]
//	count × [entry MBR 4×uint32 LE][ref uint64 LE]

var (
	bptMagic = [8]byte{'D', 'S', 'B', 'P', 'T', 0, 0, 1}
	rtrMagic = [8]byte{'D', 'S', 'R', 'T', 'R', 0, 0, 1}
)

func bptRecSize(fanout int) int { return 2 + fanout*16 }
func rtrRecSize(fanout int) int { return 18 + fanout*24 }

// treeHeader assembles the header + concatenated level files into the
// final node file.
func assembleTree(path string, magic [8]byte, fanout int, levels []string, counts []int64) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	defer out.Close()
	w := newBufWriter(out)
	if _, err := w.Write(magic[:]); err != nil {
		return err
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(fanout))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(u32[:], uint32(len(counts)))
	if _, err := w.Write(u32[:]); err != nil {
		return err
	}
	var u64 [8]byte
	for _, c := range counts {
		binary.LittleEndian.PutUint64(u64[:], uint64(c))
		if _, err := w.Write(u64[:]); err != nil {
			return err
		}
	}
	for _, lf := range levels {
		f, err := os.Open(lf)
		if err != nil {
			return err
		}
		r := bufio.NewReaderSize(f, runReadBuf)
		if _, err := r.WriteTo(w); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}
	if err := w.Flush(); err != nil {
		return err
	}
	return out.Sync()
}

// BuildBPTreeFile bulk-loads the B+-tree over the sorted object file
// (keys are HC values, values the object IDs, i.e. HC ranks) into a
// node file at treePath. Heap use is O(fanout): each level streams the
// minimum keys of the level below from a sidecar written alongside it.
// The result is node-for-node what bptree.Build produces over the same
// keys.
func BuildBPTreeFile(treePath, objPath string, fanout int) error {
	if fanout < 2 {
		return fmt.Errorf("diskstore: bptree fanout %d < 2", fanout)
	}
	obj, err := openMapping(objPath)
	if err != nil {
		return err
	}
	defer obj.close()
	if len(obj.data)%objRecSize != 0 {
		return fmt.Errorf("diskstore: object file size %d not a record multiple", len(obj.data))
	}
	n := len(obj.data) / objRecSize
	if n == 0 {
		return fmt.Errorf("diskstore: no objects")
	}

	var levelFiles []string
	var counts []int64
	defer func() {
		for _, f := range levelFiles {
			os.Remove(f)
			os.Remove(f + ".min")
		}
	}()

	recSize := bptRecSize(fanout)
	rec := make([]byte, recSize)

	// writeLevel packs up to `count` (key, ref) pairs per node, fanout at
	// a time, writing node records and the per-node minimum-key sidecar.
	writeLevel := func(level int, total int64, next func() (uint64, uint64)) (int64, error) {
		lf := fmt.Sprintf("%s.lvl%d", treePath, level)
		levelFiles = append(levelFiles, lf)
		nodeF, err := os.Create(lf)
		if err != nil {
			return 0, err
		}
		defer nodeF.Close()
		minF, err := os.Create(lf + ".min")
		if err != nil {
			return 0, err
		}
		defer minF.Close()
		nw, mw := newBufWriter(nodeF), newBufWriter(minF)

		var nodes int64
		for at := int64(0); at < total; {
			cnt := int64(fanout)
			if at+cnt > total {
				cnt = total - at
			}
			for i := range rec {
				rec[i] = 0
			}
			binary.LittleEndian.PutUint16(rec[0:2], uint16(cnt))
			for i := int64(0); i < cnt; i++ {
				k, v := next()
				binary.LittleEndian.PutUint64(rec[2+i*16:], k)
				binary.LittleEndian.PutUint64(rec[2+i*16+8:], v)
				if i == 0 {
					var m [8]byte
					binary.LittleEndian.PutUint64(m[:], k)
					if _, err := mw.Write(m[:]); err != nil {
						return 0, err
					}
				}
			}
			if _, err := nw.Write(rec); err != nil {
				return 0, err
			}
			at += cnt
			nodes++
		}
		if err := nw.Flush(); err != nil {
			return 0, err
		}
		return nodes, mw.Flush()
	}

	// Leaf level: key = HC, ref = object ID = record index.
	idx := int64(0)
	leaves, err := writeLevel(0, int64(n), func() (uint64, uint64) {
		hc := binary.LittleEndian.Uint64(obj.data[idx*objRecSize+8:])
		id := uint64(idx)
		idx++
		return hc, id
	})
	if err != nil {
		return err
	}
	counts = append(counts, leaves)

	// Internal levels: keys are the minimum keys of the level below,
	// refs its dense node IDs (offset of that level + position).
	offset := int64(0)
	for counts[len(counts)-1] > 1 {
		below := counts[len(counts)-1]
		minPath := levelFiles[len(levelFiles)-1] + ".min"
		mins, err := openMapping(minPath)
		if err != nil {
			return err
		}
		pos := int64(0)
		nodes, err := writeLevel(len(counts), below, func() (uint64, uint64) {
			k := binary.LittleEndian.Uint64(mins.data[pos*8:])
			ref := uint64(offset + pos)
			pos++
			return k, ref
		})
		mins.close()
		if err != nil {
			return err
		}
		offset += below
		counts = append(counts, nodes)
	}
	return assembleTree(treePath, bptMagic, fanout, levelFiles, counts)
}

// rtreeItem is one STR input entry: an MBR plus the object/child
// reference, matching rtree.Build's item.
type rtreeItem struct {
	mbr spatial.Rect
	ref int64
}

const rtreeItemSize = 24

var rtreeItemCodec = Codec[rtreeItem]{
	Size: rtreeItemSize,
	Put: func(dst []byte, v rtreeItem) {
		binary.LittleEndian.PutUint32(dst[0:], v.mbr.MinX)
		binary.LittleEndian.PutUint32(dst[4:], v.mbr.MinY)
		binary.LittleEndian.PutUint32(dst[8:], v.mbr.MaxX)
		binary.LittleEndian.PutUint32(dst[12:], v.mbr.MaxY)
		binary.LittleEndian.PutUint64(dst[16:], uint64(v.ref))
	},
	Get: func(src []byte) rtreeItem {
		return rtreeItem{
			mbr: spatial.Rect{
				MinX: binary.LittleEndian.Uint32(src[0:]),
				MinY: binary.LittleEndian.Uint32(src[4:]),
				MaxX: binary.LittleEndian.Uint32(src[8:]),
				MaxY: binary.LittleEndian.Uint32(src[12:]),
			},
			ref: int64(binary.LittleEndian.Uint64(src[16:])),
		}
	},
}

// strLess is rtree.Build's center-x comparator: a total order with
// ties broken by ref, so external and in-memory sorts agree exactly.
// Leaf entries are points, where center x equals the cell x.
func strLess(a, b rtreeItem) bool {
	ax, _ := a.mbr.Center()
	bx, _ := b.mbr.Center()
	if ax != bx {
		return ax < bx
	}
	return a.ref < b.ref
}

// BuildRTreeFile bulk-loads the STR R-tree over the sorted object file
// into a node file at treePath. The leaf pass — the only level with N
// inputs — streams: objects go through the external sorter in (x, id)
// order and are tiled slab by slab, holding one slab
// (≈ sqrt(N·fanout) entries) plus the sort budget in heap. Levels
// above have at most N/fanout entries and reuse the same tiling in
// memory. Node-for-node identical to rtree.Build.
func BuildRTreeFile(treePath, objPath string, fanout int, opt BuildOptions) error {
	if fanout < 2 {
		return fmt.Errorf("diskstore: rtree fanout %d < 2", fanout)
	}
	obj, err := openMapping(objPath)
	if err != nil {
		return err
	}
	defer obj.close()
	if len(obj.data)%objRecSize != 0 {
		return fmt.Errorf("diskstore: object file size %d not a record multiple", len(obj.data))
	}
	n := len(obj.data) / objRecSize
	if n == 0 {
		return fmt.Errorf("diskstore: no objects")
	}

	tmp := opt.TmpDir
	if tmp == "" {
		tmp = os.TempDir()
	}
	sorter, err := NewSorter(tmp, rtreeItemCodec, strLess, opt.Budget)
	if err != nil {
		return err
	}
	defer sorter.Close()
	for i := 0; i < n; i++ {
		r := objCodec.Get(obj.data[i*objRecSize:])
		it := rtreeItem{
			mbr: spatial.Rect{MinX: r.X, MinY: r.Y, MaxX: r.X, MaxY: r.Y},
			ref: int64(i),
		}
		if err := sorter.Add(it); err != nil {
			return err
		}
	}
	st, err := sorter.Merge()
	if err != nil {
		return err
	}

	var levelFiles []string
	var counts []int64
	defer func() {
		for _, f := range levelFiles {
			os.Remove(f)
		}
	}()

	recSize := rtrRecSize(fanout)
	rec := make([]byte, recSize)

	// packLevel tiles one level: items arrive center-x sorted via next
	// (total of them), are buffered one slab at a time, y-sorted, and
	// packed fanout at a time. Returns the next level's items (node
	// MBRs, refs = positions) alongside the written node count.
	packLevel := func(level int, total int64, next func() (rtreeItem, bool)) ([]rtreeItem, int64, error) {
		lf := fmt.Sprintf("%s.lvl%d", treePath, level)
		levelFiles = append(levelFiles, lf)
		nodeF, err := os.Create(lf)
		if err != nil {
			return nil, 0, err
		}
		defer nodeF.Close()
		nw := newBufWriter(nodeF)

		nGroups := (total + int64(fanout) - 1) / int64(fanout)
		slabs := int64(math.Ceil(math.Sqrt(float64(nGroups))))
		perSlab := slabs * int64(fanout)

		var up []rtreeItem
		var nodes int64
		slab := make([]rtreeItem, 0, perSlab)
		flush := func() error {
			sort.Slice(slab, func(i, j int) bool {
				_, yi := slab[i].mbr.Center()
				_, yj := slab[j].mbr.Center()
				if yi != yj {
					return yi < yj
				}
				return slab[i].ref < slab[j].ref
			})
			for g := 0; g < len(slab); g += fanout {
				ge := g + fanout
				if ge > len(slab) {
					ge = len(slab)
				}
				grp := slab[g:ge]
				mbr := grp[0].mbr
				for _, it := range grp[1:] {
					mbr = mbr.Union(it.mbr)
				}
				for i := range rec {
					rec[i] = 0
				}
				binary.LittleEndian.PutUint32(rec[0:], mbr.MinX)
				binary.LittleEndian.PutUint32(rec[4:], mbr.MinY)
				binary.LittleEndian.PutUint32(rec[8:], mbr.MaxX)
				binary.LittleEndian.PutUint32(rec[12:], mbr.MaxY)
				binary.LittleEndian.PutUint16(rec[16:18], uint16(len(grp)))
				for i, it := range grp {
					at := 18 + i*24
					binary.LittleEndian.PutUint32(rec[at:], it.mbr.MinX)
					binary.LittleEndian.PutUint32(rec[at+4:], it.mbr.MinY)
					binary.LittleEndian.PutUint32(rec[at+8:], it.mbr.MaxX)
					binary.LittleEndian.PutUint32(rec[at+12:], it.mbr.MaxY)
					binary.LittleEndian.PutUint64(rec[at+16:], uint64(it.ref))
				}
				if _, err := nw.Write(rec); err != nil {
					return err
				}
				up = append(up, rtreeItem{mbr: mbr, ref: nodes})
				nodes++
			}
			slab = slab[:0]
			return nil
		}
		for {
			it, ok := next()
			if !ok {
				break
			}
			slab = append(slab, it)
			if int64(len(slab)) == perSlab {
				if err := flush(); err != nil {
					return nil, 0, err
				}
			}
		}
		if len(slab) > 0 {
			if err := flush(); err != nil {
				return nil, 0, err
			}
		}
		return up, nodes, nw.Flush()
	}

	// Leaf pass: streamed from the external sort.
	items, leaves, err := packLevel(0, int64(n), func() (rtreeItem, bool) { return st.Next() })
	if err != nil {
		return err
	}
	if err := st.Err(); err != nil {
		return err
	}
	if err := sorter.Close(); err != nil {
		return err
	}
	counts = append(counts, leaves)

	// Upper levels: at most N/fanout items — in-memory, same tiling.
	// refs are positions within the level below; the node file stores
	// dense IDs, so add the level's offset as rtree.Build does after ID
	// assignment.
	offset := int64(0)
	for counts[len(counts)-1] > 1 {
		below := counts[len(counts)-1]
		sort.Slice(items, func(i, j int) bool { return strLess(items[i], items[j]) })
		for i := range items {
			items[i].ref += offset
		}
		pos := 0
		up, nodes, err := packLevel(len(counts), below, func() (rtreeItem, bool) {
			if pos == len(items) {
				return rtreeItem{}, false
			}
			it := items[pos]
			pos++
			return it, true
		})
		if err != nil {
			return err
		}
		offset += below
		items = up
		counts = append(counts, nodes)
	}
	return assembleTree(treePath, rtrMagic, fanout, levelFiles, counts)
}

// TreeFile is an open node file: either tree kind, mmap'd, nodes
// addressed by dense ID.
type TreeFile struct {
	m       *mapping
	fanout  int
	counts  []int64
	offsets []int64 // dense-ID offset of each level
	recSize int64
	base    int64 // byte offset of the first node record
	rtree   bool
}

// OpenBPTreeFile maps a B+-tree node file.
func OpenBPTreeFile(path string) (*TreeFile, error) { return openTree(path, bptMagic, false) }

// OpenRTreeFile maps an R-tree node file.
func OpenRTreeFile(path string) (*TreeFile, error) { return openTree(path, rtrMagic, true) }

func openTree(path string, magic [8]byte, rtree bool) (*TreeFile, error) {
	m, err := openMapping(path)
	if err != nil {
		return nil, err
	}
	t, err := newTreeFile(m, magic, rtree)
	if err != nil {
		m.close()
		return nil, err
	}
	return t, nil
}

func newTreeFile(m *mapping, magic [8]byte, rtree bool) (*TreeFile, error) {
	data := m.data
	if len(data) < 16 {
		return nil, fmt.Errorf("diskstore: tree file of %d bytes is truncated", len(data))
	}
	if string(data[:8]) != string(magic[:]) {
		return nil, fmt.Errorf("diskstore: bad tree magic %q", data[:8])
	}
	fanout := int(binary.LittleEndian.Uint32(data[8:12]))
	levels := int(binary.LittleEndian.Uint32(data[12:16]))
	if fanout < 2 || levels < 1 || levels > 64 {
		return nil, fmt.Errorf("diskstore: tree header fanout=%d levels=%d invalid", fanout, levels)
	}
	if len(data) < 16+levels*8 {
		return nil, fmt.Errorf("diskstore: tree header truncated")
	}
	t := &TreeFile{m: m, fanout: fanout, rtree: rtree, base: int64(16 + levels*8)}
	if rtree {
		t.recSize = int64(rtrRecSize(fanout))
	} else {
		t.recSize = int64(bptRecSize(fanout))
	}
	var total int64
	for i := 0; i < levels; i++ {
		c := int64(binary.LittleEndian.Uint64(data[16+i*8:]))
		if c < 1 {
			return nil, fmt.Errorf("diskstore: tree level %d has %d nodes", i, c)
		}
		t.offsets = append(t.offsets, total)
		t.counts = append(t.counts, c)
		total += c
	}
	if t.counts[levels-1] != 1 {
		return nil, fmt.Errorf("diskstore: tree has %d roots", t.counts[levels-1])
	}
	if want := t.base + total*t.recSize; want != int64(len(data)) {
		return nil, fmt.Errorf("diskstore: tree file is %d bytes, header implies %d", len(data), want)
	}
	return t, nil
}

// Close unmaps the node file.
func (t *TreeFile) Close() error { return t.m.close() }

// Fanout returns the build fanout.
func (t *TreeFile) Fanout() int { return t.fanout }

// Height returns the level count.
func (t *TreeFile) Height() int { return len(t.counts) }

// NodeCount returns the total node count.
func (t *TreeFile) NodeCount() int {
	return int(t.offsets[len(t.offsets)-1] + t.counts[len(t.counts)-1])
}

// RootID returns the root's dense node ID (always the last node).
func (t *TreeFile) RootID() int { return t.NodeCount() - 1 }

// LevelOf returns the level holding the given dense node ID.
func (t *TreeFile) LevelOf(id int) int {
	for li := len(t.offsets) - 1; li >= 0; li-- {
		if int64(id) >= t.offsets[li] {
			return li
		}
	}
	return 0
}

func (t *TreeFile) rec(id int) []byte {
	off := t.base + int64(id)*t.recSize
	return t.m.data[off : off+t.recSize]
}

// BPTreeNode returns node id of a B+-tree file: its level, keys, and
// refs (object IDs at level 0, child node IDs above).
func (t *TreeFile) BPTreeNode(id int) (level int, keys []uint64, refs []int64) {
	rec := t.rec(id)
	cnt := int(binary.LittleEndian.Uint16(rec[0:2]))
	for i := 0; i < cnt; i++ {
		keys = append(keys, binary.LittleEndian.Uint64(rec[2+i*16:]))
		refs = append(refs, int64(binary.LittleEndian.Uint64(rec[2+i*16+8:])))
	}
	return t.LevelOf(id), keys, refs
}

// RTreeNode returns node id of an R-tree file: its level, node MBR,
// entry MBRs, and refs (object IDs at level 0, child node IDs above).
func (t *TreeFile) RTreeNode(id int) (level int, mbr spatial.Rect, mbrs []spatial.Rect, refs []int64) {
	rec := t.rec(id)
	mbr = spatial.Rect{
		MinX: binary.LittleEndian.Uint32(rec[0:]),
		MinY: binary.LittleEndian.Uint32(rec[4:]),
		MaxX: binary.LittleEndian.Uint32(rec[8:]),
		MaxY: binary.LittleEndian.Uint32(rec[12:]),
	}
	cnt := int(binary.LittleEndian.Uint16(rec[16:18]))
	for i := 0; i < cnt; i++ {
		at := 18 + i*24
		mbrs = append(mbrs, spatial.Rect{
			MinX: binary.LittleEndian.Uint32(rec[at:]),
			MinY: binary.LittleEndian.Uint32(rec[at+4:]),
			MaxX: binary.LittleEndian.Uint32(rec[at+8:]),
			MaxY: binary.LittleEndian.Uint32(rec[at+12:]),
		})
		refs = append(refs, int64(binary.LittleEndian.Uint64(rec[at+16:])))
	}
	return t.LevelOf(id), mbr, mbrs, refs
}

// Lookup searches a B+-tree file for key, returning the object ID and
// whether it exists — the node file serving queries directly from disk.
func (t *TreeFile) Lookup(key uint64) (int64, bool) {
	if t.rtree {
		panic("diskstore: Lookup on an R-tree file")
	}
	id := t.RootID()
	for t.LevelOf(id) > 0 {
		_, keys, refs := t.BPTreeNode(id)
		i := sort.Search(len(keys), func(i int) bool { return keys[i] > key }) - 1
		if i < 0 {
			i = 0
		}
		id = int(refs[i])
	}
	_, keys, refs := t.BPTreeNode(id)
	i := sort.Search(len(keys), func(i int) bool { return keys[i] >= key })
	if i < len(keys) && keys[i] == key {
		return refs[i], true
	}
	return 0, false
}

// Window searches an R-tree file, returning the object IDs inside w
// ascending — the node file serving queries directly from disk.
func (t *TreeFile) Window(w spatial.Rect) []int64 {
	if !t.rtree {
		panic("diskstore: Window on a B+-tree file")
	}
	var out []int64
	var walk func(id int)
	walk = func(id int) {
		level, mbr, mbrs, refs := t.RTreeNode(id)
		if !mbr.Intersects(w) {
			return
		}
		for i, m := range mbrs {
			if !w.Intersects(m) {
				continue
			}
			if level == 0 {
				out = append(out, refs[i])
			} else {
				walk(int(refs[i]))
			}
		}
	}
	walk(t.RootID())
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package diskstore

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
)

type pair struct {
	Key uint64
	Seq uint32
}

var pairCodec = Codec[pair]{
	Size: 12,
	Put: func(dst []byte, v pair) {
		binary.LittleEndian.PutUint64(dst[0:], v.Key)
		binary.LittleEndian.PutUint32(dst[8:], v.Seq)
	},
	Get: func(src []byte) pair {
		return pair{
			Key: binary.LittleEndian.Uint64(src[0:]),
			Seq: binary.LittleEndian.Uint32(src[8:]),
		}
	},
}

func pairLess(a, b pair) bool { return a.Key < b.Key }

func drain(t *testing.T, st *Stream[pair]) []pair {
	t.Helper()
	var out []pair
	for {
		v, ok := st.Next()
		if !ok {
			break
		}
		out = append(out, v)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	return out
}

// TestMergeMatchesSortSlice is the satellite property test: for random
// inputs across in-memory, single-run, and many-run regimes, the
// external merge must yield exactly what sort.Slice yields on the same
// records (with the stable tie-break on insertion order).
func TestMergeMatchesSortSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(5000)
		budget := 1 + rng.Intn(300)
		keySpace := uint64(1 + rng.Intn(200)) // small spaces force duplicate keys

		in := make([]pair, n)
		for i := range in {
			in[i] = pair{Key: rng.Uint64() % keySpace, Seq: uint32(i)}
		}

		s, err := NewSorter(t.TempDir(), pairCodec, pairLess, budget)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range in {
			if err := s.Add(v); err != nil {
				t.Fatal(err)
			}
		}
		st, err := s.Merge()
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, st)

		want := append([]pair(nil), in...)
		sort.SliceStable(want, func(i, j int) bool { return pairLess(want[i], want[j]) })

		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d budget=%d): got %d records, want %d", trial, n, budget, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d budget=%d): record %d = %+v, want %+v (runs spilled: %d)",
					trial, n, budget, i, got[i], want[i], s.Spilled())
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMergeUniqueKeysMatchesSortSlice exercises the unstable-sort
// contract too: with unique keys, plain sort.Slice and the external
// sort agree regardless of stability.
func TestMergeUniqueKeysMatchesSortSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := make([]pair, 20000)
	perm := rng.Perm(len(in))
	for i := range in {
		in[i] = pair{Key: uint64(perm[i]), Seq: uint32(i)}
	}
	s, err := NewSorter(t.TempDir(), pairCodec, pairLess, 777)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, v := range in {
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spilled() < 2 {
		t.Fatalf("expected multiple spilled runs, got %d", s.Spilled())
	}
	st, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, st)
	want := append([]pair(nil), in...)
	sort.Slice(want, func(i, j int) bool { return pairLess(want[i], want[j]) })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestMergeManyRunsCompacts drives the run count past the merge fan-in
// so the pre-merge compaction path runs, and checks order plus
// stability survive it.
func TestMergeManyRunsCompacts(t *testing.T) {
	s, err := NewSorter(t.TempDir(), pairCodec, pairLess, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(99))
	const n = 4 * (mergeFanIn + 37) // > mergeFanIn runs of 4 records
	in := make([]pair, n)
	for i := range in {
		in[i] = pair{Key: rng.Uint64() % 50, Seq: uint32(i)}
	}
	for _, v := range in {
		if err := s.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	if s.Spilled() <= mergeFanIn {
		t.Fatalf("want > %d runs, got %d", mergeFanIn, s.Spilled())
	}
	st, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, st)
	want := append([]pair(nil), in...)
	sort.SliceStable(want, func(i, j int) bool { return pairLess(want[i], want[j]) })
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestSorterEmpty(t *testing.T) {
	s, err := NewSorter(t.TempDir(), pairCodec, pairLess, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st, err := s.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := st.Next(); ok {
		t.Fatalf("empty sorter yielded %+v", v)
	}
}

func TestSorterMisuse(t *testing.T) {
	s, err := NewSorter(t.TempDir(), pairCodec, pairLess, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Merge(); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(pair{}); err == nil {
		t.Fatal("Add after Merge should fail")
	}
	if _, err := s.Merge(); err == nil {
		t.Fatal("second Merge should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double Close should be a no-op")
	}
	if _, err := NewSorter(t.TempDir(), Codec[pair]{}, pairLess, 8); err == nil {
		t.Fatal("zero codec should be rejected")
	}
	if _, err := NewSorter(t.TempDir(), pairCodec, nil, 8); err == nil {
		t.Fatal("nil comparator should be rejected")
	}
}

//go:build unix

package diskstore

import (
	"fmt"
	"os"
	"syscall"
)

// mapping is a read-only view of a file: an mmap on unix platforms, a
// full read elsewhere (mmap_other.go). The unix path is what makes
// image serving O(1) in memory — pages fault in on demand and the OS
// page cache owns them, so a multi-gigabyte image costs no heap.
type mapping struct {
	data []byte
	mm   bool
}

func openMapping(path string) (*mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return &mapping{}, nil
	}
	if st.Size() > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("diskstore: %s: %d bytes exceed the address space", path, st.Size())
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(st.Size()), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("diskstore: mmap %s: %w", path, err)
	}
	return &mapping{data: data, mm: true}, nil
}

func (m *mapping) close() error {
	if !m.mm || m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return syscall.Munmap(data)
}

package diskstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"dsi/internal/dataset"
	"dsi/internal/dsi"
	"dsi/internal/spatial"
	"dsi/internal/station"
	"dsi/internal/wire"
)

// objRec is one sorted-object-file record: the object's cell and HC
// value, 16 bytes fixed. The object's ID is its record index (HC
// rank), so it is not stored.
type objRec struct {
	X, Y uint32
	HC   uint64
}

const objRecSize = 16

var objCodec = Codec[objRec]{
	Size: objRecSize,
	Put: func(dst []byte, v objRec) {
		binary.LittleEndian.PutUint32(dst[0:], v.X)
		binary.LittleEndian.PutUint32(dst[4:], v.Y)
		binary.LittleEndian.PutUint64(dst[8:], v.HC)
	},
	Get: func(src []byte) objRec {
		return objRec{
			X:  binary.LittleEndian.Uint32(src[0:]),
			Y:  binary.LittleEndian.Uint32(src[4:]),
			HC: binary.LittleEndian.Uint64(src[8:]),
		}
	},
}

// PointStream is a dataset as a stream: the generator identity a
// network client rebuilds it from (the catalog document's dataset
// section) plus the point generator itself, which emits points in
// generation order — the external sorter puts them in HC order.
type PointStream struct {
	Kind  string // catalog kind: "uniform" or "real"
	N     int
	Order uint
	Seed  int64
	Gen   func(emit func(p spatial.Point, hc uint64))
}

// UniformStream streams the UNIFORM dataset: identical objects to
// dataset.Uniform(n, order, seed), never materialized.
func UniformStream(n int, order uint, seed int64) PointStream {
	return PointStream{Kind: "uniform", N: n, Order: order, Seed: seed,
		Gen: func(emit func(spatial.Point, uint64)) {
			dataset.UniformPoints(n, order, seed, emit)
		}}
}

// RealStream streams the REAL-like dataset at the paper's default
// configuration — the only clustered shape network clients can rebuild
// from a catalog document (netrecv regenerates "real" via
// dataset.DefaultRealConfig).
func RealStream(seed int64) PointStream {
	cfg := dataset.DefaultRealConfig(seed)
	return PointStream{Kind: "real", N: cfg.N, Order: cfg.Order, Seed: seed,
		Gen: func(emit func(spatial.Point, uint64)) {
			dataset.ClusteredPoints(cfg, emit)
		}}
}

// BuildOptions bounds the out-of-core build.
type BuildOptions struct {
	// Budget is the maximum number of object records held in heap by
	// the sort (16 bytes each); 0 selects DefaultBudget.
	Budget int
	// TmpDir hosts the sort spill runs and the object/frame sidecar
	// files; empty uses the image's directory.
	TmpDir string
	// KeepSidecars leaves the sorted object file and the frame minHC
	// file beside the image as <image>.objects / <image>.frames
	// instead of deleting them — inputs for disk-backed index builds.
	KeepSidecars bool
}

// BuildStats reports what a streaming image build produced.
type BuildStats struct {
	Geo         dsi.Geometry
	Checksum    uint64
	SpilledRuns int
	ObjectsPath string // set when KeepSidecars
	FramesPath  string // set when KeepSidecars
}

// BuildImage builds the wire-cycle image of the single-channel DSI
// broadcast of ps under cfg, holding at most opt.Budget object records
// in heap: points stream through the external sorter into a sorted
// object file and a per-frame minHC file, which are then mmap'd and
// replayed as the exact transmitter byte stream. The result is
// byte-identical to WriteImage over station.NewTransmitter(dsi.Build(
// dataset, cfg)) — regression-enforced — without ever materializing
// the dataset, the index, or the cycle.
//
// Multi-channel and erasure-coded broadcasts are imaged from their
// in-memory transmitters via WriteImage; the streaming path covers the
// single-channel geometry, which is the one whose cycle outgrows RAM
// first (one cycle carries every object).
func BuildImage(imgPath string, ps PointStream, cfg dsi.Config, opt BuildOptions) (BuildStats, error) {
	var stats BuildStats
	if cfg.ReserveMCPtr {
		return stats, fmt.Errorf("diskstore: the streaming build images single-channel broadcasts; ReserveMCPtr is multi-channel")
	}
	geo, cfg, err := dsi.PlanGeometry(ps.N, cfg)
	if err != nil {
		return stats, err
	}
	stats.Geo = geo

	tmp := opt.TmpDir
	if tmp == "" {
		tmp = filepath.Dir(imgPath)
	}

	sorter, err := NewSorter(tmp, objCodec, func(a, b objRec) bool { return a.HC < b.HC }, opt.Budget)
	if err != nil {
		return stats, err
	}
	defer sorter.Close()
	var addErr error
	ps.Gen(func(p spatial.Point, hc uint64) {
		if addErr == nil {
			addErr = sorter.Add(objRec{X: p.X, Y: p.Y, HC: hc})
		}
	})
	if addErr != nil {
		return stats, addErr
	}
	if got := sorter.Len(); got != int64(ps.N) {
		return stats, fmt.Errorf("diskstore: generator emitted %d objects, want %d", got, ps.N)
	}
	st, err := sorter.Merge()
	if err != nil {
		return stats, err
	}
	stats.SpilledRuns = sorter.Spilled()

	objPath := imgPath + ".objects"
	framesPath := imgPath + ".frames"
	if !opt.KeepSidecars {
		objPath = filepath.Join(tmp, filepath.Base(imgPath)+".objects.tmp")
		framesPath = filepath.Join(tmp, filepath.Base(imgPath)+".frames.tmp")
		defer os.Remove(objPath)
		defer os.Remove(framesPath)
	}
	sum, err := spillSorted(st, geo, ps.Order, objPath, framesPath)
	if err != nil {
		return stats, err
	}
	stats.Checksum = sum
	if err := sorter.Close(); err != nil {
		return stats, err
	}

	src, err := OpenStreamSource(objPath, framesPath, geo, cfg)
	if err != nil {
		return stats, err
	}
	defer src.Close()

	meta := wire.StationMeta{
		Dataset: wire.StationDataset{
			Kind: ps.Kind, N: ps.N, Order: ps.Order, Seed: ps.Seed, Sum: sum,
		},
		Capacity: cfg.Capacity, Segments: cfg.Segments, ObjectBytes: cfg.ObjectBytes,
		Channels: 1, Scheduler: "single",
	}
	info := ImageInfo{Capacity: cfg.Capacity, ChanSlots: []int{geo.CycleSlots()}, Meta: meta}
	if err := WriteImageFile(imgPath, src, info); err != nil {
		return stats, err
	}
	if opt.KeepSidecars {
		stats.ObjectsPath, stats.FramesPath = objPath, framesPath
	}
	return stats, nil
}

func newBufWriter(f *os.File) *bufio.Writer { return bufio.NewWriterSize(f, runReadBuf) }

// spillSorted drains the sorted stream into the object file (16-byte
// records in HC order) and the frames file (8-byte minHC per frame),
// computing the dataset checksum on the way past.
func spillSorted(st *Stream[objRec], geo dsi.Geometry, order uint, objPath, framesPath string) (uint64, error) {
	objF, err := os.Create(objPath)
	if err != nil {
		return 0, err
	}
	defer objF.Close()
	framesF, err := os.Create(framesPath)
	if err != nil {
		return 0, err
	}
	defer framesF.Close()

	ow := newBufWriter(objF)
	fw := newBufWriter(framesF)
	sum := dataset.NewChecksumBuilder(order)
	var rec [objRecSize]byte
	var prev uint64
	rank := 0
	for {
		v, ok := st.Next()
		if !ok {
			break
		}
		if rank > 0 && v.HC <= prev {
			return 0, fmt.Errorf("diskstore: duplicate or unordered HC %d at rank %d", v.HC, rank)
		}
		prev = v.HC
		sum.Add(spatial.Point{X: v.X, Y: v.Y})
		objCodec.Put(rec[:], v)
		if _, err := ow.Write(rec[:]); err != nil {
			return 0, err
		}
		if rank%geo.NO == 0 {
			var m [8]byte
			binary.LittleEndian.PutUint64(m[:], v.HC)
			if _, err := fw.Write(m[:]); err != nil {
				return 0, err
			}
		}
		rank++
	}
	if err := st.Err(); err != nil {
		return 0, err
	}
	if rank != geo.N {
		return 0, fmt.Errorf("diskstore: sorted stream carried %d objects, want %d", rank, geo.N)
	}
	if err := ow.Flush(); err != nil {
		return 0, err
	}
	if err := fw.Flush(); err != nil {
		return 0, err
	}
	if err := objF.Sync(); err != nil {
		return 0, err
	}
	if err := framesF.Sync(); err != nil {
		return 0, err
	}
	return sum.Sum(), nil
}

// StreamSource replays the single-channel broadcast of a disk-resident
// sorted dataset as a station.PacketSource: packet for packet what
// station.Transmitter emits over the in-memory build, but backed by
// the mmap'd object and frame files. It is the byte producer behind
// BuildImage; serving should use the image (ImageSource), whose
// packets need no per-call encoding.
type StreamSource struct {
	geo dsi.Geometry
	cfg dsi.Config
	obj *mapping // objRec per object, HC order
	min *mapping // uint64 minHC per frame

	tabPos   int
	tab      []byte
	entries  []dsi.TableEntry
	objIdx   int
	objBytes []byte
}

// OpenStreamSource maps the sidecar files of a streaming build. geo
// and cfg must be the PlanGeometry results the files were built under.
func OpenStreamSource(objPath, framesPath string, geo dsi.Geometry, cfg dsi.Config) (*StreamSource, error) {
	obj, err := openMapping(objPath)
	if err != nil {
		return nil, err
	}
	min, err := openMapping(framesPath)
	if err != nil {
		obj.close()
		return nil, err
	}
	if got, want := len(obj.data), geo.N*objRecSize; got != want {
		obj.close()
		min.close()
		return nil, fmt.Errorf("diskstore: object file is %dB, geometry wants %dB", got, want)
	}
	if got, want := len(min.data), geo.NF*8; got != want {
		obj.close()
		min.close()
		return nil, fmt.Errorf("diskstore: frames file is %dB, geometry wants %dB", got, want)
	}
	return &StreamSource{geo: geo, cfg: cfg, obj: obj, min: min, tabPos: -1, objIdx: -1}, nil
}

// Close unmaps the sidecar files.
func (s *StreamSource) Close() error {
	err := s.obj.close()
	if e := s.min.close(); err == nil {
		err = e
	}
	return err
}

func (s *StreamSource) minHC(f int) uint64 {
	return binary.LittleEndian.Uint64(s.min.data[f*8:])
}

func (s *StreamSource) object(i int) objRec {
	return objCodec.Get(s.obj.data[i*objRecSize:])
}

// CycleSlots returns the broadcast cycle length in packet slots.
func (s *StreamSource) CycleSlots() int { return s.geo.CycleSlots() }

// PacketAt implements station.PacketSource; the slot arithmetic and
// payload bytes mirror station.Transmitter exactly.
func (s *StreamSource) PacketAt(ch int, abs int64) (station.Packet, uint32) {
	if ch != 0 {
		panic(fmt.Sprintf("diskstore: packet request for channel %d of a single-channel stream source", ch))
	}
	g := &s.geo
	slot := int(abs % int64(g.CycleSlots()))
	pos := slot / g.FramePackets
	within := slot % g.FramePackets
	p := station.Packet{Slot: uint32(slot)}

	if within < g.TablePackets {
		p.Flags = station.FlagIndex
		tab, err := s.tableAt(pos)
		if err != nil {
			panic(fmt.Sprintf("diskstore: position %d: %v", pos, err))
		}
		from := within * g.Capacity
		if from < len(tab) {
			to := from + g.Capacity
			if to > len(tab) {
				to = len(tab)
			}
			p.Payload = tab[from:to]
		}
		return p, 1
	}

	o := (within - g.TablePackets) / g.ObjPackets
	part := (within - g.TablePackets) % g.ObjPackets
	first, num := g.FrameObjects(g.PosToFrame(pos))
	if o >= num {
		return p, 1 // padding slot of a partial last frame
	}
	id := first + o
	if id != s.objIdx {
		obj := s.object(id)
		s.objBytes = station.ObjectPayload(
			wire.ObjectHeader{X: obj.X, Y: obj.Y, HC: obj.HC}, id, s.cfg.ObjectBytes)
		s.objIdx = id
	}
	payload := s.objBytes
	from := part * g.Capacity
	to := from + g.Capacity
	if to > len(payload) {
		to = len(payload)
	}
	if part == 0 {
		p.Flags = station.FlagObjectStart
	}
	if from < len(payload) {
		p.Payload = payload[from:to]
	}
	return p, 1
}

// tableAt encodes (and caches) the index table of the frame at cycle
// position pos, exactly as dsi.Build precomputes it.
func (s *StreamSource) tableAt(pos int) ([]byte, error) {
	if pos == s.tabPos {
		return s.tab, nil
	}
	g := &s.geo
	t := dsi.Table{Pos: pos, OwnHC: s.minHC(g.PosToFrame(pos)), Entries: s.entries[:0]}
	dist := 1
	for i := 0; i < g.E; i++ {
		tp := (pos + dist) % g.NF
		t.Entries = append(t.Entries, dsi.TableEntry{TargetPos: tp, MinHC: s.minHC(g.PosToFrame(tp))})
		dist *= g.Base
	}
	s.entries = t.Entries
	tab, err := wire.EncodeTable(t, g.NF)
	if err != nil {
		return nil, err
	}
	s.tab, s.tabPos = tab, pos
	return tab, nil
}

// DirectoryAt implements station.PacketSource: a single-channel
// broadcast ships no shard directory.
func (s *StreamSource) DirectoryAt(int64) ([]byte, uint32) { return nil, 1 }

// FECDescAt implements station.FECSource: the streaming build is
// uncoded.
func (s *StreamSource) FECDescAt(int64) ([]byte, uint32) { return nil, 1 }

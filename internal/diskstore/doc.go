// Package diskstore is the out-of-core storage layer: it builds
// datasets, indexes, and broadcast images whose working set exceeds
// RAM, holding no more than a configured budget of records in heap at
// any point of the pipeline.
//
// Three layers compose:
//
//   - An external-sort pipeline (Sorter): bounded-memory sorted-run
//     generation spilling to temp files, plus a k-way merge that
//     streams the globally sorted record sequence back. It is generic
//     over fixed-width records, the only record shape the broadcast
//     pipeline needs (objects, keys, STR items).
//   - Disk-backed index builds: BuildImage streams a generated dataset
//     through the sorter into a sorted object file (the HC broadcast
//     order), from which BuildBPTreeFile and BuildRTreeFile bulk-load
//     the paper's index baselines without materializing the object
//     set.
//   - The wire-cycle image (WriteImage / WriteImageStream / OpenImage):
//     the exact transmitter byte stream of a broadcast, one
//     fixed-stride record per slot, with a slot-offset footer. A
//     station mmaps the image and serves PacketAt(ch, abs) as a pure
//     slice into the file — zero materialization, O(1) startup — and
//     the footer carries the catalog meta document plus the streaming
//     dataset checksum, so network clients bootstrap and verify against
//     an image-backed station exactly as against an in-memory one.
//
// Every disk-built artifact is regression-enforced bit-identical to
// its in-memory counterpart: the image matches the transmitter's
// packets on all layouts (FEC included), the sorted object file
// matches dataset.Uniform/Clustered, and the tree builds match
// bptree.Build/rtree.Build.
package diskstore
